// Shared helpers for the timpp test suite: small canonical graphs and
// statistical assertion helpers for Monte-Carlo comparisons.
#ifndef TIMPP_TESTS_TEST_UTIL_H_
#define TIMPP_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <vector>

#include "engine/sampling_engine.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/weight_models.h"
#include "util/types.h"

namespace timpp {
namespace testing {

/// SamplingConfig for a plain-IC engine with the given seed and thread
/// count — the common case across the suite.
inline SamplingConfig IcSampling(uint64_t seed, unsigned num_threads = 1) {
  SamplingConfig config;
  config.model = DiffusionModel::kIC;
  config.seed = seed;
  config.num_threads = num_threads;
  return config;
}

/// Builds a graph from explicit (from, to, prob) triples; aborts the test on
/// builder failure.
inline Graph MakeGraph(NodeId num_nodes,
                       const std::vector<RawEdge>& edges) {
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);
  for (const RawEdge& e : edges) builder.AddEdge(e.from, e.to, e.prob);
  Graph g;
  Status s = builder.Build(&g);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return g;
}

/// 0 -> 1 -> 2 -> ... with probability p on every edge.
inline Graph MakeChain(NodeId n, float p) {
  std::vector<RawEdge> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, p});
  return MakeGraph(n, edges);
}

/// Hub 0 -> {1..n-1} with probability p on every spoke.
inline Graph MakeOutStar(NodeId n, float p) {
  std::vector<RawEdge> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v, p});
  return MakeGraph(n, edges);
}

/// Scale-free Barabasi-Albert graph with weighted-cascade probabilities —
/// the paper's §7.1 IC setting, where every in-arc list is a single
/// constant-probability run and geometric skip sampling applies exactly.
inline Graph MakeWcPowerLaw(NodeId n, unsigned attach, uint64_t seed) {
  GraphBuilder builder;
  GenBarabasiAlbert(n, attach, seed, &builder);
  AssignWeightedCascade(&builder);
  Graph g;
  Status s = builder.Build(&g);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return g;
}

/// A 10-node, 15-arc test network with two communities (0-4 dense, 5-9
/// sparse) bridged by 4->5. Small enough for the exact IC oracle
/// (15 <= 20 edges) yet structured enough that influence maximization has a
/// non-trivial answer.
inline Graph MakeTwoCommunities(float p) {
  std::vector<RawEdge> edges = {
      {0, 1, p}, {0, 2, p}, {1, 2, p}, {1, 3, p}, {2, 3, p},
      {3, 4, p}, {2, 0, p}, {4, 0, p},                          // community A
      {4, 5, p},                                                // bridge
      {5, 6, p}, {6, 7, p}, {7, 8, p}, {8, 9, p}, {5, 8, p},
      {9, 5, p},                                                // community B
  };
  return MakeGraph(10, edges);
}

/// EXPECT that two Monte-Carlo quantities agree within both an absolute
/// floor and a relative band. MC tests in this suite use fixed seeds, so
/// they are deterministic; the band just needs to absorb the sampling error
/// of the chosen sample sizes.
inline void ExpectClose(double expected, double actual, double rel_tol,
                        double abs_tol = 0.05) {
  const double tol = std::max(abs_tol, rel_tol * std::abs(expected));
  EXPECT_NEAR(expected, actual, tol)
      << "expected=" << expected << " actual=" << actual;
}

}  // namespace testing
}  // namespace timpp

#endif  // TIMPP_TESTS_TEST_UTIL_H_
