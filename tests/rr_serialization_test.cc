// RR-shard wire-format tests: exact round trips (empty shards, empty
// sets, single-node sets, >64k-node sets), AppendRange merge equivalence,
// randomized fuzz, and rejection of every corruption class (magic,
// version, truncation, trailing bytes, inconsistent totals, out-of-range
// node ids) — a worker shard must decode exactly or not at all.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "rrset/rr_collection.h"
#include "rrset/rr_serialization.h"
#include "util/rng.h"
#include "util/types.h"

namespace timpp {
namespace {

// Builds a collection + aligned edge counts from explicit sets.
struct TestShard {
  explicit TestShard(NodeId num_nodes) : sets(num_nodes) {}
  RRCollection sets;
  std::vector<uint64_t> edges;

  void Add(const std::vector<NodeId>& nodes, uint64_t width, uint64_t edge) {
    sets.Add(nodes, width);
    edges.push_back(edge);
  }
};

void ExpectEqualCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  EXPECT_EQ(a.TotalWidth(), b.TotalWidth());
  for (size_t i = 0; i < a.num_sets(); ++i) {
    const auto sa = a.Set(static_cast<RRSetId>(i));
    const auto sb = b.Set(static_cast<RRSetId>(i));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin())) << "set " << i;
    EXPECT_EQ(a.Width(static_cast<RRSetId>(i)),
              b.Width(static_cast<RRSetId>(i)))
        << "set " << i;
  }
}

TEST(RRSerializationTest, RoundTripsTypicalShard) {
  TestShard shard(100);
  shard.Add({1, 2, 3}, 7, 12);
  shard.Add({99}, 1, 0);
  shard.Add({0, 50, 99, 98, 4}, 20, 33);

  std::string bytes;
  SerializeRRShard(shard.sets, shard.edges, &bytes);

  RRCollection decoded(100);
  std::vector<uint64_t> decoded_edges;
  RRShardInfo info;
  Status s = DeserializeRRShard(bytes, 100, &decoded, &decoded_edges, &info);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ExpectEqualCollections(shard.sets, decoded);
  EXPECT_EQ(decoded_edges, shard.edges);
  EXPECT_EQ(info.num_sets, 3u);
  EXPECT_EQ(info.total_nodes, 9u);
  EXPECT_EQ(info.total_edges, 45u);
}

TEST(RRSerializationTest, RoundTripsEmptyShardAndEmptySets) {
  TestShard shard(10);
  std::string bytes;
  SerializeRRShard(shard.sets, shard.edges, &bytes);
  RRCollection decoded(10);
  std::vector<uint64_t> edges;
  ASSERT_TRUE(DeserializeRRShard(bytes, 10, &decoded, &edges).ok());
  EXPECT_EQ(decoded.num_sets(), 0u);

  // Zero-member sets are representable (the format never assumes a root).
  shard.Add({}, 0, 5);
  shard.Add({3}, 2, 1);
  shard.Add({}, 0, 0);
  bytes.clear();
  SerializeRRShard(shard.sets, shard.edges, &bytes);
  RRCollection decoded2(10);
  edges.clear();
  ASSERT_TRUE(DeserializeRRShard(bytes, 10, &decoded2, &edges).ok());
  ExpectEqualCollections(shard.sets, decoded2);
  EXPECT_EQ(edges, shard.edges);
}

TEST(RRSerializationTest, RoundTripsHugeSet) {
  // >64k members: node counts must survive as full-width integers.
  const NodeId n = 70000;
  TestShard shard(n);
  std::vector<NodeId> big(69000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<NodeId>(i);
  shard.Add(big, 123456789ULL, 987654321ULL);

  std::string bytes;
  SerializeRRShard(shard.sets, shard.edges, &bytes);
  RRCollection decoded(n);
  std::vector<uint64_t> edges;
  ASSERT_TRUE(DeserializeRRShard(bytes, n, &decoded, &edges).ok());
  ExpectEqualCollections(shard.sets, decoded);
}

TEST(RRSerializationTest, SubrangeSerializationMatchesAppendRange) {
  TestShard shard(50);
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    std::vector<NodeId> nodes;
    const size_t size = rng.NextBounded(6);
    for (size_t j = 0; j < size; ++j) {
      nodes.push_back(static_cast<NodeId>(rng.NextBounded(50)));
    }
    shard.Add(nodes, rng.NextBounded(100), rng.NextBounded(1000));
  }

  // Decoding a [first, count) slice must equal AppendRange of that slice.
  std::string bytes;
  SerializeRRShard(shard.sets, shard.edges, 5, 9, &bytes);
  RRCollection decoded(50);
  std::vector<uint64_t> edges;
  ASSERT_TRUE(DeserializeRRShard(bytes, 50, &decoded, &edges).ok());

  RRCollection expected(50);
  expected.AppendRange(shard.sets, 5, 9);
  ExpectEqualCollections(expected, decoded);
  EXPECT_EQ(edges, std::vector<uint64_t>(shard.edges.begin() + 5,
                                         shard.edges.begin() + 14));
}

TEST(RRSerializationTest, FuzzRoundTrips) {
  Rng rng(0xfeed);
  for (int round = 0; round < 50; ++round) {
    const NodeId n = 1 + static_cast<NodeId>(rng.NextBounded(500));
    TestShard shard(n);
    const size_t num_sets = rng.NextBounded(40);
    for (size_t i = 0; i < num_sets; ++i) {
      std::vector<NodeId> nodes;
      const size_t size = rng.NextBounded(30);
      for (size_t j = 0; j < size; ++j) {
        nodes.push_back(static_cast<NodeId>(rng.NextBounded(n)));
      }
      shard.Add(nodes, rng.Next(), rng.Next() >> 32);
    }
    std::string bytes;
    SerializeRRShard(shard.sets, shard.edges, &bytes);
    RRCollection decoded(n);
    std::vector<uint64_t> edges;
    ASSERT_TRUE(DeserializeRRShard(bytes, n, &decoded, &edges).ok())
        << "round " << round;
    ExpectEqualCollections(shard.sets, decoded);
    EXPECT_EQ(edges, shard.edges);
  }
}

TEST(RRSerializationTest, RejectsCorruption) {
  TestShard shard(20);
  shard.Add({1, 2}, 3, 4);
  shard.Add({5}, 1, 1);
  std::string good;
  SerializeRRShard(shard.sets, shard.edges, &good);

  RRCollection out(20);
  std::vector<uint64_t> edges;
  const auto expect_reject = [&](std::string bytes, const char* what) {
    RRCollection scratch(20);
    std::vector<uint64_t> scratch_edges;
    Status s = DeserializeRRShard(bytes, 20, &scratch, &scratch_edges);
    EXPECT_FALSE(s.ok()) << what;
    // Failed decodes must not half-append.
    EXPECT_EQ(scratch.num_sets(), 0u) << what;
    EXPECT_TRUE(scratch_edges.empty()) << what;
  };

  {
    std::string bad = good;
    bad[0] ^= 0x5a;
    expect_reject(bad, "bad magic");
  }
  {
    std::string bad = good;
    bad[4] = 99;  // version field
    expect_reject(bad, "bad version");
  }
  for (size_t cut : {size_t{3}, size_t{15}, good.size() - 1}) {
    expect_reject(good.substr(0, cut), "truncation");
  }
  expect_reject(good + "x", "trailing bytes");
  {
    // Declare more nodes in set 0 than total_nodes supports.
    std::string bad = good;
    uint64_t big = 1000;
    std::memcpy(bad.data() + 32, &big, sizeof(big));  // node_count[0]
    expect_reject(bad, "inconsistent totals");
  }
  {
    // Out-of-range node id.
    std::string bad = good;
    uint32_t huge = 12345;
    std::memcpy(bad.data() + bad.size() - sizeof(huge), &huge, sizeof(huge));
    expect_reject(bad, "node id out of range");
  }

  // The untouched buffer still decodes after all that slicing.
  ASSERT_TRUE(DeserializeRRShard(good, 20, &out, &edges).ok());
  ExpectEqualCollections(shard.sets, out);
}

}  // namespace
}  // namespace timpp
