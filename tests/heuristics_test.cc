// Tests for baselines/heuristics.h.
#include <gtest/gtest.h>

#include <set>

#include "baselines/heuristics.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeGraph;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

TEST(HeuristicsValidationTest, AllRejectBadK) {
  Graph g = MakeChain(4, 0.5f);
  std::vector<NodeId> seeds;
  EXPECT_TRUE(SelectByDegree(g, 0, &seeds).IsInvalidArgument());
  EXPECT_TRUE(SelectByDegree(g, 5, &seeds).IsInvalidArgument());
  EXPECT_TRUE(SelectSingleDiscount(g, 0, &seeds).IsInvalidArgument());
  EXPECT_TRUE(SelectDegreeDiscount(g, 0, 0.01, &seeds).IsInvalidArgument());
  EXPECT_TRUE(SelectByPageRank(g, 0, 0.85, 20, &seeds).IsInvalidArgument());
  EXPECT_TRUE(SelectRandom(g, 0, 1, &seeds).IsInvalidArgument());
}

TEST(DegreeTest, TopKByOutDegree) {
  // Node 0: degree 3; node 1: degree 2; node 2: degree 1.
  Graph g = MakeGraph(5, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
                          {1, 2, 1}, {1, 3, 1}, {2, 3, 1}});
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByDegree(g, 2, &seeds).ok());
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 1}));
}

TEST(DegreeTest, TieBreaksBySmallerId) {
  Graph g = MakeGraph(4, {{2, 0, 1}, {1, 0, 1}});  // nodes 1,2 both degree 1
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByDegree(g, 1, &seeds).ok());
  EXPECT_EQ(seeds[0], 1u);
}

TEST(SingleDiscountTest, DiscountsEdgesIntoChosenSeeds) {
  // SingleDiscount semantics: an edge pointing into an already-selected
  // seed is worthless, so its source loses one unit of effective degree.
  // Hub 0 -> {1,2,3} is picked first. Node 4 -> {0, 5} then loses the edge
  // into seed 0 (effective degree 1), so node 6 -> {7, 8} (degree 2) wins
  // the second slot even though raw degrees tie.
  Graph g = MakeGraph(9, {{0, 1, 1}, {0, 2, 1}, {0, 3, 1},
                          {4, 0, 1}, {4, 5, 1},
                          {6, 7, 1}, {6, 8, 1}});
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectSingleDiscount(g, 2, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 6u) << "node 4's edge into seed 0 should be discounted";
}

TEST(DegreeDiscountTest, PicksHubFirstAndAvoidsItsAudience) {
  Graph g = MakeGraph(8, {{0, 1, 0.1f}, {0, 2, 0.1f}, {0, 3, 0.1f},
                          {1, 2, 0.1f}, {1, 3, 0.1f},
                          {5, 6, 0.1f}, {5, 7, 0.1f}});
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectDegreeDiscount(g, 2, 0.1, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_EQ(seeds[1], 5u);
}

TEST(DegreeDiscountTest, NonPositivePUsesMeanEdgeProbability) {
  Graph g = MakeTwoCommunities(0.25f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectDegreeDiscount(g, 3, 0.0, &seeds).ok());
  EXPECT_EQ(seeds.size(), 3u);
  EXPECT_EQ(std::set<NodeId>(seeds.begin(), seeds.end()).size(), 3u);
}

TEST(PageRankTest, ChainHeadRanksFirstOnTranspose) {
  // PageRank on G^T concentrates mass at sources of influence: the chain
  // head 0 feeds everything downstream.
  Graph g = MakeChain(6, 1.0f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByPageRank(g, 1, 0.85, 50, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(PageRankTest, HubOutranksSpokes) {
  Graph g = MakeOutStar(10, 1.0f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByPageRank(g, 1, 0.85, 50, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(PageRankTest, RejectsBadDamping) {
  Graph g = MakeChain(4, 0.5f);
  std::vector<NodeId> seeds;
  EXPECT_TRUE(SelectByPageRank(g, 1, 0.0, 20, &seeds).IsInvalidArgument());
  EXPECT_TRUE(SelectByPageRank(g, 1, 1.0, 20, &seeds).IsInvalidArgument());
}

TEST(RandomTest, DistinctAndDeterministic) {
  Graph g = MakeTwoCommunities(0.3f);
  std::vector<NodeId> a, b;
  ASSERT_TRUE(SelectRandom(g, 5, 99, &a).ok());
  ASSERT_TRUE(SelectRandom(g, 5, 99, &b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::set<NodeId>(a.begin(), a.end()).size(), 5u);
  std::vector<NodeId> c;
  ASSERT_TRUE(SelectRandom(g, 5, 100, &c).ok());
  EXPECT_NE(a, c) << "different seeds should give different picks";
}

TEST(RandomTest, KEqualsNReturnsAllNodes) {
  Graph g = MakeChain(6, 0.5f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectRandom(g, 6, 1, &seeds).ok());
  EXPECT_EQ(std::set<NodeId>(seeds.begin(), seeds.end()).size(), 6u);
}

}  // namespace
}  // namespace timpp
