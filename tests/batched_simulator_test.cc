// Tests for diffusion/batched_simulator.h — the 64-lane bitmap-parallel
// IC cascade engine — and its SpreadEstimator/CELF/IRIE integration
// (SpreadEstimatorOptions::mc_batch, VerifySpread).
//
// Strategy: at p = 1 every cascade is deterministic, so lane-vs-scalar
// equivalence is exact and asserted bit-for-bit (counts, per-lane
// activation readout, max_hops truncation, duplicate seeds, partial
// batches). At p < 1 the batched estimator must agree with the exact
// oracle / the scalar estimator within Monte-Carlo tolerance — for plain
// IC, weighted spread, hop-bounded cascades, and the shared-draw mode
// (whose lanes are correlated but whose mean must stay unbiased).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <vector>

#include "baselines/celf_greedy.h"
#include "baselines/irie.h"
#include "diffusion/batched_simulator.h"
#include "diffusion/exact_spread.h"
#include "diffusion/ic_simulator.h"
#include "diffusion/spread_estimator.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;
using testing::MakeChain;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;
using testing::MakeWcPowerLaw;

// ---- exact equivalence at p = 1 -------------------------------------

TEST(BatchedSimulatorTest, FullLanesOnCertainChain) {
  Graph g = MakeChain(10, 1.0f);
  BatchedIcSimulator sim(g);
  Rng rng(7);
  const std::vector<NodeId> seeds = {0};
  EXPECT_EQ(sim.SimulateBatch(seeds, rng), 64u * 10u);
}

TEST(BatchedSimulatorTest, PartialLanesCountOnlyRequestedLanes) {
  Graph g = MakeChain(10, 1.0f);
  BatchedIcSimulator sim(g);
  Rng rng(7);
  const std::vector<NodeId> seeds = {0};
  for (int lanes : {1, 2, 5, 63}) {
    EXPECT_EQ(sim.SimulateBatch(seeds, rng, lanes),
              static_cast<uint64_t>(lanes) * 10u)
        << "lanes=" << lanes;
  }
}

TEST(BatchedSimulatorTest, MaxHopsMatchesScalarTruncation) {
  Graph g = MakeChain(10, 1.0f);
  BatchedIcSimulator batched(g);
  IcSimulator scalar(g);
  const std::vector<NodeId> seeds = {0};
  for (uint32_t hops : {1u, 3u, 9u, 20u}) {
    Rng rng_b(11), rng_s(11);
    const uint64_t per_lane = scalar.Simulate(seeds, rng_s, hops);
    EXPECT_EQ(batched.SimulateBatch(seeds, rng_b, 64, hops), 64u * per_lane)
        << "hops=" << hops;
  }
}

TEST(BatchedSimulatorTest, DuplicateSeedsCountOncePerLane) {
  Graph g = MakeChain(6, 1.0f);
  BatchedIcSimulator sim(g);
  Rng rng(3);
  const std::vector<NodeId> seeds = {0, 0, 2, 0};
  EXPECT_EQ(sim.SimulateBatch(seeds, rng), 64u * 6u);
}

TEST(BatchedSimulatorTest, CollectReadoutMatchesScalarPerLane) {
  Graph g = MakeOutStar(8, 1.0f);
  BatchedIcSimulator sim(g);
  Rng rng(5);
  const std::vector<NodeId> seeds = {0};
  std::vector<LaneActivation> events;
  const uint64_t total = sim.SimulateBatchCollect(seeds, rng, &events);
  EXPECT_EQ(total, 64u * 8u);

  // Per node: masks of its events are pairwise disjoint and union to the
  // full lane set; every lane's activation list is the scalar cascade's.
  std::map<NodeId, uint64_t> mask_union;
  uint64_t popcount_sum = 0;
  for (const LaneActivation& e : events) {
    EXPECT_EQ(mask_union[e.node] & e.lanes, 0u)
        << "overlapping masks for node " << e.node;
    mask_union[e.node] |= e.lanes;
    popcount_sum += static_cast<uint64_t>(std::popcount(e.lanes));
  }
  EXPECT_EQ(popcount_sum, total);
  ASSERT_EQ(mask_union.size(), 8u);
  for (const auto& [node, mask] : mask_union) {
    EXPECT_EQ(mask, ~0ULL) << "node " << node;
  }
}

TEST(BatchedSimulatorTest, ScratchStateResetsBetweenBatches) {
  // Back-to-back batches from different seed sets must not leak lane bits
  // (epoch stamping) or frontier bits (pending arrays) across runs.
  Graph g = MakeChain(8, 1.0f);
  BatchedIcSimulator sim(g);
  Rng rng(9);
  const std::vector<NodeId> head = {0}, tail = {7};
  EXPECT_EQ(sim.SimulateBatch(head, rng), 64u * 8u);
  EXPECT_EQ(sim.SimulateBatch(tail, rng), 64u * 1u);
  // A hop-truncated run leaves staged frontier bits; they must be cleared.
  EXPECT_EQ(sim.SimulateBatch(head, rng, 64, 2), 64u * 3u);
  EXPECT_EQ(sim.SimulateBatch(head, rng), 64u * 8u);
}

// ---- statistical equivalence at p < 1 -------------------------------

/// Mean per-lane spread over `batches` full batches.
double BatchedMean(BatchedIcSimulator& sim, std::span<const NodeId> seeds,
                   Rng& rng, int batches, uint32_t max_hops = 0) {
  uint64_t total = 0;
  for (int b = 0; b < batches; ++b) {
    total += sim.SimulateBatch(seeds, rng, BatchedIcSimulator::kMaxLanes,
                               max_hops);
  }
  return static_cast<double>(total) / (64.0 * batches);
}

TEST(BatchedSimulatorTest, IndependentLanesMatchExactOracle) {
  Graph g = MakeTwoCommunities(0.3f);
  const std::vector<NodeId> seeds = {0};
  double exact = 0;
  ASSERT_TRUE(ExactSpreadIC(g, seeds, &exact).ok());
  BatchedIcSimulator sim(g, LaneLiveness::kIndependent);
  Rng rng(0xabcde);
  ExpectClose(exact, BatchedMean(sim, seeds, rng, 400), 0.05);
}

TEST(BatchedSimulatorTest, SharedDrawMeanIsUnbiased) {
  // Correlated lanes, unbiased mean: the shared-draw estimate must land
  // on the exact oracle too. Out-star: E[I({hub})] = 1 + (n-1)p exactly.
  Graph star = MakeOutStar(41, 0.25f);
  const std::vector<NodeId> hub = {0};
  BatchedIcSimulator shared_star(star, LaneLiveness::kSharedDraw);
  Rng rng1(0x5eed);
  ExpectClose(1.0 + 40 * 0.25, BatchedMean(shared_star, hub, rng1, 600),
              0.05);

  Graph g = MakeTwoCommunities(0.3f);
  const std::vector<NodeId> seeds = {0};
  double exact = 0;
  ASSERT_TRUE(ExactSpreadIC(g, seeds, &exact).ok());
  BatchedIcSimulator shared(g, LaneLiveness::kSharedDraw);
  Rng rng2(0x5eed);
  ExpectClose(exact, BatchedMean(shared, seeds, rng2, 800), 0.05);
}

TEST(BatchedSimulatorTest, SmallProbabilityExpansionBeyond32Bits) {
  // p = 0.001f decomposes to m·2^-33 (k = 33 > 32): the dense bitwise
  // sampler must treat expansion bits past the 24-bit mantissa as literal
  // zeros instead of shifting a 32-bit value by >= 32 (UB; on x86 the
  // wrapped shift count turned those AND steps into OR steps, firing
  // coins at ~1/2 instead of p). A full-lane star keeps all 64 lanes
  // pending at hop 1, so every spoke takes the bitwise path; the buggy
  // mask would inflate the mean to ~n/2. E[I({hub})] = 1 + (n-1)p.
  Graph star = MakeOutStar(600, 0.001f);
  const std::vector<NodeId> hub = {0};
  BatchedIcSimulator sim(star, LaneLiveness::kIndependent);
  Rng rng(0x5ca1e);
  ExpectClose(1.0 + 599 * 0.001, BatchedMean(sim, hub, rng, 400), 0.05);
}

TEST(BatchedSimulatorTest, MaxHopsStatisticalEquivalence) {
  // Hop-bounded cascades: batched mean vs the scalar estimator's mean at
  // the same hop budget (no exact oracle supports truncation).
  Graph g = MakeWcPowerLaw(400, 3, 17);
  const std::vector<NodeId> seeds = {0, 1, 2};
  SpreadEstimatorOptions scalar;
  scalar.num_samples = 30000;
  scalar.max_hops = 2;
  const double reference =
      SpreadEstimator(g, scalar).Estimate(seeds, 0xfeed);

  BatchedIcSimulator sim(g, LaneLiveness::kIndependent);
  Rng rng(0xbeef);
  ExpectClose(reference, BatchedMean(sim, seeds, rng, 500, 2), 0.05);
}

TEST(BatchedSimulatorTest, WeightedSpreadMatchesScalarCollect) {
  Graph g = MakeTwoCommunities(0.3f);
  const std::vector<NodeId> seeds = {1};
  std::vector<double> weights(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) weights[v] = 1.0 + 0.5 * v;

  // Exact weighted spread via per-node activation probabilities is not
  // exposed; use a large scalar-collect estimate as the reference.
  SpreadEstimatorOptions scalar;
  scalar.num_samples = 60000;
  scalar.node_weights = &weights;
  const double reference =
      SpreadEstimator(g, scalar).Estimate(seeds, 0x77);

  BatchedIcSimulator sim(g, LaneLiveness::kIndependent);
  Rng rng(0x42);
  double total = 0;
  const int batches = 500;
  for (int b = 0; b < batches; ++b) {
    total += sim.SimulateBatchWeighted(seeds, rng, weights);
  }
  ExpectClose(reference, total / (64.0 * batches), 0.05);
}

// ---- SpreadEstimator integration ------------------------------------

TEST(BatchedEstimatorTest, Bitmap64AgreesWithScalarEstimate) {
  Graph g = MakeWcPowerLaw(500, 3, 23);
  const std::vector<NodeId> seeds = {0, 1, 2, 3, 4};
  SpreadEstimatorOptions scalar, bitmap, shared;
  scalar.num_samples = bitmap.num_samples = shared.num_samples = 40000;
  bitmap.mc_batch = McBatchMode::kBitmap64;
  shared.mc_batch = McBatchMode::kBitmap64Shared;
  const double s = SpreadEstimator(g, scalar).Estimate(seeds, 0x123);
  const double b = SpreadEstimator(g, bitmap).Estimate(seeds, 0x123);
  const double h = SpreadEstimator(g, shared).Estimate(seeds, 0x123);
  ExpectClose(s, b, 0.03);
  ExpectClose(s, h, 0.05);  // correlated lanes: wider band, same mean
}

TEST(BatchedEstimatorTest, ScalarTailHandlesSubBatchSampleCounts) {
  // num_samples < 64 must fall through to the scalar tail untouched; at
  // p = 1 both paths are exact, so the estimate is exactly n.
  Graph g = MakeChain(9, 1.0f);
  const std::vector<NodeId> seeds = {0};
  for (uint64_t samples : {1ull, 63ull, 64ull, 65ull, 130ull}) {
    SpreadEstimatorOptions options;
    options.num_samples = samples;
    options.mc_batch = McBatchMode::kBitmap64;
    EXPECT_DOUBLE_EQ(SpreadEstimator(g, options).Estimate(seeds, 1), 9.0)
        << "samples=" << samples;
  }
}

TEST(BatchedEstimatorTest, DeterministicInSeedAndThreadCount) {
  Graph g = MakeWcPowerLaw(300, 2, 31);
  const std::vector<NodeId> seeds = {0, 5};
  for (McBatchMode mode : {McBatchMode::kScalar, McBatchMode::kBitmap64,
                           McBatchMode::kBitmap64Shared}) {
    for (uint64_t samples : {1ull, 64ull, 1000ull}) {
      for (unsigned threads : {1u, 2u, 4u}) {
        SpreadEstimatorOptions options;
        options.num_samples = samples;
        options.num_threads = threads;
        options.mc_batch = mode;
        SpreadEstimator estimator(g, options);
        const double first = estimator.Estimate(seeds, 0x9d);
        EXPECT_DOUBLE_EQ(first, estimator.Estimate(seeds, 0x9d))
            << "mode=" << McBatchModeName(mode) << " samples=" << samples
            << " threads=" << threads;
      }
    }
  }
}

TEST(BatchedEstimatorTest, VerifySpreadMatchesEquivalentEstimate) {
  Graph g = MakeWcPowerLaw(300, 2, 31);
  const std::vector<NodeId> seeds = {0, 1};
  VerifySpreadOptions verify;
  verify.num_samples = 5000;
  verify.seed = 0xabc;
  SpreadEstimatorOptions est;
  est.num_samples = 5000;
  est.mc_batch = McBatchMode::kBitmap64;
  EXPECT_DOUBLE_EQ(VerifySpread(g, seeds, verify),
                   SpreadEstimator(g, est).Estimate(seeds, 0xabc));
}

// ---- thread-split sample accounting (regression) --------------------

TEST(ThreadSplitTest, NoSampleLostWhenSamplesNotDivisibleByThreads) {
  // On a p = 1 chain every cascade returns exactly n, so the weighted
  // partial-sum merge returns exactly n iff Σ per-thread counts equals
  // num_samples — a lost or double-counted sample shifts the mean off n.
  Graph g = MakeChain(7, 1.0f);
  const std::vector<NodeId> seeds = {0};
  for (McBatchMode mode : {McBatchMode::kScalar, McBatchMode::kBitmap64}) {
    for (uint64_t samples : {5ull, 7ull, 64ull, 97ull, 997ull}) {
      for (unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
        SpreadEstimatorOptions options;
        options.num_samples = samples;
        options.num_threads = threads;
        options.mc_batch = mode;
        EXPECT_DOUBLE_EQ(SpreadEstimator(g, options).Estimate(seeds, 3), 7.0)
            << "mode=" << McBatchModeName(mode) << " samples=" << samples
            << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadSplitTest, WeightedPathLosesNoSamplesEither) {
  Graph g = MakeChain(5, 1.0f);
  const std::vector<NodeId> seeds = {0};
  const std::vector<double> weights(5, 2.0);  // weighted spread = 10 exactly
  for (uint64_t samples : {9ull, 130ull}) {
    for (unsigned threads : {3u, 4u}) {
      SpreadEstimatorOptions options;
      options.num_samples = samples;
      options.num_threads = threads;
      options.mc_batch = McBatchMode::kBitmap64;
      options.node_weights = &weights;
      EXPECT_DOUBLE_EQ(SpreadEstimator(g, options).Estimate(seeds, 3), 10.0)
          << "samples=" << samples << " threads=" << threads;
    }
  }
}

// ---- CELF / IRIE parity ---------------------------------------------

TEST(BatchedSolverTest, CelfSeedQualityMatchesScalar) {
  Graph g = MakeWcPowerLaw(400, 3, 47);
  const int k = 3;
  CelfOptions scalar, bitmap;
  scalar.num_mc_samples = bitmap.num_mc_samples = 2000;
  scalar.seed = bitmap.seed = 4242;
  bitmap.mc_batch = McBatchMode::kBitmap64;

  std::vector<NodeId> seeds_scalar, seeds_bitmap;
  ASSERT_TRUE(RunCelfGreedy(g, scalar, k, &seeds_scalar, nullptr).ok());
  ASSERT_TRUE(RunCelfGreedy(g, bitmap, k, &seeds_bitmap, nullptr).ok());
  ASSERT_EQ(seeds_scalar.size(), static_cast<size_t>(k));
  ASSERT_EQ(seeds_bitmap.size(), static_cast<size_t>(k));

  // The seed sets may differ (the modes consume randomness differently);
  // their quality must not: both spreads within MC noise of each other,
  // measured by one common instrument.
  VerifySpreadOptions verify;
  verify.num_samples = 20000;
  const double spread_scalar = VerifySpread(g, seeds_scalar, verify);
  const double spread_bitmap = VerifySpread(g, seeds_bitmap, verify);
  ExpectClose(spread_scalar, spread_bitmap, 0.05);
}

TEST(BatchedSolverTest, IrieSeedQualityMatchesScalar) {
  Graph g = MakeWcPowerLaw(400, 3, 53);
  const int k = 5;
  IrieOptions scalar, bitmap;
  bitmap.mc_batch = McBatchMode::kBitmap64;
  std::vector<NodeId> seeds_scalar, seeds_bitmap;
  ASSERT_TRUE(RunIrie(g, scalar, k, &seeds_scalar, nullptr).ok());
  ASSERT_TRUE(RunIrie(g, bitmap, k, &seeds_bitmap, nullptr).ok());
  ASSERT_EQ(seeds_bitmap.size(), static_cast<size_t>(k));

  VerifySpreadOptions verify;
  verify.num_samples = 20000;
  ExpectClose(VerifySpread(g, seeds_scalar, verify),
              VerifySpread(g, seeds_bitmap, verify), 0.08);
}

}  // namespace
}  // namespace timpp
