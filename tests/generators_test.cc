// Unit tests for gen/generators.h and gen/dataset_proxies.h.
#include <gtest/gtest.h>

#include <cmath>

#include "gen/dataset_proxies.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

Graph BuildFrom(GraphBuilder& builder) {
  Graph g;
  Status s = builder.Build(&g);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return g;
}

TEST(GeneratorsTest, ErdosRenyiExactEdgeCount) {
  GraphBuilder builder;
  GenErdosRenyi(100, 500, 1, &builder);
  Graph g = BuildFrom(builder);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(GeneratorsTest, ErdosRenyiNoSelfLoopsOrDuplicates) {
  GraphBuilder builder;
  GenErdosRenyi(30, 200, 2, &builder);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const RawEdge& e : builder.edges()) {
    EXPECT_NE(e.from, e.to);
    EXPECT_TRUE(seen.insert({e.from, e.to}).second) << "duplicate edge";
  }
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  GraphBuilder b1, b2;
  GenErdosRenyi(50, 100, 7, &b1);
  GenErdosRenyi(50, 100, 7, &b2);
  ASSERT_EQ(b1.edges().size(), b2.edges().size());
  for (size_t i = 0; i < b1.edges().size(); ++i) {
    EXPECT_EQ(b1.edges()[i].from, b2.edges()[i].from);
    EXPECT_EQ(b1.edges()[i].to, b2.edges()[i].to);
  }
}

TEST(GeneratorsTest, BarabasiAlbertAverageDegree) {
  GraphBuilder builder;
  GenBarabasiAlbert(2000, 3, 3, &builder);
  Graph g = BuildFrom(builder);
  EXPECT_EQ(g.num_nodes(), 2000u);
  // ~attach undirected edges per node => ~2*attach arcs per node.
  const double avg_arcs =
      static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_NEAR(avg_arcs, 6.0, 0.5);
}

TEST(GeneratorsTest, BarabasiAlbertIsConnected) {
  GraphBuilder builder;
  GenBarabasiAlbert(500, 2, 4, &builder);
  Graph g = BuildFrom(builder);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_weak_components, 1u);
}

TEST(GeneratorsTest, BarabasiAlbertHasHeavyTail) {
  GraphBuilder builder;
  GenBarabasiAlbert(5000, 2, 5, &builder);
  Graph g = BuildFrom(builder);
  GraphStats stats = ComputeGraphStats(g);
  // Preferential attachment should produce a hub far above the mean degree
  // of ~4; a uniform random graph of the same density would peak ~15.
  EXPECT_GT(stats.max_out_degree, 50u);
}

TEST(GeneratorsTest, DirectedScaleFreeAverageOutDegree) {
  GraphBuilder builder;
  GenDirectedScaleFree(5000, 7.0, 6, &builder);
  Graph g = BuildFrom(builder);
  const double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_NEAR(avg, 7.0, 0.5);  // self-loop skips cause slight undershoot
}

TEST(GeneratorsTest, DirectedScaleFreeInDegreeHeavyTail) {
  GraphBuilder builder;
  GenDirectedScaleFree(5000, 5.0, 8, &builder);
  Graph g = BuildFrom(builder);
  uint64_t max_in = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_in = std::max(max_in, g.InDegree(v));
  }
  EXPECT_GT(max_in, 100u);  // hubs accumulate in-links
}

TEST(GeneratorsTest, WattsStrogatzDegree) {
  GraphBuilder builder;
  GenWattsStrogatz(100, 2, 0.0, 9, &builder);
  Graph g = BuildFrom(builder);
  // beta=0: pure ring lattice, every node has exactly 2 out + 2 in arcs
  // from its own insertions plus 2 of each from neighbors = degree 4 total
  // (arcs: each undirected edge stored twice).
  EXPECT_EQ(g.num_edges(), 100u * 2 * 2);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.OutDegree(v) + g.InDegree(v), 8u);
  }
}

TEST(GeneratorsTest, ToyGraphShapes) {
  {
    GraphBuilder b;
    GenDirectedPath(4, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_EQ(g.OutDegree(3), 0u);
  }
  {
    GraphBuilder b;
    GenDirectedCycle(4, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_EQ(g.OutDegree(3), 1u);
  }
  {
    GraphBuilder b;
    GenStarOut(5, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.OutDegree(0), 4u);
    EXPECT_EQ(g.InDegree(0), 0u);
  }
  {
    GraphBuilder b;
    GenStarIn(5, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.InDegree(0), 4u);
    EXPECT_EQ(g.OutDegree(0), 0u);
  }
  {
    GraphBuilder b;
    GenCompleteDirected(4, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.num_edges(), 12u);
  }
  {
    GraphBuilder b;
    GenGridUndirected(3, 3, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.num_nodes(), 9u);
    EXPECT_EQ(g.num_edges(), 24u);  // 12 undirected edges
  }
  {
    GraphBuilder b;
    GenBinaryTreeOut(3, &b);
    Graph g = BuildFrom(b);
    EXPECT_EQ(g.num_nodes(), 15u);
    EXPECT_EQ(g.num_edges(), 14u);
    EXPECT_EQ(g.InDegree(0), 0u);
  }
}

// -------------------------------------------------------- dataset proxies --

TEST(DatasetProxiesTest, AllSpecsPresent) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "NetHEPT");
  EXPECT_EQ(specs[4].name, "Twitter");
  EXPECT_EQ(SpecFor(Dataset::kDblp).name, "DBLP");
  EXPECT_TRUE(SpecFor(Dataset::kDblp).undirected);
  EXPECT_FALSE(SpecFor(Dataset::kLiveJournal).undirected);
}

TEST(DatasetProxiesTest, RejectsBadScale) {
  Graph g;
  EXPECT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.0,
                                WeightScheme::kWeightedCascadeIC, 1, &g)
                  .IsInvalidArgument());
  EXPECT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 1.5,
                                WeightScheme::kWeightedCascadeIC, 1, &g)
                  .IsInvalidArgument());
}

TEST(DatasetProxiesTest, NetHeptProxyMatchesSpecShape) {
  Graph g;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 1.0,
                                WeightScheme::kWeightedCascadeIC, 1, &g)
                  .ok());
  const auto& spec = SpecFor(Dataset::kNetHept);
  EXPECT_NEAR(static_cast<double>(g.num_nodes()),
              static_cast<double>(spec.nodes), spec.nodes * 0.01);
  const double avg_degree =
      static_cast<double>(g.num_edges()) / g.num_nodes();
  EXPECT_NEAR(avg_degree, spec.avg_degree, 0.8);
}

TEST(DatasetProxiesTest, ScaleShrinksNodeCount) {
  Graph small, tiny;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kEpinions, 0.1,
                                WeightScheme::kWeightedCascadeIC, 1, &small)
                  .ok());
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kEpinions, 0.05,
                                WeightScheme::kWeightedCascadeIC, 1, &tiny)
                  .ok());
  EXPECT_NEAR(small.num_nodes(), 7600u, 80);
  EXPECT_NEAR(tiny.num_nodes(), 3800u, 40);
}

TEST(DatasetProxiesTest, ICWeightsAreWeightedCascade) {
  Graph g;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.05,
                                WeightScheme::kWeightedCascadeIC, 2, &g)
                  .ok());
  for (NodeId v = 0; v < g.num_nodes() && v < 200; ++v) {
    for (const Arc& a : g.InArcs(v)) {
      EXPECT_NEAR(a.prob, 1.0 / static_cast<double>(g.InDegree(v)), 1e-5);
    }
  }
}

TEST(DatasetProxiesTest, LTWeightsNormalized) {
  Graph g;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kEpinions, 0.02,
                                WeightScheme::kRandomLT, 3, &g)
                  .ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) continue;
    EXPECT_NEAR(g.InProbSum(v), 1.0, 1e-3) << "node " << v;
  }
}

TEST(DatasetProxiesTest, DeterministicInSeed) {
  Graph a, b;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.05,
                                WeightScheme::kWeightedCascadeIC, 11, &a)
                  .ok());
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.05,
                                WeightScheme::kWeightedCascadeIC, 11, &b)
                  .ok());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    auto arcs_a = a.OutArcs(v);
    auto arcs_b = b.OutArcs(v);
    ASSERT_EQ(arcs_a.size(), arcs_b.size());
    for (size_t i = 0; i < arcs_a.size(); ++i) {
      EXPECT_EQ(arcs_a[i].node, arcs_b[i].node);
    }
  }
}

TEST(DatasetProxiesTest, MinimumSizeClamp) {
  Graph g;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 1e-9,
                                WeightScheme::kWeightedCascadeIC, 1, &g)
                  .ok());
  EXPECT_GE(g.num_nodes(), 64u);
}

}  // namespace
}  // namespace timpp
