// Integration tests: whole algorithms compared against each other on a
// mid-size synthetic social network — the cross-checks behind the paper's
// experimental narrative (§7) at test-suite scale.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/celf_greedy.h"
#include "baselines/heuristics.h"
#include "baselines/irie.h"
#include "baselines/ris.h"
#include "baselines/simpath.h"
#include "core/tim.h"
#include "diffusion/spread_estimator.h"
#include "gen/dataset_proxies.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

// One shared mid-size network per weight scheme (NetHEPT proxy at 2%
// scale: ~300 nodes) so the whole file stays fast.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ic_graph_ = new Graph();
    lt_graph_ = new Graph();
    ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.02,
                                  WeightScheme::kWeightedCascadeIC, 77,
                                  ic_graph_)
                    .ok());
    ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.02,
                                  WeightScheme::kRandomLT, 77, lt_graph_)
                    .ok());
  }
  static void TearDownTestSuite() {
    delete ic_graph_;
    delete lt_graph_;
    ic_graph_ = nullptr;
    lt_graph_ = nullptr;
  }

  static double Spread(const Graph& g, const std::vector<NodeId>& seeds,
                       DiffusionModel model) {
    SpreadEstimatorOptions options;
    options.num_samples = 4000;
    options.model = model;
    SpreadEstimator estimator(g, options);
    return estimator.Estimate(seeds, /*seed=*/31337);
  }

  static TimResult RunTim(const Graph& g, int k, DiffusionModel model,
                          bool refine) {
    TimOptions options;
    options.k = k;
    options.epsilon = 0.3;
    options.model = model;
    options.use_refinement = refine;
    options.seed = 2024;
    TimSolver solver(g);
    TimResult result;
    EXPECT_TRUE(solver.Run(options, &result).ok());
    return result;
  }

  static Graph* ic_graph_;
  static Graph* lt_graph_;
};

Graph* IntegrationTest::ic_graph_ = nullptr;
Graph* IntegrationTest::lt_graph_ = nullptr;

TEST_F(IntegrationTest, TimPlusMatchesTimQualityIC) {
  const int k = 10;
  TimResult tim = RunTim(*ic_graph_, k, DiffusionModel::kIC, false);
  TimResult tim_plus = RunTim(*ic_graph_, k, DiffusionModel::kIC, true);
  const double s_tim = Spread(*ic_graph_, tim.seeds, DiffusionModel::kIC);
  const double s_plus =
      Spread(*ic_graph_, tim_plus.seeds, DiffusionModel::kIC);
  // §7.2 / Figure 5: no significant spread difference between TIM and TIM+.
  EXPECT_NEAR(s_tim, s_plus, 0.1 * std::max(s_tim, s_plus));
}

TEST_F(IntegrationTest, RefinementShrinksTheta) {
  // Figure 4's mechanism: KPT+ >= KPT* so TIM+ samples fewer RR sets.
  const int k = 10;
  TimOptions options;
  options.k = k;
  options.epsilon = 0.3;
  options.seed = 5;
  options.adjust_ell = false;  // same λ for a clean comparison
  TimSolver solver(*ic_graph_);

  options.use_refinement = false;
  TimResult tim;
  ASSERT_TRUE(solver.Run(options, &tim).ok());
  options.use_refinement = true;
  TimResult tim_plus;
  ASSERT_TRUE(solver.Run(options, &tim_plus).ok());

  EXPECT_LT(tim_plus.stats.theta, tim.stats.theta);
  EXPECT_GE(tim_plus.stats.kpt_plus, tim.stats.kpt_star);
}

TEST_F(IntegrationTest, TimPlusMatchesCelfPlusPlusQualityIC) {
  // §7.2: the RR-sampling methods and the MC-greedy family agree on seed
  // quality; TIM+ is just faster. Verify the quality half.
  const int k = 5;
  TimResult tim_plus = RunTim(*ic_graph_, k, DiffusionModel::kIC, true);

  CelfOptions celf_options;
  celf_options.variant = GreedyVariant::kCelfPlusPlus;
  celf_options.num_mc_samples = 500;
  celf_options.seed = 99;
  std::vector<NodeId> celf_seeds;
  ASSERT_TRUE(
      RunCelfGreedy(*ic_graph_, celf_options, k, &celf_seeds, nullptr).ok());

  const double s_tim = Spread(*ic_graph_, tim_plus.seeds, DiffusionModel::kIC);
  const double s_celf = Spread(*ic_graph_, celf_seeds, DiffusionModel::kIC);
  EXPECT_GE(s_tim, 0.9 * s_celf);
}

TEST_F(IntegrationTest, TimPlusBeatsRandomAndMatchesOrBeatsDegreeIC) {
  const int k = 10;
  TimResult tim_plus = RunTim(*ic_graph_, k, DiffusionModel::kIC, true);
  std::vector<NodeId> degree_seeds, random_seeds;
  ASSERT_TRUE(SelectByDegree(*ic_graph_, k, &degree_seeds).ok());
  ASSERT_TRUE(SelectRandom(*ic_graph_, k, 7, &random_seeds).ok());

  const double s_tim = Spread(*ic_graph_, tim_plus.seeds, DiffusionModel::kIC);
  const double s_degree =
      Spread(*ic_graph_, degree_seeds, DiffusionModel::kIC);
  const double s_random =
      Spread(*ic_graph_, random_seeds, DiffusionModel::kIC);
  EXPECT_GE(s_tim, 0.95 * s_degree);
  EXPECT_GT(s_tim, 1.3 * s_random)
      << "an approximation algorithm must clearly beat random selection";
}

TEST_F(IntegrationTest, TimPlusMatchesOrBeatsIrieIC) {
  // Figure 9's shape: TIM+ spreads are >= IRIE's.
  const int k = 10;
  TimResult tim_plus = RunTim(*ic_graph_, k, DiffusionModel::kIC, true);
  IrieOptions irie_options;
  std::vector<NodeId> irie_seeds;
  ASSERT_TRUE(RunIrie(*ic_graph_, irie_options, k, &irie_seeds, nullptr).ok());

  const double s_tim = Spread(*ic_graph_, tim_plus.seeds, DiffusionModel::kIC);
  const double s_irie = Spread(*ic_graph_, irie_seeds, DiffusionModel::kIC);
  EXPECT_GE(s_tim, 0.9 * s_irie);
}

TEST_F(IntegrationTest, TimPlusMatchesOrBeatsSimpathLT) {
  // Figure 11's shape: TIM+ spreads are >= SIMPATH's under LT.
  const int k = 5;
  TimResult tim_plus = RunTim(*lt_graph_, k, DiffusionModel::kLT, true);
  SimpathOptions simpath_options;
  simpath_options.eta = 1e-3;
  std::vector<NodeId> simpath_seeds;
  ASSERT_TRUE(
      RunSimpath(*lt_graph_, simpath_options, k, &simpath_seeds, nullptr)
          .ok());

  const double s_tim = Spread(*lt_graph_, tim_plus.seeds, DiffusionModel::kLT);
  const double s_simpath =
      Spread(*lt_graph_, simpath_seeds, DiffusionModel::kLT);
  EXPECT_GE(s_tim, 0.9 * s_simpath);
}

TEST_F(IntegrationTest, RisAgreesWithTimOnSeedsQuality) {
  const int k = 5;
  TimResult tim_plus = RunTim(*ic_graph_, k, DiffusionModel::kIC, true);
  RisOptions ris_options;
  ris_options.epsilon = 0.3;
  ris_options.tau_scale = 0.05;  // keep the τ threshold test-sized
  std::vector<NodeId> ris_seeds;
  ASSERT_TRUE(RunRis(*ic_graph_, ris_options, k, &ris_seeds, nullptr).ok());

  const double s_tim = Spread(*ic_graph_, tim_plus.seeds, DiffusionModel::kIC);
  const double s_ris = Spread(*ic_graph_, ris_seeds, DiffusionModel::kIC);
  EXPECT_GE(s_tim, 0.9 * s_ris);
  EXPECT_GE(s_ris, 0.7 * s_tim);
}

TEST_F(IntegrationTest, MemoryShrinksWithLooserEpsilon) {
  // Figure 12's mechanism: |R| = λ/KPT+ and λ ∝ 1/ε².
  TimOptions options;
  options.k = 10;
  options.seed = 8;
  TimSolver solver(*ic_graph_);

  options.epsilon = 0.2;
  TimResult tight;
  ASSERT_TRUE(solver.Run(options, &tight).ok());
  options.epsilon = 0.5;
  TimResult loose;
  ASSERT_TRUE(solver.Run(options, &loose).ok());
  EXPECT_GT(tight.stats.rr_memory_bytes, loose.stats.rr_memory_bytes);
  EXPECT_GT(tight.stats.theta, loose.stats.theta);
}

TEST_F(IntegrationTest, LtThetaUsuallySmallerThanIcOnProxies) {
  // §7.4 observes KPT+ tends to be larger under LT (normalized weights sum
  // to 1, so cascades run deeper), shrinking R. Directional check.
  const int k = 10;
  TimResult ic = RunTim(*ic_graph_, k, DiffusionModel::kIC, true);
  TimResult lt = RunTim(*lt_graph_, k, DiffusionModel::kLT, true);
  EXPECT_GT(lt.stats.kpt_plus, ic.stats.kpt_plus * 0.5)
      << "LT KPT+ collapsed unexpectedly";
}

}  // namespace
}  // namespace timpp
