// Acceptance tests of the fault-tolerant distributed sampling layer: a
// procs backend with deterministic injected faults (kill-before-reply,
// hang past the shard deadline, truncated frame, corrupt frame, slow
// handshake) must RECOVER — respawn the worker, replay the shard — and
// produce RR streams, seeds, θ and LB bit-identical to the local
// backend, at every worker count, mid-VisitSamples and under
// SharedRRCache growth. Recovery must be visible in BackendStats (and
// only then: healthy runs keep all-zero counters), retry-budget
// exhaustion must surface a descriptive Status (never truncated
// results), fallback=local must finish exhausted shards in-process, and
// the serving layer's Unavailable overload shedding must compose with
// backend retries without double-counting.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "distributed/fault_injection.h"
#include "distributed/process_shard_backend.h"
#include "engine/sampling_engine.h"
#include "engine/solver_registry.h"
#include "rrset/rr_collection.h"
#include "serving/request_scheduler.h"
#include "serving/rr_cache.h"
#include "serving/serving_engine.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeWcPowerLaw;

SampleBackendSpec Procs(unsigned workers, const std::string& fault_spec,
                        uint32_t shard_timeout_ms = 0) {
  SampleBackendSpec spec;
  spec.kind = SampleBackendKind::kProcessShards;
  spec.num_workers = workers;
  spec.fault_spec = fault_spec;
  spec.shard_timeout_ms = shard_timeout_ms;
  // Keep injected-hang recovery fast; correctness must not depend on the
  // backoff schedule.
  spec.retry_backoff_ms = 1;
  return spec;
}

SamplingConfig Config(uint64_t seed, const SampleBackendSpec& backend = {}) {
  SamplingConfig config;
  config.model = DiffusionModel::kIC;
  config.seed = seed;
  config.backend = backend;
  return config;
}

void ExpectEqualCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  for (size_t i = 0; i < a.num_sets(); ++i) {
    const auto sa = a.Set(static_cast<RRSetId>(i));
    const auto sb = b.Set(static_cast<RRSetId>(i));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin())) << "set " << i;
  }
}

// ------------------------------------ spec grammar ----------------------

TEST(FaultPlanTest, ParsesTheDocumentedGrammar) {
  FaultPlan plan;
  ASSERT_TRUE(ParseFaultPlan("kill@100;hang@5000x2:250;trunc@7;corrupt@9;"
                             "slowhs@1:50",
                             &plan)
                  .ok());
  ASSERT_EQ(plan.rules.size(), 5u);
  EXPECT_EQ(plan.rules[0].fault, FaultClass::kKillBeforeReply);
  EXPECT_EQ(plan.rules[0].key, 100u);
  EXPECT_EQ(plan.rules[0].times, 1u);
  EXPECT_EQ(plan.rules[1].fault, FaultClass::kHangInShard);
  EXPECT_EQ(plan.rules[1].times, 2u);
  EXPECT_EQ(plan.rules[1].delay_ms, 250u);
  EXPECT_EQ(plan.rules[4].fault, FaultClass::kSlowHandshake);
  EXPECT_EQ(plan.rules[4].key, 1u);

  // Empty specs and stray separators are fine (match nothing).
  EXPECT_TRUE(ParseFaultPlan("", &plan).ok());
  EXPECT_TRUE(ParseFaultPlan(";;", &plan).ok());
}

TEST(FaultPlanTest, RejectsMalformedRulesByName) {
  FaultPlan plan;
  for (const char* bad : {"explode@3", "kill@", "kill@abc", "kill@3:250",
                          "trunc@3:1", "hang@3x0", "hang@3xq", "kill"}) {
    const Status status = ParseFaultPlan(bad, &plan);
    EXPECT_FALSE(status.ok()) << bad;
    EXPECT_TRUE(status.IsInvalidArgument()) << bad;
  }
}

// ------------------------------------ fault matrix ----------------------

struct FaultCase {
  const char* name;
  const char* spec;          // fault keyed inside the sampled range
  uint32_t shard_timeout_ms;  // 0 = no deadline needed for this class
};

// Every fault class, at worker counts {1, 2, 4}: the fill must succeed,
// match the local stream bit for bit, and account the recovery in the
// class's counter.
TEST(FaultMatrixTest, EveryFaultClassRecoversBitIdentically) {
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  SamplingEngine local(graph, Config(31));
  RRCollection local_rr(graph.num_nodes());
  local.SampleInto(&local_rr, 600);
  ASSERT_TRUE(local.status().ok());

  const FaultCase cases[] = {
      {"kill", "kill@100", 0},
      {"hang", "hang@100:60000", 200},
      {"trunc", "trunc@100", 0},
      {"corrupt", "corrupt@100", 0},
      {"slowhs", "slowhs@0:60000", 200},
  };
  for (const FaultCase& c : cases) {
    for (unsigned workers : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(c.name) + " x" + std::to_string(workers));
      SamplingEngine procs(
          graph, Config(31, Procs(workers, c.spec, c.shard_timeout_ms)));
      RRCollection procs_rr(graph.num_nodes());
      const SampleBatch batch = procs.SampleInto(&procs_rr, 600);
      ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();
      EXPECT_EQ(batch.sets_added, 600u);
      ExpectEqualCollections(local_rr, procs_rr);

      const BackendStats stats = procs.backend_stats();
      EXPECT_GE(stats.shard_retries + stats.worker_respawns, 1u);
      switch (c.spec[0]) {
        case 'k':
          EXPECT_GE(stats.worker_crashes, 1u);
          break;
        case 'h':
        case 's':  // slowhs: the handshake deadline expires
          EXPECT_GE(stats.shard_timeouts, 1u);
          break;
        case 't':
        case 'c':
          EXPECT_GE(stats.corrupt_frames, 1u);
          break;
      }
    }
  }
}

TEST(FaultMatrixTest, HealthyRunsKeepAllCountersZero) {
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  for (unsigned workers : {1u, 2u}) {
    SamplingEngine procs(graph, Config(31, Procs(workers, "")));
    RRCollection rr(graph.num_nodes());
    procs.SampleInto(&rr, 400);
    ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();
    EXPECT_FALSE(procs.backend_stats().any());
  }
}

TEST(FaultMatrixTest, FilteredVisitRecoversMidStream) {
  // VisitSamples with a filter rides the kSampleList protocol path; a
  // fault keyed at a listed index fires mid-visit and must recover
  // without dropping or reordering a single visit.
  const Graph graph = MakeWcPowerLaw(150, 3, 21);
  const auto filter = [](uint64_t index) { return index % 3 != 1; };

  struct Visit {
    uint64_t index;
    std::vector<NodeId> nodes;
    bool operator==(const Visit&) const = default;
  };
  const auto collect = [&](SamplingEngine& engine) {
    std::vector<Visit> visits;
    engine.VisitSamples(100, 2000, filter,
                        [&](uint64_t index, std::span<const NodeId> nodes) {
                          visits.push_back(
                              {index, {nodes.begin(), nodes.end()}});
                        });
    return visits;
  };

  SamplingEngine local(graph, Config(3));
  const auto local_visits = collect(local);
  for (const char* spec : {"kill@500", "trunc@500"}) {
    SCOPED_TRACE(spec);
    SamplingEngine procs(graph, Config(3, Procs(4, spec)));
    const auto procs_visits = collect(procs);
    ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();
    ASSERT_EQ(local_visits.size(), procs_visits.size());
    EXPECT_TRUE(local_visits == procs_visits);
    EXPECT_GE(procs.backend_stats().shard_retries, 1u);
  }
}

TEST(FaultMatrixTest, SharedRRCacheGrowthIsFaultInvisible) {
  // The serving layer's shared stream grows through the same backend;
  // injected faults during growth must never reach a reader.
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  RRCollection reference(graph.num_nodes());
  SamplingEngine local(graph, Config(11));
  local.SampleInto(&reference, 800);

  SamplingConfig faulty = Config(11, Procs(2, "kill@200;trunc@600"));
  SharedRRCache cache(graph, faulty);
  RRCollection out(graph.num_nodes());
  cache.Read(0, 800, &out);
  ExpectEqualCollections(reference, out);
}

// ------------------------------------ solver-level identity -------------

TEST(FaultMatrixTest, SolversStayBitIdenticalUnderInjectedFaults) {
  const Graph graph = MakeWcPowerLaw(250, 3, 17);
  for (const char* algo : {"tim+", "imm", "ris"}) {
    SCOPED_TRACE(algo);
    std::unique_ptr<InfluenceSolver> solver;
    ASSERT_TRUE(SolverRegistry::Global().Create(algo, graph, &solver).ok());
    SolverOptions options;
    options.k = 4;
    options.epsilon = 0.3;
    options.seed = 1234;
    options.ris_tau_scale = 0.05;
    options.ris_max_sets = 200000;

    SolverResult local;
    ASSERT_TRUE(solver->Run(options, &local).ok());
    // Healthy local runs carry no backend_* metrics at all.
    EXPECT_EQ(local.Metric("backend_shard_retries", -1.0), -1.0);

    options.sample_backend = Procs(2, "kill@50;corrupt@2000");
    SolverResult faulty;
    const Status status = solver->Run(options, &faulty);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(local.seeds, faulty.seeds);
    EXPECT_EQ(local.estimated_spread, faulty.estimated_spread);
    // θ (tim+/imm) and LB/τ are pure functions of the sample stream, so
    // they survive any recovery path; the recovery itself must be
    // visible in the flattened metrics.
    for (const char* metric : {"theta", "lb", "tau"}) {
      EXPECT_EQ(local.Metric(metric, -1.0), faulty.Metric(metric, -1.0))
          << metric;
    }
    EXPECT_GE(faulty.Metric("backend_shard_retries", 0.0), 1.0);
    EXPECT_GE(faulty.Metric("backend_worker_respawns", 0.0), 1.0);
  }
}

// ------------------------------------ exhaustion & fallback -------------

TEST(FaultExhaustionTest, ExhaustedRetryBudgetIsADescriptiveError) {
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  // x1000000: the fault fires on every attempt, so the budget must run
  // out. Low retry budget keeps the test fast.
  SampleBackendSpec spec = Procs(2, "kill@100x1000000");
  spec.max_shard_retries = 1;
  SamplingEngine engine(graph, Config(31, spec));
  RRCollection rr(graph.num_nodes());
  const SampleBatch batch = engine.SampleInto(&rr, 600);

  ASSERT_FALSE(engine.status().ok());
  // Never truncated results: the failed batch contributes nothing.
  EXPECT_EQ(batch.sets_added, 0u);
  EXPECT_EQ(rr.num_sets(), 0u);
  // The error names the shard, the attempt count and the last cause.
  const std::string message = engine.status().message();
  EXPECT_NE(message.find("shard"), std::string::npos) << message;
  EXPECT_NE(message.find("failed after 2 attempts"), std::string::npos)
      << message;
  EXPECT_NE(message.find("worker"), std::string::npos) << message;
}

TEST(FaultExhaustionTest, RepeatOffendersAreQuarantined) {
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  SampleBackendSpec spec = Procs(1, "kill@100x1000000");
  spec.max_shard_retries = 16;
  spec.max_worker_failures = 3;
  SamplingEngine engine(graph, Config(31, spec));
  RRCollection rr(graph.num_nodes());
  engine.SampleInto(&rr, 600);

  ASSERT_FALSE(engine.status().ok());
  EXPECT_TRUE(engine.status().IsUnavailable())
      << engine.status().ToString();
  EXPECT_NE(engine.status().message().find("quarantined"),
            std::string::npos)
      << engine.status().ToString();
  const BackendStats stats = engine.backend_stats();
  EXPECT_GE(stats.quarantined_workers, 1u);
  // Quarantine kicked in at the per-worker failure cap, well before the
  // 16-attempt shard budget.
  EXPECT_LE(stats.shard_retries, 16u);
}

TEST(FaultExhaustionTest, LocalFallbackFinishesTheFillBitIdentically) {
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  SamplingEngine local(graph, Config(31));
  RRCollection local_rr(graph.num_nodes());
  local.SampleInto(&local_rr, 600);

  SampleBackendSpec spec = Procs(2, "kill@100x1000000");
  spec.max_shard_retries = 1;
  spec.fallback = FallbackPolicy::kLocal;
  SamplingEngine engine(graph, Config(31, spec));
  RRCollection rr(graph.num_nodes());
  const SampleBatch batch = engine.SampleInto(&rr, 600);
  ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
  EXPECT_EQ(batch.sets_added, 600u);
  ExpectEqualCollections(local_rr, rr);

  const BackendStats stats = engine.backend_stats();
  EXPECT_GE(stats.fallback_shards, 1u);
  EXPECT_GT(stats.fallback_sets, 0u);
  // Later healthy fills keep using the fleet (no fault keyed there).
  engine.SampleInto(&rr, 100);
  ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
  EXPECT_EQ(rr.num_sets(), 700u);
}

// ------------------------------------ serving composition ---------------

TEST(FaultServingTest, ConcurrentSubmitSurvivesInjectedKills) {
  const Graph graph = MakeWcPowerLaw(200, 3, 77);
  std::vector<ImRequest> requests;
  for (uint64_t seed : {2024ULL, 4242ULL}) {
    for (double eps : {0.4, 0.3}) {
      ImRequest r;
      r.graph = "g";
      r.algo = "tim+";
      r.k = 3;
      r.epsilon = eps;
      r.seed = seed;
      requests.push_back(r);
    }
  }

  // Serialized local reference.
  ServingEngine reference_engine(ServingOptions{.num_threads = 1});
  ASSERT_TRUE(reference_engine.RegisterGraph("g", graph).ok());
  std::vector<ImResponse> reference;
  for (const ImRequest& request : requests) {
    reference.push_back(reference_engine.Solve(request));
  }

  ServingOptions options;
  options.num_threads = 1;
  options.submit_workers = 4;
  options.max_pending_requests = 0;
  options.sample_backend = Procs(2, "kill@20");
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterGraph("g", graph).ok());

  std::vector<std::future<ImResponse>> futures(requests.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        futures[i] = engine.Submit(requests[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t i = 0; i < requests.size(); ++i) {
    ImResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok())
        << "request " << i << ": " << response.status.ToString();
    EXPECT_EQ(reference[i].result.seeds, response.result.seeds)
        << "request " << i;
    EXPECT_DOUBLE_EQ(reference[i].result.Metric("theta"),
                     response.result.Metric("theta"))
        << "request " << i;
  }
}

TEST(FaultServingTest, OverloadSheddingComposesWithBackendRetries) {
  // Unavailable means two different things in this stack: the admission
  // queue shedding a request, and a worker dying under a shard (which the
  // backend retries internally). They must compose without interference:
  // every submission resolves exactly once, shed requests match the
  // scheduler's rejected() count (no double counting), and every
  // admitted response is bit-exact despite the injected kill.
  const Graph graph = MakeWcPowerLaw(200, 3, 77);
  ImRequest request;
  request.graph = "g";
  request.algo = "tim+";
  request.k = 3;
  request.epsilon = 0.4;
  request.seed = 2024;

  ServingEngine reference_engine(ServingOptions{.num_threads = 1});
  ASSERT_TRUE(reference_engine.RegisterGraph("g", graph).ok());
  const ImResponse expected = reference_engine.Solve(request);
  ASSERT_TRUE(expected.status.ok());

  ServingOptions options;
  options.num_threads = 1;
  options.submit_workers = 1;  // one worker: the queue actually backs up
  options.max_pending_requests = 2;
  options.sample_backend = Procs(2, "kill@20");
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterGraph("g", graph).ok());

  std::vector<std::future<ImResponse>> futures;
  for (int i = 0; i < 5000 && engine.scheduler() == nullptr; ++i) {
    futures.push_back(engine.Submit(request));
  }
  while (engine.scheduler()->rejected() == 0 && futures.size() < 5000) {
    futures.push_back(engine.Submit(request));
  }
  EXPECT_GT(engine.scheduler()->rejected(), 0u);

  uint64_t accepted = 0;
  uint64_t shed = 0;
  for (auto& future : futures) {
    ImResponse response = future.get();
    if (response.status.IsUnavailable()) {
      ++shed;
      continue;
    }
    ++accepted;
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(expected.result.seeds, response.result.seeds);
  }
  EXPECT_EQ(accepted + shed, futures.size());
  EXPECT_EQ(shed, engine.scheduler()->rejected());
  EXPECT_GT(accepted, 0u);
}

}  // namespace
}  // namespace timpp
