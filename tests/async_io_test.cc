// Tests of the async read layer (util/async_io.h): submit/wait/cancel
// semantics, exact-byte round-trips, error propagation (missing file,
// short read), concurrent submitters, and backend selection — every case
// runs against both the thread-pool backend and whatever kAuto resolves
// to (io_uring where the kernel and sandbox allow, the same thread pool
// otherwise), so the suite passes identically on hosts without uring.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "util/async_io.h"

namespace timpp {
namespace {

/// Self-cleaning scratch directory holding the files under test.
class TempDir {
 public:
  TempDir() {
    dir_ = ::testing::TempDir() + "/timpp_async_io_test_" +
           std::to_string(counter_++);
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// Writes `bytes` to a fresh file and returns its path.
  std::string WriteFile(const std::string& name, const std::string& bytes) {
    const std::string path = dir_ + "/" + name;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (f != nullptr) {
      EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
      std::fclose(f);
    }
    return path;
  }

  const std::string& path() const { return dir_; }

 private:
  static int counter_;
  std::string dir_;
};
int TempDir::counter_ = 0;

std::string DeterministicBytes(size_t size, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::string bytes(size, '\0');
  for (char& c : bytes) c = static_cast<char>(rng() & 0xff);
  return bytes;
}

/// Both explicit backends plus the auto-resolved one. kUring rows run the
/// probe-with-fallback path, so they are valid (and equivalent to
/// kThreads) even where io_uring is unavailable.
std::vector<AsyncIoBackend> AllBackends() {
  return {AsyncIoBackend::kThreads, AsyncIoBackend::kUring,
          AsyncIoBackend::kAuto};
}

TEST(AsyncIoTest, CreateNeverFailsAndNamesARealBackend) {
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    ASSERT_NE(reader, nullptr) << AsyncIoBackendName(backend);
    const std::string name = reader->backend_name();
    // The resolved backend is always a concrete one, never "auto".
    EXPECT_TRUE(name == "uring" || name == "threads") << name;
  }
  AsyncIoOptions threads;
  threads.backend = AsyncIoBackend::kThreads;
  EXPECT_STREQ(AsyncFileReader::Create(threads)->backend_name(), "threads");
}

TEST(AsyncIoTest, BackendNamesRoundTripThroughParse) {
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoBackend parsed;
    ASSERT_TRUE(ParseAsyncIoBackend(AsyncIoBackendName(backend), &parsed));
    EXPECT_EQ(parsed, backend);
  }
  AsyncIoBackend out = AsyncIoBackend::kThreads;
  EXPECT_FALSE(ParseAsyncIoBackend("io_uring", &out));
  EXPECT_FALSE(ParseAsyncIoBackend("", &out));
  EXPECT_EQ(out, AsyncIoBackend::kThreads);  // untouched on failure
}

TEST(AsyncIoTest, ReadsExactBytesAtOffsets) {
  TempDir dir;
  const std::string payload = DeterministicBytes(64 * 1024, 0xab1de);
  const std::string path = dir.WriteFile("payload.bin", payload);
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    // Whole file, a middle slice, and a tail slice.
    const struct {
      uint64_t offset;
      uint64_t size;
    } cases[] = {{0, payload.size()}, {1234, 4096}, {payload.size() - 7, 7}};
    for (const auto& c : cases) {
      const auto ticket = reader->Submit(path, c.offset, c.size);
      ASSERT_NE(ticket, AsyncFileReader::kInvalidTicket);
      std::string bytes;
      ASSERT_TRUE(reader->Wait(ticket, &bytes).ok())
          << AsyncIoBackendName(backend);
      EXPECT_EQ(bytes, payload.substr(c.offset, c.size));
    }
  }
}

TEST(AsyncIoTest, ManyInFlightReadsAllComplete) {
  TempDir dir;
  const size_t kFiles = 40;  // deeper than any backend queue
  std::vector<std::string> paths;
  std::vector<std::string> payloads;
  for (size_t i = 0; i < kFiles; ++i) {
    payloads.push_back(DeterministicBytes(1024 + 37 * i, 1000 + i));
    paths.push_back(
        dir.WriteFile("f" + std::to_string(i) + ".bin", payloads.back()));
  }
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    options.queue_depth = 8;  // force queue wraparound / pending spill
    auto reader = AsyncFileReader::Create(options);
    std::vector<AsyncFileReader::Ticket> tickets;
    for (size_t i = 0; i < kFiles; ++i) {
      tickets.push_back(reader->Submit(paths[i], 0, payloads[i].size()));
    }
    // Wait out of submission order to exercise completion bookkeeping.
    for (size_t i = kFiles; i-- > 0;) {
      std::string bytes;
      ASSERT_TRUE(reader->Wait(tickets[i], &bytes).ok())
          << AsyncIoBackendName(backend) << " file " << i;
      EXPECT_EQ(bytes, payloads[i]) << "file " << i;
    }
  }
}

TEST(AsyncIoTest, MissingFileReportsIOErrorThroughWait) {
  TempDir dir;
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    const auto ticket =
        reader->Submit(dir.path() + "/does-not-exist.bin", 0, 128);
    ASSERT_NE(ticket, AsyncFileReader::kInvalidTicket);
    std::string bytes;
    const Status status = reader->Wait(ticket, &bytes);
    EXPECT_TRUE(status.IsIOError()) << status.ToString();
  }
}

TEST(AsyncIoTest, ReadPastEofReportsShortRead) {
  TempDir dir;
  const std::string path = dir.WriteFile("small.bin", "0123456789");
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    const auto ticket = reader->Submit(path, 4, 100);  // only 6 available
    std::string bytes;
    const Status status = reader->Wait(ticket, &bytes);
    EXPECT_TRUE(status.IsIOError()) << status.ToString();
  }
}

TEST(AsyncIoTest, WaitOnUnknownTicketIsAnError) {
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    std::string bytes;
    EXPECT_TRUE(reader->Wait(12345, &bytes).IsInvalidArgument());
  }
}

TEST(AsyncIoTest, CancelDiscardsQueuedAndUnknownTickets) {
  TempDir dir;
  const std::string payload = DeterministicBytes(8192, 0xc0ffee);
  const std::string path = dir.WriteFile("c.bin", payload);
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    // Cancelled tickets stop being waitable; a subsequent read still works
    // (the reader survives cancellation).
    const auto cancelled = reader->Submit(path, 0, payload.size());
    reader->Cancel(cancelled);
    reader->Cancel(999999);  // unknown: ignored
    std::string bytes;
    EXPECT_TRUE(reader->Wait(cancelled, &bytes).IsInvalidArgument());
    const auto live = reader->Submit(path, 0, payload.size());
    ASSERT_TRUE(reader->Wait(live, &bytes).ok());
    EXPECT_EQ(bytes, payload);
  }
}

TEST(AsyncIoTest, DestructionWithInFlightReadsIsClean) {
  TempDir dir;
  const std::string payload = DeterministicBytes(256 * 1024, 0xdead);
  std::vector<std::string> paths;
  for (int i = 0; i < 8; ++i) {
    paths.push_back(dir.WriteFile("d" + std::to_string(i) + ".bin", payload));
  }
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    for (const std::string& path : paths) {
      reader->Submit(path, 0, payload.size());
    }
    reader.reset();  // must drain/abandon without crashes or leaks (ASan)
  }
}

TEST(AsyncIoTest, ConcurrentSubmittersAndWaiters) {
  TempDir dir;
  const std::string payload = DeterministicBytes(16 * 1024, 0xfeed);
  const std::string path = dir.WriteFile("shared.bin", payload);
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 16; ++i) {
          const uint64_t offset = static_cast<uint64_t>((t * 16 + i) % 32);
          const uint64_t size = payload.size() - offset;
          const auto ticket = reader->Submit(path, offset, size);
          std::string bytes;
          ASSERT_TRUE(reader->Wait(ticket, &bytes).ok());
          ASSERT_EQ(bytes, payload.substr(offset, size));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
}

TEST(AsyncIoTest, ZeroByteReadSucceedsEmpty) {
  TempDir dir;
  const std::string path = dir.WriteFile("z.bin", "abc");
  for (AsyncIoBackend backend : AllBackends()) {
    AsyncIoOptions options;
    options.backend = backend;
    auto reader = AsyncFileReader::Create(options);
    const auto ticket = reader->Submit(path, 0, 0);
    std::string bytes = "poison";
    ASSERT_TRUE(reader->Wait(ticket, &bytes).ok());
    EXPECT_TRUE(bytes.empty());
  }
}

}  // namespace
}  // namespace timpp
