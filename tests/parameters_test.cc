// Tests for core/parameters.h — the λ/θ/ε′ machinery of Equations 4-5,
// Algorithm 2's budgets, and Lemma 10's bound on Greedy's sample count.
#include <gtest/gtest.h>

#include <cmath>

#include "core/parameters.h"
#include "util/math.h"

namespace timpp {
namespace {

TEST(ParametersTest, LambdaMatchesEquation4ByHand) {
  // n=1000, k=1, eps=0.5, ell=1:
  // λ = (8+2*0.5)*1000*(ln 1000 + ln 1000 + ln 2)/0.25
  const double expected = 9.0 * 1000.0 *
                          (std::log(1000.0) + std::log(1000.0) +
                           std::log(2.0)) /
                          0.25;
  EXPECT_NEAR(ComputeLambda(1000, 1, 0.5, 1.0), expected, expected * 1e-9);
}

TEST(ParametersTest, LambdaDecreasesWithEpsilon) {
  EXPECT_GT(ComputeLambda(1000, 10, 0.1, 1.0),
            ComputeLambda(1000, 10, 0.2, 1.0));
  EXPECT_GT(ComputeLambda(1000, 10, 0.2, 1.0),
            ComputeLambda(1000, 10, 0.4, 1.0));
}

TEST(ParametersTest, LambdaIncreasesWithKAndEll) {
  EXPECT_GT(ComputeLambda(1000, 20, 0.1, 1.0),
            ComputeLambda(1000, 10, 0.1, 1.0));
  EXPECT_GT(ComputeLambda(1000, 10, 0.1, 2.0),
            ComputeLambda(1000, 10, 0.1, 1.0));
}

TEST(ParametersTest, LambdaScalesSuperlinearlyInN) {
  // λ ~ n·log n (through both ln n and log C(n,k)).
  const double l1 = ComputeLambda(1000, 10, 0.1, 1.0);
  const double l2 = ComputeLambda(2000, 10, 0.1, 1.0);
  EXPECT_GT(l2, 2.0 * l1);
}

TEST(ParametersTest, KptBudgetDoublesPerIteration) {
  const double c1 = ComputeKptIterationBudget(10000, 1.0, 1);
  const double c2 = ComputeKptIterationBudget(10000, 1.0, 2);
  const double c5 = ComputeKptIterationBudget(10000, 1.0, 5);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-6);
  EXPECT_NEAR(c5, 16.0 * c1, 1e-6);
}

TEST(ParametersTest, KptBudgetMatchesEquation9) {
  // c_i = (6 ℓ ln n + 6 ln log2(n)) · 2^i
  const uint64_t n = 4096;
  const double expected =
      (6.0 * std::log(4096.0) + 6.0 * std::log(12.0)) * 8.0;
  EXPECT_NEAR(ComputeKptIterationBudget(n, 1.0, 3), expected, 1e-6);
}

TEST(ParametersTest, KptMaxIterationsIsLog2Minus1) {
  EXPECT_EQ(KptMaxIterations(1024), 9);
  EXPECT_EQ(KptMaxIterations(1 << 20), 19);
  EXPECT_EQ(KptMaxIterations(2), 1);   // clamped to at least one iteration
  EXPECT_EQ(KptMaxIterations(1), 1);
}

TEST(ParametersTest, LambdaPrimeMatchesAlgorithm3Line7) {
  // λ' = (2+ε')·ℓ·n·ln n / ε'²
  const double expected = 2.5 * 1.0 * 1000.0 * std::log(1000.0) / 0.25;
  EXPECT_NEAR(ComputeLambdaPrime(1000, 0.5, 1.0), expected, expected * 1e-9);
}

TEST(ParametersTest, RecommendedEpsPrimeFormula) {
  // ε' = 5 · cbrt(ℓ·ε²/(k+ℓ))
  EXPECT_NEAR(RecommendedEpsPrime(0.1, 50, 1.0),
              5.0 * std::cbrt(0.01 / 51.0), 1e-12);
}

TEST(ParametersTest, RecommendedEpsPrimeRespectsTheoryFloor) {
  // TIM+ keeps TIM's complexity when ε' >= ε/√k; the recommended value
  // must clear that floor across the experimental range.
  for (int k : {1, 5, 10, 25, 50}) {
    for (double eps : {0.1, 0.2, 0.5, 1.0}) {
      EXPECT_GE(RecommendedEpsPrime(eps, k, 1.0),
                eps / std::sqrt(static_cast<double>(k)))
          << "k=" << k << " eps=" << eps;
    }
  }
}

TEST(ParametersTest, EllAdjustmentsRestoreSuccessProbability) {
  // With ℓ' = ℓ(1 + ln2/ln n):  2·n^-ℓ' <= n^-ℓ.
  for (uint64_t n : {100ULL, 10000ULL, 1000000ULL}) {
    const double ell = 1.0;
    const double ell_tim = AdjustEllForTim(ell, n);
    EXPECT_LE(2.0 * std::pow(static_cast<double>(n), -ell_tim),
              std::pow(static_cast<double>(n), -ell) * 1.0000001);
    const double ell_plus = AdjustEllForTimPlus(ell, n);
    EXPECT_LE(3.0 * std::pow(static_cast<double>(n), -ell_plus),
              std::pow(static_cast<double>(n), -ell) * 1.0000001);
  }
}

TEST(ParametersTest, GreedyRequiredSamplesExceedsCustomaryTenThousand) {
  // §7.1: on the experimental datasets the Lemma 10 bound always exceeds
  // the customary r=10000 (which therefore favors CELF++).
  const double r =
      GreedyRequiredSamples(15000, 50, 0.1, 1.0, /*opt=*/1000.0);
  EXPECT_GT(r, 10000.0);
}

TEST(ParametersTest, GreedyRequiredSamplesScalesWithKSquared) {
  const double r10 = GreedyRequiredSamples(10000, 10, 0.1, 1.0, 500.0);
  const double r20 = GreedyRequiredSamples(10000, 20, 0.1, 1.0, 500.0);
  EXPECT_GT(r20, 3.5 * r10);  // ~4x from the 8k² term
}

}  // namespace
}  // namespace timpp
