// Tests for Algorithm 2 (KPT estimation) and Algorithm 3 (KPT refinement):
// Lemma 5's identity, Theorem 2's KPT* ∈ [KPT/4, OPT] band, and
// Lemma 8's KPT+ ∈ [KPT*, OPT] band, all checked on graphs small enough
// for exact oracles.
#include <gtest/gtest.h>

#include <cmath>

#include "core/kpt_estimator.h"
#include "core/kpt_refiner.h"
#include "core/parameters.h"
#include "diffusion/exact_spread.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;
using testing::IcSampling;
using testing::MakeChain;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

// Exact KPT for small graphs: the mean spread of a set S* formed by k
// in-degree-proportional samples (with replacement, duplicates removed).
// For k=1 this is Σ_v (indeg(v)/m)·E[I({v})].
double ExactKptK1(const Graph& g) {
  const double m = static_cast<double>(g.num_edges());
  double kpt = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) continue;
    double spread = 0;
    EXPECT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{v}, &spread).ok());
    kpt += (static_cast<double>(g.InDegree(v)) / m) * spread;
  }
  return kpt;
}

TEST(KptEstimatorTest, Lemma5IdentityHoldsNumerically) {
  // KPT = n·E[κ(R)] for k=1: estimate E[κ(R)] by direct sampling and
  // compare with the exact KPT.
  Graph g = MakeTwoCommunities(0.35f);
  const double n = g.num_nodes(), m = g.num_edges();

  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(1);
  std::vector<NodeId> scratch;
  const int r = 300000;
  double kappa_sum = 0;
  for (int i = 0; i < r; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    kappa_sum += 1.0 - std::pow(1.0 - info.width / m, 1);  // k = 1
  }
  const double estimated_kpt = n * kappa_sum / r;
  ExpectClose(ExactKptK1(g), estimated_kpt, 0.02);
}

TEST(KptEstimatorTest, KptStarWithinTheoremTwoBand) {
  // Theorem 2: KPT* ∈ [KPT/4, OPT] with high probability. On this graph we
  // can compute both ends exactly for k=1.
  Graph g = MakeTwoCommunities(0.35f);
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 1, &opt_seeds, &opt).ok());
  const double kpt = ExactKptK1(g);

  int in_band = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    SamplingEngine engine(g, IcSampling(1000 + t));
    KptEstimate estimate = EstimateKpt(engine, 1, 1.0);
    if (estimate.kpt_star >= kpt / 4 - 1e-9 &&
        estimate.kpt_star <= opt + 1e-9) {
      ++in_band;
    }
  }
  EXPECT_GE(in_band, trials - 1)
      << "KPT* fell outside [KPT/4, OPT] too often; kpt=" << kpt
      << " opt=" << opt;
}

TEST(KptEstimatorTest, RetainsLastIterationRRSets) {
  Graph g = MakeTwoCommunities(0.3f);
  SamplingEngine engine(g, IcSampling(2));
  KptEstimate estimate = EstimateKpt(engine, 2, 1.0);
  ASSERT_NE(estimate.last_iteration_rr, nullptr);
  EXPECT_GT(estimate.last_iteration_rr->num_sets(), 0u);
  EXPECT_TRUE(estimate.last_iteration_rr->index_built());
  EXPECT_GE(estimate.rr_sets_generated,
            estimate.last_iteration_rr->num_sets());
}

TEST(KptEstimatorTest, DeterministicGivenEngineSeed) {
  Graph g = MakeTwoCommunities(0.3f);
  SamplingEngine e1(g, IcSampling(3)), e2(g, IcSampling(3));
  KptEstimate a = EstimateKpt(e1, 3, 1.0);
  KptEstimate b = EstimateKpt(e2, 3, 1.0);
  EXPECT_DOUBLE_EQ(a.kpt_star, b.kpt_star);
  EXPECT_EQ(a.terminated_iteration, b.terminated_iteration);
  EXPECT_EQ(a.rr_sets_generated, b.rr_sets_generated);
}

TEST(KptEstimatorTest, KptStarGrowsWithK) {
  // KPT increases with k (Equation 7 discussion), so KPT* should too,
  // at least directionally on a graph with meaningful spread.
  Graph g = MakeTwoCommunities(0.5f);
  SamplingEngine e1(g, IcSampling(4)), e5(g, IcSampling(4));
  KptEstimate k1 = EstimateKpt(e1, 1, 1.0);
  KptEstimate k5 = EstimateKpt(e5, 5, 1.0);
  EXPECT_GE(k5.kpt_star, k1.kpt_star * 0.9);
}

TEST(KptEstimatorTest, TrivialBoundOnEdgelessGraph) {
  GraphBuilder builder;
  builder.ReserveNodes(16);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  SamplingEngine engine(g, IcSampling(5));
  KptEstimate estimate = EstimateKpt(engine, 2, 1.0);
  // κ(R) = 0 always -> falls through to the floor KPT* = 1.
  EXPECT_DOUBLE_EQ(estimate.kpt_star, 1.0);
  EXPECT_EQ(estimate.terminated_iteration, 0);
}

// ----------------------------------------------------------- Algorithm 3 --

TEST(KptRefinerTest, KptPlusNeverBelowKptStar) {
  Graph g = MakeTwoCommunities(0.35f);
  SamplingEngine engine(g, IcSampling(6));
  KptEstimate estimate = EstimateKpt(engine, 2, 1.0);
  KptRefinement refinement =
      RefineKpt(engine, *estimate.last_iteration_rr, 2, estimate.kpt_star,
                /*eps_prime=*/0.5, /*ell=*/1.0);
  EXPECT_GE(refinement.kpt_plus, estimate.kpt_star);
  EXPECT_EQ(refinement.intermediate_seeds.size(), 2u);
  EXPECT_GT(refinement.theta_prime, 0u);
}

TEST(KptRefinerTest, KptPlusStaysBelowOpt) {
  // Lemma 8: KPT+ <= OPT with high probability.
  Graph g = MakeTwoCommunities(0.35f);
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 2, &opt_seeds, &opt).ok());

  int ok_count = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    SamplingEngine engine(g, IcSampling(2000 + t));
    KptEstimate estimate = EstimateKpt(engine, 2, 1.0);
    KptRefinement refinement =
        RefineKpt(engine, *estimate.last_iteration_rr, 2, estimate.kpt_star,
                  0.5, 1.0);
    if (refinement.kpt_plus <= opt * 1.02) ++ok_count;
  }
  EXPECT_GE(ok_count, trials - 1);
}

TEST(KptRefinerTest, RefinementTightensTheBoundOnRealisticGraphs) {
  // §4.1's motivation: KPT* is usually far below OPT; Algorithm 3 should
  // produce a strictly larger bound on a graph with hubs.
  Graph g = MakeOutStar(64, 0.9f);
  SamplingEngine engine(g, IcSampling(7));
  KptEstimate estimate = EstimateKpt(engine, 1, 1.0);
  KptRefinement refinement =
      RefineKpt(engine, *estimate.last_iteration_rr, 1, estimate.kpt_star,
                0.5, 1.0);
  // OPT = 1 + 63·0.9 ≈ 57.7 while KPT (avg over in-degree picks) is ~1.9:
  // the refinement must capture most of the gap.
  EXPECT_GT(refinement.kpt_plus, 4.0 * estimate.kpt_star);
}

TEST(KptRefinerTest, ThetaPrimeMatchesLambdaPrimeOverKptStar) {
  Graph g = MakeTwoCommunities(0.3f);
  SamplingEngine engine(g, IcSampling(8));
  KptEstimate estimate = EstimateKpt(engine, 2, 1.0);
  const double eps_prime = 0.4;
  KptRefinement refinement =
      RefineKpt(engine, *estimate.last_iteration_rr, 2, estimate.kpt_star,
                eps_prime, 1.0);
  const double lambda_prime =
      ComputeLambdaPrime(g.num_nodes(), eps_prime, 1.0);
  EXPECT_EQ(refinement.theta_prime,
            static_cast<uint64_t>(
                std::ceil(lambda_prime / estimate.kpt_star)));
}

}  // namespace
}  // namespace timpp
