// Tests of the memory-budgeted selection pipeline: the engine's
// sample-and-discard streaming (VisitSamples/SkipTo), RRCollection
// truncation, StreamingGreedyMaxCover's bit-equivalence to the indexed
// greedy, and the end-to-end guarantee that budgeted TIM/IMM return the
// exact seeds of a budget-off run while keeping resident DataBytes under
// the cap.
#include <gtest/gtest.h>

#include <vector>

#include "baselines/ris.h"
#include "core/imm.h"
#include "core/node_selector.h"
#include "core/tim.h"
#include "coverage/greedy_cover.h"
#include "coverage/streaming_cover.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::IcSampling;
using testing::MakeTwoCommunities;
using testing::MakeWcPowerLaw;

void ExpectSameCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  EXPECT_EQ(a.TotalWidth(), b.TotalWidth());
  for (size_t id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.Set(static_cast<RRSetId>(id));
    const auto sb = b.Set(static_cast<RRSetId>(id));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (size_t j = 0; j < sa.size(); ++j) {
      ASSERT_EQ(sa[j], sb[j]) << "set " << id << " pos " << j;
    }
    EXPECT_EQ(a.Width(static_cast<RRSetId>(id)),
              b.Width(static_cast<RRSetId>(id)));
  }
}

void ExpectSameCover(const CoverResult& a, const CoverResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.marginal_coverage, b.marginal_coverage);
  EXPECT_EQ(a.covered_sets, b.covered_sets);
  EXPECT_DOUBLE_EQ(a.covered_fraction, b.covered_fraction);
}

// ----------------------------------------------------- RRCollection bits --

TEST(RRCollectionTruncateTest, TruncateToKeepsThePrefixExactly) {
  Graph g = MakeTwoCommunities(0.4f);
  RRCollection full(g.num_nodes()), prefix(g.num_nodes());
  SamplingEngine engine_a(g, IcSampling(9)), engine_b(g, IcSampling(9));
  engine_a.SampleInto(&full, 500);
  engine_b.SampleInto(&prefix, 200);

  RRCollection truncated(g.num_nodes());
  SamplingEngine engine_c(g, IcSampling(9));
  engine_c.SampleInto(&truncated, 500);
  truncated.TruncateTo(200);
  ExpectSameCollections(prefix, truncated);

  truncated.TruncateTo(9999);  // no-op past the end
  EXPECT_EQ(truncated.num_sets(), 200u);
  truncated.TruncateTo(0);
  EXPECT_EQ(truncated.num_sets(), 0u);
  EXPECT_EQ(truncated.total_nodes(), 0u);
  EXPECT_EQ(truncated.TotalWidth(), 0u);
}

TEST(RRCollectionTruncateTest, DropIndexReleasesOnlyIndexBytes) {
  Graph g = MakeTwoCommunities(0.4f);
  RRCollection rr(g.num_nodes());
  SamplingEngine engine(g, IcSampling(12));
  engine.SampleInto(&rr, 200);
  const size_t data_only = rr.DataBytes();
  rr.BuildIndex();
  ASSERT_GT(rr.DataBytes(), data_only) << "index must be charged";
  rr.DropIndex();
  EXPECT_EQ(rr.DataBytes(), data_only)
      << "a dropped index must not linger in budget accounting";
  EXPECT_FALSE(rr.index_built());
  rr.BuildIndex();  // still rebuildable
  EXPECT_TRUE(rr.index_built());
}

TEST(RRCollectionTruncateTest, MaxPrefixUnderDataBudgetIsTight) {
  Graph g = MakeTwoCommunities(0.4f);
  RRCollection rr(g.num_nodes());
  SamplingEngine engine(g, IcSampling(10));
  engine.SampleInto(&rr, 300);

  // For every prefix the helper reports, actually materializing it must
  // sit under the budget (an empty collection's 8-byte offset sentinel is
  // the irreducible floor) while one more set must exceed it.
  for (size_t budget : {size_t{1}, size_t{100}, size_t{1000}, rr.DataBytes(),
                        rr.DataBytes() / 2}) {
    const size_t prefix = MaxPrefixUnderDataBudget(rr, budget);
    RRCollection check(g.num_nodes());
    SamplingEngine regen(g, IcSampling(10));
    regen.SampleInto(&check, 300);
    check.TruncateTo(prefix);
    if (prefix > 0) {
      EXPECT_LE(check.DataBytes(), budget) << "budget " << budget;
    }
    if (prefix < rr.num_sets()) {
      RRCollection over(g.num_nodes());
      SamplingEngine regen2(g, IcSampling(10));
      regen2.SampleInto(&over, 300);
      over.TruncateTo(prefix + 1);
      EXPECT_GT(over.DataBytes(), budget) << "budget " << budget;
    }
  }
}

// ------------------------------------------- engine streaming primitives --

TEST(SamplingEngineStreamTest, BudgetStopIsThreadCountInvariantMidRequest) {
  // Satellite regression: the sequential fast path must land the same
  // collection as the sharded path when a memory budget stops the request
  // mid-way (both stop at the same fixed batch boundary, and the
  // sequential path now pre-sizes per-set arrays the same way).
  Graph g = MakeWcPowerLaw(300, 5, 7);

  RRCollection reference(g.num_nodes());
  SamplingEngine sequential(g, IcSampling(42, 1));
  SampleBatch probe = sequential.SampleInto(&reference, 10000);
  ASSERT_EQ(probe.sets_added, 10000u);
  // A budget crossed well inside the request: ~ half the full data bytes.
  const size_t budget = reference.DataBytes() / 2;

  RRCollection seq_rr(g.num_nodes());
  seq_rr.set_memory_budget(budget);
  SamplingEngine seq_engine(g, IcSampling(42, 1));
  const SampleBatch seq_batch = seq_engine.SampleInto(&seq_rr, 30000);
  EXPECT_TRUE(seq_batch.hit_memory_budget);
  EXPECT_LT(seq_batch.sets_added, 30000u);

  for (unsigned threads : {2u, 8u}) {
    RRCollection rr(g.num_nodes());
    rr.set_memory_budget(budget);
    SamplingEngine engine(g, IcSampling(42, threads));
    const SampleBatch batch = engine.SampleInto(&rr, 30000);
    EXPECT_TRUE(batch.hit_memory_budget) << "threads=" << threads;
    EXPECT_EQ(batch.sets_added, seq_batch.sets_added)
        << "budget stop moved with the thread count";
    EXPECT_EQ(batch.edges_examined, seq_batch.edges_examined);
    ExpectSameCollections(seq_rr, rr);
  }
}

TEST(SamplingEngineStreamTest, SampleUntilCostRewindIsDeterministic) {
  // The cost-threshold loop samples whole batches but keeps only the
  // index-ordered prefix up to the stop, rewinding the rest. The stop
  // point and the kept prefix must be identical across thread counts, and
  // the rewound indices must regenerate identically in a later request
  // (batch boundaries never leak into content).
  Graph g = MakeTwoCommunities(0.35f);

  RRCollection reference(g.num_nodes());
  SamplingEngine ref_engine(g, IcSampling(11, 1));
  const SampleBatch ref_batch = ref_engine.SampleUntilCost(&reference, 4000.0);
  ASSERT_GT(ref_batch.sets_added, 0u);

  for (unsigned threads : {2u, 8u}) {
    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, IcSampling(11, threads));
    const SampleBatch batch = engine.SampleUntilCost(&rr, 4000.0);
    EXPECT_EQ(batch.sets_added, ref_batch.sets_added)
        << "threads=" << threads;
    EXPECT_EQ(batch.traversal_cost, ref_batch.traversal_cost);
    EXPECT_EQ(batch.edges_examined, ref_batch.edges_examined);
    ExpectSameCollections(reference, rr);
  }

  // Rewind determinism across batch boundaries: stop early (mid-batch),
  // then top the collection up with SampleInto — the result must equal a
  // straight SampleInto of the same total, set for set.
  for (unsigned threads : {1u, 2u, 8u}) {
    RRCollection straight(g.num_nodes());
    SamplingEngine engine_a(g, IcSampling(11, threads));
    engine_a.SampleInto(&straight, ref_batch.sets_added + 777);

    RRCollection resumed(g.num_nodes());
    SamplingEngine engine_b(g, IcSampling(11, threads));
    const SampleBatch stop = engine_b.SampleUntilCost(&resumed, 4000.0);
    EXPECT_EQ(engine_b.sets_sampled(), stop.sets_added)
        << "rewound indices must not count as consumed";
    engine_b.SampleInto(&resumed,
                        ref_batch.sets_added + 777 - stop.sets_added);
    ExpectSameCollections(straight, resumed);
  }

  // And with a set cap that lands inside a cost batch.
  for (unsigned threads : {1u, 8u}) {
    RRCollection capped(g.num_nodes());
    SamplingEngine engine(g, IcSampling(11, threads));
    const SampleBatch batch = engine.SampleUntilCost(&capped, 1e18, 1234);
    EXPECT_TRUE(batch.hit_set_cap);
    EXPECT_EQ(batch.sets_added, 1234u);
    RRCollection straight(g.num_nodes());
    SamplingEngine engine_c(g, IcSampling(11, threads));
    engine_c.SampleInto(&straight, 1234);
    ExpectSameCollections(straight, capped);
  }
}

TEST(SamplingEngineStreamTest, VisitSamplesReplaysTheSampleStreamExactly) {
  Graph g = MakeWcPowerLaw(200, 4, 3);
  RRCollection retained(g.num_nodes());
  SamplingEngine engine_a(g, IcSampling(5, 4));
  engine_a.SampleInto(&retained, 3000);

  for (unsigned threads : {1u, 4u}) {
    SamplingEngine engine_b(g, IcSampling(5, threads));
    uint64_t expected_index = 500;
    uint64_t visited = 0;
    const SampleBatch batch = engine_b.VisitSamples(
        500, 2000, nullptr,
        [&](uint64_t index, std::span<const NodeId> nodes) {
          ASSERT_EQ(index, expected_index++);
          const auto want = retained.Set(static_cast<RRSetId>(index));
          ASSERT_EQ(nodes.size(), want.size()) << "index " << index;
          for (size_t j = 0; j < nodes.size(); ++j) {
            ASSERT_EQ(nodes[j], want[j]) << "index " << index;
          }
          ++visited;
        });
    EXPECT_EQ(visited, 2000u);
    EXPECT_EQ(batch.sets_added, 2000u);
    EXPECT_EQ(engine_b.sets_sampled(), 0u)
        << "VisitSamples must not consume stream position";
  }

  // Filtered replay visits exactly the accepted indices, in order.
  SamplingEngine engine_c(g, IcSampling(5, 4));
  std::vector<uint64_t> seen;
  engine_c.VisitSamples(
      0, 1000, [](uint64_t index) { return index % 3 == 0; },
      [&](uint64_t index, std::span<const NodeId>) { seen.push_back(index); });
  ASSERT_EQ(seen.size(), 334u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 3 * i);

  // SkipTo fast-forwards the stream: the next SampleInto produces the
  // same sets a longer straight run would have at those indices.
  SamplingEngine engine_d(g, IcSampling(5, 2));
  engine_d.SkipTo(1000);
  RRCollection tail(g.num_nodes());
  engine_d.SampleInto(&tail, 500);
  for (size_t id = 0; id < 500; ++id) {
    const auto want = retained.Set(static_cast<RRSetId>(1000 + id));
    const auto got = tail.Set(static_cast<RRSetId>(id));
    ASSERT_EQ(std::vector<NodeId>(got.begin(), got.end()),
              std::vector<NodeId>(want.begin(), want.end()));
  }
}

// ------------------------------------------------- streaming greedy cover --

TEST(StreamingCoverTest, MatchesIndexedGreedyForAnyCachePrefix) {
  Graph g = MakeWcPowerLaw(250, 5, 21);
  const uint64_t theta = 4000;
  const int k = 8;

  RRCollection full(g.num_nodes());
  SamplingEngine sampler(g, IcSampling(33, 2));
  sampler.SampleInto(&full, theta);
  full.BuildIndex();
  const CoverResult reference = GreedyMaxCover(full, k);

  for (size_t cached : {theta, theta / 2, uint64_t{1}, uint64_t{0}}) {
    RRCollection cache(g.num_nodes());
    SamplingEngine regen(g, IcSampling(33, 2));
    regen.SampleInto(&cache, cached);
    SamplingEngine streamer(g, IcSampling(33, 2));
    const StreamingCoverResult streamed =
        StreamingGreedyMaxCover(streamer, cache, 0, theta, k);
    ExpectSameCover(reference, streamed.cover);
    if (cached < theta) {
      EXPECT_GE(streamed.regeneration_passes, 1u) << "cached " << cached;
      EXPECT_LE(streamed.regeneration_passes, static_cast<uint64_t>(k));
      EXPECT_GT(streamed.sets_regenerated, 0u);
      EXPECT_GT(streamed.edges_examined, 0u);
    } else {
      EXPECT_EQ(streamed.regeneration_passes, 0u);
      EXPECT_EQ(streamed.sets_regenerated, 0u);
    }
  }
}

TEST(StreamingCoverTest, SelectNodesBudgetedMatchesUnbudgetedBitwise) {
  Graph g = MakeWcPowerLaw(250, 5, 23);
  const uint64_t theta = 5000;
  const int k = 6;

  SamplingEngine plain(g, IcSampling(77, 2));
  const NodeSelection unbudgeted = SelectNodes(plain, k, theta);
  EXPECT_FALSE(unbudgeted.hit_memory_budget);
  EXPECT_EQ(unbudgeted.rr_sets_retained, theta);
  EXPECT_EQ(unbudgeted.regeneration_passes, 0u);
  ASSERT_GT(unbudgeted.rr_data_bytes, 0u);

  // Budgets from "index does not fit" down to "almost nothing fits".
  for (size_t budget :
       {unbudgeted.rr_data_bytes * 3 / 4, unbudgeted.rr_data_bytes / 4,
        unbudgeted.rr_data_bytes / 50, size_t{64}}) {
    SamplingEngine engine(g, IcSampling(77, 2));
    const NodeSelection budgeted = SelectNodes(engine, k, theta, budget);
    EXPECT_EQ(budgeted.seeds, unbudgeted.seeds) << "budget " << budget;
    EXPECT_DOUBLE_EQ(budgeted.covered_fraction, unbudgeted.covered_fraction);
    EXPECT_TRUE(budgeted.hit_memory_budget);
    EXPECT_LE(budgeted.rr_data_bytes, budget)
        << "resident DataBytes must respect the cap";
    EXPECT_LE(budgeted.rr_sets_retained, theta);
    EXPECT_EQ(engine.sets_sampled(), plain.sets_sampled())
        << "budgeted run must consume the same index range";
  }

  // Generous budget: everything fits, the classic path runs, zero cost.
  SamplingEngine roomy(g, IcSampling(77, 2));
  const NodeSelection easy =
      SelectNodes(roomy, k, theta, unbudgeted.rr_data_bytes * 10);
  EXPECT_EQ(easy.seeds, unbudgeted.seeds);
  EXPECT_FALSE(easy.hit_memory_budget);
  EXPECT_EQ(easy.regeneration_passes, 0u);
}

// --------------------------------------------------- end-to-end solvers --

TEST(StreamingCoverTest, TimPlusBudgetedMatchesUnbudgeted) {
  Graph g = MakeWcPowerLaw(200, 5, 31);
  TimOptions options;
  options.k = 5;
  options.epsilon = 0.35;
  options.num_threads = 2;
  options.seed = 99;

  TimSolver solver(g);
  TimResult unbudgeted;
  ASSERT_TRUE(solver.Run(options, &unbudgeted).ok());
  EXPECT_FALSE(unbudgeted.stats.hit_memory_budget);
  ASSERT_GT(unbudgeted.stats.rr_data_bytes, 0u);

  // A budget the full node-selection collection clearly exceeds.
  options.memory_budget_bytes = unbudgeted.stats.rr_data_bytes / 8;
  TimResult budgeted;
  ASSERT_TRUE(solver.Run(options, &budgeted).ok());
  EXPECT_EQ(budgeted.seeds, unbudgeted.seeds)
      << "graceful degradation must not change the answer";
  EXPECT_DOUBLE_EQ(budgeted.stats.estimated_spread,
                   unbudgeted.stats.estimated_spread);
  EXPECT_EQ(budgeted.stats.theta, unbudgeted.stats.theta);
  EXPECT_TRUE(budgeted.stats.hit_memory_budget);
  EXPECT_GE(budgeted.stats.regeneration_passes, 1u);
  EXPECT_LE(budgeted.stats.rr_data_bytes, options.memory_budget_bytes);
  EXPECT_LT(budgeted.stats.rr_sets_retained, budgeted.stats.theta);
}

TEST(StreamingCoverTest, ImmBudgetedMatchesUnbudgeted) {
  Graph g = MakeWcPowerLaw(200, 5, 37);
  ImmOptions options;
  options.k = 5;
  options.epsilon = 0.4;
  options.num_threads = 2;
  options.seed = 123;

  for (bool reuse : {false, true}) {
    options.reuse_samples = reuse;
    options.memory_budget_bytes = 0;
    ImmResult unbudgeted;
    ASSERT_TRUE(RunImm(g, options, &unbudgeted).ok());
    EXPECT_FALSE(unbudgeted.stats.hit_memory_budget);
    ASSERT_GT(unbudgeted.stats.rr_data_bytes, 0u);

    options.memory_budget_bytes = unbudgeted.stats.rr_data_bytes / 8;
    ImmResult budgeted;
    ASSERT_TRUE(RunImm(g, options, &budgeted).ok());
    EXPECT_EQ(budgeted.seeds, unbudgeted.seeds) << "reuse " << reuse;
    EXPECT_DOUBLE_EQ(budgeted.stats.lb, unbudgeted.stats.lb)
        << "streaming greedy must reproduce the sampling-phase LB";
    EXPECT_EQ(budgeted.stats.theta, unbudgeted.stats.theta);
    EXPECT_DOUBLE_EQ(budgeted.stats.estimated_spread,
                     unbudgeted.stats.estimated_spread);
    EXPECT_TRUE(budgeted.stats.hit_memory_budget);
    EXPECT_GE(budgeted.stats.regeneration_passes, 1u);
    EXPECT_LE(budgeted.stats.rr_data_bytes, options.memory_budget_bytes);

    // A budget with ample headroom must never engage (in particular, the
    // progressive iterations must not double-charge a stale inverted
    // index and latch the budget spuriously).
    options.memory_budget_bytes = unbudgeted.stats.rr_data_bytes * 4;
    ImmResult roomy;
    ASSERT_TRUE(RunImm(g, options, &roomy).ok());
    EXPECT_EQ(roomy.seeds, unbudgeted.seeds);
    EXPECT_FALSE(roomy.stats.hit_memory_budget) << "reuse " << reuse;
    EXPECT_EQ(roomy.stats.regeneration_passes, 0u);
  }
}

TEST(StreamingCoverTest, BudgetedRisMatchesUnbudgetedBitwise) {
  // τ big enough that sampling spans several engine cost batches, so the
  // tiny budget is guaranteed to fire at a batch boundary before τ. The
  // collection then freezes as a stream-prefix cache and RIS must finish
  // the cost rule and the greedy over the full θ regardless — same seeds,
  // same θ, same cost accounting as the unbudgeted run.
  Graph g = MakeWcPowerLaw(300, 5, 41);
  RisOptions options;
  options.epsilon = 0.5;
  options.tau_scale = 0.5;
  options.seed = 7;

  std::vector<NodeId> unbudgeted_seeds;
  RisStats unbudgeted;
  ASSERT_TRUE(RunRis(g, options, 3, &unbudgeted_seeds, &unbudgeted).ok());
  EXPECT_FALSE(unbudgeted.hit_memory_budget);
  EXPECT_EQ(unbudgeted.regeneration_passes, 0u);

  options.memory_budget_bytes = 2048;  // absurdly small: must fire early
  std::vector<NodeId> budgeted_seeds;
  RisStats budgeted;
  ASSERT_TRUE(RunRis(g, options, 3, &budgeted_seeds, &budgeted).ok());
  EXPECT_TRUE(budgeted.hit_memory_budget);
  EXPECT_EQ(budgeted_seeds, unbudgeted_seeds)
      << "budgeted RIS must degrade to streaming selection, not truncate";
  EXPECT_EQ(budgeted.rr_sets_generated, unbudgeted.rr_sets_generated);
  EXPECT_EQ(budgeted.cost_examined, unbudgeted.cost_examined);
  EXPECT_DOUBLE_EQ(budgeted.covered_fraction, unbudgeted.covered_fraction);
  EXPECT_LT(budgeted.rr_sets_retained, budgeted.rr_sets_generated);
  EXPECT_GE(budgeted.regeneration_passes, 1u);

  // Thread-count invariance holds through the budgeted path too.
  options.num_threads = 8;
  std::vector<NodeId> parallel_seeds;
  RisStats parallel;
  ASSERT_TRUE(RunRis(g, options, 3, &parallel_seeds, &parallel).ok());
  EXPECT_EQ(parallel_seeds, unbudgeted_seeds);
  EXPECT_EQ(parallel.rr_sets_generated, unbudgeted.rr_sets_generated);
}

}  // namespace
}  // namespace timpp
