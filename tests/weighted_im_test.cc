// Tests for node-weighted influence maximization: the alias-table
// substrate, weighted RR-root sampling, the weighted spread estimator and
// weighted IMM end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/imm.h"
#include "diffusion/spread_estimator.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "util/alias_table.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;
using testing::MakeChain;
using testing::MakeGraph;

// -------------------------------------------------------------- alias --

TEST(AliasTableTest, EmptyAndAllZero) {
  AliasTable empty;
  EXPECT_TRUE(empty.empty());
  AliasTable zeros(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(zeros.empty());
  Rng rng(1);
  EXPECT_EQ(zeros.Sample(rng), 0u);
}

TEST(AliasTableTest, SingletonAlwaysSampled) {
  AliasTable table(std::vector<double>{3.5});
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(table.total_weight(), 3.5);
}

TEST(AliasTableTest, MatchesDistribution) {
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  const int r = 400000;
  for (int i = 0; i < r; ++i) ++counts[table.Sample(rng)];
  for (int i = 0; i < 4; ++i) {
    ExpectClose(weights[i] / 10.0, counts[i] / static_cast<double>(r), 0.02,
                0.005);
  }
}

TEST(AliasTableTest, ZeroWeightEntriesNeverSampled) {
  AliasTable table(std::vector<double>{1.0, 0.0, 1.0, 0.0});
  Rng rng(4);
  for (int i = 0; i < 50000; ++i) {
    const uint32_t s = table.Sample(rng);
    EXPECT_TRUE(s == 0 || s == 2) << s;
  }
}

TEST(AliasTableTest, HighlySkewedDistribution) {
  std::vector<double> weights(100, 1e-6);
  weights[42] = 1.0;
  AliasTable table(weights);
  Rng rng(5);
  int hits = 0;
  const int r = 100000;
  for (int i = 0; i < r; ++i) hits += table.Sample(rng) == 42;
  EXPECT_GT(hits / static_cast<double>(r), 0.99);
}

// ------------------------------------------------- weighted RR sampling --

TEST(WeightedRootTest, RootsFollowTheInstalledDistribution) {
  Graph g = MakeChain(4, 0.5f);
  const std::vector<double> weights = {0.0, 0.0, 0.0, 1.0};
  AliasTable roots(weights);
  RRSampler sampler(g, DiffusionModel::kIC);
  sampler.SetRootDistribution(&roots);
  Rng rng(6);
  std::vector<NodeId> rr;
  for (int i = 0; i < 200; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &rr);
    EXPECT_EQ(info.root, 3u);
  }
  sampler.SetRootDistribution(nullptr);  // uniform again
  bool saw_other = false;
  for (int i = 0; i < 200; ++i) {
    saw_other |= sampler.SampleRandomRoot(rng, &rr).root != 3u;
  }
  EXPECT_TRUE(saw_other);
}

TEST(WeightedRootTest, WeightedCoverageEstimatesWeightedSpread) {
  // W·F_R(S) must estimate Σ_v w(v)·P[S activates v]. On a 0.5-chain with
  // seed {0}: P[v activated] = 0.5^v, so with weights (1, 0, 0, 8) the
  // weighted spread is 1 + 8·0.125 = 2.
  Graph g = MakeChain(4, 0.5f);
  const std::vector<double> weights = {1.0, 0.0, 0.0, 8.0};
  AliasTable roots(weights);
  RRSampler sampler(g, DiffusionModel::kIC);
  sampler.SetRootDistribution(&roots);
  Rng rng(7);
  std::vector<NodeId> rr;
  const int r = 300000;
  int covered = 0;
  const std::vector<NodeId> seeds = {0};
  for (int i = 0; i < r; ++i) {
    sampler.SampleRandomRoot(rng, &rr);
    for (NodeId v : rr) {
      if (v == 0) {
        ++covered;
        break;
      }
    }
  }
  const double estimate =
      roots.total_weight() * covered / static_cast<double>(r);
  ExpectClose(2.0, estimate, 0.02);
}

// ---------------------------------------------------- weighted estimator --

TEST(WeightedSpreadEstimatorTest, MatchesClosedFormIC) {
  Graph g = MakeChain(4, 0.5f);
  const std::vector<double> weights = {1.0, 0.0, 0.0, 8.0};
  SpreadEstimatorOptions options;
  options.num_samples = 300000;
  options.node_weights = &weights;
  SpreadEstimator estimator(g, options);
  ExpectClose(2.0, estimator.Estimate(std::vector<NodeId>{0}, 8), 0.02);
}

TEST(WeightedSpreadEstimatorTest, MatchesUnweightedWhenAllOnes) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  const std::vector<double> ones(g.num_nodes(), 1.0);
  SpreadEstimatorOptions weighted;
  weighted.num_samples = 100000;
  weighted.node_weights = &ones;
  SpreadEstimatorOptions plain = weighted;
  plain.node_weights = nullptr;
  const std::vector<NodeId> seeds = {0, 6};
  const double a = SpreadEstimator(g, weighted).Estimate(seeds, 9);
  const double b = SpreadEstimator(g, plain).Estimate(seeds, 9);
  ExpectClose(b, a, 0.02);
}

TEST(WeightedSpreadEstimatorTest, WeightedLTPath) {
  // Weighted LT routes through the triggering adapter; check against the
  // chain closed form with weight only on the last node.
  Graph g = MakeChain(4, 0.6f);
  std::vector<double> weights(4, 0.0);
  weights[3] = 10.0;
  SpreadEstimatorOptions options;
  options.num_samples = 300000;
  options.model = DiffusionModel::kLT;
  options.node_weights = &weights;
  SpreadEstimator estimator(g, options);
  ExpectClose(10.0 * 0.6 * 0.6 * 0.6,
              estimator.Estimate(std::vector<NodeId>{0}, 10), 0.03);
}

// -------------------------------------------------------- weighted IMM --

TEST(WeightedImmTest, ValidatesWeights) {
  Graph g = MakeChain(4, 0.5f);
  ImmOptions options;
  options.k = 1;
  options.epsilon = 0.3;
  ImmResult result;
  std::vector<double> bad_size = {1.0};
  options.node_weights = &bad_size;
  EXPECT_TRUE(RunImm(g, options, &result).IsInvalidArgument());
  std::vector<double> negative = {1.0, -1.0, 1.0, 1.0};
  options.node_weights = &negative;
  EXPECT_TRUE(RunImm(g, options, &result).IsInvalidArgument());
  std::vector<double> zeros(4, 0.0);
  options.node_weights = &zeros;
  EXPECT_TRUE(RunImm(g, options, &result).IsInvalidArgument());
}

TEST(WeightedImmTest, WeightsRedirectTheChoice) {
  // Two separate deterministic chains: A = 0->1->2, B = 3->4->5. The
  // weight mass sits on nodes 4 AND 5, so the head of chain B captures
  // strictly more weight (w3+w4+w5) than seeding either heavy node
  // directly — the weighted optimum is node 3, not a heavy node itself.
  Graph g = MakeGraph(6, {{0, 1, 1.0f}, {1, 2, 1.0f},
                          {3, 4, 1.0f}, {4, 5, 1.0f}});
  std::vector<double> weights(6, 0.01);
  weights[4] = 50.0;
  weights[5] = 50.0;

  ImmOptions options;
  options.k = 1;
  options.epsilon = 0.3;
  options.node_weights = &weights;
  options.seed = 77;
  ImmResult result;
  ASSERT_TRUE(RunImm(g, options, &result).ok());
  EXPECT_EQ(result.seeds[0], 3u)
      << "the chain head reaches both heavy nodes with certainty";
}

TEST(WeightedImmTest, WeightedEstimateAgreesWithForwardSimulation) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  std::vector<double> weights(g.num_nodes(), 1.0);
  weights[9] = 25.0;  // community B matters much more

  ImmOptions options;
  options.k = 2;
  options.epsilon = 0.3;
  options.node_weights = &weights;
  options.seed = 13;
  ImmResult result;
  ASSERT_TRUE(RunImm(g, options, &result).ok());

  SpreadEstimatorOptions est;
  est.num_samples = 200000;
  est.node_weights = &weights;
  SpreadEstimator estimator(g, est);
  const double forward = estimator.Estimate(result.seeds, 14);
  EXPECT_NEAR(result.stats.estimated_spread, forward,
              0.1 * forward + 0.2);
}

TEST(WeightedImmTest, AllOnesMatchesUnweightedSeeds) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  const std::vector<double> ones(g.num_nodes(), 1.0);
  ImmOptions options;
  options.k = 2;
  options.epsilon = 0.3;
  options.seed = 15;
  ImmResult plain;
  ASSERT_TRUE(RunImm(g, options, &plain).ok());
  options.node_weights = &ones;
  ImmResult weighted;
  ASSERT_TRUE(RunImm(g, options, &weighted).ok());
  // Same distribution (uniform roots) but a different RNG consumption
  // pattern; compare seed-set quality rather than identity.
  SpreadEstimatorOptions est;
  est.num_samples = 100000;
  SpreadEstimator estimator(g, est);
  EXPECT_NEAR(estimator.Estimate(plain.seeds, 16),
              estimator.Estimate(weighted.seeds, 16), 0.5);
}

}  // namespace
}  // namespace timpp
