// Tests for graph/graph_algos.h (k-core decomposition, SCC) and the
// k-core seeding heuristic built on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/heuristics.h"
#include "gen/generators.h"
#include "graph/graph_algos.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeGraph;

// ---------------------------------------------------------------- k-core --

TEST(CoreDecompositionTest, ChainIsOneCore) {
  // Undirected-degree view of a directed chain: endpoints degree 1,
  // middles degree 2; peeling gives core number 1 everywhere.
  Graph g = MakeChain(6, 1.0f);
  auto core = CoreDecomposition(g);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(core[v], 1u) << "node " << v;
}

TEST(CoreDecompositionTest, CompleteGraphIsNMinusOneCore) {
  GraphBuilder b;
  GenCompleteDirected(5, &b);  // every node: total degree 8
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  auto core = CoreDecomposition(g);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 8u);
}

TEST(CoreDecompositionTest, CliqueWithPendantVertex) {
  // Directed triangle (core 2 in total-degree terms: each triangle node
  // has degree 2 inside) plus a pendant 3 -> 0.
  Graph g = MakeGraph(4, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 0, 1}});
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
}

TEST(CoreDecompositionTest, IsolatedNodesAreZeroCore) {
  GraphBuilder b;
  b.ReserveNodes(3);
  b.AddEdge(0, 1);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  auto core = CoreDecomposition(g);
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[0], 1u);
  EXPECT_EQ(core[1], 1u);
}

TEST(CoreDecompositionTest, CoreNeverExceedsDegree) {
  GraphBuilder b;
  GenBarabasiAlbert(500, 3, 77, &b);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  auto core = CoreDecomposition(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(core[v], g.OutDegree(v) + g.InDegree(v));
  }
}

TEST(CoreDecompositionTest, CoreSubgraphPropertyHolds) {
  // Every node with core number >= c must have >= c neighbors with core
  // number >= c (the defining property of the c-core).
  GraphBuilder b;
  GenBarabasiAlbert(300, 2, 99, &b);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  auto core = CoreDecomposition(g);
  uint32_t max_core = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_core = std::max(max_core, core[v]);
  }
  ASSERT_GE(max_core, 2u);
  const uint32_t c = max_core;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (core[v] < c) continue;
    uint32_t strong_neighbors = 0;
    for (const Arc& a : g.OutArcs(v)) strong_neighbors += core[a.node] >= c;
    for (const Arc& a : g.InArcs(v)) strong_neighbors += core[a.node] >= c;
    EXPECT_GE(strong_neighbors, c) << "node " << v;
  }
}

// ------------------------------------------------------------------- SCC --

TEST(SccTest, ChainHasSingletonComponents) {
  Graph g = MakeChain(5, 1.0f);
  NodeId count = 0;
  auto comp = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 5u);
  std::set<NodeId> distinct(comp.begin(), comp.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(SccTest, CycleIsOneComponent) {
  GraphBuilder b;
  GenDirectedCycle(6, &b);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  NodeId count = 0;
  auto comp = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(LargestSccSize(g), 6u);
}

TEST(SccTest, TwoCyclesWithBridge) {
  // Cycle {0,1,2}, cycle {3,4,5}, bridge 2 -> 3: two SCCs of size 3.
  Graph g = MakeGraph(6, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
                          {3, 4, 1}, {4, 5, 1}, {5, 3, 1},
                          {2, 3, 1}});
  NodeId count = 0;
  auto comp = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_EQ(LargestSccSize(g), 3u);
}

TEST(SccTest, ReverseTopologicalComponentIds) {
  // Tarjan emits components in reverse topological order of the
  // condensation: a sink SCC gets id 0.
  Graph g = MakeGraph(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});  // path DAG
  NodeId count = 0;
  auto comp = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 4u);
  EXPECT_LT(comp[3], comp[0]) << "sink must be emitted before source";
}

TEST(SccTest, SelfContainedOnEmptyAndIsolated) {
  GraphBuilder b;
  b.ReserveNodes(4);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  NodeId count = 0;
  auto comp = StronglyConnectedComponents(g, &count);
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(LargestSccSize(g), 1u);
}

TEST(SccTest, LargeRandomGraphTerminatesAndCovers) {
  GraphBuilder b;
  GenDirectedScaleFree(5000, 4.0, 5, &b);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  NodeId count = 0;
  auto comp = StronglyConnectedComponents(g, &count);
  EXPECT_GT(count, 0u);
  for (NodeId c : comp) EXPECT_LT(c, count);
}

// --------------------------------------------------------- k-core seeding --

TEST(KCoreHeuristicTest, PicksInnerCoreOverHighDegreePeriphery) {
  // A directed 4-clique (inner core) plus a star hub with 6 spokes whose
  // hub has the highest out-degree but core number 1.
  std::vector<RawEdge> edges;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) edges.push_back({u, v, 1.0f});
    }
  }
  for (NodeId s = 5; s <= 10; ++s) edges.push_back({4, s, 1.0f});
  Graph g = MakeGraph(11, edges);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByKCore(g, 1, &seeds).ok());
  EXPECT_LT(seeds[0], 4u) << "clique member outranks the star hub by core";
}

TEST(KCoreHeuristicTest, ValidatesAndReturnsDistinct) {
  Graph g = testing::MakeTwoCommunities(0.3f);
  std::vector<NodeId> seeds;
  EXPECT_TRUE(SelectByKCore(g, 0, &seeds).IsInvalidArgument());
  ASSERT_TRUE(SelectByKCore(g, 4, &seeds).ok());
  EXPECT_EQ(std::set<NodeId>(seeds.begin(), seeds.end()).size(), 4u);
}

}  // namespace
}  // namespace timpp
