// Unit tests for util/: Status, Rng, math helpers, BitVector, VisitMarker,
// and the Flags parser.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "util/bit_vector.h"
#include "util/flags.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/types.h"
#include "util/visit_marker.h"

namespace timpp {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EachCodePredicateMatchesOnlyItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_FALSE(Status::NotFound("x").IsIOError());
  EXPECT_FALSE(Status::OK().IsInvalidArgument());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    TIMPP_RETURN_NOT_OK(Status::IOError("disk on fire"));
    return Status::OK();
  };
  auto succeeds = []() -> Status {
    TIMPP_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached the end");
  };
  EXPECT_TRUE(fails().IsIOError());
  EXPECT_TRUE(succeeds().IsNotFound());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(RngTest, NextBoundedStaysInBounds) {
  Rng rng(13);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedZeroReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextGeometricMeanMatchesClosedForm) {
  // Failures before the first Bernoulli(p) success have mean (1-p)/p.
  Rng rng(23);
  for (double p : {0.5, 0.1, 0.9}) {
    const int n = 200000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.NextGeometric(p, 1ULL << 40));
    }
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / n, expected, 0.05 * std::max(1.0, expected))
        << "p=" << p;
  }
}

TEST(RngTest, NextGeometricEdgeProbabilities) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextGeometric(1.0, 100), 0u) << "p=1 succeeds immediately";
    EXPECT_EQ(rng.NextGeometric(0.0, 7), 7u) << "p=0 never succeeds";
  }
}

TEST(RngTest, NextGeometricHonorsLimit) {
  // Tiny p makes raw skips astronomically large; the cap must absorb them
  // without overflow.
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.NextGeometric(1e-12, 50), 50u);
  }
}

TEST(RngTest, NextSkipMatchesNextGeometric) {
  // NextSkip is NextGeometric with 1/ln(1-p) precomputed: identical
  // streams.
  Rng a(37), b(37);
  const double p = 0.25;
  const double inv_log1mp = 1.0 / std::log1p(-p);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextGeometric(p, 1000), b.NextSkip(inv_log1mp, 1000));
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(17);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], n / static_cast<double>(bound), 500)
        << "bucket " << b;
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.Fork();
  // The child must differ from a fresh copy of the parent.
  Rng parent_copy(29);
  parent_copy.Next();  // align with the parent's post-fork state
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.Next() == parent_copy.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitMix64KnownSequenceIsDeterministic) {
  uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
}

// ------------------------------------------------------------------ math --

TEST(MathTest, LogBinomialBaseCases) {
  EXPECT_DOUBLE_EQ(LogBinomial(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(10, 10), 0.0);
  EXPECT_TRUE(std::isinf(LogBinomial(5, 6)));
}

TEST(MathTest, LogBinomialMatchesSmallValues) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogBinomial(52, 5), std::log(2598960.0), 1e-6);
}

TEST(MathTest, LogBinomialSymmetry) {
  EXPECT_NEAR(LogBinomial(100, 30), LogBinomial(100, 70), 1e-6);
}

TEST(MathTest, SafeLogNGuardsSmallInputs) {
  EXPECT_DOUBLE_EQ(SafeLogN(0), std::log(2.0));
  EXPECT_DOUBLE_EQ(SafeLogN(1), std::log(2.0));
  EXPECT_DOUBLE_EQ(SafeLogN(1000), std::log(1000.0));
}

TEST(MathTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(FloorLog2(1ULL << 62), 62);
}

TEST(MathTest, ChernoffBoundsDecreaseWithSampleCount) {
  const double upper_small = ChernoffUpperTail(0.1, 100, 0.5);
  const double upper_large = ChernoffUpperTail(0.1, 10000, 0.5);
  EXPECT_GT(upper_small, upper_large);
  EXPECT_LE(upper_large, 1.0);
  const double lower_small = ChernoffLowerTail(0.1, 100, 0.5);
  const double lower_large = ChernoffLowerTail(0.1, 10000, 0.5);
  EXPECT_GT(lower_small, lower_large);
}

TEST(MathTest, ChernoffSampleSizeSatisfiesItsOwnBound) {
  const double delta = 0.2, mu = 0.1, fail = 1e-6;
  const double c = ChernoffSampleSize(delta, mu, fail);
  EXPECT_LE(ChernoffUpperTail(delta, c, mu), fail * 1.0000001);
}

// ------------------------------------------------------------- BitVector --

TEST(BitVectorTest, StartsAllClear) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, SetClearGet) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, ConstructFilledCountsExactly) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);  // the 58 tail bits of word 2 must not count
}

TEST(BitVectorTest, AssignAndReset) {
  BitVector bv(10);
  bv.Assign(3, true);
  EXPECT_TRUE(bv.Get(3));
  bv.Assign(3, false);
  EXPECT_FALSE(bv.Get(3));
  bv.Set(1);
  bv.Set(2);
  bv.Reset();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, ResizeReinitializes) {
  BitVector bv(10);
  bv.Set(5);
  bv.Resize(200, false);
  EXPECT_EQ(bv.size(), 200u);
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, MemoryBytesTracksWords) {
  BitVector bv(128);
  EXPECT_EQ(bv.MemoryBytes(), 2 * sizeof(uint64_t));
}

// ----------------------------------------------------------- VisitMarker --

TEST(VisitMarkerTest, FreshMarkerHasNothingVisited) {
  VisitMarker marker(10);
  for (NodeId v = 0; v < 10; ++v) EXPECT_FALSE(marker.Visited(v));
}

TEST(VisitMarkerTest, VisitAndCheck) {
  VisitMarker marker(10);
  marker.NewEpoch();
  marker.Visit(3);
  EXPECT_TRUE(marker.Visited(3));
  EXPECT_FALSE(marker.Visited(4));
}

TEST(VisitMarkerTest, NewEpochClearsInConstantTime) {
  VisitMarker marker(10);
  marker.NewEpoch();
  marker.Visit(1);
  marker.NewEpoch();
  EXPECT_FALSE(marker.Visited(1));
}

TEST(VisitMarkerTest, VisitIfNewReportsFirstVisitOnly) {
  VisitMarker marker(10);
  marker.NewEpoch();
  EXPECT_TRUE(marker.VisitIfNew(5));
  EXPECT_FALSE(marker.VisitIfNew(5));
  EXPECT_TRUE(marker.Visited(5));
}

TEST(VisitMarkerTest, UnvisitSupportsBacktracking) {
  VisitMarker marker(10);
  marker.NewEpoch();
  marker.Visit(2);
  marker.Unvisit(2);
  EXPECT_FALSE(marker.Visited(2));
  EXPECT_TRUE(marker.VisitIfNew(2));
}

TEST(VisitMarkerTest, ManyEpochsStayConsistent) {
  VisitMarker marker(4);
  for (int e = 0; e < 1000; ++e) {
    marker.NewEpoch();
    marker.Visit(e % 4);
    EXPECT_TRUE(marker.Visited(e % 4));
    EXPECT_FALSE(marker.Visited((e + 1) % 4));
  }
}

// ----------------------------------------------------------------- Flags --

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

TEST(FlagsTest, ParsesEqualsForm) {
  std::vector<std::string> args = {"prog", "--k=25", "--eps=0.3"};
  auto argv = MakeArgv(args);
  Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("k", 0), 25);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.3);
}

TEST(FlagsTest, ParsesSpaceForm) {
  std::vector<std::string> args = {"prog", "--k", "7", "--name", "tim"};
  auto argv = MakeArgv(args);
  Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("k", 0), 7);
  EXPECT_EQ(flags.GetString("name", ""), "tim");
}

TEST(FlagsTest, BooleanSwitch) {
  std::vector<std::string> args = {"prog", "--verbose", "--full=false"};
  auto argv = MakeArgv(args);
  Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("full", true));
  EXPECT_TRUE(flags.GetBool("absent", true));
}

TEST(FlagsTest, DefaultsWhenMissing) {
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  Flags flags(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("k", 42), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.5), 0.5);
  EXPECT_FALSE(flags.Has("k"));
}

TEST(FlagsTest, PositionalArguments) {
  std::vector<std::string> args = {"prog", "input.txt", "--k=3", "out.txt"};
  auto argv = MakeArgv(args);
  Flags flags(static_cast<int>(argv.size()), argv.data());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "out.txt");
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, ElapsedIsNonNegativeAndMonotonic) {
  Timer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  EXPECT_NEAR(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3, 1.0);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  ASSERT_GE(sink, 0.0);  // keep the loop from being optimized away
  double before = t.ElapsedSeconds();
  t.Reset();
  EXPECT_LE(t.ElapsedSeconds(), before + 1e-3);
}

}  // namespace
}  // namespace timpp
