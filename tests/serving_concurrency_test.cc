// Concurrency tests of the serving layer: requests racing through one
// GraphContext must return bit-identical results to the serialized PR-4
// batch path at every concurrency level — including while the cache
// budget evicts streams under live readers and with the process-shard
// sampling backend — the admission queue must shed overload as
// Unavailable without corrupting admitted requests, the PhaseCache must
// compute each key exactly once no matter how many requests race for it,
// and concurrent SharedRRCache readers must see byte-identical sets while
// a writer grows the stream. Run under TSan in CI (the blocking job).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/phase_cache.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"
#include "serving/graph_context.h"
#include "serving/request_scheduler.h"
#include "serving/rr_cache.h"
#include "serving/serving_engine.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::IcSampling;
using testing::MakeTwoCommunities;
using testing::MakeWcPowerLaw;

// The workload all the engine-level tests share: algorithms, k, ε and
// seeds varied so the batch spans several streams and phase keys, with
// exact repeats so the phase cache and full-prefix reuse are exercised.
std::vector<ImRequest> ConcurrencyBatch(const std::string& graph) {
  std::vector<ImRequest> requests;
  const auto add = [&](const std::string& algo, int k, double eps,
                       uint64_t seed) {
    ImRequest r;
    r.graph = graph;
    r.algo = algo;
    r.k = k;
    r.epsilon = eps;
    r.seed = seed;
    requests.push_back(r);
  };
  for (uint64_t seed : {2024ULL, 4242ULL}) {
    add("tim+", 3, 0.4, seed);
    add("tim+", 3, 0.3, seed);  // same KPT key, larger θ: prefix extension
    add("tim+", 3, 0.4, seed);  // exact repeat: full reuse
    add("tim", 2, 0.4, seed);
    add("imm", 3, 0.4, seed);
    add("imm", 3, 0.4, seed);  // exact repeat: LB-cache hit
    add("imm", 2, 0.3, seed);
  }
  return requests;
}

// Serialized reference: a fresh engine solving the batch sequentially —
// the PR-4 contract the concurrent paths must reproduce bit-for-bit.
std::vector<ImResponse> SerialReference(const Graph& graph,
                                        const std::vector<ImRequest>& requests,
                                        unsigned num_threads) {
  ServingEngine engine(ServingOptions{.num_threads = num_threads});
  EXPECT_TRUE(engine.RegisterGraph(requests.front().graph, graph).ok());
  std::vector<ImResponse> responses;
  responses.reserve(requests.size());
  for (const ImRequest& request : requests) {
    responses.push_back(engine.Solve(request));
  }
  return responses;
}

// Solver results are deterministic in the request options alone; the
// reuse ATTRIBUTION (rr_sets_reused/sampled, phase_cache_hit) reflects
// which overlapping request reached the cache first, so only the former
// is compared. edges_examined is deterministic even across phase-cache
// hit/miss — the memo restores the phase's edge counts by design.
void ExpectSameResults(const std::vector<ImResponse>& expected,
                       const std::vector<ImResponse>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(actual[i].status.ok())
        << "request " << i << ": " << actual[i].status.ToString();
    ASSERT_TRUE(expected[i].status.ok()) << "reference request " << i;
    EXPECT_EQ(expected[i].result.seeds, actual[i].result.seeds)
        << "request " << i;
    EXPECT_DOUBLE_EQ(expected[i].result.estimated_spread,
                     actual[i].result.estimated_spread)
        << "request " << i;
    for (const char* metric :
         {"theta", "lb", "kpt_star", "kpt_plus", "rr_sets_kpt",
          "rr_sets_sampling", "rr_sets_generated", "cost_examined",
          "edges_examined"}) {
      EXPECT_DOUBLE_EQ(expected[i].result.Metric(metric),
                       actual[i].result.Metric(metric))
          << "request " << i << " metric " << metric;
    }
  }
}

// Submits every request from `submitters` threads concurrently and
// returns the responses in request order.
std::vector<ImResponse> SubmitFromThreads(ServingEngine& engine,
                                          const std::vector<ImRequest>& requests,
                                          unsigned submitters) {
  std::vector<std::future<ImResponse>> futures(requests.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(submitters);
  for (unsigned t = 0; t < submitters; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        futures[i] = engine.Submit(requests[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::vector<ImResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

// ------------------------------------ concurrent vs serialized ----------

TEST(ConcurrentServingTest, SubmitIsBitIdenticalToSerialAtEveryConcurrency) {
  Graph g = MakeWcPowerLaw(250, 4, 77);
  const std::vector<ImRequest> requests = ConcurrencyBatch("g");
  const std::vector<ImResponse> reference =
      SerialReference(g, requests, /*num_threads=*/2);

  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(workers);
    ServingOptions options;
    options.num_threads = 2;
    options.submit_workers = workers;
    options.max_pending_requests = 0;  // finite batch: never shed
    ServingEngine engine(options);
    ASSERT_TRUE(engine.RegisterGraph("g", g).ok());

    const std::vector<ImResponse> responses =
        SubmitFromThreads(engine, requests, /*submitters=*/4);
    ExpectSameResults(reference, responses);
    ASSERT_NE(engine.scheduler(), nullptr);
    // completed_ is bumped after the promise resolves; give the last
    // worker its instant to get there.
    for (int i = 0;
         i < 100000 && engine.scheduler()->completed() != requests.size();
         ++i) {
      std::this_thread::yield();
    }
    EXPECT_EQ(engine.scheduler()->completed(), requests.size());
    EXPECT_EQ(engine.scheduler()->rejected(), 0u);
  }
}

TEST(ConcurrentServingTest, ConcurrentSolveCallersMatchSerial) {
  // The synchronous Solve path from many caller threads — no scheduler,
  // raw concurrency against the shared caches.
  Graph g = MakeWcPowerLaw(250, 4, 77);
  const std::vector<ImRequest> requests = ConcurrencyBatch("g");
  const std::vector<ImResponse> reference =
      SerialReference(g, requests, /*num_threads=*/1);

  ServingEngine engine(ServingOptions{.num_threads = 1});
  ASSERT_TRUE(engine.RegisterGraph("g", g).ok());
  std::vector<ImResponse> responses(requests.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        responses[i] = engine.Solve(requests[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ExpectSameResults(reference, responses);
}

TEST(ConcurrentServingTest, EvictionUnderConcurrencyKeepsResultsIdentical) {
  // A budget small enough that streams are evicted while other requests
  // hold live readers on them; the refcount retirement must keep every
  // in-flight read coherent and every response bit-identical.
  Graph g = MakeWcPowerLaw(250, 4, 77);
  const std::vector<ImRequest> requests = ConcurrencyBatch("g");
  const std::vector<ImResponse> reference =
      SerialReference(g, requests, /*num_threads=*/2);

  ServingOptions options;
  options.num_threads = 2;
  options.submit_workers = 4;
  options.max_pending_requests = 0;
  options.shared_cache_budget_bytes = 256 * 1024;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterGraph("g", g).ok());

  const std::vector<ImResponse> responses =
      SubmitFromThreads(engine, requests, /*submitters=*/4);
  ExpectSameResults(reference, responses);

  GraphContext* context = engine.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_LE(context->SharedMemoryBytes(), options.shared_cache_budget_bytes);
  EXPECT_GT(context->StreamsEvicted(), 0u)
      << "budget was too large to exercise eviction under readers";
}

TEST(ConcurrentServingTest, ProcsBackendMatchesSerialLocal) {
  Graph g = MakeWcPowerLaw(200, 3, 77);
  std::vector<ImRequest> requests = ConcurrencyBatch("g");
  requests.resize(7);  // one seed's worth: keep the subprocess bill small
  const std::vector<ImResponse> reference =
      SerialReference(g, requests, /*num_threads=*/1);

  ServingOptions options;
  options.num_threads = 1;
  options.submit_workers = 4;
  options.max_pending_requests = 0;
  options.sample_backend.kind = SampleBackendKind::kProcessShards;
  options.sample_backend.num_workers = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterGraph("g", g).ok());

  const std::vector<ImResponse> responses =
      SubmitFromThreads(engine, requests, /*submitters=*/2);
  ExpectSameResults(reference, responses);
}

// ------------------------------------ admission control -----------------

TEST(ConcurrentServingTest, AdmissionQueueShedsOverloadAsUnavailable) {
  Graph g = MakeWcPowerLaw(250, 4, 77);
  ServingOptions options;
  options.num_threads = 1;
  options.submit_workers = 1;  // one worker: the queue actually backs up
  options.max_pending_requests = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterGraph("g", g).ok());

  ImRequest request;
  request.graph = "g";
  request.algo = "imm";
  request.k = 3;
  request.epsilon = 0.3;
  request.seed = 2024;
  const ImResponse expected = SerialReference(g, {request}, 1).front();

  // Burst submissions until the 2-deep queue rejects one; every accepted
  // response must still be the bit-exact result.
  std::vector<std::future<ImResponse>> futures;
  for (int i = 0; i < 5000 && engine.scheduler() == nullptr; ++i) {
    futures.push_back(engine.Submit(request));
  }
  while (engine.scheduler()->rejected() == 0 && futures.size() < 5000) {
    futures.push_back(engine.Submit(request));
  }
  EXPECT_GT(engine.scheduler()->rejected(), 0u)
      << "a 1-worker, 2-deep queue absorbed 5000 instant submissions";

  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (auto& future : futures) {
    ImResponse response = future.get();
    if (response.status.IsUnavailable()) {
      ++rejected;
      continue;
    }
    ++accepted;
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(expected.result.seeds, response.result.seeds);
    EXPECT_DOUBLE_EQ(expected.result.Metric("theta"),
                     response.result.Metric("theta"));
  }
  EXPECT_EQ(rejected, engine.scheduler()->rejected());
  // completed_ is bumped after the promise resolves; give the last
  // worker its instant to get there.
  for (int i = 0; i < 100000 && engine.scheduler()->completed() != accepted;
       ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(accepted, engine.scheduler()->completed());
}

// ------------------------------------ phase cache -----------------------

TEST(ConcurrentServingTest, PhaseComputedOnceUnderConcurrentSameKeyRequests) {
  Graph g = MakeWcPowerLaw(250, 4, 77);
  ServingOptions options;
  options.num_threads = 1;
  options.submit_workers = 4;
  options.max_pending_requests = 0;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterGraph("g", g).ok());

  // 12 identical requests racing through 4 workers: one LB key, so one
  // miss — the computing request — and 11 hits, however they interleave.
  ImRequest request;
  request.graph = "g";
  request.algo = "imm";
  request.k = 3;
  request.epsilon = 0.4;
  request.seed = 2024;
  const std::vector<ImRequest> requests(12, request);
  const std::vector<ImResponse> reference = SerialReference(g, requests, 1);
  const std::vector<ImResponse> responses =
      SubmitFromThreads(engine, requests, /*submitters=*/4);
  ExpectSameResults(reference, responses);

  GraphContext* context = engine.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->phase_cache().misses(), 1u)
      << "a key raced into more than one computation";
  EXPECT_EQ(context->phase_cache().hits(), requests.size() - 1);
  EXPECT_EQ(context->phase_cache().size(), 1u);
}

// ------------------------------------ SharedRRCache ---------------------

TEST(ConcurrentServingTest, ConcurrentReadersSeeByteIdenticalSets) {
  // Many threads reading ranges while some of them grow the stream: every
  // read must match the reference engine byte for byte.
  const Graph g = MakeTwoCommunities(0.35f);
  RRCollection reference(g.num_nodes());
  SamplingEngine reference_engine(g, IcSampling(11, 1));
  reference_engine.SampleInto(&reference, 1200);

  SharedRRCache cache(g, IcSampling(11, 1));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Staggered, overlapping ranges; later rounds re-read what earlier
      // rounds grew, racing published-prefix reads against the writer.
      for (int round = 0; round < 6; ++round) {
        const uint64_t first = (t * 37 + round * 151) % 700;
        const uint64_t count = 100 + 50 * (t % 3);
        RRCollection out(g.num_nodes());
        cache.Read(first, count, &out);
        for (uint64_t i = 0; i < count; ++i) {
          const auto got = out.Set(static_cast<RRSetId>(i));
          const auto want =
              reference.Set(static_cast<RRSetId>(first + i));
          if (got.size() != want.size() ||
              !std::equal(got.begin(), got.end(), want.begin())) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0) << "a concurrent read diverged from the "
                                   "reference stream";
  EXPECT_EQ(cache.cached_sets(),
            cache.total_sets_sampled());  // each index sampled once
}

TEST(ConcurrentServingTest, EvictionUnderLiveReadersServesByteIdenticalSets) {
  // Readers rotate across streams while another thread enforces a budget
  // that keeps at most ~one stream resident: reads race evictions, and a
  // reader holding an AcquireStream handle must keep its chunks alive and
  // byte-stable even after the stream leaves the context map.
  const Graph g = MakeTwoCommunities(0.35f);
  constexpr int kNumStreams = 3;
  std::vector<RRCollection> reference;
  for (int s = 0; s < kNumStreams; ++s) {
    reference.emplace_back(g.num_nodes());
    SamplingEngine engine(g, IcSampling(100 + s, 1));
    engine.SampleInto(&reference.back(), 400);
  }

  GraphContext context(Graph(g), 1);
  // A 1-byte budget: every enforcement pass evicts whatever is resident,
  // maximizing read-vs-eviction interleavings.
  context.set_cache_budget_bytes(1);
  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      context.EnforceCacheBudget();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> readers;
  for (unsigned t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        const int s = static_cast<int>((t + round) % kNumStreams);
        StreamKey key;
        key.seed = 100 + s;
        std::shared_ptr<SharedRRCache> cache = context.AcquireStream(key);
        RRCollection out(g.num_nodes());
        cache->Read(0, 400, &out);
        for (uint64_t i = 0; i < 400; ++i) {
          const auto got = out.Set(static_cast<RRSetId>(i));
          const auto want = reference[s].Set(static_cast<RRSetId>(i));
          if (got.size() != want.size() ||
              !std::equal(got.begin(), got.end(), want.begin())) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  evictor.join();
  EXPECT_EQ(failures.load(), 0)
      << "a read under concurrent eviction diverged from the reference";
  // Whatever the interleaving left resident goes now; either way the
  // 1-byte budget must have evicted something by this point.
  context.EnforceCacheBudget();
  EXPECT_GT(context.StreamsEvicted(), 0u)
      << "budget was too large to exercise eviction";
}

TEST(ConcurrentServingTest, EngineStatusLatchesTheFirstError) {
  // The status latch itself is exercised for data races by every
  // concurrent test above (TSan); here, the functional contract — an
  // engine that has not failed reports OK from any thread.
  const Graph g = MakeTwoCommunities(0.35f);
  SamplingEngine engine(g, IcSampling(5, 2));
  RRCollection out(g.num_nodes());
  engine.SampleInto(&out, 500);
  std::vector<std::thread> threads;
  std::atomic<int> not_ok{0};
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        if (!engine.status().ok()) not_ok.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(not_ok.load(), 0);
}

}  // namespace
}  // namespace timpp
