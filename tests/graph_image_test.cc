// Tests of the on-disk CSR graph image (graph/graph_io.h
// WriteGraphImage/OpenGraphImage + graph/graph_storage.h MmapGraphImage):
// a mapped graph must be indistinguishable from the resident graph it was
// written from — same ContentHash, same adjacency, byte-identical RR
// streams, locally and through procs:N workers loading the image via a
// `format=image` GraphSpec — and every corruption class (truncated
// header, bad magic, bad version, truncated or malformed payload, flipped
// payload bit, wrong node count) must come back as a named Status that
// leaves the output Graph untouched, never as a half-built graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "distributed/graph_spec.h"
#include "engine/sampling_engine.h"
#include "graph/graph_io.h"
#include "rrset/rr_collection.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeWcPowerLaw;

// RAII image path that deletes itself.
class TempImage {
 public:
  TempImage() {
    path_ = ::testing::TempDir() + "/timpp_image_test_" +
            std::to_string(counter_++) + ".timppimg";
  }
  ~TempImage() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempImage::counter_ = 0;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

void ExpectEqualCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  for (size_t i = 0; i < a.num_sets(); ++i) {
    const auto sa = a.Set(static_cast<RRSetId>(i));
    const auto sb = b.Set(static_cast<RRSetId>(i));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin())) << "set " << i;
  }
}

TEST(GraphImageTest, RoundTripPreservesGraphExactly) {
  const Graph resident = MakeWcPowerLaw(300, 3, 11);
  TempImage image;
  ASSERT_TRUE(WriteGraphImage(resident, image.path()).ok());

  Graph mapped;
  const Status status = OpenGraphImage(image.path(), &mapped);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(mapped.num_nodes(), resident.num_nodes());
  EXPECT_EQ(mapped.num_edges(), resident.num_edges());
  EXPECT_EQ(mapped.ContentHash(), resident.ContentHash());
  for (NodeId v = 0; v < resident.num_nodes(); ++v) {
    const auto ra = resident.OutArcs(v);
    const auto ma = mapped.OutArcs(v);
    ASSERT_EQ(ra.size(), ma.size()) << "node " << v;
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].node, ma[i].node);
      EXPECT_EQ(ra[i].prob, ma[i].prob);
    }
    const auto ri = resident.InArcs(v);
    const auto mi = mapped.InArcs(v);
    ASSERT_EQ(ri.size(), mi.size()) << "node " << v;
    for (size_t i = 0; i < ri.size(); ++i) {
      EXPECT_EQ(ri[i].node, mi[i].node);
      EXPECT_EQ(ri[i].prob, mi[i].prob);
    }
  }
}

TEST(GraphImageTest, MappedGraphProducesByteIdenticalRRStreams) {
  const Graph resident = MakeWcPowerLaw(250, 3, 5);
  TempImage image;
  ASSERT_TRUE(WriteGraphImage(resident, image.path()).ok());
  Graph mapped;
  ASSERT_TRUE(OpenGraphImage(image.path(), &mapped).ok());

  for (DiffusionModel model : {DiffusionModel::kIC, DiffusionModel::kLT}) {
    SamplingConfig config;
    config.model = model;
    config.seed = 77;
    SamplingEngine resident_engine(resident, config);
    SamplingEngine mapped_engine(mapped, config);
    RRCollection resident_rr(resident.num_nodes());
    RRCollection mapped_rr(mapped.num_nodes());
    const SampleBatch a = resident_engine.SampleInto(&resident_rr, 2000);
    const SampleBatch b = mapped_engine.SampleInto(&mapped_rr, 2000);
    EXPECT_EQ(a.edges_examined, b.edges_examined);
    ExpectEqualCollections(resident_rr, mapped_rr);
  }
}

TEST(GraphImageTest, ProcsWorkersLoadTheImageBitIdentically) {
  // Workers reconstruct the coordinator's graph from a `format=image`
  // spec: they mmap the image file, the handshake verifies ContentHash,
  // and the combined stream must be byte-identical to local sampling over
  // the resident original.
  const Graph resident = MakeWcPowerLaw(200, 3, 9);
  TempImage image;
  ASSERT_TRUE(WriteGraphImage(resident, image.path()).ok());
  Graph mapped;
  ASSERT_TRUE(OpenGraphImage(image.path(), &mapped).ok());

  SamplingConfig local_config;
  local_config.model = DiffusionModel::kIC;
  local_config.seed = 42;
  SamplingEngine local(resident, local_config);
  RRCollection local_rr(resident.num_nodes());
  local.SampleInto(&local_rr, 1500);

  SamplingConfig procs_config = local_config;
  procs_config.backend.kind = SampleBackendKind::kProcessShards;
  procs_config.backend.num_workers = 2;
  procs_config.backend.graph_source = "format=image;path=" + image.path();
  SamplingEngine procs(mapped, procs_config);
  RRCollection procs_rr(mapped.num_nodes());
  procs.SampleInto(&procs_rr, 1500);
  ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();

  ExpectEqualCollections(local_rr, procs_rr);
}

// ---- corruption rejection ---------------------------------------------
//
// Every rejection must (a) name the failure in the Status and (b) leave
// the caller's Graph exactly as it was — no half-built state.

class GraphImageCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_ = MakeWcPowerLaw(120, 3, 4);
    ASSERT_TRUE(WriteGraphImage(original_, image_.path()).ok());
    bytes_ = ReadFileBytes(image_.path());
    ASSERT_GT(bytes_.size(), 48u);
  }

  /// Opens the (tampered) image expecting failure whose message contains
  /// `fragment`, and verifies the output graph kept its prior contents.
  void ExpectRejected(const std::string& fragment) {
    Graph sentinel = testing::MakeChain(5, 0.5f);
    const uint64_t sentinel_hash = sentinel.ContentHash();
    const Status status = OpenGraphImage(image_.path(), &sentinel);
    ASSERT_FALSE(status.ok()) << "tampered image was accepted";
    EXPECT_NE(status.ToString().find(fragment), std::string::npos)
        << "status '" << status.ToString() << "' does not mention '"
        << fragment << "'";
    EXPECT_EQ(sentinel.num_nodes(), 5u) << "graph was clobbered on failure";
    EXPECT_EQ(sentinel.ContentHash(), sentinel_hash);
  }

  Graph original_;
  TempImage image_;
  std::string bytes_;
};

TEST_F(GraphImageCorruptionTest, TruncatedHeaderIsRejected) {
  WriteFileBytes(image_.path(), bytes_.substr(0, 17));
  ExpectRejected("truncated image header");
}

TEST_F(GraphImageCorruptionTest, BadMagicIsRejected) {
  bytes_[0] = 'X';
  WriteFileBytes(image_.path(), bytes_);
  ExpectRejected("bad image magic");
}

TEST_F(GraphImageCorruptionTest, UnsupportedVersionIsRejected) {
  bytes_[8] = 99;  // u32 file version at offset 8
  WriteFileBytes(image_.path(), bytes_);
  ExpectRejected("unsupported image version");
}

TEST_F(GraphImageCorruptionTest, TruncatedPayloadIsRejected) {
  // Header intact, payload cut short of the header's payload_size.
  WriteFileBytes(image_.path(), bytes_.substr(0, bytes_.size() - 24));
  ExpectRejected("truncated image payload");
}

TEST_F(GraphImageCorruptionTest, FlippedProbabilityBitIsRejected) {
  // The file's last 4 bytes are the final in-arc's probability float;
  // flipping one bit passes every structural check and must be caught by
  // the content-hash recomputation.
  bytes_[bytes_.size() - 2] ^= 0x10;
  WriteFileBytes(image_.path(), bytes_);
  ExpectRejected("image content hash mismatch");
}

TEST_F(GraphImageCorruptionTest, WrongNodeCountIsRejected) {
  // u64 node count at payload offset 8 (file offset 40): claiming one
  // extra node desynchronizes the offsets ramp from the CSR shape checks.
  ++bytes_[40];
  WriteFileBytes(image_.path(), bytes_);
  ExpectRejected("invalid CSR in image");
}

TEST_F(GraphImageCorruptionTest, OversizedSectionCountIsRejected) {
  // Bump the out_offsets section count (u64 at file offset 48): the
  // sections desynchronize and the next count is read from arc bytes —
  // far past the payload bounds.
  ++bytes_[48];
  WriteFileBytes(image_.path(), bytes_);
  ExpectRejected("malformed image payload");
}

TEST_F(GraphImageCorruptionTest, PayloadSizeMismatchIsRejected) {
  // A header whose payload_size disagrees with the file's actual size in
  // either direction is rejected before any payload parse.
  uint64_t payload = 0;
  std::memcpy(&payload, bytes_.data() + 16, sizeof(payload));
  payload -= 8;
  std::memcpy(bytes_.data() + 16, &payload, sizeof(payload));
  WriteFileBytes(image_.path(), bytes_);
  ExpectRejected("truncated image payload");
}

TEST_F(GraphImageCorruptionTest, MissingFileIsRejected) {
  std::remove(image_.path().c_str());
  ExpectRejected("cannot open");
}

}  // namespace
}  // namespace timpp
