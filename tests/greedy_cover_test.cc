// Tests for coverage/greedy_cover.h, including the parameterized property
// sweep that pins the lazy implementation to the naive reference and the
// (1-1/e) quality bound against the exhaustive optimum.
#include <gtest/gtest.h>

#include <cmath>

#include "coverage/greedy_cover.h"
#include "rrset/rr_collection.h"
#include "util/rng.h"

namespace timpp {
namespace {

RRCollection MakeCollection(NodeId num_nodes,
                            const std::vector<std::vector<NodeId>>& sets) {
  RRCollection rr(num_nodes);
  for (const auto& s : sets) rr.Add(s, 0);
  rr.BuildIndex();
  return rr;
}

TEST(GreedyCoverTest, SingleBestNode) {
  RRCollection rr = MakeCollection(4, {{0, 1}, {1, 2}, {1}, {3}});
  CoverResult result = GreedyMaxCover(rr, 1);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 1u);
  EXPECT_EQ(result.covered_sets, 3u);
  EXPECT_DOUBLE_EQ(result.covered_fraction, 0.75);
}

TEST(GreedyCoverTest, SecondPickMaximizesMarginalNotTotal) {
  // Node 0 covers sets {0,1,2}; node 1 covers {0,1,3}; node 2 covers {4,5}.
  // After picking 0, node 1's marginal is 1 but node 2's is 2.
  RRCollection rr = MakeCollection(
      3, {{0, 1}, {0, 1}, {0}, {1}, {2}, {2}});
  CoverResult result = GreedyMaxCover(rr, 2);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_EQ(result.seeds[1], 2u);
  EXPECT_EQ(result.covered_sets, 5u);
  EXPECT_EQ(result.marginal_coverage[0], 3u);
  EXPECT_EQ(result.marginal_coverage[1], 2u);
}

TEST(GreedyCoverTest, TieBreaksBySmallerNodeId) {
  RRCollection rr = MakeCollection(3, {{1}, {2}});
  CoverResult result = GreedyMaxCover(rr, 1);
  EXPECT_EQ(result.seeds[0], 1u);  // both cover one set; smaller id wins
}

TEST(GreedyCoverTest, KLargerThanUsefulNodesStillReturnsK) {
  RRCollection rr = MakeCollection(5, {{0}, {0}});
  CoverResult result = GreedyMaxCover(rr, 3);
  EXPECT_EQ(result.seeds.size(), 3u);
  EXPECT_EQ(result.covered_sets, 2u);
  EXPECT_EQ(result.marginal_coverage[1], 0u);  // padding picks add nothing
}

TEST(GreedyCoverTest, EmptyCollection) {
  RRCollection rr(4);
  rr.BuildIndex();
  CoverResult result = GreedyMaxCover(rr, 2);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.covered_sets, 0u);
  EXPECT_DOUBLE_EQ(result.covered_fraction, 0.0);
}

TEST(GreedyCoverTest, KZeroReturnsNothing) {
  RRCollection rr = MakeCollection(2, {{0}});
  CoverResult result = GreedyMaxCover(rr, 0);
  EXPECT_TRUE(result.seeds.empty());
}

TEST(GreedyCoverTest, MarginalsAreNonIncreasing) {
  Rng rng(100);
  std::vector<std::vector<NodeId>> sets;
  for (int i = 0; i < 300; ++i) {
    std::vector<NodeId> s;
    const int size = 1 + static_cast<int>(rng.NextBounded(5));
    for (int j = 0; j < size; ++j) {
      s.push_back(static_cast<NodeId>(rng.NextBounded(40)));
    }
    sets.push_back(s);
  }
  RRCollection rr = MakeCollection(40, sets);
  CoverResult result = GreedyMaxCover(rr, 10);
  for (size_t i = 1; i < result.marginal_coverage.size(); ++i) {
    EXPECT_LE(result.marginal_coverage[i], result.marginal_coverage[i - 1])
        << "greedy marginal gains must be non-increasing (submodularity)";
  }
}

// Parameterized sweep: lazy greedy must match the naive reference bit for
// bit across instance shapes, and both must clear the (1-1/e) bound
// against the exhaustive optimum.
struct CoverCase {
  int num_nodes;
  int num_sets;
  int max_set_size;
  int k;
  uint64_t seed;
};

class GreedyCoverPropertyTest : public ::testing::TestWithParam<CoverCase> {};

TEST_P(GreedyCoverPropertyTest, LazyMatchesNaiveExactly) {
  const CoverCase& c = GetParam();
  Rng rng(c.seed);
  std::vector<std::vector<NodeId>> sets;
  for (int i = 0; i < c.num_sets; ++i) {
    std::vector<NodeId> s;
    const int size = 1 + static_cast<int>(rng.NextBounded(c.max_set_size));
    for (int j = 0; j < size; ++j) {
      s.push_back(static_cast<NodeId>(rng.NextBounded(c.num_nodes)));
    }
    sets.push_back(s);
  }
  RRCollection rr = MakeCollection(c.num_nodes, sets);

  CoverResult lazy = GreedyMaxCover(rr, c.k);
  CoverResult naive = NaiveGreedyMaxCover(rr, c.k);
  EXPECT_EQ(lazy.seeds, naive.seeds);
  EXPECT_EQ(lazy.covered_sets, naive.covered_sets);
  EXPECT_EQ(lazy.marginal_coverage, naive.marginal_coverage);
}

TEST_P(GreedyCoverPropertyTest, BucketQueueMatchesHeapBitForBit) {
  // The bucket queue replaced the heap as the default GreedyMaxCover; both
  // implement argmax-count with min-id tie-break, so every field of
  // CoverResult must agree exactly on arbitrary collections.
  const CoverCase& c = GetParam();
  Rng rng(c.seed ^ 0x5eed);
  std::vector<std::vector<NodeId>> sets;
  for (int i = 0; i < c.num_sets; ++i) {
    std::vector<NodeId> s;
    const int size = 1 + static_cast<int>(rng.NextBounded(c.max_set_size));
    for (int j = 0; j < size; ++j) {
      s.push_back(static_cast<NodeId>(rng.NextBounded(c.num_nodes)));
    }
    sets.push_back(s);
  }
  RRCollection rr = MakeCollection(c.num_nodes, sets);

  CoverResult bucket = GreedyMaxCover(rr, c.k);
  CoverResult heap = HeapGreedyMaxCover(rr, c.k);
  EXPECT_EQ(bucket.seeds, heap.seeds);
  EXPECT_EQ(bucket.marginal_coverage, heap.marginal_coverage);
  EXPECT_EQ(bucket.covered_sets, heap.covered_sets);
  EXPECT_EQ(bucket.covered_fraction, heap.covered_fraction);

  // Force the coarse-bucket path (count-range buckets, which a θ-scale
  // max_count would trigger in production): results must be cap-invariant.
  for (uint64_t cap : {1u, 2u, 7u}) {
    CoverResult coarse = GreedyMaxCoverWithBucketCap(rr, c.k, cap);
    EXPECT_EQ(coarse.seeds, heap.seeds) << "cap=" << cap;
    EXPECT_EQ(coarse.marginal_coverage, heap.marginal_coverage)
        << "cap=" << cap;
  }
}

TEST_P(GreedyCoverPropertyTest, GreedyBeatsOneMinusOneOverEOfOptimum) {
  const CoverCase& c = GetParam();
  if (c.num_nodes > 16) GTEST_SKIP() << "brute force too large";
  Rng rng(c.seed ^ 0xabcdef);
  std::vector<std::vector<NodeId>> sets;
  for (int i = 0; i < c.num_sets; ++i) {
    std::vector<NodeId> s;
    const int size = 1 + static_cast<int>(rng.NextBounded(c.max_set_size));
    for (int j = 0; j < size; ++j) {
      s.push_back(static_cast<NodeId>(rng.NextBounded(c.num_nodes)));
    }
    sets.push_back(s);
  }
  RRCollection rr = MakeCollection(c.num_nodes, sets);

  CoverResult greedy = GreedyMaxCover(rr, c.k);
  uint64_t opt = BruteForceMaxCover(rr, c.k);
  EXPECT_GE(static_cast<double>(greedy.covered_sets),
            (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(opt) - 1e-9)
      << "greedy=" << greedy.covered_sets << " opt=" << opt;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GreedyCoverPropertyTest,
    ::testing::Values(CoverCase{10, 50, 3, 3, 1}, CoverCase{10, 50, 3, 3, 2},
                      CoverCase{16, 200, 5, 4, 3}, CoverCase{16, 200, 5, 8, 4},
                      CoverCase{12, 30, 2, 5, 5}, CoverCase{12, 500, 6, 6, 6},
                      CoverCase{100, 1000, 8, 10, 7},
                      CoverCase{100, 1000, 8, 25, 8},
                      CoverCase{500, 5000, 10, 50, 9},
                      CoverCase{16, 16, 1, 16, 10}));

}  // namespace
}  // namespace timpp
