// Parameterized property sweeps across graph shapes × diffusion models —
// the statistical identities the whole method rests on, checked broadly:
//   * Corollary 1: n·F_R(S) is an unbiased estimator of E[I(S)]
//   * Equation 7 sandwich: (n/m)·EPT <= KPT <= OPT
//   * parallel node selection ≡ sequential in distribution & determinism
//   * end-to-end TIM+ quality across shapes
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "core/node_selector.h"
#include "core/tim.h"
#include "diffusion/exact_spread.h"
#include "diffusion/spread_estimator.h"
#include "gen/generators.h"
#include "graph/weight_models.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;

enum class Shape { kChain, kStar, kCycle, kTwoCommunities, kDiamond, kTree };

struct PropertyCase {
  Shape shape;
  DiffusionModel model;
  float p;

  // Pretty-printer so failures and --gtest_list_tests are readable.
  friend void PrintTo(const PropertyCase& c, std::ostream* os) {
    const char* names[] = {"Chain", "Star", "Cycle", "TwoComm", "Diamond",
                           "Tree"};
    *os << names[static_cast<int>(c.shape)] << "_"
        << DiffusionModelName(c.model) << "_p" << c.p;
  }
};

Graph BuildShape(Shape shape, float p) {
  switch (shape) {
    case Shape::kChain:
      return testing::MakeChain(6, p);
    case Shape::kStar:
      return testing::MakeOutStar(8, p);
    case Shape::kCycle: {
      GraphBuilder b;
      GenDirectedCycle(6, &b);
      AssignUniform(&b, p);
      Graph g;
      EXPECT_TRUE(b.Build(&g).ok());
      return g;
    }
    case Shape::kTwoCommunities:
      return testing::MakeTwoCommunities(p);
    case Shape::kDiamond:
      return testing::MakeGraph(
          4, {{0, 1, p}, {0, 2, p}, {1, 3, p}, {2, 3, p}});
    case Shape::kTree: {
      GraphBuilder b;
      GenBinaryTreeOut(2, &b);  // 7 nodes — inside the brute-force limit
      AssignUniform(&b, p);
      Graph g;
      EXPECT_TRUE(b.Build(&g).ok());
      return g;
    }
  }
  return Graph();
}

// LT needs in-weight sums <= 1; all shapes above have max in-degree <= 2
// except TwoCommunities (3), so cap p for LT cases at construction time.
float CapForLT(Shape shape, DiffusionModel model, float p) {
  if (model != DiffusionModel::kLT) return p;
  if (shape == Shape::kTwoCommunities) return std::min(p, 0.33f);
  return std::min(p, 0.5f);
}

double ExactSpread(const Graph& g, DiffusionModel model,
                   const std::vector<NodeId>& seeds) {
  double spread = 0;
  Status status = model == DiffusionModel::kLT
                      ? ExactSpreadLT(g, seeds, &spread)
                      : ExactSpreadIC(g, seeds, &spread);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return spread;
}

class DiffusionPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  Graph graph_;
  void SetUp() override {
    const PropertyCase& c = GetParam();
    graph_ = BuildShape(c.shape, CapForLT(c.shape, c.model, c.p));
  }
};

TEST_P(DiffusionPropertyTest, Corollary1UnbiasedSpreadEstimator) {
  const PropertyCase& c = GetParam();
  // S = two spaced nodes (or one if the graph is tiny).
  std::vector<NodeId> seeds = {0};
  if (graph_.num_nodes() > 4) seeds.push_back(graph_.num_nodes() / 2);

  const double exact = ExactSpread(graph_, c.model, seeds);

  RRSampler sampler(graph_, c.model);
  Rng rng(0xc0ffee ^ static_cast<uint64_t>(c.p * 1000));
  RRCollection rr(graph_.num_nodes());
  std::vector<NodeId> scratch;
  const int theta = 120000;
  for (int i = 0; i < theta; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    rr.Add(scratch, info.width);
  }
  rr.BuildIndex();
  ExpectClose(exact, rr.CoveredFraction(seeds) * graph_.num_nodes(), 0.03);
}

TEST_P(DiffusionPropertyTest, ForwardSimulationMatchesExactOracle) {
  const PropertyCase& c = GetParam();
  std::vector<NodeId> seeds = {0};
  const double exact = ExactSpread(graph_, c.model, seeds);

  SpreadEstimatorOptions options;
  options.num_samples = 120000;
  options.model = c.model;
  SpreadEstimator estimator(graph_, options);
  ExpectClose(exact, estimator.Estimate(seeds, 77), 0.03);
}

TEST_P(DiffusionPropertyTest, Equation7Sandwich) {
  // (n/m)·EPT <= KPT(k) <= OPT for k = 2, all measured quantities.
  const PropertyCase& c = GetParam();
  if (graph_.num_edges() == 0) GTEST_SKIP();
  const double n = graph_.num_nodes(), m = graph_.num_edges();

  RRSampler sampler(graph_, c.model);
  Rng rng(123);
  std::vector<NodeId> scratch;
  const int r = 60000;
  double width_sum = 0, kappa_sum = 0;
  const int k = 2;
  for (int i = 0; i < r; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    width_sum += static_cast<double>(info.width);
    kappa_sum += 1.0 - std::pow(1.0 - info.width / m, k);
  }
  const double ept_bound = (n / m) * (width_sum / r);  // (n/m)·EPT
  const double kpt = n * kappa_sum / r;                // Lemma 5

  std::vector<NodeId> opt_seeds;
  double opt = 0;
  Status status = c.model == DiffusionModel::kLT
                      ? BruteForceOptimalLT(graph_, k, &opt_seeds, &opt)
                      : BruteForceOptimalIC(graph_, k, &opt_seeds, &opt);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_LE(ept_bound, kpt * 1.03 + 0.02) << "(n/m)EPT <= KPT violated";
  EXPECT_LE(kpt, opt * 1.03 + 0.02) << "KPT <= OPT violated";
}

TEST_P(DiffusionPropertyTest, TimPlusMeetsApproximationGuarantee) {
  const PropertyCase& c = GetParam();
  const int k = 2;
  std::vector<NodeId> opt_seeds;
  double opt = 0;
  Status status = c.model == DiffusionModel::kLT
                      ? BruteForceOptimalLT(graph_, k, &opt_seeds, &opt)
                      : BruteForceOptimalIC(graph_, k, &opt_seeds, &opt);
  ASSERT_TRUE(status.ok()) << status.ToString();

  TimOptions options;
  options.k = k;
  options.epsilon = 0.3;
  options.model = c.model;
  options.seed = 4242;
  TimSolver solver(graph_);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());

  const double spread = ExactSpread(graph_, c.model, result.seeds);
  EXPECT_GE(spread, (1.0 - 1.0 / std::exp(1.0) - 0.3) * opt - 1e-9)
      << "spread=" << spread << " opt=" << opt;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndModels, DiffusionPropertyTest,
    ::testing::Values(
        PropertyCase{Shape::kChain, DiffusionModel::kIC, 0.5f},
        PropertyCase{Shape::kChain, DiffusionModel::kLT, 0.5f},
        PropertyCase{Shape::kChain, DiffusionModel::kIC, 0.9f},
        PropertyCase{Shape::kStar, DiffusionModel::kIC, 0.3f},
        PropertyCase{Shape::kStar, DiffusionModel::kLT, 0.3f},
        PropertyCase{Shape::kCycle, DiffusionModel::kIC, 0.6f},
        PropertyCase{Shape::kCycle, DiffusionModel::kLT, 0.6f},
        PropertyCase{Shape::kTwoCommunities, DiffusionModel::kIC, 0.35f},
        PropertyCase{Shape::kTwoCommunities, DiffusionModel::kLT, 0.3f},
        PropertyCase{Shape::kDiamond, DiffusionModel::kIC, 0.5f},
        PropertyCase{Shape::kDiamond, DiffusionModel::kLT, 0.4f},
        PropertyCase{Shape::kTree, DiffusionModel::kIC, 0.7f},
        PropertyCase{Shape::kTree, DiffusionModel::kLT, 0.5f}));

// ------------------------------------------------- parallel node selection --

TEST(ParallelSelectionTest, DeterministicGivenSeedAndThreads) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  SamplingEngine e1(g, testing::IcSampling(9, 4));
  SamplingEngine e2(g, testing::IcSampling(9, 4));
  NodeSelection a = SelectNodes(e1, 3, 20000);
  NodeSelection b = SelectNodes(e2, 3, 20000);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.covered_fraction, b.covered_fraction);
  EXPECT_EQ(a.edges_examined, b.edges_examined);
}

TEST(ParallelSelectionTest, ThreadCountDoesNotChangeResults) {
  // The engine's deterministic merge contract: thread count must not
  // change a single byte of the output — seeds, coverage and cost all
  // match the sequential run exactly.
  Graph g = testing::MakeTwoCommunities(0.35f);
  SamplingEngine sequential(g, testing::IcSampling(10, 1));
  NodeSelection reference = SelectNodes(sequential, 3, 10000);
  for (unsigned threads : {2u, 3u, 8u}) {
    SamplingEngine parallel(g, testing::IcSampling(10, threads));
    NodeSelection result = SelectNodes(parallel, 3, 10000);
    EXPECT_EQ(reference.seeds, result.seeds) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(reference.covered_fraction, result.covered_fraction)
        << "threads=" << threads;
    EXPECT_EQ(reference.edges_examined, result.edges_examined)
        << "threads=" << threads;
  }
}

TEST(ParallelSelectionTest, TimSolverWithThreadsStaysCorrect) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 2, &opt_seeds, &opt).ok());

  TimOptions options;
  options.k = 2;
  options.epsilon = 0.3;
  options.num_threads = 4;
  options.seed = 12;
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &spread).ok());
  EXPECT_GE(spread, 0.9 * opt);

  TimResult again;
  ASSERT_TRUE(solver.Run(options, &again).ok());
  EXPECT_EQ(result.seeds, again.seeds) << "threaded runs must reproduce";
}

TEST(ParallelSelectionTest, ThetaSplitCoversRemainder) {
  Graph g = testing::MakeChain(5, 0.5f);
  SamplingEngine engine(g, testing::IcSampling(13, 4));
  // 10007 sets across 4 workers — the contiguous index split must cover
  // the remainder exactly.
  NodeSelection result = SelectNodes(engine, 1, 10007);
  EXPECT_EQ(result.theta, 10007u);
  EXPECT_EQ(engine.sets_sampled(), 10007u);
}

}  // namespace
}  // namespace timpp
