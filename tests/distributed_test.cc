// Tests of process-sharded distributed RR sampling: `procs:N` must be
// BIT-IDENTICAL to the local backend at every worker count — at the
// engine level (collections, accounting, filtered streaming) and for
// every RR solver in the registry (seeds, θ, LB, spread, edge counts),
// budgeted and unbudgeted, IC and LT. Worker crashes are recovered
// transparently (respawn + shard retry, still bit-identical); with
// retries disabled, and for deterministic failures (graph identity
// mismatch, missing binary), the run fails with a clear Status, never
// with truncated results. Injected-fault coverage (hangs, truncated or
// corrupt frames, retry exhaustion, fallback) lives in
// fault_injection_test.cc.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "distributed/graph_spec.h"
#include "distributed/process_shard_backend.h"
#include "engine/sampling_engine.h"
#include "engine/solver_registry.h"
#include "graph/graph_io.h"
#include "rrset/rr_collection.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeWcPowerLaw;

SampleBackendSpec Procs(unsigned workers, unsigned threads = 1) {
  SampleBackendSpec spec;
  spec.kind = SampleBackendKind::kProcessShards;
  spec.num_workers = workers;
  spec.worker_threads = threads;
  return spec;
}

SamplingConfig Config(DiffusionModel model, uint64_t seed,
                      const SampleBackendSpec& backend = {}) {
  SamplingConfig config;
  config.model = model;
  config.seed = seed;
  config.backend = backend;
  return config;
}

void ExpectEqualCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  EXPECT_EQ(a.TotalWidth(), b.TotalWidth());
  for (size_t i = 0; i < a.num_sets(); ++i) {
    const auto sa = a.Set(static_cast<RRSetId>(i));
    const auto sb = b.Set(static_cast<RRSetId>(i));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin())) << "set " << i;
    EXPECT_EQ(a.Width(static_cast<RRSetId>(i)),
              b.Width(static_cast<RRSetId>(i)))
        << "set " << i;
  }
}

TEST(ProcessShardBackendTest, EngineFillsAreBitIdenticalToLocal) {
  const Graph graph = MakeWcPowerLaw(200, 3, 7);
  for (DiffusionModel model : {DiffusionModel::kIC, DiffusionModel::kLT}) {
    SamplingEngine local(graph, Config(model, 42));
    RRCollection local_rr(graph.num_nodes());
    std::vector<uint64_t> local_edges;
    const SampleBatch local_batch =
        local.SampleInto(&local_rr, 1000, &local_edges);
    ASSERT_TRUE(local.status().ok());

    for (unsigned workers : {1u, 2u, 4u}) {
      SamplingEngine procs(graph, Config(model, 42, Procs(workers)));
      RRCollection procs_rr(graph.num_nodes());
      std::vector<uint64_t> procs_edges;
      const SampleBatch procs_batch =
          procs.SampleInto(&procs_rr, 1000, &procs_edges);
      ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();

      ExpectEqualCollections(local_rr, procs_rr);
      EXPECT_EQ(local_edges, procs_edges) << workers << " workers";
      EXPECT_EQ(local_batch.edges_examined, procs_batch.edges_examined);
      EXPECT_EQ(local_batch.traversal_cost, procs_batch.traversal_cost);
    }
  }
}

TEST(ProcessShardBackendTest, MultithreadedWorkersChangeNothing) {
  const Graph graph = MakeWcPowerLaw(150, 3, 9);
  SamplingEngine local(graph, Config(DiffusionModel::kIC, 5));
  RRCollection local_rr(graph.num_nodes());
  local.SampleInto(&local_rr, 700);

  SamplingEngine procs(graph, Config(DiffusionModel::kIC, 5, Procs(2, 3)));
  RRCollection procs_rr(graph.num_nodes());
  procs.SampleInto(&procs_rr, 700);
  ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();
  ExpectEqualCollections(local_rr, procs_rr);
}

TEST(ProcessShardBackendTest, CostThresholdStopsAtTheSameSet) {
  const Graph graph = MakeWcPowerLaw(200, 3, 11);
  SamplingEngine local(graph, Config(DiffusionModel::kIC, 13));
  RRCollection local_rr(graph.num_nodes());
  const SampleBatch local_batch = local.SampleUntilCost(&local_rr, 4000.0);

  SamplingEngine procs(graph, Config(DiffusionModel::kIC, 13, Procs(3)));
  RRCollection procs_rr(graph.num_nodes());
  const SampleBatch procs_batch = procs.SampleUntilCost(&procs_rr, 4000.0);
  ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();

  EXPECT_EQ(local_batch.sets_added, procs_batch.sets_added);
  EXPECT_EQ(local_batch.traversal_cost, procs_batch.traversal_cost);
  ExpectEqualCollections(local_rr, procs_rr);
}

TEST(ProcessShardBackendTest, FilteredVisitStreamsIdentically) {
  // VisitSamples with a filter exercises the kSampleList path: the
  // coordinator evaluates the filter and ships explicit index lists.
  const Graph graph = MakeWcPowerLaw(150, 3, 21);
  const auto filter = [](uint64_t index) { return index % 3 != 1; };

  struct Visit {
    uint64_t index;
    std::vector<NodeId> nodes;
    bool operator==(const Visit&) const = default;
  };
  const auto collect = [&](SamplingEngine& engine) {
    std::vector<Visit> visits;
    engine.VisitSamples(100, 2000, filter,
                        [&](uint64_t index, std::span<const NodeId> nodes) {
                          visits.push_back(
                              {index, {nodes.begin(), nodes.end()}});
                        });
    return visits;
  };

  SamplingEngine local(graph, Config(DiffusionModel::kIC, 3));
  SamplingEngine procs(graph, Config(DiffusionModel::kIC, 3, Procs(4)));
  const std::vector<Visit> local_visits = collect(local);
  const std::vector<Visit> procs_visits = collect(procs);
  ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();
  ASSERT_EQ(local_visits.size(), procs_visits.size());
  EXPECT_TRUE(local_visits == procs_visits);
}

// ---- solver sweep ----------------------------------------------------

struct SweepCase {
  std::string algo;
  DiffusionModel model;
  size_t memory_budget;
};

SolverResult RunRegistry(const Graph& graph, const SweepCase& c,
                         const SampleBackendSpec& backend) {
  std::unique_ptr<InfluenceSolver> solver;
  Status s = SolverRegistry::Global().Create(c.algo, graph, &solver);
  EXPECT_TRUE(s.ok()) << s.ToString();
  SolverOptions options;
  options.k = 4;
  options.epsilon = 0.3;
  options.seed = 1234;
  options.model = c.model;
  options.memory_budget_bytes = c.memory_budget;
  options.ris_tau_scale = 0.05;
  options.ris_max_sets = 200000;
  options.sample_backend = backend;
  SolverResult result;
  s = solver->Run(options, &result);
  EXPECT_TRUE(s.ok()) << c.algo << ": " << s.ToString();
  return result;
}

TEST(DistributedSolverTest, EveryRrSolverIsBitIdenticalAcrossBackends) {
  const Graph graph = MakeWcPowerLaw(250, 3, 17);
  std::vector<SweepCase> cases;
  for (const char* algo : {"tim+", "imm", "ris"}) {
    for (DiffusionModel model :
         {DiffusionModel::kIC, DiffusionModel::kLT}) {
      cases.push_back({algo, model, 0});
      cases.push_back({algo, model, 64 * 1024});  // budgeted / streaming
    }
  }

  for (const SweepCase& c : cases) {
    SCOPED_TRACE(c.algo + (c.model == DiffusionModel::kLT ? "/lt" : "/ic") +
                 (c.memory_budget != 0 ? "/budgeted" : ""));
    const SolverResult local = RunRegistry(graph, c, SampleBackendSpec{});
    for (unsigned workers : {1u, 2u, 4u}) {
      SCOPED_TRACE(workers);
      const SolverResult procs = RunRegistry(graph, c, Procs(workers));
      EXPECT_EQ(local.seeds, procs.seeds);
      EXPECT_EQ(local.estimated_spread, procs.estimated_spread);
      // Stat-for-stat identity, wall-clock and allocator-capacity
      // accounting excepted (rr_memory_bytes counts vector capacities,
      // which legitimately depend on the append pattern; rr_data_bytes is
      // the allocation-independent quantity and must match).
      for (const auto& [name, value] : local.metrics) {
        if (name == "rr_memory_bytes" || name.rfind("seconds", 0) == 0) {
          continue;
        }
        EXPECT_EQ(value, procs.Metric(name, -1.0)) << name;
      }
    }
  }
}

// ---- failure modes ---------------------------------------------------

TEST(DistributedSolverTest, WorkerCrashIsRecoveredBitIdentically) {
  const Graph graph = MakeWcPowerLaw(150, 3, 29);
  SamplingEngine local(graph, Config(DiffusionModel::kIC, 77));
  RRCollection local_rr(graph.num_nodes());
  local.SampleInto(&local_rr, 512);

  SamplingEngine engine(graph, Config(DiffusionModel::kIC, 77, Procs(2)));
  RRCollection rr(graph.num_nodes());
  engine.SampleInto(&rr, 128);
  ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
  EXPECT_FALSE(engine.backend_stats().any());

  // Kill a worker behind the engine's back, then ask for more: the
  // supervisor detects the dead pipe, respawns the worker and replays
  // its shard. Set i is a pure function of (seed, i), so the replayed
  // shard — and hence the whole stream — is bit-identical to a run that
  // never crashed.
  auto& backend = static_cast<ProcessShardBackend&>(engine.backend());
  ASSERT_TRUE(backend.KillWorkerForTest(0).ok());

  const SampleBatch batch = engine.SampleInto(&rr, 384);
  ASSERT_TRUE(engine.status().ok()) << engine.status().ToString();
  EXPECT_EQ(batch.sets_added, 384u);
  ExpectEqualCollections(local_rr, rr);

  const BackendStats stats = engine.backend_stats();
  EXPECT_GE(stats.worker_respawns, 1u);
  EXPECT_GE(stats.worker_crashes, 1u);
}

TEST(ProcessShardBackendTest, RetriesDisabledLatchesACrashAsAnError) {
  // max_shard_retries = 0 restores the fail-fast contract: a worker
  // crash is a hard, latched error and no later fill quietly succeeds —
  // callers get a Status, never truncated results.
  const Graph graph = MakeWcPowerLaw(150, 3, 23);
  SampleBackendSpec spec = Procs(2);
  spec.max_shard_retries = 0;
  SamplingConfig config = Config(DiffusionModel::kIC, 31, spec);
  ProcessShardBackend backend(graph, config);

  ASSERT_TRUE(backend.Fill(0, 256, nullptr).ok());
  ASSERT_TRUE(backend.KillWorkerForTest(1).ok());
  const Status failed = backend.Fill(256, 256, nullptr);
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(backend.chunks().empty());
  // The failure is latched: no later fill can quietly succeed.
  EXPECT_FALSE(backend.Fill(512, 256, nullptr).ok());
}

TEST(ProcessShardBackendTest, MissingWorkerBinaryIsAClearError) {
  const Graph graph = MakeWcPowerLaw(50, 2, 3);
  SampleBackendSpec spec = Procs(1);
  spec.worker_binary = "/nonexistent/timpp_worker_binary";
  SamplingEngine engine(graph, Config(DiffusionModel::kIC, 1, spec));
  RRCollection rr(graph.num_nodes());
  const SampleBatch batch = engine.SampleInto(&rr, 10);
  EXPECT_EQ(batch.sets_added, 0u);
  EXPECT_FALSE(engine.status().ok());
}

TEST(ProcessShardBackendTest, GraphIdentityMismatchIsRejectedAtHandshake) {
  // Coordinator holds graph A but points workers at a file holding graph
  // B: the ContentHash handshake must reject before any sampling.
  const Graph coordinator_graph = MakeWcPowerLaw(100, 3, 41);
  const Graph other_graph = MakeWcPowerLaw(100, 3, 43);
  ASSERT_NE(coordinator_graph.ContentHash(), other_graph.ContentHash());

  const std::string path =
      ::testing::TempDir() + "/timpp_mismatch_" +
      std::to_string(::getpid()) + ".timg";
  ASSERT_TRUE(WriteBinary(other_graph, path).ok());

  SampleBackendSpec spec = Procs(2);
  spec.graph_source = "format=binary;path=" + path;
  SamplingEngine engine(coordinator_graph,
                        Config(DiffusionModel::kIC, 1, spec));
  RRCollection rr(coordinator_graph.num_nodes());
  const SampleBatch batch = engine.SampleInto(&rr, 10);
  EXPECT_EQ(batch.sets_added, 0u);
  ASSERT_FALSE(engine.status().ok());
  EXPECT_NE(engine.status().message().find("mismatch"), std::string::npos)
      << engine.status().ToString();
  std::remove(path.c_str());
}

TEST(ProcessShardBackendTest, SpecLoadedGraphPassesHandshakeAndMatches) {
  // The happy path of spec transport: coordinator and workers load the
  // SAME file through the same recipe (how the CLI operates), so the
  // hash agrees and the sampled stream is identical to local. Note the
  // coordinator must itself hold the file's canonical arc order — the
  // edge-triple container does not preserve a generated graph's in-arc
  // order (that is exactly what the handshake is there to catch, see
  // GraphIdentityMismatchIsRejectedAtHandshake).
  const Graph generated = MakeWcPowerLaw(120, 3, 47);
  const std::string path = ::testing::TempDir() + "/timpp_spec_" +
                           std::to_string(::getpid()) + ".timg";
  ASSERT_TRUE(WriteBinary(generated, path).ok());
  Graph graph;
  ASSERT_TRUE(ReadBinary(path, &graph).ok());

  SamplingEngine local(graph, Config(DiffusionModel::kIC, 55));
  RRCollection local_rr(graph.num_nodes());
  local.SampleInto(&local_rr, 400);

  SampleBackendSpec spec = Procs(2);
  spec.graph_source = "format=binary;path=" + path;
  SamplingEngine procs(graph, Config(DiffusionModel::kIC, 55, spec));
  RRCollection procs_rr(graph.num_nodes());
  procs.SampleInto(&procs_rr, 400);
  ASSERT_TRUE(procs.status().ok()) << procs.status().ToString();
  ExpectEqualCollections(local_rr, procs_rr);
  std::remove(path.c_str());
}

TEST(GraphSpecTest, EncodeParseRoundTrip) {
  GraphSpec spec;
  spec.format = "edgelist";
  spec.path = "/data/nethept.txt";
  spec.undirected = true;
  spec.weights = "uniform:0.1";
  spec.weight_seed = 99;
  std::string encoded;
  ASSERT_TRUE(EncodeGraphSpec(spec, &encoded).ok());
  GraphSpec parsed;
  ASSERT_TRUE(ParseGraphSpec(encoded, &parsed).ok());
  EXPECT_EQ(parsed.format, spec.format);
  EXPECT_EQ(parsed.path, spec.path);
  EXPECT_EQ(parsed.undirected, spec.undirected);
  EXPECT_EQ(parsed.weights, spec.weights);
  EXPECT_EQ(parsed.weight_seed, spec.weight_seed);

  spec.path = "bad;path";
  EXPECT_FALSE(EncodeGraphSpec(spec, &encoded).ok());
  EXPECT_FALSE(ParseGraphSpec("no-equals-here", &parsed).ok());
  EXPECT_FALSE(ParseGraphSpec("format=edgelist", &parsed).ok());  // no path
}

TEST(GraphContentHashTest, SensitiveToWeightsOrderAndDirection) {
  const auto build = [](float p01, float p12, bool extra) {
    GraphBuilder b;
    b.AddEdge(0, 1, p01);
    b.AddEdge(1, 2, p12);
    if (extra) b.AddEdge(2, 0, 0.5f);
    Graph g;
    EXPECT_TRUE(b.Build(&g).ok());
    return g;
  };
  const Graph base = build(0.3f, 0.7f, false);
  EXPECT_EQ(base.ContentHash(), build(0.3f, 0.7f, false).ContentHash());
  EXPECT_NE(base.ContentHash(), build(0.31f, 0.7f, false).ContentHash());
  EXPECT_NE(base.ContentHash(), build(0.7f, 0.3f, false).ContentHash());
  EXPECT_NE(base.ContentHash(), build(0.3f, 0.7f, true).ContentHash());
}

}  // namespace
}  // namespace timpp
