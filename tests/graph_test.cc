// Unit tests for graph/graph.h and graph/graph_builder.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder;
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilderTest, NodeCountFromMaxEndpoint) {
  GraphBuilder builder;
  builder.AddEdge(2, 7, 0.5f);
  EXPECT_EQ(builder.num_nodes(), 8u);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, ReserveNodesCreatesIsolatedNodes) {
  GraphBuilder builder;
  builder.ReserveNodes(5);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_EQ(g.num_nodes(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.OutDegree(v), 0u);
    EXPECT_EQ(g.InDegree(v), 0u);
  }
}

TEST(GraphBuilderTest, ReserveNodesNeverShrinks) {
  GraphBuilder builder;
  builder.AddEdge(0, 9, 1.0f);
  builder.ReserveNodes(3);
  EXPECT_EQ(builder.num_nodes(), 10u);
}

TEST(GraphTest, OutAndInArcsAreConsistent) {
  Graph g = testing::MakeGraph(4, {{0, 1, 0.1f},
                                   {0, 2, 0.2f},
                                   {1, 2, 0.3f},
                                   {2, 3, 0.4f},
                                   {3, 0, 0.5f}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);

  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);

  // Every out-arc must appear as the matching in-arc.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const Arc& a : g.OutArcs(u)) {
      bool found = false;
      for (const Arc& b : g.InArcs(a.node)) {
        if (b.node == u && b.prob == a.prob) found = true;
      }
      EXPECT_TRUE(found) << "arc " << u << "->" << a.node
                         << " missing from transpose";
    }
  }
}

TEST(GraphTest, DegreesSumToEdgeCount) {
  Graph g = testing::MakeTwoCommunities(0.5f);
  uint64_t out_sum = 0, in_sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out_sum += g.OutDegree(v);
    in_sum += g.InDegree(v);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST(GraphTest, ParallelEdgesAreKept) {
  Graph g = testing::MakeGraph(2, {{0, 1, 0.5f}, {0, 1, 0.25f}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
}

TEST(GraphTest, InProbSum) {
  Graph g = testing::MakeGraph(3, {{0, 2, 0.25f}, {1, 2, 0.5f}});
  EXPECT_NEAR(g.InProbSum(2), 0.75, 1e-6);
  EXPECT_DOUBLE_EQ(g.InProbSum(0), 0.0);
}

TEST(GraphTest, MemoryBytesGrowsWithSize) {
  Graph small = testing::MakeChain(10, 0.5f);
  Graph large = testing::MakeChain(1000, 0.5f);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(small.MemoryBytes(), 0u);
}

TEST(GraphTest, MemoryBytesChargesRunMetadata) {
  // The Figure 12 memory experiment must see the prob-run arrays: the
  // accounting must cover at least the raw CSR payload plus one EdgeIndex
  // per run and per-node run offsets in both directions.
  Graph g = testing::MakeChain(100, 0.5f);
  const size_t csr_payload =
      2 * 101 * sizeof(EdgeIndex) + 2 * g.num_edges() * sizeof(Arc);
  const size_t run_payload =
      (2 * 101 + g.num_in_runs() + g.num_out_runs()) * sizeof(EdgeIndex) +
      (g.num_in_runs() + g.num_out_runs()) * sizeof(double);
  EXPECT_GE(g.MemoryBytes(), csr_payload + run_payload);
}

TEST(GraphTest, ConstantProbabilityListsAreSingleRuns) {
  // Every in-arc of a node shares one probability (the weighted-cascade
  // shape) -> exactly one run spanning the whole list.
  Graph g = testing::MakeGraph(
      4, {{0, 3, 0.25f}, {1, 3, 0.25f}, {2, 3, 0.25f}, {0, 1, 0.5f}});
  ASSERT_EQ(g.InDegree(3), 3u);
  const auto runs = g.InRunEnds(3);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], 3u);
  EXPECT_EQ(g.InRunEnds(1).size(), 1u);
  EXPECT_EQ(g.InRunEnds(0).size(), 0u);  // no in-arcs, no runs
}

TEST(GraphTest, MixedProbabilitiesSplitIntoMaximalRuns) {
  // In-arc list of node 5 in insertion order: probs .1 .1 .3 .3 .3 .2 ->
  // runs of length 2, 3, 1 (local ends 2, 5, 6).
  Graph g = testing::MakeGraph(6, {{0, 5, 0.1f},
                                   {1, 5, 0.1f},
                                   {2, 5, 0.3f},
                                   {3, 5, 0.3f},
                                   {4, 5, 0.3f},
                                   {0, 5, 0.2f}});
  const auto runs = g.InRunEnds(5);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], 2u);
  EXPECT_EQ(runs[1], 5u);
  EXPECT_EQ(runs[2], 6u);
  // Run probabilities are read off the first arc of each run.
  const auto arcs = g.InArcs(5);
  EXPECT_FLOAT_EQ(arcs[0].prob, 0.1f);
  EXPECT_FLOAT_EQ(arcs[2].prob, 0.3f);
  EXPECT_FLOAT_EQ(arcs[5].prob, 0.2f);
}

TEST(GraphTest, AvgRunLengthReflectsRunStructure) {
  // Chain with one probability: every non-source node has a single
  // length-1 in-run -> average length 1. Star into node 0 with equal
  // probs: node 0 has one run of length n-1.
  Graph star = [] {
    std::vector<RawEdge> edges;
    for (NodeId v = 1; v < 9; ++v) edges.push_back({v, 0, 0.125f});
    return testing::MakeGraph(9, edges);
  }();
  EXPECT_DOUBLE_EQ(star.AvgInRunLength(), 8.0);
  EXPECT_GE(star.AvgInRunLength(), kSkipRunLengthThreshold);
  Graph chain = testing::MakeChain(10, 0.5f);
  EXPECT_DOUBLE_EQ(chain.AvgInRunLength(), 1.0);
  Graph empty;
  EXPECT_DOUBLE_EQ(empty.AvgInRunLength(), 0.0);
  EXPECT_DOUBLE_EQ(empty.AvgOutRunLength(), 0.0);
}

TEST(GraphBuilderTest, RejectsProbabilityAboveOne) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 1.5f);
  Graph g;
  Status s = builder.Build(&g);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST(GraphBuilderTest, RejectsNegativeProbability) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, -0.1f);
  Graph g;
  EXPECT_TRUE(builder.Build(&g).IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsNonFiniteProbability) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, std::numeric_limits<float>::quiet_NaN());
  Graph g;
  EXPECT_TRUE(builder.Build(&g).IsInvalidArgument());
  GraphBuilder builder2;
  builder2.AddEdge(0, 1, std::numeric_limits<float>::infinity());
  EXPECT_TRUE(builder2.Build(&g).IsInvalidArgument());
}

TEST(GraphBuilderTest, UndirectedEdgeAddsBothArcs) {
  GraphBuilder builder;
  builder.AddUndirectedEdge(0, 1, 0.5f);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
}

TEST(GraphBuilderTest, DeduplicateRemovesExactPairs) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 0.5f);
  builder.AddEdge(0, 1, 0.9f);  // duplicate pair, different prob
  builder.AddEdge(1, 0, 0.5f);  // reverse direction is distinct
  builder.DeduplicateEdges();
  EXPECT_EQ(builder.num_edges(), 2u);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  // First occurrence wins.
  EXPECT_FLOAT_EQ(g.OutArcs(0)[0].prob, 0.5f);
}

TEST(GraphBuilderTest, RemoveSelfLoops) {
  GraphBuilder builder;
  builder.AddEdge(0, 0, 1.0f);
  builder.AddEdge(0, 1, 1.0f);
  builder.AddEdge(1, 1, 0.5f);
  builder.RemoveSelfLoops();
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(GraphBuilderTest, BuilderIsReusableAfterBuild) {
  GraphBuilder builder;
  builder.AddEdge(0, 1, 1.0f);
  Graph g1;
  ASSERT_TRUE(builder.Build(&g1).ok());
  builder.AddEdge(1, 2, 1.0f);
  Graph g2;
  ASSERT_TRUE(builder.Build(&g2).ok());
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g2.num_edges(), 2u);
  EXPECT_EQ(g2.num_nodes(), 3u);
}

TEST(GraphTest, ArcOrderFollowsInsertionWithinSource) {
  Graph g = testing::MakeGraph(4, {{0, 3, 0.1f}, {0, 1, 0.2f}, {0, 2, 0.3f}});
  auto arcs = g.OutArcs(0);
  ASSERT_EQ(arcs.size(), 3u);
  EXPECT_EQ(arcs[0].node, 3u);
  EXPECT_EQ(arcs[1].node, 1u);
  EXPECT_EQ(arcs[2].node, 2u);
}

}  // namespace
}  // namespace timpp
