// Tests for core/imm.h — the IMM extension (martingale-based successor of
// TIM+ by the same authors).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/imm.h"
#include "core/tim.h"
#include "diffusion/exact_spread.h"
#include "diffusion/spread_estimator.h"
#include "gen/dataset_proxies.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeOutStar;
using testing::MakeTwoCommunities;

ImmOptions SmallOptions(int k, DiffusionModel model = DiffusionModel::kIC) {
  ImmOptions options;
  options.k = k;
  options.epsilon = 0.3;
  options.model = model;
  options.seed = 31;
  return options;
}

TEST(ImmValidationTest, RejectsBadInputs) {
  Graph g = MakeTwoCommunities(0.3f);
  ImmResult result;
  EXPECT_TRUE(RunImm(g, SmallOptions(0), &result).IsInvalidArgument());
  EXPECT_TRUE(RunImm(g, SmallOptions(100), &result).IsInvalidArgument());
  ImmOptions options = SmallOptions(1);
  options.epsilon = 0.0;
  EXPECT_TRUE(RunImm(g, options, &result).IsInvalidArgument());
  options = SmallOptions(1);
  options.model = DiffusionModel::kTriggering;
  EXPECT_TRUE(RunImm(g, options, &result).IsInvalidArgument());
}

TEST(ImmTest, FindsTheHubOnAStar) {
  Graph g = MakeOutStar(16, 0.7f);
  ImmResult result;
  ASSERT_TRUE(RunImm(g, SmallOptions(1), &result).ok());
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(ImmTest, MeetsApproximationGuaranteeIC) {
  Graph g = MakeTwoCommunities(0.35f);
  for (int k : {1, 2, 3}) {
    double opt = 0;
    std::vector<NodeId> opt_seeds;
    ASSERT_TRUE(BruteForceOptimalIC(g, k, &opt_seeds, &opt).ok());

    ImmResult result;
    ASSERT_TRUE(RunImm(g, SmallOptions(k), &result).ok());
    double spread = 0;
    ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &spread).ok());
    EXPECT_GE(spread, (1.0 - 1.0 / std::exp(1.0) - 0.3) * opt)
        << "k=" << k << " spread=" << spread << " opt=" << opt;
  }
}

TEST(ImmTest, MeetsApproximationGuaranteeLT) {
  Graph g = testing::MakeGraph(6, {{0, 1, 0.8f},
                                   {1, 2, 0.8f},
                                   {0, 3, 0.4f},
                                   {3, 4, 0.9f},
                                   {4, 5, 0.9f},
                                   {2, 5, 0.1f}});
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalLT(g, 2, &opt_seeds, &opt).ok());
  ImmResult result;
  ASSERT_TRUE(RunImm(g, SmallOptions(2, DiffusionModel::kLT), &result).ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadLT(g, result.seeds, &spread).ok());
  EXPECT_GE(spread, (1.0 - 1.0 / std::exp(1.0) - 0.3) * opt);
}

TEST(ImmTest, DeterministicGivenSeed) {
  Graph g = MakeTwoCommunities(0.35f);
  ImmResult a, b;
  ASSERT_TRUE(RunImm(g, SmallOptions(3), &a).ok());
  ASSERT_TRUE(RunImm(g, SmallOptions(3), &b).ok());
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.stats.theta, b.stats.theta);
  EXPECT_DOUBLE_EQ(a.stats.lb, b.stats.lb);
}

TEST(ImmTest, StatsAreInternallyConsistent) {
  Graph g = MakeTwoCommunities(0.35f);
  ImmResult result;
  ASSERT_TRUE(RunImm(g, SmallOptions(2), &result).ok());
  const ImmStats& s = result.stats;
  EXPECT_GE(s.lb, 1.0);
  EXPECT_LE(s.lb, g.num_nodes());
  EXPECT_GT(s.lambda_prime, 0.0);
  EXPECT_GT(s.lambda_star, 0.0);
  EXPECT_EQ(s.theta, static_cast<uint64_t>(std::ceil(s.lambda_star / s.lb)));
  EXPECT_GE(s.sampling_iterations, 1);
  EXPECT_GT(s.rr_sets_sampling, 0u);
  EXPECT_GT(s.estimated_spread, 0.0);
  EXPECT_GT(s.rr_memory_bytes, 0u);
  std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), result.seeds.size());
}

TEST(ImmTest, LowerBoundIsBelowOpt) {
  Graph g = MakeTwoCommunities(0.35f);
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 2, &opt_seeds, &opt).ok());
  int ok_count = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    ImmOptions options = SmallOptions(2);
    options.seed = 500 + t;
    ImmResult result;
    ASSERT_TRUE(RunImm(g, options, &result).ok());
    if (result.stats.lb <= opt * 1.05) ++ok_count;
  }
  EXPECT_GE(ok_count, trials - 1);
}

TEST(ImmTest, ReuseVariantAlsoProducesGoodSeeds) {
  Graph g = MakeTwoCommunities(0.35f);
  ImmOptions options = SmallOptions(2);
  options.reuse_samples = true;
  ImmResult result;
  ASSERT_TRUE(RunImm(g, options, &result).ok());
  double opt = 0, spread = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 2, &opt_seeds, &opt).ok());
  ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &spread).ok());
  EXPECT_GE(spread, 0.8 * opt);
}

TEST(ImmTest, QualityMatchesTimPlusOnProxy) {
  Graph g;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.02,
                                WeightScheme::kWeightedCascadeIC, 3, &g)
                  .ok());
  const int k = 10;

  ImmResult imm;
  ASSERT_TRUE(RunImm(g, SmallOptions(k), &imm).ok());

  TimOptions tim_options;
  tim_options.k = k;
  tim_options.epsilon = 0.3;
  tim_options.seed = 31;
  TimSolver solver(g);
  TimResult tim;
  ASSERT_TRUE(solver.Run(tim_options, &tim).ok());

  SpreadEstimatorOptions est;
  est.num_samples = 4000;
  SpreadEstimator estimator(g, est);
  const double s_imm = estimator.Estimate(imm.seeds, 9);
  const double s_tim = estimator.Estimate(tim.seeds, 9);
  EXPECT_NEAR(s_imm, s_tim, 0.1 * std::max(s_imm, s_tim));
}

TEST(ImmTest, TimeCriticalVariantRespectsHorizon) {
  // Same structure as the TIM horizon test: hub must win under a 1-round
  // deadline.
  std::vector<RawEdge> edges;
  for (NodeId v = 0; v + 1 < 8; ++v) edges.push_back({v, v + 1, 1.0f});
  for (NodeId s = 9; s <= 13; ++s) edges.push_back({8, s, 1.0f});
  Graph g = testing::MakeGraph(14, edges);

  ImmOptions options = SmallOptions(1);
  options.max_hops = 1;
  ImmResult result;
  ASSERT_TRUE(RunImm(g, options, &result).ok());
  EXPECT_EQ(result.seeds[0], 8u);
}

}  // namespace
}  // namespace timpp
