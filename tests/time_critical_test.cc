// Tests for the time-critical (bounded-horizon) extension: max_hops in the
// simulators, the RR sampler, the spread estimator and TIM itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/tim.h"
#include "diffusion/ic_simulator.h"
#include "diffusion/lt_simulator.h"
#include "diffusion/spread_estimator.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;
using testing::MakeChain;
using testing::MakeGraph;

TEST(TimeCriticalSimulatorTest, IcChainStopsAtHorizon) {
  Graph g = MakeChain(10, 1.0f);  // deterministic propagation
  IcSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(sim.Simulate(seeds, rng, 0), 10u);   // unlimited
  EXPECT_EQ(sim.Simulate(seeds, rng, 1), 2u);    // seed + 1 round
  EXPECT_EQ(sim.Simulate(seeds, rng, 3), 4u);
  EXPECT_EQ(sim.Simulate(seeds, rng, 99), 10u);  // horizon beyond diameter
}

TEST(TimeCriticalSimulatorTest, LtChainStopsAtHorizon) {
  Graph g = MakeChain(10, 1.0f);
  LtSimulator sim(g);
  Rng rng(2);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(sim.Simulate(seeds, rng, 0), 10u);
  EXPECT_EQ(sim.Simulate(seeds, rng, 2), 3u);
}

TEST(TimeCriticalSimulatorTest, MultiSourceRoundsCountFromAllSeeds) {
  // Seeds 0 and 5 on a p=1 chain: after 1 round, {0,1,5,6} are active.
  Graph g = MakeChain(10, 1.0f);
  IcSimulator sim(g);
  Rng rng(3);
  std::vector<NodeId> seeds = {0, 5};
  EXPECT_EQ(sim.Simulate(seeds, rng, 1), 4u);
}

TEST(TimeCriticalSimulatorTest, BoundedMeanMatchesClosedForm) {
  // E[I_2({0})] on a p-chain = 1 + p + p².
  const double p = 0.5;
  Graph g = MakeChain(8, 0.5f);
  SpreadEstimatorOptions options;
  options.num_samples = 200000;
  options.max_hops = 2;
  SpreadEstimator estimator(g, options);
  ExpectClose(1 + p + p * p, estimator.Estimate(std::vector<NodeId>{0}, 7),
              0.01);
}

TEST(TimeCriticalSamplerTest, DepthBoundedRRSetOnChain) {
  Graph g = MakeChain(10, 1.0f);
  RRSampler sampler(g, DiffusionModel::kIC, nullptr, /*max_hops=*/2);
  Rng rng(4);
  std::vector<NodeId> rr;
  sampler.SampleForRoot(9, rng, &rr);
  std::sort(rr.begin(), rr.end());
  EXPECT_EQ(rr, (std::vector<NodeId>{7, 8, 9}))
      << "depth-2 RR set must stop two hops upstream";
}

TEST(TimeCriticalSamplerTest, LtWalkBounded) {
  Graph g = MakeChain(10, 1.0f);
  RRSampler sampler(g, DiffusionModel::kLT, nullptr, /*max_hops=*/3);
  Rng rng(5);
  std::vector<NodeId> rr;
  sampler.SampleForRoot(9, rng, &rr);
  EXPECT_EQ(rr.size(), 4u);  // root + 3 steps
}

TEST(TimeCriticalSamplerTest, MembershipMatchesBoundedActivation) {
  // Depth-d Lemma 2: P[u ∈ RR_d(v)] = P[{u} activates v within d rounds].
  // On a p-chain, P[0 activates 3 within 2 rounds] = 0 (3 hops away), and
  // P[1 activates 3 within 2] = p².
  const float p = 0.7f;
  Graph g = MakeChain(4, p);
  RRSampler sampler(g, DiffusionModel::kIC, nullptr, /*max_hops=*/2);
  Rng rng(6);
  std::vector<NodeId> rr;
  const int r = 100000;
  int hits0 = 0, hits1 = 0;
  for (int i = 0; i < r; ++i) {
    sampler.SampleForRoot(3, rng, &rr);
    hits0 += std::find(rr.begin(), rr.end(), 0u) != rr.end();
    hits1 += std::find(rr.begin(), rr.end(), 1u) != rr.end();
  }
  EXPECT_EQ(hits0, 0);
  ExpectClose(p * p, hits1 / static_cast<double>(r), 0.03, 0.01);
}

TEST(TimeCriticalTimTest, HorizonChangesTheOptimalSeed) {
  // A long p=1 chain (head spread = 8 unlimited) vs a hub with 5 spokes
  // (spread 6). Unlimited TIM must take the chain head; with a 1-round
  // deadline the chain head only reaches 2 nodes and the hub wins.
  std::vector<RawEdge> edges;
  for (NodeId v = 0; v + 1 < 8; ++v) edges.push_back({v, v + 1, 1.0f});
  for (NodeId s = 9; s <= 13; ++s) edges.push_back({8, s, 1.0f});
  Graph g = testing::MakeGraph(14, edges);

  TimOptions options;
  options.k = 1;
  options.epsilon = 0.2;
  options.seed = 99;
  TimSolver solver(g);

  TimResult unlimited;
  ASSERT_TRUE(solver.Run(options, &unlimited).ok());
  EXPECT_EQ(unlimited.seeds[0], 0u);

  options.max_hops = 1;
  TimResult deadline;
  ASSERT_TRUE(solver.Run(options, &deadline).ok());
  EXPECT_EQ(deadline.seeds[0], 8u)
      << "with a 1-round deadline the 5-spoke hub beats the chain head";
}

TEST(TimeCriticalTimTest, BoundedSpreadEstimateIsConsistent) {
  Graph g = testing::MakeTwoCommunities(0.4f);
  TimOptions options;
  options.k = 2;
  options.epsilon = 0.3;
  options.max_hops = 2;
  options.seed = 5;
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());

  SpreadEstimatorOptions est;
  est.num_samples = 200000;
  est.max_hops = 2;
  SpreadEstimator estimator(g, est);
  const double bounded_spread = estimator.Estimate(result.seeds, 8);
  EXPECT_NEAR(result.stats.estimated_spread, bounded_spread,
              0.1 * bounded_spread + 0.2)
      << "n*F_R(S) over depth-bounded RR sets must estimate the bounded "
         "spread";
}

}  // namespace
}  // namespace timpp
