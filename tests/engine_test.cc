// Tests of the engine layer: the SamplingEngine's deterministic merge
// contract (bit-identical output for any thread count), its batch and
// cost-threshold primitives, the ThreadPool underneath, and the
// InfluenceSolver registry round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/ris.h"
#include "core/imm.h"
#include "core/tim.h"
#include "engine/sampling_engine.h"
#include "engine/solver_registry.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace timpp {
namespace {

using testing::IcSampling;
using testing::MakeTwoCommunities;

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.ParallelRun(100, [&](unsigned i) { hits[i].fetch_add(1); });
  for (unsigned i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelRun(8, [&](unsigned i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 28);
  }
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  int calls = 0;
  pool.ParallelRun(5, [&](unsigned) { ++calls; });
  EXPECT_EQ(calls, 5);
}

// -------------------------------------------------- SamplingEngine basics --

void ExpectSameCollections(const RRCollection& a, const RRCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  EXPECT_EQ(a.TotalWidth(), b.TotalWidth());
  for (size_t id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.Set(static_cast<RRSetId>(id));
    const auto sb = b.Set(static_cast<RRSetId>(id));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j], sb[j]) << "set " << id << " pos " << j;
    }
    EXPECT_EQ(a.Width(static_cast<RRSetId>(id)),
              b.Width(static_cast<RRSetId>(id)))
        << "set " << id;
  }
}

TEST(SamplingEngineTest, SampleIntoIsThreadCountInvariant) {
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection reference(g.num_nodes());
  SamplingEngine sequential(g, IcSampling(42, 1));
  const SampleBatch ref_batch = sequential.SampleInto(&reference, 5000);
  EXPECT_EQ(ref_batch.sets_added, 5000u);

  for (unsigned threads : {2u, 8u}) {
    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, IcSampling(42, threads));
    const SampleBatch batch = engine.SampleInto(&rr, 5000);
    EXPECT_EQ(batch.sets_added, 5000u);
    EXPECT_EQ(batch.edges_examined, ref_batch.edges_examined)
        << "threads=" << threads;
    EXPECT_EQ(batch.traversal_cost, ref_batch.traversal_cost)
        << "threads=" << threads;
    ExpectSameCollections(reference, rr);
  }
}

TEST(SamplingEngineTest, SkipModeIsThreadCountInvariant) {
  // The determinism contract is mode-independent: skip-mode traversal
  // draws a different RNG stream per set, but a set is still a pure
  // function of (seed, index), so shard merges stay bit-identical across
  // thread counts. Weighted-cascade graph so skip sampling really
  // engages (whole-list runs).
  Graph g = testing::MakeWcPowerLaw(300, 5, 3);

  SamplingConfig config = IcSampling(42, 1);
  config.sampler_mode = SamplerMode::kSkip;
  RRCollection reference(g.num_nodes());
  SamplingEngine sequential(g, config);
  sequential.SampleInto(&reference, 5000);

  for (unsigned threads : {2u, 8u}) {
    config.num_threads = threads;
    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, config);
    engine.SampleInto(&rr, 5000);
    ExpectSameCollections(reference, rr);
  }
}

TEST(SamplingEngineTest, SkipAndPerArcAgreeStatistically) {
  // Same engine seed, different modes: individual sets differ (different
  // RNG consumption) but the mean set size — an unbiased estimator of
  // E[I(v)]·n/… — must agree within MC error.
  Graph g = testing::MakeWcPowerLaw(300, 5, 3);

  double mean[2] = {0, 0};
  const SamplerMode modes[2] = {SamplerMode::kPerArc, SamplerMode::kSkip};
  const uint64_t count = 20000;
  for (int m = 0; m < 2; ++m) {
    SamplingConfig config = IcSampling(99, 1);
    config.sampler_mode = modes[m];
    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, config);
    engine.SampleInto(&rr, count);
    mean[m] = static_cast<double>(rr.total_nodes()) /
              static_cast<double>(rr.num_sets());
  }
  testing::ExpectClose(mean[0], mean[1], 0.05);
}

TEST(SamplingEngineTest, BatchSplitDoesNotChangeTheStream) {
  // Sampling 400 then 600 sets must produce the same collection as one
  // call of 1000: batches are windows onto one global index stream.
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection one_call(g.num_nodes());
  SamplingEngine e1(g, IcSampling(7, 2));
  e1.SampleInto(&one_call, 1000);

  RRCollection two_calls(g.num_nodes());
  SamplingEngine e2(g, IcSampling(7, 2));
  e2.SampleInto(&two_calls, 400);
  e2.SampleInto(&two_calls, 600);

  ExpectSameCollections(one_call, two_calls);
  EXPECT_EQ(e1.sets_sampled(), e2.sets_sampled());
}

TEST(SamplingEngineTest, SampleUntilCostIsThreadCountInvariant) {
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection reference(g.num_nodes());
  SamplingEngine sequential(g, IcSampling(11, 1));
  const SampleBatch ref_batch =
      sequential.SampleUntilCost(&reference, /*cost_threshold=*/20000.0);
  EXPECT_GE(ref_batch.traversal_cost, 20000u);

  for (unsigned threads : {2u, 8u}) {
    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, IcSampling(11, threads));
    const SampleBatch batch = engine.SampleUntilCost(&rr, 20000.0);
    EXPECT_EQ(batch.sets_added, ref_batch.sets_added)
        << "threads=" << threads;
    EXPECT_EQ(batch.traversal_cost, ref_batch.traversal_cost)
        << "threads=" << threads;
    ExpectSameCollections(reference, rr);
  }
}

TEST(SamplingEngineTest, SampleUntilCostHonorsSetCap) {
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection rr(g.num_nodes());
  SamplingEngine engine(g, IcSampling(3, 2));
  const SampleBatch batch =
      engine.SampleUntilCost(&rr, /*cost_threshold=*/1e12, /*max_sets=*/123);
  EXPECT_TRUE(batch.hit_set_cap);
  EXPECT_EQ(batch.sets_added, 123u);
  EXPECT_EQ(rr.num_sets(), 123u);
}

TEST(SamplingEngineTest, MemoryBudgetStopsSampling) {
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection rr(g.num_nodes());
  // Fits the first fixed-size batch but nowhere near the full request, so
  // sampling stops at a batch boundary with the flag set.
  rr.set_memory_budget(64 * 1024);
  SamplingEngine engine(g, IcSampling(5, 2));
  const SampleBatch batch = engine.SampleInto(&rr, 1 << 20);
  EXPECT_TRUE(batch.hit_memory_budget);
  EXPECT_LT(batch.sets_added, 1u << 20);
  EXPECT_GT(rr.num_sets(), 0u);
}

TEST(SamplingEngineTest, MemoryBudgetStopIsThreadCountInvariant) {
  // The budget check is content-based (DataBytes) and runs at fixed batch
  // boundaries, so the stop point must not depend on thread count even
  // though the sequential and parallel paths allocate differently.
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection reference(g.num_nodes());
  reference.set_memory_budget(200 * 1024);
  SamplingEngine sequential(g, IcSampling(21, 1));
  const SampleBatch ref_batch = sequential.SampleInto(&reference, 1 << 20);
  ASSERT_TRUE(ref_batch.hit_memory_budget);

  for (unsigned threads : {2u, 8u}) {
    RRCollection rr(g.num_nodes());
    rr.set_memory_budget(200 * 1024);
    SamplingEngine engine(g, IcSampling(21, threads));
    const SampleBatch batch = engine.SampleInto(&rr, 1 << 20);
    EXPECT_TRUE(batch.hit_memory_budget) << "threads=" << threads;
    EXPECT_EQ(ref_batch.sets_added, batch.sets_added)
        << "threads=" << threads;
    ExpectSameCollections(reference, rr);
  }
}

TEST(SamplingEngineTest, PerSetEdgesMatchAggregateAcrossThreads) {
  // The per-set edge counts (consumed by the serving layer's shared cache
  // for replay-exact accounting) must sum to the aggregate and be
  // identical however many workers chunked the fill.
  Graph g = MakeTwoCommunities(0.35f);
  std::vector<uint64_t> reference_edges;
  RRCollection reference(g.num_nodes());
  SamplingEngine sequential(g, IcSampling(42, 1));
  const SampleBatch ref_batch =
      sequential.SampleInto(&reference, 5000, &reference_edges);
  ASSERT_EQ(reference_edges.size(), 5000u);
  uint64_t sum = 0;
  for (uint64_t e : reference_edges) sum += e;
  EXPECT_EQ(sum, ref_batch.edges_examined);

  for (unsigned threads : {2u, 8u}) {
    std::vector<uint64_t> edges;
    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, IcSampling(42, threads));
    engine.SampleInto(&rr, 5000, &edges);
    EXPECT_EQ(reference_edges, edges) << "threads=" << threads;
  }
}

TEST(SamplingEngineTest, ChunkedFillHandlesAwkwardCounts) {
  // Counts around the chunk-claim granularity (1, chunk-1, chunk,
  // chunk+1, several chunks + remainder) must all merge back in index
  // order. Guards the dynamic work-splitting bookkeeping.
  Graph g = MakeTwoCommunities(0.35f);
  for (uint64_t count : {1u, 63u, 64u, 65u, 1000u}) {
    RRCollection reference(g.num_nodes());
    SamplingEngine sequential(g, IcSampling(17, 1));
    sequential.SampleInto(&reference, count);

    RRCollection rr(g.num_nodes());
    SamplingEngine engine(g, IcSampling(17, 8));
    engine.SampleInto(&rr, count);
    ExpectSameCollections(reference, rr);
  }
}

TEST(RRCollectionTest, AppendRangeMatchesPerSetAdd) {
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection source(g.num_nodes());
  SamplingEngine engine(g, IcSampling(23, 1));
  engine.SampleInto(&source, 100);

  RRCollection ranged(g.num_nodes());
  ranged.AppendRange(source, 10, 40);
  RRCollection manual(g.num_nodes());
  for (size_t id = 10; id < 50; ++id) {
    manual.Add(source.Set(static_cast<RRSetId>(id)),
               source.Width(static_cast<RRSetId>(id)));
  }
  ExpectSameCollections(manual, ranged);

  // Clamped past the end and empty ranges are no-ops past the data.
  RRCollection clamped(g.num_nodes());
  clamped.AppendRange(source, 95, 100);
  EXPECT_EQ(clamped.num_sets(), 5u);
  clamped.AppendRange(source, 500, 10);
  EXPECT_EQ(clamped.num_sets(), 5u);
}

TEST(RRCollectionTest, AppendShardMatchesPerSetAdd) {
  Graph g = MakeTwoCommunities(0.35f);
  RRCollection shard(g.num_nodes());
  SamplingEngine engine(g, IcSampling(17, 1));
  engine.SampleInto(&shard, 50);

  RRCollection bulk(g.num_nodes());
  bulk.AppendShard(shard);
  RRCollection manual(g.num_nodes());
  for (size_t id = 0; id < shard.num_sets(); ++id) {
    manual.Add(shard.Set(static_cast<RRSetId>(id)),
               shard.Width(static_cast<RRSetId>(id)));
  }
  ExpectSameCollections(manual, bulk);
}

// --------------------------------------- solver thread-count determinism --

TEST(SolverDeterminismTest, TimAndTimPlusInvariantAcrossThreads) {
  Graph g = MakeTwoCommunities(0.35f);
  for (bool refine : {false, true}) {
    TimOptions options;
    options.k = 3;
    options.epsilon = 0.3;
    options.seed = 99;
    options.use_refinement = refine;

    TimSolver solver(g);
    options.num_threads = 1;
    TimResult reference;
    ASSERT_TRUE(solver.Run(options, &reference).ok());

    for (unsigned threads : {2u, 8u}) {
      options.num_threads = threads;
      TimResult result;
      ASSERT_TRUE(solver.Run(options, &result).ok());
      EXPECT_EQ(reference.seeds, result.seeds)
          << (refine ? "tim+" : "tim") << " threads=" << threads;
      EXPECT_DOUBLE_EQ(reference.stats.kpt_star, result.stats.kpt_star);
      EXPECT_DOUBLE_EQ(reference.stats.kpt_plus, result.stats.kpt_plus);
      EXPECT_EQ(reference.stats.theta, result.stats.theta);
      EXPECT_DOUBLE_EQ(reference.stats.estimated_spread,
                       result.stats.estimated_spread);
      EXPECT_EQ(reference.stats.edges_examined, result.stats.edges_examined);
    }
  }
}

TEST(SolverDeterminismTest, ImmInvariantAcrossThreads) {
  Graph g = MakeTwoCommunities(0.35f);
  ImmOptions options;
  options.k = 3;
  options.epsilon = 0.3;
  options.seed = 77;

  options.num_threads = 1;
  ImmResult reference;
  ASSERT_TRUE(RunImm(g, options, &reference).ok());

  for (unsigned threads : {2u, 8u}) {
    options.num_threads = threads;
    ImmResult result;
    ASSERT_TRUE(RunImm(g, options, &result).ok());
    EXPECT_EQ(reference.seeds, result.seeds) << "threads=" << threads;
    EXPECT_EQ(reference.stats.theta, result.stats.theta);
    EXPECT_DOUBLE_EQ(reference.stats.lb, result.stats.lb);
    EXPECT_EQ(reference.stats.rr_sets_sampling,
              result.stats.rr_sets_sampling);
    EXPECT_DOUBLE_EQ(reference.stats.estimated_spread,
                     result.stats.estimated_spread);
  }
}

TEST(SolverDeterminismTest, RisInvariantAcrossThreads) {
  Graph g = MakeTwoCommunities(0.35f);
  RisOptions options;
  options.epsilon = 0.3;
  options.tau_scale = 0.05;
  options.seed = 55;

  options.num_threads = 1;
  std::vector<NodeId> reference;
  RisStats ref_stats;
  ASSERT_TRUE(RunRis(g, options, 3, &reference, &ref_stats).ok());

  for (unsigned threads : {2u, 8u}) {
    options.num_threads = threads;
    std::vector<NodeId> seeds;
    RisStats stats;
    ASSERT_TRUE(RunRis(g, options, 3, &seeds, &stats).ok());
    EXPECT_EQ(reference, seeds) << "threads=" << threads;
    EXPECT_EQ(ref_stats.rr_sets_generated, stats.rr_sets_generated);
    EXPECT_EQ(ref_stats.cost_examined, stats.cost_examined);
    EXPECT_DOUBLE_EQ(ref_stats.covered_fraction, stats.covered_fraction);
  }
}

TEST(SolverDeterminismTest, SkipModeSeedQualityMatchesPerArc) {
  // Acceptance check for geometric skip sampling: on a weighted-cascade
  // scale-free graph the covered fraction (the solver's own quality
  // estimate of its seeds, Corollary 1) must be statistically
  // indistinguishable between modes, for both TIM+ and IMM. Modes draw
  // different RNG streams, so seeds may differ — quality must not.
  Graph g = testing::MakeWcPowerLaw(400, 6, 123);
  const double n = static_cast<double>(g.num_nodes());

  double tim_spread[2] = {0, 0};
  double imm_spread[2] = {0, 0};
  const SamplerMode modes[2] = {SamplerMode::kPerArc, SamplerMode::kSkip};
  for (int m = 0; m < 2; ++m) {
    TimOptions tim;
    tim.k = 10;
    tim.epsilon = 0.3;
    tim.seed = 2024;
    tim.sampler_mode = modes[m];
    TimResult tim_result;
    ASSERT_TRUE(TimSolver(g).Run(tim, &tim_result).ok());
    tim_spread[m] = tim_result.stats.estimated_spread;

    ImmOptions imm;
    imm.k = 10;
    imm.epsilon = 0.3;
    imm.seed = 2024;
    imm.sampler_mode = modes[m];
    ImmResult imm_result;
    ASSERT_TRUE(RunImm(g, imm, &imm_result).ok());
    imm_spread[m] = imm_result.stats.estimated_spread;
  }
  // Both modes find near-equivalent seed sets; 5% of n absorbs the MC
  // spread-estimation noise at these θ values with margin.
  EXPECT_NEAR(tim_spread[0], tim_spread[1], 0.05 * n)
      << "per-arc=" << tim_spread[0] << " skip=" << tim_spread[1];
  EXPECT_NEAR(imm_spread[0], imm_spread[1], 0.05 * n)
      << "per-arc=" << imm_spread[0] << " skip=" << imm_spread[1];
}

// ---------------------------------------------------------- registry ----

TEST(SolverRegistryTest, UnknownNameIsNotFound) {
  Graph g = MakeTwoCommunities(0.3f);
  std::unique_ptr<InfluenceSolver> solver;
  Status s = SolverRegistry::Global().Create("no-such-algo", g, &solver);
  EXPECT_TRUE(s.IsNotFound());
}

TEST(SolverRegistryTest, DuplicateRegistrationRejected) {
  SolverRegistry registry;
  auto factory = [](const Graph& graph) {
    std::unique_ptr<InfluenceSolver> solver;
    Status s = SolverRegistry::Global().Create("degree", graph, &solver);
    EXPECT_TRUE(s.ok());
    return solver;
  };
  EXPECT_TRUE(registry.Register("x", factory).ok());
  EXPECT_TRUE(registry.Register("x", factory).IsInvalidArgument());
}

TEST(SolverRegistryTest, BuiltinsArePresent) {
  const std::vector<std::string> names = SolverRegistry::Global().Names();
  for (const char* expected :
       {"tim", "tim+", "imm", "ris", "greedy", "celf", "celf++", "irie",
        "simpath", "degree", "single-discount", "degree-discount",
        "pagerank", "kcore", "random"}) {
    EXPECT_TRUE(SolverRegistry::Global().Contains(expected)) << expected;
  }
  EXPECT_GE(names.size(), 15u);
}

TEST(SolverRegistryTest, EveryRegisteredSolverRoundTrips) {
  // Each registered algorithm must run on a small graph through the
  // uniform interface and return k distinct in-range seeds.
  Graph g = MakeTwoCommunities(0.3f);
  SolverOptions options;
  options.k = 2;
  options.epsilon = 0.4;
  options.seed = 13;
  options.num_threads = 2;
  options.mc_samples = 100;      // keep the greedy family fast
  options.ris_tau_scale = 0.05;  // keep RIS small
  options.ris_max_sets = 20000;

  for (const std::string& name : SolverRegistry::Global().Names()) {
    std::unique_ptr<InfluenceSolver> solver;
    ASSERT_TRUE(SolverRegistry::Global().Create(name, g, &solver).ok())
        << name;
    EXPECT_EQ(solver->name(), name);

    SolverResult result;
    Status s = solver->Run(options, &result);
    ASSERT_TRUE(s.ok()) << name << ": " << s.ToString();
    EXPECT_EQ(result.seeds.size(), 2u) << name;
    std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
    EXPECT_EQ(distinct.size(), 2u) << name;
    for (NodeId seed : result.seeds) EXPECT_LT(seed, g.num_nodes()) << name;
    EXPECT_GE(result.seconds_total, 0.0) << name;
  }
}

TEST(SolverRegistryTest, RegistryRunMatchesNativeRun) {
  // The wrapper must be a faithful adapter: same options ⇒ same seeds as
  // calling the native API directly.
  Graph g = MakeTwoCommunities(0.35f);
  SolverOptions options;
  options.k = 2;
  options.epsilon = 0.3;
  options.seed = 21;
  options.num_threads = 2;

  std::unique_ptr<InfluenceSolver> solver;
  ASSERT_TRUE(SolverRegistry::Global().Create("tim+", g, &solver).ok());
  SolverResult via_registry;
  ASSERT_TRUE(solver->Run(options, &via_registry).ok());

  TimOptions tim;
  tim.k = 2;
  tim.epsilon = 0.3;
  tim.seed = 21;
  tim.num_threads = 2;
  TimResult native;
  ASSERT_TRUE(TimSolver(g).Run(tim, &native).ok());

  EXPECT_EQ(native.seeds, via_registry.seeds);
  EXPECT_DOUBLE_EQ(native.stats.estimated_spread,
                   via_registry.estimated_spread);
  EXPECT_EQ(static_cast<double>(native.stats.theta),
            via_registry.Metric("theta"));
}

}  // namespace
}  // namespace timpp
