// Tests for the heuristic baselines IRIE (IC) and SIMPATH (LT).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/irie.h"
#include "baselines/simpath.h"
#include "diffusion/exact_spread.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeGraph;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

// ------------------------------------------------------------------ IRIE --

TEST(IrieValidationTest, RejectsBadInputs) {
  Graph g = MakeChain(4, 0.5f);
  std::vector<NodeId> seeds;
  IrieOptions options;
  EXPECT_TRUE(RunIrie(g, options, 0, &seeds, nullptr).IsInvalidArgument());
  EXPECT_TRUE(RunIrie(g, options, 9, &seeds, nullptr).IsInvalidArgument());
  options.alpha = 1.0;
  EXPECT_TRUE(RunIrie(g, options, 1, &seeds, nullptr).IsInvalidArgument());
  options.alpha = -0.5;
  EXPECT_TRUE(RunIrie(g, options, 1, &seeds, nullptr).IsInvalidArgument());
  Graph empty;
  EXPECT_TRUE(
      RunIrie(empty, IrieOptions{}, 1, &seeds, nullptr).IsInvalidArgument());
}

TEST(IrieTest, FindsTheHubOnAStar) {
  Graph g = MakeOutStar(20, 0.5f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunIrie(g, IrieOptions{}, 1, &seeds, nullptr).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(IrieTest, RankReflectsDownstreamReach) {
  // On a chain the head has the longest downstream run, so rank order
  // should be 0 first.
  Graph g = MakeChain(8, 0.9f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunIrie(g, IrieOptions{}, 1, &seeds, nullptr).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(IrieTest, SecondSeedAvoidsFirstSeedsAudience) {
  // Two disjoint stars: hubs 0 (9 spokes) and 10 (8 spokes). IE damping
  // must push the second pick to the other star's hub rather than a spoke
  // of the first.
  std::vector<RawEdge> edges;
  for (NodeId v = 1; v <= 9; ++v) edges.push_back({0, v, 0.9f});
  for (NodeId v = 11; v <= 18; ++v) edges.push_back({10, v, 0.9f});
  Graph g = testing::MakeGraph(19, edges);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunIrie(g, IrieOptions{}, 2, &seeds, nullptr).ok());
  std::set<NodeId> chosen(seeds.begin(), seeds.end());
  EXPECT_TRUE(chosen.count(0));
  EXPECT_TRUE(chosen.count(10));
}

TEST(IrieTest, DistinctSeedsAndDeterminism) {
  Graph g = MakeTwoCommunities(0.4f);
  std::vector<NodeId> a, b;
  IrieStats stats;
  ASSERT_TRUE(RunIrie(g, IrieOptions{}, 4, &a, &stats).ok());
  ASSERT_TRUE(RunIrie(g, IrieOptions{}, 4, &b, nullptr).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::set<NodeId>(a.begin(), a.end()).size(), 4u);
  EXPECT_GT(stats.rank_sweeps, 0u);
}

TEST(IrieTest, DecentQualityVsBruteForce) {
  Graph g = MakeTwoCommunities(0.35f);
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 2, &opt_seeds, &opt).ok());
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunIrie(g, IrieOptions{}, 2, &seeds, nullptr).ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, seeds, &spread).ok());
  // Heuristic: no guarantee, but on a 10-node graph it should be sane.
  EXPECT_GE(spread, 0.7 * opt);
}

// --------------------------------------------------------------- SIMPATH --

TEST(SimpathValidationTest, RejectsBadInputs) {
  Graph g = MakeChain(4, 0.5f);
  std::vector<NodeId> seeds;
  SimpathOptions options;
  EXPECT_TRUE(RunSimpath(g, options, 0, &seeds, nullptr).IsInvalidArgument());
  EXPECT_TRUE(RunSimpath(g, options, 9, &seeds, nullptr).IsInvalidArgument());
  options.eta = 0.0;
  EXPECT_TRUE(RunSimpath(g, options, 1, &seeds, nullptr).IsInvalidArgument());
  options = SimpathOptions{};
  options.look_ahead = 0;
  EXPECT_TRUE(RunSimpath(g, options, 1, &seeds, nullptr).IsInvalidArgument());
}

TEST(SimpathSpreadTest, ChainClosedForm) {
  // σ({0}) on a weight-w chain of 4 nodes = 1 + w + w² + w³ (single path).
  Graph g = MakeChain(4, 0.5f);
  uint64_t steps = 0;
  double sigma = SimpathSpreadFrom(g, 0, {}, /*eta=*/1e-6, 0, &steps);
  EXPECT_NEAR(sigma, 1 + 0.5 + 0.25 + 0.125, 1e-6);
  EXPECT_GT(steps, 0u);
}

TEST(SimpathSpreadTest, MatchesExactLtSpreadOnDag) {
  // On a DAG, LT spread = Σ_v P[v activated] and each simple path
  // contributes independently (at most one in-edge fires per node), so the
  // path-sum equals the exact LT spread when eta -> 0.
  Graph g = MakeGraph(4, {{0, 1, 0.5f}, {0, 2, 0.3f}, {1, 3, 0.4f},
                          {2, 3, 0.2f}});
  double exact = 0;
  ASSERT_TRUE(ExactSpreadLT(g, std::vector<NodeId>{0}, &exact).ok());
  double sigma = SimpathSpreadFrom(g, 0, {}, 1e-9, 0, nullptr);
  EXPECT_NEAR(sigma, exact, 1e-5);
}

TEST(SimpathSpreadTest, ExclusionRemovesPaths) {
  Graph g = MakeChain(4, 0.5f);
  double with = SimpathSpreadFrom(g, 0, {}, 1e-9, 0, nullptr);
  double without = SimpathSpreadFrom(g, 0, {2}, 1e-9, 0, nullptr);
  EXPECT_NEAR(without, 1 + 0.5, 1e-6);  // path stops before excluded node 2
  EXPECT_LT(without, with);
}

TEST(SimpathSpreadTest, PruningReducesSpreadMonotonically) {
  Graph g = MakeTwoCommunities(0.5f);
  double fine = SimpathSpreadFrom(g, 0, {}, 1e-9, 0, nullptr);
  double coarse = SimpathSpreadFrom(g, 0, {}, 0.2, 0, nullptr);
  EXPECT_LE(coarse, fine + 1e-9);
  EXPECT_GE(coarse, 1.0);
}

TEST(SimpathTest, FindsTheHubOnAStar) {
  Graph g = MakeOutStar(16, 0.4f);
  std::vector<NodeId> seeds;
  SimpathStats stats;
  ASSERT_TRUE(RunSimpath(g, SimpathOptions{}, 1, &seeds, &stats).ok());
  EXPECT_EQ(seeds[0], 0u);
  EXPECT_GT(stats.spread_evaluations, 0u);
}

TEST(SimpathTest, QualityVsBruteForceLT) {
  Graph g = MakeGraph(6, {{0, 1, 0.8f},
                          {1, 2, 0.8f},
                          {0, 3, 0.4f},
                          {3, 4, 0.9f},
                          {4, 5, 0.9f},
                          {2, 5, 0.1f}});
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalLT(g, 2, &opt_seeds, &opt).ok());
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunSimpath(g, SimpathOptions{}, 2, &seeds, nullptr).ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadLT(g, seeds, &spread).ok());
  EXPECT_GE(spread, 0.8 * opt);
}

TEST(SimpathTest, DistinctSeedsAndDeterminism) {
  Graph g = MakeTwoCommunities(0.3f);
  std::vector<NodeId> a, b;
  ASSERT_TRUE(RunSimpath(g, SimpathOptions{}, 3, &a, nullptr).ok());
  ASSERT_TRUE(RunSimpath(g, SimpathOptions{}, 3, &b, nullptr).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::set<NodeId>(a.begin(), a.end()).size(), 3u);
}

TEST(SimpathTest, StepCapBoundsWork) {
  Graph g = MakeTwoCommunities(0.5f);
  SimpathOptions options;
  options.max_path_steps = 50;  // absurdly tight
  std::vector<NodeId> seeds;
  SimpathStats stats;
  ASSERT_TRUE(RunSimpath(g, options, 2, &seeds, &stats).ok());
  EXPECT_EQ(seeds.size(), 2u);  // still returns k seeds, just cruder
}

}  // namespace
}  // namespace timpp
