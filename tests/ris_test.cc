// Tests for baselines/ris.h — Borgs et al.'s threshold-based reverse
// influence sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/ris.h"
#include "diffusion/exact_spread.h"
#include "diffusion/triggering.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeOutStar;
using testing::MakeTwoCommunities;

RisOptions SmallOptions() {
  RisOptions options;
  options.epsilon = 0.3;
  options.ell = 1.0;
  options.tau_scale = 1.0;
  options.seed = 515;
  return options;
}

TEST(RisValidationTest, RejectsBadInputs) {
  Graph g = MakeTwoCommunities(0.3f);
  std::vector<NodeId> seeds;
  RisOptions options = SmallOptions();
  EXPECT_TRUE(RunRis(g, options, 0, &seeds, nullptr).IsInvalidArgument());
  EXPECT_TRUE(RunRis(g, options, 100, &seeds, nullptr).IsInvalidArgument());
  options.epsilon = 0.0;
  EXPECT_TRUE(RunRis(g, options, 1, &seeds, nullptr).IsInvalidArgument());
  options = SmallOptions();
  options.model = DiffusionModel::kTriggering;
  EXPECT_TRUE(RunRis(g, options, 1, &seeds, nullptr).IsInvalidArgument());
}

TEST(RisTest, StopsAtTauAndReportsCost) {
  Graph g = MakeTwoCommunities(0.3f);
  std::vector<NodeId> seeds;
  RisStats stats;
  ASSERT_TRUE(RunRis(g, SmallOptions(), 2, &seeds, &stats).ok());
  EXPECT_EQ(seeds.size(), 2u);
  EXPECT_GT(stats.tau, 0.0);
  EXPECT_GE(static_cast<double>(stats.cost_examined), stats.tau)
      << "sampling must continue until the cost threshold is crossed";
  EXPECT_GT(stats.rr_sets_generated, 0u);
  EXPECT_FALSE(stats.hit_set_cap);
  EXPECT_GT(stats.covered_fraction, 0.0);
}

TEST(RisTest, TauScalesWithKAndEpsilon) {
  Graph g = MakeTwoCommunities(0.3f);
  std::vector<NodeId> seeds;
  RisStats k1, k3, eps_tight;
  ASSERT_TRUE(RunRis(g, SmallOptions(), 1, &seeds, &k1).ok());
  ASSERT_TRUE(RunRis(g, SmallOptions(), 3, &seeds, &k3).ok());
  EXPECT_NEAR(k3.tau, 3.0 * k1.tau, 1e-6);

  RisOptions tight = SmallOptions();
  tight.epsilon = 0.15;  // half of 0.3 -> tau x8 from the ε³ term
  ASSERT_TRUE(RunRis(g, tight, 1, &seeds, &eps_tight).ok());
  EXPECT_NEAR(eps_tight.tau, 8.0 * k1.tau, k1.tau * 1e-6);
}

TEST(RisTest, SetCapStopsEarly) {
  Graph g = MakeTwoCommunities(0.3f);
  RisOptions options = SmallOptions();
  options.max_rr_sets = 10;
  std::vector<NodeId> seeds;
  RisStats stats;
  ASSERT_TRUE(RunRis(g, options, 1, &seeds, &stats).ok());
  EXPECT_TRUE(stats.hit_set_cap);
  EXPECT_EQ(stats.rr_sets_generated, 10u);
}

TEST(RisTest, FindsTheHubOnAStar) {
  Graph g = MakeOutStar(32, 0.8f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunRis(g, SmallOptions(), 1, &seeds, nullptr).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(RisTest, QualityOnTwoCommunities) {
  Graph g = MakeTwoCommunities(0.35f);
  const int k = 2;
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, k, &opt_seeds, &opt).ok());

  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunRis(g, SmallOptions(), k, &seeds, nullptr).ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, seeds, &spread).ok());
  EXPECT_GE(spread, (1.0 - 1.0 / std::exp(1.0) - 0.3) * opt);
}

TEST(RisTest, WorksUnderLTViaTriggeringExtension) {
  // §4.2 notes RIS is IC-only as published; our implementation reuses the
  // generalized RR sampler, mirroring how the paper extended it for the
  // experiments.
  Graph g = testing::MakeGraph(6, {{0, 1, 0.9f},
                                   {1, 2, 0.9f},
                                   {2, 3, 0.9f},
                                   {4, 5, 0.1f},
                                   {0, 4, 0.2f},
                                   {3, 5, 0.3f}});
  RisOptions options = SmallOptions();
  options.model = DiffusionModel::kLT;
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunRis(g, options, 1, &seeds, nullptr).ok());
  EXPECT_EQ(seeds[0], 0u) << "head of the high-weight chain dominates";
}

TEST(RisTest, DeterministicGivenSeed) {
  Graph g = MakeTwoCommunities(0.35f);
  std::vector<NodeId> a, b;
  ASSERT_TRUE(RunRis(g, SmallOptions(), 2, &a, nullptr).ok());
  ASSERT_TRUE(RunRis(g, SmallOptions(), 2, &b, nullptr).ok());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace timpp
