// Tests for baselines/celf_greedy.h — Kempe et al.'s Greedy and the
// CELF/CELF++ lazy-forward variants.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/celf_greedy.h"
#include "diffusion/exact_spread.h"
#include "diffusion/triggering.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

CelfOptions SmallOptions(GreedyVariant variant,
                         DiffusionModel model = DiffusionModel::kIC) {
  CelfOptions options;
  options.variant = variant;
  options.num_mc_samples = 3000;
  options.model = model;
  options.seed = 4242;
  return options;
}

TEST(CelfValidationTest, RejectsBadInputs) {
  Graph g = MakeChain(4, 0.5f);
  std::vector<NodeId> seeds;
  CelfOptions options = SmallOptions(GreedyVariant::kCelf);
  EXPECT_TRUE(RunCelfGreedy(g, options, 0, &seeds, nullptr)
                  .IsInvalidArgument());
  EXPECT_TRUE(RunCelfGreedy(g, options, 9, &seeds, nullptr)
                  .IsInvalidArgument());
  options.num_mc_samples = 0;
  EXPECT_TRUE(RunCelfGreedy(g, options, 1, &seeds, nullptr)
                  .IsInvalidArgument());
  Graph empty;
  EXPECT_TRUE(RunCelfGreedy(empty, SmallOptions(GreedyVariant::kCelf), 1,
                            &seeds, nullptr)
                  .IsInvalidArgument());
  CelfOptions trig = SmallOptions(GreedyVariant::kCelf);
  trig.model = DiffusionModel::kTriggering;  // no custom model supplied
  EXPECT_TRUE(RunCelfGreedy(g, trig, 1, &seeds, nullptr).IsInvalidArgument());
}

class CelfVariantTest : public ::testing::TestWithParam<GreedyVariant> {};

TEST_P(CelfVariantTest, FindsTheHubOnAStar) {
  Graph g = MakeOutStar(12, 0.6f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(
      RunCelfGreedy(g, SmallOptions(GetParam()), 1, &seeds, nullptr).ok());
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0], 0u);
}

TEST_P(CelfVariantTest, NearOptimalOnTwoCommunitiesIC) {
  Graph g = MakeTwoCommunities(0.35f);
  const int k = 2;
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, k, &opt_seeds, &opt).ok());

  std::vector<NodeId> seeds;
  ASSERT_TRUE(
      RunCelfGreedy(g, SmallOptions(GetParam()), k, &seeds, nullptr).ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, seeds, &spread).ok());
  EXPECT_GE(spread, 0.85 * opt)
      << "variant produced a clearly sub-greedy set";
}

TEST_P(CelfVariantTest, ReturnsDistinctSeeds) {
  Graph g = MakeTwoCommunities(0.4f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(
      RunCelfGreedy(g, SmallOptions(GetParam()), 4, &seeds, nullptr).ok());
  std::set<NodeId> distinct(seeds.begin(), seeds.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST_P(CelfVariantTest, WorksUnderLT) {
  Graph g = testing::MakeGraph(6, {{0, 1, 0.8f},
                                   {1, 2, 0.8f},
                                   {0, 3, 0.4f},
                                   {3, 4, 0.9f},
                                   {4, 5, 0.9f},
                                   {2, 5, 0.1f}});
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalLT(g, 1, &opt_seeds, &opt).ok());

  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunCelfGreedy(g, SmallOptions(GetParam(), DiffusionModel::kLT),
                            1, &seeds, nullptr)
                  .ok());
  double spread = 0;
  ASSERT_TRUE(ExactSpreadLT(g, seeds, &spread).ok());
  EXPECT_GE(spread, 0.85 * opt);
}

INSTANTIATE_TEST_SUITE_P(Variants, CelfVariantTest,
                         ::testing::Values(GreedyVariant::kPlain,
                                           GreedyVariant::kCelf,
                                           GreedyVariant::kCelfPlusPlus));

TEST(CelfStatsTest, LazyVariantsEvaluateFarLessThanPlain) {
  Graph g = MakeTwoCommunities(0.35f);
  const int k = 3;

  CelfStats plain_stats, celf_stats;
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunCelfGreedy(g, SmallOptions(GreedyVariant::kPlain), k, &seeds,
                            &plain_stats)
                  .ok());
  ASSERT_TRUE(RunCelfGreedy(g, SmallOptions(GreedyVariant::kCelf), k, &seeds,
                            &celf_stats)
                  .ok());
  // Plain: ~k·n evaluations. CELF: n + a handful of re-evaluations.
  EXPECT_GT(plain_stats.spread_evaluations, celf_stats.spread_evaluations);
  EXPECT_EQ(plain_stats.spread_after_round.size(), static_cast<size_t>(k));
}

TEST(CelfStatsTest, SpreadAfterRoundIsNonDecreasing) {
  Graph g = MakeTwoCommunities(0.35f);
  CelfStats stats;
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunCelfGreedy(g, SmallOptions(GreedyVariant::kCelfPlusPlus), 4,
                            &seeds, &stats)
                  .ok());
  for (size_t i = 1; i < stats.spread_after_round.size(); ++i) {
    EXPECT_GE(stats.spread_after_round[i],
              stats.spread_after_round[i - 1] - 0.2)
        << "cumulative spread should grow with each seed";
  }
}

TEST(CelfTest, DeterministicGivenSeed) {
  Graph g = MakeTwoCommunities(0.35f);
  std::vector<NodeId> a, b;
  ASSERT_TRUE(RunCelfGreedy(g, SmallOptions(GreedyVariant::kCelfPlusPlus), 3,
                            &a, nullptr)
                  .ok());
  ASSERT_TRUE(RunCelfGreedy(g, SmallOptions(GreedyVariant::kCelfPlusPlus), 3,
                            &b, nullptr)
                  .ok());
  EXPECT_EQ(a, b);
}

TEST(CelfTest, CustomTriggeringModelPath) {
  Graph g = MakeOutStar(8, 0.7f);
  IcTriggeringModel model;
  CelfOptions options = SmallOptions(GreedyVariant::kCelf);
  options.model = DiffusionModel::kTriggering;
  options.custom_model = &model;
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunCelfGreedy(g, options, 1, &seeds, nullptr).ok());
  EXPECT_EQ(seeds[0], 0u);
}

}  // namespace
}  // namespace timpp
