// Unit tests for graph/graph_io.h: text edge lists and the binary format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/graph_io.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

// RAII temp file that deletes itself.
class TempFile {
 public:
  explicit TempFile(const std::string& contents = "") {
    path_ = ::testing::TempDir() + "/timpp_io_test_" +
            std::to_string(counter_++) + ".tmp";
    if (!contents.empty()) {
      std::ofstream out(path_);
      out << contents;
    }
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};
int TempFile::counter_ = 0;

TEST(EdgeListTest, ParsesSimpleList) {
  TempFile file("0 1\n1 2\n2 0\n");
  GraphBuilder builder;
  ASSERT_TRUE(ReadEdgeList(file.path(), EdgeListOptions{}, &builder).ok());
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FLOAT_EQ(g.OutArcs(0)[0].prob, 1.0f);  // default prob
}

TEST(EdgeListTest, ParsesProbabilityColumn) {
  TempFile file("0 1 0.25\n1 2 0.75\n");
  GraphBuilder builder;
  ASSERT_TRUE(ReadEdgeList(file.path(), EdgeListOptions{}, &builder).ok());
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_FLOAT_EQ(g.OutArcs(0)[0].prob, 0.25f);
  EXPECT_FLOAT_EQ(g.OutArcs(1)[0].prob, 0.75f);
}

TEST(EdgeListTest, SkipsCommentsAndBlankLines) {
  TempFile file("# SNAP header\n% matrix-market header\n\n  \n0 1\n");
  GraphBuilder builder;
  ASSERT_TRUE(ReadEdgeList(file.path(), EdgeListOptions{}, &builder).ok());
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(EdgeListTest, UndirectedOptionDoublesArcs) {
  TempFile file("0 1\n1 2\n");
  EdgeListOptions options;
  options.undirected = true;
  GraphBuilder builder;
  ASSERT_TRUE(ReadEdgeList(file.path(), options, &builder).ok());
  EXPECT_EQ(builder.num_edges(), 4u);
}

TEST(EdgeListTest, DefaultProbOption) {
  TempFile file("0 1\n");
  EdgeListOptions options;
  options.default_prob = 0.125f;
  GraphBuilder builder;
  ASSERT_TRUE(ReadEdgeList(file.path(), options, &builder).ok());
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  EXPECT_FLOAT_EQ(g.OutArcs(0)[0].prob, 0.125f);
}

TEST(EdgeListTest, MissingFileIsIOError) {
  GraphBuilder builder;
  Status s = ReadEdgeList("/nonexistent/really/not/here.txt",
                          EdgeListOptions{}, &builder);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

TEST(EdgeListTest, MalformedLineIsCorruption) {
  TempFile file("0 1\nnot numbers\n");
  GraphBuilder builder;
  Status s = ReadEdgeList(file.path(), EdgeListOptions{}, &builder);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.message().find(":2"), std::string::npos)
      << "should name line 2: " << s.message();
}

TEST(EdgeListTest, NegativeIdIsCorruption) {
  TempFile file("-3 1\n");
  GraphBuilder builder;
  EXPECT_TRUE(
      ReadEdgeList(file.path(), EdgeListOptions{}, &builder).IsCorruption());
}

TEST(EdgeListTest, WriteReadRoundTrip) {
  Graph original = testing::MakeTwoCommunities(0.25f);
  TempFile file;
  ASSERT_TRUE(WriteEdgeList(original, file.path()).ok());

  GraphBuilder builder;
  ASSERT_TRUE(ReadEdgeList(file.path(), EdgeListOptions{}, &builder).ok());
  Graph restored;
  ASSERT_TRUE(builder.Build(&restored).ok());

  ASSERT_EQ(restored.num_nodes(), original.num_nodes());
  ASSERT_EQ(restored.num_edges(), original.num_edges());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    auto a = original.OutArcs(v);
    auto b = restored.OutArcs(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_FLOAT_EQ(a[i].prob, b[i].prob);
    }
  }
}

TEST(BinaryIoTest, RoundTripPreservesEverything) {
  Graph original = testing::MakeTwoCommunities(0.37f);
  TempFile file;
  ASSERT_TRUE(WriteBinary(original, file.path()).ok());

  Graph restored;
  ASSERT_TRUE(ReadBinary(file.path(), &restored).ok());
  ASSERT_EQ(restored.num_nodes(), original.num_nodes());
  ASSERT_EQ(restored.num_edges(), original.num_edges());
  for (NodeId v = 0; v < original.num_nodes(); ++v) {
    auto a = original.OutArcs(v);
    auto b = restored.OutArcs(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_FLOAT_EQ(a[i].prob, b[i].prob);
    }
  }
}

TEST(BinaryIoTest, BadMagicIsCorruption) {
  TempFile file("GARBAGE DATA THAT IS NOT A TIMG FILE");
  Graph g;
  EXPECT_TRUE(ReadBinary(file.path(), &g).IsCorruption());
}

TEST(BinaryIoTest, TruncatedFileIsCorruption) {
  Graph original = testing::MakeChain(5, 0.5f);
  TempFile file;
  ASSERT_TRUE(WriteBinary(original, file.path()).ok());
  // Truncate to half size.
  std::ifstream in(file.path(), std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
  out.close();

  Graph g;
  EXPECT_TRUE(ReadBinary(file.path(), &g).IsCorruption());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  Graph g;
  EXPECT_TRUE(ReadBinary("/nonexistent/file.bin", &g).IsIOError());
}

TEST(BinaryIoTest, EmptyGraphRoundTrips) {
  GraphBuilder builder;
  builder.ReserveNodes(7);
  Graph original;
  ASSERT_TRUE(builder.Build(&original).ok());
  TempFile file;
  ASSERT_TRUE(WriteBinary(original, file.path()).ok());
  Graph restored;
  ASSERT_TRUE(ReadBinary(file.path(), &restored).ok());
  EXPECT_EQ(restored.num_nodes(), 7u);
  EXPECT_EQ(restored.num_edges(), 0u);
}

}  // namespace
}  // namespace timpp
