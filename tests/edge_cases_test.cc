// Edge-case and robustness tests across the whole stack: degenerate
// graphs, boundary parameter values, and cross-component agreement on
// realistic proxies.
#include <gtest/gtest.h>

#include <set>

#include "baselines/heuristics.h"
#include "core/imm.h"
#include "core/kpt_estimator.h"
#include "core/tim.h"
#include "diffusion/spread_estimator.h"
#include "gen/dataset_proxies.h"
#include "gen/generators.h"
#include "graph/graph_io.h"
#include "graph/weight_models.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeGraph;

// ------------------------------------------------------ degenerate graphs --

TEST(EdgeCaseTest, SingleNodeGraph) {
  GraphBuilder builder;
  builder.ReserveNodes(1);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());

  TimOptions options;
  options.k = 1;
  options.epsilon = 0.5;
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.seeds, (std::vector<NodeId>{0}));
  EXPECT_NEAR(result.stats.estimated_spread, 1.0, 1e-9);
}

TEST(EdgeCaseTest, EdgelessGraphAnySeedWorks) {
  GraphBuilder builder;
  builder.ReserveNodes(10);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());

  TimOptions options;
  options.k = 3;
  options.epsilon = 0.5;
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.seeds.size(), 3u);
  // Every size-3 set has spread exactly 3 on an edgeless graph.
  EXPECT_NEAR(result.stats.estimated_spread, 3.0, 0.2);
}

TEST(EdgeCaseTest, KEqualsNSelectsEveryNode) {
  Graph g = MakeChain(5, 0.5f);
  TimOptions options;
  options.k = 5;
  options.epsilon = 0.5;
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  std::set<NodeId> all(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(all.size(), 5u);
}

TEST(EdgeCaseTest, GraphWithIsolatedNodesStillRuns) {
  GraphBuilder builder;
  builder.ReserveNodes(20);  // nodes 10..19 isolated
  for (NodeId v = 0; v + 1 < 10; ++v) builder.AddEdge(v, v + 1, 0.8f);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());

  TimOptions options;
  options.k = 1;
  options.epsilon = 0.3;
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.seeds[0], 0u) << "the chain head dominates any isolate";
}

TEST(EdgeCaseTest, SelfLoopsAreHarmless) {
  // Self-loops change nothing: a seed is already active, a non-seed can't
  // trigger itself.
  GraphBuilder with_loops, without;
  for (NodeId v = 0; v + 1 < 5; ++v) {
    with_loops.AddEdge(v, v + 1, 1.0f);
    without.AddEdge(v, v + 1, 1.0f);
    with_loops.AddEdge(v, v, 0.9f);
  }
  Graph g_with, g_without;
  ASSERT_TRUE(with_loops.Build(&g_with).ok());
  ASSERT_TRUE(without.Build(&g_without).ok());

  SpreadEstimatorOptions est;
  est.num_samples = 20000;
  const double a =
      SpreadEstimator(g_with, est).Estimate(std::vector<NodeId>{0}, 1);
  const double b =
      SpreadEstimator(g_without, est).Estimate(std::vector<NodeId>{0}, 1);
  EXPECT_NEAR(a, b, 1e-9) << "deterministic chain: exactly 5 either way";
}

TEST(EdgeCaseTest, ParallelEdgesGiveIndependentChances) {
  // Two parallel 0.5-edges are one effective 0.75 chance under IC.
  Graph g = MakeGraph(2, {{0, 1, 0.5f}, {0, 1, 0.5f}});
  SpreadEstimatorOptions est;
  est.num_samples = 400000;
  const double spread =
      SpreadEstimator(g, est).Estimate(std::vector<NodeId>{0}, 2);
  EXPECT_NEAR(spread, 1.75, 0.01);
}

// --------------------------------------------------- boundary parameters --

TEST(EdgeCaseTest, EpsilonOneIsAccepted) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  TimOptions options;
  options.k = 2;
  options.epsilon = 1.0;  // the weakest guarantee the paper uses (§7.3)
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.seeds.size(), 2u);
}

TEST(EdgeCaseTest, FractionalEllWorks) {
  Graph g = testing::MakeTwoCommunities(0.35f);
  TimOptions options;
  options.k = 2;
  options.epsilon = 0.4;
  options.ell = 0.5;  // Theorem 2 needs ell >= 1/2
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.seeds.size(), 2u);
}

TEST(EdgeCaseTest, ZeroProbabilityEdgesNeverTraversed) {
  Graph g = MakeChain(6, 0.0f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(3);
  std::vector<NodeId> rr;
  for (int i = 0; i < 100; ++i) {
    sampler.SampleRandomRoot(rng, &rr);
    EXPECT_EQ(rr.size(), 1u);
  }
}

TEST(EdgeCaseTest, ProbabilityOneCascadeSaturates) {
  GraphBuilder builder;
  GenDirectedCycle(8, &builder);
  AssignUniform(&builder, 1.0f);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  SpreadEstimatorOptions est;
  est.num_samples = 100;
  const double spread =
      SpreadEstimator(g, est).Estimate(std::vector<NodeId>{0}, 4);
  EXPECT_DOUBLE_EQ(spread, 8.0);
}

// --------------------------------------------- cross-component agreement --

TEST(EdgeCaseTest, RREstimateMatchesForwardMCOnProxy) {
  // End-to-end consistency on a realistic graph: the RR-based estimator
  // n·F_R(S) and the forward Monte-Carlo estimator must agree for an
  // arbitrary (degree-heuristic) seed set.
  Graph g;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kNetHept, 0.02,
                                WeightScheme::kWeightedCascadeIC, 8, &g)
                  .ok());
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByDegree(g, 5, &seeds).ok());

  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(9);
  RRCollection rr(g.num_nodes());
  std::vector<NodeId> scratch;
  for (int i = 0; i < 150000; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    rr.Add(scratch, info.width);
  }
  rr.BuildIndex();
  const double rr_estimate = rr.CoveredFraction(seeds) * g.num_nodes();

  SpreadEstimatorOptions est;
  est.num_samples = 100000;
  const double mc_estimate = SpreadEstimator(g, est).Estimate(seeds, 10);
  EXPECT_NEAR(rr_estimate, mc_estimate, 0.05 * mc_estimate + 0.3);
}

TEST(EdgeCaseTest, AllSolversAgreeOnTheObviousInstance) {
  // One dominant hub: every algorithm in the library must find it.
  std::vector<RawEdge> edges;
  for (NodeId v = 1; v <= 20; ++v) edges.push_back({0, v, 0.9f});
  edges.push_back({21, 22, 0.1f});
  Graph g = MakeGraph(23, edges);

  std::vector<NodeId> seeds;

  TimOptions tim_options;
  tim_options.k = 1;
  tim_options.epsilon = 0.3;
  TimSolver solver(g);
  TimResult tim;
  ASSERT_TRUE(solver.Run(tim_options, &tim).ok());
  EXPECT_EQ(tim.seeds[0], 0u);

  ImmOptions imm_options;
  imm_options.k = 1;
  imm_options.epsilon = 0.3;
  ImmResult imm;
  ASSERT_TRUE(RunImm(g, imm_options, &imm).ok());
  EXPECT_EQ(imm.seeds[0], 0u);

  ASSERT_TRUE(SelectByDegree(g, 1, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
  ASSERT_TRUE(SelectSingleDiscount(g, 1, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
  ASSERT_TRUE(SelectDegreeDiscount(g, 1, 0.9, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
  ASSERT_TRUE(SelectByPageRank(g, 1, 0.85, 30, &seeds).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(EdgeCaseTest, BinaryRoundTripOfGeneratedProxy) {
  Graph original;
  ASSERT_TRUE(BuildDatasetProxy(Dataset::kEpinions, 0.01,
                                WeightScheme::kWeightedCascadeIC, 5,
                                &original)
                  .ok());
  const std::string path = ::testing::TempDir() + "/proxy_roundtrip.timg";
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Graph restored;
  ASSERT_TRUE(ReadBinary(path, &restored).ok());
  std::remove(path.c_str());

  ASSERT_EQ(restored.num_nodes(), original.num_nodes());
  ASSERT_EQ(restored.num_edges(), original.num_edges());
  // Spot-check adjacency equality on a sample of nodes.
  for (NodeId v = 0; v < restored.num_nodes(); v += 97) {
    auto a = original.OutArcs(v);
    auto b = restored.OutArcs(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_FLOAT_EQ(a[i].prob, b[i].prob);
    }
  }
}

TEST(EdgeCaseTest, KptEstimatorTerminatesEarlierOnHighSpreadGraphs) {
  // Lemmas 6-7 mechanism: larger KPT/n ⇒ the average κ crosses 2^-i in an
  // earlier iteration.
  GraphBuilder hot_builder;
  GenCompleteDirected(64, &hot_builder);
  AssignUniform(&hot_builder, 0.5f);
  Graph hot;
  ASSERT_TRUE(hot_builder.Build(&hot).ok());

  GraphBuilder cold_builder;
  GenDirectedCycle(64, &cold_builder);
  AssignUniform(&cold_builder, 0.01f);
  Graph cold;
  ASSERT_TRUE(cold_builder.Build(&cold).ok());

  SamplingEngine hot_engine(hot, testing::IcSampling(6));
  SamplingEngine cold_engine(cold, testing::IcSampling(6));
  KptEstimate hot_estimate = EstimateKpt(hot_engine, 2, 1.0);
  KptEstimate cold_estimate = EstimateKpt(cold_engine, 2, 1.0);
  ASSERT_GT(hot_estimate.terminated_iteration, 0);
  EXPECT_GT(hot_estimate.kpt_star, cold_estimate.kpt_star);
  if (cold_estimate.terminated_iteration > 0) {
    EXPECT_LE(hot_estimate.terminated_iteration,
              cold_estimate.terminated_iteration);
  }
}

}  // namespace
}  // namespace timpp
