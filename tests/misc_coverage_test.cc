// Final coverage batch: behaviours not pinned elsewhere — generator edge
// cases, empty-seed simulation, duplicate seeds in oracles, selector
// boundary cases, parameter-formula edges, and RIS/IMM under the generic
// triggering path.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/heuristics.h"
#include "baselines/ris.h"
#include "core/imm.h"
#include "core/node_selector.h"
#include "core/parameters.h"
#include "diffusion/exact_spread.h"
#include "diffusion/ic_simulator.h"
#include "diffusion/triggering.h"
#include "gen/generators.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "util/alias_table.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeGraph;
using testing::MakeTwoCommunities;

// -------------------------------------------------------- generator edges --

TEST(GeneratorEdgeTest, ErdosRenyiZeroEdges) {
  GraphBuilder b;
  GenErdosRenyi(10, 0, 1, &b);
  EXPECT_EQ(b.num_edges(), 0u);
  EXPECT_EQ(b.num_nodes(), 10u);
}

TEST(GeneratorEdgeTest, BarabasiAlbertTinyN) {
  // n smaller than the seed clique: should degrade to a clique on n nodes.
  GraphBuilder b;
  GenBarabasiAlbert(2, 5, 1, &b);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);  // one undirected edge
}

TEST(GeneratorEdgeTest, WattsStrogatzFullRewire) {
  GraphBuilder b;
  GenWattsStrogatz(50, 2, 1.0, 2, &b);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  EXPECT_EQ(g.num_edges(), 50u * 2 * 2);  // edge count invariant to beta
  for (const RawEdge& e : b.edges()) EXPECT_NE(e.from, e.to);
}

TEST(GeneratorEdgeTest, DirectedScaleFreeZeroDegree) {
  GraphBuilder b;
  GenDirectedScaleFree(20, 0.0, 3, &b);
  EXPECT_EQ(b.num_edges(), 0u);
  EXPECT_EQ(b.num_nodes(), 20u);
}

TEST(GeneratorEdgeTest, SingleNodeToyGraphs) {
  GraphBuilder b1, b2, b3;
  GenDirectedPath(1, &b1);
  GenDirectedCycle(1, &b2);
  GenStarOut(1, &b3);
  EXPECT_EQ(b1.num_edges(), 0u);
  EXPECT_EQ(b2.num_edges(), 0u);
  EXPECT_EQ(b3.num_edges(), 0u);
}

// ---------------------------------------------------------- simulators --

TEST(SimulatorEdgeTest, EmptySeedSetActivatesNothing) {
  Graph g = MakeChain(5, 1.0f);
  IcSimulator sim(g);
  Rng rng(1);
  EXPECT_EQ(sim.Simulate(std::vector<NodeId>{}, rng), 0u);
}

TEST(SimulatorEdgeTest, AllNodesAsSeeds) {
  Graph g = MakeChain(5, 0.3f);
  IcSimulator sim(g);
  Rng rng(2);
  std::vector<NodeId> all = {0, 1, 2, 3, 4};
  EXPECT_EQ(sim.Simulate(all, rng), 5u);
}

TEST(OracleEdgeTest, DuplicateSeedsDoNotInflateExactSpread) {
  Graph g = MakeChain(4, 0.5f);
  double once = 0, twice = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0}, &once).ok());
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0, 0}, &twice).ok());
  EXPECT_DOUBLE_EQ(once, twice);
}

TEST(OracleEdgeTest, FullSeedSetHasSpreadN) {
  Graph g = MakeChain(4, 0.25f);
  double spread = 0;
  ASSERT_TRUE(
      ExactSpreadIC(g, std::vector<NodeId>{0, 1, 2, 3}, &spread).ok());
  EXPECT_DOUBLE_EQ(spread, 4.0);
}

// ----------------------------------------------------------- selection --

TEST(NodeSelectionEdgeTest, ThetaOneStillSelects) {
  Graph g = MakeTwoCommunities(0.4f);
  SamplingEngine engine(g, testing::IcSampling(3));
  NodeSelection result = SelectNodes(engine, 2, 1);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.theta, 1u);
  EXPECT_GE(result.covered_fraction, 0.0);
  EXPECT_LE(result.covered_fraction, 1.0);
}

TEST(NodeSelectionEdgeTest, CoveredFractionIsMonotoneInK) {
  Graph g = MakeTwoCommunities(0.4f);
  SamplingEngine e1(g, testing::IcSampling(4)), e2(g, testing::IcSampling(4));
  NodeSelection k1 = SelectNodes(e1, 1, 5000);
  NodeSelection k3 = SelectNodes(e2, 3, 5000);
  EXPECT_GE(k3.covered_fraction, k1.covered_fraction);
}

// ------------------------------------------------- triggering everywhere --

TEST(TriggeringPathTest, RisWithCustomModel) {
  Graph g = testing::MakeOutStar(16, 0.8f);
  IcTriggeringModel model;
  RisOptions options;
  options.epsilon = 0.3;
  options.model = DiffusionModel::kTriggering;
  options.custom_model = &model;
  options.tau_scale = 0.5;
  std::vector<NodeId> seeds;
  ASSERT_TRUE(RunRis(g, options, 1, &seeds, nullptr).ok());
  EXPECT_EQ(seeds[0], 0u);
}

TEST(TriggeringPathTest, ImmWithCustomModel) {
  Graph g = testing::MakeOutStar(16, 0.8f);
  IcTriggeringModel model;
  ImmOptions options;
  options.k = 1;
  options.epsilon = 0.3;
  options.model = DiffusionModel::kTriggering;
  options.custom_model = &model;
  ImmResult result;
  ASSERT_TRUE(RunImm(g, options, &result).ok());
  EXPECT_EQ(result.seeds[0], 0u);
}

TEST(TriggeringPathTest, ImmUnderNativeLtMatchesTriggeringLt) {
  Graph g = MakeGraph(6, {{0, 1, 0.9f}, {1, 2, 0.9f}, {2, 3, 0.9f},
                          {0, 4, 0.2f}, {4, 5, 0.3f}});
  ImmOptions native;
  native.k = 1;
  native.epsilon = 0.3;
  native.model = DiffusionModel::kLT;
  ImmResult a;
  ASSERT_TRUE(RunImm(g, native, &a).ok());

  LtTriggeringModel model;
  ImmOptions generic = native;
  generic.model = DiffusionModel::kTriggering;
  generic.custom_model = &model;
  ImmResult b;
  ASSERT_TRUE(RunImm(g, generic, &b).ok());
  EXPECT_EQ(a.seeds, b.seeds) << "both must pick the dominant chain head";
}

// ------------------------------------------------------------ parameters --

TEST(ParameterEdgeTest, RecommendedEpsPrimeAtKOne) {
  // k=1, ℓ=1: ε' = 5·cbrt(ε²/2) — just pin the formula at the boundary.
  EXPECT_NEAR(RecommendedEpsPrime(1.0, 1, 1.0), 5.0 * std::cbrt(0.5), 1e-12);
}

TEST(ParameterEdgeTest, LambdaPositiveForExtremeInputs) {
  EXPECT_GT(ComputeLambda(2, 1, 1.0, 0.5), 0.0);
  EXPECT_GT(ComputeLambda(1u << 30, 1000, 0.01, 4.0), 0.0);
}

TEST(ParameterEdgeTest, GreedySamplesScaleInverseWithOpt) {
  const double small_opt = GreedyRequiredSamples(1000, 10, 0.2, 1.0, 10.0);
  const double large_opt = GreedyRequiredSamples(1000, 10, 0.2, 1.0, 100.0);
  EXPECT_NEAR(small_opt, 10.0 * large_opt, small_opt * 1e-9);
}

// ------------------------------------------------------------ heuristics --

TEST(HeuristicEdgeTest, DegreeWithKEqualsN) {
  Graph g = MakeChain(5, 1.0f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByDegree(g, 5, &seeds).ok());
  EXPECT_EQ(std::set<NodeId>(seeds.begin(), seeds.end()).size(), 5u);
}

TEST(HeuristicEdgeTest, DegreeDiscountWithPOne) {
  Graph g = MakeTwoCommunities(0.4f);
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectDegreeDiscount(g, 3, 1.0, &seeds).ok());
  EXPECT_EQ(std::set<NodeId>(seeds.begin(), seeds.end()).size(), 3u);
}

TEST(HeuristicEdgeTest, PageRankOnEdgelessGraphIsUniform) {
  GraphBuilder b;
  b.ReserveNodes(5);
  Graph g;
  ASSERT_TRUE(b.Build(&g).ok());
  std::vector<NodeId> seeds;
  ASSERT_TRUE(SelectByPageRank(g, 2, 0.85, 10, &seeds).ok());
  EXPECT_EQ(seeds, (std::vector<NodeId>{0, 1}));  // ties -> smallest ids
}

// ------------------------------------------------------------ alias table --

TEST(AliasTableEdgeTest, UniformWeightsAreUniform) {
  AliasTable table(std::vector<double>(8, 2.5));
  Rng rng(5);
  std::vector<int> counts(8, 0);
  const int r = 160000;
  for (int i = 0; i < r; ++i) ++counts[table.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, r / 8, r / 8 / 10);
}

TEST(AliasTableEdgeTest, RebuildReplacesDistribution) {
  AliasTable table(std::vector<double>{1.0, 0.0});
  Rng rng(6);
  EXPECT_EQ(table.Sample(rng), 0u);
  table.Build(std::vector<double>{0.0, 1.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 1u);
  EXPECT_DOUBLE_EQ(table.total_weight(), 1.0);
}

// --------------------------------------------------------------- sampler --

TEST(SamplerEdgeTest, RootAlwaysFirstElement) {
  Graph g = MakeTwoCommunities(0.5f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(7);
  std::vector<NodeId> rr;
  for (int i = 0; i < 100; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &rr);
    ASSERT_FALSE(rr.empty());
    EXPECT_EQ(rr.front(), info.root);
  }
}

TEST(SamplerEdgeTest, WidthOfSingletonIsRootInDegree) {
  Graph g = MakeChain(5, 0.0f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(8);
  std::vector<NodeId> rr;
  RRSampleInfo info = sampler.SampleForRoot(3, rng, &rr);
  EXPECT_EQ(info.width, g.InDegree(3));
}

}  // namespace
}  // namespace timpp
