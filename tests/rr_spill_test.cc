// Tests of the out-of-core RR spill tier (rrset/rr_spill.h) and its
// integration everywhere RR prefixes live:
//   - RRSpillStore unit behaviour: chunk round-trips, append-only index
//     discipline, coverage gaps, visit/read semantics, pinned-chunk LRU;
//   - the sectioned (hot/probation) LRU: scan resistance (a streaming
//     pass over 3x capacity cannot evict a re-touched hot chunk) and
//     probation-before-hot eviction order;
//   - prefetched replay: readahead produces bit-identical output with the
//     prefetch counters moving, and injected failing/slow readers (via
//     RRSpillOptions::reader_factory) degrade to synchronous reads with
//     the same bytes;
//   - the solver sweep: TIM/TIM+/IMM/RIS at budgets {tiny, mid, ∞} ×
//     backends {local, procs:2} must produce bit-identical seeds and
//     stats to the unbudgeted local run, with regeneration_passes == 0
//     (disk replay, not resampling) whenever the spill tier is on and the
//     budget actually trips;
//   - serving: a budget-evicted shared stream spills its prefix and the
//     re-created stream preloads it from disk instead of resampling.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/sampling_engine.h"
#include "engine/solver_registry.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_spill.h"
#include "serving/graph_context.h"
#include "serving/serving_engine.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeWcPowerLaw;

/// Self-cleaning spill parent directory.
class TempSpillDir {
 public:
  TempSpillDir() {
    dir_ = ::testing::TempDir() + "/timpp_spill_test_" +
           std::to_string(counter_++);
  }
  ~TempSpillDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::string& path() const { return dir_; }

 private:
  static int counter_;
  std::string dir_;
};
int TempSpillDir::counter_ = 0;

RRSpillOptions SpillOpts(const TempSpillDir& dir,
                         uint64_t sets_per_chunk = 4096) {
  RRSpillOptions options;
  options.dir = dir.path();
  options.sets_per_chunk = sets_per_chunk;
  return options;
}

/// `count` deterministic RR sets (plus per-set edge counts) of the given
/// stream, starting at the engine's cursor.
void Sample(const Graph& graph, uint64_t seed, uint64_t count,
            RRCollection* rr, std::vector<uint64_t>* edges) {
  SamplingEngine engine(graph, testing::IcSampling(seed));
  engine.SampleInto(rr, count, edges);
  ASSERT_EQ(rr->num_sets(), count);
}

void ExpectEqualSets(const RRCollection& a, const RRCollection& b,
                     size_t a_first, size_t b_first, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const auto sa = a.Set(static_cast<RRSetId>(a_first + i));
    const auto sb = b.Set(static_cast<RRSetId>(b_first + i));
    ASSERT_EQ(sa.size(), sb.size()) << "set " << i;
    EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin())) << "set " << i;
    EXPECT_EQ(a.Width(static_cast<RRSetId>(a_first + i)),
              b.Width(static_cast<RRSetId>(b_first + i)))
        << "set " << i;
  }
}

/// Full VisitRange pass asserting every delivered set is bit-identical to
/// the in-memory original (the spill tier's core contract under every
/// cache/prefetch configuration).
void ExpectReplayMatches(RRSpillStore* store, const RRCollection& rr,
                         uint64_t count) {
  uint64_t stopped = 0, visited = 0;
  const Status status = store->VisitRange(
      0, count, nullptr,
      [&](uint64_t index, std::span<const NodeId> set) {
        const auto expect = rr.Set(static_cast<RRSetId>(index));
        ASSERT_EQ(expect.size(), set.size()) << "set " << index;
        EXPECT_TRUE(std::equal(expect.begin(), expect.end(), set.begin()))
            << "set " << index;
      },
      &stopped, &visited);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stopped, count);
  EXPECT_EQ(visited, count);
}

/// Injectable prefetch reader whose every read fails at Wait(): the store
/// must fall back to synchronous reads and still replay bit-identically.
class FailingReader : public AsyncFileReader {
 public:
  Ticket Submit(const std::string&, uint64_t, uint64_t) override {
    return ++next_;
  }
  Status Wait(Ticket, std::string*) override {
    return Status::IOError("injected prefetch failure");
  }
  void Cancel(Ticket) override {}
  const char* backend_name() const override { return "failing"; }

 private:
  std::atomic<Ticket> next_{0};
};

/// Injectable prefetch reader that serves correct bytes, but only after a
/// delay — a stand-in for slow media proving the replay result never
/// depends on I/O timing.
class SlowReader : public AsyncFileReader {
 public:
  SlowReader() {
    AsyncIoOptions options;
    options.backend = AsyncIoBackend::kThreads;
    inner_ = AsyncFileReader::Create(options);
  }
  Ticket Submit(const std::string& path, uint64_t offset,
                uint64_t size) override {
    return inner_->Submit(path, offset, size);
  }
  Status Wait(Ticket ticket, std::string* out) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner_->Wait(ticket, out);
  }
  void Cancel(Ticket ticket) override { inner_->Cancel(ticket); }
  const char* backend_name() const override { return "slow"; }

 private:
  std::unique_ptr<AsyncFileReader> inner_;
};

// ---- RRSpillStore unit behaviour --------------------------------------

TEST(RRSpillStoreTest, SpillAndReadRangeRoundTrip) {
  const Graph g = MakeWcPowerLaw(120, 3, 7);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 11, 100, &rr, &edges);

  TempSpillDir dir;
  RRSpillStore store(g.num_nodes(), SpillOpts(dir, 32));
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 100, 0).ok());
  EXPECT_TRUE(store.Covers(0, 100));
  EXPECT_EQ(store.end_index(), 100u);
  EXPECT_EQ(store.stats().sets_written, 100u);
  EXPECT_GE(store.stats().chunks_written, 4u);  // 100 sets / 32 per chunk
  EXPECT_GT(store.stats().bytes_written, 0u);

  RRCollection loaded(g.num_nodes());
  std::vector<uint64_t> loaded_edges;
  ASSERT_TRUE(store.ReadRange(0, 100, &loaded, &loaded_edges).ok());
  ASSERT_EQ(loaded.num_sets(), 100u);
  EXPECT_EQ(loaded_edges, edges);
  ExpectEqualSets(rr, loaded, 0, 0, 100);
}

TEST(RRSpillStoreTest, AppendOnlyIndexDiscipline) {
  const Graph g = MakeWcPowerLaw(60, 3, 3);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 40, &rr, &edges);

  TempSpillDir dir;
  RRSpillStore store(g.num_nodes(), SpillOpts(dir));
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 20, 50).ok());
  EXPECT_EQ(store.end_index(), 70u);
  // Appending below the current end violates the index discipline.
  EXPECT_FALSE(store.SpillRange(rr, edges, 20, 10, 30).ok());
  EXPECT_EQ(store.end_index(), 70u) << "failed append must not extend";
  // Appending past the end — with a gap — is fine.
  ASSERT_TRUE(store.SpillRange(rr, edges, 20, 10, 100).ok());
  EXPECT_EQ(store.end_index(), 110u);
}

TEST(RRSpillStoreTest, CoverageGapsAreReported) {
  const Graph g = MakeWcPowerLaw(60, 3, 13);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 80, &rr, &edges);

  TempSpillDir dir;
  RRSpillStore store(g.num_nodes(), SpillOpts(dir, 16));
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 50, 0).ok());     // [0, 50)
  ASSERT_TRUE(store.SpillRange(rr, edges, 50, 30, 100).ok());  // [100, 130)

  EXPECT_TRUE(store.Covers(0, 50));
  EXPECT_TRUE(store.Covers(100, 30));
  EXPECT_FALSE(store.Covers(0, 60));
  EXPECT_FALSE(store.Covers(90, 20));
  EXPECT_EQ(store.CoveredEnd(0, 200), 50u);
  EXPECT_EQ(store.CoveredEnd(100, 30), 130u);
  EXPECT_EQ(store.CoveredEnd(60, 100), 60u) << "nothing stored at 60";

  // ReadRange over a gap fails named and appends nothing.
  RRCollection out(g.num_nodes());
  std::vector<uint64_t> out_edges;
  const Status status = store.ReadRange(40, 20, &out, &out_edges);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(out.num_sets(), 0u) << "failed read must not half-append";
  EXPECT_TRUE(out_edges.empty());
}

TEST(RRSpillStoreTest, VisitRangeStopsAtGapAndHonorsFilter) {
  const Graph g = MakeWcPowerLaw(60, 3, 19);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 60, &rr, &edges);

  TempSpillDir dir;
  RRSpillStore store(g.num_nodes(), SpillOpts(dir, 16));
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 40, 0).ok());

  // Covered prefix with a filter dropping every odd index.
  uint64_t visited = 0, delivered = 0, stopped = 0;
  Status status = store.VisitRange(
      0, 60, [](uint64_t index) { return index % 2 == 0; },
      [&](uint64_t index, std::span<const NodeId> set) {
        EXPECT_EQ(index % 2, 0u);
        const auto expect = rr.Set(static_cast<RRSetId>(index));
        ASSERT_EQ(expect.size(), set.size());
        EXPECT_TRUE(std::equal(expect.begin(), expect.end(), set.begin()));
        ++delivered;
      },
      &stopped, &visited);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(stopped, 40u) << "stops at the first uncovered index";
  EXPECT_EQ(delivered, 20u);
  EXPECT_EQ(visited, 20u);
}

TEST(RRSpillStoreTest, PinnedChunkLruCountsHitsAndLoads) {
  const Graph g = MakeWcPowerLaw(60, 3, 23);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 64, &rr, &edges);

  TempSpillDir dir;
  RRSpillOptions options = SpillOpts(dir, 16);  // 4 chunks
  options.max_pinned_chunks = 2;
  RRSpillStore store(g.num_nodes(), options);
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 64, 0).ok());

  uint64_t stopped = 0;
  // First full pass: every chunk is a load.
  ASSERT_TRUE(
      store.VisitRange(0, 64, nullptr,
                       [](uint64_t, std::span<const NodeId>) {}, &stopped)
          .ok());
  const uint64_t loads_after_first = store.stats().chunk_loads;
  EXPECT_GE(loads_after_first, 4u);
  // Re-visiting only the last pinned window hits the LRU.
  ASSERT_TRUE(
      store.VisitRange(48, 16, nullptr,
                       [](uint64_t, std::span<const NodeId>) {}, &stopped)
          .ok());
  EXPECT_EQ(store.stats().chunk_loads, loads_after_first);
  EXPECT_GT(store.stats().chunk_hits, 0u);
  EXPECT_EQ(store.stats().sets_read, 64u + 16u);
}

// ---- sectioned (hot/probation) LRU ------------------------------------

/// Visits exactly one chunk-sized window, asserting success.
void VisitWindow(RRSpillStore* store, uint64_t first, uint64_t count) {
  uint64_t stopped = 0;
  ASSERT_TRUE(store
                  ->VisitRange(first, count, nullptr,
                               [](uint64_t, std::span<const NodeId>) {},
                               &stopped)
                  .ok());
  ASSERT_EQ(stopped, first + count);
}

TEST(RRSpillStoreTest, SlruScanResistanceKeepsHotChunksResident) {
  const Graph g = MakeWcPowerLaw(60, 3, 41);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 96, &rr, &edges);

  TempSpillDir dir;
  RRSpillOptions options = SpillOpts(dir, 8);  // 12 chunks
  options.max_pinned_chunks = 4;               // hot cap 2, probation 2+
  options.tuning.readahead_chunks = 0;  // pure cache behaviour, no prefetch
  RRSpillStore store(g.num_nodes(), options);
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 96, 0).ok());

  // Touch chunk 0 twice: first touch lands in probation, the re-touch
  // promotes it into the hot section.
  VisitWindow(&store, 0, 8);
  VisitWindow(&store, 0, 8);
  ASSERT_EQ(store.stats().chunk_loads, 1u);
  ASSERT_EQ(store.stats().probation_hits, 1u);

  // One full streaming pass over all 12 chunks — 3× the pinned capacity.
  // Every new chunk is a first touch, so the scan may only churn
  // probation: the hot chunk 0 must survive the entire pass.
  ExpectReplayMatches(&store, rr, 96);
  const uint64_t loads_after_scan = store.stats().chunk_loads;
  EXPECT_EQ(loads_after_scan, 12u) << "chunk 0 from hot, 11 fresh loads";
  EXPECT_GE(store.stats().hot_hits, 1u) << "the scan itself hit hot";

  // And it is still resident afterwards.
  VisitWindow(&store, 0, 8);
  EXPECT_EQ(store.stats().chunk_loads, loads_after_scan)
      << "a 3x-capacity scan must not evict a re-touched hot chunk";
  EXPECT_GE(store.stats().hot_hits, 2u);
  EXPECT_EQ(store.stats().hot_hits + store.stats().probation_hits,
            store.stats().chunk_hits);
}

TEST(RRSpillStoreTest, SlruEvictsProbationBeforeHot) {
  const Graph g = MakeWcPowerLaw(60, 3, 43);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 24, &rr, &edges);

  TempSpillDir dir;
  RRSpillOptions options = SpillOpts(dir, 8);  // 3 chunks
  options.max_pinned_chunks = 2;               // hot cap 1, probation 1
  options.tuning.readahead_chunks = 0;
  RRSpillStore store(g.num_nodes(), options);
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 24, 0).ok());

  VisitWindow(&store, 0, 8);  // chunk 0 -> probation
  VisitWindow(&store, 0, 8);  // chunk 0 -> hot
  VisitWindow(&store, 8, 8);  // chunk 1 -> probation
  ASSERT_EQ(store.stats().chunk_loads, 2u);
  // Chunk 2 displaces the probation LRU (chunk 1), NOT the older hot
  // chunk 0 — eviction drains probation first.
  VisitWindow(&store, 16, 8);
  ASSERT_EQ(store.stats().chunk_loads, 3u);
  VisitWindow(&store, 0, 8);   // hot chunk survived
  VisitWindow(&store, 16, 8);  // newest probation entry survived
  EXPECT_EQ(store.stats().chunk_loads, 3u);
  VisitWindow(&store, 8, 8);  // the evicted probation chunk reloads
  EXPECT_EQ(store.stats().chunk_loads, 4u);
  EXPECT_EQ(store.stats().hot_hits + store.stats().probation_hits,
            store.stats().chunk_hits);
}

// ---- prefetch: overlap, equivalence, degradation ----------------------

TEST(RRSpillStoreTest, PrefetchedReplayIsBitIdenticalAndCounted) {
  const Graph g = MakeWcPowerLaw(80, 3, 47);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 64, &rr, &edges);

  TempSpillDir dir_sync, dir_pre;
  RRSpillOptions sync_options = SpillOpts(dir_sync, 8);  // 8 chunks
  sync_options.tuning.readahead_chunks = 0;
  RRSpillStore sync_store(g.num_nodes(), sync_options);
  ASSERT_TRUE(sync_store.SpillRange(rr, edges, 0, 64, 0).ok());

  RRSpillOptions pre_options = SpillOpts(dir_pre, 8);
  pre_options.tuning.readahead_chunks = 3;
  RRSpillStore pre_store(g.num_nodes(), pre_options);
  ASSERT_TRUE(pre_store.SpillRange(rr, edges, 0, 64, 0).ok());

  // Both replay paths reproduce the sampled sets exactly.
  ExpectReplayMatches(&sync_store, rr, 64);
  ExpectReplayMatches(&pre_store, rr, 64);

  // The sync store never touched the async layer.
  EXPECT_EQ(sync_store.stats().prefetch_issued, 0u);
  EXPECT_EQ(sync_store.io_backend_name(), "none");

  // The prefetching store overlapped reads with decoding and consumed
  // them: issued > 0, demand loads were served from completed prefetches,
  // and nothing fell back to the synchronous path.
  const RRSpillStats pre = pre_store.stats();
  EXPECT_GT(pre.prefetch_issued, 0u);
  EXPECT_GT(pre.prefetch_hits, 0u);
  EXPECT_EQ(pre.sync_fallback_reads, 0u);
  EXPECT_LE(pre.prefetch_hits + pre.prefetch_wasted, pre.prefetch_issued);
  const std::string backend = pre_store.io_backend_name();
  EXPECT_TRUE(backend == "uring" || backend == "threads") << backend;

  // ReadRange rides the same prefetcher and matches too.
  RRCollection loaded(g.num_nodes());
  std::vector<uint64_t> loaded_edges;
  ASSERT_TRUE(pre_store.ReadRange(0, 64, &loaded, &loaded_edges).ok());
  EXPECT_EQ(loaded_edges, edges);
  ExpectEqualSets(rr, loaded, 0, 0, 64);
}

TEST(RRSpillStoreTest, FailingPrefetchDegradesToSyncBitIdentically) {
  const Graph g = MakeWcPowerLaw(80, 3, 53);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 64, &rr, &edges);

  TempSpillDir dir;
  RRSpillOptions options = SpillOpts(dir, 8);
  options.tuning.readahead_chunks = 2;
  options.reader_factory = [](const AsyncIoOptions&) {
    return std::make_unique<FailingReader>();
  };
  RRSpillStore store(g.num_nodes(), options);
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 64, 0).ok());

  // Every prefetch fails; every chunk is silently re-read synchronously
  // and the replay output is still bit-identical to the originals.
  ExpectReplayMatches(&store, rr, 64);
  const RRSpillStats stats = store.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_EQ(stats.prefetch_hits, 0u);
  EXPECT_GT(stats.sync_fallback_reads, 0u);
  EXPECT_GE(stats.prefetch_wasted, stats.sync_fallback_reads)
      << "every failed prefetch is accounted as wasted";
  EXPECT_EQ(store.io_backend_name(), "failing");

  // ReadRange degrades identically.
  RRCollection loaded(g.num_nodes());
  std::vector<uint64_t> loaded_edges;
  ASSERT_TRUE(store.ReadRange(0, 64, &loaded, &loaded_edges).ok());
  EXPECT_EQ(loaded_edges, edges);
  ExpectEqualSets(rr, loaded, 0, 0, 64);
}

TEST(RRSpillStoreTest, SlowPrefetchReaderStaysBitIdentical) {
  const Graph g = MakeWcPowerLaw(80, 3, 59);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 48, &rr, &edges);

  TempSpillDir dir;
  RRSpillOptions options = SpillOpts(dir, 8);  // 6 chunks
  options.tuning.readahead_chunks = 2;
  options.reader_factory = [](const AsyncIoOptions&) {
    return std::make_unique<SlowReader>();
  };
  RRSpillStore store(g.num_nodes(), options);
  ASSERT_TRUE(store.SpillRange(rr, edges, 0, 48, 0).ok());

  // Slow completions must never be consumed early or partially: Wait
  // blocks until the bytes are whole, so the replay matches exactly.
  ExpectReplayMatches(&store, rr, 48);
  const RRSpillStats stats = store.stats();
  EXPECT_GT(stats.prefetch_issued, 0u);
  EXPECT_GT(stats.prefetch_hits, 0u);
  EXPECT_EQ(stats.sync_fallback_reads, 0u);
}

TEST(RRSpillStoreTest, EmptyEdgeSpanRecordsZeros) {
  const Graph g = MakeWcPowerLaw(60, 3, 29);
  RRCollection rr(g.num_nodes());
  std::vector<uint64_t> edges;
  Sample(g, 5, 10, &rr, &edges);

  TempSpillDir dir;
  RRSpillStore store(g.num_nodes(), SpillOpts(dir));
  ASSERT_TRUE(store.SpillRange(rr, {}, 0, 10, 0).ok());

  RRCollection out(g.num_nodes());
  std::vector<uint64_t> out_edges;
  ASSERT_TRUE(store.ReadRange(0, 10, &out, &out_edges).ok());
  ExpectEqualSets(rr, out, 0, 0, 10);
  EXPECT_EQ(out_edges, std::vector<uint64_t>(10, 0));
}

// ---- solver sweep: budgets × backends, spill on -----------------------

SampleBackendSpec Procs(unsigned workers) {
  SampleBackendSpec spec;
  spec.kind = SampleBackendKind::kProcessShards;
  spec.num_workers = workers;
  return spec;
}

SolverResult RunRegistry(const Graph& graph, const std::string& algo,
                         size_t memory_budget, const std::string& spill_dir,
                         const SampleBackendSpec& backend) {
  std::unique_ptr<InfluenceSolver> solver;
  Status s = SolverRegistry::Global().Create(algo, graph, &solver);
  EXPECT_TRUE(s.ok()) << s.ToString();
  SolverOptions options;
  options.k = 4;
  options.epsilon = 0.3;
  options.seed = 1234;
  options.memory_budget_bytes = memory_budget;
  options.spill_dir = spill_dir;
  options.ris_tau_scale = 0.05;
  options.ris_max_sets = 200000;
  options.sample_backend = backend;
  SolverResult result;
  s = solver->Run(options, &result);
  EXPECT_TRUE(s.ok()) << algo << ": " << s.ToString();
  return result;
}

TEST(SpillSolverSweepTest, BudgetedSpilledRunsAreBitIdenticalEverywhere) {
  const Graph graph = MakeWcPowerLaw(250, 3, 17);
  TempSpillDir dir;

  for (const char* algo : {"tim", "tim+", "imm", "ris"}) {
    SCOPED_TRACE(algo);
    // Ground truth: unbudgeted, local, no spill.
    const SolverResult baseline = RunRegistry(graph, algo, 0, "", {});
    // RIS reports no rr_data_bytes (its collection is transient under the
    // cost loop); a fixed basis still trips its budget at /8 and /2.
    const auto data_bytes = static_cast<size_t>(
        baseline.Metric("rr_data_bytes", 512.0 * 1024.0));
    ASSERT_GT(data_bytes, 0u);

    // tiny and mid budgets trip; ∞ (0) must leave the spill tier idle.
    for (size_t budget : {data_bytes / 8, data_bytes / 2, size_t{0}}) {
      SCOPED_TRACE(budget);
      for (bool procs : {false, true}) {
        SCOPED_TRACE(procs ? "procs:2" : "local");
        const SolverResult run = RunRegistry(
            graph, algo, budget, dir.path(),
            procs ? Procs(2) : SampleBackendSpec{});
        EXPECT_EQ(run.seeds, baseline.seeds);
        EXPECT_EQ(run.estimated_spread, baseline.estimated_spread);
        for (const auto& [name, value] : baseline.metrics) {
          if (name == "rr_memory_bytes" || name.rfind("seconds", 0) == 0 ||
              name == "hit_memory_budget" || name == "rr_sets_retained" ||
              name == "rr_data_bytes" || name == "regeneration_passes") {
            continue;  // legitimately budget-dependent
          }
          EXPECT_EQ(value, run.Metric(name, -1.0)) << name;
        }
        if (budget != 0 && run.Metric("hit_memory_budget") != 0.0) {
          // The whole point of the spill tier: replay beats regeneration.
          EXPECT_EQ(run.Metric("regeneration_passes"), 0.0);
          EXPECT_GT(run.Metric("rr_sets_spilled"), 0.0);
          EXPECT_GT(run.Metric("sets_spill_read"), 0.0);
          EXPECT_GT(run.Metric("spill_bytes_written"), 0.0);
        }
        if (budget == 0) {
          EXPECT_EQ(run.Metric("hit_memory_budget"), 0.0);
          EXPECT_EQ(run.Metric("rr_sets_spilled"), 0.0);
        }
      }
    }
  }
}

// ---- serving: evict-spill-preload -------------------------------------

TEST(ServingSpillTest, EvictedStreamPreloadsFromDiskBitIdentically) {
  const Graph graph = MakeWcPowerLaw(150, 3, 31);
  TempSpillDir dir;

  GraphContext context{Graph(graph)};
  context.set_spill_dir(dir.path());
  StreamKey key;
  key.seed = 99;

  // Materialize a prefix, snapshot its bytes, evict it through a budget
  // far below its footprint (spilling on the way out).
  RRCollection first_read(graph.num_nodes());
  {
    std::shared_ptr<SharedRRCache> cache = context.AcquireStream(key);
    cache->Read(0, 600, &first_read);
    EXPECT_EQ(cache->total_sets_spill_loaded(), 0u);
    context.set_cache_budget_bytes(1);
    EXPECT_EQ(context.EnforceCacheBudget(), 1u);
  }
  EXPECT_EQ(context.NumStreams(), 0u);

  // Reacquiring the key rebuilds the stream FROM DISK: the preload
  // counter moves and the bytes match the first materialization.
  std::shared_ptr<SharedRRCache> reborn = context.AcquireStream(key);
  RRCollection second_read(graph.num_nodes());
  reborn->Read(0, 600, &second_read);
  EXPECT_EQ(reborn->total_sets_spill_loaded(), 600u)
      << "the evicted prefix should come back from the spill store";
  EXPECT_EQ(reborn->total_sets_sampled(), 0u);
  EXPECT_EQ(context.TotalSetsSpillLoaded(), 600u);
  ASSERT_EQ(second_read.num_sets(), first_read.num_sets());
  ExpectEqualSets(first_read, second_read, 0, 0, 600);

  // And growth past the spilled prefix continues seamlessly: fresh
  // samples start exactly where the disk image ends.
  RRCollection longer(graph.num_nodes());
  reborn->Read(0, 700, &longer);
  SamplingEngine reference(graph, testing::IcSampling(99));
  RRCollection expect(graph.num_nodes());
  reference.SampleInto(&expect, 700);
  ExpectEqualSets(expect, longer, 0, 0, 700);
}

TEST(ServingSpillTest, EngineWithSpillServesIdenticalResponses) {
  const Graph graph = MakeWcPowerLaw(150, 3, 37);

  ImRequest request;
  request.graph = "g";
  request.algo = "tim+";
  request.k = 4;
  request.epsilon = 0.3;
  request.seed = 7;

  // Reference: unconstrained engine, no spill.
  ServingOptions plain;
  ServingEngine reference(plain);
  ASSERT_TRUE(reference.RegisterGraph("g", Graph(graph)).ok());
  const ImResponse expected = reference.Solve(request);
  ASSERT_TRUE(expected.status.ok()) << expected.status.ToString();

  // Spill engine: a cache budget of one byte evicts (and spills) the
  // stream after every request, so the second request preloads from disk.
  TempSpillDir dir;
  ServingOptions options;
  options.shared_cache_budget_bytes = 1;
  options.spill_dir = dir.path();
  ServingEngine serving(options);
  ASSERT_TRUE(serving.RegisterGraph("g", Graph(graph)).ok());

  const ImResponse cold = serving.Solve(request);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_EQ(cold.result.seeds, expected.result.seeds);

  const ImResponse warm = serving.Solve(request);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_EQ(warm.result.seeds, expected.result.seeds);
  EXPECT_EQ(warm.result.estimated_spread, expected.result.estimated_spread);

  GraphContext* context = serving.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_GT(context->TotalSetsSpillLoaded(), 0u)
      << "the warm request should restore the stream from disk";
}

}  // namespace
}  // namespace timpp
