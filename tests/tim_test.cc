// End-to-end tests of TIM and TIM+ (core/tim.h): option validation,
// determinism, stats plumbing, and — the headline — the (1-1/e-ε)
// approximation guarantee checked against exhaustive optima under both IC
// and LT, plus the general triggering-model path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/tim.h"
#include "diffusion/exact_spread.h"
#include "diffusion/triggering.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::MakeChain;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

TimOptions SmallOptions(int k, DiffusionModel model = DiffusionModel::kIC) {
  TimOptions options;
  options.k = k;
  options.epsilon = 0.3;
  options.ell = 1.0;
  options.model = model;
  options.seed = 7777;
  return options;
}

// ------------------------------------------------------------ validation --

TEST(TimValidationTest, RejectsEmptyGraph) {
  Graph g;
  TimSolver solver(g);
  TimResult result;
  EXPECT_TRUE(solver.Run(SmallOptions(1), &result).IsInvalidArgument());
}

TEST(TimValidationTest, RejectsBadK) {
  Graph g = MakeChain(5, 0.5f);
  TimSolver solver(g);
  TimResult result;
  EXPECT_TRUE(solver.Run(SmallOptions(0), &result).IsInvalidArgument());
  EXPECT_TRUE(solver.Run(SmallOptions(-3), &result).IsInvalidArgument());
  EXPECT_TRUE(solver.Run(SmallOptions(6), &result).IsInvalidArgument());
}

TEST(TimValidationTest, RejectsBadEpsilon) {
  Graph g = MakeChain(5, 0.5f);
  TimSolver solver(g);
  TimResult result;
  TimOptions options = SmallOptions(1);
  options.epsilon = 0.0;
  EXPECT_TRUE(solver.Run(options, &result).IsInvalidArgument());
  options.epsilon = 1.5;
  EXPECT_TRUE(solver.Run(options, &result).IsInvalidArgument());
  options.epsilon = -0.1;
  EXPECT_TRUE(solver.Run(options, &result).IsInvalidArgument());
}

TEST(TimValidationTest, RejectsBadEll) {
  Graph g = MakeChain(5, 0.5f);
  TimSolver solver(g);
  TimResult result;
  TimOptions options = SmallOptions(1);
  options.ell = 0.0;
  EXPECT_TRUE(solver.Run(options, &result).IsInvalidArgument());
}

TEST(TimValidationTest, TriggeringModelRequiresCustomModel) {
  Graph g = MakeChain(5, 0.5f);
  TimSolver solver(g);
  TimResult result;
  TimOptions options = SmallOptions(1, DiffusionModel::kTriggering);
  EXPECT_TRUE(solver.Run(options, &result).IsInvalidArgument());
}

// --------------------------------------------------------- basic results --

TEST(TimTest, ReturnsKDistinctSeeds) {
  Graph g = MakeTwoCommunities(0.4f);
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(SmallOptions(3), &result).ok());
  EXPECT_EQ(result.seeds.size(), 3u);
  std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), 3u);
  for (NodeId s : result.seeds) EXPECT_LT(s, g.num_nodes());
}

TEST(TimTest, DeterministicGivenSeed) {
  Graph g = MakeTwoCommunities(0.4f);
  TimSolver solver(g);
  TimResult a, b;
  ASSERT_TRUE(solver.Run(SmallOptions(2), &a).ok());
  ASSERT_TRUE(solver.Run(SmallOptions(2), &b).ok());
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_DOUBLE_EQ(a.stats.kpt_star, b.stats.kpt_star);
  EXPECT_EQ(a.stats.theta, b.stats.theta);
}

TEST(TimTest, DifferentSeedsMayDifferButStayValid) {
  Graph g = MakeTwoCommunities(0.4f);
  TimSolver solver(g);
  TimOptions options = SmallOptions(2);
  options.seed = 1;
  TimResult a;
  ASSERT_TRUE(solver.Run(options, &a).ok());
  options.seed = 2;
  TimResult b;
  ASSERT_TRUE(solver.Run(options, &b).ok());
  EXPECT_EQ(a.seeds.size(), b.seeds.size());
}

TEST(TimTest, StatsAreInternallyConsistent) {
  Graph g = MakeTwoCommunities(0.4f);
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(SmallOptions(2), &result).ok());
  const TimStats& s = result.stats;
  EXPECT_GT(s.lambda, 0.0);
  EXPECT_GT(s.kpt_star, 0.0);
  EXPECT_GE(s.kpt_plus, s.kpt_star);
  // θ = ceil(λ / KPT+).
  EXPECT_EQ(s.theta, static_cast<uint64_t>(std::ceil(s.lambda / s.kpt_plus)));
  EXPECT_GT(s.rr_sets_kpt, 0u);
  EXPECT_GE(s.seconds_total, 0.0);
  EXPECT_GT(s.rr_memory_bytes, 0u);
  EXPECT_GT(s.estimated_spread, 0.0);
  EXPECT_LE(s.estimated_spread, g.num_nodes());
  // ℓ was adjusted upward for the union bound.
  EXPECT_GT(s.ell_used, 1.0);
}

TEST(TimTest, PlainTimSkipsRefinement) {
  Graph g = MakeTwoCommunities(0.4f);
  TimSolver solver(g);
  TimOptions options = SmallOptions(2);
  options.use_refinement = false;
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.stats.theta_prime, 0u);
  EXPECT_DOUBLE_EQ(result.stats.kpt_plus, result.stats.kpt_star);
  EXPECT_DOUBLE_EQ(result.stats.seconds_kpt_refinement, 0.0);
}

TEST(TimTest, TimPlusThetaNeverLargerThanTims) {
  Graph g = MakeOutStar(128, 0.8f);
  TimSolver solver(g);
  TimOptions tim = SmallOptions(1);
  tim.use_refinement = false;
  tim.adjust_ell = false;  // equalize λ between the two runs
  TimOptions tim_plus = tim;
  tim_plus.use_refinement = true;
  TimResult r_tim, r_plus;
  ASSERT_TRUE(solver.Run(tim, &r_tim).ok());
  ASSERT_TRUE(solver.Run(tim_plus, &r_plus).ok());
  EXPECT_LE(r_plus.stats.theta, r_tim.stats.theta)
      << "KPT+ >= KPT* must shrink θ";
}

// ------------------------------------------------- approximation quality --

// The paper's guarantee is probabilistic ((1-1/e-ε) with prob 1-n^-ℓ); on
// these tiny graphs the guarantee holds deterministically for the fixed
// seeds used here, and exact oracles let us verify it outright.
TEST(TimQualityTest, MeetsGuaranteeOnTwoCommunitiesIC) {
  Graph g = MakeTwoCommunities(0.35f);
  for (int k : {1, 2, 3}) {
    double opt = 0;
    std::vector<NodeId> opt_seeds;
    ASSERT_TRUE(BruteForceOptimalIC(g, k, &opt_seeds, &opt).ok());

    TimSolver solver(g);
    TimResult result;
    ASSERT_TRUE(solver.Run(SmallOptions(k), &result).ok());
    double spread = 0;
    ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &spread).ok());
    EXPECT_GE(spread, (1.0 - 1.0 / std::exp(1.0) - 0.3) * opt)
        << "k=" << k << " spread=" << spread << " opt=" << opt;
    // In practice TIM+ is near-optimal on graphs this small.
    EXPECT_GE(spread, 0.9 * opt) << "k=" << k;
  }
}

TEST(TimQualityTest, MeetsGuaranteeOnStarIC) {
  Graph g = MakeOutStar(10, 0.5f);
  double opt = 0;
  std::vector<NodeId> opt_seeds;
  ASSERT_TRUE(BruteForceOptimalIC(g, 1, &opt_seeds, &opt).ok());

  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(SmallOptions(1), &result).ok());
  EXPECT_EQ(result.seeds[0], 0u) << "the hub is the unique optimum";
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &spread).ok());
  EXPECT_NEAR(spread, opt, 1e-9);
}

TEST(TimQualityTest, MeetsGuaranteeUnderLT) {
  Graph g = testing::MakeGraph(6, {{0, 1, 0.8f},
                                   {1, 2, 0.8f},
                                   {0, 3, 0.4f},
                                   {3, 4, 0.9f},
                                   {4, 5, 0.9f},
                                   {2, 5, 0.1f}});
  for (int k : {1, 2}) {
    double opt = 0;
    std::vector<NodeId> opt_seeds;
    ASSERT_TRUE(BruteForceOptimalLT(g, k, &opt_seeds, &opt).ok());

    TimSolver solver(g);
    TimResult result;
    ASSERT_TRUE(solver.Run(SmallOptions(k, DiffusionModel::kLT), &result).ok());
    double spread = 0;
    ASSERT_TRUE(ExactSpreadLT(g, result.seeds, &spread).ok());
    EXPECT_GE(spread, (1.0 - 1.0 / std::exp(1.0) - 0.3) * opt)
        << "k=" << k << " spread=" << spread << " opt=" << opt;
  }
}

TEST(TimQualityTest, CustomTriggeringModelMatchesIcResult) {
  // Running TIM with IC-as-triggering must select seeds of the same
  // quality as the native IC path (not necessarily identical sets, since
  // RNG streams differ).
  Graph g = MakeTwoCommunities(0.35f);
  IcTriggeringModel model;
  TimSolver solver(g);

  TimOptions native = SmallOptions(2);
  TimResult native_result;
  ASSERT_TRUE(solver.Run(native, &native_result).ok());

  TimOptions triggering = SmallOptions(2, DiffusionModel::kTriggering);
  triggering.custom_model = &model;
  TimResult trig_result;
  ASSERT_TRUE(solver.Run(triggering, &trig_result).ok());

  double native_spread = 0, trig_spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, native_result.seeds, &native_spread).ok());
  ASSERT_TRUE(ExactSpreadIC(g, trig_result.seeds, &trig_spread).ok());
  EXPECT_NEAR(native_spread, trig_spread, 0.15 * native_spread);
}

TEST(TimQualityTest, EstimatedSpreadTracksExactSpread) {
  // Corollary 1 consequence: the solver's n·F_R(S) estimate should land
  // near the exact spread of the returned set.
  Graph g = MakeTwoCommunities(0.35f);
  TimSolver solver(g);
  TimResult result;
  ASSERT_TRUE(solver.Run(SmallOptions(2), &result).ok());
  double exact = 0;
  ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &exact).ok());
  EXPECT_NEAR(result.stats.estimated_spread, exact, 0.15 * exact + 0.2);
}

// Parameterized ε sweep: tightening ε must not break anything and must
// increase θ (more RR sets for more accuracy).
class TimEpsilonSweep : public ::testing::TestWithParam<double> {};

TEST_P(TimEpsilonSweep, RunsAndThetaScalesInverseSquared) {
  Graph g = MakeTwoCommunities(0.35f);
  TimSolver solver(g);
  TimOptions options = SmallOptions(2);
  options.epsilon = GetParam();
  TimResult result;
  ASSERT_TRUE(solver.Run(options, &result).ok());
  EXPECT_EQ(result.seeds.size(), 2u);

  if (GetParam() <= 0.5) {
    TimOptions looser = options;
    looser.epsilon = GetParam() * 2.0;
    TimResult loose_result;
    ASSERT_TRUE(solver.Run(looser, &loose_result).ok());
    EXPECT_GT(result.stats.theta, loose_result.stats.theta)
        << "halving ε must increase θ";
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, TimEpsilonSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 1.0));

// Parameterized k sweep on a mid-size synthetic graph: structural checks
// that hold for any k.
class TimKSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimKSweep, SeedsDistinctAndSpreadMonotonicInK) {
  Graph g = MakeTwoCommunities(0.35f);
  TimSolver solver(g);
  TimResult result;
  TimOptions options = SmallOptions(GetParam());
  ASSERT_TRUE(solver.Run(options, &result).ok());
  std::set<NodeId> distinct(result.seeds.begin(), result.seeds.end());
  EXPECT_EQ(distinct.size(), result.seeds.size());

  if (GetParam() > 1) {
    TimOptions smaller = options;
    smaller.k = GetParam() - 1;
    TimResult prev;
    ASSERT_TRUE(solver.Run(smaller, &prev).ok());
    double spread_k = 0, spread_prev = 0;
    ASSERT_TRUE(ExactSpreadIC(g, result.seeds, &spread_k).ok());
    ASSERT_TRUE(ExactSpreadIC(g, prev.seeds, &spread_prev).ok());
    EXPECT_GE(spread_k, spread_prev - 0.05)
        << "spread must not decrease when k grows";
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TimKSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace timpp
