// Tests of the request-serving layer: batch results must be bit-identical
// to standalone solver runs while sampling strictly fewer RR sets (the
// cross-request reuse contract), deterministic across thread counts and
// submission patterns, and the KPT/LB phase cache must hit only on exact
// key matches (sampler mode / model changes are different streams).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/phase_cache.h"
#include "engine/solver_registry.h"
#include "serving/graph_context.h"
#include "serving/rr_cache.h"
#include "serving/serving_engine.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

using testing::IcSampling;
using testing::MakeTwoCommunities;
using testing::MakeWcPowerLaw;

// Runs `request` through a fresh standalone registry solver on `graph`
// (same thread count as the serving engine under test) and returns the
// result.
SolverResult SolveStandalone(const Graph& graph, const ImRequest& request,
                             unsigned num_threads) {
  std::unique_ptr<InfluenceSolver> solver;
  Status s = SolverRegistry::Global().Create(request.algo, graph, &solver);
  EXPECT_TRUE(s.ok()) << s.ToString();
  SolverOptions options;
  options.k = request.k;
  options.epsilon = request.epsilon;
  options.ell = request.ell;
  options.model = request.model;
  options.sampler_mode = request.sampler_mode;
  options.max_hops = request.max_hops;
  options.seed = request.seed;
  options.memory_budget_bytes = request.memory_budget_bytes;
  options.mc_samples = request.mc_samples;
  options.ris_tau_scale = request.ris_tau_scale;
  options.ris_max_sets = request.ris_max_sets;
  options.num_threads = num_threads;
  SolverResult result;
  s = solver->Run(options, &result);
  EXPECT_TRUE(s.ok()) << request.algo << ": " << s.ToString();
  return result;
}

// The mixed workload used across these tests: same graph/seed, varying
// algorithm, k and ε — the shape a production queue would have.
std::vector<ImRequest> MixedBatch(const std::string& graph) {
  std::vector<ImRequest> requests;
  const auto add = [&](const std::string& algo, int k, double eps) {
    ImRequest r;
    r.graph = graph;
    r.algo = algo;
    r.k = k;
    r.epsilon = eps;
    r.seed = 2024;
    requests.push_back(r);
  };
  add("tim+", 3, 0.4);
  add("tim+", 3, 0.3);  // same KPT key, larger θ: pure prefix extension
  add("tim", 2, 0.4);
  add("imm", 3, 0.4);
  add("imm", 3, 0.4);  // exact repeat: full LB-cache hit
  requests.push_back([&] {
    ImRequest r;
    r.graph = graph;
    r.algo = "ris";
    r.k = 2;
    r.epsilon = 0.5;
    r.seed = 2024;
    r.ris_tau_scale = 0.05;
    r.ris_max_sets = 50000;
    return r;
  }());
  return requests;
}

// ------------------------------------------- batch vs standalone ---------

TEST(ServingEngineTest, BatchIsBitIdenticalToStandaloneAndSamplesLess) {
  Graph g = MakeWcPowerLaw(250, 4, 77);
  ServingEngine serving(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(serving.RegisterGraph("g", g).ok());

  const std::vector<ImRequest> requests = MixedBatch("g");
  const std::vector<ImResponse> responses = serving.SolveBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());

  uint64_t total_reused = 0;
  uint64_t total_sampled = 0;
  uint64_t total_served = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << requests[i].algo << ": " << responses[i].status.ToString();
    const SolverResult standalone =
        SolveStandalone(g, requests[i], /*num_threads=*/2);
    // The acceptance bar: bit-identical seeds plus the per-request scale
    // parameters (θ, LB, KPT) a standalone run derives.
    EXPECT_EQ(standalone.seeds, responses[i].result.seeds)
        << "request " << i << " (" << requests[i].algo << ")";
    EXPECT_DOUBLE_EQ(standalone.estimated_spread,
                     responses[i].result.estimated_spread)
        << "request " << i;
    for (const char* metric :
         {"theta", "lb", "kpt_star", "kpt_plus", "rr_sets_kpt",
          "rr_sets_sampling", "rr_sets_generated", "cost_examined",
          "edges_examined"}) {
      EXPECT_DOUBLE_EQ(standalone.Metric(metric),
                       responses[i].result.Metric(metric))
          << "request " << i << " metric " << metric;
    }
    total_reused += responses[i].rr_sets_reused;
    total_sampled += responses[i].rr_sets_sampled;
    total_served +=
        responses[i].rr_sets_reused + responses[i].rr_sets_sampled;
  }

  // Reuse must actually have happened: a standalone execution of the
  // batch samples every served set itself, the context samples only the
  // longest needed prefix once.
  EXPECT_GT(total_reused, 0u);
  EXPECT_LT(total_sampled, total_served);

  GraphContext* context = serving.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->TotalSetsReused(), total_reused);
  EXPECT_LT(context->TotalSetsSampled(), context->TotalSetsServed());
  EXPECT_GT(context->SharedMemoryBytes(), 0u);
  // Everything here shares one (model, sampler, seed) stream.
  EXPECT_EQ(context->NumStreams(), 1u);
}

TEST(ServingEngineTest, ExactRepeatSamplesNothingNew) {
  Graph g = MakeTwoCommunities(0.35f);
  ServingEngine serving(ServingOptions{.num_threads = 1});
  ASSERT_TRUE(serving.RegisterGraph("g", g).ok());

  ImRequest request;
  request.graph = "g";
  request.algo = "tim+";
  request.k = 3;
  request.epsilon = 0.3;
  request.seed = 99;

  const ImResponse first = serving.Solve(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.phase_cache_hit);
  EXPECT_GT(first.rr_sets_sampled, 0u);

  const ImResponse second = serving.Solve(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.phase_cache_hit);
  EXPECT_EQ(second.rr_sets_sampled, 0u) << "a repeat consumes only cache";
  EXPECT_GT(second.rr_sets_reused, 0u);
  EXPECT_EQ(first.result.seeds, second.result.seeds);
  EXPECT_DOUBLE_EQ(first.result.Metric("theta"),
                   second.result.Metric("theta"));
  EXPECT_EQ(second.result.Metric("kpt_cache_hit"), 1.0);
}

// ------------------------------------------- determinism ----------------

TEST(ServingEngineTest, BatchDeterministicAcrossThreadCounts) {
  Graph g = MakeWcPowerLaw(200, 4, 31);
  const std::vector<ImRequest> requests = MixedBatch("g");

  std::vector<ImResponse> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    ServingEngine serving(ServingOptions{.num_threads = threads});
    ASSERT_TRUE(serving.RegisterGraph("g", g).ok());
    std::vector<ImResponse> responses = serving.SolveBatch(requests);
    if (threads == 1) {
      reference = std::move(responses);
      continue;
    }
    ASSERT_EQ(responses.size(), reference.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok());
      EXPECT_EQ(reference[i].result.seeds, responses[i].result.seeds)
          << "threads=" << threads << " request " << i;
      EXPECT_DOUBLE_EQ(reference[i].result.Metric("theta"),
                       responses[i].result.Metric("theta"));
      EXPECT_DOUBLE_EQ(reference[i].result.Metric("lb"),
                       responses[i].result.Metric("lb"));
      // Reuse accounting is part of the determinism contract too: the
      // cache is a monotone prefix, so who-sampled-what is fixed by the
      // request order, not by parallelism.
      EXPECT_EQ(reference[i].rr_sets_reused, responses[i].rr_sets_reused)
          << "threads=" << threads << " request " << i;
      EXPECT_EQ(reference[i].rr_sets_sampled, responses[i].rr_sets_sampled)
          << "threads=" << threads << " request " << i;
    }
  }
}

TEST(ServingEngineTest, SubmissionPatternDoesNotChangeResults) {
  // One-by-one Solve calls and one SolveBatch must produce identical
  // responses: the cache is a monotone stream prefix, so the grouping of
  // submissions is invisible to results.
  Graph g = MakeTwoCommunities(0.35f);
  const std::vector<ImRequest> requests = MixedBatch("g");

  ServingEngine batched(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(batched.RegisterGraph("g", g).ok());
  const std::vector<ImResponse> batch = batched.SolveBatch(requests);

  ServingEngine single(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(single.RegisterGraph("g", g).ok());
  for (size_t i = 0; i < requests.size(); ++i) {
    const ImResponse response = single.Solve(requests[i]);
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(batch[i].result.seeds, response.result.seeds) << i;
    EXPECT_EQ(batch[i].rr_sets_reused, response.rr_sets_reused) << i;
    EXPECT_EQ(batch[i].rr_sets_sampled, response.rr_sets_sampled) << i;
  }
}

// ------------------------------------------- phase-cache keying ----------

TEST(ServingEngineTest, PhaseCacheMissesWhenSamplerModeOrModelChanges) {
  Graph g = MakeWcPowerLaw(200, 4, 55);
  ServingEngine serving(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(serving.RegisterGraph("g", g).ok());

  ImRequest request;
  request.graph = "g";
  request.algo = "tim+";
  request.k = 3;
  request.epsilon = 0.4;
  request.seed = 11;
  request.sampler_mode = SamplerMode::kPerArc;

  const ImResponse perarc = serving.Solve(request);
  ASSERT_TRUE(perarc.status.ok());
  EXPECT_FALSE(perarc.phase_cache_hit);
  EXPECT_TRUE(serving.Solve(request).phase_cache_hit) << "warm repeat";

  // Different sampler mode: a different RR stream — the memo must miss,
  // and the result must match ITS standalone run, not the per-arc one.
  request.sampler_mode = SamplerMode::kSkip;
  const ImResponse skip = serving.Solve(request);
  ASSERT_TRUE(skip.status.ok());
  EXPECT_FALSE(skip.phase_cache_hit)
      << "sampler-mode change must invalidate the KPT memo";
  EXPECT_EQ(SolveStandalone(g, request, 2).seeds, skip.result.seeds);

  // Different diffusion model: same story.
  request.sampler_mode = SamplerMode::kPerArc;
  request.model = DiffusionModel::kLT;
  const ImResponse lt = serving.Solve(request);
  ASSERT_TRUE(lt.status.ok());
  EXPECT_FALSE(lt.phase_cache_hit)
      << "model change must invalidate the KPT memo";
  EXPECT_EQ(SolveStandalone(g, request, 2).seeds, lt.result.seeds);

  GraphContext* context = serving.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->NumStreams(), 3u)
      << "per-arc IC, skip IC and per-arc LT are three distinct streams";
}

// ------------------------------------------- edges of the surface --------

TEST(ServingEngineTest, BudgetedRequestRunsStandaloneButMatches) {
  Graph g = MakeWcPowerLaw(200, 4, 13);
  ServingEngine serving(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(serving.RegisterGraph("g", g).ok());

  ImRequest request;
  request.graph = "g";
  request.algo = "tim+";
  request.k = 3;
  request.epsilon = 0.4;
  request.seed = 5;

  const ImResponse unbudgeted = serving.Solve(request);
  ASSERT_TRUE(unbudgeted.status.ok());

  request.memory_budget_bytes = 16 * 1024;
  const ImResponse budgeted = serving.Solve(request);
  ASSERT_TRUE(budgeted.status.ok());
  // No shared-collection participation...
  EXPECT_EQ(budgeted.rr_sets_reused, 0u);
  EXPECT_EQ(budgeted.rr_sets_sampled, 0u);
  EXPECT_FALSE(budgeted.phase_cache_hit);
  // ...but the same seeds (budgeted selection is bit-identical).
  EXPECT_EQ(unbudgeted.result.seeds, budgeted.result.seeds);
}

TEST(ServingEngineTest, NonRrSolversPassThrough) {
  Graph g = MakeTwoCommunities(0.3f);
  ServingEngine serving;
  ASSERT_TRUE(serving.RegisterGraph("g", g).ok());

  ImRequest request;
  request.graph = "g";
  request.algo = "degree";
  request.k = 2;
  const ImResponse response = serving.Solve(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.result.seeds.size(), 2u);
  EXPECT_EQ(response.rr_sets_reused, 0u);
  EXPECT_EQ(response.rr_sets_sampled, 0u);

  GraphContext* context = serving.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_EQ(context->NumStreams(), 0u)
      << "heuristics must not force stream caches into existence";
}

TEST(ServingEngineTest, UnknownGraphAndAlgoAreNotFound) {
  Graph g = MakeTwoCommunities(0.3f);
  ServingEngine serving;
  ASSERT_TRUE(serving.RegisterGraph("g", g).ok());
  EXPECT_TRUE(serving.RegisterGraph("g", g).IsInvalidArgument());

  ImRequest request;
  request.graph = "nope";
  EXPECT_TRUE(serving.Solve(request).status.IsNotFound());

  request.graph = "g";
  request.algo = "no-such-algo";
  EXPECT_TRUE(serving.Solve(request).status.IsNotFound());
}

TEST(ServingEngineTest, MultiGraphBatchKeepsRequestOrder) {
  Graph a = MakeTwoCommunities(0.35f);
  Graph b = MakeWcPowerLaw(150, 3, 8);
  ServingEngine serving(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(serving.RegisterGraph("a", a).ok());
  ASSERT_TRUE(serving.RegisterGraph("b", b).ok());

  std::vector<ImRequest> requests;
  for (const char* graph : {"a", "b", "a", "b"}) {
    ImRequest r;
    r.graph = graph;
    r.algo = "tim+";
    r.k = 2;
    r.epsilon = 0.4;
    r.seed = 3;
    requests.push_back(r);
  }
  const std::vector<ImResponse> responses = serving.SolveBatch(requests);
  ASSERT_EQ(responses.size(), 4u);
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok()) << i;
    const Graph& graph = requests[i].graph == "a" ? a : b;
    EXPECT_EQ(SolveStandalone(graph, requests[i], 2).seeds,
              responses[i].result.seeds)
        << i;
  }
  // Same graph + options ⇒ the repeat requests were pure cache reads.
  EXPECT_EQ(responses[2].rr_sets_sampled, 0u);
  EXPECT_EQ(responses[3].rr_sets_sampled, 0u);
}

// ------------------------------------------- cache-layer units ----------

TEST(SharedRRCacheTest, ReadsAreByteIdenticalToAFreshEngine) {
  Graph g = MakeTwoCommunities(0.35f);
  SharedRRCache cache(g, IcSampling(42, 2));

  // Interleaved, overlapping reads...
  RRCollection first(g.num_nodes());
  cache.Read(0, 300, &first);
  RRCollection again(g.num_nodes());
  cache.Read(100, 500, &again);
  EXPECT_EQ(cache.total_sets_reused(), 200u);
  EXPECT_EQ(cache.cached_sets(), 600u);

  // ...must reproduce the standalone stream exactly.
  RRCollection reference(g.num_nodes());
  SamplingEngine engine(g, IcSampling(42, 1));
  engine.SampleInto(&reference, 600);
  ASSERT_EQ(first.num_sets(), 300u);
  for (size_t id = 0; id < first.num_sets(); ++id) {
    const auto got = first.Set(static_cast<RRSetId>(id));
    const auto want = reference.Set(static_cast<RRSetId>(id));
    ASSERT_EQ(got.size(), want.size()) << id;
    for (size_t j = 0; j < got.size(); ++j) EXPECT_EQ(got[j], want[j]);
  }
  for (size_t id = 0; id < again.num_sets(); ++id) {
    const auto got = again.Set(static_cast<RRSetId>(id));
    const auto want = reference.Set(static_cast<RRSetId>(100 + id));
    ASSERT_EQ(got.size(), want.size()) << id;
    for (size_t j = 0; j < got.size(); ++j) EXPECT_EQ(got[j], want[j]);
  }
}

// ------------------------------------------- cache eviction -------------

TEST(ServingEngineTest, ByteCappedContextReturnsBitIdenticalResults) {
  Graph g = MakeWcPowerLaw(250, 4, 77);
  Graph g2 = MakeWcPowerLaw(250, 4, 77);

  // Uncapped reference run.
  ServingEngine reference(ServingOptions{.num_threads = 2});
  ASSERT_TRUE(reference.RegisterGraph("g", std::move(g)).ok());
  // A batch whose requests use two different seeds = two streams, so LRU
  // eviction across streams has something to choose between.
  std::vector<ImRequest> requests = MixedBatch("g");
  for (size_t i = 0; i + 1 < requests.size(); i += 2) {
    requests[i].seed = 4242;
  }
  const std::vector<ImResponse> uncapped = reference.SolveBatch(requests);

  // Capped engine: a budget small enough that whole streams must be
  // evicted between requests.
  ServingOptions capped_options;
  capped_options.num_threads = 2;
  capped_options.shared_cache_budget_bytes = 256 * 1024;
  ServingEngine capped(capped_options);
  ASSERT_TRUE(capped.RegisterGraph("g", std::move(g2)).ok());
  const std::vector<ImResponse> capped_responses = capped.SolveBatch(requests);

  ASSERT_EQ(uncapped.size(), capped_responses.size());
  for (size_t i = 0; i < uncapped.size(); ++i) {
    ASSERT_TRUE(capped_responses[i].status.ok())
        << capped_responses[i].status.ToString();
    EXPECT_EQ(uncapped[i].result.seeds, capped_responses[i].result.seeds)
        << i;
    EXPECT_DOUBLE_EQ(uncapped[i].result.Metric("theta"),
                     capped_responses[i].result.Metric("theta"))
        << i;
  }

  GraphContext* context = capped.Context("g");
  ASSERT_NE(context, nullptr);
  EXPECT_LE(context->SharedMemoryBytes(), capped_options.shared_cache_budget_bytes);
  EXPECT_GT(context->StreamsEvicted(), 0u)
      << "budget was too large to exercise eviction";
  // Lifetime accounting survives evictions.
  GraphContext* uncapped_context = reference.Context("g");
  EXPECT_EQ(context->TotalSetsServed(), uncapped_context->TotalSetsServed());
}

TEST(GraphContextTest, LruEvictsTheStaleStreamFirst) {
  GraphContext context(MakeTwoCommunities(0.35f), 1);

  StreamKey old_key;
  old_key.seed = 1;
  StreamKey hot_key;
  hot_key.seed = 2;
  SharedRRCache& old_cache = context.CacheFor(old_key);
  RRCollection sink(context.graph().num_nodes());
  old_cache.Read(0, 400, &sink);
  SharedRRCache& hot_cache = context.CacheFor(hot_key);
  RRCollection sink2(context.graph().num_nodes());
  hot_cache.Read(0, 400, &sink2);
  ASSERT_EQ(context.NumStreams(), 2u);

  // Budget forces exactly one stream out: the least-recently-used (seed
  // 1; seed 2 was touched later).
  context.set_cache_budget_bytes(context.SharedMemoryBytes() -
                                 old_cache.MemoryBytes());
  EXPECT_EQ(context.EnforceCacheBudget(), 1u);
  EXPECT_EQ(context.NumStreams(), 1u);
  EXPECT_EQ(context.StreamsEvicted(), 1u);
  // Reads of the survivor still work; the evicted stream re-derives
  // from scratch with identical bytes on next use.
  RRCollection before(context.graph().num_nodes());
  context.CacheFor(hot_key);  // still resident: no resampling
  EXPECT_EQ(context.NumStreams(), 1u);
  SharedRRCache& revived = context.CacheFor(old_key);
  RRCollection after(context.graph().num_nodes());
  revived.Read(0, 400, &after);
  ASSERT_EQ(after.num_sets(), 400u);
  for (size_t id = 0; id < sink.num_sets(); ++id) {
    const auto a = sink.Set(static_cast<RRSetId>(id));
    const auto b = after.Set(static_cast<RRSetId>(id));
    ASSERT_EQ(a.size(), b.size()) << id;
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
  // Accounting kept the evicted stream's history.
  EXPECT_EQ(context.TotalSetsServed(), 1200u);
}

TEST(SharedRRCacheTest, CostReadMatchesEngineStopPoint) {
  Graph g = MakeTwoCommunities(0.35f);

  RRCollection reference(g.num_nodes());
  SamplingEngine engine(g, IcSampling(11, 1));
  const SampleBatch expected =
      engine.SampleUntilCost(&reference, /*cost_threshold=*/20000.0);

  SharedRRCache cache(g, IcSampling(11, 2));
  // Pre-warm part of the stream so the cost read crosses the
  // cached/uncached boundary mid-way.
  RRCollection warm(g.num_nodes());
  cache.Read(0, expected.sets_added / 2, &warm);

  RRCollection out(g.num_nodes());
  const SampleBatch batch = cache.ReadUntilCost(0, 20000.0, 0, &out);
  EXPECT_EQ(batch.sets_added, expected.sets_added);
  EXPECT_EQ(batch.traversal_cost, expected.traversal_cost);
  EXPECT_EQ(batch.edges_examined, expected.edges_examined);
  EXPECT_EQ(batch.sets_reused, expected.sets_added / 2);
}

}  // namespace
}  // namespace timpp
