// Tests for rrset/: samplers (IC, LT, triggering) and RRCollection,
// including the statistical lemmas that make RR sampling sound:
// Lemma 2 / Corollary 1 (coverage fraction is an unbiased spread
// estimator) and Lemma 4 ((n/m)·EPT = E[I({v*})]).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "diffusion/exact_spread.h"
#include "diffusion/spread_estimator.h"
#include "diffusion/triggering.h"
#include "gen/generators.h"
#include "graph/weight_models.h"
#include "rrset/lt_pick.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;
using testing::MakeChain;
using testing::MakeGraph;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

// ----------------------------------------------------------- IC sampling --

TEST(RRSamplerICTest, DeterministicChainCollectsAllAncestors) {
  Graph g = MakeChain(5, 1.0f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(1);
  std::vector<NodeId> rr;
  RRSampleInfo info = sampler.SampleForRoot(4, rng, &rr);
  std::set<NodeId> members(rr.begin(), rr.end());
  EXPECT_EQ(members, (std::set<NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(info.root, 4u);
}

TEST(RRSamplerICTest, ZeroProbabilityYieldsSingletonRoot) {
  Graph g = MakeChain(5, 0.0f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(1);
  std::vector<NodeId> rr;
  RRSampleInfo info = sampler.SampleForRoot(3, rng, &rr);
  EXPECT_EQ(rr, (std::vector<NodeId>{3}));
  EXPECT_EQ(info.edges_examined, 1u);  // 3's single in-edge was examined
}

TEST(RRSamplerICTest, SourceNodeHasEmptyInNeighborhood) {
  Graph g = MakeChain(5, 1.0f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(1);
  std::vector<NodeId> rr;
  RRSampleInfo info = sampler.SampleForRoot(0, rng, &rr);
  EXPECT_EQ(rr, (std::vector<NodeId>{0}));
  EXPECT_EQ(info.edges_examined, 0u);
}

TEST(RRSamplerICTest, WidthIsInDegreeSumOfMembers) {
  Graph g = MakeTwoCommunities(1.0f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(2);
  std::vector<NodeId> rr;
  for (int trial = 0; trial < 50; ++trial) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &rr);
    uint64_t expected_width = 0;
    for (NodeId v : rr) expected_width += g.InDegree(v);
    EXPECT_EQ(info.width, expected_width);
  }
}

TEST(RRSamplerICTest, MembersAreDistinct) {
  Graph g = MakeTwoCommunities(0.8f);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(3);
  std::vector<NodeId> rr;
  for (int trial = 0; trial < 200; ++trial) {
    sampler.SampleRandomRoot(rng, &rr);
    std::set<NodeId> members(rr.begin(), rr.end());
    EXPECT_EQ(members.size(), rr.size());
  }
}

TEST(RRSamplerICTest, MembershipProbabilityMatchesActivationProbability) {
  // Lemma 2 on a chain: P[0 ∈ RR(3)] must equal P[seed {0} activates 3]
  // = p³.
  const float p = 0.6f;
  Graph g = MakeChain(4, p);
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(4);
  std::vector<NodeId> rr;
  const int r = 200000;
  int hits = 0;
  for (int i = 0; i < r; ++i) {
    sampler.SampleForRoot(3, rng, &rr);
    if (std::find(rr.begin(), rr.end(), 0u) != rr.end()) ++hits;
  }
  ExpectClose(std::pow(p, 3), hits / static_cast<double>(r), 0.03, 0.01);
}

// ------------------------------------------- skip vs per-arc equivalence --

using testing::MakeWcPowerLaw;

TEST(RRSamplerSkipTest, AutoResolvesPerGraphRunStructure) {
  Graph wc = MakeWcPowerLaw(500, 6, 11);
  EXPECT_TRUE(RRSampler(wc, DiffusionModel::kIC).skip_mode())
      << "weighted cascade has whole-list runs; auto must pick skip";
  Graph chain = MakeChain(10, 0.5f);
  EXPECT_FALSE(RRSampler(chain, DiffusionModel::kIC).skip_mode())
      << "length-1 runs cannot amortize geometric draws";
  EXPECT_TRUE(RRSampler(chain, DiffusionModel::kIC, nullptr, 0,
                        SamplerMode::kSkip)
                  .skip_mode());
  EXPECT_FALSE(RRSampler(wc, DiffusionModel::kIC, nullptr, 0,
                         SamplerMode::kPerArc)
                   .skip_mode());
}

TEST(RRSamplerSkipTest, ExactEqualityOnUnitProbabilityEdges) {
  // With p = 1 every arc decision is forced, so skip and per-arc modes
  // must return the identical set — not just the same distribution.
  Graph g = MakeTwoCommunities(1.0f);
  RRSampler per_arc(g, DiffusionModel::kIC, nullptr, 0, SamplerMode::kPerArc);
  RRSampler skip(g, DiffusionModel::kIC, nullptr, 0, SamplerMode::kSkip);
  std::vector<NodeId> a, b;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    Rng rng_a(7), rng_b(7);
    RRSampleInfo ia = per_arc.SampleForRoot(root, rng_a, &a);
    RRSampleInfo ib = skip.SampleForRoot(root, rng_b, &b);
    EXPECT_EQ(a, b) << "root " << root;
    EXPECT_EQ(ia.width, ib.width);
    EXPECT_EQ(ia.edges_examined, ib.edges_examined)
        << "decided-arc accounting must be mode-independent";
  }
}

TEST(RRSamplerSkipTest, MembershipProbabilityMatchesPerArcOnChain) {
  // Lemma 2 holds in skip mode too: P[0 ∈ RR(3)] = p³ on a p-chain, even
  // though each in-list is a length-1 run (the degenerate worst case).
  const float p = 0.6f;
  Graph g = MakeChain(4, p);
  RRSampler sampler(g, DiffusionModel::kIC, nullptr, 0, SamplerMode::kSkip);
  Rng rng(4);
  std::vector<NodeId> rr;
  const int r = 200000;
  int hits = 0;
  for (int i = 0; i < r; ++i) {
    sampler.SampleForRoot(3, rng, &rr);
    if (std::find(rr.begin(), rr.end(), 0u) != rr.end()) ++hits;
  }
  ExpectClose(std::pow(p, 3), hits / static_cast<double>(r), 0.03, 0.01);
}

TEST(RRSamplerSkipTest, SizeAndWidthDistributionsMatchPerArcIC) {
  // Mode equivalence on the real workload: mean RR-set size and mean
  // width over many samples must agree between modes on a
  // weighted-cascade scale-free graph (independent streams, so the bands
  // absorb two-sided MC error).
  Graph g = MakeWcPowerLaw(400, 5, 13);
  RRSampler per_arc(g, DiffusionModel::kIC, nullptr, 0, SamplerMode::kPerArc);
  RRSampler skip(g, DiffusionModel::kIC, nullptr, 0, SamplerMode::kSkip);
  const int r = 30000;
  double size_a = 0, size_b = 0, width_a = 0, width_b = 0;
  std::vector<NodeId> rr;
  Rng rng_a(17), rng_b(18);
  for (int i = 0; i < r; ++i) {
    RRSampleInfo ia = per_arc.SampleRandomRoot(rng_a, &rr);
    size_a += rr.size();
    width_a += ia.width;
    RRSampleInfo ib = skip.SampleRandomRoot(rng_b, &rr);
    size_b += rr.size();
    width_b += ib.width;
  }
  ExpectClose(size_a / r, size_b / r, 0.05);
  ExpectClose(width_a / r, width_b / r, 0.05, 0.5);
}

TEST(RRSamplerSkipTest, LtRunScanMatchesPerArcStatistically) {
  // LT skip mode resolves the categorical in-neighbor pick by runs; on a
  // uniform-LT graph (single whole-list runs of weight 1/indeg) the walk
  // statistics must match the per-arc linear scan.
  GraphBuilder builder;
  GenBarabasiAlbert(300, 5, 19, &builder);
  AssignUniformLT(&builder);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  RRSampler per_arc(g, DiffusionModel::kLT, nullptr, 0, SamplerMode::kPerArc);
  RRSampler skip(g, DiffusionModel::kLT, nullptr, 0, SamplerMode::kSkip);
  ASSERT_TRUE(skip.skip_mode());
  const int r = 30000;
  double size_a = 0, size_b = 0;
  std::vector<NodeId> rr;
  Rng rng_a(21), rng_b(22);
  for (int i = 0; i < r; ++i) {
    per_arc.SampleRandomRoot(rng_a, &rr);
    size_a += rr.size();
    skip.SampleRandomRoot(rng_b, &rr);
    size_b += rr.size();
  }
  ExpectClose(size_a / r, size_b / r, 0.05);
}

TEST(RRSamplerSkipTest, LtCostCountsOnlyScannedArcs) {
  // Satellite regression: the LT scan breaks at the picked arc, so
  // edges_examined must charge the scanned prefix, not the whole list.
  // Node 2's in-list is (0 -> 2, w=1.0), (1 -> 2, w=0.0): the scan always
  // picks the first arc, so exactly 1 of 2 arcs is examined per step.
  Graph g = MakeGraph(3, {{0, 2, 1.0f}, {1, 2, 0.0f}});
  RRSampler sampler(g, DiffusionModel::kLT, nullptr, 0, SamplerMode::kPerArc);
  Rng rng(23);
  std::vector<NodeId> rr;
  RRSampleInfo info = sampler.SampleForRoot(2, rng, &rr);
  EXPECT_EQ(info.edges_examined, 1u)
      << "walk picks arc 0 and stops scanning; arc 1 was never examined";
  std::set<NodeId> members(rr.begin(), rr.end());
  EXPECT_EQ(members, (std::set<NodeId>{0, 2}));
}

// Builds a single-sink graph whose sink in-arc list carries the given
// weight layout (one in-arc per weight, arc i from node i), so lt_pick's
// two resolutions can be driven directly against Graph::InRunEnds.
Graph MakeSinkWithInWeights(const std::vector<float>& weights) {
  std::vector<RawEdge> edges;
  const NodeId sink = static_cast<NodeId>(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    edges.push_back({static_cast<NodeId>(i), sink, weights[i]});
  }
  return MakeGraph(sink + 1, edges);
}

TEST(LtPickEquivalenceTest, AdversarialWeightsAgreeAtRoundingBoundaries) {
  // The pick-equivalence contract: both resolutions map every draw r to
  // the same arc. The adversarial part is float weights whose sums drift
  // (0.1f is not 0.1; nine sequential additions round differently than one
  // 9·p product), so r values a few ulps around every slice boundary are
  // exactly where the pre-fix code let the modes diverge.
  const std::vector<std::vector<float>> layouts = {
      // One long drifting run: 9 × 0.1f (mass ≈ 0.9000000134).
      std::vector<float>(9, 0.1f),
      // Several runs of awkward constants.
      {0.1f, 0.1f, 0.1f, 0.07f, 0.07f, 0.07f, 0.07f, 0.05f, 0.05f, 0.3f},
      // Zero-probability runs interleaved (scanned but never picked).
      {0.0f, 0.0f, 0.2f, 0.2f, 0.0f, 0.1f, 0.1f, 0.1f, 0.0f},
      // Length-1 runs only (the per-arc degenerate case).
      {0.11f, 0.13f, 0.17f, 0.19f, 0.23f},
      // Tiny probabilities: many multiples of p land on shared doubles.
      std::vector<float>(64, 0.001f),
  };
  for (size_t layout = 0; layout < layouts.size(); ++layout) {
    const std::vector<float>& weights = layouts[layout];
    Graph g = MakeSinkWithInWeights(weights);
    const NodeId sink = static_cast<NodeId>(weights.size());
    const auto arcs = g.InArcs(sink);
    const auto run_ends = g.InRunEnds(sink);

    // Candidate draws: every cumulative per-arc boundary under both
    // accumulation orders, bracketed by a few ulps on each side, plus a
    // uniform sweep.
    std::vector<double> draws;
    double seq = 0.0, by_run = 0.0;
    size_t start = 0;
    for (const EdgeIndex end : run_ends) {
      const double p = arcs[start].prob;
      for (size_t j = start; j < end; ++j) {
        seq += arcs[j].prob;
        draws.push_back(seq);
        draws.push_back(by_run + p * static_cast<double>(j - start + 1));
      }
      by_run += p * static_cast<double>(end - start);
      start = end;
    }
    for (int i = 0; i <= 1000; ++i) draws.push_back(i / 1000.0);

    for (double center : draws) {
      double lo = center, hi = center;
      for (int ulps = 0; ulps < 3; ++ulps) {
        lo = std::nextafter(lo, -1.0);
        hi = std::nextafter(hi, 2.0);
      }
      for (double r = lo; r <= hi; r = std::nextafter(r, 2.0)) {
        if (r < 0.0 || r >= 1.0) continue;
        const LtPick by_runs = PickLtArcByRuns(arcs, run_ends, r);
        const LtPick per_arc = PickLtArcPerArc(arcs, r);
        ASSERT_EQ(by_runs.index, per_arc.index)
            << "layout " << layout << " r=" << std::hexfloat << r;
        ASSERT_EQ(by_runs.scanned, per_arc.scanned)
            << "layout " << layout << " r=" << std::hexfloat << r;
        if (by_runs.index != LtPick::kNoArc) {
          EXPECT_EQ(by_runs.scanned, by_runs.index + 1);
        } else {
          EXPECT_EQ(by_runs.scanned, arcs.size());
        }
      }
    }
  }
}

TEST(LtPickEquivalenceTest, SkipWalkBitIdenticalToPerArcOnDriftingRuns) {
  // End-to-end half of the contract: the LT reverse walk draws one
  // uniform per step in both modes, so pick equivalence makes whole RR
  // sets — and the scanned-arc cost — bit-identical across modes. Ring
  // graph whose in-lists are runs of 0.1f/0.09f (sums ≈ 0.99, so walks go
  // long and cross many rounding-sensitive picks).
  const NodeId n = 50;
  std::vector<RawEdge> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId d = 1; d <= 10; ++d) {
      edges.push_back({static_cast<NodeId>((v + d) % n), v,
                       d <= 9 ? 0.1f : 0.09f});
    }
  }
  Graph g = MakeGraph(n, edges);
  RRSampler per_arc(g, DiffusionModel::kLT, nullptr, 0, SamplerMode::kPerArc);
  RRSampler skip(g, DiffusionModel::kLT, nullptr, 0, SamplerMode::kSkip);
  ASSERT_TRUE(skip.skip_mode());
  std::vector<NodeId> a, b;
  for (uint64_t seed = 0; seed < 5000; ++seed) {
    Rng rng_a(seed), rng_b(seed);
    const RRSampleInfo ia = per_arc.SampleRandomRoot(rng_a, &a);
    const RRSampleInfo ib = skip.SampleRandomRoot(rng_b, &b);
    ASSERT_EQ(a, b) << "seed " << seed;
    ASSERT_EQ(ia.edges_examined, ib.edges_examined) << "seed " << seed;
    EXPECT_EQ(ia.width, ib.width);
  }
}

// ----------------------------------------------------------- LT sampling --

TEST(RRSamplerLTTest, WalkIsAPath) {
  Graph g = MakeTwoCommunities(0.2f);
  RRSampler sampler(g, DiffusionModel::kLT);
  Rng rng(5);
  std::vector<NodeId> rr;
  for (int trial = 0; trial < 200; ++trial) {
    sampler.SampleRandomRoot(rng, &rr);
    std::set<NodeId> members(rr.begin(), rr.end());
    EXPECT_EQ(members.size(), rr.size()) << "LT RR set must be a simple walk";
  }
}

TEST(RRSamplerLTTest, WeightOneChainWalksToSource) {
  Graph g = MakeChain(5, 1.0f);
  RRSampler sampler(g, DiffusionModel::kLT);
  Rng rng(6);
  std::vector<NodeId> rr;
  sampler.SampleForRoot(4, rng, &rr);
  EXPECT_EQ(rr, (std::vector<NodeId>{4, 3, 2, 1, 0}));
}

TEST(RRSamplerLTTest, MembershipMatchesLtActivationProbability) {
  // Lemma 2 under LT: P[0 ∈ RR(2)] = P[{0} activates 2]. On the diamond
  // 0->1 (.5), 0->2 (.3), 1->2 (.5): exact LT spread gives the target.
  Graph g = MakeGraph(3, {{0, 1, 0.5f}, {0, 2, 0.3f}, {1, 2, 0.5f}});
  double exact = 0;
  ASSERT_TRUE(ExactSpreadLT(g, std::vector<NodeId>{0}, &exact).ok());
  const double p_activate_2 = exact - 1.0 - 0.5;  // E[I] = 1 + P[1] + P[2]

  RRSampler sampler(g, DiffusionModel::kLT);
  Rng rng(7);
  std::vector<NodeId> rr;
  const int r = 300000;
  int hits = 0;
  for (int i = 0; i < r; ++i) {
    sampler.SampleForRoot(2, rng, &rr);
    if (std::find(rr.begin(), rr.end(), 0u) != rr.end()) ++hits;
  }
  ExpectClose(p_activate_2, hits / static_cast<double>(r), 0.03, 0.01);
}

// --------------------------------------------------- triggering sampling --

TEST(RRSamplerTriggeringTest, IcTriggeringMatchesNativeIcStatistically) {
  Graph g = MakeTwoCommunities(0.4f);
  IcTriggeringModel model;
  RRSampler native(g, DiffusionModel::kIC);
  RRSampler generic(g, DiffusionModel::kTriggering, &model);
  Rng rng_a(8), rng_b(9);
  std::vector<NodeId> rr;
  const int r = 100000;
  double native_size = 0, generic_size = 0;
  for (int i = 0; i < r; ++i) {
    native.SampleRandomRoot(rng_a, &rr);
    native_size += rr.size();
    generic.SampleRandomRoot(rng_b, &rr);
    generic_size += rr.size();
  }
  ExpectClose(native_size / r, generic_size / r, 0.02);
}

TEST(RRSamplerTriggeringTest, LtTriggeringMatchesNativeLtStatistically) {
  Graph g = MakeGraph(5, {{0, 2, 0.5f},
                          {1, 2, 0.5f},
                          {2, 3, 0.7f},
                          {0, 3, 0.3f},
                          {3, 4, 1.0f}});
  LtTriggeringModel model;
  RRSampler native(g, DiffusionModel::kLT);
  RRSampler generic(g, DiffusionModel::kTriggering, &model);
  Rng rng_a(10), rng_b(11);
  std::vector<NodeId> rr;
  const int r = 200000;
  double native_size = 0, generic_size = 0;
  for (int i = 0; i < r; ++i) {
    native.SampleRandomRoot(rng_a, &rr);
    native_size += rr.size();
    generic.SampleRandomRoot(rng_b, &rr);
    generic_size += rr.size();
  }
  ExpectClose(native_size / r, generic_size / r, 0.02);
}

// ----------------------------------------------------------- Corollary 1 --

TEST(RRStatisticalTest, CoverageFractionIsUnbiasedSpreadEstimatorIC) {
  Graph g = MakeTwoCommunities(0.35f);
  const std::vector<NodeId> seeds = {1, 6};
  double exact = 0;
  ASSERT_TRUE(ExactSpreadIC(g, seeds, &exact).ok());

  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(12);
  RRCollection rr(g.num_nodes());
  std::vector<NodeId> scratch;
  const int theta = 200000;
  for (int i = 0; i < theta; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    rr.Add(scratch, info.width);
  }
  rr.BuildIndex();
  const double estimate = rr.CoveredFraction(seeds) * g.num_nodes();
  ExpectClose(exact, estimate, 0.02);
}

TEST(RRStatisticalTest, CoverageFractionIsUnbiasedSpreadEstimatorLT) {
  Graph g = MakeGraph(5, {{0, 2, 0.5f},
                          {1, 2, 0.5f},
                          {2, 3, 0.7f},
                          {0, 3, 0.3f},
                          {3, 4, 1.0f}});
  const std::vector<NodeId> seeds = {0};
  double exact = 0;
  ASSERT_TRUE(ExactSpreadLT(g, seeds, &exact).ok());

  RRSampler sampler(g, DiffusionModel::kLT);
  Rng rng(13);
  RRCollection rr(g.num_nodes());
  std::vector<NodeId> scratch;
  const int theta = 200000;
  for (int i = 0; i < theta; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    rr.Add(scratch, info.width);
  }
  rr.BuildIndex();
  const double estimate = rr.CoveredFraction(seeds) * g.num_nodes();
  ExpectClose(exact, estimate, 0.02);
}

// --------------------------------------------------------------- Lemma 4 --

TEST(RRStatisticalTest, Lemma4EptIdentity) {
  // (n/m)·EPT = E[I({v*})] with v* drawn ∝ in-degree.
  Graph g = MakeTwoCommunities(0.35f);
  const double n = g.num_nodes(), m = g.num_edges();

  // LHS: average RR width over many samples.
  RRSampler sampler(g, DiffusionModel::kIC);
  Rng rng(14);
  std::vector<NodeId> scratch;
  const int r = 200000;
  double width_sum = 0;
  for (int i = 0; i < r; ++i) {
    width_sum += sampler.SampleRandomRoot(rng, &scratch).width;
  }
  const double lhs = (n / m) * (width_sum / r);

  // RHS: exact spread of v*, averaged over the in-degree distribution.
  double rhs = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) continue;
    double spread = 0;
    ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{v}, &spread).ok());
    rhs += (static_cast<double>(g.InDegree(v)) / m) * spread;
  }
  ExpectClose(rhs, lhs, 0.02);
}

// ------------------------------------------------------------ collection --

TEST(RRCollectionTest, AddAndRetrieve) {
  RRCollection rr(5);
  std::vector<NodeId> s1 = {0, 2};
  std::vector<NodeId> s2 = {1};
  EXPECT_EQ(rr.Add(s1, 7), 0u);
  EXPECT_EQ(rr.Add(s2, 3), 1u);
  EXPECT_EQ(rr.num_sets(), 2u);
  EXPECT_EQ(rr.total_nodes(), 3u);
  EXPECT_EQ(rr.Width(0), 7u);
  EXPECT_EQ(rr.Width(1), 3u);
  EXPECT_EQ(rr.TotalWidth(), 10u);
  EXPECT_EQ(std::vector<NodeId>(rr.Set(0).begin(), rr.Set(0).end()), s1);
}

TEST(RRCollectionTest, InvertedIndex) {
  RRCollection rr(4);
  rr.Add(std::vector<NodeId>{0, 1}, 0);
  rr.Add(std::vector<NodeId>{1, 2}, 0);
  rr.Add(std::vector<NodeId>{1}, 0);
  rr.BuildIndex();
  EXPECT_TRUE(rr.index_built());
  EXPECT_EQ(rr.CoverageCount(0), 1u);
  EXPECT_EQ(rr.CoverageCount(1), 3u);
  EXPECT_EQ(rr.CoverageCount(2), 1u);
  EXPECT_EQ(rr.CoverageCount(3), 0u);
  auto sets = rr.SetsContaining(1);
  EXPECT_EQ(std::vector<RRSetId>(sets.begin(), sets.end()),
            (std::vector<RRSetId>{0, 1, 2}));
}

TEST(RRCollectionTest, AddAfterIndexInvalidates) {
  RRCollection rr(3);
  rr.Add(std::vector<NodeId>{0}, 0);
  rr.BuildIndex();
  rr.Add(std::vector<NodeId>{1}, 0);
  EXPECT_FALSE(rr.index_built());
}

TEST(RRCollectionTest, CoveredFractionCountsDistinctSets) {
  RRCollection rr(4);
  rr.Add(std::vector<NodeId>{0, 1}, 0);
  rr.Add(std::vector<NodeId>{1, 2}, 0);
  rr.Add(std::vector<NodeId>{3}, 0);
  rr.Add(std::vector<NodeId>{0, 2}, 0);
  rr.BuildIndex();
  // {0, 1} covers sets 0, 1, 3 — set 0 must not double-count.
  EXPECT_DOUBLE_EQ(rr.CoveredFraction(std::vector<NodeId>{0, 1}), 0.75);
  EXPECT_DOUBLE_EQ(rr.CoveredFraction(std::vector<NodeId>{3}), 0.25);
  EXPECT_DOUBLE_EQ(rr.CoveredFraction(std::vector<NodeId>{}), 0.0);
}

TEST(RRCollectionTest, ClearResetsEverything) {
  RRCollection rr(3);
  rr.Add(std::vector<NodeId>{0, 1, 2}, 9);
  rr.BuildIndex();
  rr.Clear();
  EXPECT_EQ(rr.num_sets(), 0u);
  EXPECT_EQ(rr.total_nodes(), 0u);
  EXPECT_EQ(rr.TotalWidth(), 0u);
  EXPECT_FALSE(rr.index_built());
  // Reusable after Clear.
  rr.Add(std::vector<NodeId>{1}, 2);
  rr.BuildIndex();
  EXPECT_EQ(rr.CoverageCount(1), 1u);
}

TEST(RRCollectionTest, MemoryBytesGrows) {
  RRCollection rr(100);
  const size_t before = rr.MemoryBytes();
  std::vector<NodeId> big(50);
  for (int i = 0; i < 100; ++i) rr.Add(big, 0);
  rr.BuildIndex();
  EXPECT_GT(rr.MemoryBytes(), before);
  EXPECT_GE(rr.MemoryBytes(), 100 * 50 * sizeof(NodeId));
}

TEST(RRCollectionTest, EmptyCollectionEdgeCases) {
  RRCollection rr(3);
  rr.BuildIndex();
  EXPECT_EQ(rr.num_sets(), 0u);
  EXPECT_DOUBLE_EQ(rr.CoveredFraction(std::vector<NodeId>{0, 1, 2}), 0.0);
  EXPECT_EQ(rr.CoverageCount(0), 0u);
}

}  // namespace
}  // namespace timpp
