// Tests for diffusion/: forward simulators, the Monte-Carlo estimator and
// the exact-spread oracles, cross-validated against hand-computed values.
#include <gtest/gtest.h>

#include <cmath>

#include "diffusion/exact_spread.h"
#include "diffusion/ic_simulator.h"
#include "diffusion/lt_simulator.h"
#include "diffusion/spread_estimator.h"
#include "diffusion/triggering.h"
#include "gen/generators.h"
#include "graph/weight_models.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace timpp {
namespace {

using testing::ExpectClose;
using testing::MakeChain;
using testing::MakeGraph;
using testing::MakeOutStar;
using testing::MakeTwoCommunities;

// ------------------------------------------------------------ IC forward --

TEST(IcSimulatorTest, DeterministicChainActivatesEverything) {
  Graph g = MakeChain(6, 1.0f);
  IcSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(sim.Simulate(seeds, rng), 6u);
}

TEST(IcSimulatorTest, ZeroProbabilityActivatesOnlySeeds) {
  Graph g = MakeChain(6, 0.0f);
  IcSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {0, 3};
  EXPECT_EQ(sim.Simulate(seeds, rng), 2u);
}

TEST(IcSimulatorTest, DuplicateSeedsCountOnce) {
  Graph g = MakeChain(4, 0.0f);
  IcSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {2, 2, 2};
  EXPECT_EQ(sim.Simulate(seeds, rng), 1u);
}

TEST(IcSimulatorTest, MidChainSeedActivatesOnlyDownstream) {
  Graph g = MakeChain(6, 1.0f);
  IcSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {3};
  EXPECT_EQ(sim.Simulate(seeds, rng), 3u);  // 3, 4, 5
}

TEST(IcSimulatorTest, CollectReturnsActivatedNodes) {
  Graph g = MakeChain(4, 1.0f);
  IcSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> activated;
  std::vector<NodeId> seeds = {1};
  EXPECT_EQ(sim.SimulateCollect(seeds, rng, &activated), 3u);
  EXPECT_EQ(activated, (std::vector<NodeId>{1, 2, 3}));
}

TEST(IcSimulatorTest, MeanMatchesClosedFormOnChain) {
  // E[I({0})] on a p-chain of length 4 = 1 + p + p² + p³.
  const float p = 0.5f;
  Graph g = MakeChain(4, p);
  IcSimulator sim(g);
  Rng rng(42);
  const int r = 200000;
  double total = 0;
  std::vector<NodeId> seeds = {0};
  for (int i = 0; i < r; ++i) total += sim.Simulate(seeds, rng);
  ExpectClose(1 + 0.5 + 0.25 + 0.125, total / r, 0.01);
}

TEST(IcSimulatorTest, MeanMatchesClosedFormOnStar) {
  // E[I({hub})] on an out-star = 1 + (n-1)p.
  Graph g = MakeOutStar(11, 0.3f);
  IcSimulator sim(g);
  Rng rng(43);
  const int r = 100000;
  double total = 0;
  std::vector<NodeId> seeds = {0};
  for (int i = 0; i < r; ++i) total += sim.Simulate(seeds, rng);
  ExpectClose(1 + 10 * 0.3, total / r, 0.01);
}

// ------------------------------------------------------------ LT forward --

TEST(LtSimulatorTest, WeightOneChainActivatesEverything) {
  Graph g = MakeChain(5, 1.0f);
  LtSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(sim.Simulate(seeds, rng), 5u);
}

TEST(LtSimulatorTest, ZeroWeightActivatesOnlySeeds) {
  Graph g = MakeChain(5, 0.0f);
  LtSimulator sim(g);
  Rng rng(1);
  std::vector<NodeId> seeds = {0};
  EXPECT_EQ(sim.Simulate(seeds, rng), 1u);
}

TEST(LtSimulatorTest, MeanMatchesChainClosedForm) {
  // On a weight-w chain each node activates iff its threshold <= w, so
  // E[I({0})] = 1 + w + w² + w³ exactly as in IC.
  const float w = 0.6f;
  Graph g = MakeChain(4, w);
  LtSimulator sim(g);
  Rng rng(44);
  const int r = 200000;
  double total = 0;
  std::vector<NodeId> seeds = {0};
  for (int i = 0; i < r; ++i) total += sim.Simulate(seeds, rng);
  ExpectClose(1 + 0.6 + 0.36 + 0.216, total / r, 0.01);
}

TEST(LtSimulatorTest, TwoInfluencersAddWeights) {
  // 0 -> 2 (0.4), 1 -> 2 (0.4). With both seeds active node 2 activates
  // with probability 0.8 (threshold <= 0.8).
  Graph g = MakeGraph(3, {{0, 2, 0.4f}, {1, 2, 0.4f}});
  LtSimulator sim(g);
  Rng rng(45);
  const int r = 200000;
  double total = 0;
  std::vector<NodeId> seeds = {0, 1};
  for (int i = 0; i < r; ++i) total += sim.Simulate(seeds, rng);
  ExpectClose(2 + 0.8, total / r, 0.01);
}

// ----------------------------------------------------- triggering models --

TEST(TriggeringTest, ModelNames) {
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kIC), "IC");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kLT), "LT");
  EXPECT_STREQ(DiffusionModelName(DiffusionModel::kTriggering), "triggering");
}

TEST(TriggeringTest, IcTriggeringSampleRespectsProbabilities) {
  Graph g = MakeGraph(3, {{0, 2, 1.0f}, {1, 2, 0.0f}});
  IcTriggeringModel model;
  Rng rng(1);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    out.clear();
    model.SampleTriggeringSet(g, 2, rng, &out);
    ASSERT_EQ(out.size(), 1u);  // p=1 edge always in, p=0 edge never
    EXPECT_EQ(out[0], 0u);
  }
}

TEST(TriggeringTest, LtTriggeringPicksAtMostOne) {
  Graph g = MakeGraph(4, {{0, 3, 0.3f}, {1, 3, 0.3f}, {2, 3, 0.3f}});
  LtTriggeringModel model;
  Rng rng(2);
  std::vector<NodeId> out;
  int empty = 0;
  const int r = 100000;
  std::vector<int> picks(3, 0);
  for (int i = 0; i < r; ++i) {
    out.clear();
    model.SampleTriggeringSet(g, 3, rng, &out);
    ASSERT_LE(out.size(), 1u);
    if (out.empty()) {
      ++empty;
    } else {
      ++picks[out[0]];
    }
  }
  ExpectClose(0.1, empty / static_cast<double>(r), 0.05, 0.01);
  for (int v = 0; v < 3; ++v) {
    ExpectClose(0.3, picks[v] / static_cast<double>(r), 0.05, 0.01);
  }
}

TEST(TriggeringSimulatorTest, IcTriggeringMatchesNativeIcMean) {
  Graph g = MakeTwoCommunities(0.4f);
  IcTriggeringModel model;
  TriggeringSimulator trig_sim(g, model);
  IcSimulator ic_sim(g);
  Rng rng_a(46), rng_b(47);
  const int r = 100000;
  double trig_total = 0, ic_total = 0;
  std::vector<NodeId> seeds = {0, 7};
  for (int i = 0; i < r; ++i) {
    trig_total += trig_sim.Simulate(seeds, rng_a);
    ic_total += ic_sim.Simulate(seeds, rng_b);
  }
  ExpectClose(ic_total / r, trig_total / r, 0.02);
}

TEST(TriggeringSimulatorTest, LtTriggeringMatchesNativeLtMean) {
  // LT triggering-set semantics vs the threshold simulator: Kempe et al.'s
  // equivalence, checked numerically.
  Graph g = MakeGraph(5, {{0, 2, 0.5f},
                          {1, 2, 0.5f},
                          {2, 3, 0.7f},
                          {0, 3, 0.3f},
                          {3, 4, 1.0f}});
  LtTriggeringModel model;
  TriggeringSimulator trig_sim(g, model);
  LtSimulator lt_sim(g);
  Rng rng_a(48), rng_b(49);
  const int r = 200000;
  double trig_total = 0, lt_total = 0;
  std::vector<NodeId> seeds = {0};
  for (int i = 0; i < r; ++i) {
    trig_total += trig_sim.Simulate(seeds, rng_a);
    lt_total += lt_sim.Simulate(seeds, rng_b);
  }
  ExpectClose(lt_total / r, trig_total / r, 0.02);
}

// ------------------------------------------------------- exact IC oracle --

TEST(ExactSpreadICTest, ChainClosedForm) {
  Graph g = MakeChain(4, 0.5f);
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0}, &spread).ok());
  EXPECT_NEAR(spread, 1 + 0.5 + 0.25 + 0.125, 1e-9);
}

TEST(ExactSpreadICTest, StarClosedForm) {
  Graph g = MakeOutStar(6, 0.2f);
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0}, &spread).ok());
  EXPECT_NEAR(spread, 1 + 5 * 0.2, 1e-6);  // p stored as float32
}

TEST(ExactSpreadICTest, LeafSeedHasUnitSpread) {
  Graph g = MakeOutStar(6, 0.9f);
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{3}, &spread).ok());
  EXPECT_NEAR(spread, 1.0, 1e-9);
}

TEST(ExactSpreadICTest, DiamondWithDependentPaths) {
  // 0->1 (p), 0->2 (p), 1->3 (p), 2->3 (p): P[3 activated] = 1-(1-p²)².
  const double p = 0.5;
  Graph g = MakeGraph(4, {{0, 1, 0.5f}, {0, 2, 0.5f}, {1, 3, 0.5f},
                          {2, 3, 0.5f}});
  double spread = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0}, &spread).ok());
  const double p3 = 1 - std::pow(1 - p * p, 2);
  EXPECT_NEAR(spread, 1 + 2 * p + p3, 1e-9);
}

TEST(ExactSpreadICTest, RejectsTooManyEdges) {
  Graph g = testing::MakeChain(30, 0.5f);  // 29 edges > limit
  double spread = 0;
  EXPECT_TRUE(
      ExactSpreadIC(g, std::vector<NodeId>{0}, &spread).IsInvalidArgument());
}

TEST(ExactSpreadICTest, MatchesMonteCarloOnTwoCommunities) {
  Graph g = MakeTwoCommunities(0.35f);
  double exact = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0, 5}, &exact).ok());

  SpreadEstimatorOptions options;
  options.num_samples = 300000;
  options.model = DiffusionModel::kIC;
  SpreadEstimator estimator(g, options);
  double mc = estimator.Estimate(std::vector<NodeId>{0, 5}, 50);
  ExpectClose(exact, mc, 0.01);
}

// ------------------------------------------------------- exact LT oracle --

TEST(ExactSpreadLTTest, ChainClosedForm) {
  Graph g = MakeChain(4, 0.6f);
  double spread = 0;
  ASSERT_TRUE(ExactSpreadLT(g, std::vector<NodeId>{0}, &spread).ok());
  EXPECT_NEAR(spread, 1 + 0.6 + 0.36 + 0.216, 1e-6);  // float32 p
}

TEST(ExactSpreadLTTest, MatchesMonteCarloOnSmallGraph) {
  Graph g = MakeGraph(5, {{0, 2, 0.5f},
                          {1, 2, 0.5f},
                          {2, 3, 0.7f},
                          {0, 3, 0.3f},
                          {3, 4, 1.0f}});
  double exact = 0;
  ASSERT_TRUE(ExactSpreadLT(g, std::vector<NodeId>{0}, &exact).ok());

  SpreadEstimatorOptions options;
  options.num_samples = 300000;
  options.model = DiffusionModel::kLT;
  SpreadEstimator estimator(g, options);
  double mc = estimator.Estimate(std::vector<NodeId>{0}, 51);
  ExpectClose(exact, mc, 0.01);
}

TEST(ExactSpreadLTTest, RejectsHugeWorldCount) {
  // Complete digraph on 12 nodes: world count 12^12 >> the guard.
  GraphBuilder builder;
  GenCompleteDirected(12, &builder);
  AssignUniform(&builder, 0.05f);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  double spread = 0;
  EXPECT_TRUE(
      ExactSpreadLT(g, std::vector<NodeId>{0}, &spread).IsInvalidArgument());
}

// ------------------------------------------------------- brute force OPT --

TEST(BruteForceTest, FindsObviousOptimumIC) {
  // Hub 0 with p=0.9 spokes dominates; OPT for k=1 must be the hub.
  Graph g = MakeOutStar(8, 0.9f);
  std::vector<NodeId> best;
  double best_spread = 0;
  ASSERT_TRUE(BruteForceOptimalIC(g, 1, &best, &best_spread).ok());
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0], 0u);
  EXPECT_NEAR(best_spread, 1 + 7 * 0.9, 1e-5);  // float32 p
}

TEST(BruteForceTest, KEqualsTwoPicksHubPlusLeaf) {
  Graph g = MakeOutStar(6, 0.5f);
  std::vector<NodeId> best;
  double best_spread = 0;
  ASSERT_TRUE(BruteForceOptimalIC(g, 2, &best, &best_spread).ok());
  // Hub + any leaf: 2 + 4*0.5 = 4. (Hub spread 1+5*.5=3.5, leaf adds 1 but
  // removes its own 0.5 contribution -> 3.5 + 1 - 0.5 = 4.)
  EXPECT_NEAR(best_spread, 4.0, 1e-9);
  EXPECT_EQ(best[0], 0u);
}

TEST(BruteForceTest, RejectsBadK) {
  Graph g = MakeChain(4, 0.5f);
  std::vector<NodeId> best;
  double spread = 0;
  EXPECT_TRUE(BruteForceOptimalIC(g, 0, &best, &spread).IsInvalidArgument());
  EXPECT_TRUE(BruteForceOptimalIC(g, 5, &best, &spread).IsInvalidArgument());
}

TEST(BruteForceTest, LtOptimumOnChain) {
  Graph g = MakeChain(5, 0.9f);
  std::vector<NodeId> best;
  double spread = 0;
  ASSERT_TRUE(BruteForceOptimalLT(g, 1, &best, &spread).ok());
  EXPECT_EQ(best[0], 0u);  // head of the chain reaches everyone
}

// ------------------------------------------------------ spread estimator --

TEST(SpreadEstimatorTest, DeterministicGivenSeed) {
  Graph g = MakeTwoCommunities(0.4f);
  SpreadEstimatorOptions options;
  options.num_samples = 5000;
  SpreadEstimator estimator(g, options);
  double a = estimator.Estimate(std::vector<NodeId>{0}, 99);
  double b = estimator.Estimate(std::vector<NodeId>{0}, 99);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SpreadEstimatorTest, MultiThreadedIsDeterministicAndAccurate) {
  Graph g = MakeTwoCommunities(0.4f);
  double exact = 0;
  ASSERT_TRUE(ExactSpreadIC(g, std::vector<NodeId>{0}, &exact).ok());

  SpreadEstimatorOptions options;
  options.num_samples = 200000;
  options.num_threads = 4;
  SpreadEstimator estimator(g, options);
  double a = estimator.Estimate(std::vector<NodeId>{0}, 7);
  double b = estimator.Estimate(std::vector<NodeId>{0}, 7);
  EXPECT_DOUBLE_EQ(a, b);
  ExpectClose(exact, a, 0.02);
}

TEST(SpreadEstimatorTest, CustomTriggeringModelPath) {
  Graph g = MakeChain(4, 1.0f);
  IcTriggeringModel model;
  SpreadEstimatorOptions options;
  options.num_samples = 100;
  options.model = DiffusionModel::kTriggering;
  options.custom_model = &model;
  SpreadEstimator estimator(g, options);
  EXPECT_DOUBLE_EQ(estimator.Estimate(std::vector<NodeId>{0}, 1), 4.0);
}

}  // namespace
}  // namespace timpp
