// Unit tests for graph/weight_models.h and graph/graph_stats.h.
#include <gtest/gtest.h>

#include <set>

#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "graph/weight_models.h"
#include "tests/test_util.h"

namespace timpp {
namespace {

TEST(WeightModelsTest, WeightedCascadeIsOneOverInDegree) {
  GraphBuilder builder;
  builder.AddEdge(0, 2);
  builder.AddEdge(1, 2);
  builder.AddEdge(3, 2);
  builder.AddEdge(0, 1);
  AssignWeightedCascade(&builder);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  // Node 2 has indegree 3 -> each incoming edge gets 1/3.
  for (const Arc& a : g.InArcs(2)) EXPECT_FLOAT_EQ(a.prob, 1.0f / 3.0f);
  // Node 1 has indegree 1 -> probability 1.
  EXPECT_FLOAT_EQ(g.InArcs(1)[0].prob, 1.0f);
}

TEST(WeightModelsTest, UniformSetsEveryEdge) {
  GraphBuilder builder;
  GenDirectedCycle(5, &builder);
  AssignUniform(&builder, 0.05f);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) EXPECT_FLOAT_EQ(a.prob, 0.05f);
  }
}

TEST(WeightModelsTest, TrivalencyUsesOnlyThreeLevels) {
  GraphBuilder builder;
  GenErdosRenyi(50, 300, /*seed=*/1, &builder);
  AssignTrivalency(&builder, /*seed=*/2);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  std::set<float> seen;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const Arc& a : g.OutArcs(v)) seen.insert(a.prob);
  }
  EXPECT_LE(seen.size(), 3u);
  for (float p : seen) {
    EXPECT_TRUE(p == 0.1f || p == 0.01f || p == 0.001f) << p;
  }
  EXPECT_EQ(seen.size(), 3u) << "300 edges should hit all three levels";
}

TEST(WeightModelsTest, TrivalencyIsDeterministicInSeed) {
  GraphBuilder b1, b2;
  GenErdosRenyi(30, 100, 1, &b1);
  GenErdosRenyi(30, 100, 1, &b2);
  AssignTrivalency(&b1, 9);
  AssignTrivalency(&b2, 9);
  for (size_t i = 0; i < b1.edges().size(); ++i) {
    EXPECT_FLOAT_EQ(b1.edges()[i].prob, b2.edges()[i].prob);
  }
}

TEST(WeightModelsTest, RandomLTWeightsSumToOnePerNode) {
  GraphBuilder builder;
  GenErdosRenyi(40, 200, /*seed=*/3, &builder);
  AssignRandomLT(&builder, /*seed=*/4);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) == 0) continue;
    EXPECT_NEAR(g.InProbSum(v), 1.0, 1e-4) << "node " << v;
  }
}

TEST(WeightModelsTest, UniformLTMatchesWeightedCascadeArithmetic) {
  GraphBuilder b1, b2;
  GenErdosRenyi(20, 60, 5, &b1);
  GenErdosRenyi(20, 60, 5, &b2);
  AssignWeightedCascade(&b1);
  AssignUniformLT(&b2);
  for (size_t i = 0; i < b1.edges().size(); ++i) {
    EXPECT_FLOAT_EQ(b1.edges()[i].prob, b2.edges()[i].prob);
  }
}

// ----------------------------------------------------------- graph stats --

TEST(GraphStatsTest, ChainStats) {
  Graph g = testing::MakeChain(5, 1.0f);
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_EQ(stats.max_out_degree, 1u);
  EXPECT_EQ(stats.max_in_degree, 1u);
  EXPECT_EQ(stats.num_isolated, 0u);
  EXPECT_EQ(stats.num_weak_components, 1u);
  EXPECT_EQ(stats.largest_weak_component, 5u);
}

TEST(GraphStatsTest, DisconnectedComponentsCounted) {
  Graph g = testing::MakeGraph(6, {{0, 1, 1.0f}, {2, 3, 1.0f}});
  GraphStats stats = ComputeGraphStats(g);
  // {0,1}, {2,3}, {4}, {5} -> 4 weak components, two isolated nodes.
  EXPECT_EQ(stats.num_weak_components, 4u);
  EXPECT_EQ(stats.num_isolated, 2u);
  EXPECT_EQ(stats.largest_weak_component, 2u);
}

TEST(GraphStatsTest, WeakComponentsIgnoreDirection) {
  // 0 -> 1 <- 2: weakly connected despite no directed path 0..2.
  Graph g = testing::MakeGraph(3, {{0, 1, 1.0f}, {2, 1, 1.0f}});
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_weak_components, 1u);
}

TEST(GraphStatsTest, OutDegreeHistogram) {
  Graph g = testing::MakeOutStar(5, 1.0f);  // center degree 4, leaves 0
  auto hist = OutDegreeHistogram(g, 10);
  EXPECT_EQ(hist[0], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(GraphStatsTest, HistogramTailTruncates) {
  Graph g = testing::MakeOutStar(10, 1.0f);  // center degree 9
  auto hist = OutDegreeHistogram(g, 3);
  EXPECT_EQ(hist[3], 1u);  // the degree-9 hub lands in the last bucket
}

TEST(GraphStatsTest, Table2RowDirectedConvention) {
  Graph g = testing::MakeChain(4, 1.0f);  // 3 arcs
  std::string row = FormatTable2Row("Toy", g, /*undirected=*/false);
  EXPECT_NE(row.find("Toy"), std::string::npos);
  EXPECT_NE(row.find("directed"), std::string::npos);
  // avg degree = 2m/n = 6/4 = 1.5
  EXPECT_NE(row.find("1.5"), std::string::npos);
}

TEST(GraphStatsTest, Table2RowUndirectedHalvesArcCount) {
  GraphBuilder builder;
  builder.AddUndirectedEdge(0, 1);
  builder.AddUndirectedEdge(1, 2);
  Graph g;
  ASSERT_TRUE(builder.Build(&g).ok());
  std::string row = FormatTable2Row("U", g, /*undirected=*/true);
  EXPECT_NE(row.find("undirected"), std::string::npos);
  // m reported = 2 (not 4 arcs); avg degree = 2*2/3 = 1.3
  EXPECT_NE(row.find(" 2 "), std::string::npos);
}

}  // namespace
}  // namespace timpp
