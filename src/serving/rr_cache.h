// SharedRRCache — one sampling stream's RR sets, cached across requests
// and readable concurrently.
//
// The engine's determinism contract makes RR set i a pure function of
// (seed, i): whichever request first needs index i materializes the same
// bytes any other request would have. So a graph's serving context keeps
// ONE collection per sampling configuration, grown monotonically to the
// largest stream prefix any request has needed (this is the RR-sketch
// observation of Borgs et al. — a single sample pool serves any k — plus
// the QuickIM-style amortization across requests), and every request reads
// its ranges out of it: a request needing θ′ ≤ θ consumes exactly the
// prefix [0, θ′) it would have generated standalone.
//
// Concurrency model — single writer, many wait-free readers:
//
//   * Storage grows in immutable chunks. A grow (one per EnsurePrefix
//     that actually extends the stream) samples its sets into a fresh
//     chunk under `grow_mu_`, appends the chunk pointer to the chunk
//     directory, and only then PUBLISHES the new prefix length with a
//     release store to `committed_`. A chunk is never mutated after
//     publication, and nothing a reader can reach is ever freed before
//     the cache itself dies (directory arrays retired on growth are kept
//     until the destructor).
//   * Readers acquire-load `committed_`; any index below that value is
//     backed by a fully written chunk, because the chunk writes
//     happen-before the release store the reader synchronized with
//     (num_chunks_ and dir_ are loaded afterwards, each release-stored
//     earlier by the writer, so write-read coherence makes them at least
//     as new). Reads of resident prefixes therefore take no lock at all —
//     concurrent requests replay shared ranges truly in parallel.
//   * Only a reader that needs indices past the committed prefix takes
//     the grow lock (becoming the writer for that grow). Content is
//     position-determined, so WHICH request grows the stream never
//     affects the bytes — only who pays the sampling cost first.
//
// Per-set edge counts are stored alongside the sets so replayed ranges
// report the same accounting (edges_examined, traversal_cost) as sampling
// them fresh — request stats stay bit-comparable to standalone runs.
// Lifetime counters are atomics; per-request accounting lives in each
// request's CachedSampleSource.
#ifndef TIMPP_SERVING_RR_CACHE_H_
#define TIMPP_SERVING_RR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_spill.h"
#include "util/status.h"

namespace timpp {

/// Monotone prefix cache of one engine's global index stream. Internally
/// synchronized: any number of threads may call Read/ReadUntilCost/
/// EnsurePrefix concurrently.
class SharedRRCache {
 public:
  /// `graph` is borrowed and must outlive the cache. `config` fixes the
  /// stream (model, sampler mode, seed, hop bound) and the sampling
  /// parallelism; content is thread-count invariant per the engine
  /// contract. `spill` (optional) is a disk tier keyed by the same stream:
  /// EnsurePrefix reloads ranges the store covers instead of resampling
  /// them, and SpillCommitted() writes the published prefix out so an
  /// evicted cache's successor — constructed with the same store — starts
  /// from disk rather than regeneration. The store must outlive the cache.
  SharedRRCache(const Graph& graph, const SamplingConfig& config,
                std::shared_ptr<RRSpillStore> spill = nullptr);
  ~SharedRRCache();

  SharedRRCache(const SharedRRCache&) = delete;
  SharedRRCache& operator=(const SharedRRCache&) = delete;

  const Graph& graph() const { return engine_.graph(); }
  /// The shared engine. Safe concurrent uses are status() (atomic latch)
  /// and the config accessors; batch calls go through the cache, which
  /// serializes them under its grow lock.
  SamplingEngine& engine() { return engine_; }

  /// Sets currently published (readable without touching the grow lock).
  uint64_t cached_sets() const {
    return committed_.load(std::memory_order_acquire);
  }

  /// Grows the stream so indices [0, count) are resident, publishing the
  /// new prefix for concurrent readers. No-op when already there.
  void EnsurePrefix(uint64_t count);

  /// Appends the stream's sets [first, first + count) to `*out`,
  /// byte-identical to sampling them fresh, growing the cache as needed.
  /// Lock-free when the range is already published. The returned
  /// accounting matches a fresh sample of the range; sets_reused counts
  /// how many were already published when the call began. `per_set_edges`
  /// (optional) receives each delivered set's edges-examined count in set
  /// order, mirroring the appends to `*out`.
  SampleBatch Read(uint64_t first, uint64_t count, RRCollection* out,
                   std::vector<uint64_t>* per_set_edges = nullptr);

  /// Cost-threshold read (Borgs et al.'s stopping rule, bit-equal to
  /// SamplingEngine::SampleUntilCost run from stream position `first`):
  /// appends sets from index `first` while the running traversal cost is
  /// below `cost_threshold` (the crossing set is kept), capped at
  /// `max_sets` appended sets (0 = none), growing the cache as it goes.
  SampleBatch ReadUntilCost(uint64_t first, double cost_threshold,
                            uint64_t max_sets, RRCollection* out);

  /// Writes every published set not yet on disk to the spill store (the
  /// eviction hook: called by a context before it drops its reference so
  /// the stream's successor reloads instead of resampling). No-op without
  /// a store; a failure leaves a shorter spilled prefix — the successor
  /// regenerates the rest, results unchanged.
  Status SpillCommitted();

  /// Lifetime counters across every request served from this cache.
  uint64_t total_sets_sampled() const {
    return total_sets_sampled_.load(std::memory_order_relaxed);
  }
  uint64_t total_sets_served() const {
    return total_sets_served_.load(std::memory_order_relaxed);
  }
  uint64_t total_sets_reused() const {
    return total_sets_reused_.load(std::memory_order_relaxed);
  }
  /// Sets whose bytes came back from the spill store instead of sampling.
  uint64_t total_sets_spill_loaded() const {
    return total_sets_spill_loaded_.load(std::memory_order_relaxed);
  }

  /// Heap bytes of the published chunks plus the per-set edge counts and
  /// the chunk directory (allocator capacities included) — what a context
  /// reports as the price of reuse. Concurrent-safe; a grow racing the
  /// walk is counted from the next call on.
  size_t MemoryBytes() const;

 private:
  /// One immutable grow: sets [first, first + sets.num_sets()) of the
  /// stream plus their per-set edge counts. Fully written before its
  /// directory slot is published; never touched again until destruction.
  struct Chunk {
    explicit Chunk(NodeId num_nodes) : sets(num_nodes) {}
    uint64_t first = 0;
    RRCollection sets;
    std::vector<uint64_t> edges;
  };

  /// Chunk directory: copy-on-grow array of chunk pointers. `slots` is
  /// plain (not atomic) — slot j is written once by the writer before the
  /// release store readers synchronize with, and readers only touch
  /// slots below the published chunk count.
  struct Directory {
    explicit Directory(size_t cap) : capacity(cap), slots(new Chunk*[cap]) {}
    size_t capacity;
    std::unique_ptr<Chunk*[]> slots;
  };

  /// The chunk holding stream index `index`, which must be below the
  /// published prefix observed by the caller.
  const Chunk* FindChunk(uint64_t index) const;

  SamplingEngine engine_;  // batch calls guarded by grow_mu_
  std::shared_ptr<RRSpillStore> spill_;  // optional disk tier (own mutex)

  // --- writer state (guarded by grow_mu_) -------------------------------
  std::mutex grow_mu_;
  std::vector<std::unique_ptr<Chunk>> owned_chunks_;     // all ever grown
  std::vector<std::unique_ptr<Directory>> owned_dirs_;   // incl. current
  // --- published state (written under grow_mu_, read lock-free) --------
  std::atomic<Directory*> dir_{nullptr};
  std::atomic<size_t> num_chunks_{0};
  std::atomic<uint64_t> committed_{0};  // prefix length; the publish point
  // --- lifetime accounting ---------------------------------------------
  std::atomic<uint64_t> total_sets_sampled_{0};
  std::atomic<uint64_t> total_sets_served_{0};
  std::atomic<uint64_t> total_sets_reused_{0};
  std::atomic<uint64_t> total_sets_spill_loaded_{0};
};

/// A request's cursor over a SharedRRCache: the SampleSource the serving
/// layer hands to solvers. Starts at stream index 0 — exactly where a
/// standalone run's private engine starts — and tracks per-request reuse.
/// One CachedSampleSource belongs to one request thread; the shared cache
/// behind it is safe for any number of concurrent sources.
class CachedSampleSource final : public SampleSource {
 public:
  explicit CachedSampleSource(SharedRRCache* cache) : cache_(cache) {}

  SamplingEngine& engine() override { return cache_->engine(); }
  const Graph& graph() const override { return cache_->graph(); }
  uint64_t position() const override { return cursor_; }
  void Seek(uint64_t index) override {
    cursor_ = std::max(cursor_, index);
  }

  SampleBatch Fetch(RRCollection* out, uint64_t count,
                    std::vector<uint64_t>* per_set_edges = nullptr) override;
  SampleBatch FetchUntilCost(RRCollection* out, double cost_threshold,
                             uint64_t max_sets) override;

  /// Reuse accounting for this request alone.
  uint64_t sets_reused() const { return sets_reused_; }
  uint64_t sets_sampled() const { return sets_sampled_; }

 private:
  SharedRRCache* cache_;
  uint64_t cursor_ = 0;
  uint64_t sets_reused_ = 0;
  uint64_t sets_sampled_ = 0;
};

}  // namespace timpp

#endif  // TIMPP_SERVING_RR_CACHE_H_
