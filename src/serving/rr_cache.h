// SharedRRCache — one sampling stream's RR sets, cached across requests.
//
// The engine's determinism contract makes RR set i a pure function of
// (seed, i): whichever request first needs index i materializes the same
// bytes any other request would have. So a graph's serving context keeps
// ONE collection per sampling configuration, grown monotonically to the
// largest stream prefix any request has needed (this is the RR-sketch
// observation of Borgs et al. — a single sample pool serves any k — plus
// the QuickIM-style amortization across requests), and every request reads
// its ranges out of it: a request needing θ′ ≤ θ consumes exactly the
// prefix [0, θ′) it would have generated standalone.
//
// Per-set edge counts are stored alongside the sets so replayed ranges
// report the same accounting (edges_examined, traversal_cost) as sampling
// them fresh — request stats stay bit-comparable to standalone runs.
//
// Not thread-safe: the owning GraphContext serializes requests (sampling
// parallelism lives inside the engine).
#ifndef TIMPP_SERVING_RR_CACHE_H_
#define TIMPP_SERVING_RR_CACHE_H_

#include <cstdint>
#include <vector>

#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace timpp {

/// Monotone prefix cache of one engine's global index stream.
class SharedRRCache {
 public:
  /// `graph` is borrowed and must outlive the cache. `config` fixes the
  /// stream (model, sampler mode, seed, hop bound) and the sampling
  /// parallelism; content is thread-count invariant per the engine
  /// contract.
  SharedRRCache(const Graph& graph, const SamplingConfig& config);

  SharedRRCache(const SharedRRCache&) = delete;
  SharedRRCache& operator=(const SharedRRCache&) = delete;

  const Graph& graph() const { return engine_.graph(); }
  SamplingEngine& engine() { return engine_; }

  /// Sets currently cached (== the engine's stream position).
  uint64_t cached_sets() const { return sets_.num_sets(); }

  /// Grows the cache so indices [0, count) are resident. No-op when
  /// already there.
  void EnsurePrefix(uint64_t count);

  /// Appends the stream's sets [first, first + count) to `*out`,
  /// byte-identical to sampling them fresh, growing the cache as needed.
  /// The returned accounting matches a fresh sample of the range;
  /// sets_reused counts how many were already cached when the call began.
  SampleBatch Read(uint64_t first, uint64_t count, RRCollection* out);

  /// Cost-threshold read (Borgs et al.'s stopping rule, bit-equal to
  /// SamplingEngine::SampleUntilCost run from stream position `first`):
  /// appends sets from index `first` while the running traversal cost is
  /// below `cost_threshold` (the crossing set is kept), capped at
  /// `max_sets` appended sets (0 = none), growing the cache as it goes.
  SampleBatch ReadUntilCost(uint64_t first, double cost_threshold,
                            uint64_t max_sets, RRCollection* out);

  /// Lifetime counters across every request served from this cache.
  uint64_t total_sets_sampled() const { return total_sets_sampled_; }
  uint64_t total_sets_served() const { return total_sets_served_; }
  uint64_t total_sets_reused() const { return total_sets_reused_; }

  /// Heap bytes of the shared collection plus the per-set edge counts
  /// (allocator capacities included) — what a context reports as the
  /// price of reuse.
  size_t MemoryBytes() const;

 private:
  SamplingEngine engine_;
  RRCollection sets_;                // stream prefix [0, cached_sets())
  std::vector<uint64_t> edges_;      // per-set edges_examined
  uint64_t total_sets_sampled_ = 0;  // engine work done on behalf of all
  uint64_t total_sets_served_ = 0;   // sets handed to requests
  uint64_t total_sets_reused_ = 0;   // of those, already cached
};

/// A request's cursor over a SharedRRCache: the SampleSource the serving
/// layer hands to solvers. Starts at stream index 0 — exactly where a
/// standalone run's private engine starts — and tracks per-request reuse.
class CachedSampleSource final : public SampleSource {
 public:
  explicit CachedSampleSource(SharedRRCache* cache) : cache_(cache) {}

  SamplingEngine& engine() override { return cache_->engine(); }
  const Graph& graph() const override { return cache_->graph(); }
  uint64_t position() const override { return cursor_; }
  void Seek(uint64_t index) override {
    cursor_ = std::max(cursor_, index);
  }

  SampleBatch Fetch(RRCollection* out, uint64_t count) override;
  SampleBatch FetchUntilCost(RRCollection* out, double cost_threshold,
                             uint64_t max_sets) override;

  /// Reuse accounting for this request alone.
  uint64_t sets_reused() const { return sets_reused_; }
  uint64_t sets_sampled() const { return sets_sampled_; }

 private:
  SharedRRCache* cache_;
  uint64_t cursor_ = 0;
  uint64_t sets_reused_ = 0;
  uint64_t sets_sampled_ = 0;
};

}  // namespace timpp

#endif  // TIMPP_SERVING_RR_CACHE_H_
