#include "serving/graph_context.h"

#include <algorithm>
#include <utility>

namespace timpp {

GraphContext::GraphContext(Graph graph, unsigned num_threads,
                           SampleBackendSpec backend)
    : graph_(std::move(graph)),
      num_threads_(std::max(1u, num_threads)),
      backend_(std::move(backend)) {}

SharedRRCache& GraphContext::CacheFor(const StreamKey& key) {
  auto it = caches_.find(key);
  if (it == caches_.end()) {
    SamplingConfig config;
    config.model = key.model;
    config.custom_model = key.custom_model;
    config.max_hops = key.max_hops;
    config.sampler_mode = key.sampler_mode;
    config.num_threads = num_threads_;
    config.seed = key.seed;
    config.backend = backend_;
    CacheEntry entry;
    entry.cache = std::make_unique<SharedRRCache>(graph_, config);
    it = caches_.emplace(key, std::move(entry)).first;
  }
  it->second.last_used = ++use_tick_;
  return *it->second.cache;
}

size_t GraphContext::EnforceCacheBudget() {
  if (cache_budget_bytes_ == 0) return 0;
  size_t evicted = 0;
  while (!caches_.empty() && SharedMemoryBytes() > cache_budget_bytes_) {
    auto victim = caches_.begin();
    for (auto it = caches_.begin(); it != caches_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    // Preserve lifetime accounting before the stream goes away; a
    // re-created stream starts fresh counters, so reuse ratios would
    // otherwise dip spuriously after every eviction.
    retired_sets_sampled_ += victim->second.cache->total_sets_sampled();
    retired_sets_served_ += victim->second.cache->total_sets_served();
    retired_sets_reused_ += victim->second.cache->total_sets_reused();
    caches_.erase(victim);
    ++evicted;
  }
  streams_evicted_ += evicted;
  return evicted;
}

size_t GraphContext::SharedMemoryBytes() const {
  size_t total = 0;
  for (const auto& [key, entry] : caches_) total += entry.cache->MemoryBytes();
  return total;
}

uint64_t GraphContext::TotalSetsSampled() const {
  uint64_t total = retired_sets_sampled_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_sampled();
  }
  return total;
}

uint64_t GraphContext::TotalSetsServed() const {
  uint64_t total = retired_sets_served_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_served();
  }
  return total;
}

uint64_t GraphContext::TotalSetsReused() const {
  uint64_t total = retired_sets_reused_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_reused();
  }
  return total;
}

void GraphContext::ReleaseCaches() {
  for (const auto& [key, entry] : caches_) {
    retired_sets_sampled_ += entry.cache->total_sets_sampled();
    retired_sets_served_ += entry.cache->total_sets_served();
    retired_sets_reused_ += entry.cache->total_sets_reused();
  }
  caches_.clear();
  phase_cache_.Clear();
}

}  // namespace timpp
