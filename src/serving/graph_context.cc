#include "serving/graph_context.h"

#include <algorithm>
#include <utility>

namespace timpp {

GraphContext::GraphContext(Graph graph, unsigned num_threads)
    : graph_(std::move(graph)), num_threads_(std::max(1u, num_threads)) {}

SharedRRCache& GraphContext::CacheFor(const StreamKey& key) {
  auto it = caches_.find(key);
  if (it == caches_.end()) {
    SamplingConfig config;
    config.model = key.model;
    config.custom_model = key.custom_model;
    config.max_hops = key.max_hops;
    config.sampler_mode = key.sampler_mode;
    config.num_threads = num_threads_;
    config.seed = key.seed;
    it = caches_
             .emplace(key, std::make_unique<SharedRRCache>(graph_, config))
             .first;
  }
  return *it->second;
}

size_t GraphContext::SharedMemoryBytes() const {
  size_t total = 0;
  for (const auto& [key, cache] : caches_) total += cache->MemoryBytes();
  return total;
}

uint64_t GraphContext::TotalSetsSampled() const {
  uint64_t total = 0;
  for (const auto& [key, cache] : caches_) {
    total += cache->total_sets_sampled();
  }
  return total;
}

uint64_t GraphContext::TotalSetsServed() const {
  uint64_t total = 0;
  for (const auto& [key, cache] : caches_) {
    total += cache->total_sets_served();
  }
  return total;
}

uint64_t GraphContext::TotalSetsReused() const {
  uint64_t total = 0;
  for (const auto& [key, cache] : caches_) {
    total += cache->total_sets_reused();
  }
  return total;
}

void GraphContext::ReleaseCaches() {
  caches_.clear();
  phase_cache_.Clear();
}

}  // namespace timpp
