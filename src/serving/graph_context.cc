#include "serving/graph_context.h"

#include <algorithm>
#include <utility>

namespace timpp {

GraphContext::GraphContext(Graph graph, unsigned num_threads,
                           SampleBackendSpec backend, bool pin_threads)
    : graph_(std::move(graph)),
      num_threads_(std::max(1u, num_threads)),
      backend_(std::move(backend)),
      pin_threads_(pin_threads) {}

std::shared_ptr<SharedRRCache> GraphContext::AcquireStream(
    const StreamKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = caches_.find(key);
  if (it == caches_.end()) {
    SamplingConfig config;
    config.model = key.model;
    config.custom_model = key.custom_model;
    config.max_hops = key.max_hops;
    config.sampler_mode = key.sampler_mode;
    config.num_threads = num_threads_;
    config.pin_threads = pin_threads_;
    config.seed = key.seed;
    config.backend = backend_;
    std::shared_ptr<RRSpillStore> spill;
    if (!spill_dir_.empty()) {
      // The store persists across cache generations under this key: the
      // eviction hook filled it, this (re-)creation reads it back.
      auto store = spill_stores_.find(key);
      if (store == spill_stores_.end()) {
        RRSpillOptions spill_options;
        spill_options.dir = spill_dir_;
        spill_options.tuning = spill_tuning_;
        store = spill_stores_
                    .emplace(key, std::make_shared<RRSpillStore>(
                                      graph_.num_nodes(), spill_options))
                    .first;
      }
      spill = store->second;
    }
    CacheEntry entry;
    entry.cache =
        std::make_shared<SharedRRCache>(graph_, config, std::move(spill));
    it = caches_.emplace(key, std::move(entry)).first;
  }
  it->second.last_used = ++use_tick_;
  return it->second.cache;
}

void GraphContext::set_cache_budget_bytes(size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_budget_bytes_ = bytes;
}

size_t GraphContext::cache_budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_budget_bytes_;
}

void GraphContext::set_spill_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  spill_dir_ = std::move(dir);
}

std::string GraphContext::spill_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_dir_;
}

void GraphContext::set_spill_tuning(const RRSpillTuning& tuning) {
  std::lock_guard<std::mutex> lock(mu_);
  spill_tuning_ = tuning;
}

void GraphContext::RetireLocked(const CacheEntry& entry) {
  // Preserve lifetime accounting before the stream leaves the map; a
  // re-created stream starts fresh counters, so reuse ratios would
  // otherwise dip spuriously after every eviction. (An in-flight reader
  // may still advance the detached cache's counters; those last few are
  // the price of not blocking eviction on live readers.)
  retired_sets_sampled_ += entry.cache->total_sets_sampled();
  retired_sets_served_ += entry.cache->total_sets_served();
  retired_sets_reused_ += entry.cache->total_sets_reused();
  retired_sets_spill_loaded_ += entry.cache->total_sets_spill_loaded();
}

size_t GraphContext::EnforceCacheBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_budget_bytes_ == 0) return 0;
  size_t evicted = 0;
  auto resident_bytes = [this] {
    size_t total = 0;
    for (const auto& [key, entry] : caches_) {
      total += entry.cache->MemoryBytes();
    }
    return total;
  };
  while (!caches_.empty() && resident_bytes() > cache_budget_bytes_) {
    auto victim = caches_.begin();
    for (auto it = caches_.begin(); it != caches_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    // Write the victim's published prefix to its spill store first (no-op
    // without one) so the next acquisition of this key reloads from disk.
    // Best-effort: a write failure just means a plain eviction — the
    // successor regenerates, results unchanged.
    (void)victim->second.cache->SpillCommitted();
    RetireLocked(victim->second);
    // Dropping the map's shared_ptr is the whole eviction: a live reader
    // holding an AcquireStream handle keeps the chunks alive; otherwise
    // they free here.
    caches_.erase(victim);
    ++evicted;
  }
  streams_evicted_ += evicted;
  return evicted;
}

size_t GraphContext::SharedMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [key, entry] : caches_) total += entry.cache->MemoryBytes();
  return total;
}

uint64_t GraphContext::TotalSetsSampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = retired_sets_sampled_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_sampled();
  }
  return total;
}

uint64_t GraphContext::TotalSetsServed() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = retired_sets_served_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_served();
  }
  return total;
}

uint64_t GraphContext::TotalSetsReused() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = retired_sets_reused_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_reused();
  }
  return total;
}

uint64_t GraphContext::TotalSetsSpillLoaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = retired_sets_spill_loaded_;
  for (const auto& [key, entry] : caches_) {
    total += entry.cache->total_sets_spill_loaded();
  }
  return total;
}

size_t GraphContext::NumStreams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return caches_.size();
}

uint64_t GraphContext::StreamsEvicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_evicted_;
}

void GraphContext::ReleaseCaches() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, entry] : caches_) RetireLocked(entry);
    caches_.clear();
  }
  phase_cache_.Clear();
}

}  // namespace timpp
