// GraphContext — everything a serving layer keeps alive per graph so that
// requests against it amortize each other's work.
//
// A context owns the Graph, one SharedRRCache per sampling configuration
// ever requested (model × sampler mode × seed × hop bound: different
// configurations are different RR streams and share nothing), and a
// PhaseCache memoizing TIM's KPT estimation and IMM's LB search. Per the
// engine's per-index RNG contract, a request that needs the stream prefix
// [0, θ′) consumes exactly the bytes it would have generated standalone —
// so batch results are bit-identical to standalone runs while the
// sampling cost of a prefix is paid once per context, not once per
// request.
//
// Memory: the shared collections may be byte-capped (`cache_budget_bytes`).
// Past the cap, whole stream caches are evicted least-recently-used —
// re-deriving an evicted stream later costs resampling but never changes
// results (the stream is a pure function of its key), so a capped context
// still serves bit-identical responses. With a spill dir configured
// (`set_spill_dir`), eviction first writes the victim's published prefix
// to a per-key RRSpillStore and the re-created stream preloads it from
// disk — same bytes, sequential reads instead of graph traversal.
// ReleaseCaches() remains the drop-everything escape hatch.
//
// Concurrency: requests run truly concurrently against one context. The
// stream map hands out shared_ptr references (AcquireStream), so LRU
// eviction retires a stream by dropping the map's reference — the chunks
// stay alive until the last in-flight reader releases its handle
// (refcount retirement; eviction never frees memory a live reader can
// reach). The caches themselves are single-writer/multi-reader
// (serving/rr_cache.h), the PhaseCache is a sharded once-map, and the
// context's own bookkeeping (map shape, LRU ticks, retired counters) sits
// behind an internal mutex. Results stay independent of thread count and
// arrival order — the cache is a monotone stream prefix, so any request
// order materializes the same bytes.
#ifndef TIMPP_SERVING_GRAPH_CONTEXT_H_
#define TIMPP_SERVING_GRAPH_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "diffusion/triggering.h"
#include "engine/phase_cache.h"
#include "engine/sample_backend.h"
#include "graph/graph.h"
#include "rrset/rr_spill.h"
#include "serving/rr_cache.h"
#include "util/types.h"

namespace timpp {

/// The sampling configuration facets that select a distinct RR stream.
/// num_threads and the sample backend are deliberately absent: content is
/// invariant to both, so one cache serves any parallelism setting and any
/// backend.
struct StreamKey {
  DiffusionModel model = DiffusionModel::kIC;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  /// Borrowed AND retained: a cache created under this key holds the
  /// pointer for the context's lifetime, so it must outlive the context.
  /// The ServingEngine never populates it (triggering requests run
  /// standalone); only native callers building their own contexts may,
  /// and they own the lifetime.
  const TriggeringModel* custom_model = nullptr;

  auto operator<=>(const StreamKey&) const = default;
};

/// Per-graph serving state. Not copyable; owned by a ServingEngine (or a
/// test). Thread-safe: any number of requests may acquire streams, read,
/// and enforce the budget concurrently.
class GraphContext {
 public:
  /// Takes ownership of `graph`. `num_threads` is the sampling
  /// parallelism every cache engine of this context is built with,
  /// `backend` is where that sampling runs (local threads or process
  /// shards — responses are identical either way), and `pin_threads`
  /// pins those sampling workers to CPUs.
  explicit GraphContext(Graph graph, unsigned num_threads = 1,
                        SampleBackendSpec backend = {},
                        bool pin_threads = false);

  GraphContext(const GraphContext&) = delete;
  GraphContext& operator=(const GraphContext&) = delete;

  const Graph& graph() const { return graph_; }
  unsigned num_threads() const { return num_threads_; }
  const SampleBackendSpec& backend() const { return backend_; }

  /// The shared stream cache for `key`, created on first use and marked
  /// most-recently-used. The returned handle shares ownership: a stream
  /// evicted by EnforceCacheBudget while the caller still reads it stays
  /// fully alive until the handle drops.
  std::shared_ptr<SharedRRCache> AcquireStream(const StreamKey& key);

  /// AcquireStream for single-threaded callers that want a reference and
  /// manage eviction themselves (tests, demos). The reference is only
  /// safe while no concurrent eviction can run.
  SharedRRCache& CacheFor(const StreamKey& key) { return *AcquireStream(key); }

  PhaseCache& phase_cache() { return phase_cache_; }
  const PhaseCache& phase_cache() const { return phase_cache_; }

  /// Byte cap on the shared collections (0 = unlimited). Enforced by
  /// EnforceCacheBudget — typically by the ServingEngine after each
  /// request; callers driving a context directly decide when.
  void set_cache_budget_bytes(size_t bytes);
  size_t cache_budget_bytes() const;

  /// Parent directory of the context's spill tier (empty = no spill).
  /// With a spill dir set, each stream key gets one RRSpillStore shared by
  /// every cache generation under that key: EnforceCacheBudget writes a
  /// victim's published prefix to disk before dropping it, and the
  /// re-created cache preloads those bytes instead of resampling — an
  /// evicted-and-reacquired stream costs sequential disk reads, not graph
  /// traversal. Set before the first AcquireStream; streams created
  /// earlier stay spill-less.
  void set_spill_dir(std::string dir);
  std::string spill_dir() const;

  /// Replay tuning for the per-stream spill stores (readahead depth, SLRU
  /// hot fraction, async IO backend). Timing only — preloaded bytes are
  /// identical at any setting. Applies to stores created afterwards.
  void set_spill_tuning(const RRSpillTuning& tuning);

  /// Evicts least-recently-used stream caches until SharedMemoryBytes()
  /// fits the budget (possibly evicting every stream when even one
  /// exceeds it — re-created on next use, identical by the per-index RNG
  /// contract). An evicted stream still referenced by an in-flight
  /// request survives until that request's handle drops (refcount
  /// retirement); it just stops being offered to new requests. Returns
  /// the number of streams evicted. No-op at budget 0.
  size_t EnforceCacheBudget();

  /// Accounting across every cache of the context (the README's "memory
  /// accounting of shared collections"). Totals include evicted streams'
  /// history, so reuse ratios stay meaningful under a byte cap.
  size_t SharedMemoryBytes() const;
  uint64_t TotalSetsSampled() const;
  uint64_t TotalSetsServed() const;
  uint64_t TotalSetsReused() const;
  /// Sets whose bytes came back from the spill tier instead of sampling
  /// (0 without a spill dir).
  uint64_t TotalSetsSpillLoaded() const;
  size_t NumStreams() const;
  /// Lifetime count of budget evictions (streams dropped, not bytes).
  uint64_t StreamsEvicted() const;

  /// Releases every shared collection and memoized phase (the graph
  /// stays). The next request pays full standalone cost again — the
  /// memory-pressure escape hatch. In-flight readers keep their streams
  /// alive through their handles.
  void ReleaseCaches();

 private:
  struct CacheEntry {
    std::shared_ptr<SharedRRCache> cache;
    uint64_t last_used = 0;
  };

  /// Folds a dying map entry's lifetime counters into the retired totals.
  /// Caller holds mu_.
  void RetireLocked(const CacheEntry& entry);

  Graph graph_;
  unsigned num_threads_;
  SampleBackendSpec backend_;
  bool pin_threads_;
  PhaseCache phase_cache_;
  mutable std::mutex mu_;  // guards everything below
  std::map<StreamKey, CacheEntry> caches_;
  // One disk store per stream key, outliving cache generations: the
  // eviction hook writes into it, the successor cache preloads from it.
  std::map<StreamKey, std::shared_ptr<RRSpillStore>> spill_stores_;
  std::string spill_dir_;
  RRSpillTuning spill_tuning_;
  size_t cache_budget_bytes_ = 0;
  uint64_t use_tick_ = 0;
  uint64_t streams_evicted_ = 0;
  // Carried-over totals of evicted caches (accounting survives eviction).
  uint64_t retired_sets_sampled_ = 0;
  uint64_t retired_sets_served_ = 0;
  uint64_t retired_sets_reused_ = 0;
  uint64_t retired_sets_spill_loaded_ = 0;
};

}  // namespace timpp

#endif  // TIMPP_SERVING_GRAPH_CONTEXT_H_
