// GraphContext — everything a serving layer keeps alive per graph so that
// requests against it amortize each other's work.
//
// A context owns the Graph, one SharedRRCache per sampling configuration
// ever requested (model × sampler mode × seed × hop bound: different
// configurations are different RR streams and share nothing), and a
// PhaseCache memoizing TIM's KPT estimation and IMM's LB search. Per the
// engine's per-index RNG contract, a request that needs the stream prefix
// [0, θ′) consumes exactly the bytes it would have generated standalone —
// so batch results are bit-identical to standalone runs while the
// sampling cost of a prefix is paid once per context, not once per
// request.
//
// Contexts serialize requests through their mutex (the ServingEngine does
// the locking); parallelism comes from the sampling engine's worker pool
// inside each request, which keeps results independent of both the thread
// count and the request arrival order — the cache is a monotone stream
// prefix, so any request order materializes the same bytes.
#ifndef TIMPP_SERVING_GRAPH_CONTEXT_H_
#define TIMPP_SERVING_GRAPH_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "diffusion/triggering.h"
#include "engine/phase_cache.h"
#include "graph/graph.h"
#include "serving/rr_cache.h"
#include "util/types.h"

namespace timpp {

/// The sampling configuration facets that select a distinct RR stream.
/// num_threads is deliberately absent: content is thread-count invariant,
/// so one cache serves any parallelism setting.
struct StreamKey {
  DiffusionModel model = DiffusionModel::kIC;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  /// Borrowed AND retained: a cache created under this key holds the
  /// pointer for the context's lifetime, so it must outlive the context.
  /// The ServingEngine never populates it (triggering requests run
  /// standalone); only native callers building their own contexts may,
  /// and they own the lifetime.
  const TriggeringModel* custom_model = nullptr;

  auto operator<=>(const StreamKey&) const = default;
};

/// Per-graph serving state. Not copyable; owned by a ServingEngine (or a
/// test) and used by one request at a time under mu().
class GraphContext {
 public:
  /// Takes ownership of `graph`. `num_threads` is the sampling
  /// parallelism every cache engine of this context is built with.
  explicit GraphContext(Graph graph, unsigned num_threads = 1);

  GraphContext(const GraphContext&) = delete;
  GraphContext& operator=(const GraphContext&) = delete;

  const Graph& graph() const { return graph_; }
  unsigned num_threads() const { return num_threads_; }

  /// The shared stream cache for `key`, created on first use.
  SharedRRCache& CacheFor(const StreamKey& key);

  PhaseCache& phase_cache() { return phase_cache_; }
  const PhaseCache& phase_cache() const { return phase_cache_; }

  /// Serializes requests against this context.
  std::mutex& mu() { return mu_; }

  /// Accounting across every cache of the context (the README's "memory
  /// accounting of shared collections").
  size_t SharedMemoryBytes() const;
  uint64_t TotalSetsSampled() const;
  uint64_t TotalSetsServed() const;
  uint64_t TotalSetsReused() const;
  size_t NumStreams() const { return caches_.size(); }

  /// Releases every shared collection and memoized phase (the graph
  /// stays). The next request pays full standalone cost again — the
  /// memory-pressure escape hatch.
  void ReleaseCaches();

 private:
  Graph graph_;
  unsigned num_threads_;
  std::map<StreamKey, std::unique_ptr<SharedRRCache>> caches_;
  PhaseCache phase_cache_;
  std::mutex mu_;
};

}  // namespace timpp

#endif  // TIMPP_SERVING_GRAPH_CONTEXT_H_
