// RequestScheduler — the ServingEngine's async admission queue + workers.
//
// Submit() enqueues a request and returns a future; a fixed crew of
// worker threads (util/ThreadPool) drains the queue by calling the
// engine's synchronous Solve, which runs requests truly concurrently
// against the shared per-graph caches. Admission is bounded: once
// `max_pending` requests are queued, further Submits are rejected
// immediately with Status::Unavailable — load shedding at the door
// instead of unbounded latency inside. Responses are deterministic in the
// request options alone, so the completion order of concurrent requests
// never changes what any of them returns.
//
// Lifecycle: the destructor stops admission, drains every request already
// admitted (a returned future is a promise kept), then joins the workers.
#ifndef TIMPP_SERVING_REQUEST_SCHEDULER_H_
#define TIMPP_SERVING_REQUEST_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "serving/serving_engine.h"
#include "util/thread_pool.h"

namespace timpp {

class RequestScheduler {
 public:
  struct Options {
    /// Concurrent request workers (0 = hardware concurrency). Each worker
    /// runs one request at a time; a request's own sampling parallelism
    /// (ServingOptions::num_threads) multiplies on top.
    unsigned num_workers = 0;
    /// Admission bound: queued-but-unstarted requests past this are
    /// rejected with Status::Unavailable (0 = unbounded).
    size_t max_pending = 0;
    /// Pin the worker threads to CPUs.
    bool pin_threads = false;
  };

  /// `engine` must outlive the scheduler (the engine owns it).
  RequestScheduler(ServingEngine* engine, const Options& options);
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Enqueues the request. The future resolves with the solved response,
  /// or immediately with Status::Unavailable when the admission queue is
  /// full (overload) or the scheduler is shutting down.
  std::future<ImResponse> Submit(ImRequest request);

  unsigned num_workers() const { return num_workers_; }
  /// Requests rejected at admission since construction.
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  /// Requests whose futures have been fulfilled.
  uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    ImRequest request;
    std::promise<ImResponse> promise;
  };

  /// One worker: drain jobs until shutdown AND the queue is empty.
  void WorkerLoop();

  ServingEngine* engine_;
  unsigned num_workers_;
  size_t max_pending_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Job> queue_;  // guarded by mu_
  bool shutdown_ = false;  // guarded by mu_

  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};

  // Workers live in the pool; the dispatcher thread calls ParallelRun
  // (whose calling thread runs tasks too), so pool size is workers - 1.
  ThreadPool pool_;
  std::thread dispatcher_;
};

}  // namespace timpp

#endif  // TIMPP_SERVING_REQUEST_SCHEDULER_H_
