#include "serving/serving_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "engine/solve_context.h"
#include "engine/solver_registry.h"
#include "serving/request_scheduler.h"
#include "util/thread_pool.h"

namespace timpp {

namespace {

SolverOptions ToSolverOptions(const ImRequest& request,
                              const ServingOptions& serving) {
  SolverOptions options;
  options.k = request.k;
  options.epsilon = request.epsilon;
  options.ell = request.ell;
  options.model = request.model;
  options.custom_model = request.custom_model;
  options.sampler_mode = request.sampler_mode;
  options.max_hops = request.max_hops;
  options.seed = request.seed;
  options.memory_budget_bytes = request.memory_budget_bytes;
  options.spill_dir = serving.spill_dir;
  options.spill_tuning = serving.spill_tuning;
  options.mc_samples = request.mc_samples;
  options.mc_batch = request.mc_batch;
  options.ris_tau_scale = request.ris_tau_scale;
  options.ris_max_sets = request.ris_max_sets;
  options.num_threads = serving.num_threads;
  options.pin_threads = serving.pin_threads;
  // Standalone-path requests (budgeted, non-RR, custom-model) still run
  // their sampling on the engine-wide backend.
  options.sample_backend = serving.sample_backend;
  return options;
}

/// Whether this run restored an estimation phase (TIM's KPT, IMM's LB)
/// from the PhaseCache — read off the result's own metrics, which a
/// concurrent request can't perturb (a global hit-counter delta could
/// attribute another in-flight request's hit to this one).
bool PhaseHitFromMetrics(const SolverResult& result) {
  return result.Metric("kpt_cache_hit", 0.0) == 1.0 ||
         result.Metric("lb_cache_hit", 0.0) == 1.0;
}

}  // namespace

ServingEngine::ServingEngine(const ServingOptions& options)
    : options_(options) {
  options_.num_threads = std::max(1u, options_.num_threads);
}

ServingEngine::~ServingEngine() = default;

Status ServingEngine::RegisterGraph(const std::string& name, Graph graph) {
  std::lock_guard<std::mutex> lock(mu_);
  if (contexts_.count(name) != 0) {
    return Status::InvalidArgument("graph already registered: " + name);
  }
  auto context = std::make_unique<GraphContext>(
      std::move(graph), options_.num_threads, options_.sample_backend,
      options_.pin_threads);
  context->set_cache_budget_bytes(options_.shared_cache_budget_bytes);
  context->set_spill_dir(options_.spill_dir);
  context->set_spill_tuning(options_.spill_tuning);
  contexts_.emplace(name, std::move(context));
  return Status::OK();
}

GraphContext* ServingEngine::Context(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = contexts_.find(name);
  return it == contexts_.end() ? nullptr : it->second.get();
}

ImResponse ServingEngine::Solve(const ImRequest& request) {
  GraphContext* context = Context(request.graph);
  if (context == nullptr) {
    ImResponse response;
    response.status =
        Status::NotFound("no graph registered as '" + request.graph + "'");
    return response;
  }
  // No per-context lock: requests run concurrently, sharing work through
  // the context's internally synchronized caches.
  return SolveOnContext(*context, request);
}

std::future<ImResponse> ServingEngine::Submit(const ImRequest& request) {
  std::call_once(scheduler_once_, [this] {
    RequestScheduler::Options options;
    options.num_workers = options_.submit_workers;
    options.max_pending = options_.max_pending_requests;
    options.pin_threads = options_.pin_threads;
    scheduler_ = std::make_unique<RequestScheduler>(this, options);
  });
  return scheduler_->Submit(request);
}

RequestScheduler* ServingEngine::scheduler() { return scheduler_.get(); }

ImResponse ServingEngine::SolveOnContext(GraphContext& context,
                                         const ImRequest& request) {
  ImResponse response;
  std::unique_ptr<InfluenceSolver> solver;
  response.status = SolverRegistry::Global().Create(request.algo,
                                                    context.graph(), &solver);
  if (!response.status.ok()) return response;

  const SolverOptions options = ToSolverOptions(request, options_);

  // The shared stream only helps RR-set solvers; a per-request memory
  // budget contradicts a shared collection; and a caller-owned triggering
  // model must not be retained past the request (the caches would keep
  // its pointer alive context-lifetime — see ImRequest::custom_model).
  // All three cases run the plain standalone path.
  if (!solver->UsesSolveContext() || request.memory_budget_bytes != 0 ||
      request.custom_model != nullptr) {
    response.status = solver->Run(options, &response.result);
    return response;
  }

  StreamKey key;
  key.model = request.model;
  key.sampler_mode = request.sampler_mode;
  key.max_hops = request.max_hops;
  key.seed = request.seed;
  key.custom_model = request.custom_model;
  // The shared handle keeps the stream alive even if a concurrent
  // request's budget enforcement evicts it mid-read.
  std::shared_ptr<SharedRRCache> cache = context.AcquireStream(key);
  CachedSampleSource source(cache.get());
  SolveContext solve_context;
  solve_context.source = &source;
  solve_context.phase_cache = &context.phase_cache();

  response.status =
      solver->RunWithContext(options, solve_context, &response.result);
  response.rr_sets_reused = source.sets_reused();
  response.rr_sets_sampled = source.sets_sampled();
  response.phase_cache_hit = PhaseHitFromMetrics(response.result);
  context.EnforceCacheBudget();
  return response;
}

std::vector<ImResponse> ServingEngine::SolveBatch(
    std::span<const ImRequest> requests) {
  std::vector<ImResponse> responses(requests.size());

  // Group request indices by graph: groups are independent (disjoint
  // contexts) and run concurrently; within a group the input order is
  // kept, so reuse accounting and results are deterministic.
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < requests.size(); ++i) {
    groups[requests[i].graph].push_back(i);
  }
  std::vector<const std::vector<size_t>*> group_list;
  group_list.reserve(groups.size());
  for (const auto& [name, indices] : groups) group_list.push_back(&indices);

  const auto solve_group = [&](const std::vector<size_t>& indices) {
    for (size_t i : indices) responses[i] = Solve(requests[i]);
  };
  if (group_list.size() <= 1) {
    for (const auto* indices : group_list) solve_group(*indices);
  } else {
    // Cap concurrent groups so groups × per-request sampling workers stays
    // near the hardware, not groups × workers past it (a 50-graph batch at
    // 8 sampling threads must not spawn ~400 active threads). ParallelRun
    // queues the surplus groups; results are order-independent anyway.
    const unsigned hardware =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned concurrent_groups = static_cast<unsigned>(std::min(
        group_list.size(),
        static_cast<size_t>(
            std::max(1u, hardware / options_.num_threads))));
    ThreadPool pool(concurrent_groups - 1);
    pool.ParallelRun(static_cast<unsigned>(group_list.size()),
                     [&](unsigned g) { solve_group(*group_list[g]); });
  }
  return responses;
}

}  // namespace timpp
