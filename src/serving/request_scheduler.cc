#include "serving/request_scheduler.h"

#include <algorithm>
#include <utility>

namespace timpp {

RequestScheduler::RequestScheduler(ServingEngine* engine,
                                   const Options& options)
    : engine_(engine),
      num_workers_(options.num_workers != 0
                       ? options.num_workers
                       : std::max(1u, std::thread::hardware_concurrency())),
      max_pending_(options.max_pending),
      pool_(num_workers_ - 1, options.pin_threads) {
  const bool pin = options.pin_threads;
  dispatcher_ = std::thread([this, pin] {
    // ParallelRun's calling thread executes tasks alongside the pool, so
    // this dispatcher is worker number num_workers_ - 1; pin it like one.
    if (pin) ThreadPool::PinCurrentThread(num_workers_);
    pool_.ParallelRun(num_workers_, [this](unsigned) { WorkerLoop(); });
  });
}

RequestScheduler::~RequestScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  // Workers drain what was admitted, then exit; futures already handed
  // out all resolve before the join returns.
  work_cv_.notify_all();
  dispatcher_.join();
}

std::future<ImResponse> RequestScheduler::Submit(ImRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<ImResponse> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      ImResponse response;
      response.status = Status::Unavailable("serving engine shutting down");
      job.promise.set_value(std::move(response));
      return future;
    }
    if (max_pending_ != 0 && queue_.size() >= max_pending_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ImResponse response;
      response.status = Status::Unavailable(
          "admission queue full (" + std::to_string(max_pending_) +
          " pending requests)");
      job.promise.set_value(std::move(response));
      return future;
    }
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
  return future;
}

void RequestScheduler::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job.promise.set_value(engine_->Solve(job.request));
    completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace timpp
