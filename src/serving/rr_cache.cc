#include "serving/rr_cache.h"

#include <algorithm>
#include <utility>

namespace timpp {

namespace {

// Growth granularity of the cost-threshold read: mirrors the engine's
// kSetsPerCostBatch so the overshoot past the threshold (cached but not
// yet served sets) matches what a standalone SampleUntilCost would have
// sampled and rewound — overshoot here is not waste, the sets stay cached
// for the next request.
constexpr uint64_t kCostGrowBatch = 256;

// First chunk directory capacity; doubled on exhaustion, so a stream of C
// chunks retires O(log C) directories totalling under 2C pointers.
constexpr size_t kInitialDirCapacity = 16;

}  // namespace

SharedRRCache::SharedRRCache(const Graph& graph, const SamplingConfig& config,
                             std::shared_ptr<RRSpillStore> spill)
    : engine_(graph, config), spill_(std::move(spill)) {}

SharedRRCache::~SharedRRCache() = default;

void SharedRRCache::EnsurePrefix(uint64_t count) {
  if (count <= cached_sets()) return;
  std::lock_guard<std::mutex> lock(grow_mu_);
  // Recheck: another writer may have grown past `count` while this one
  // waited on the lock. committed_ only advances under grow_mu_, so a
  // relaxed load is exact here.
  uint64_t have = committed_.load(std::memory_order_relaxed);
  while (count > have) {
    auto chunk = std::make_unique<Chunk>(graph().num_nodes());
    chunk->first = have;
    uint64_t added = 0;
    // Reload from the spill tier first: a predecessor cache evicted under
    // the byte budget wrote this prefix out, so the bytes come back from
    // sequential disk reads instead of resampling — identical bytes
    // either way (the shard format round-trips exactly). SkipTo keeps the
    // engine's index cursor aligned with the published prefix so a
    // follow-on sample continues at the right global index.
    if (spill_ != nullptr) {
      const uint64_t covered = spill_->CoveredEnd(have, count - have);
      if (covered > have &&
          spill_->ReadRange(have, covered - have, &chunk->sets, &chunk->edges)
              .ok()) {
        added = covered - have;
        engine_.SkipTo(covered);
        total_sets_spill_loaded_.fetch_add(added, std::memory_order_relaxed);
      }
    }
    if (added == 0) {
      const SampleBatch batch =
          engine_.SampleInto(&chunk->sets, count - have, &chunk->edges);
      // A failed backend delivers fewer; account what actually arrived.
      total_sets_sampled_.fetch_add(batch.sets_added,
                                    std::memory_order_relaxed);
      added = batch.sets_added;
    }
    if (added == 0) return;  // nothing to publish

    // Publish: slot write first, then the counters in release order. A
    // reader that acquires the new committed_ value is guaranteed to see
    // the directory state these stores are sequenced after.
    Directory* dir = dir_.load(std::memory_order_relaxed);
    const size_t nc = num_chunks_.load(std::memory_order_relaxed);
    if (dir == nullptr || nc == dir->capacity) {
      auto fresh = std::make_unique<Directory>(
          dir == nullptr ? kInitialDirCapacity : dir->capacity * 2);
      for (size_t i = 0; i < nc; ++i) fresh->slots[i] = dir->slots[i];
      dir = fresh.get();
      // The outgrown directory is retired, not freed: a reader between its
      // dir_ load and its slot reads may still be walking it.
      owned_dirs_.push_back(std::move(fresh));
      dir_.store(dir, std::memory_order_release);
    }
    dir->slots[nc] = chunk.get();
    owned_chunks_.push_back(std::move(chunk));
    num_chunks_.store(nc + 1, std::memory_order_release);
    committed_.store(have + added, std::memory_order_release);
    have += added;
  }
}

Status SharedRRCache::SpillCommitted() {
  if (spill_ == nullptr) return Status::OK();
  std::lock_guard<std::mutex> lock(grow_mu_);
  // Chunks are contiguous and sorted; the store is append-only, so only
  // the part past its end_index() is new. A chunk preloaded FROM the
  // store is entirely below end_index() and skips for free.
  for (const auto& chunk : owned_chunks_) {
    const uint64_t chunk_end = chunk->first + chunk->sets.num_sets();
    const uint64_t from = std::max(chunk->first, spill_->end_index());
    if (from >= chunk_end) continue;
    TIMPP_RETURN_NOT_OK(spill_->SpillRange(
        chunk->sets, chunk->edges, static_cast<size_t>(from - chunk->first),
        static_cast<size_t>(chunk_end - from), from));
  }
  return Status::OK();
}

const SharedRRCache::Chunk* SharedRRCache::FindChunk(uint64_t index) const {
  // Caller already acquire-loaded a committed_ value above `index`; these
  // loads are sequenced after it, so they see at least the directory
  // state published with that prefix.
  const size_t nc = num_chunks_.load(std::memory_order_acquire);
  const Directory* dir = dir_.load(std::memory_order_acquire);
  // Largest chunk whose first index is <= index.
  size_t lo = 0;
  size_t hi = nc;
  while (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    if (dir->slots[mid]->first <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return dir->slots[lo];
}

SampleBatch SharedRRCache::Read(uint64_t first, uint64_t count,
                                RRCollection* out,
                                std::vector<uint64_t>* per_set_edges) {
  SampleBatch batch;
  const uint64_t cached_before = cached_sets();
  if (first + count > cached_before) EnsurePrefix(first + count);
  // A failed engine (dead sample backend) leaves the prefix short; clamp
  // the read so accounting stays in bounds — the caller observes the
  // short batch and the engine's latched status.
  const uint64_t avail = cached_sets();
  if (first + count > avail) {
    count = avail > first ? avail - first : 0;
  }
  const uint64_t end = first + count;
  uint64_t nodes_appended = 0;
  for (uint64_t i = first; i < end;) {
    const Chunk* chunk = FindChunk(i);
    const uint64_t local_first = i - chunk->first;
    const uint64_t local_end =
        std::min<uint64_t>(chunk->sets.num_sets(), end - chunk->first);
    out->AppendRange(chunk->sets, local_first, local_end - local_first);
    for (uint64_t j = local_first; j < local_end; ++j) {
      batch.edges_examined += chunk->edges[j];
      if (per_set_edges != nullptr) per_set_edges->push_back(chunk->edges[j]);
    }
    nodes_appended +=
        chunk->sets.Offset(local_end) - chunk->sets.Offset(local_first);
    i = chunk->first + local_end;
  }
  batch.sets_added = count;
  batch.traversal_cost = batch.edges_examined + nodes_appended;
  batch.sets_reused =
      first >= cached_before
          ? 0
          : std::min<uint64_t>(count, cached_before - first);
  total_sets_served_.fetch_add(batch.sets_added, std::memory_order_relaxed);
  total_sets_reused_.fetch_add(batch.sets_reused, std::memory_order_relaxed);
  return batch;
}

SampleBatch SharedRRCache::ReadUntilCost(uint64_t first, double cost_threshold,
                                         uint64_t max_sets,
                                         RRCollection* out) {
  SampleBatch batch;
  CostAdmission rule;
  rule.cost_threshold = cost_threshold;
  rule.max_sets = max_sets;
  const uint64_t cached_before = cached_sets();
  const Chunk* chunk = nullptr;
  uint64_t i = first;
  while (rule.WantsMore()) {
    if (i >= cached_sets()) {
      EnsurePrefix(i + kCostGrowBatch);
      // The engine refused to grow (failed backend): stop instead of
      // spinning — the caller sees the engine's latched status.
      if (i >= cached_sets()) break;
    }
    // Chunks are immutable, so a cached chunk pointer stays valid and its
    // set count final — advance to the next chunk only when walking off
    // this one's end.
    if (chunk == nullptr || i >= chunk->first + chunk->sets.num_sets()) {
      chunk = FindChunk(i);
    }
    const uint64_t j = i - chunk->first;
    const auto set = chunk->sets.Set(static_cast<RRSetId>(j));
    out->Add(set, chunk->sets.Width(static_cast<RRSetId>(j)));
    batch.edges_examined += chunk->edges[j];
    rule.Admit(chunk->edges[j] + set.size());
    if (i < cached_before) ++batch.sets_reused;
    ++i;
  }
  batch.sets_added = rule.sets_admitted;
  batch.traversal_cost = rule.traversal_cost;
  batch.hit_set_cap = rule.hit_set_cap;
  total_sets_served_.fetch_add(batch.sets_added, std::memory_order_relaxed);
  total_sets_reused_.fetch_add(batch.sets_reused, std::memory_order_relaxed);
  return batch;
}

size_t SharedRRCache::MemoryBytes() const {
  // Acquire the published prefix first so the directory walk below is
  // ordered after a publish we synchronized with.
  (void)committed_.load(std::memory_order_acquire);
  const size_t nc = num_chunks_.load(std::memory_order_acquire);
  const Directory* dir = dir_.load(std::memory_order_acquire);
  size_t total = 0;
  for (size_t i = 0; i < nc; ++i) {
    const Chunk* chunk = dir->slots[i];
    total += chunk->sets.MemoryBytes() +
             chunk->edges.capacity() * sizeof(uint64_t);
  }
  if (dir != nullptr) total += dir->capacity * sizeof(Chunk*);
  return total;
}

SampleBatch CachedSampleSource::Fetch(RRCollection* out, uint64_t count,
                                      std::vector<uint64_t>* per_set_edges) {
  SampleBatch batch = cache_->Read(cursor_, count, out, per_set_edges);
  cursor_ += batch.sets_added;
  sets_reused_ += batch.sets_reused;
  sets_sampled_ += batch.sets_added - batch.sets_reused;
  return batch;
}

SampleBatch CachedSampleSource::FetchUntilCost(RRCollection* out,
                                               double cost_threshold,
                                               uint64_t max_sets) {
  SampleBatch batch =
      cache_->ReadUntilCost(cursor_, cost_threshold, max_sets, out);
  cursor_ += batch.sets_added;
  sets_reused_ += batch.sets_reused;
  sets_sampled_ += batch.sets_added - batch.sets_reused;
  return batch;
}

}  // namespace timpp
