#include "serving/rr_cache.h"

#include <algorithm>

namespace timpp {

namespace {

// Growth granularity of the cost-threshold read: mirrors the engine's
// kSetsPerCostBatch so the overshoot past the threshold (cached but not
// yet served sets) matches what a standalone SampleUntilCost would have
// sampled and rewound — overshoot here is not waste, the sets stay cached
// for the next request.
constexpr uint64_t kCostGrowBatch = 256;

}  // namespace

SharedRRCache::SharedRRCache(const Graph& graph, const SamplingConfig& config)
    : engine_(graph, config), sets_(graph.num_nodes()) {}

void SharedRRCache::EnsurePrefix(uint64_t count) {
  if (count <= cached_sets()) return;
  const uint64_t grow = count - cached_sets();
  const SampleBatch batch = engine_.SampleInto(&sets_, grow, &edges_);
  // A failed backend delivers fewer; account what actually arrived.
  total_sets_sampled_ += batch.sets_added;
}

SampleBatch SharedRRCache::Read(uint64_t first, uint64_t count,
                                RRCollection* out) {
  SampleBatch batch;
  const uint64_t cached_before = cached_sets();
  EnsurePrefix(first + count);
  // A failed engine (dead sample backend) leaves the prefix short; clamp
  // the read so accounting stays in bounds — the caller observes the
  // short batch and the engine's latched status.
  if (first + count > cached_sets()) {
    count = cached_sets() > first ? cached_sets() - first : 0;
  }
  out->AppendRange(sets_, first, count);
  for (uint64_t i = first; i < first + count; ++i) {
    batch.edges_examined += edges_[i];
  }
  batch.sets_added = count;
  batch.traversal_cost =
      batch.edges_examined +
      (sets_.Offset(first + count) - sets_.Offset(first));
  batch.sets_reused =
      first >= cached_before
          ? 0
          : std::min<uint64_t>(count, cached_before - first);
  total_sets_served_ += batch.sets_added;
  total_sets_reused_ += batch.sets_reused;
  return batch;
}

SampleBatch SharedRRCache::ReadUntilCost(uint64_t first, double cost_threshold,
                                         uint64_t max_sets,
                                         RRCollection* out) {
  SampleBatch batch;
  CostAdmission rule;
  rule.cost_threshold = cost_threshold;
  rule.max_sets = max_sets;
  const uint64_t cached_before = cached_sets();
  uint64_t i = first;
  while (rule.WantsMore()) {
    if (i >= cached_sets()) {
      EnsurePrefix(cached_sets() + kCostGrowBatch);
      // The engine refused to grow (failed backend): stop instead of
      // spinning — the caller sees the engine's latched status.
      if (i >= cached_sets()) break;
    }
    const auto set = sets_.Set(static_cast<RRSetId>(i));
    out->Add(set, sets_.Width(static_cast<RRSetId>(i)));
    batch.edges_examined += edges_[i];
    rule.Admit(edges_[i] + set.size());
    if (i < cached_before) ++batch.sets_reused;
    ++i;
  }
  batch.sets_added = rule.sets_admitted;
  batch.traversal_cost = rule.traversal_cost;
  batch.hit_set_cap = rule.hit_set_cap;
  total_sets_served_ += batch.sets_added;
  total_sets_reused_ += batch.sets_reused;
  return batch;
}

size_t SharedRRCache::MemoryBytes() const {
  return sets_.MemoryBytes() + edges_.capacity() * sizeof(uint64_t);
}

SampleBatch CachedSampleSource::Fetch(RRCollection* out, uint64_t count) {
  SampleBatch batch = cache_->Read(cursor_, count, out);
  cursor_ += batch.sets_added;
  sets_reused_ += batch.sets_reused;
  sets_sampled_ += batch.sets_added - batch.sets_reused;
  return batch;
}

SampleBatch CachedSampleSource::FetchUntilCost(RRCollection* out,
                                               double cost_threshold,
                                               uint64_t max_sets) {
  SampleBatch batch =
      cache_->ReadUntilCost(cursor_, cost_threshold, max_sets, out);
  cursor_ += batch.sets_added;
  sets_reused_ += batch.sets_reused;
  sets_sampled_ += batch.sets_added - batch.sets_reused;
  return batch;
}

}  // namespace timpp
