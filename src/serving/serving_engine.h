// ServingEngine — the request-serving layer on top of SolverRegistry.
//
// Register graphs once; submit (graph, algo, k, ε, …) requests — singly or
// in batches — and get back the exact result a standalone solver run with
// the same options would have produced, with the sampling and estimation
// work shared across requests through each graph's GraphContext
// (cross-request RR-sketch prefix reuse + KPT/LB memoization; see
// serving/graph_context.h). Every response reports its reuse accounting,
// so callers can see — and tests can assert — that a batch of N requests
// sampled fewer RR sets than N standalone runs.
//
// Concurrency model: Solve is thread-safe AND concurrent — requests
// against the same graph run in parallel, sharing the context's RR-sketch
// prefix through the lock-free single-writer/multi-reader SharedRRCache
// and the once-computing PhaseCache (serving/rr_cache.h,
// engine/phase_cache.h). Submit() adds an async path: a bounded admission
// queue feeding a worker crew, with overload shed at the door as
// Status::Unavailable. Responses are deterministic in the request options
// alone — independent of thread count, batch grouping, concurrency level,
// and arrival order, because the shared caches are monotone stream
// prefixes whose content depends only on indices. (The per-response reuse
// accounting — rr_sets_reused / rr_sets_sampled — reflects actual cache
// state at read time, so under concurrent execution it may attribute
// sampling work to a different overlapping request than a serial run
// would; the solver results themselves never move.)
#ifndef TIMPP_SERVING_SERVING_ENGINE_H_
#define TIMPP_SERVING_SERVING_ENGINE_H_

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "engine/solver.h"
#include "graph/graph.h"
#include "serving/graph_context.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Engine-wide settings.
struct ServingOptions {
  /// Sampling worker threads inside each request (results are invariant
  /// to this value; it is pure throughput).
  unsigned num_threads = 1;
  /// Where each context's sampling runs (local threads or process
  /// shards; engine/sample_backend.h). Responses are invariant to the
  /// backend — the shared stream caches are keyed without it.
  SampleBackendSpec sample_backend;
  /// Byte cap (0 = unlimited) on each graph context's shared RR
  /// collections, enforced after every request by LRU eviction of whole
  /// streams (GraphContext::EnforceCacheBudget). A capped engine returns
  /// bit-identical responses — evicted streams are re-derived on demand —
  /// at the price of resampling.
  size_t shared_cache_budget_bytes = 0;
  /// Parent directory for the out-of-core spill tier (empty = none).
  /// Two effects: budget evictions of shared streams write the victim's
  /// prefix to disk and the re-created stream preloads it instead of
  /// resampling (GraphContext::set_spill_dir), and budgeted standalone
  /// requests spill their non-resident RR ranges there instead of
  /// regenerating per greedy round (SolverOptions::spill_dir). Responses
  /// stay bit-identical either way.
  std::string spill_dir;
  /// Spill replay tuning shared by both spill consumers (stream preload
  /// and standalone budgeted requests); see SolverOptions::spill_tuning.
  RRSpillTuning spill_tuning;
  /// Concurrent request workers behind Submit() (0 = hardware
  /// concurrency). Created lazily on the first Submit; the synchronous
  /// Solve/SolveBatch paths never start them.
  unsigned submit_workers = 0;
  /// Admission bound for Submit(): queued-but-unstarted requests past
  /// this are rejected with Status::Unavailable (0 = unbounded).
  size_t max_pending_requests = 1024;
  /// Pin worker threads (request workers and each request's sampling
  /// workers) to CPUs. Placement only — results are invariant to it.
  bool pin_threads = false;
};

/// One influence-maximization request. Field semantics match
/// SolverOptions; defaults are the library defaults.
struct ImRequest {
  /// Registered graph name.
  std::string graph;
  /// Registry solver name ("tim+", "imm", "ris", "celf", ...).
  std::string algo = "tim+";
  int k = 50;
  double epsilon = 0.1;
  double ell = 1.0;
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; must outlive the request (API users only — the CLI batch
  /// format cannot express it). Triggering-model requests always run the
  /// standalone path: the shared caches would otherwise retain this
  /// pointer for the context's lifetime, dangling once the caller frees
  /// the model.
  const TriggeringModel* custom_model = nullptr;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0x7145ULL;
  /// Per-request resident-memory cap. A budgeted request runs standalone
  /// (no shared-collection reuse): the budget contract is about THIS
  /// request's resident bytes, which a shared collection would make
  /// meaningless. Seeds still match the equivalent standalone run.
  size_t memory_budget_bytes = 0;
  /// Family-specific knobs (ignored by solvers outside the family).
  uint64_t mc_samples = 10000;
  /// Cascade batching of MC spread estimates (greedy/CELF family, IRIE;
  /// batch key "mc_batch"). MC solvers never touch the shared RR
  /// streams, so this knob does not participate in any cache key.
  McBatchMode mc_batch = McBatchMode::kScalar;
  double ris_tau_scale = 1.0;
  uint64_t ris_max_sets = 0;
};

/// One request's outcome. `result` is meaningful only when status is OK.
struct ImResponse {
  Status status;
  SolverResult result;
  /// RR sets this request consumed that were already in the shared
  /// collection (zero work), vs freshly sampled on its behalf (work paid
  /// once, reusable by later requests). Standalone-path requests
  /// (budgeted, or non-RR algorithms) report 0/0.
  uint64_t rr_sets_reused = 0;
  uint64_t rr_sets_sampled = 0;
  /// An estimation phase (TIM's KPT, IMM's LB) was served from the
  /// context's PhaseCache.
  bool phase_cache_hit = false;
};

class RequestScheduler;

/// Thread-safe multi-graph request server.
class ServingEngine {
 public:
  explicit ServingEngine(const ServingOptions& options = {});
  /// Stops admission, drains every Submit already admitted, joins the
  /// workers.
  ~ServingEngine();

  /// Takes ownership of `graph` under `name`. InvalidArgument on
  /// duplicate names.
  Status RegisterGraph(const std::string& name, Graph graph);

  /// The context registered under `name` (nullptr if unknown). Owned by
  /// the engine; useful for accounting and cache management.
  GraphContext* Context(const std::string& name);

  /// Solves one request (blocking). Never throws; failures come back in
  /// ImResponse::status. Safe to call from any number of threads
  /// concurrently — same-graph requests share work through the context
  /// caches while they run in parallel.
  ImResponse Solve(const ImRequest& request);

  /// Async path: enqueues the request for the worker crew and returns a
  /// future. The future resolves with the solved response — or
  /// immediately with Status::Unavailable when the admission queue is at
  /// max_pending_requests (overload shedding). Workers start lazily on
  /// the first Submit.
  std::future<ImResponse> Submit(const ImRequest& request);

  /// Solves a batch, returning responses in request order. Requests are
  /// grouped by graph; groups run concurrently, requests within a group
  /// sequentially (which keeps per-response reuse accounting
  /// deterministic; use Submit for intra-graph concurrency).
  std::vector<ImResponse> SolveBatch(std::span<const ImRequest> requests);

  /// The scheduler behind Submit (accounting: rejected/completed).
  /// nullptr until the first Submit.
  RequestScheduler* scheduler();

 private:
  ImResponse SolveOnContext(GraphContext& context, const ImRequest& request);

  ServingOptions options_;
  std::mutex mu_;  // guards contexts_ (map shape; contexts self-lock)
  std::map<std::string, std::unique_ptr<GraphContext>> contexts_;
  std::once_flag scheduler_once_;
  std::unique_ptr<RequestScheduler> scheduler_;
};

}  // namespace timpp

#endif  // TIMPP_SERVING_SERVING_ENGINE_H_
