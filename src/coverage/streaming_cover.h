// Greedy maximum coverage in O(n) working memory — the §7.2 memory story
// for the non-RIS algorithms. Where GreedyMaxCover needs every RR set plus
// an inverted index resident, the streaming variant holds only per-node
// coverage counts and a per-set liveness bit, and re-derives the counts
// each greedy round by streaming the sets past them: retained sets are
// read from a budget-bounded prefix cache, and sets that never fit in
// memory are regenerated on the fly through SamplingEngine::VisitSamples
// (exact, by the per-index RNG contract). This is the sample-and-discard
// trick of Borgs et al.'s RR framework and SKIM-style sketching: trade k
// extra sampling passes for an O(n + θ/8)-byte footprint.
//
// The selection rule — argmax live-coverage count, ties to the smaller
// node id — is identical to GreedyMaxCover's, and recomputing counts from
// scratch each round equals decrementing them incrementally, so the
// returned CoverResult is bit-identical to the indexed path on the same
// θ sets. Budgeted TIM/IMM therefore return the same seeds as budget-off
// runs, only slower.
#ifndef TIMPP_COVERAGE_STREAMING_COVER_H_
#define TIMPP_COVERAGE_STREAMING_COVER_H_

#include <cstddef>
#include <cstdint>

#include "coverage/greedy_cover.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"

namespace timpp {

/// CoverResult plus the cost of obtaining it without retained sets.
struct StreamingCoverResult {
  CoverResult cover;
  /// Greedy rounds that regenerated at least one non-cached set (<= k;
  /// 0 when the cache held every set).
  uint64_t regeneration_passes = 0;
  /// RR sets regenerated across all rounds (a set already known dead is
  /// skipped, so later rounds regenerate monotonically fewer).
  uint64_t sets_regenerated = 0;
  /// Edges re-examined by regeneration (the extra traversal cost the
  /// budget trades for memory; add to a run's edges_examined accounting).
  uint64_t edges_examined = 0;
};

/// Greedy max coverage over the θ = `total_sets` RR sets of global engine
/// indices [first_index, first_index + total_sets). `cache` must hold the
/// sets of indices [first_index, first_index + cache.num_sets()) — any
/// prefix, including none — and needs no inverted index; the remaining
/// sets are regenerated from `engine` each round. Bit-identical to
/// GreedyMaxCover(full collection, k).
StreamingCoverResult StreamingGreedyMaxCover(SamplingEngine& engine,
                                             const RRCollection& cache,
                                             uint64_t first_index,
                                             uint64_t total_sets, int k);

/// Largest prefix length p such that a collection holding only the first
/// p sets of `rr` has DataBytes() <= budget_bytes (without index). The
/// budgeted selection truncates to this prefix after the engine's
/// batch-granular budget stop overshoots.
size_t MaxPrefixUnderDataBudget(const RRCollection& rr, size_t budget_bytes);

/// Whether `rr` would still be within `budget_bytes` of DataBytes() after
/// BuildIndex() — if so, budgeted selection can take the fast indexed
/// GreedyMaxCover path and remain under budget.
bool IndexedDataBytesFitBudget(const RRCollection& rr, size_t budget_bytes);

}  // namespace timpp

#endif  // TIMPP_COVERAGE_STREAMING_COVER_H_
