// Greedy maximum coverage in O(n) working memory — the §7.2 memory story
// for the non-RIS algorithms. Where GreedyMaxCover needs every RR set plus
// an inverted index resident, the streaming variant holds only per-node
// coverage counts and a per-set liveness bit, and re-derives the counts
// each greedy round by streaming the sets past them: retained sets are
// read from a budget-bounded prefix cache, and sets that never fit in
// memory are regenerated on the fly through SamplingEngine::VisitSamples
// (exact, by the per-index RNG contract). This is the sample-and-discard
// trick of Borgs et al.'s RR framework and SKIM-style sketching: trade k
// extra sampling passes for an O(n + θ/8)-byte footprint.
//
// The selection rule — argmax live-coverage count, ties to the smaller
// node id — is identical to GreedyMaxCover's, and recomputing counts from
// scratch each round equals decrementing them incrementally, so the
// returned CoverResult is bit-identical to the indexed path on the same
// θ sets. Budgeted TIM/IMM therefore return the same seeds as budget-off
// runs, only slower.
#ifndef TIMPP_COVERAGE_STREAMING_COVER_H_
#define TIMPP_COVERAGE_STREAMING_COVER_H_

#include <cstddef>
#include <cstdint>

#include "coverage/greedy_cover.h"
#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_spill.h"

namespace timpp {

/// CoverResult plus the cost of obtaining it without retained sets.
struct StreamingCoverResult {
  CoverResult cover;
  /// Greedy rounds that regenerated at least one non-cached set (<= k;
  /// 0 when the cache and the spill store held every set).
  uint64_t regeneration_passes = 0;
  /// RR sets regenerated across all rounds (a set already known dead is
  /// skipped, so later rounds regenerate monotonically fewer).
  uint64_t sets_regenerated = 0;
  /// Edges re-examined by regeneration (the extra traversal cost the
  /// budget trades for memory; add to a run's edges_examined accounting).
  uint64_t edges_examined = 0;
  /// Greedy rounds that replayed at least one set from the spill store,
  /// and sets so replayed — the disk reads that displaced regeneration.
  uint64_t spill_read_passes = 0;
  uint64_t sets_spill_read = 0;
};

/// Greedy max coverage over the θ = `total_sets` RR sets of global engine
/// indices [first_index, first_index + total_sets). `cache` must hold the
/// sets of indices [first_index, first_index + cache.num_sets()) — any
/// prefix, including none — and needs no inverted index; the remaining
/// sets are replayed from `spill` where its chunks cover them (when a
/// store is given) and regenerated from `engine` otherwise. Replayed sets
/// are byte-identical to regenerated ones, so the result is bit-identical
/// to GreedyMaxCover(full collection, k) either way — the store only
/// converts traversal passes into sequential disk reads. A spill read
/// error falls back to regeneration for the remainder of that round.
StreamingCoverResult StreamingGreedyMaxCover(SamplingEngine& engine,
                                             const RRCollection& cache,
                                             uint64_t first_index,
                                             uint64_t total_sets, int k,
                                             RRSpillStore* spill = nullptr);

/// Accounting of one SpillFillTo call.
struct SpillFillResult {
  /// Summed sampling accounting of the filled batches (edges_examined
  /// feeds the run's totals exactly as resident sampling would).
  SampleBatch batch;
  /// Sets written to the store by this call.
  uint64_t sets_spilled = 0;
  /// False when a spill write failed: sampling stopped early and the
  /// uncovered range stays a gap (streaming cover regenerates it — slower,
  /// never wrong).
  bool spill_ok = true;
};

/// Materializes the stream range [source.position(), target_index) into
/// `spill` in small transient batches (never holding more than one batch
/// resident), skipping any prefix the store already covers, then seeks
/// `source` to `target_index`. This is how the budget path gets suffix
/// sets onto disk exactly once instead of regenerating them every greedy
/// round: sample → spill → drop, preserving stream positions bit-for-bit.
SpillFillResult SpillFillTo(SampleSource& source, RRSpillStore& spill,
                            uint64_t target_index);

/// Largest prefix length p such that a collection holding only the first
/// p sets of `rr` has DataBytes() <= budget_bytes (without index). The
/// budgeted selection truncates to this prefix after the engine's
/// batch-granular budget stop overshoots.
size_t MaxPrefixUnderDataBudget(const RRCollection& rr, size_t budget_bytes);

/// Whether `rr` would still be within `budget_bytes` of DataBytes() after
/// BuildIndex() — if so, budgeted selection can take the fast indexed
/// GreedyMaxCover path and remain under budget.
bool IndexedDataBytesFitBudget(const RRCollection& rr, size_t budget_bytes);

}  // namespace timpp

#endif  // TIMPP_COVERAGE_STREAMING_COVER_H_
