#include "coverage/greedy_cover.h"

#include <algorithm>
#include <queue>

#include "util/bit_vector.h"

namespace timpp {

namespace {

// Shared selection bookkeeping: marks `v` selected, kills its live sets and
// decrements the live-coverage counts of every member of a dying set.
// Returns the marginal coverage of `v`.
uint64_t SelectNode(const RRCollection& rr, NodeId v, BitVector* dead,
                    std::vector<uint64_t>* counts) {
  uint64_t marginal = 0;
  for (RRSetId id : rr.SetsContaining(v)) {
    if (dead->Get(id)) continue;
    dead->Set(id);
    ++marginal;
    for (NodeId u : rr.Set(id)) --(*counts)[u];
  }
  return marginal;
}

}  // namespace

CoverResult GreedyMaxCover(const RRCollection& rr, int k) {
  return GreedyMaxCoverWithBucketCap(rr, k, uint64_t{1} << 20);
}

CoverResult GreedyMaxCoverWithBucketCap(const RRCollection& rr, int k,
                                        uint64_t max_buckets) {
  const NodeId n = rr.num_graph_nodes();
  CoverResult result;
  if (k <= 0 || n == 0) return result;

  std::vector<uint64_t> counts(n);
  uint64_t max_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    counts[v] = rr.CoverageCount(v);
    max_count = std::max(max_count, counts[v]);
  }

  // Bucket queue with lazy decrease: every unselected node sits in exactly
  // one bucket, possibly higher than its current count (counts only fall).
  // The cursor walks from the top bucket downward; before a bucket is
  // trusted its stale entries are relocated to their true buckets (each
  // relocation moves a node strictly down, so total relocation work is
  // bounded by the total count decrements, O(θ·avg|R|)). The selection
  // from the cleaned top bucket is the exact greedy rule — max current
  // count, ties to the smaller node id — so results are bit-identical to
  // the heap path.
  //
  // Buckets hold single counts (shift 0) while max_count is small — then a
  // cleaned bucket is all one count and the scan reduces to min-id. Counts
  // scale with θ, not n, so a hub covered by a θ-sized fraction of sets
  // would make a one-bucket-per-count array allocate O(θ) vectors; the
  // shift coarsens buckets to count *ranges* just enough to cap the array,
  // keeping memory O(min(max_count, 2^20) + n) while the in-bucket scan
  // stays exact.
  int shift = 0;
  while ((max_count >> shift) >= std::max<uint64_t>(1, max_buckets)) ++shift;
  const auto bucket_of = [shift](uint64_t count) { return count >> shift; };

  std::vector<std::vector<NodeId>> buckets(bucket_of(max_count) + 1);
  for (NodeId v = 0; v < n; ++v) buckets[bucket_of(counts[v])].push_back(v);

  BitVector dead(rr.num_sets());
  uint64_t cursor = bucket_of(max_count);

  while (static_cast<int>(result.seeds.size()) < k) {
    // Advance the cursor to the highest bucket with a current entry.
    bool found = false;
    while (true) {
      std::vector<NodeId>& bucket = buckets[cursor];
      size_t i = 0;
      while (i < bucket.size()) {
        const NodeId v = bucket[i];
        if (bucket_of(counts[v]) != cursor) {
          buckets[bucket_of(counts[v])].push_back(v);  // lazy decrease
          bucket[i] = bucket.back();
          bucket.pop_back();
        } else {
          ++i;
        }
      }
      if (!bucket.empty()) {
        found = true;
        break;
      }
      if (cursor == 0) break;
      --cursor;
    }
    if (!found) break;  // every node selected

    // Exact argmax within the top bucket (count desc, id asc). With
    // shift 0 all counts here equal the cursor and this is a min-id scan.
    std::vector<NodeId>& bucket = buckets[cursor];
    size_t best = 0;
    for (size_t i = 1; i < bucket.size(); ++i) {
      if (counts[bucket[i]] > counts[bucket[best]] ||
          (counts[bucket[i]] == counts[bucket[best]] &&
           bucket[i] < bucket[best])) {
        best = i;
      }
    }
    const NodeId v = bucket[best];
    bucket[best] = bucket.back();
    bucket.pop_back();

    const uint64_t marginal = SelectNode(rr, v, &dead, &counts);
    result.seeds.push_back(v);
    result.marginal_coverage.push_back(marginal);
    result.covered_sets += marginal;
  }

  result.covered_fraction =
      rr.num_sets() > 0 ? static_cast<double>(result.covered_sets) /
                              static_cast<double>(rr.num_sets())
                        : 0.0;
  return result;
}

CoverResult HeapGreedyMaxCover(const RRCollection& rr, int k) {
  const NodeId n = rr.num_graph_nodes();
  CoverResult result;
  if (k <= 0 || n == 0) return result;

  std::vector<uint64_t> counts(n);
  for (NodeId v = 0; v < n; ++v) counts[v] = rr.CoverageCount(v);

  // Max-heap ordered by (count desc, id asc); entries carry the count at
  // push time. Coverage counts only decrease, so a popped entry whose count
  // is still current is the global argmax (lazy-forward evaluation).
  struct Entry {
    uint64_t count;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (count != other.count) return count < other.count;
      return node > other.node;
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < n; ++v) heap.push(Entry{counts[v], v});

  BitVector dead(rr.num_sets());
  std::vector<char> selected(n, 0);

  while (static_cast<int>(result.seeds.size()) < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (selected[top.node]) continue;
    if (top.count != counts[top.node]) {
      heap.push(Entry{counts[top.node], top.node});  // stale; re-evaluate
      continue;
    }
    selected[top.node] = 1;
    uint64_t marginal = SelectNode(rr, top.node, &dead, &counts);
    result.seeds.push_back(top.node);
    result.marginal_coverage.push_back(marginal);
    result.covered_sets += marginal;
  }

  result.covered_fraction =
      rr.num_sets() > 0 ? static_cast<double>(result.covered_sets) /
                              static_cast<double>(rr.num_sets())
                        : 0.0;
  return result;
}

CoverResult NaiveGreedyMaxCover(const RRCollection& rr, int k) {
  const NodeId n = rr.num_graph_nodes();
  CoverResult result;
  if (k <= 0 || n == 0) return result;

  std::vector<uint64_t> counts(n);
  for (NodeId v = 0; v < n; ++v) counts[v] = rr.CoverageCount(v);

  BitVector dead(rr.num_sets());
  std::vector<char> selected(n, 0);

  for (int round = 0; round < k; ++round) {
    NodeId best = kInvalidNode;
    uint64_t best_count = 0;
    bool found = false;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (!found || counts[v] > best_count) {
        best = v;
        best_count = counts[v];
        found = true;
      }
    }
    if (!found) break;
    selected[best] = 1;
    uint64_t marginal = SelectNode(rr, best, &dead, &counts);
    result.seeds.push_back(best);
    result.marginal_coverage.push_back(marginal);
    result.covered_sets += marginal;
  }

  result.covered_fraction =
      rr.num_sets() > 0 ? static_cast<double>(result.covered_sets) /
                              static_cast<double>(rr.num_sets())
                        : 0.0;
  return result;
}

uint64_t BruteForceMaxCover(const RRCollection& rr, int k) {
  const NodeId n = rr.num_graph_nodes();
  if (k <= 0 || n == 0) return 0;
  const int kk = std::min<int>(k, n);

  std::vector<NodeId> subset(kk);
  for (int i = 0; i < kk; ++i) subset[i] = static_cast<NodeId>(i);

  BitVector covered(rr.num_sets());
  uint64_t best = 0;
  while (true) {
    covered.Reset();
    for (NodeId v : subset) {
      for (RRSetId id : rr.SetsContaining(v)) covered.Set(id);
    }
    best = std::max<uint64_t>(best, covered.Count());

    int i = kk - 1;
    while (i >= 0 && subset[i] == n - static_cast<NodeId>(kk - i)) --i;
    if (i < 0) break;
    ++subset[i];
    for (int j = i + 1; j < kk; ++j) subset[j] = subset[j - 1] + 1;
  }
  return best;
}

}  // namespace timpp
