#include "coverage/greedy_cover.h"

#include <algorithm>
#include <queue>

#include "util/bit_vector.h"

namespace timpp {

namespace {

// Shared selection bookkeeping: marks `v` selected, kills its live sets and
// decrements the live-coverage counts of every member of a dying set.
// Returns the marginal coverage of `v`.
uint64_t SelectNode(const RRCollection& rr, NodeId v, BitVector* dead,
                    std::vector<uint64_t>* counts) {
  uint64_t marginal = 0;
  for (RRSetId id : rr.SetsContaining(v)) {
    if (dead->Get(id)) continue;
    dead->Set(id);
    ++marginal;
    for (NodeId u : rr.Set(id)) --(*counts)[u];
  }
  return marginal;
}

}  // namespace

CoverResult GreedyMaxCover(const RRCollection& rr, int k) {
  const NodeId n = rr.num_graph_nodes();
  CoverResult result;
  if (k <= 0 || n == 0) return result;

  std::vector<uint64_t> counts(n);
  for (NodeId v = 0; v < n; ++v) counts[v] = rr.CoverageCount(v);

  // Max-heap ordered by (count desc, id asc); entries carry the count at
  // push time. Coverage counts only decrease, so a popped entry whose count
  // is still current is the global argmax (lazy-forward evaluation).
  struct Entry {
    uint64_t count;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (count != other.count) return count < other.count;
      return node > other.node;
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId v = 0; v < n; ++v) heap.push(Entry{counts[v], v});

  BitVector dead(rr.num_sets());
  std::vector<char> selected(n, 0);

  while (static_cast<int>(result.seeds.size()) < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (selected[top.node]) continue;
    if (top.count != counts[top.node]) {
      heap.push(Entry{counts[top.node], top.node});  // stale; re-evaluate
      continue;
    }
    selected[top.node] = 1;
    uint64_t marginal = SelectNode(rr, top.node, &dead, &counts);
    result.seeds.push_back(top.node);
    result.marginal_coverage.push_back(marginal);
    result.covered_sets += marginal;
  }

  result.covered_fraction =
      rr.num_sets() > 0 ? static_cast<double>(result.covered_sets) /
                              static_cast<double>(rr.num_sets())
                        : 0.0;
  return result;
}

CoverResult NaiveGreedyMaxCover(const RRCollection& rr, int k) {
  const NodeId n = rr.num_graph_nodes();
  CoverResult result;
  if (k <= 0 || n == 0) return result;

  std::vector<uint64_t> counts(n);
  for (NodeId v = 0; v < n; ++v) counts[v] = rr.CoverageCount(v);

  BitVector dead(rr.num_sets());
  std::vector<char> selected(n, 0);

  for (int round = 0; round < k; ++round) {
    NodeId best = kInvalidNode;
    uint64_t best_count = 0;
    bool found = false;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (!found || counts[v] > best_count) {
        best = v;
        best_count = counts[v];
        found = true;
      }
    }
    if (!found) break;
    selected[best] = 1;
    uint64_t marginal = SelectNode(rr, best, &dead, &counts);
    result.seeds.push_back(best);
    result.marginal_coverage.push_back(marginal);
    result.covered_sets += marginal;
  }

  result.covered_fraction =
      rr.num_sets() > 0 ? static_cast<double>(result.covered_sets) /
                              static_cast<double>(rr.num_sets())
                        : 0.0;
  return result;
}

uint64_t BruteForceMaxCover(const RRCollection& rr, int k) {
  const NodeId n = rr.num_graph_nodes();
  if (k <= 0 || n == 0) return 0;
  const int kk = std::min<int>(k, n);

  std::vector<NodeId> subset(kk);
  for (int i = 0; i < kk; ++i) subset[i] = static_cast<NodeId>(i);

  BitVector covered(rr.num_sets());
  uint64_t best = 0;
  while (true) {
    covered.Reset();
    for (NodeId v : subset) {
      for (RRSetId id : rr.SetsContaining(v)) covered.Set(id);
    }
    best = std::max<uint64_t>(best, covered.Count());

    int i = kk - 1;
    while (i >= 0 && subset[i] == n - static_cast<NodeId>(kk - i)) --i;
    if (i < 0) break;
    ++subset[i];
    for (int j = i + 1; j < kk; ++j) subset[j] = subset[j - 1] + 1;
  }
  return best;
}

}  // namespace timpp
