// Greedy maximum coverage over an RRCollection — the selection step shared
// by Algorithm 1 (node selection), Algorithm 3 (KPT refinement) and Borgs
// et al.'s RIS. The greedy algorithm is (1-1/e)-approximate for maximum
// coverage (Vazirani; cited as [29] in the paper).
#ifndef TIMPP_COVERAGE_GREEDY_COVER_H_
#define TIMPP_COVERAGE_GREEDY_COVER_H_

#include <cstdint>
#include <vector>

#include "rrset/rr_collection.h"
#include "util/types.h"

namespace timpp {

/// Output of a max-coverage run.
struct CoverResult {
  /// Selected nodes, in selection order (marginal-coverage descending).
  std::vector<NodeId> seeds;
  /// Marginal number of sets newly covered by each selected node.
  std::vector<uint64_t> marginal_coverage;
  /// Total sets covered by `seeds`.
  uint64_t covered_sets = 0;
  /// covered_sets / num_sets (the paper's F_R(S)); 0 if the collection is
  /// empty.
  double covered_fraction = 0.0;
};

/// Exact greedy via a bucket queue with lazy decrease: coverage counts are
/// bounded by θ and only decrease as sets die, so nodes live in an array
/// of count-indexed buckets and a monotonically descending cursor finds
/// the argmax without any comparison-based ordering — O(n + max_count +
/// total count decrements) = O(n + θ·avg|R|), versus the heap's
/// O(n log n + stale re-pushes). When max_count would make one bucket per
/// count allocate too much, buckets coarsen to count ranges (the in-bucket
/// scan stays exact). Ties break by smaller node id; bit-identical to
/// HeapGreedyMaxCover. Requires rr.index_built().
CoverResult GreedyMaxCover(const RRCollection& rr, int k);

/// GreedyMaxCover with an explicit cap on the bucket-array size (the
/// default is 2^20). Exposed so tests can force the coarse-bucket path on
/// small collections; results are cap-independent.
CoverResult GreedyMaxCoverWithBucketCap(const RRCollection& rr, int k,
                                        uint64_t max_buckets);

/// The previous default: lazy evaluation on a max-heap with stale-entry
/// re-push (the classic CELF trick applied to coverage). Kept as the A/B
/// reference for the bucket queue — tests assert bit-identical CoverResult
/// — and for the coverage micro-bench.
CoverResult HeapGreedyMaxCover(const RRCollection& rr, int k);

/// Reference implementation that rescans every node each round. O(k·n +
/// k·Σ|R|). Used by tests (must match GreedyMaxCover exactly, ties broken
/// by smaller node id) and by the ablation bench.
CoverResult NaiveGreedyMaxCover(const RRCollection& rr, int k);

/// Exhaustive optimum of the coverage problem (for quality-bound tests).
/// Tries all C(n, k) subsets; n must be small.
uint64_t BruteForceMaxCover(const RRCollection& rr, int k);

}  // namespace timpp

#endif  // TIMPP_COVERAGE_GREEDY_COVER_H_
