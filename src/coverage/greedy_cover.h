// Greedy maximum coverage over an RRCollection — the selection step shared
// by Algorithm 1 (node selection), Algorithm 3 (KPT refinement) and Borgs
// et al.'s RIS. The greedy algorithm is (1-1/e)-approximate for maximum
// coverage (Vazirani; cited as [29] in the paper).
#ifndef TIMPP_COVERAGE_GREEDY_COVER_H_
#define TIMPP_COVERAGE_GREEDY_COVER_H_

#include <cstdint>
#include <vector>

#include "rrset/rr_collection.h"
#include "util/types.h"

namespace timpp {

/// Output of a max-coverage run.
struct CoverResult {
  /// Selected nodes, in selection order (marginal-coverage descending).
  std::vector<NodeId> seeds;
  /// Marginal number of sets newly covered by each selected node.
  std::vector<uint64_t> marginal_coverage;
  /// Total sets covered by `seeds`.
  uint64_t covered_sets = 0;
  /// covered_sets / num_sets (the paper's F_R(S)); 0 if the collection is
  /// empty.
  double covered_fraction = 0.0;
};

/// Exact greedy via lazy evaluation: marginal coverage counts only decrease
/// as sets die, so a max-heap with stale-entry re-push finds the argmax
/// without rescanning all nodes (the classic CELF trick applied to
/// coverage). Near-linear in Σ|R| in practice. Requires rr.index_built().
CoverResult GreedyMaxCover(const RRCollection& rr, int k);

/// Reference implementation that rescans every node each round. O(k·n +
/// k·Σ|R|). Used by tests (must match GreedyMaxCover exactly, ties broken
/// by smaller node id) and by the ablation bench.
CoverResult NaiveGreedyMaxCover(const RRCollection& rr, int k);

/// Exhaustive optimum of the coverage problem (for quality-bound tests).
/// Tries all C(n, k) subsets; n must be small.
uint64_t BruteForceMaxCover(const RRCollection& rr, int k);

}  // namespace timpp

#endif  // TIMPP_COVERAGE_GREEDY_COVER_H_
