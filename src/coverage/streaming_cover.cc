#include "coverage/streaming_cover.h"

#include <algorithm>
#include <vector>

#include "util/bit_vector.h"
#include "util/types.h"

namespace timpp {

size_t MaxPrefixUnderDataBudget(const RRCollection& rr, size_t budget_bytes) {
  // DataBytes of a p-set prefix (no index): p+1 offsets, p widths, and the
  // members of the first p sets.
  size_t nodes = 0;
  size_t prefix = 0;
  for (size_t id = 0; id < rr.num_sets(); ++id) {
    nodes += rr.Set(static_cast<RRSetId>(id)).size();
    const size_t bytes = (id + 2) * sizeof(EdgeIndex) +
                         (id + 1) * sizeof(uint64_t) + nodes * sizeof(NodeId);
    if (bytes > budget_bytes) break;
    prefix = id + 1;
  }
  return prefix;
}

bool IndexedDataBytesFitBudget(const RRCollection& rr, size_t budget_bytes) {
  const size_t index_bytes =
      (static_cast<size_t>(rr.num_graph_nodes()) + 1) * sizeof(EdgeIndex) +
      rr.total_nodes() * sizeof(RRSetId);
  return rr.DataBytes() + index_bytes <= budget_bytes;
}

StreamingCoverResult StreamingGreedyMaxCover(SamplingEngine& engine,
                                             const RRCollection& cache,
                                             uint64_t first_index,
                                             uint64_t total_sets, int k) {
  const NodeId n = engine.graph().num_nodes();
  StreamingCoverResult result;
  if (k <= 0 || n == 0 || total_sets == 0) return result;

  const uint64_t cached = std::min<uint64_t>(cache.num_sets(), total_sets);
  std::vector<uint64_t> counts(n);
  // One flag serves both roles: a node is a chosen seed iff it is out of
  // the running for future picks.
  std::vector<char> selected(n, 0);
  // Liveness of each of the θ sets (local index = global - first_index).
  // A set dies the first time a pass sees it covered by the selected
  // seeds; dead sets are skipped in the cache and never regenerated again
  // (seeds only grow, so death is permanent).
  BitVector dead(total_sets);

  // Counts one live set's members; kills the set instead when a selected
  // seed already covers it.
  const auto absorb = [&](uint64_t local, std::span<const NodeId> set) {
    for (NodeId v : set) {
      if (selected[v]) {
        dead.Set(local);
        return;
      }
    }
    for (NodeId v : set) ++counts[v];
  };

  for (int round = 0; round < k; ++round) {
    // Recompute live-coverage counts from scratch: one pass over the
    // cached prefix, one regeneration pass over the uncached suffix.
    // Recomputation equals GreedyMaxCover's incremental decrements, so
    // every round picks the identical node.
    std::fill(counts.begin(), counts.end(), 0);
    for (uint64_t i = 0; i < cached; ++i) {
      if (dead.Get(i)) continue;
      absorb(i, cache.Set(static_cast<RRSetId>(i)));
    }
    if (cached < total_sets) {
      const SampleBatch pass = engine.VisitSamples(
          first_index + cached, total_sets - cached,
          [&](uint64_t index) { return !dead.Get(index - first_index); },
          [&](uint64_t index, std::span<const NodeId> set) {
            absorb(index - first_index, set);
          });
      if (pass.sets_added > 0) ++result.regeneration_passes;
      result.sets_regenerated += pass.sets_added;
      result.edges_examined += pass.edges_examined;
    }

    // Exact greedy pick: max count, ties to the smaller node id (ascending
    // scan with a strict comparison).
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (best == kInvalidNode || counts[v] > counts[best]) best = v;
    }
    if (best == kInvalidNode) break;  // every node selected
    selected[best] = 1;
    result.cover.seeds.push_back(best);
    result.cover.marginal_coverage.push_back(counts[best]);
    result.cover.covered_sets += counts[best];
  }

  result.cover.covered_fraction =
      static_cast<double>(result.cover.covered_sets) /
      static_cast<double>(total_sets);
  return result;
}

}  // namespace timpp
