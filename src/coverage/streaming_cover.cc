#include "coverage/streaming_cover.h"

#include <algorithm>
#include <vector>

#include "util/bit_vector.h"
#include "util/types.h"

namespace timpp {

size_t MaxPrefixUnderDataBudget(const RRCollection& rr, size_t budget_bytes) {
  // DataBytes of a p-set prefix (no index): p+1 offsets, p widths, and the
  // members of the first p sets.
  size_t nodes = 0;
  size_t prefix = 0;
  for (size_t id = 0; id < rr.num_sets(); ++id) {
    nodes += rr.Set(static_cast<RRSetId>(id)).size();
    const size_t bytes = (id + 2) * sizeof(EdgeIndex) +
                         (id + 1) * sizeof(uint64_t) + nodes * sizeof(NodeId);
    if (bytes > budget_bytes) break;
    prefix = id + 1;
  }
  return prefix;
}

bool IndexedDataBytesFitBudget(const RRCollection& rr, size_t budget_bytes) {
  const size_t index_bytes =
      (static_cast<size_t>(rr.num_graph_nodes()) + 1) * sizeof(EdgeIndex) +
      rr.total_nodes() * sizeof(RRSetId);
  return rr.DataBytes() + index_bytes <= budget_bytes;
}

StreamingCoverResult StreamingGreedyMaxCover(SamplingEngine& engine,
                                             const RRCollection& cache,
                                             uint64_t first_index,
                                             uint64_t total_sets, int k,
                                             RRSpillStore* spill) {
  const NodeId n = engine.graph().num_nodes();
  StreamingCoverResult result;
  if (k <= 0 || n == 0 || total_sets == 0) return result;

  const uint64_t cached = std::min<uint64_t>(cache.num_sets(), total_sets);
  std::vector<uint64_t> counts(n);
  // One flag serves both roles: a node is a chosen seed iff it is out of
  // the running for future picks.
  std::vector<char> selected(n, 0);
  // Liveness of each of the θ sets (local index = global - first_index).
  // A set dies the first time a pass sees it covered by the selected
  // seeds; dead sets are skipped in the cache and never regenerated again
  // (seeds only grow, so death is permanent).
  BitVector dead(total_sets);

  // Counts one live set's members; kills the set instead when a selected
  // seed already covers it.
  const auto absorb = [&](uint64_t local, std::span<const NodeId> set) {
    for (NodeId v : set) {
      if (selected[v]) {
        dead.Set(local);
        return;
      }
    }
    for (NodeId v : set) ++counts[v];
  };

  for (int round = 0; round < k; ++round) {
    // Recompute live-coverage counts from scratch: one pass over the
    // cached prefix, one regeneration pass over the uncached suffix.
    // Recomputation equals GreedyMaxCover's incremental decrements, so
    // every round picks the identical node.
    std::fill(counts.begin(), counts.end(), 0);
    for (uint64_t i = 0; i < cached; ++i) {
      if (dead.Get(i)) continue;
      absorb(i, cache.Set(static_cast<RRSetId>(i)));
    }
    if (cached < total_sets) {
      const auto live = [&](uint64_t index) {
        return !dead.Get(index - first_index);
      };
      const auto absorb_at = [&](uint64_t index,
                                 std::span<const NodeId> set) {
        absorb(index - first_index, set);
      };
      uint64_t pos = first_index + cached;
      const uint64_t end = first_index + total_sets;
      // Replay from the spill tier first: byte-identical to regeneration,
      // but a sequential disk read instead of a graph traversal. Read
      // errors (and coverage gaps) leave `pos` at the first unreplayed
      // index for the regeneration fallback below.
      if (spill != nullptr) {
        uint64_t stopped = pos;
        uint64_t visited = 0;
        (void)spill->VisitRange(pos, end - pos, live, absorb_at, &stopped,
                                &visited);
        if (visited > 0) ++result.spill_read_passes;
        result.sets_spill_read += visited;
        pos = stopped;
      }
      if (pos < end) {
        const SampleBatch pass =
            engine.VisitSamples(pos, end - pos, live, absorb_at);
        if (pass.sets_added > 0) ++result.regeneration_passes;
        result.sets_regenerated += pass.sets_added;
        result.edges_examined += pass.edges_examined;
      }
    }

    // Exact greedy pick: max count, ties to the smaller node id (ascending
    // scan with a strict comparison).
    NodeId best = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (best == kInvalidNode || counts[v] > counts[best]) best = v;
    }
    if (best == kInvalidNode) break;  // every node selected
    selected[best] = 1;
    result.cover.seeds.push_back(best);
    result.cover.marginal_coverage.push_back(counts[best]);
    result.cover.covered_sets += counts[best];
  }

  result.cover.covered_fraction =
      static_cast<double>(result.cover.covered_sets) /
      static_cast<double>(total_sets);
  return result;
}

namespace {

// Fill batch size: matches the engine's per-visit batch, so the transient
// residency of a fill equals what a regeneration pass would have held.
constexpr uint64_t kSetsPerFillBatch = 1024;

}  // namespace

SpillFillResult SpillFillTo(SampleSource& source, RRSpillStore& spill,
                            uint64_t target_index) {
  SpillFillResult result;
  const NodeId n = source.graph().num_nodes();
  // IMM's LB iterations re-fill the same stream with growing targets:
  // skip the prefix already on disk instead of resampling it.
  if (source.position() < target_index) {
    source.Seek(spill.CoveredEnd(source.position(),
                                 target_index - source.position()));
  }
  while (source.position() < target_index) {
    const uint64_t pos = source.position();
    const uint64_t want =
        std::min<uint64_t>(kSetsPerFillBatch, target_index - pos);
    RRCollection scratch(n);
    std::vector<uint64_t> scratch_edges;
    const SampleBatch batch = source.Fetch(&scratch, want, &scratch_edges);
    result.batch.sets_added += batch.sets_added;
    result.batch.edges_examined += batch.edges_examined;
    result.batch.traversal_cost += batch.traversal_cost;
    if (batch.sets_added == 0) break;  // failed backend; engine latched
    if (!spill
             .SpillRange(scratch, scratch_edges, 0, scratch.num_sets(), pos)
             .ok()) {
      // Write failure: stop filling; the gap regenerates at cover time.
      result.spill_ok = false;
      break;
    }
    result.sets_spilled += scratch.num_sets();
  }
  // Land later phases on the same stream indices as a budget-off run even
  // when sampling or spilling stopped short.
  source.Seek(target_index);
  return result;
}

}  // namespace timpp
