#include "core/tim.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/kpt_estimator.h"
#include "core/kpt_refiner.h"
#include "core/node_selector.h"
#include "core/parameters.h"
#include "engine/sampling_engine.h"
#include "util/timer.h"

namespace timpp {

Status ValidateImParameters(const Graph& graph, int k, double epsilon,
                            double ell) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (k < 1 || static_cast<uint64_t>(k) > graph.num_nodes()) {
    return Status::InvalidArgument("k must be in [1, n], got " +
                                   std::to_string(k));
  }
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(ell > 0.0)) {
    return Status::InvalidArgument("ell must be positive");
  }
  return Status::OK();
}

Status TimSolver::Run(const TimOptions& options, TimResult* result) const {
  TIMPP_RETURN_NOT_OK(
      ValidateImParameters(graph_, options.k, options.epsilon, options.ell));
  if (options.model == DiffusionModel::kTriggering &&
      options.custom_model == nullptr) {
    return Status::InvalidArgument(
        "model == kTriggering requires options.custom_model");
  }

  const uint64_t n = graph_.num_nodes();
  TimStats stats;

  double ell = options.ell;
  if (options.adjust_ell) {
    ell = options.use_refinement ? AdjustEllForTimPlus(ell, n)
                                 : AdjustEllForTim(ell, n);
  }
  stats.ell_used = ell;
  stats.lambda = ComputeLambda(n, options.k, options.epsilon, ell);

  // One engine serves all three phases: the global set-index stream runs
  // through Algorithms 2, 3 and 1 in order, so the whole run is
  // deterministic in (seed) and independent of num_threads.
  SamplingConfig sampling;
  sampling.model = options.model;
  sampling.custom_model = options.custom_model;
  sampling.max_hops = options.max_hops;
  sampling.sampler_mode = options.sampler_mode;
  sampling.num_threads = options.num_threads;
  sampling.seed = options.seed;
  SamplingEngine engine(graph_, sampling);
  Timer total_timer;

  // Phase 1: parameter estimation (Algorithm 2).
  Timer phase_timer;
  KptEstimate kpt = EstimateKpt(engine, options.k, ell);
  stats.seconds_kpt_estimation = phase_timer.ElapsedSeconds();
  stats.kpt_star = kpt.kpt_star;
  stats.rr_sets_kpt = kpt.rr_sets_generated;
  stats.edges_examined += kpt.edges_examined;

  // Intermediate step (Algorithm 3) — TIM+ only.
  double kpt_bound = kpt.kpt_star;
  if (options.use_refinement) {
    const double eps_prime =
        options.eps_prime > 0.0
            ? options.eps_prime
            : RecommendedEpsPrime(options.epsilon, options.k, ell);
    stats.eps_prime = eps_prime;

    phase_timer.Reset();
    KptRefinement refinement =
        RefineKpt(engine, *kpt.last_iteration_rr, options.k, kpt.kpt_star,
                  eps_prime, ell);
    stats.seconds_kpt_refinement = phase_timer.ElapsedSeconds();
    stats.kpt_plus = refinement.kpt_plus;
    stats.theta_prime = refinement.theta_prime;
    stats.edges_examined += refinement.edges_examined;
    kpt_bound = refinement.kpt_plus;
  } else {
    stats.kpt_plus = kpt.kpt_star;
  }

  // Phase 2: node selection (Algorithm 1) with θ = λ / KPT bound.
  stats.theta =
      static_cast<uint64_t>(std::max(1.0, std::ceil(stats.lambda / kpt_bound)));

  phase_timer.Reset();
  NodeSelection selection = SelectNodes(engine, options.k, stats.theta,
                                        options.memory_budget_bytes);
  stats.seconds_node_selection = phase_timer.ElapsedSeconds();

  stats.estimated_spread =
      selection.covered_fraction * static_cast<double>(n);
  stats.rr_memory_bytes = selection.rr_memory_bytes;
  stats.rr_data_bytes = selection.rr_data_bytes;
  stats.hit_memory_budget = selection.hit_memory_budget;
  stats.rr_sets_retained = selection.rr_sets_retained;
  stats.regeneration_passes = selection.regeneration_passes;
  stats.edges_examined += selection.edges_examined;
  stats.seconds_total = total_timer.ElapsedSeconds();

  result->seeds = std::move(selection.seeds);
  result->stats = stats;
  return Status::OK();
}

}  // namespace timpp
