#include "core/tim.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "core/kpt_estimator.h"
#include "core/kpt_refiner.h"
#include "core/node_selector.h"
#include "core/parameters.h"
#include "engine/phase_cache.h"
#include "rrset/rr_spill.h"
#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "util/timer.h"

namespace timpp {

Status ValidateImParameters(const Graph& graph, int k, double epsilon,
                            double ell) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (k < 1 || static_cast<uint64_t>(k) > graph.num_nodes()) {
    return Status::InvalidArgument("k must be in [1, n], got " +
                                   std::to_string(k));
  }
  if (!(epsilon > 0.0) || epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must be in (0, 1]");
  }
  if (!(ell > 0.0)) {
    return Status::InvalidArgument("ell must be positive");
  }
  return Status::OK();
}

Status TimSolver::Run(const TimOptions& options, TimResult* result) const {
  return Run(options, SolveContext(), result);
}

Status TimSolver::Run(const TimOptions& options, const SolveContext& context,
                      TimResult* result) const {
  TIMPP_RETURN_NOT_OK(
      ValidateImParameters(graph_, options.k, options.epsilon, options.ell));
  if (options.model == DiffusionModel::kTriggering &&
      options.custom_model == nullptr) {
    return Status::InvalidArgument(
        "model == kTriggering requires options.custom_model");
  }
  if (context.source != nullptr &&
      &context.source->graph() != &graph_) {
    return Status::InvalidArgument(
        "SolveContext source is bound to a different graph");
  }

  const uint64_t n = graph_.num_nodes();
  TimStats stats;

  double ell = options.ell;
  if (options.adjust_ell) {
    ell = options.use_refinement ? AdjustEllForTimPlus(ell, n)
                                 : AdjustEllForTim(ell, n);
  }
  stats.ell_used = ell;
  stats.lambda = ComputeLambda(n, options.k, options.epsilon, ell);

  // One sample stream serves all three phases: the global set-index stream
  // runs through Algorithms 2, 3 and 1 in order, so the whole run is
  // deterministic in (seed) and independent of num_threads. A context
  // supplies the stream (shared across requests); standalone runs build a
  // private engine.
  std::optional<SamplingEngine> local_engine;
  std::optional<EngineSampleSource> local_source;
  SampleSource* source = context.source;
  if (source == nullptr) {
    SamplingConfig sampling;
    sampling.model = options.model;
    sampling.custom_model = options.custom_model;
    sampling.max_hops = options.max_hops;
    sampling.sampler_mode = options.sampler_mode;
    sampling.num_threads = options.num_threads;
    sampling.pin_threads = options.pin_threads;
    sampling.seed = options.seed;
    sampling.backend = options.sample_backend;
    local_engine.emplace(graph_, sampling);
    local_source.emplace(*local_engine);
    source = &*local_source;
  }
  const BackendStats backend_before = source->engine().backend_stats();
  Timer total_timer;

  const double eps_prime =
      options.use_refinement
          ? (options.eps_prime > 0.0
                 ? options.eps_prime
                 : RecommendedEpsPrime(options.epsilon, options.k, ell))
          : 0.0;
  stats.eps_prime = eps_prime;

  // PhaseCache entries record positions of a stream consumed from index 0
  // (how every run starts); only engage the memo in that situation.
  PhaseCache* memo =
      source->position() == 0 ? context.phase_cache : nullptr;
  KptPhaseKey memo_key;
  if (memo != nullptr) {
    memo_key.model = options.model;
    memo_key.sampler_mode = options.sampler_mode;
    memo_key.max_hops = options.max_hops;
    memo_key.seed = options.seed;
    memo_key.custom_model = options.custom_model;
    memo_key.k = options.k;
    memo_key.use_refinement = options.use_refinement;
    memo_key.ell_bits = DoubleBits(ell);
    memo_key.eps_prime_bits = DoubleBits(eps_prime);
  }

  double kpt_bound = 0.0;
  // Acquire either a ready entry or the obligation to compute it; a
  // concurrent request for the same key blocks inside AcquireKpt until
  // this one publishes (once-computation). An error return below destroys
  // the unpublished lease, which wakes the waiters to recompute.
  PhaseCache::KptLease lease;
  if (memo != nullptr) lease = memo->AcquireKpt(memo_key);
  const KptPhaseEntry* hit = lease.entry();
  if (hit != nullptr) {
    // Algorithms 2(+3) are pure functions of the key: restore their
    // output and jump the stream to where they left it. Phase timings
    // stay 0 — they reflect work actually done this run.
    stats.kpt_cache_hit = true;
    stats.kpt_star = hit->kpt_star;
    stats.kpt_plus = hit->kpt_plus;
    stats.theta_prime = hit->theta_prime;
    stats.rr_sets_kpt = hit->rr_sets_kpt;
    stats.edges_examined += hit->edges_kpt + hit->edges_refine;
    source->Seek(hit->end_index);
    kpt_bound = options.use_refinement ? hit->kpt_plus : hit->kpt_star;
  } else {
    // Phase 1: parameter estimation (Algorithm 2).
    Timer phase_timer;
    KptEstimate kpt = EstimateKpt(*source, options.k, ell);
    // A failed sample backend (a worker process died mid-shard) leaves the
    // engine with a latched error and a short batch; surface it instead of
    // computing on truncated samples. Same check after each phase below.
    TIMPP_RETURN_NOT_OK(source->engine().status());
    stats.seconds_kpt_estimation = phase_timer.ElapsedSeconds();
    stats.kpt_star = kpt.kpt_star;
    stats.rr_sets_kpt = kpt.rr_sets_generated;
    stats.edges_examined += kpt.edges_examined;

    // Intermediate step (Algorithm 3) — TIM+ only.
    kpt_bound = kpt.kpt_star;
    uint64_t edges_refine = 0;
    if (options.use_refinement) {
      phase_timer.Reset();
      KptRefinement refinement =
          RefineKpt(*source, *kpt.last_iteration_rr, options.k, kpt.kpt_star,
                    eps_prime, ell);
      TIMPP_RETURN_NOT_OK(source->engine().status());
      stats.seconds_kpt_refinement = phase_timer.ElapsedSeconds();
      stats.kpt_plus = refinement.kpt_plus;
      stats.theta_prime = refinement.theta_prime;
      stats.edges_examined += refinement.edges_examined;
      edges_refine = refinement.edges_examined;
      kpt_bound = refinement.kpt_plus;
    } else {
      stats.kpt_plus = kpt.kpt_star;
    }

    if (memo != nullptr) {
      KptPhaseEntry entry;
      entry.kpt_star = stats.kpt_star;
      entry.kpt_plus = stats.kpt_plus;
      entry.theta_prime = stats.theta_prime;
      entry.rr_sets_kpt = stats.rr_sets_kpt;
      entry.edges_kpt = kpt.edges_examined;
      entry.edges_refine = edges_refine;
      entry.end_index = source->position();
      lease.Publish(entry);
    }
  }

  // Phase 2: node selection (Algorithm 1) with θ = λ / KPT bound.
  stats.theta =
      static_cast<uint64_t>(std::max(1.0, std::ceil(stats.lambda / kpt_bound)));

  // Spill tier: only built when a budget can actually trip. The store's
  // chunk directory is scratch, deleted with the store when the run ends.
  std::optional<RRSpillStore> spill;
  if (options.memory_budget_bytes != 0 && !options.spill_dir.empty()) {
    RRSpillOptions spill_options;
    spill_options.dir = options.spill_dir;
    spill_options.tuning = options.spill_tuning;
    spill.emplace(graph_.num_nodes(), std::move(spill_options));
  }

  Timer phase_timer;
  NodeSelection selection =
      SelectNodes(*source, options.k, stats.theta,
                  options.memory_budget_bytes, spill ? &*spill : nullptr);
  TIMPP_RETURN_NOT_OK(source->engine().status());
  stats.seconds_node_selection = phase_timer.ElapsedSeconds();

  stats.estimated_spread =
      selection.covered_fraction * static_cast<double>(n);
  stats.rr_memory_bytes = selection.rr_memory_bytes;
  stats.rr_data_bytes = selection.rr_data_bytes;
  stats.hit_memory_budget = selection.hit_memory_budget;
  stats.rr_sets_retained = selection.rr_sets_retained;
  stats.regeneration_passes = selection.regeneration_passes;
  stats.rr_sets_spilled = selection.rr_sets_spilled;
  stats.sets_spill_read = selection.sets_spill_read;
  if (spill) {
    stats.spill = spill->stats();
    stats.spill_bytes_written = stats.spill.bytes_written;
  }
  stats.edges_examined += selection.edges_examined;
  stats.backend = source->engine().backend_stats() - backend_before;
  stats.seconds_total = total_timer.ElapsedSeconds();

  result->seeds = std::move(selection.seeds);
  result->stats = stats;
  return Status::OK();
}

}  // namespace timpp
