// TIM and TIM+ — the paper's two-phase influence maximization algorithms.
//
//   TIM  (§3.3): Algorithm 2 → θ = λ/KPT*          → Algorithm 1.
//   TIM+ (§4.1): Algorithm 2 → Algorithm 3 → θ = λ/KPT+ → Algorithm 1.
//
// Both return a (1-1/e-ε)-approximate seed set with probability at least
// 1 - n^-ℓ (after the ℓ adjustment) in O((k+ℓ)(m+n)·log n / ε²) expected
// time under the triggering model — IC and LT included as special cases.
#ifndef TIMPP_CORE_TIM_H_
#define TIMPP_CORE_TIM_H_

#include <cstdint>
#include <vector>

#include "diffusion/triggering.h"
#include "engine/sample_backend.h"
#include "engine/solve_context.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Configuration of a TIM/TIM+ run.
struct TimOptions {
  /// Seed-set size k ∈ [1, n].
  int k = 50;
  /// Approximation slack ε ∈ (0, 1]; the guarantee is (1-1/e-ε).
  double epsilon = 0.1;
  /// Confidence exponent: failure probability at most n^-ℓ. Must be > 0.
  double ell = 1.0;
  /// Diffusion model; kTriggering requires custom_model.
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; must outlive the run. Used when model == kTriggering.
  const TriggeringModel* custom_model = nullptr;
  /// true → TIM+ (with Algorithm 3 refinement); false → plain TIM.
  bool use_refinement = true;
  /// Intermediate accuracy ε′ for Algorithm 3; <= 0 selects the paper's
  /// recommended 5·cbrt(ℓ·ε²/(k+ℓ)).
  double eps_prime = 0.0;
  /// Scale ℓ so the final success probability is 1 - n^-ℓ despite the
  /// 2·n^-ℓ (TIM) / 3·n^-ℓ (TIM+) union bounds (§3.3, §4.1).
  bool adjust_ell = true;
  /// Bound on propagation rounds (0 = unlimited): optimizes the
  /// time-critical spread "nodes activated within max_hops rounds"
  /// instead of the eventual spread (Chen et al., AAAI'12; the paper's
  /// related-work setting [4]). All guarantees carry over because depth-d
  /// RR sets satisfy the depth-d analog of Lemma 2.
  uint32_t max_hops = 0;
  /// RR-traversal strategy (geometric skip sampling vs per-arc coins; see
  /// SamplerMode). kAuto picks skip when the graph's constant-probability
  /// in-arc runs are long (weighted cascade, uniform). Seed sets differ
  /// bit-wise between modes but are statistically indistinguishable.
  SamplerMode sampler_mode = SamplerMode::kAuto;
  /// Sampling worker threads shared by all three phases (Algorithms 2, 3
  /// and 1 all consume i.i.d. RR sets from one SamplingEngine, so every
  /// phase parallelizes embarrassingly). Under the engine's deterministic
  /// merge contract results are bit-reproducible in `seed` alone —
  /// independent of num_threads. 1 = fully sequential.
  unsigned num_threads = 1;
  /// Pin sampling worker threads to CPUs (placement only; results are
  /// invariant to it).
  bool pin_threads = false;
  /// Soft cap (bytes; 0 = unlimited) on the node-selection RR collection's
  /// resident DataBytes — the §7.2 memory knob. Past the cap, Algorithm 1
  /// degrades to streaming sample-and-discard selection (retained-prefix
  /// cache plus per-round regeneration; see coverage/streaming_cover.h)
  /// instead of exhausting memory: seeds stay bit-identical to a
  /// budget-off run, at up to k extra sampling passes. KPT estimation and
  /// refinement keep O(small) collections and are not budgeted.
  size_t memory_budget_bytes = 0;
  /// Master RNG seed; every run with equal options is bit-reproducible.
  uint64_t seed = 0x7145ULL;
  /// Where sample production runs: in-process threads (default) or
  /// coordinated worker subprocesses (engine/sample_backend.h). Seeds,
  /// θ and all stats are bit-identical across backends; only throughput
  /// and failure modes (a worker can die) differ.
  SampleBackendSpec sample_backend;
};

/// Everything measured during a run — feeds Figures 4, 5, and 12.
struct TimStats {
  double lambda = 0.0;        // Equation 4
  double kpt_star = 0.0;      // Algorithm 2 output
  double kpt_plus = 0.0;      // Algorithm 3 output (TIM+; else = kpt_star)
  double eps_prime = 0.0;     // ε′ actually used (0 for plain TIM)
  double ell_used = 0.0;      // ℓ after adjustment
  uint64_t theta = 0;         // RR sets sampled by Algorithm 1
  uint64_t theta_prime = 0;   // RR sets sampled by Algorithm 3 (TIM+)
  uint64_t rr_sets_kpt = 0;   // RR sets sampled by Algorithm 2

  double seconds_kpt_estimation = 0.0;  // Algorithm 2
  double seconds_kpt_refinement = 0.0;  // Algorithm 3
  double seconds_node_selection = 0.0;  // Algorithm 1
  double seconds_total = 0.0;

  /// n·F_R(S) — the unbiased spread estimate of the returned seeds on the
  /// node-selection RR sets (Corollary 1).
  double estimated_spread = 0.0;
  /// Peak RR-collection bytes during node selection (Figure 12).
  size_t rr_memory_bytes = 0;
  /// Filled bytes of retained raw set storage (DataBytes before any index
  /// build — what a memory budget caps; comparable between budgeted and
  /// budget-off runs, and the basis of the Figure 12 budgeted series).
  size_t rr_data_bytes = 0;
  /// Total edges examined across all three phases (budget-induced
  /// regeneration included).
  uint64_t edges_examined = 0;
  /// memory_budget_bytes forced streaming sample-and-discard selection.
  bool hit_memory_budget = false;
  /// RR sets kept resident during node selection (== theta budget-off).
  uint64_t rr_sets_retained = 0;
  /// Greedy rounds that re-generated discarded RR sets (0 budget-off).
  uint64_t regeneration_passes = 0;
  /// Algorithms 2(+3) were restored from a SolveContext's PhaseCache
  /// instead of recomputed (serving layer; always false standalone).
  bool kpt_cache_hit = false;
  /// Backend fault-tolerance activity during this run (retries, respawns,
  /// fallbacks — see BackendStats). All zero for local backends and
  /// healthy distributed runs. Under a shared serving stream the delta
  /// can include recovery work triggered by concurrent requests.
  BackendStats backend;
};

/// Result of a run.
struct TimResult {
  std::vector<NodeId> seeds;
  TimStats stats;
};

/// Influence-maximization solver bound to one graph.
///
///   TimSolver solver(graph);
///   TimOptions options;
///   options.k = 50;
///   TimResult result;
///   Status s = solver.Run(options, &result);
class TimSolver {
 public:
  explicit TimSolver(const Graph& graph) : graph_(graph) {}

  /// Validates `options` and executes TIM or TIM+.
  Status Run(const TimOptions& options, TimResult* result) const;

  /// Context-aware variant: when `context.source` is set, the run consumes
  /// that externally owned sample stream from its current cursor (position
  /// 0 in serving use) instead of constructing a private engine, and when
  /// `context.phase_cache` is set, Algorithms 2–3 are restored from /
  /// stored into it. Results are bit-identical to the standalone Run for
  /// matching options — reuse only changes how much fresh sampling the
  /// run performs. The source's sampling configuration must match the
  /// options (model, sampler mode, seed, max_hops) and its graph must be
  /// this solver's graph.
  Status Run(const TimOptions& options, const SolveContext& context,
             TimResult* result) const;

 private:
  const Graph& graph_;
};

/// Option validation shared with baselines that take (k, ε, ℓ).
Status ValidateImParameters(const Graph& graph, int k, double epsilon,
                            double ell);

}  // namespace timpp

#endif  // TIMPP_CORE_TIM_H_
