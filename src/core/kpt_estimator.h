// Algorithm 2 (KptEstimation): an adaptive sampling procedure that returns
// KPT* ∈ [KPT/4, OPT] with probability at least 1 - n^-ℓ, where KPT is the
// mean spread of a size-k set sampled from the in-degree-proportional
// distribution V* (Lemma 5: KPT = n·E[κ(R)], κ(R) = 1 - (1 - w(R)/m)^k).
//
// Sampling goes through the shared SamplingEngine, so the doubling loop is
// parallel and its output deterministic in the engine's seed regardless of
// thread count (see engine/sampling_engine.h for the merge contract).
#ifndef TIMPP_CORE_KPT_ESTIMATOR_H_
#define TIMPP_CORE_KPT_ESTIMATOR_H_

#include <cstdint>
#include <memory>

#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"

namespace timpp {

/// Output of Algorithm 2.
struct KptEstimate {
  /// KPT* — the lower bound of OPT used to size θ.
  double kpt_star = 1.0;
  /// RR sets generated in the *last executed iteration* (the paper's R′),
  /// reused by Algorithm 3. Index already built.
  std::unique_ptr<RRCollection> last_iteration_rr;
  /// Iteration (1-based) the algorithm terminated in; 0 if it fell through
  /// all iterations and returned the trivial bound KPT* = 1.
  int terminated_iteration = 0;
  /// Total RR sets generated across all iterations.
  uint64_t rr_sets_generated = 0;
  /// Total edges examined across all traversals (cost accounting).
  uint64_t edges_examined = 0;
};

/// Runs Algorithm 2 with seed-set size `k` and confidence exponent `ell`.
/// `source` fixes the graph, diffusion model, randomness and parallelism
/// (standalone engine or serving-layer shared stream alike); the result is
/// deterministic in (stream seed, stream position).
KptEstimate EstimateKpt(SampleSource& source, int k, double ell);

/// Standalone convenience: consume `engine`'s stream directly.
inline KptEstimate EstimateKpt(SamplingEngine& engine, int k, double ell) {
  EngineSampleSource source(engine);
  return EstimateKpt(source, k, ell);
}

}  // namespace timpp

#endif  // TIMPP_CORE_KPT_ESTIMATOR_H_
