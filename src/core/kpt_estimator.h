// Algorithm 2 (KptEstimation): an adaptive sampling procedure that returns
// KPT* ∈ [KPT/4, OPT] with probability at least 1 - n^-ℓ, where KPT is the
// mean spread of a size-k set sampled from the in-degree-proportional
// distribution V* (Lemma 5: KPT = n·E[κ(R)], κ(R) = 1 - (1 - w(R)/m)^k).
#ifndef TIMPP_CORE_KPT_ESTIMATOR_H_
#define TIMPP_CORE_KPT_ESTIMATOR_H_

#include <cstdint>
#include <memory>

#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "util/rng.h"

namespace timpp {

/// Output of Algorithm 2.
struct KptEstimate {
  /// KPT* — the lower bound of OPT used to size θ.
  double kpt_star = 1.0;
  /// RR sets generated in the *last executed iteration* (the paper's R′),
  /// reused by Algorithm 3. Index already built.
  std::unique_ptr<RRCollection> last_iteration_rr;
  /// Iteration (1-based) the algorithm terminated in; 0 if it fell through
  /// all iterations and returned the trivial bound KPT* = 1.
  int terminated_iteration = 0;
  /// Total RR sets generated across all iterations.
  uint64_t rr_sets_generated = 0;
  /// Total edges examined across all traversals (cost accounting).
  uint64_t edges_examined = 0;
};

/// Runs Algorithm 2 with seed-set size `k` and confidence exponent `ell`.
/// `sampler` fixes the graph and diffusion model; `rng` supplies all
/// randomness (deterministic given its state).
KptEstimate EstimateKpt(RRSampler& sampler, int k, double ell, Rng& rng);

}  // namespace timpp

#endif  // TIMPP_CORE_KPT_ESTIMATOR_H_
