#include "core/node_selector.h"

#include "coverage/greedy_cover.h"
#include "rrset/rr_collection.h"
#include "util/timer.h"

namespace timpp {

NodeSelection SelectNodes(SamplingEngine& engine, int k, uint64_t theta) {
  NodeSelection result;
  result.theta = theta;

  Timer timer;
  RRCollection rr(engine.graph().num_nodes());
  const SampleBatch batch = engine.SampleInto(&rr, theta);
  result.edges_examined = batch.edges_examined;
  result.seconds_sampling = timer.ElapsedSeconds();

  timer.Reset();
  rr.BuildIndex();
  result.rr_memory_bytes = rr.MemoryBytes();
  CoverResult cover = GreedyMaxCover(rr, k);
  result.seconds_coverage = timer.ElapsedSeconds();

  result.seeds = std::move(cover.seeds);
  result.covered_fraction = cover.covered_fraction;
  return result;
}

}  // namespace timpp
