#include "core/node_selector.h"

#include "coverage/greedy_cover.h"
#include "coverage/streaming_cover.h"
#include "rrset/rr_collection.h"
#include "util/timer.h"

namespace timpp {

NodeSelection SelectNodes(SampleSource& source, int k, uint64_t theta,
                          size_t memory_budget_bytes, RRSpillStore* spill) {
  NodeSelection result;
  result.theta = theta;

  Timer timer;
  const uint64_t first = source.position();
  RRCollection rr(source.graph().num_nodes());
  rr.set_memory_budget(memory_budget_bytes);
  std::vector<uint64_t> rr_edges;
  const SampleBatch batch =
      source.Fetch(&rr, theta, spill != nullptr ? &rr_edges : nullptr);
  result.edges_examined = batch.edges_examined;

  // Budget enforcement: the engine only checks the budget at its fixed
  // batch boundaries (and a sub-batch request never trips it at all), so
  // the collection can overshoot — cut back to the largest under-budget
  // prefix and advance the stream past the whole request. The dropped
  // indices are regenerated exactly during selection — or, with a spill
  // store, written to disk once (the about-to-be-truncated suffix here,
  // the never-resident remainder via SpillFillTo) and replayed instead.
  // Later phases consume the same index ranges as a budget-off run.
  if (memory_budget_bytes != 0 && rr.DataBytes() > memory_budget_bytes) {
    const size_t keep = MaxPrefixUnderDataBudget(rr, memory_budget_bytes);
    if (spill != nullptr && rr.num_sets() > keep &&
        spill
            ->SpillRange(rr, rr_edges, keep, rr.num_sets() - keep,
                         first + keep)
            .ok()) {
      result.rr_sets_spilled += rr.num_sets() - keep;
    }
    rr.TruncateTo(keep);
  }
  if (spill != nullptr && first + theta > source.position()) {
    // The engine stopped fetching at the budget latch; the rest of the θ
    // range was never sampled. Materialize it straight onto disk in
    // transient batches so the greedy rounds replay it instead of
    // regenerating it k times.
    const SpillFillResult fill = SpillFillTo(source, *spill, first + theta);
    result.edges_examined += fill.batch.edges_examined;
    result.rr_sets_spilled += fill.sets_spilled;
  }
  source.Seek(first + theta);
  result.seconds_sampling = timer.ElapsedSeconds();

  timer.Reset();
  // Captured pre-index in both branches so the stat means the same thing
  // (raw set storage) whether or not an inverted index gets built.
  result.rr_data_bytes = rr.DataBytes();
  result.rr_sets_retained = rr.num_sets();
  if (memory_budget_bytes == 0 ||
      (rr.num_sets() == theta && IndexedDataBytesFitBudget(rr, memory_budget_bytes))) {
    // Everything (inverted index included) fits: the classic indexed
    // greedy. This is the unconditional budget-off path, bit-identical to
    // the pre-budget code.
    rr.BuildIndex();
    result.rr_memory_bytes = rr.MemoryBytes();
    CoverResult cover = GreedyMaxCover(rr, k);
    result.seeds = std::move(cover.seeds);
    result.covered_fraction = cover.covered_fraction;
  } else {
    // Degrade, don't die: streaming greedy over the retained prefix plus
    // per-round regeneration of the dropped suffix. Same seeds (the
    // streaming rule is bit-identical), resident DataBytes <= budget.
    result.hit_memory_budget = true;
    result.rr_memory_bytes = rr.MemoryBytes();
    StreamingCoverResult streamed =
        StreamingGreedyMaxCover(source.engine(), rr, first, theta, k, spill);
    result.edges_examined += streamed.edges_examined;
    result.regeneration_passes = streamed.regeneration_passes;
    result.sets_spill_read = streamed.sets_spill_read;
    result.seeds = std::move(streamed.cover.seeds);
    result.covered_fraction = streamed.cover.covered_fraction;
  }
  result.seconds_coverage = timer.ElapsedSeconds();
  return result;
}

}  // namespace timpp
