#include "core/node_selector.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "coverage/greedy_cover.h"
#include "rrset/rr_collection.h"
#include "util/timer.h"

namespace timpp {

namespace {

NodeSelection FinishSelection(RRCollection& rr, int k, uint64_t theta,
                              uint64_t edges_examined,
                              double seconds_sampling) {
  NodeSelection result;
  result.theta = theta;
  result.edges_examined = edges_examined;
  result.seconds_sampling = seconds_sampling;

  Timer timer;
  rr.BuildIndex();
  result.rr_memory_bytes = rr.MemoryBytes();
  CoverResult cover = GreedyMaxCover(rr, k);
  result.seconds_coverage = timer.ElapsedSeconds();

  result.seeds = std::move(cover.seeds);
  result.covered_fraction = cover.covered_fraction;
  return result;
}

}  // namespace

NodeSelection SelectNodes(RRSampler& sampler, int k, uint64_t theta,
                          Rng& rng) {
  Timer timer;
  RRCollection rr(sampler.graph().num_nodes());
  uint64_t edges_examined = 0;
  std::vector<NodeId> scratch;
  for (uint64_t i = 0; i < theta; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    rr.Add(scratch, info.width);
    edges_examined += info.edges_examined;
  }
  return FinishSelection(rr, k, theta, edges_examined,
                         timer.ElapsedSeconds());
}

NodeSelection SelectNodesParallel(RRSampler& prototype, int k, uint64_t theta,
                                  unsigned num_threads, Rng& rng) {
  if (num_threads <= 1 || theta < 2 * num_threads) {
    return SelectNodes(prototype, k, theta, rng);
  }

  Timer timer;
  const Graph& graph = prototype.graph();

  // Deterministic work split: worker i samples counts[i] sets from its own
  // forked stream; batches merge in worker order.
  std::vector<uint64_t> worker_seeds(num_threads);
  for (auto& s : worker_seeds) s = rng.Next();
  std::vector<uint64_t> counts(num_threads, theta / num_threads);
  counts[0] += theta % num_threads;

  std::vector<RRCollection> batches;
  batches.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    batches.emplace_back(graph.num_nodes());
  }
  std::vector<uint64_t> edge_counts(num_threads, 0);

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      RRSampler sampler(graph, prototype.model(), prototype.custom_model(),
                        prototype.max_hops());
      Rng worker_rng(worker_seeds[t]);
      std::vector<NodeId> scratch;
      for (uint64_t i = 0; i < counts[t]; ++i) {
        RRSampleInfo info = sampler.SampleRandomRoot(worker_rng, &scratch);
        batches[t].Add(scratch, info.width);
        edge_counts[t] += info.edges_examined;
      }
    });
  }
  for (auto& w : workers) w.join();

  RRCollection merged(graph.num_nodes());
  uint64_t edges_examined = 0;
  for (unsigned t = 0; t < num_threads; ++t) {
    for (size_t id = 0; id < batches[t].num_sets(); ++id) {
      merged.Add(batches[t].Set(static_cast<RRSetId>(id)),
                 batches[t].Width(static_cast<RRSetId>(id)));
    }
    edges_examined += edge_counts[t];
    batches[t].Clear();
  }
  return FinishSelection(merged, k, theta, edges_examined,
                         timer.ElapsedSeconds());
}

}  // namespace timpp
