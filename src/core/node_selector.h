// Algorithm 1 (NodeSelection): sample θ random RR sets, then solve greedy
// maximum coverage over them. With θ >= λ/OPT (Equation 5) the returned set
// is (1-1/e-ε)-approximate with probability >= 1 - n^-ℓ (Theorem 1).
//
// Sampling goes through the shared SamplingEngine. RR sets are i.i.d., so
// worker threads with independent per-index RNG streams produce a
// collection with the same distribution — and, under the engine's
// deterministic merge contract, the *same bytes*: each set's content is a
// pure function of (engine seed, global set index), workers fill
// contiguous index ranges into private shards, and shards merge in worker
// order == index order. The selected seeds, covered fraction, and edge
// counts are therefore identical for every num_threads setting, including
// a fully sequential run. This is the single-machine half of the paper's
// §8 future-work direction (distributing TIM).
#ifndef TIMPP_CORE_NODE_SELECTOR_H_
#define TIMPP_CORE_NODE_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_spill.h"
#include "util/types.h"

namespace timpp {

/// Output of Algorithm 1.
struct NodeSelection {
  /// The selected seed set S*_k, in selection order.
  std::vector<NodeId> seeds;
  /// Fraction F_R(S*_k) of the θ RR sets covered; n·F_R(S) is an unbiased
  /// spread estimate (Corollary 1).
  double covered_fraction = 0.0;
  /// θ — number of RR sets sampled.
  uint64_t theta = 0;
  /// Peak heap bytes of the RR collection (Figure 12's metric).
  size_t rr_memory_bytes = 0;
  /// Filled bytes of retained raw set storage (RRCollection::DataBytes
  /// before any index build) — the quantity a memory budget caps, and
  /// comparable between budgeted and budget-off runs.
  size_t rr_data_bytes = 0;
  /// Cost accounting (regeneration passes included).
  uint64_t edges_examined = 0;
  /// The memory budget forced sample-and-discard selection: only
  /// `rr_sets_retained` of the θ sets were kept resident and the rest
  /// were regenerated per greedy round. Seeds are still bit-identical to
  /// a budget-off run.
  bool hit_memory_budget = false;
  uint64_t rr_sets_retained = 0;
  uint64_t regeneration_passes = 0;
  /// Spill-tier accounting (zero without a store): sets written to disk by
  /// this selection, and sets replayed from disk during its greedy rounds
  /// (each replayed set is a regeneration that didn't happen).
  uint64_t rr_sets_spilled = 0;
  uint64_t sets_spill_read = 0;
  /// Wall-clock split between the sampling and coverage halves.
  double seconds_sampling = 0.0;
  double seconds_coverage = 0.0;
};

/// Runs Algorithm 1 with the given θ over `source`'s stream (standalone
/// engine or serving-layer shared collection — reused sets are
/// byte-identical to fresh ones). Output is deterministic in the stream's
/// (seed, position), independent of thread count. `memory_budget_bytes`
/// (0 = unlimited) caps the RR collection's resident DataBytes: past it,
/// selection degrades to streaming sample-and-discard greedy (see
/// coverage/streaming_cover.h) instead of failing — same seeds, bounded
/// memory, k extra sampling passes in the worst case. `spill` (optional,
/// only consulted when the budget trips) turns those passes into disk
/// replays: the non-resident suffix is written once as shard chunks and
/// streamed back each round, so a healthy store leaves
/// regeneration_passes at 0 — still the same seeds.
NodeSelection SelectNodes(SampleSource& source, int k, uint64_t theta,
                          size_t memory_budget_bytes = 0,
                          RRSpillStore* spill = nullptr);

/// Standalone convenience: consume `engine`'s stream directly.
inline NodeSelection SelectNodes(SamplingEngine& engine, int k,
                                 uint64_t theta,
                                 size_t memory_budget_bytes = 0,
                                 RRSpillStore* spill = nullptr) {
  EngineSampleSource source(engine);
  return SelectNodes(source, k, theta, memory_budget_bytes, spill);
}

}  // namespace timpp

#endif  // TIMPP_CORE_NODE_SELECTOR_H_
