// Algorithm 1 (NodeSelection): sample θ random RR sets, then solve greedy
// maximum coverage over them. With θ >= λ/OPT (Equation 5) the returned set
// is (1-1/e-ε)-approximate with probability >= 1 - n^-ℓ (Theorem 1).
//
// Sampling can be parallelized: RR sets are i.i.d., so worker threads with
// independent RNG streams produce a collection with the same distribution.
// This is the single-machine half of the paper's §8 future-work direction
// (distributing TIM); results are deterministic in (seed, num_threads).
#ifndef TIMPP_CORE_NODE_SELECTOR_H_
#define TIMPP_CORE_NODE_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "rrset/rr_sampler.h"
#include "util/rng.h"
#include "util/types.h"

namespace timpp {

/// Output of Algorithm 1.
struct NodeSelection {
  /// The selected seed set S*_k, in selection order.
  std::vector<NodeId> seeds;
  /// Fraction F_R(S*_k) of the θ RR sets covered; n·F_R(S) is an unbiased
  /// spread estimate (Corollary 1).
  double covered_fraction = 0.0;
  /// θ — number of RR sets sampled.
  uint64_t theta = 0;
  /// Peak heap bytes of the RR collection (Figure 12's metric).
  size_t rr_memory_bytes = 0;
  /// Cost accounting.
  uint64_t edges_examined = 0;
  /// Wall-clock split between the sampling and coverage halves.
  double seconds_sampling = 0.0;
  double seconds_coverage = 0.0;
};

/// Runs Algorithm 1 with the given θ, sampling on the calling thread.
NodeSelection SelectNodes(RRSampler& sampler, int k, uint64_t theta, Rng& rng);

/// Runs Algorithm 1 with `num_threads` sampling workers. Each worker owns a
/// forked RNG stream and a private sampler over the same (graph, model,
/// custom_model, max_hops) configuration as `prototype`; their batches are
/// merged in worker order, so output is deterministic in (rng state,
/// num_threads). num_threads <= 1 falls back to SelectNodes.
NodeSelection SelectNodesParallel(RRSampler& prototype, int k, uint64_t theta,
                                  unsigned num_threads, Rng& rng);

}  // namespace timpp

#endif  // TIMPP_CORE_NODE_SELECTOR_H_
