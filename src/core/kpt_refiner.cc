#include "core/kpt_refiner.h"

#include <algorithm>
#include <cmath>

#include "core/parameters.h"
#include "coverage/greedy_cover.h"
#include "graph/graph.h"
#include "util/visit_marker.h"

namespace timpp {

KptRefinement RefineKpt(SampleSource& source, const RRCollection& r_prime,
                        int k, double kpt_star, double eps_prime,
                        double ell) {
  const Graph& graph = source.graph();
  const uint64_t n = graph.num_nodes();

  KptRefinement result;

  // Lines 2-6: greedy max coverage on R′ yields the intermediate set S′_k.
  CoverResult cover = GreedyMaxCover(r_prime, k);
  result.intermediate_seeds = cover.seeds;

  // Lines 7-8: θ′ = λ′ / KPT*.
  const double lambda_prime = ComputeLambdaPrime(n, eps_prime, ell);
  result.theta_prime =
      static_cast<uint64_t>(std::max(1.0, std::ceil(lambda_prime / kpt_star)));

  // Lines 9-10: fraction of θ′ fresh RR sets covered by S′_k. The sets are
  // sampled in bounded chunks, tested against a seed bitmap, and dropped —
  // the engine parallelizes each chunk, and only one chunk is ever
  // resident, keeping this step's memory footprint small.
  VisitMarker is_seed(graph.num_nodes());
  is_seed.NewEpoch();
  for (NodeId s : result.intermediate_seeds) is_seed.Visit(s);

  constexpr uint64_t kChunkSets = 1 << 16;
  RRCollection chunk(graph.num_nodes());
  uint64_t covered = 0;
  for (uint64_t sampled = 0; sampled < result.theta_prime;) {
    const uint64_t want = std::min(kChunkSets, result.theta_prime - sampled);
    chunk.Clear();
    const SampleBatch batch = source.Fetch(&chunk, want);
    result.edges_examined += batch.edges_examined;
    sampled += batch.sets_added;
    for (size_t id = 0; id < chunk.num_sets(); ++id) {
      for (NodeId v : chunk.Set(static_cast<RRSetId>(id))) {
        if (is_seed.Visited(v)) {
          ++covered;
          break;
        }
      }
    }
  }
  result.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(result.theta_prime);

  // Lines 11-12: KPT′ = f·n/(1+ε′); KPT+ = max(KPT′, KPT*).
  result.kpt_prime = result.covered_fraction * static_cast<double>(n) /
                     (1.0 + eps_prime);
  result.kpt_plus = std::max(result.kpt_prime, kpt_star);
  return result;
}

}  // namespace timpp
