#include "core/kpt_refiner.h"

#include <algorithm>
#include <cmath>

#include "core/parameters.h"
#include "coverage/greedy_cover.h"
#include "graph/graph.h"
#include "util/visit_marker.h"

namespace timpp {

KptRefinement RefineKpt(RRSampler& sampler, const RRCollection& r_prime,
                        int k, double kpt_star, double eps_prime, double ell,
                        Rng& rng) {
  const Graph& graph = sampler.graph();
  const uint64_t n = graph.num_nodes();

  KptRefinement result;

  // Lines 2-6: greedy max coverage on R′ yields the intermediate set S′_k.
  CoverResult cover = GreedyMaxCover(r_prime, k);
  result.intermediate_seeds = cover.seeds;

  // Lines 7-8: θ′ = λ′ / KPT*.
  const double lambda_prime = ComputeLambdaPrime(n, eps_prime, ell);
  result.theta_prime =
      static_cast<uint64_t>(std::max(1.0, std::ceil(lambda_prime / kpt_star)));

  // Lines 9-10: fraction of θ′ fresh RR sets covered by S′_k. Membership is
  // tested against a seed bitmap while the sets stream by — the sets are
  // never stored, keeping this step's memory footprint trivial.
  VisitMarker is_seed(graph.num_nodes());
  is_seed.NewEpoch();
  for (NodeId s : result.intermediate_seeds) is_seed.Visit(s);

  uint64_t covered = 0;
  std::vector<NodeId> scratch;
  for (uint64_t i = 0; i < result.theta_prime; ++i) {
    RRSampleInfo info = sampler.SampleRandomRoot(rng, &scratch);
    result.edges_examined += info.edges_examined;
    for (NodeId v : scratch) {
      if (is_seed.Visited(v)) {
        ++covered;
        break;
      }
    }
  }
  result.covered_fraction =
      static_cast<double>(covered) / static_cast<double>(result.theta_prime);

  // Lines 11-12: KPT′ = f·n/(1+ε′); KPT+ = max(KPT′, KPT*).
  result.kpt_prime = result.covered_fraction * static_cast<double>(n) /
                     (1.0 + eps_prime);
  result.kpt_plus = std::max(result.kpt_prime, kpt_star);
  return result;
}

}  // namespace timpp
