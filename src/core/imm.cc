#include "core/imm.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/parameters.h"
#include "core/tim.h"
#include "coverage/greedy_cover.h"
#include "coverage/streaming_cover.h"
#include "engine/phase_cache.h"
#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_spill.h"
#include "util/alias_table.h"
#include "util/math.h"
#include "util/timer.h"

namespace timpp {

namespace {

// Grows `rr` (whose set 0 is stream index `stream_first`) with the next
// stream sets until it holds `target` sets or its memory budget stops the
// growth. On a budget stop the collection is cut back to its largest
// under-budget prefix (the engine's batch-granular stop overshoots) and
// `*budget_hit` latches true: the cache freezes as a stream prefix and the
// remaining sets exist only by index — regenerated on demand, unless a
// spill store is given, in which case the about-to-be-dropped suffix and
// every later index up to `target` are written to disk exactly once (the
// suffix here, the never-resident remainder via SpillFillTo) for replay.
// With a store, `rr_edges` tracks the live collection's per-set edge
// counts (kept aligned with `rr`) and `*sets_spilled` accumulates.
void GrowTo(SampleSource& source, uint64_t stream_first, uint64_t target,
            RRCollection* rr, bool* budget_hit, RRSpillStore* spill,
            std::vector<uint64_t>* rr_edges, uint64_t* sets_spilled) {
  if (!*budget_hit && rr->num_sets() < target) {
    // Appending invalidates any index from the previous iteration's greedy
    // solve; release it up front so neither the engine's in-flight budget
    // checks nor the cap test below charge those stale bytes.
    rr->DropIndex();
    source.Fetch(rr, target - rr->num_sets(),
                 spill != nullptr ? rr_edges : nullptr);
    // The engine's budget check is batch-granular (and never fires inside
    // a sub-batch request), so test the cap directly and cut back to the
    // largest under-budget prefix; the dropped sets remain reachable by
    // index regeneration (or disk replay once spilled).
    if (rr->memory_budget() != 0 && rr->DataBytes() > rr->memory_budget()) {
      const size_t keep = MaxPrefixUnderDataBudget(*rr, rr->memory_budget());
      if (spill != nullptr && rr->num_sets() > keep &&
          spill
              ->SpillRange(*rr, *rr_edges, keep, rr->num_sets() - keep,
                           stream_first + keep)
              .ok()) {
        *sets_spilled += rr->num_sets() - keep;
      }
      rr->TruncateTo(keep);
      if (spill != nullptr && rr_edges->size() > keep) rr_edges->resize(keep);
      *budget_hit = true;
    }
  }
  if (*budget_hit && spill != nullptr) {
    // The cache is frozen; put the rest of the requested range on disk in
    // transient batches so greedy rounds replay it instead of traversing
    // the graph again. (No-op for ranges already spilled by an earlier,
    // smaller target.)
    const SpillFillResult fill =
        SpillFillTo(source, *spill, stream_first + target);
    *sets_spilled += fill.sets_spilled;
  }
}

}  // namespace

Status RunImm(const Graph& graph, const ImmOptions& options,
              ImmResult* result) {
  return RunImm(graph, options, SolveContext(), result);
}

Status RunImm(const Graph& graph, const ImmOptions& options,
              const SolveContext& context, ImmResult* result) {
  TIMPP_RETURN_NOT_OK(
      ValidateImParameters(graph, options.k, options.epsilon, options.ell));
  if (options.model == DiffusionModel::kTriggering &&
      options.custom_model == nullptr) {
    return Status::InvalidArgument(
        "model == kTriggering requires options.custom_model");
  }
  if (context.source != nullptr && &context.source->graph() != &graph) {
    return Status::InvalidArgument(
        "SolveContext source is bound to a different graph");
  }
  if (context.source != nullptr && options.node_weights != nullptr) {
    return Status::InvalidArgument(
        "node_weights require a standalone run (no SolveContext source): "
        "the root distribution lives in the private engine");
  }

  // Node-weighted runs replace n by W = Σ w(v) everywhere a spread range
  // appears; the union-bound terms (ln n, log C(n,k)) keep using n.
  AliasTable root_dist;
  if (options.node_weights != nullptr) {
    if (options.node_weights->size() != graph.num_nodes()) {
      return Status::InvalidArgument("node_weights size must equal n");
    }
    for (double w : *options.node_weights) {
      if (!(w >= 0.0)) {
        return Status::InvalidArgument("node_weights must be non-negative");
      }
    }
    root_dist.Build(*options.node_weights);
    if (root_dist.empty()) {
      return Status::InvalidArgument(
          "node_weights must contain a positive entry");
    }
  }
  const double n = options.node_weights != nullptr
                       ? root_dist.total_weight()
                       : static_cast<double>(graph.num_nodes());
  const double ln_n = SafeLogN(graph.num_nodes());
  const double log_cnk =
      LogBinomial(graph.num_nodes(), static_cast<uint64_t>(options.k));
  const double eps = options.epsilon;

  double ell = options.ell;
  if (options.adjust_ell) {
    ell = ell * (1.0 + std::log(2.0) / ln_n);
  }

  ImmStats stats;
  Timer total_timer;

  // ---- Sampling phase: binary-search a lower bound LB of OPT ----------
  // ε' = √2·ε;  λ' = (2 + 2ε'/3)·(log C(n,k) + ℓ·ln n + ln log2 n)·n / ε'².
  const double eps_prime = std::sqrt(2.0) * eps;
  const double log2_n = std::max(2.0, std::log2(n));
  stats.lambda_prime = (2.0 + 2.0 * eps_prime / 3.0) *
                       (log_cnk + ell * ln_n + std::log(log2_n)) * n /
                       (eps_prime * eps_prime);

  std::optional<SamplingEngine> local_engine;
  std::optional<EngineSampleSource> local_source;
  SampleSource* source = context.source;
  if (source == nullptr) {
    SamplingConfig sampling;
    sampling.model = options.model;
    sampling.custom_model = options.custom_model;
    sampling.max_hops = options.max_hops;
    sampling.sampler_mode = options.sampler_mode;
    sampling.num_threads = options.num_threads;
    sampling.pin_threads = options.pin_threads;
    sampling.seed = options.seed;
    if (options.node_weights != nullptr) {
      sampling.root_distribution = &root_dist;
    }
    sampling.backend = options.sample_backend;
    local_engine.emplace(graph, sampling);
    local_source.emplace(*local_engine);
    source = &*local_source;
  }
  const BackendStats backend_before = source->engine().backend_stats();

  Timer phase_timer;
  const size_t budget = options.memory_budget_bytes;
  const uint64_t stream_start = source->position();

  // One spill store serves both phases (chunks append in increasing index
  // order; the gap between the phases' ranges is fine). Only built when a
  // budget can trip; its chunk directory dies with the run.
  std::optional<RRSpillStore> spill_store;
  if (budget != 0 && !options.spill_dir.empty()) {
    RRSpillOptions spill_options;
    spill_options.dir = options.spill_dir;
    spill_options.tuning = options.spill_tuning;
    spill_store.emplace(graph.num_nodes(), std::move(spill_options));
  }
  RRSpillStore* spill = spill_store ? &*spill_store : nullptr;
  uint64_t sets_spilled = 0;

  // The LB memo only covers the canonical configuration: a stream consumed
  // from index 0 (how every run starts) and the corrected no-reuse
  // variant, whose selection phase does not need the sampling-phase sets
  // back.
  PhaseCache* memo = (stream_start == 0 && !options.reuse_samples &&
                      options.node_weights == nullptr)
                         ? context.phase_cache
                         : nullptr;
  LbPhaseKey memo_key;
  if (memo != nullptr) {
    memo_key.model = options.model;
    memo_key.sampler_mode = options.sampler_mode;
    memo_key.max_hops = options.max_hops;
    memo_key.seed = options.seed;
    memo_key.custom_model = options.custom_model;
    memo_key.k = options.k;
    memo_key.epsilon_bits = DoubleBits(eps);
    memo_key.ell_bits = DoubleBits(ell);
  }

  RRCollection sampling_rr(graph.num_nodes());
  sampling_rr.set_memory_budget(budget);
  std::vector<uint64_t> sampling_edges;  // per-set edges, spill path only
  bool sampling_budget_hit = false;
  uint64_t sampling_target = 0;  // θ_i of the latest iteration
  double lb = 1.0;
  // Hit or compute obligation; same-key concurrent requests wait inside
  // AcquireLb and wake as hits once this one publishes. An error return
  // destroys the unpublished lease, waking them to recompute instead.
  PhaseCache::LbLease lease;
  if (memo != nullptr) lease = memo->AcquireLb(memo_key);
  const LbPhaseEntry* hit = lease.entry();
  if (hit != nullptr) {
    // The whole binary search is a pure function of the key: restore LB
    // and jump the stream past the sets it consumed.
    stats.lb_cache_hit = true;
    lb = hit->lb;
    sampling_target = hit->rr_sets_sampling;
    stats.sampling_iterations = hit->sampling_iterations;
    source->Seek(hit->end_index);
  } else {
    const int max_iterations = std::max(1, static_cast<int>(log2_n) - 1);
    for (int i = 1; i <= max_iterations; ++i) {
      const double x_i = n / std::pow(2.0, i);
      const uint64_t theta_i = static_cast<uint64_t>(
          std::max(1.0, std::ceil(stats.lambda_prime / x_i)));
      GrowTo(*source, stream_start, theta_i, &sampling_rr,
             &sampling_budget_hit, spill, &sampling_edges, &sets_spilled);
      // A dead sample backend (worker process crash) means the grown
      // prefix is short, not budget-truncated — fail the run.
      TIMPP_RETURN_NOT_OK(source->engine().status());
      // Keep the stream aligned with a budget-off run: the sets the cache
      // could not retain still occupy indices [num_sets, θ_i) and are
      // regenerated from them below.
      source->Seek(stream_start + theta_i);
      sampling_target = theta_i;
      CoverResult cover;
      if (!sampling_budget_hit &&
          (budget == 0 || IndexedDataBytesFitBudget(sampling_rr, budget))) {
        sampling_rr.BuildIndex();
        cover = GreedyMaxCover(sampling_rr, options.k);
      } else {
        // Budgeted greedy: retained prefix + per-round regeneration. Seeds
        // and covered_fraction are bit-identical to the indexed path, so LB
        // — and with it every downstream θ — matches the budget-off run.
        stats.hit_memory_budget = true;
        StreamingCoverResult streamed =
            StreamingGreedyMaxCover(source->engine(), sampling_rr,
                                    stream_start, theta_i, options.k, spill);
        stats.regeneration_passes += streamed.regeneration_passes;
        stats.sets_spill_read += streamed.sets_spill_read;
        cover = std::move(streamed.cover);
      }
      stats.sampling_iterations = i;
      if (n * cover.covered_fraction >= (1.0 + eps_prime) * x_i) {
        lb = n * cover.covered_fraction / (1.0 + eps_prime);
        break;
      }
    }
    if (memo != nullptr) {
      LbPhaseEntry entry;
      entry.lb = lb;
      entry.sampling_iterations = stats.sampling_iterations;
      entry.rr_sets_sampling = sampling_target;
      entry.end_index = source->position();
      lease.Publish(entry);
    }
  }
  stats.lb = lb;
  stats.rr_sets_sampling = sampling_target;
  stats.seconds_sampling = phase_timer.ElapsedSeconds();

  // ---- Selection phase: θ = λ* / LB -----------------------------------
  // λ* = 2n·((1-1/e)·α + β)² / ε², α = √(ℓ·ln n + ln 2),
  // β = √((1-1/e)·(log C(n,k) + ℓ·ln n + ln 2)).
  const double one_minus_inv_e = 1.0 - 1.0 / std::exp(1.0);
  const double alpha = std::sqrt(ell * ln_n + std::log(2.0));
  const double beta =
      std::sqrt(one_minus_inv_e * (log_cnk + ell * ln_n + std::log(2.0)));
  stats.lambda_star = 2.0 * n *
                      (one_minus_inv_e * alpha + beta) *
                      (one_minus_inv_e * alpha + beta) / (eps * eps);
  stats.theta = static_cast<uint64_t>(
      std::max(1.0, std::ceil(stats.lambda_star / lb)));

  phase_timer.Reset();
  RRCollection selection_rr(graph.num_nodes());
  selection_rr.set_memory_budget(budget);
  std::vector<uint64_t> selection_edges;
  RRCollection* cache = &selection_rr;
  std::vector<uint64_t>* cache_edges = &selection_edges;
  uint64_t sel_first = stream_start;
  uint64_t sel_total = stats.theta;
  bool sel_budget_hit = false;
  if (options.reuse_samples) {
    // Original IMM: keep the sampling-phase sets and top up. (Subtly
    // biased — the stopping rule conditions these samples; kept for
    // study.) The selection collection is then exactly the sample stream
    // from the run's start, so the sampling cache continues as the
    // selection cache — no copy, and the budgeted prefix carries over.
    cache = &sampling_rr;
    cache_edges = &sampling_edges;
    sel_total = std::max(stats.theta, sampling_target);
    sel_budget_hit = sampling_budget_hit;
  } else {
    // Actually release the sampling phase's storage (Clear would keep
    // vector capacities, leaving ~2x the budget resident while
    // selection_rr grows toward the cap).
    sampling_rr = RRCollection(graph.num_nodes());
    std::vector<uint64_t>().swap(sampling_edges);
    sel_first = source->position();
  }
  // Grow the cache to hold the whole selection range [sel_first,
  // sel_first + sel_total) — or as much of its prefix as the budget
  // allows (the growth freezes once the budget latched, keeping the cache
  // a contiguous stream prefix; with a spill store the rest of the range
  // goes to disk).
  GrowTo(*source, sel_first, sel_total, cache, &sel_budget_hit, spill,
         cache_edges, &sets_spilled);
  TIMPP_RETURN_NOT_OK(source->engine().status());
  source->Seek(sel_first + sel_total);
  // The reuse path may carry the sampling phase's index over unchanged;
  // drop it so the budget-fit check below prices one index, not two.
  cache->DropIndex();

  CoverResult cover;
  // Pre-index capture: the stat compares across budget settings.
  stats.rr_data_bytes = cache->DataBytes();
  if (!sel_budget_hit &&
      (budget == 0 || IndexedDataBytesFitBudget(*cache, budget))) {
    cache->BuildIndex();
    stats.rr_memory_bytes = cache->MemoryBytes();
    cover = GreedyMaxCover(*cache, options.k);
  } else {
    stats.hit_memory_budget = true;
    stats.rr_memory_bytes = cache->MemoryBytes();
    StreamingCoverResult streamed =
        StreamingGreedyMaxCover(source->engine(), *cache, sel_first,
                                sel_total, options.k, spill);
    stats.regeneration_passes += streamed.regeneration_passes;
    stats.sets_spill_read += streamed.sets_spill_read;
    cover = std::move(streamed.cover);
  }
  // The streaming branch regenerates through the engine; a backend that
  // died there must fail the run, not return partial-coverage seeds.
  TIMPP_RETURN_NOT_OK(source->engine().status());
  stats.rr_sets_retained = cache->num_sets();
  stats.rr_sets_spilled = sets_spilled;
  if (spill != nullptr) {
    stats.spill = spill->stats();
    stats.spill_bytes_written = stats.spill.bytes_written;
  }
  stats.estimated_spread = n * cover.covered_fraction;
  stats.seconds_selection = phase_timer.ElapsedSeconds();
  stats.backend = source->engine().backend_stats() - backend_before;
  stats.seconds_total = total_timer.ElapsedSeconds();

  result->seeds = std::move(cover.seeds);
  result->stats = stats;
  return Status::OK();
}

}  // namespace timpp
