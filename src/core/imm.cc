#include "core/imm.h"

#include <algorithm>
#include <cmath>

#include "core/parameters.h"
#include "core/tim.h"
#include "coverage/greedy_cover.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"
#include "util/alias_table.h"
#include "util/math.h"
#include "util/timer.h"

namespace timpp {

namespace {

// Grows `rr` with fresh random RR sets until it holds `target` sets.
void GrowTo(SamplingEngine& engine, uint64_t target, RRCollection* rr) {
  if (rr->num_sets() < target) {
    engine.SampleInto(rr, target - rr->num_sets());
  }
}

}  // namespace

Status RunImm(const Graph& graph, const ImmOptions& options,
              ImmResult* result) {
  TIMPP_RETURN_NOT_OK(
      ValidateImParameters(graph, options.k, options.epsilon, options.ell));
  if (options.model == DiffusionModel::kTriggering &&
      options.custom_model == nullptr) {
    return Status::InvalidArgument(
        "model == kTriggering requires options.custom_model");
  }

  // Node-weighted runs replace n by W = Σ w(v) everywhere a spread range
  // appears; the union-bound terms (ln n, log C(n,k)) keep using n.
  AliasTable root_dist;
  if (options.node_weights != nullptr) {
    if (options.node_weights->size() != graph.num_nodes()) {
      return Status::InvalidArgument("node_weights size must equal n");
    }
    for (double w : *options.node_weights) {
      if (!(w >= 0.0)) {
        return Status::InvalidArgument("node_weights must be non-negative");
      }
    }
    root_dist.Build(*options.node_weights);
    if (root_dist.empty()) {
      return Status::InvalidArgument(
          "node_weights must contain a positive entry");
    }
  }
  const double n = options.node_weights != nullptr
                       ? root_dist.total_weight()
                       : static_cast<double>(graph.num_nodes());
  const double ln_n = SafeLogN(graph.num_nodes());
  const double log_cnk =
      LogBinomial(graph.num_nodes(), static_cast<uint64_t>(options.k));
  const double eps = options.epsilon;

  double ell = options.ell;
  if (options.adjust_ell) {
    ell = ell * (1.0 + std::log(2.0) / ln_n);
  }

  ImmStats stats;
  Timer total_timer;

  // ---- Sampling phase: binary-search a lower bound LB of OPT ----------
  // ε' = √2·ε;  λ' = (2 + 2ε'/3)·(log C(n,k) + ℓ·ln n + ln log2 n)·n / ε'².
  const double eps_prime = std::sqrt(2.0) * eps;
  const double log2_n = std::max(2.0, std::log2(n));
  stats.lambda_prime = (2.0 + 2.0 * eps_prime / 3.0) *
                       (log_cnk + ell * ln_n + std::log(log2_n)) * n /
                       (eps_prime * eps_prime);

  SamplingConfig sampling;
  sampling.model = options.model;
  sampling.custom_model = options.custom_model;
  sampling.max_hops = options.max_hops;
  sampling.sampler_mode = options.sampler_mode;
  sampling.num_threads = options.num_threads;
  sampling.seed = options.seed;
  if (options.node_weights != nullptr) {
    sampling.root_distribution = &root_dist;
  }
  SamplingEngine engine(graph, sampling);

  Timer phase_timer;
  RRCollection sampling_rr(graph.num_nodes());
  double lb = 1.0;
  const int max_iterations = std::max(1, static_cast<int>(log2_n) - 1);
  for (int i = 1; i <= max_iterations; ++i) {
    const double x_i = n / std::pow(2.0, i);
    const uint64_t theta_i = static_cast<uint64_t>(
        std::max(1.0, std::ceil(stats.lambda_prime / x_i)));
    GrowTo(engine, theta_i, &sampling_rr);
    sampling_rr.BuildIndex();
    CoverResult cover = GreedyMaxCover(sampling_rr, options.k);
    stats.sampling_iterations = i;
    if (n * cover.covered_fraction >= (1.0 + eps_prime) * x_i) {
      lb = n * cover.covered_fraction / (1.0 + eps_prime);
      break;
    }
  }
  stats.lb = lb;
  stats.rr_sets_sampling = sampling_rr.num_sets();
  stats.seconds_sampling = phase_timer.ElapsedSeconds();

  // ---- Selection phase: θ = λ* / LB -----------------------------------
  // λ* = 2n·((1-1/e)·α + β)² / ε², α = √(ℓ·ln n + ln 2),
  // β = √((1-1/e)·(log C(n,k) + ℓ·ln n + ln 2)).
  const double one_minus_inv_e = 1.0 - 1.0 / std::exp(1.0);
  const double alpha = std::sqrt(ell * ln_n + std::log(2.0));
  const double beta =
      std::sqrt(one_minus_inv_e * (log_cnk + ell * ln_n + std::log(2.0)));
  stats.lambda_star = 2.0 * n *
                      (one_minus_inv_e * alpha + beta) *
                      (one_minus_inv_e * alpha + beta) / (eps * eps);
  stats.theta = static_cast<uint64_t>(
      std::max(1.0, std::ceil(stats.lambda_star / lb)));

  phase_timer.Reset();
  RRCollection selection_rr(graph.num_nodes());
  if (options.reuse_samples) {
    // Original IMM: keep the sampling-phase sets and top up. (Subtly
    // biased — the stopping rule conditions these samples; kept for study.)
    for (size_t id = 0; id < sampling_rr.num_sets(); ++id) {
      selection_rr.Add(sampling_rr.Set(static_cast<RRSetId>(id)),
                       sampling_rr.Width(static_cast<RRSetId>(id)));
    }
  }
  sampling_rr.Clear();
  GrowTo(engine, stats.theta, &selection_rr);
  selection_rr.BuildIndex();
  stats.rr_memory_bytes = selection_rr.MemoryBytes();

  CoverResult cover = GreedyMaxCover(selection_rr, options.k);
  stats.estimated_spread = n * cover.covered_fraction;
  stats.seconds_selection = phase_timer.ElapsedSeconds();
  stats.seconds_total = total_timer.ElapsedSeconds();

  result->seeds = std::move(cover.seeds);
  result->stats = stats;
  return Status::OK();
}

}  // namespace timpp
