#include "core/parameters.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"

namespace timpp {

double ComputeLambda(uint64_t n, int k, double epsilon, double ell) {
  const double ln_n = SafeLogN(n);
  const double log_cnk = LogBinomial(n, static_cast<uint64_t>(k));
  return (8.0 + 2.0 * epsilon) * static_cast<double>(n) *
         (ell * ln_n + log_cnk + std::log(2.0)) / (epsilon * epsilon);
}

double ComputeKptIterationBudget(uint64_t n, double ell, int iteration) {
  const double ln_n = SafeLogN(n);
  const double log2_n = std::max(2.0, std::log2(static_cast<double>(n)));
  return (6.0 * ell * ln_n + 6.0 * std::log(log2_n)) *
         std::pow(2.0, iteration);
}

int KptMaxIterations(uint64_t n) {
  return std::max(1, FloorLog2(std::max<uint64_t>(n, 2)) - 1);
}

double ComputeLambdaPrime(uint64_t n, double eps_prime, double ell) {
  return (2.0 + eps_prime) * ell * static_cast<double>(n) * SafeLogN(n) /
         (eps_prime * eps_prime);
}

double RecommendedEpsPrime(double epsilon, int k, double ell) {
  return 5.0 * std::cbrt(ell * epsilon * epsilon /
                         (static_cast<double>(k) + ell));
}

double AdjustEllForTim(double ell, uint64_t n) {
  return ell * (1.0 + std::log(2.0) / SafeLogN(n));
}

double AdjustEllForTimPlus(double ell, uint64_t n) {
  return ell * (1.0 + std::log(3.0) / SafeLogN(n));
}

double GreedyRequiredSamples(uint64_t n, int k, double epsilon, double ell,
                             double opt) {
  const double kd = static_cast<double>(k);
  return (8.0 * kd * kd + 2.0 * kd * epsilon) * static_cast<double>(n) *
         ((ell + 1.0) * SafeLogN(n) + std::log(kd)) /
         (epsilon * epsilon * opt);
}

}  // namespace timpp
