// Algorithm 3 (RefineKPT): the intermediate step that turns TIM into TIM+.
// Greedily extracts a promising size-k set S′ from Algorithm 2's final RR
// batch, estimates its spread on θ′ fresh RR sets, and returns
// KPT+ = max(KPT′, KPT*) — a (potentially much) tighter lower bound of OPT
// that shrinks θ and with it the node-selection phase (§4.1).
//
// The θ′ fresh sets come from the shared SamplingEngine (parallel,
// deterministic in the engine seed); they are consumed in bounded chunks so
// this step's memory footprint stays small.
#ifndef TIMPP_CORE_KPT_REFINER_H_
#define TIMPP_CORE_KPT_REFINER_H_

#include <cstdint>
#include <vector>

#include "engine/sample_source.h"
#include "engine/sampling_engine.h"
#include "rrset/rr_collection.h"
#include "util/types.h"

namespace timpp {

/// Output of Algorithm 3.
struct KptRefinement {
  /// KPT+ = max(KPT′, KPT*) ∈ [KPT*, OPT] with probability >= 1 - n^-ℓ.
  double kpt_plus = 0.0;
  /// KPT′ = f·n/(1+ε′), the fresh-sample estimate before the max.
  double kpt_prime = 0.0;
  /// The intermediate seed set S′_k extracted from R′.
  std::vector<NodeId> intermediate_seeds;
  /// θ′ — number of fresh RR sets generated for the estimate.
  uint64_t theta_prime = 0;
  /// Fraction f of the fresh sets covered by S′_k.
  double covered_fraction = 0.0;
  /// Cost accounting.
  uint64_t edges_examined = 0;
};

/// Runs Algorithm 3. `r_prime` is Algorithm 2's last-iteration collection
/// (index must be built); `kpt_star` its estimate; `eps_prime` the
/// intermediate accuracy ε′ (see RecommendedEpsPrime).
KptRefinement RefineKpt(SampleSource& source, const RRCollection& r_prime,
                        int k, double kpt_star, double eps_prime, double ell);

/// Standalone convenience: consume `engine`'s stream directly.
inline KptRefinement RefineKpt(SamplingEngine& engine,
                               const RRCollection& r_prime, int k,
                               double kpt_star, double eps_prime,
                               double ell) {
  EngineSampleSource source(engine);
  return RefineKpt(source, r_prime, k, kpt_star, eps_prime, ell);
}

}  // namespace timpp

#endif  // TIMPP_CORE_KPT_REFINER_H_
