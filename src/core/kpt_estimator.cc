#include "core/kpt_estimator.h"

#include <cmath>

#include "core/parameters.h"
#include "graph/graph.h"

namespace timpp {

KptEstimate EstimateKpt(SampleSource& source, int k, double ell) {
  const Graph& graph = source.graph();
  const uint64_t n = graph.num_nodes();
  const double m = static_cast<double>(graph.num_edges());

  KptEstimate result;
  result.last_iteration_rr = std::make_unique<RRCollection>(graph.num_nodes());

  const int max_iterations = KptMaxIterations(n);

  for (int i = 1; i <= max_iterations; ++i) {
    const uint64_t ci = static_cast<uint64_t>(
        std::ceil(ComputeKptIterationBudget(n, ell, i)));

    // Fresh sets each iteration; only the final iteration's R′ is retained
    // (Algorithm 3 reuses exactly those sets).
    result.last_iteration_rr->Clear();
    const SampleBatch batch =
        source.Fetch(result.last_iteration_rr.get(), ci);
    result.edges_examined += batch.edges_examined;
    result.rr_sets_generated += batch.sets_added;

    // κ(R) = 1 - (1 - w(R)/m)^k  (Equation 8), read from the stored
    // widths. An edgeless graph has m = 0 and w(R) = 0; κ = 0 then,
    // matching KPT = 1 ≈ n·E[κ]+seeds.
    double sum = 0.0;
    for (size_t id = 0; id < result.last_iteration_rr->num_sets(); ++id) {
      const double width = static_cast<double>(
          result.last_iteration_rr->Width(static_cast<RRSetId>(id)));
      const double ratio = m > 0.0 ? width / m : 0.0;
      sum += 1.0 - std::pow(1.0 - ratio, k);
    }

    if (sum / static_cast<double>(ci) > 1.0 / std::pow(2.0, i)) {
      result.kpt_star =
          static_cast<double>(n) * sum / (2.0 * static_cast<double>(ci));
      result.terminated_iteration = i;
      result.last_iteration_rr->BuildIndex();
      return result;
    }
  }

  // Fell through every iteration: the smallest possible KPT (a seed always
  // activates itself).
  result.kpt_star = 1.0;
  result.terminated_iteration = 0;
  result.last_iteration_rr->BuildIndex();
  return result;
}

}  // namespace timpp
