// IMM — Influence Maximization via Martingales (Tang, Shi & Xiao,
// SIGMOD'15), the direct successor of TIM/TIM+ by the same group.
//
// Implemented here as the library's "future work" extension: the paper's
// §8 announces follow-on work on tightening TIM, and IMM is that work.
// IMM replaces TIM's KPT estimation with a binary search for a lower bound
// LB of OPT driven by greedy solutions on progressively larger RR batches:
//
//   sampling phase: for i = 1, 2, ...:
//     x_i = n / 2^i,  θ_i = λ' / x_i
//     grow R to θ_i sets, S_i = greedy(R, k)
//     if n·F_R(S_i) >= (1 + ε')·x_i:  LB = n·F_R(S_i)/(1+ε'); stop
//   selection phase: θ = λ* / LB, sample θ RR sets, return greedy(R, k).
//
// λ' and λ* are Chernoff/martingale constants (Equations 6 & 9 of the IMM
// paper); ε' = √2·ε. The *original* IMM reused the sampling-phase RR sets
// in the selection phase; that reuse introduces a dependence bug (the
// stopping rule conditions the samples) later fixed by the authors — the
// corrected variant regenerates fresh RR sets, and is the default here
// (`reuse_samples` restores the original behaviour for study).
//
// All RR sets — every progressive x_i batch and the final θ batch — come
// from one shared SamplingEngine, whose deterministic merge contract makes
// the run bit-reproducible in `seed` alone: set i's content is a pure
// function of (seed, global set index i), workers sample contiguous index
// ranges into private shards, and shards merge in worker order == index
// order. Consequently IMM returns identical seed sets and stats for any
// `num_threads`, and the progressive batches simply extend one global
// sample stream (grow-to-θ_i keeps the θ_{i-1} prefix untouched).
#ifndef TIMPP_CORE_IMM_H_
#define TIMPP_CORE_IMM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "diffusion/triggering.h"
#include "engine/sample_backend.h"
#include "engine/solve_context.h"
#include "graph/graph.h"
#include "rrset/rr_spill.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Configuration of an IMM run.
struct ImmOptions {
  int k = 50;
  double epsilon = 0.1;
  double ell = 1.0;
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; required when model == kTriggering.
  const TriggeringModel* custom_model = nullptr;
  /// Propagation-round bound (0 = unlimited), as in TimOptions.
  uint32_t max_hops = 0;
  /// RR-traversal strategy (see SamplerMode and TimOptions::sampler_mode).
  SamplerMode sampler_mode = SamplerMode::kAuto;
  /// true reproduces the original (dependence-flawed) sample reuse; false
  /// (default) regenerates fresh RR sets for the selection phase.
  bool reuse_samples = false;
  /// Scale ℓ by 1 + log 2 / log n (the IMM paper's union-bound adjustment).
  bool adjust_ell = true;
  /// Optional per-node weights (borrowed; size n, non-negative, at least
  /// one positive). When set, IMM maximizes the *weighted* spread
  /// Σ_v w(v)·P[v activated]: RR roots are drawn ∝ w(v) and every n in
  /// the sample-size machinery is replaced by W = Σ w(v). The martingale
  /// analysis carries verbatim because coverage indicators scaled by W
  /// stay in [0, W].
  const std::vector<double>* node_weights = nullptr;
  /// Sampling worker threads for both phases (see the determinism note in
  /// the header comment: results do not depend on this value).
  unsigned num_threads = 1;
  /// Pin sampling worker threads to CPUs (placement only; results are
  /// invariant to it).
  bool pin_threads = false;
  /// Soft cap (bytes; 0 = unlimited) on resident RR-collection DataBytes
  /// in BOTH phases (the progressive x_i batches grow toward θ-scale, so
  /// the sampling phase needs the cap as much as selection). Past the
  /// cap, greedy rounds run over a retained stream prefix plus exact
  /// per-index regeneration of the discarded sets (see
  /// coverage/streaming_cover.h); seeds and LB stay bit-identical to a
  /// budget-off run.
  size_t memory_budget_bytes = 0;
  /// Parent directory for disk-spilled RR prefixes (empty = no spill).
  /// Only consulted when the budget trips: non-resident index ranges of
  /// BOTH phases go to one append-only store (written once, replayed each
  /// greedy round) instead of being regenerated — identical seeds/LB/θ,
  /// regeneration_passes == 0 while the store stays healthy. See
  /// TimOptions::spill_dir.
  std::string spill_dir;
  /// Spill replay tuning (readahead, SLRU split, IO backend); never
  /// affects results. See TimOptions::spill_tuning.
  RRSpillTuning spill_tuning;
  uint64_t seed = 0x1e1eULL;
  /// Where sample production runs (in-process threads vs coordinated
  /// worker subprocesses, engine/sample_backend.h). Never changes the
  /// result — only throughput and failure modes.
  SampleBackendSpec sample_backend;
};

/// Instrumentation of an IMM run.
struct ImmStats {
  double lb = 0.0;            // lower bound of OPT from the sampling phase
  double lambda_prime = 0.0;  // sampling-phase constant
  double lambda_star = 0.0;   // selection-phase constant
  uint64_t theta = 0;         // RR sets used for final selection
  uint64_t rr_sets_sampling = 0;  // RR sets generated in the sampling phase
  int sampling_iterations = 0;
  double estimated_spread = 0.0;  // n·F_R(S) on the selection collection
  double seconds_sampling = 0.0;
  double seconds_selection = 0.0;
  double seconds_total = 0.0;
  size_t rr_memory_bytes = 0;
  /// Filled bytes of the selection collection's raw set storage
  /// (DataBytes before any index build — what the budget caps, comparable
  /// across budget settings).
  size_t rr_data_bytes = 0;
  /// memory_budget_bytes forced streaming sample-and-discard selection in
  /// at least one greedy solve (either phase).
  bool hit_memory_budget = false;
  /// RR sets resident for the final selection. Budget-off this equals the
  /// selection collection's size: theta, except under reuse_samples where
  /// it is max(theta, sampling-phase sets).
  uint64_t rr_sets_retained = 0;
  /// Greedy rounds that regenerated discarded RR sets, summed over every
  /// streaming solve of the run (0 budget-off, and 0 under a healthy
  /// spill store).
  uint64_t regeneration_passes = 0;
  /// Spill-tier activity (zero without a spill_dir): sets written to
  /// disk, sets replayed from disk across all greedy rounds, and chunk
  /// bytes written.
  uint64_t rr_sets_spilled = 0;
  uint64_t sets_spill_read = 0;
  uint64_t spill_bytes_written = 0;
  /// Full spill-store counter snapshot (prefetch issued/hit/wasted, sync
  /// fallbacks, SLRU hot/probation hit split). Zero without a store.
  RRSpillStats spill;
  /// The sampling phase (LB binary search) was restored from a
  /// SolveContext's PhaseCache instead of recomputed (serving layer;
  /// always false standalone).
  bool lb_cache_hit = false;
  /// Backend fault-tolerance activity during this run (see BackendStats;
  /// zero for local backends and healthy distributed runs).
  BackendStats backend;
};

/// Result of an IMM run.
struct ImmResult {
  std::vector<NodeId> seeds;
  ImmStats stats;
};

/// Runs IMM on `graph`. Same (1-1/e-ε)-approximation with probability
/// >= 1 - n^-ℓ guarantee as TIM, with a smaller sample complexity in
/// practice (θ is sized by the martingale bound λ*, not Equation 4's λ).
Status RunImm(const Graph& graph, const ImmOptions& options,
              ImmResult* result);

/// Context-aware variant: `context.source` (optional) supplies an
/// externally owned sample stream consumed from its cursor instead of a
/// private engine, and `context.phase_cache` (optional) memoizes the LB
/// binary search across requests. Bit-identical results to the standalone
/// run for matching options. Node-weighted runs (`node_weights`) require a
/// standalone context (their root distribution lives in the private
/// engine).
Status RunImm(const Graph& graph, const ImmOptions& options,
              const SolveContext& context, ImmResult* result);

}  // namespace timpp

#endif  // TIMPP_CORE_IMM_H_
