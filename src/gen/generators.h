// Synthetic graph generators. These serve two roles:
//  1. Dataset proxies — power-law generators parameterized to match the
//     SNAP datasets of the paper's Table 2 (see gen/dataset_proxies.h).
//  2. Structured toy graphs with analytically known behaviour for tests.
// All generators are deterministic given their seed.
#ifndef TIMPP_GEN_GENERATORS_H_
#define TIMPP_GEN_GENERATORS_H_

#include <cstdint>

#include "graph/graph_builder.h"
#include "util/types.h"

namespace timpp {

/// Erdős–Rényi G(n, m): m directed edges sampled uniformly (self-loops and
/// duplicates rejected).
void GenErdosRenyi(NodeId n, uint64_t m, uint64_t seed, GraphBuilder* builder);

/// Barabási–Albert preferential attachment, undirected (each edge inserted
/// as two arcs). Starts from a small seed clique; every new node attaches to
/// `attach` distinct existing nodes chosen proportionally to degree.
/// Produces ~attach*n undirected edges, i.e. average degree ~2*attach.
void GenBarabasiAlbert(NodeId n, unsigned attach, uint64_t seed,
                       GraphBuilder* builder);

/// Directed scale-free graph: each node emits on average `avg_out_degree`
/// arcs whose targets are chosen by preferential attachment on in-degree
/// (plus one smoothing token per node), giving the heavy-tailed in-degree
/// distribution typical of follower networks such as Epinions/Twitter.
void GenDirectedScaleFree(NodeId n, double avg_out_degree, uint64_t seed,
                          GraphBuilder* builder);

/// Watts–Strogatz small world: ring lattice with `k_half` neighbors per side
/// rewired with probability `beta`. Undirected.
void GenWattsStrogatz(NodeId n, unsigned k_half, double beta, uint64_t seed,
                      GraphBuilder* builder);

/// Deterministic toy graphs for tests.
void GenDirectedPath(NodeId n, GraphBuilder* builder);   // 0->1->...->n-1
void GenDirectedCycle(NodeId n, GraphBuilder* builder);  // ... ->0
void GenStarOut(NodeId n, GraphBuilder* builder);        // 0 -> {1..n-1}
void GenStarIn(NodeId n, GraphBuilder* builder);         // {1..n-1} -> 0
void GenCompleteDirected(NodeId n, GraphBuilder* builder);
void GenGridUndirected(NodeId width, NodeId height, GraphBuilder* builder);
void GenBinaryTreeOut(unsigned depth, GraphBuilder* builder);  // root -> leaves

}  // namespace timpp

#endif  // TIMPP_GEN_GENERATORS_H_
