#include "gen/dataset_proxies.h"

#include <algorithm>
#include <cmath>

#include "gen/generators.h"
#include "graph/graph_builder.h"
#include "graph/weight_models.h"

namespace timpp {

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {Dataset::kNetHept, "NetHEPT", 15000, 4.1, true},
      {Dataset::kEpinions, "Epinions", 76000, 13.4, false},
      {Dataset::kDblp, "DBLP", 655000, 6.1, true},
      {Dataset::kLiveJournal, "LiveJournal", 4800000, 28.5, false},
      {Dataset::kTwitter, "Twitter", 41600000, 70.5, false},
  };
  return kSpecs;
}

const DatasetSpec& SpecFor(Dataset dataset) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.dataset == dataset) return spec;
  }
  return AllDatasetSpecs().front();  // unreachable for valid enum values
}

Status BuildDatasetProxy(Dataset dataset, double scale, WeightScheme scheme,
                         uint64_t seed, Graph* graph) {
  if (!(scale > 0.0) || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const DatasetSpec& spec = SpecFor(dataset);
  const NodeId n = static_cast<NodeId>(
      std::max<uint64_t>(64, static_cast<uint64_t>(
                                 std::llround(spec.nodes * scale))));

  GraphBuilder builder;
  if (spec.undirected) {
    // Table 2's "average degree" is 2m/n, and Barabási–Albert yields
    // average degree ~2*attach, so attach = avg_degree / 2 (rounded).
    const unsigned attach = std::max<unsigned>(
        1, static_cast<unsigned>(std::llround(spec.avg_degree / 2.0)));
    GenBarabasiAlbert(n, attach, seed, &builder);
  } else {
    // For directed graphs, Table 2 reports 2m/n; arcs per node is half.
    GenDirectedScaleFree(n, spec.avg_degree / 2.0, seed, &builder);
  }
  builder.RemoveSelfLoops();
  builder.DeduplicateEdges();

  switch (scheme) {
    case WeightScheme::kWeightedCascadeIC:
      AssignWeightedCascade(&builder);
      break;
    case WeightScheme::kRandomLT:
      AssignRandomLT(&builder, seed ^ 0x5eedf00dULL);
      break;
  }
  return builder.Build(graph);
}

}  // namespace timpp
