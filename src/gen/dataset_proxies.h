// Synthetic stand-ins for the paper's Table 2 datasets.
//
// The SIGMOD'14 evaluation uses five SNAP/KAIST graphs (NetHEPT, Epinions,
// DBLP, LiveJournal, Twitter). Those files cannot be downloaded in this
// offline environment, so each dataset is replaced by a seeded power-law
// generator matched on the characteristics that drive TIM's behaviour:
// node count, average degree, directedness, and a heavy-tailed degree
// distribution (EPT is in-degree weighted; weighted-cascade probabilities
// are 1/indeg). A `scale` knob shrinks node count (degree structure is kept)
// so every benchmark runs on a laptop; scale=1.0 restores paper-sized n.
// Real edge lists, if available, load through graph/graph_io.h unchanged.
#ifndef TIMPP_GEN_DATASET_PROXIES_H_
#define TIMPP_GEN_DATASET_PROXIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace timpp {

/// The five evaluation datasets of Table 2.
enum class Dataset {
  kNetHept,      // 15K nodes, 31K undirected edges, avg degree 4.1
  kEpinions,     // 76K nodes, 509K directed edges, avg degree 13.4
  kDblp,         // 655K nodes, 2M undirected edges, avg degree 6.1
  kLiveJournal,  // 4.8M nodes, 69M directed edges, avg degree 28.5
  kTwitter,      // 41.6M nodes, 1.5G directed edges, avg degree 70.5
};

/// Static description of a dataset (paper-scale numbers).
struct DatasetSpec {
  Dataset dataset;
  std::string name;
  uint64_t nodes;        // paper-scale n
  double avg_degree;     // paper's Table 2 "average degree" (2m/n)
  bool undirected;
};

/// Specs for all five datasets, in Table 2 order.
const std::vector<DatasetSpec>& AllDatasetSpecs();
const DatasetSpec& SpecFor(Dataset dataset);

/// Which propagation model's edge weights to install.
enum class WeightScheme {
  kWeightedCascadeIC,  // p(e) = 1/indeg(target) — the paper's IC setting
  kRandomLT,           // random in-weights normalized per node — LT setting
};

/// Builds the proxy graph for `dataset` at `scale` (fraction of paper-scale
/// node count, clamped to >= 64 nodes) with the given weight scheme.
/// Deterministic in (dataset, scale, seed).
Status BuildDatasetProxy(Dataset dataset, double scale, WeightScheme scheme,
                         uint64_t seed, Graph* graph);

}  // namespace timpp

#endif  // TIMPP_GEN_DATASET_PROXIES_H_
