#include "gen/generators.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace timpp {

void GenErdosRenyi(NodeId n, uint64_t m, uint64_t seed, GraphBuilder* builder) {
  builder->ReserveNodes(n);
  builder->ReserveEdges(builder->num_edges() + m);
  Rng rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve(m * 2);
  uint64_t added = 0;
  while (added < m) {
    NodeId u = rng.NextNode(n);
    NodeId v = rng.NextNode(n);
    if (u == v) continue;
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!used.insert(key).second) continue;
    builder->AddEdge(u, v);
    ++added;
  }
}

void GenBarabasiAlbert(NodeId n, unsigned attach, uint64_t seed,
                       GraphBuilder* builder) {
  if (n == 0) return;
  builder->ReserveNodes(n);
  Rng rng(seed);

  const NodeId core = std::min<NodeId>(n, attach + 1);
  // Endpoint pool: each occurrence of a node id gives it one unit of degree
  // mass, so uniform sampling from the pool is degree-proportional sampling.
  std::vector<NodeId> pool;
  pool.reserve(2 * static_cast<size_t>(attach) * n);

  // Seed clique over the first `core` nodes.
  for (NodeId u = 0; u < core; ++u) {
    for (NodeId v = u + 1; v < core; ++v) {
      builder->AddUndirectedEdge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }

  std::vector<NodeId> targets;
  for (NodeId v = core; v < n; ++v) {
    targets.clear();
    const unsigned want = std::min<unsigned>(attach, v);
    // Rejection-sample `want` distinct degree-proportional targets.
    while (targets.size() < want) {
      NodeId t = pool.empty() ? rng.NextNode(v)
                              : pool[rng.NextBounded(pool.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (NodeId t : targets) {
      builder->AddUndirectedEdge(v, t);
      pool.push_back(v);
      pool.push_back(t);
    }
  }
}

void GenDirectedScaleFree(NodeId n, double avg_out_degree, uint64_t seed,
                          GraphBuilder* builder) {
  if (n == 0) return;
  builder->ReserveNodes(n);
  Rng rng(seed);

  // Target pool: one smoothing token per node plus one token per received
  // arc => P(target = v) ∝ indeg(v) + 1.
  std::vector<NodeId> pool;
  pool.reserve(static_cast<size_t>((avg_out_degree + 1.0) * n));

  const uint64_t whole = static_cast<uint64_t>(avg_out_degree);
  const double frac = avg_out_degree - static_cast<double>(whole);

  std::vector<NodeId> chosen;  // this node's targets, for duplicate checks
  for (NodeId v = 0; v < n; ++v) {
    pool.push_back(v);
    if (v == 0) continue;
    const uint64_t arcs =
        std::min<uint64_t>(whole + (rng.NextBernoulli(frac) ? 1 : 0), v);
    chosen.clear();
    for (uint64_t i = 0; i < arcs; ++i) {
      // Resample on self-loops and duplicate targets (hub collisions are
      // common under preferential attachment); fall back to a uniform pick
      // so the requested out-degree is met even for tiny graphs.
      NodeId t = kInvalidNode;
      for (int attempt = 0; attempt < 16; ++attempt) {
        NodeId candidate = attempt < 8 ? pool[rng.NextBounded(pool.size())]
                                       : rng.NextNode(v + 1);
        if (candidate == v) continue;
        if (std::find(chosen.begin(), chosen.end(), candidate) !=
            chosen.end()) {
          continue;
        }
        t = candidate;
        break;
      }
      if (t == kInvalidNode) continue;  // node saturated; give up this arc
      chosen.push_back(t);
      builder->AddEdge(v, t);
      pool.push_back(t);
    }
  }
}

void GenWattsStrogatz(NodeId n, unsigned k_half, double beta, uint64_t seed,
                      GraphBuilder* builder) {
  if (n < 2) return;
  builder->ReserveNodes(n);
  Rng rng(seed);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned j = 1; j <= k_half; ++j) {
      NodeId t = (v + j) % n;
      if (rng.NextBernoulli(beta)) {
        // Rewire to a uniform random non-self target.
        do {
          t = rng.NextNode(n);
        } while (t == v);
      }
      builder->AddUndirectedEdge(v, t);
    }
  }
}

void GenDirectedPath(NodeId n, GraphBuilder* builder) {
  builder->ReserveNodes(n);
  for (NodeId v = 0; v + 1 < n; ++v) builder->AddEdge(v, v + 1);
}

void GenDirectedCycle(NodeId n, GraphBuilder* builder) {
  GenDirectedPath(n, builder);
  if (n >= 2) builder->AddEdge(n - 1, 0);
}

void GenStarOut(NodeId n, GraphBuilder* builder) {
  builder->ReserveNodes(n);
  for (NodeId v = 1; v < n; ++v) builder->AddEdge(0, v);
}

void GenStarIn(NodeId n, GraphBuilder* builder) {
  builder->ReserveNodes(n);
  for (NodeId v = 1; v < n; ++v) builder->AddEdge(v, 0);
}

void GenCompleteDirected(NodeId n, GraphBuilder* builder) {
  builder->ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u != v) builder->AddEdge(u, v);
    }
  }
}

void GenGridUndirected(NodeId width, NodeId height, GraphBuilder* builder) {
  builder->ReserveNodes(width * height);
  auto id = [width](NodeId x, NodeId y) { return y * width + x; };
  for (NodeId y = 0; y < height; ++y) {
    for (NodeId x = 0; x < width; ++x) {
      if (x + 1 < width) builder->AddUndirectedEdge(id(x, y), id(x + 1, y));
      if (y + 1 < height) builder->AddUndirectedEdge(id(x, y), id(x, y + 1));
    }
  }
}

void GenBinaryTreeOut(unsigned depth, GraphBuilder* builder) {
  const NodeId n = static_cast<NodeId>((1ULL << (depth + 1)) - 1);
  builder->ReserveNodes(n);
  for (NodeId v = 0; 2 * v + 2 < n; ++v) {
    builder->AddEdge(v, 2 * v + 1);
    builder->AddEdge(v, 2 * v + 2);
  }
}

}  // namespace timpp
