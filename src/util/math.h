// Numeric helpers used by the parameter machinery of TIM/TIM+ (Eq. 4,
// Algorithm 2's iteration budgets, Lemma 10's bound on Greedy's r).
#ifndef TIMPP_UTIL_MATH_H_
#define TIMPP_UTIL_MATH_H_

#include <cstdint>

namespace timpp {

/// Natural logarithm of the binomial coefficient C(n, k).
/// Exact via lgamma; log C(n,k) appears in Eq. 4's λ.
double LogBinomial(uint64_t n, uint64_t k);

/// Natural log of n, guarded so that n <= 1 yields ln(2) (the paper assumes
/// n >= 2; the guard keeps degenerate test graphs from producing λ <= 0).
double SafeLogN(uint64_t n);

/// floor(log2(n)) for n >= 1.
int FloorLog2(uint64_t n);

/// Chernoff upper-tail bound: Pr[X - cμ >= δ·cμ] <= exp(-δ²/(2+δ)·cμ)
/// for X the sum of c i.i.d. [0,1] variables with mean μ (Lemma 1).
double ChernoffUpperTail(double delta, double c, double mu);

/// Chernoff lower-tail bound: Pr[X - cμ <= -δ·cμ] <= exp(-δ²/2·cμ).
double ChernoffLowerTail(double delta, double c, double mu);

/// Sample size c such that the empirical mean of c i.i.d. [0,1] samples with
/// true mean >= mu_lo deviates by a δ relative error with probability at
/// most `fail_prob` (two-sided, using the weaker (2+δ) exponent).
double ChernoffSampleSize(double delta, double mu_lo, double fail_prob);

}  // namespace timpp

#endif  // TIMPP_UTIL_MATH_H_
