// Deterministic, fast pseudo-random number generation.
//
// Every randomized component in timpp receives a 64-bit seed and derives an
// independent xoshiro256** stream from it via splitmix64, so whole runs are
// exactly reproducible. xoshiro256** passes BigCrush and is considerably
// faster than std::mt19937_64, which matters because RR-set generation under
// the IC model draws one random number per examined edge (§7.2 of the paper).
#ifndef TIMPP_UTIL_RNG_H_
#define TIMPP_UTIL_RNG_H_

#include <cmath>
#include <cstdint>

#include "util/types.h"

namespace timpp {

/// splitmix64 step: used to seed xoshiro streams and to fork independent
/// sub-streams from one master seed.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
    // xoshiro must not be seeded with all zeros; splitmix64 of any seed
    // cannot produce four zero words, but keep the guard for safety.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  /// Next 64 uniformly random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// UniformRandomBitGenerator interface (usable with <random> adapters).
  uint64_t operator()() { return Next(); }
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Uniform integer in [0, bound). Lemire's nearly-divisionless method.
  uint64_t NextBounded(uint64_t bound) {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform NodeId in [0, n).
  NodeId NextNode(NodeId n) { return static_cast<NodeId>(NextBounded(n)); }

  /// Number of failures before the first success of an i.i.d. Bernoulli(p)
  /// sequence, capped at `limit` (the cap also covers p <= 0, where no
  /// success ever comes). Exact inversion sampling: with U uniform on
  /// (0, 1], floor(ln U / ln(1-p)) is geometric — the identity that lets a
  /// traversal jump straight to its next live arc instead of flipping one
  /// coin per arc (Walker-style skip sampling; cf. Vose/QuickIM).
  uint64_t NextGeometric(double p, uint64_t limit) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return limit;
    return NextSkip(1.0 / std::log1p(-p), limit);
  }

  /// As NextGeometric, but takes the precomputed 1 / ln(1-p) (strictly
  /// negative; Graph stores it per run) so the hot loop pays neither the
  /// log nor the division per draw — only the unavoidable ln(U).
  uint64_t NextSkip(double inv_log_one_minus_p, uint64_t limit) {
    // limit 0 can only return 0; skip the draw (run tails hit this often).
    if (limit == 0) return 0;
    // 1 - NextDouble() lies in (0, 1]: log(0) and the UB of casting an
    // out-of-range double are both unreachable, and u == 1 gives skip 0.
    const double u = 1.0 - NextDouble();
    const double skip = std::floor(std::log(u) * inv_log_one_minus_p);
    if (!(skip < static_cast<double>(limit))) return limit;
    return static_cast<uint64_t>(skip);
  }

  /// Derives an independent child generator; deterministic in (state, call
  /// order). Used to hand each worker thread its own stream.
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace timpp

#endif  // TIMPP_UTIL_RNG_H_
