#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <climits>
#include <cstdlib>
#include <cstring>

namespace timpp {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Flips the fd to O_NONBLOCK for the scope of a deadline-bounded
/// transfer and restores the original flags on exit. Without this a
/// blocking write() of a payload larger than the pipe buffer would stall
/// past any deadline when the worker stops draining (pipe(7): a blocking
/// write of n > PIPE_BUF returns only once all n bytes are written).
class ScopedNonBlocking {
 public:
  explicit ScopedNonBlocking(int fd) : fd_(fd), flags_(::fcntl(fd, F_GETFL)) {
    if (flags_ >= 0 && (flags_ & O_NONBLOCK) == 0) {
      restore_ = ::fcntl(fd_, F_SETFL, flags_ | O_NONBLOCK) == 0;
    }
  }
  ~ScopedNonBlocking() {
    if (restore_) ::fcntl(fd_, F_SETFL, flags_);
  }
  ScopedNonBlocking(const ScopedNonBlocking&) = delete;
  ScopedNonBlocking& operator=(const ScopedNonBlocking&) = delete;

 private:
  int fd_;
  int flags_;
  bool restore_ = false;
};

/// Waits until `fd` is ready for `events` or the deadline expires.
Status PollFd(int fd, short events, const Deadline& deadline,
              const char* what) {
  while (true) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int r = ::poll(&p, 1, deadline.remaining_millis());
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno(std::string("poll for ") + what);
    }
    if (r == 0) {
      return Status::DeadlineExceeded(
          std::string(what) + " on worker pipe timed out");
    }
    // Readable, writable, HUP or ERR — let the read/write discover which.
    return Status::OK();
  }
}

void IgnoreSigpipeOnce() {
  // A worker dying between our write() and its read() must surface as
  // EPIPE, not terminate the coordinator. Done once, process-wide — but
  // only when the application left SIGPIPE at its default (terminate):
  // an embedder's own handler or explicit ignore is respected, never
  // clobbered.
  static const bool done = [] {
    struct sigaction current;
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL &&
        (current.sa_flags & SA_SIGINFO) == 0) {
      ::signal(SIGPIPE, SIG_IGN);
    }
    return true;
  }();
  (void)done;
}

}  // namespace

int Deadline::remaining_millis() const {
  if (infinite_) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= when_) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(when_ - now)
          .count();
  if (ms > INT_MAX) return INT_MAX;
  // Round up so a sub-millisecond remainder still polls, not busy-spins.
  return static_cast<int>(ms) + 1;
}

Status Subprocess::Start(const std::vector<std::string>& argv,
                         std::unique_ptr<Subprocess>* out) {
  if (argv.empty()) return Status::InvalidArgument("empty argv");
  IgnoreSigpipeOnce();

  // O_CLOEXEC keeps later-forked siblings from inheriting every earlier
  // worker's pipe ends (fd bloat, and an inherited write end would defeat
  // EOF-based shutdown); the child's dup2 below clears the flag on the
  // two fds the child actually needs.
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (::pipe2(to_child, O_CLOEXEC) != 0) return Errno("pipe");
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Errno("pipe");
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return Errno("fork");
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout, drop the parent ends, exec.
    // dup2(fd, fd) is a no-op that would leave O_CLOEXEC set — possible
    // when the parent started with stdio closed and pipe2 handed out
    // fd 0/1 — so that case clears the flag in place instead.
    const auto install = [](int fd, int target) {
      if (fd == target) {
        ::fcntl(fd, F_SETFD, 0);  // clear FD_CLOEXEC
      } else {
        ::dup2(fd, target);
      }
    };
    install(to_child[0], STDIN_FILENO);
    install(from_child[1], STDOUT_FILENO);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      if (fd != STDIN_FILENO && fd != STDOUT_FILENO) ::close(fd);
    }
    ::execvp(cargv[0], cargv.data());
    // exec failed; 127 is the shell's "command not found" convention.
    ::_exit(127);
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  auto process = std::unique_ptr<Subprocess>(new Subprocess());
  process->pid_ = pid;
  process->stdin_fd_ = to_child[1];
  process->stdout_fd_ = from_child[0];
  *out = std::move(process);
  return Status::OK();
}

Subprocess::~Subprocess() {
  if (!reaped_) {
    Kill();
    Wait();
  }
  CloseStdin();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

void Subprocess::CloseStdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::Kill() {
  if (!reaped_ && pid_ > 0) ::kill(pid_, SIGKILL);
}

int Subprocess::Wait() {
  if (reaped_) return exit_code_;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = -WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  return exit_code_;
}

bool Subprocess::TryWait(int* exit_code) {
  if (reaped_) {
    if (exit_code) *exit_code = exit_code_;
    return true;
  }
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, WNOHANG);
  } while (r < 0 && errno == EINTR);
  if (r == 0) return false;  // still running
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = -WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  if (exit_code) *exit_code = exit_code_;
  return true;
}

std::string Subprocess::DescribeExit(int wait_result) {
  if (wait_result >= 0) {
    std::string out = "exited with code " + std::to_string(wait_result);
    if (wait_result == 127) {
      out += " (exec failed: worker binary missing or not executable)";
    }
    return out;
  }
  const int sig = -wait_result;
  std::string out = "killed by signal " + std::to_string(sig);
  const char* name = ::strsignal(sig);
  if (name != nullptr) {
    out += " (";
    out += name;
    out += ")";
  }
  return out;
}

Status WriteAllFd(int fd, const void* data, size_t size) {
  return WriteWithDeadline(fd, data, size, Deadline::Infinite());
}

Status ReadAllFd(int fd, void* data, size_t size) {
  return ReadWithDeadline(fd, data, size, Deadline::Infinite());
}

Status WriteWithDeadline(int fd, const void* data, size_t size,
                         const Deadline& deadline) {
  if (fd < 0) return Status::IOError("write on closed fd");
  ScopedNonBlocking nonblocking(fd);
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TIMPP_RETURN_NOT_OK(PollFd(fd, POLLOUT, deadline, "write"));
        continue;
      }
      if (errno == EPIPE) {
        return Status::Unavailable("pipe reader gone (worker exited)");
      }
      return Errno("write to pipe");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadWithDeadline(int fd, void* data, size_t size,
                        const Deadline& deadline) {
  if (fd < 0) return Status::IOError("read on closed fd");
  ScopedNonBlocking nonblocking(fd);
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TIMPP_RETURN_NOT_OK(PollFd(fd, POLLIN, deadline, "read"));
        continue;
      }
      return Errno("read from pipe");
    }
    if (n == 0) {
      // EOF. At a message boundary the peer simply exited (retryable
      // elsewhere); mid-message the stream was truncated and cannot be
      // trusted.
      if (got == 0) {
        return Status::Unavailable("pipe closed before message (peer exited)");
      }
      return Status::DataLoss("pipe closed mid-message after " +
                              std::to_string(got) + " of " +
                              std::to_string(size) + " bytes");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace timpp
