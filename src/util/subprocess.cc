#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace timpp {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void IgnoreSigpipeOnce() {
  // A worker dying between our write() and its read() must surface as
  // EPIPE, not terminate the coordinator. Done once, process-wide — but
  // only when the application left SIGPIPE at its default (terminate):
  // an embedder's own handler or explicit ignore is respected, never
  // clobbered.
  static const bool done = [] {
    struct sigaction current;
    if (::sigaction(SIGPIPE, nullptr, &current) == 0 &&
        current.sa_handler == SIG_DFL &&
        (current.sa_flags & SA_SIGINFO) == 0) {
      ::signal(SIGPIPE, SIG_IGN);
    }
    return true;
  }();
  (void)done;
}

}  // namespace

Status Subprocess::Start(const std::vector<std::string>& argv,
                         std::unique_ptr<Subprocess>* out) {
  if (argv.empty()) return Status::InvalidArgument("empty argv");
  IgnoreSigpipeOnce();

  // O_CLOEXEC keeps later-forked siblings from inheriting every earlier
  // worker's pipe ends (fd bloat, and an inherited write end would defeat
  // EOF-based shutdown); the child's dup2 below clears the flag on the
  // two fds the child actually needs.
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  if (::pipe2(to_child, O_CLOEXEC) != 0) return Errno("pipe");
  if (::pipe2(from_child, O_CLOEXEC) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    return Errno("pipe");
  }

  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    return Errno("fork");
  }
  if (pid == 0) {
    // Child: wire the pipes to stdin/stdout, drop the parent ends, exec.
    // dup2(fd, fd) is a no-op that would leave O_CLOEXEC set — possible
    // when the parent started with stdio closed and pipe2 handed out
    // fd 0/1 — so that case clears the flag in place instead.
    const auto install = [](int fd, int target) {
      if (fd == target) {
        ::fcntl(fd, F_SETFD, 0);  // clear FD_CLOEXEC
      } else {
        ::dup2(fd, target);
      }
    };
    install(to_child[0], STDIN_FILENO);
    install(from_child[1], STDOUT_FILENO);
    for (int fd : {to_child[0], to_child[1], from_child[0], from_child[1]}) {
      if (fd != STDIN_FILENO && fd != STDOUT_FILENO) ::close(fd);
    }
    ::execvp(cargv[0], cargv.data());
    // exec failed; 127 is the shell's "command not found" convention.
    ::_exit(127);
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  auto process = std::unique_ptr<Subprocess>(new Subprocess());
  process->pid_ = pid;
  process->stdin_fd_ = to_child[1];
  process->stdout_fd_ = from_child[0];
  *out = std::move(process);
  return Status::OK();
}

Subprocess::~Subprocess() {
  if (!reaped_) {
    Kill();
    Wait();
  }
  CloseStdin();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

void Subprocess::CloseStdin() {
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
}

void Subprocess::Kill() {
  if (!reaped_ && pid_ > 0) ::kill(pid_, SIGKILL);
}

int Subprocess::Wait() {
  if (reaped_) return exit_code_;
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid_, &status, 0);
  } while (r < 0 && errno == EINTR);
  reaped_ = true;
  if (r < 0) {
    exit_code_ = -1;
  } else if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    exit_code_ = -WTERMSIG(status);
  } else {
    exit_code_ = -1;
  }
  return exit_code_;
}

Status WriteAllFd(int fd, const void* data, size_t size) {
  if (fd < 0) return Status::IOError("write on closed fd");
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write to pipe");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadAllFd(int fd, void* data, size_t size) {
  if (fd < 0) return Status::IOError("read on closed fd");
  char* p = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t n = ::read(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read from pipe");
    }
    if (n == 0) {
      return Status::IOError("pipe closed mid-message (peer exited?)");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace timpp
