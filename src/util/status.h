// RocksDB-style Status for error handling on non-hot paths (I/O, option
// validation). Algorithm hot paths never allocate or throw; they receive
// validated inputs and return values directly.
#ifndef TIMPP_UTIL_STATUS_H_
#define TIMPP_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace timpp {

/// Outcome of a fallible operation. Cheap to copy when OK (empty message).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kOutOfRange,
    kUnimplemented,
    kUnavailable,
    kDataLoss,
    kDeadlineExceeded,
  };

  /// Default-constructed Status is OK.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(Code::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(Code::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == Code::kUnimplemented; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }

  /// Human-readable representation, e.g. "InvalidArgument: k must be >= 1".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK. Mirrors the RocksDB/Arrow RETURN_NOT_OK idiom.
#define TIMPP_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::timpp::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace timpp

#endif  // TIMPP_UTIL_STATUS_H_
