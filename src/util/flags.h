// Minimal command-line flag parser for the bench and example binaries.
// Supports --name=value and --name value forms plus boolean switches.
#ifndef TIMPP_UTIL_FLAGS_H_
#define TIMPP_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace timpp {

/// Parsed command line. Typical bench usage:
///
///   Flags flags(argc, argv);
///   int k = flags.GetInt("k", 50);
///   double eps = flags.GetDouble("eps", 0.1);
///   double scale = flags.GetDouble("scale", 0.1);
class Flags {
 public:
  Flags(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  bool GetBool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace timpp

#endif  // TIMPP_UTIL_FLAGS_H_
