#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__GLIBC__)
// Declared by glibc's math.h only under feature-test macros a strict
// -std= build may not set.
extern "C" double lgamma_r(double, int*);
#endif

namespace timpp {

namespace {

/// std::lgamma writes the process-global `signgam` (C99), so concurrent
/// callers data-race on it even though every argument here is positive;
/// use the reentrant variant where the libc has one.
double LGamma(double x) {
#if defined(__GLIBC__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double LogBinomial(uint64_t n, uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return LGamma(static_cast<double>(n) + 1.0) -
         LGamma(static_cast<double>(k) + 1.0) -
         LGamma(static_cast<double>(n - k) + 1.0);
}

double SafeLogN(uint64_t n) {
  return std::log(static_cast<double>(std::max<uint64_t>(n, 2)));
}

int FloorLog2(uint64_t n) {
  int r = 0;
  while (n > 1) {
    n >>= 1;
    ++r;
  }
  return r;
}

double ChernoffUpperTail(double delta, double c, double mu) {
  return std::exp(-delta * delta / (2.0 + delta) * c * mu);
}

double ChernoffLowerTail(double delta, double c, double mu) {
  return std::exp(-delta * delta / 2.0 * c * mu);
}

double ChernoffSampleSize(double delta, double mu_lo, double fail_prob) {
  // exp(-δ²/(2+δ)·c·μ) <= fail_prob  ⇔  c >= (2+δ)/δ² · ln(1/fail_prob) / μ.
  return (2.0 + delta) / (delta * delta) * std::log(1.0 / fail_prob) / mu_lo;
}

}  // namespace timpp
