#include "util/async_io.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define TIMPP_HAS_IO_URING 1
#endif
#endif

namespace timpp {

namespace {

/// Reads exactly [offset, offset + size) of `path` into *out. The shared
/// synchronous primitive: the thread backend's worker body, and the uring
/// backend's last-resort completion when the ring is wedged.
Status PreadExact(const std::string& path, uint64_t offset, uint64_t size,
                  std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("async io: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  out->resize(static_cast<size_t>(size));
  size_t got = 0;
  while (got < size) {
    const ssize_t n =
        ::pread(fd, out->data() + got, static_cast<size_t>(size - got),
                static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Status::IOError("async io: read failed on " +
                                            path + ": " +
                                            std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (n == 0) break;  // EOF
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got != size) {
    return Status::IOError("async io: short read on " + path + " (want " +
                           std::to_string(size) + " bytes at offset " +
                           std::to_string(offset) + ", got " +
                           std::to_string(got) + ")");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Thread-pool backend: dedicated reader threads draining a FIFO of pread
// requests. The portable fallback — no kernel features beyond pread().
// ---------------------------------------------------------------------------

class ThreadFileReader final : public AsyncFileReader {
 public:
  explicit ThreadFileReader(unsigned num_threads) {
    const unsigned n = num_threads == 0 ? 1 : num_threads;
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadFileReader() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  Ticket Submit(const std::string& path, uint64_t offset,
                uint64_t size) override {
    std::lock_guard<std::mutex> lock(mu_);
    const Ticket ticket = next_ticket_++;
    Op& op = ops_[ticket];
    op.path = path;
    op.offset = offset;
    op.size = size;
    queue_.push_back(ticket);
    queue_cv_.notify_one();
    return ticket;
  }

  Status Wait(Ticket ticket, std::string* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    // Re-find every wake: a concurrent Cancel lets the worker erase the
    // op, so no iterator may be held across the wait.
    while (true) {
      auto it = ops_.find(ticket);
      if (it == ops_.end() || it->second.abandoned) {
        return Status::InvalidArgument("async io: unknown ticket");
      }
      if (it->second.done) {
        Status status = std::move(it->second.status);
        if (status.ok() && out != nullptr) {
          *out = std::move(it->second.bytes);
        }
        ops_.erase(it);
        return status;
      }
      done_cv_.wait(lock);
    }
  }

  void Cancel(Ticket ticket) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ops_.find(ticket);
    if (it == ops_.end()) return;
    if (it->second.running) {
      it->second.abandoned = true;  // the worker erases it on completion
    } else {
      ops_.erase(it);  // still queued; the worker skips missing tickets
    }
  }

  const char* backend_name() const override { return "threads"; }

 private:
  struct Op {
    std::string path;
    uint64_t offset = 0;
    uint64_t size = 0;
    bool running = false;
    bool done = false;
    bool abandoned = false;
    Status status;
    std::string bytes;
  };

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      const Ticket ticket = queue_.front();
      queue_.pop_front();
      auto it = ops_.find(ticket);
      if (it == ops_.end()) continue;  // cancelled while queued
      it->second.running = true;
      const std::string path = it->second.path;
      const uint64_t offset = it->second.offset;
      const uint64_t size = it->second.size;
      lock.unlock();
      std::string bytes;
      Status status = PreadExact(path, offset, size, &bytes);
      lock.lock();
      it = ops_.find(ticket);
      if (it == ops_.end()) continue;
      if (it->second.abandoned) {
        ops_.erase(it);
        done_cv_.notify_all();  // a racing Wait re-checks and bails
        continue;
      }
      it->second.status = std::move(status);
      it->second.bytes = std::move(bytes);
      it->second.done = true;
      done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  Ticket next_ticket_ = 1;
  std::deque<Ticket> queue_;
  std::map<Ticket, Op> ops_;
  std::vector<std::thread> workers_;
};

// ---------------------------------------------------------------------------
// io_uring backend: raw-syscall ring (the image has <linux/io_uring.h> but
// no liburing). One SQE per Submit, consumed synchronously by
// io_uring_enter; Wait reaps the CQ with IORING_ENTER_GETEVENTS. Any
// post-setup ring failure flips ring_broken_ and every affected op is
// completed with a synchronous pread — the reader degrades, it never loses
// a read or hands back bytes before their completion.
// ---------------------------------------------------------------------------

#if defined(TIMPP_HAS_IO_URING)

class UringFileReader final : public AsyncFileReader {
 public:
  /// Null when io_uring is unavailable (old kernel, seccomp, rlimits) —
  /// the caller then builds the thread backend instead.
  static std::unique_ptr<UringFileReader> TryCreate(unsigned queue_depth) {
    std::unique_ptr<UringFileReader> reader(new UringFileReader());
    if (!reader->Setup(queue_depth)) return nullptr;
    return reader;
  }

  ~UringFileReader() override {
    {
      // Drain the kernel's in-flight reads before the op buffers die.
      // Bounded: a wedged ring stops mattering once the ring fd closes
      // (io_uring cancels and waits on release).
      std::unique_lock<std::mutex> lock(mu_);
      for (int attempts = 0; kernel_inflight_ > 0 && attempts < 1024;
           ++attempts) {
        if (!Enter(0, 1).ok()) break;
        ReapLocked();
      }
    }
    Teardown();
  }

  Ticket Submit(const std::string& path, uint64_t offset,
                uint64_t size) override {
    std::lock_guard<std::mutex> lock(mu_);
    const Ticket ticket = next_ticket_++;
    Op& op = ops_[ticket];
    op.path = path;
    op.offset = offset;
    op.want = size;
    op.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (op.fd < 0) {
      op.status = Status::IOError("async io: cannot open " + path + ": " +
                                  std::strerror(errno));
      op.done = true;
      return ticket;
    }
    if (size == 0) {
      ::close(op.fd);
      op.fd = -1;
      op.done = true;
      return ticket;
    }
    op.bytes.resize(static_cast<size_t>(size));
    if (ring_broken_ || !PushSqeLocked(ticket, op)) {
      CompleteSyncLocked(ticket);
    }
    return ticket;
  }

  Status Wait(Ticket ticket, std::string* out) override {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      ReapLocked();
      auto it = ops_.find(ticket);
      if (it == ops_.end() || it->second.abandoned) {
        return Status::InvalidArgument("async io: unknown ticket");
      }
      if (it->second.done) {
        Status status = std::move(it->second.status);
        if (status.ok() && out != nullptr) {
          *out = std::move(it->second.bytes);
        }
        ops_.erase(it);
        return status;
      }
      const Status entered = Enter(0, 1);  // block for >= 1 completion
      if (!entered.ok()) {
        ring_broken_ = true;
        CompleteSyncLocked(ticket);
        auto jt = ops_.find(ticket);
        if (jt != ops_.end() && !jt->second.done) {
          // The kernel still owns the buffer and the ring is unresponsive:
          // abandon the op (its buffer must outlive any late kernel write)
          // and report the failure instead of spinning on enter.
          jt->second.abandoned = true;
          return entered;
        }
      }
    }
  }

  void Cancel(Ticket ticket) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ops_.find(ticket);
    if (it == ops_.end()) return;
    if (it->second.done) {
      ops_.erase(it);
    } else {
      // The kernel still owns the buffer; ReapLocked erases on completion.
      it->second.abandoned = true;
    }
  }

  const char* backend_name() const override { return "uring"; }

 private:
  struct Op {
    std::string path;  // kept for the synchronous last-resort completion
    uint64_t offset = 0;
    uint64_t want = 0;
    int fd = -1;
    bool in_kernel = false;
    bool done = false;
    bool abandoned = false;
    Status status;
    std::string bytes;
  };

  UringFileReader() = default;

  bool Setup(unsigned queue_depth) {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const long fd = ::syscall(__NR_io_uring_setup, queue_depth, &params);
    if (fd < 0) return false;
    ring_fd_ = static_cast<int>(fd);
    sq_entries_ = params.sq_entries;
    cq_entries_ = params.cq_entries;

    size_t sq_bytes = params.sq_off.array + params.sq_entries * sizeof(__u32);
    size_t cq_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

    sq_map_bytes_ = sq_bytes;
    sq_map_ = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_map_ == MAP_FAILED) {
      sq_map_ = nullptr;
      Teardown();
      return false;
    }
    if (single_mmap) {
      cq_map_ = sq_map_;
      cq_map_bytes_ = 0;  // unmapped via sq_map_
    } else {
      cq_map_bytes_ = cq_bytes;
      cq_map_ = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd_,
                       IORING_OFF_CQ_RING);
      if (cq_map_ == MAP_FAILED) {
        cq_map_ = nullptr;
        Teardown();
        return false;
      }
    }
    sqes_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
    void* sqes = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqes == MAP_FAILED) {
      Teardown();
      return false;
    }
    sqes_ = static_cast<struct io_uring_sqe*>(sqes);

    char* sq = static_cast<char*>(sq_map_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(cq_map_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    return true;
  }

  void Teardown() {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (cq_map_ != nullptr && cq_map_ != sq_map_) {
      ::munmap(cq_map_, cq_map_bytes_);
    }
    if (sq_map_ != nullptr) ::munmap(sq_map_, sq_map_bytes_);
    sqes_ = nullptr;
    cq_map_ = nullptr;
    sq_map_ = nullptr;
    if (ring_fd_ >= 0) ::close(ring_fd_);
    ring_fd_ = -1;
  }

  /// Writes one IORING_OP_READ SQE for `ticket` and submits it. False when
  /// the ring cannot take or consume it (caller completes synchronously).
  bool PushSqeLocked(Ticket ticket, Op& op) {
    // Keep kernel completions strictly under CQ capacity so nothing drops.
    ReapLocked();
    while (kernel_inflight_ + 1 >= cq_entries_) {
      if (!Enter(0, 1).ok()) return false;
      ReapLocked();
    }
    const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    const unsigned tail = *sq_tail_;  // sole producer, under mu_
    if (tail - head >= sq_entries_) return false;  // only if enter wedged

    struct io_uring_sqe* sqe = &sqes_[tail & sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_READ;
    sqe->fd = op.fd;
    sqe->off = op.offset;
    sqe->addr = reinterpret_cast<uint64_t>(op.bytes.data());
    sqe->len = static_cast<__u32>(op.want);
    sqe->user_data = ticket;
    sq_array_[tail & sq_mask_] = tail & sq_mask_;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);

    if (!Enter(1, 0).ok()) {
      // The SQE is visible but unconsumed; never calling enter again (the
      // broken flag) guarantees the kernel will not touch the buffer.
      ring_broken_ = true;
      return false;
    }
    op.in_kernel = true;
    ++kernel_inflight_;
    return true;
  }

  /// io_uring_enter with EINTR/EAGAIN retry; submits `to_submit` SQEs and,
  /// when `min_complete` > 0, blocks for that many completions.
  Status Enter(unsigned to_submit, unsigned min_complete) {
    unsigned remaining = to_submit;
    while (true) {
      const unsigned flags = min_complete > 0 ? IORING_ENTER_GETEVENTS : 0;
      const long ret = ::syscall(__NR_io_uring_enter, ring_fd_, remaining,
                                 min_complete, flags, nullptr, 0);
      if (ret >= 0) {
        remaining -= std::min(remaining, static_cast<unsigned>(ret));
        if (remaining == 0) return Status::OK();
        continue;
      }
      if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
      return Status::IOError(std::string("async io: io_uring_enter: ") +
                             std::strerror(errno));
    }
  }

  /// Drains every available CQE into its op.
  void ReapLocked() {
    unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const struct io_uring_cqe& cqe = cqes_[head & cq_mask_];
      FinishOpLocked(cqe.user_data, cqe.res);
      ++head;
      if (kernel_inflight_ > 0) --kernel_inflight_;
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  }

  void FinishOpLocked(Ticket ticket, int32_t res) {
    auto it = ops_.find(ticket);
    if (it == ops_.end()) return;
    Op& op = it->second;
    if (op.fd >= 0) {
      ::close(op.fd);
      op.fd = -1;
    }
    op.in_kernel = false;
    if (op.done) return;  // already completed via the sync path
    if (res < 0) {
      op.status = Status::IOError("async io: read failed on " + op.path +
                                  ": " + std::strerror(-res));
    } else if (static_cast<uint64_t>(res) != op.want) {
      op.status = Status::IOError(
          "async io: short read on " + op.path + " (want " +
          std::to_string(op.want) + " bytes, got " + std::to_string(res) +
          ")");
    }
    op.done = true;
    if (op.abandoned) ops_.erase(it);
  }

  /// Completes `ticket` with a plain pread — the degradation for every
  /// ring failure class. Ops the kernel still owns are left to ReapLocked
  /// (their buffer must stay put), which finds them already done.
  void CompleteSyncLocked(Ticket ticket) {
    auto it = ops_.find(ticket);
    if (it == ops_.end() || it->second.done) return;
    Op& op = it->second;
    if (op.in_kernel) return;  // the reap path owns its completion
    if (op.fd >= 0) {
      ::close(op.fd);
      op.fd = -1;
    }
    op.status = PreadExact(op.path, op.offset, op.want, &op.bytes);
    op.done = true;
  }

  std::mutex mu_;
  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  void* sq_map_ = nullptr;
  size_t sq_map_bytes_ = 0;
  void* cq_map_ = nullptr;
  size_t cq_map_bytes_ = 0;
  struct io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;
  bool ring_broken_ = false;
  unsigned kernel_inflight_ = 0;
  Ticket next_ticket_ = 1;
  std::map<Ticket, Op> ops_;
};

#endif  // TIMPP_HAS_IO_URING

unsigned ClampedQueueDepth(unsigned requested) {
  unsigned depth = 8;
  while (depth < requested && depth < 128) depth <<= 1;
  return depth;
}

}  // namespace

const char* AsyncIoBackendName(AsyncIoBackend backend) {
  switch (backend) {
    case AsyncIoBackend::kAuto:
      return "auto";
    case AsyncIoBackend::kUring:
      return "uring";
    case AsyncIoBackend::kThreads:
      return "threads";
  }
  return "auto";
}

bool ParseAsyncIoBackend(const std::string& text, AsyncIoBackend* out) {
  if (text == "auto") {
    *out = AsyncIoBackend::kAuto;
  } else if (text == "uring") {
    *out = AsyncIoBackend::kUring;
  } else if (text == "threads") {
    *out = AsyncIoBackend::kThreads;
  } else {
    return false;
  }
  return true;
}

std::unique_ptr<AsyncFileReader> AsyncFileReader::Create(
    const AsyncIoOptions& options) {
#if defined(TIMPP_HAS_IO_URING)
  if (options.backend != AsyncIoBackend::kThreads) {
    auto uring =
        UringFileReader::TryCreate(ClampedQueueDepth(options.queue_depth));
    if (uring != nullptr) return uring;
    // kUring degrades silently: the probe failing (kernel, seccomp,
    // rlimits) must never fail the solve.
  }
#else
  (void)ClampedQueueDepth;
#endif
  return std::make_unique<ThreadFileReader>(
      options.num_threads == 0 ? 1 : options.num_threads);
}

}  // namespace timpp
