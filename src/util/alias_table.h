// Walker/Vose alias method: O(1) sampling from an arbitrary discrete
// distribution after O(n) preprocessing. Used for weighted RR-set root
// selection in node-weighted influence maximization.
#ifndef TIMPP_UTIL_ALIAS_TABLE_H_
#define TIMPP_UTIL_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace timpp {

/// Immutable discrete distribution over [0, n) with O(1) Sample().
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from non-negative weights (need not be normalized). Entries
  /// with zero weight are never sampled. At least one weight must be
  /// positive; otherwise the table is empty and Sample() returns 0.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights) {
    const size_t n = weights.size();
    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    total_ = 0.0;
    for (double w : weights) total_ += w > 0.0 ? w : 0.0;
    if (n == 0 || total_ <= 0.0) {
      prob_.clear();
      alias_.clear();
      return;
    }

    // Vose's stable partition into small/large columns.
    std::vector<double> scaled(n);
    std::vector<uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const double w = weights[i] > 0.0 ? weights[i] : 0.0;
      scaled[i] = w * static_cast<double>(n) / total_;
      (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const uint32_t s = small.back();
      small.pop_back();
      const uint32_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    // Numerical leftovers are full columns.
    for (uint32_t l : large) prob_[l] = 1.0;
    for (uint32_t s : small) prob_[s] = 1.0;
  }

  /// True if the table has at least one sampleable entry.
  bool empty() const { return prob_.empty(); }

  /// Number of entries.
  size_t size() const { return prob_.size(); }

  /// Sum of the positive input weights.
  double total_weight() const { return total_; }

  /// Draws an index with probability weight[i]/total_weight() in O(1).
  uint32_t Sample(Rng& rng) const {
    if (prob_.empty()) return 0;
    const uint32_t column =
        static_cast<uint32_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[column] ? column : alias_[column];
  }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
  double total_ = 0.0;
};

}  // namespace timpp

#endif  // TIMPP_UTIL_ALIAS_TABLE_H_
