#include "util/thread_pool.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace timpp {

bool ThreadPool::PinCurrentThread(unsigned cpu) {
#if defined(__linux__)
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ThreadPool::ThreadPool(unsigned num_workers, bool pin_threads) {
  threads_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i, pin_threads] {
      // Worker i takes CPU i+1: the calling thread (which also runs tasks
      // during ParallelRun) keeps CPU 0 to itself under a pinned setup.
      if (pin_threads) PinCurrentThread(i + 1);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ParallelRun(unsigned num_tasks,
                             const std::function<void(unsigned)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty() || num_tasks == 1) {
    for (unsigned i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed_ = 0;
    ++generation_;
    const uint64_t gen = generation_ << 32;
    fn_.store(&fn, std::memory_order_relaxed);
    round_.store(gen | num_tasks, std::memory_order_relaxed);
    // Release last: a claim that reads this round's counter value is
    // guaranteed to see this round's fn_ and round_ as well.
    claim_.store(gen, std::memory_order_release);
  }
  work_cv_.notify_all();
  RunTasks();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return completed_ == num_tasks; });
  fn_.store(nullptr, std::memory_order_relaxed);
}

void ThreadPool::RunTasks() {
  while (true) {
    const uint64_t claim = claim_.fetch_add(1, std::memory_order_acq_rel);
    const uint64_t round = round_.load(std::memory_order_acquire);
    if ((claim >> 32) != (round >> 32)) {
      // The claim came from a round that has since finished (every index of
      // it was handed out, or we'd still match): nothing left to do here.
      // The counter we bumped belongs to no live round, so the increment is
      // harmless.
      return;
    }
    const uint32_t i = static_cast<uint32_t>(claim);
    const uint32_t total = static_cast<uint32_t>(round);
    if (i >= total) return;
    const auto* fn = fn_.load(std::memory_order_relaxed);
    (*fn)(i);
    std::lock_guard<std::mutex> lock(mu_);
    if (++completed_ == total) done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunTasks();
  }
}

}  // namespace timpp
