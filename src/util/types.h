// Core scalar types shared by every timpp module.
#ifndef TIMPP_UTIL_TYPES_H_
#define TIMPP_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace timpp {

/// Identifier of a node in a Graph. Nodes are densely numbered [0, n).
using NodeId = uint32_t;

/// Index of an edge inside a CSR adjacency array. 64-bit so that
/// billion-edge graphs (the paper's Twitter dataset has 1.5G edges) fit.
using EdgeIndex = uint64_t;

/// Identifier of one RR set inside an RRCollection.
using RRSetId = uint32_t;

/// How randomized traversals (RR-set sampling, forward IC simulation)
/// decide which arcs of a constant-probability run are live.
enum class SamplerMode {
  /// Pick per graph: geometric skips when the adjacency's constant-prob
  /// runs are long enough to amortize the log() per draw, else per-arc.
  kAuto,
  /// One Bernoulli coin per examined arc (the classic traversal).
  kPerArc,
  /// Geometric-jump traversal: per run of equal-probability arcs, jump
  /// straight to the next live arc. Exactly the same live-arc
  /// distribution as kPerArc (a run of L independent Bernoulli(p) trials
  /// IS a sequence of geometric gaps), but O(1 + successes) work per run
  /// instead of O(L).
  kSkip,
};

/// How Monte-Carlo spread estimation packs its forward cascades
/// (`im_cli --mc-batch`): one graph traversal per cascade, or 64 cascades
/// per traversal with a uint64_t lane bitmap per vertex and OR-propagation
/// (diffusion/batched_simulator.h). Bitmap modes apply to IC-model
/// cascades; LT and triggering estimation always run scalar.
enum class McBatchMode {
  /// One traversal per cascade (the classic loop).
  kScalar,
  /// 64 lanes per traversal, each examined arc drawing 64 independent
  /// Bernoulli coins (as one geometric-skip mask draw) — exactly the
  /// scalar estimator's distribution per lane.
  kBitmap64,
  /// 64 lanes per traversal sharing one liveness draw per examined arc:
  /// the same per-lane marginal (mean-unbiased) but positively correlated
  /// lanes, so the estimator needs more batches for the same variance.
  kBitmap64Shared,
};

/// Human-readable McBatchMode name, matching the --mc-batch grammar
/// ("scalar" | "bitmap64" | "bitmap64:shared").
inline const char* McBatchModeName(McBatchMode mode) {
  switch (mode) {
    case McBatchMode::kScalar:
      return "scalar";
    case McBatchMode::kBitmap64:
      return "bitmap64";
    case McBatchMode::kBitmap64Shared:
      return "bitmap64:shared";
  }
  return "?";
}

/// Human-readable SamplerMode name ("auto" | "perarc" | "skip").
inline const char* SamplerModeName(SamplerMode mode) {
  switch (mode) {
    case SamplerMode::kAuto:
      return "auto";
    case SamplerMode::kPerArc:
      return "perarc";
    case SamplerMode::kSkip:
      return "skip";
  }
  return "?";
}

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no RR set".
inline constexpr RRSetId kInvalidRRSet = std::numeric_limits<RRSetId>::max();

}  // namespace timpp

#endif  // TIMPP_UTIL_TYPES_H_
