// Core scalar types shared by every timpp module.
#ifndef TIMPP_UTIL_TYPES_H_
#define TIMPP_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace timpp {

/// Identifier of a node in a Graph. Nodes are densely numbered [0, n).
using NodeId = uint32_t;

/// Index of an edge inside a CSR adjacency array. 64-bit so that
/// billion-edge graphs (the paper's Twitter dataset has 1.5G edges) fit.
using EdgeIndex = uint64_t;

/// Identifier of one RR set inside an RRCollection.
using RRSetId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no RR set".
inline constexpr RRSetId kInvalidRRSet = std::numeric_limits<RRSetId>::max();

}  // namespace timpp

#endif  // TIMPP_UTIL_TYPES_H_
