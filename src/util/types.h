// Core scalar types shared by every timpp module.
#ifndef TIMPP_UTIL_TYPES_H_
#define TIMPP_UTIL_TYPES_H_

#include <cstdint>
#include <limits>

namespace timpp {

/// Identifier of a node in a Graph. Nodes are densely numbered [0, n).
using NodeId = uint32_t;

/// Index of an edge inside a CSR adjacency array. 64-bit so that
/// billion-edge graphs (the paper's Twitter dataset has 1.5G edges) fit.
using EdgeIndex = uint64_t;

/// Identifier of one RR set inside an RRCollection.
using RRSetId = uint32_t;

/// How randomized traversals (RR-set sampling, forward IC simulation)
/// decide which arcs of a constant-probability run are live.
enum class SamplerMode {
  /// Pick per graph: geometric skips when the adjacency's constant-prob
  /// runs are long enough to amortize the log() per draw, else per-arc.
  kAuto,
  /// One Bernoulli coin per examined arc (the classic traversal).
  kPerArc,
  /// Geometric-jump traversal: per run of equal-probability arcs, jump
  /// straight to the next live arc. Exactly the same live-arc
  /// distribution as kPerArc (a run of L independent Bernoulli(p) trials
  /// IS a sequence of geometric gaps), but O(1 + successes) work per run
  /// instead of O(L).
  kSkip,
};

/// Human-readable SamplerMode name ("auto" | "perarc" | "skip").
inline const char* SamplerModeName(SamplerMode mode) {
  switch (mode) {
    case SamplerMode::kAuto:
      return "auto";
    case SamplerMode::kPerArc:
      return "perarc";
    case SamplerMode::kSkip:
      return "skip";
  }
  return "?";
}

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no RR set".
inline constexpr RRSetId kInvalidRRSet = std::numeric_limits<RRSetId>::max();

}  // namespace timpp

#endif  // TIMPP_UTIL_TYPES_H_
