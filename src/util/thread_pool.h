// Persistent worker-thread pool for fork-join parallelism.
//
// The pool keeps its threads alive between rounds so hot loops (RR-set
// batch sampling, Monte-Carlo spread estimation) pay thread-start cost
// once per run instead of once per batch. Work is dispatched as an
// indexed task set: ParallelRun(t, fn) invokes fn(0), ..., fn(t-1)
// exactly once each, spread over the workers plus the calling thread,
// and returns when all invocations have finished. Task claiming is
// dynamic (atomic counter), so callers that need deterministic output
// must make each task's result depend only on its index — the sampling
// engine's per-index RNG derivation is the canonical example.
#ifndef TIMPP_UTIL_THREAD_POOL_H_
#define TIMPP_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace timpp {

/// Fixed-size pool of background workers. Not copyable or movable; one
/// ParallelRun may be active at a time (calls are blocking, so any
/// single-threaded caller satisfies this automatically).
class ThreadPool {
 public:
  /// Spawns `num_workers` background threads. 0 is valid: ParallelRun then
  /// executes every task inline on the calling thread. With `pin_threads`
  /// each worker is pinned to one CPU (round-robin over the hardware set,
  /// CPU 1 onward so the calling thread's usual home at CPU 0 stays
  /// uncontended) — the affinity half of the NUMA roadmap item. Pinning is
  /// Linux-only and best-effort: a failed or unsupported set-affinity call
  /// leaves the worker unpinned, never fails construction.
  explicit ThreadPool(unsigned num_workers, bool pin_threads = false);
  ~ThreadPool();

  /// Pins the calling thread to `cpu` (mod the hardware count). Returns
  /// false when unsupported on this platform or refused by the kernel.
  static bool PinCurrentThread(unsigned cpu);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of background threads (the calling thread adds one more unit of
  /// parallelism during ParallelRun).
  unsigned num_workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Runs fn(i) for every i in [0, num_tasks), distributing invocations over
  /// the workers and the calling thread; blocks until all have returned.
  void ParallelRun(unsigned num_tasks, const std::function<void(unsigned)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs tasks of the current round until none remain.
  void RunTasks();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::atomic<const std::function<void(unsigned)>*> fn_{nullptr};
  // Round state packed as (generation << 32) | payload so a claim can be
  // validated against the round it was made in: a worker straggling out of
  // a finished round whose fetch_add races the next round's setup sees a
  // generation mismatch and retires instead of mis-claiming an index.
  std::atomic<uint64_t> round_{0};  // (generation << 32) | num_tasks
  std::atomic<uint64_t> claim_{0};  // (generation << 32) | next index
  unsigned completed_ = 0;   // guarded by mu_
  uint64_t generation_ = 0;  // guarded by mu_
  bool shutdown_ = false;    // guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace timpp

#endif  // TIMPP_UTIL_THREAD_POOL_H_
