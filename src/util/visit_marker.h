// Epoch-stamped visited marker: O(1) "clear" between the millions of
// randomized BFS traversals that RR-set sampling performs.
#ifndef TIMPP_UTIL_VISIT_MARKER_H_
#define TIMPP_UTIL_VISIT_MARKER_H_

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace timpp {

/// Tracks which nodes the current traversal has visited without paying O(n)
/// to reset between traversals: each traversal bumps a 32-bit epoch and a
/// node is "visited" iff its stamp equals the current epoch. When the epoch
/// wraps (every 2^32 traversals) the stamp array is zeroed once.
class VisitMarker {
 public:
  explicit VisitMarker(size_t n) : stamps_(n, 0), epoch_(1) {}

  /// Begins a new traversal; all nodes become unvisited in O(1).
  void NewEpoch() {
    if (++epoch_ == 0) {
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  /// Marks `v` visited in the current epoch.
  void Visit(NodeId v) { stamps_[v] = epoch_; }

  /// True iff `v` was visited in the current epoch.
  bool Visited(NodeId v) const { return stamps_[v] == epoch_; }

  /// Un-marks `v` (backtracking support). Valid because epochs start at 1.
  void Unvisit(NodeId v) { stamps_[v] = 0; }

  /// Marks `v` visited; returns true if it was not visited before.
  bool VisitIfNew(NodeId v) {
    if (stamps_[v] == epoch_) return false;
    stamps_[v] = epoch_;
    return true;
  }

  size_t size() const { return stamps_.size(); }

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_;
};

}  // namespace timpp

#endif  // TIMPP_UTIL_VISIT_MARKER_H_
