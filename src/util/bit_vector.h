// Compact bit vector used by the coverage solver to mark dead RR sets.
#ifndef TIMPP_UTIL_BIT_VECTOR_H_
#define TIMPP_UTIL_BIT_VECTOR_H_

#include <cstdint>
#include <vector>

namespace timpp {

/// Fixed-size bit vector. std::vector<bool> is avoided for its proxy
/// reference semantics; this exposes plain word storage and popcount.
class BitVector {
 public:
  BitVector() : size_(0) {}
  explicit BitVector(size_t n, bool value = false)
      : words_((n + 63) / 64, value ? ~0ULL : 0ULL), size_(n) {
    TrimTail();
  }

  void Resize(size_t n, bool value = false) {
    words_.assign((n + 63) / 64, value ? ~0ULL : 0ULL);
    size_ = n;
    TrimTail();
  }

  size_t size() const { return size_; }

  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1ULL; }
  void Set(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Clear(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void Assign(size_t i, bool v) { v ? Set(i) : Clear(i); }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  void Reset() { std::fill(words_.begin(), words_.end(), 0ULL); }

  /// Bytes of heap storage (for memory accounting).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  void TrimTail() {
    size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty()) words_.back() &= (1ULL << tail) - 1;
  }

  std::vector<uint64_t> words_;
  size_t size_;
};

}  // namespace timpp

#endif  // TIMPP_UTIL_BIT_VECTOR_H_
