// Asynchronous file reads for the spill replay path.
//
// AsyncFileReader is a small submit/wait/cancel abstraction over
// positioned reads: Submit() queues a read of [offset, offset + size)
// from a file and returns a ticket immediately; Wait() blocks until that
// read has completed and hands back the bytes (or the I/O error — Status
// propagates, data is never consumed before its read completes); Cancel()
// abandons a ticket whose result is no longer wanted. Two backends:
//
//  - kUring: Linux io_uring driven through raw syscalls (the toolchain
//    image carries <linux/io_uring.h> but no liburing). Probed at
//    runtime — io_uring_setup() failing for any reason (old kernel,
//    seccomp, rlimits) silently selects the thread backend, so callers
//    never see a hard failure from asking for uring.
//  - kThreads: a portable pool of dedicated reader threads issuing
//    pread() — the fallback everywhere, and the whole story off Linux.
//
// kAuto picks uring when the probe succeeds, threads otherwise. Create()
// never fails: the worst case is the thread backend with one worker.
//
// Thread-safe: Submit/Wait/Cancel may be called from any thread. Tickets
// are single-consumer — exactly one Wait() or Cancel() per ticket.
#ifndef TIMPP_UTIL_ASYNC_IO_H_
#define TIMPP_UTIL_ASYNC_IO_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace timpp {

enum class AsyncIoBackend {
  kAuto = 0,  // io_uring when the runtime probe succeeds, else threads
  kUring,     // request io_uring; degrades to threads when unavailable
  kThreads,   // portable pread() worker pool
};

/// Canonical lowercase name ("auto" | "uring" | "threads").
const char* AsyncIoBackendName(AsyncIoBackend backend);

/// Parses "auto" | "uring" | "threads" (case-sensitive); returns false and
/// leaves *out untouched on anything else.
bool ParseAsyncIoBackend(const std::string& text, AsyncIoBackend* out);

struct AsyncIoOptions {
  AsyncIoBackend backend = AsyncIoBackend::kAuto;
  /// Reader threads for the kThreads backend (clamped to >= 1).
  unsigned num_threads = 2;
  /// Submission-queue depth for the kUring backend (clamped to a power of
  /// two in [8, 128]). Also bounds in-flight reads per reader.
  unsigned queue_depth = 16;
};

class AsyncFileReader {
 public:
  /// Opaque handle for one submitted read. 0 is never a live ticket.
  using Ticket = uint64_t;
  static constexpr Ticket kInvalidTicket = 0;

  /// Builds a reader for `options`. Never returns null: backend probes
  /// that fail fall back to the thread backend.
  static std::unique_ptr<AsyncFileReader> Create(
      const AsyncIoOptions& options = {});

  virtual ~AsyncFileReader() = default;

  /// Queues a read of `size` bytes at `offset` of `path` and returns its
  /// ticket without blocking on the I/O. Open/validation errors are
  /// reported by Wait(), not here.
  virtual Ticket Submit(const std::string& path, uint64_t offset,
                        uint64_t size) = 0;

  /// Blocks until the ticket's read completes. On success *out holds
  /// exactly `size` bytes; on failure (open error, short read, I/O error)
  /// the Status names it and *out is unspecified. Consumes the ticket.
  virtual Status Wait(Ticket ticket, std::string* out) = 0;

  /// Abandons a ticket: its result (or in-flight read) is discarded.
  /// Consumes the ticket. Unknown tickets are ignored.
  virtual void Cancel(Ticket ticket) = 0;

  /// The backend actually running ("uring" or "threads") — kAuto and a
  /// failed uring probe both report what was really selected.
  virtual const char* backend_name() const = 0;
};

}  // namespace timpp

#endif  // TIMPP_UTIL_ASYNC_IO_H_
