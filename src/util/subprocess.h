// Subprocess — spawn a child process with piped stdin/stdout, POSIX only.
//
// The distributed sampling coordinator uses this to run worker processes
// and exchange length-prefixed frames with them. Failure surfaces as
// Status (a dead child turns writes into EPIPE and reads into EOF), never
// as a signal: the first Start() call ignores SIGPIPE process-wide so a
// crashed worker produces an error return instead of killing the
// coordinator.
#ifndef TIMPP_UTIL_SUBPROCESS_H_
#define TIMPP_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace timpp {

/// A running child process plus the two pipe ends the parent holds.
/// Non-copyable and non-movable (fds and pid are identity); hold by
/// unique_ptr. The destructor kills and reaps a still-running child.
class Subprocess {
 public:
  /// Spawns `argv` (argv[0] = executable path, resolved via PATH when it
  /// contains no '/') with stdin and stdout connected to pipes; stderr is
  /// inherited so worker diagnostics reach the operator. An executable
  /// that cannot be exec'd is reported by the child exiting 127 — the
  /// parent sees it as EOF on first read.
  static Status Start(const std::vector<std::string>& argv,
                      std::unique_ptr<Subprocess>* out);

  ~Subprocess();
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Pipe fd the child reads as its stdin (-1 after CloseStdin).
  int stdin_fd() const { return stdin_fd_; }
  /// Pipe fd carrying the child's stdout.
  int stdout_fd() const { return stdout_fd_; }
  pid_t pid() const { return pid_; }

  /// Closes the child's stdin pipe — the worker loop's EOF shutdown
  /// signal.
  void CloseStdin();

  /// SIGKILLs the child (no-op when already reaped).
  void Kill();

  /// Reaps the child (blocking). Returns the exit code, or -signal when
  /// it was killed by one; repeated calls return the first result.
  int Wait();

 private:
  Subprocess() = default;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int exit_code_ = 0;
};

/// Writes all `size` bytes to `fd`, retrying short writes and EINTR.
/// EPIPE (reader gone) and other errors come back as IOError.
Status WriteAllFd(int fd, const void* data, size_t size);

/// Reads exactly `size` bytes from `fd`. Premature EOF is an IOError —
/// for a worker pipe that means the process died mid-message.
Status ReadAllFd(int fd, void* data, size_t size);

}  // namespace timpp

#endif  // TIMPP_UTIL_SUBPROCESS_H_
