// Subprocess — spawn a child process with piped stdin/stdout, POSIX only.
//
// The distributed sampling coordinator uses this to run worker processes
// and exchange length-prefixed frames with them. Failure surfaces as
// Status (a dead child turns writes into EPIPE and reads into EOF), never
// as a signal: the first Start() call ignores SIGPIPE process-wide so a
// crashed worker produces an error return instead of killing the
// coordinator.
#ifndef TIMPP_UTIL_SUBPROCESS_H_
#define TIMPP_UTIL_SUBPROCESS_H_

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace timpp {

/// Absolute monotonic-clock deadline for frame I/O against a worker pipe.
/// Default-constructed (or Infinite()) never expires — a read blocks until
/// data or EOF, exactly like the plain calls.
class Deadline {
 public:
  Deadline() = default;
  static Deadline Infinite() { return Deadline(); }
  /// Expires `ms` milliseconds from now; ms == 0 means "already expired"
  /// (useful for non-blocking probes), use Infinite() for "never".
  static Deadline AfterMillis(uint64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return infinite_; }
  bool expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= when_;
  }
  /// Milliseconds until expiry, clamped to [0, INT_MAX]; -1 when infinite
  /// (the poll(2) convention).
  int remaining_millis() const;

 private:
  bool infinite_ = true;
  std::chrono::steady_clock::time_point when_{};
};

/// A running child process plus the two pipe ends the parent holds.
/// Non-copyable and non-movable (fds and pid are identity); hold by
/// unique_ptr. The destructor kills and reaps a still-running child.
class Subprocess {
 public:
  /// Spawns `argv` (argv[0] = executable path, resolved via PATH when it
  /// contains no '/') with stdin and stdout connected to pipes; stderr is
  /// inherited so worker diagnostics reach the operator. An executable
  /// that cannot be exec'd is reported by the child exiting 127 — the
  /// parent sees it as EOF on first read.
  static Status Start(const std::vector<std::string>& argv,
                      std::unique_ptr<Subprocess>* out);

  ~Subprocess();
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Pipe fd the child reads as its stdin (-1 after CloseStdin).
  int stdin_fd() const { return stdin_fd_; }
  /// Pipe fd carrying the child's stdout.
  int stdout_fd() const { return stdout_fd_; }
  pid_t pid() const { return pid_; }

  /// Closes the child's stdin pipe — the worker loop's EOF shutdown
  /// signal.
  void CloseStdin();

  /// SIGKILLs the child (no-op when already reaped).
  void Kill();

  /// Reaps the child (blocking). Returns the exit code, or -signal when
  /// it was killed by one; repeated calls return the first result.
  int Wait();

  /// Non-blocking reap attempt (waitpid WNOHANG). Returns true when the
  /// child has exited (then `*exit_code` follows the Wait() convention:
  /// exit code, or -signal); false while it is still running. A supervisor
  /// polls this to reap zombies promptly instead of leaving them for the
  /// destructor.
  bool TryWait(int* exit_code);

  /// Already reaped (by Wait or TryWait)?
  bool reaped() const { return reaped_; }

  /// "exited with code 127" / "killed by signal 9 (SIGKILL)" for a
  /// Wait()/TryWait() result — failure Status messages carry this so the
  /// operator sees crash-vs-kill-vs-exec-failure at a glance.
  static std::string DescribeExit(int wait_result);

 private:
  Subprocess() = default;

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  int exit_code_ = 0;
};

/// Writes all `size` bytes to `fd`, retrying short writes and EINTR.
/// EPIPE (reader gone — the peer exited) comes back as Unavailable so a
/// supervisor can retry elsewhere; other errors as IOError.
Status WriteAllFd(int fd, const void* data, size_t size);

/// Reads exactly `size` bytes from `fd`. EOF before the first byte is
/// Unavailable (the peer exited between messages — retryable); EOF after a
/// partial read is DataLoss (mid-frame truncation — the stream cannot be
/// trusted). Other errors are IOError.
Status ReadAllFd(int fd, void* data, size_t size);

/// Deadline-bounded variants built on poll(2). A deadline that expires
/// before the transfer completes returns DeadlineExceeded; EOF/EPIPE keep
/// the WriteAllFd/ReadAllFd classification above. With an infinite
/// deadline these behave exactly like the plain calls.
Status WriteWithDeadline(int fd, const void* data, size_t size,
                         const Deadline& deadline);
Status ReadWithDeadline(int fd, void* data, size_t size,
                        const Deadline& deadline);

}  // namespace timpp

#endif  // TIMPP_UTIL_SUBPROCESS_H_
