#include "engine/phase_cache.h"

#include <cstring>

namespace timpp {

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

const KptPhaseEntry* PhaseCache::FindKpt(const KptPhaseKey& key) {
  auto it = kpt_.find(key);
  if (it == kpt_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

const LbPhaseEntry* PhaseCache::FindLb(const LbPhaseKey& key) {
  auto it = lb_.find(key);
  if (it == lb_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void PhaseCache::StoreKpt(const KptPhaseKey& key, const KptPhaseEntry& entry) {
  kpt_[key] = entry;
}

void PhaseCache::StoreLb(const LbPhaseKey& key, const LbPhaseEntry& entry) {
  lb_[key] = entry;
}

void PhaseCache::Clear() {
  kpt_.clear();
  lb_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace timpp
