#include "engine/phase_cache.h"

#include <cstring>

namespace timpp {

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void PhaseCache::Clear() {
  kpt_.Clear();
  lb_.Clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace timpp
