#include "engine/sample_backend.h"

#include "distributed/process_shard_backend.h"
#include "engine/local_thread_backend.h"
#include "engine/sampling_engine.h"

namespace timpp {

std::unique_ptr<SampleBackend> CreateSampleBackend(
    const Graph& graph, const SamplingConfig& config) {
  switch (config.backend.kind) {
    case SampleBackendKind::kProcessShards:
      return std::make_unique<ProcessShardBackend>(graph, config);
    case SampleBackendKind::kLocalThreads:
      break;
  }
  return std::make_unique<LocalThreadBackend>(graph, config);
}

}  // namespace timpp
