// SamplingEngine — the one place RR sets get generated.
//
// Every phase of every RIS-family algorithm in this library (Algorithm 2's
// doubling loop, Algorithm 3's θ′ batch, Algorithm 1's θ batch, IMM's
// progressive x_i batches, Borgs et al.'s cost-threshold loop) consumes
// i.i.d. random RR sets, so they all parallelize the same way. The engine
// owns the global index stream and exposes batch primitives that fill an
// RRCollection; the physical production of each index range is delegated
// to a pluggable SampleBackend (engine/sample_backend.h): in-process
// worker threads by default, coordinated worker subprocesses under
// `--backend=procs:N`. No phase implements its own sampling loop.
//
// Determinism contract (bit-reproducibility independent of thread count,
// worker count, and backend): the engine numbers RR sets with a monotone
// global index and every backend derives set i's RNG stream from
// (config.seed, i) alone — SampleIndexRng — so a set's content does not
// depend on which worker (thread OR process) produced it. Backends return
// fills as chunks ordered by global index, and the engine merges them in
// that order via RRCollection::AppendRange. The resulting collection is
// therefore byte-identical for every value of config.num_threads
// (including 1), every worker count, and across backends. Batch
// boundaries (kSetsPerBatch / kSetsPerCostBatch) are fixed constants so
// early-stop checks (memory budget, cost threshold) fire at the same set
// index regardless of parallelism.
//
// Error model: local fills cannot fail, but a process-shard fill can (a
// worker dies mid-shard, a handshake is rejected). The engine latches the
// first backend error in status() and stops producing sets — callers get
// a short batch plus a non-OK status, never silently truncated results.
#ifndef TIMPP_ENGINE_SAMPLING_ENGINE_H_
#define TIMPP_ENGINE_SAMPLING_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "diffusion/triggering.h"
#include "engine/sample_backend.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "util/alias_table.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Fixes the sampling distribution and the execution resources of an
/// engine. Borrowed pointers must outlive the engine.
struct SamplingConfig {
  /// Diffusion model; kTriggering requires `custom_model`.
  DiffusionModel model = DiffusionModel::kIC;
  const TriggeringModel* custom_model = nullptr;
  /// Reverse-traversal depth bound (0 = unlimited) — time-critical variant.
  uint32_t max_hops = 0;
  /// Non-uniform root distribution for node-weighted influence (nullptr =
  /// uniform roots, Definition 2).
  const AliasTable* root_distribution = nullptr;
  /// Traversal strategy for the per-worker samplers: geometric skip
  /// sampling over constant-probability arc runs vs one coin per arc
  /// (see SamplerMode in util/types.h). Modes sample the identical RR-set
  /// distribution but consume RNG streams differently, so switching modes
  /// changes individual sets (not their statistics).
  SamplerMode sampler_mode = SamplerMode::kAuto;
  /// Total sampling parallelism (calling thread included). 1 = sequential.
  /// Local-thread backends pool this many workers; process-shard backends
  /// sample in their workers instead (see backend.worker_threads).
  unsigned num_threads = 1;
  /// Pin sampling worker threads to CPUs (util/ThreadPool affinity). Pure
  /// placement — results are invariant to it, like num_threads.
  bool pin_threads = false;
  /// Master seed. Together with the engine's running set index it fully
  /// determines every sampled set.
  uint64_t seed = 0x7145ULL;
  /// Where sample production runs (in-process threads vs worker
  /// subprocesses). Results are bit-identical across backends; only
  /// throughput and failure modes differ.
  SampleBackendSpec backend;
};

/// Borgs et al.'s cost-threshold admission rule — the ONE definition of
/// "sample until the cumulative traversal cost reaches τ" shared by every
/// path that must stop at the same set: the engine's SampleUntilCost, the
/// serving cache's cost read, and RIS's budget continuation. Sets are
/// admitted while the running cost is below the threshold (the crossing
/// set is kept), subject to an optional set cap; keeping the check order
/// in one place is what keeps those paths bit-identical.
struct CostAdmission {
  double cost_threshold = 0.0;
  uint64_t max_sets = 0;  // 0 = uncapped
  uint64_t traversal_cost = 0;
  uint64_t sets_admitted = 0;
  bool hit_set_cap = false;

  /// Whether the rule admits another set. Latches hit_set_cap when the
  /// cap (not the threshold) is what stops it.
  bool WantsMore() {
    if (static_cast<double>(traversal_cost) >= cost_threshold) return false;
    if (max_sets != 0 && sets_admitted >= max_sets) {
      hit_set_cap = true;
      return false;
    }
    return true;
  }

  /// Accounts one admitted set of traversal cost `set_cost` (edges
  /// examined + nodes appended).
  void Admit(uint64_t set_cost) {
    traversal_cost += set_cost;
    ++sets_admitted;
  }
};

/// Accounting for one batch call.
struct SampleBatch {
  /// RR sets appended to the output collection.
  uint64_t sets_added = 0;
  /// Edges examined across all appended sets' traversals.
  uint64_t edges_examined = 0;
  /// Borgs et al. cost units: edges examined + nodes appended.
  uint64_t traversal_cost = 0;
  /// SampleUntilCost stopped because `max_sets` was reached.
  bool hit_set_cap = false;
  /// Sampling stopped early because the output collection went over its
  /// memory budget (RRCollection::set_memory_budget).
  bool hit_memory_budget = false;
  /// Of `sets_added`, how many were served from a shared prefix cache
  /// instead of freshly sampled (serving layer; engine paths leave 0).
  uint64_t sets_reused = 0;
};

/// Parallel RR-set generator bound to one graph and one SamplingConfig.
/// Not thread-safe: one batch call at a time (the engine parallelizes
/// internally).
class SamplingEngine {
 public:
  SamplingEngine(const Graph& graph, const SamplingConfig& config);
  ~SamplingEngine();

  SamplingEngine(const SamplingEngine&) = delete;
  SamplingEngine& operator=(const SamplingEngine&) = delete;

  const Graph& graph() const { return graph_; }
  const SamplingConfig& config() const { return config_; }
  unsigned num_threads() const { return config_.num_threads; }

  /// The backend producing this engine's samples (diagnostics and test
  /// fault injection; never needed on the solve paths).
  SampleBackend& backend() { return *backend_; }

  /// Snapshot of the backend's fault-tolerance counters (all zero for the
  /// local backend and for healthy distributed runs). Safe to call
  /// concurrently with sampling — solvers take before/after snapshots to
  /// report per-run deltas.
  BackendStats backend_stats() const { return backend_->stats(); }

  /// First backend error, if any. Once non-OK, every further batch call
  /// returns immediately with zero sets; callers that observed a short
  /// batch must check this before trusting downstream results. Local
  /// fills never fail; process-shard fills fail on worker crashes,
  /// handshake rejections (graph hash mismatch), or protocol errors.
  /// The first error wins and is latched atomically, so concurrent
  /// readers (serving requests sharing a cache engine) observe either OK
  /// or that first error — never a torn write. Returns by value for the
  /// same reason.
  Status status() const;

  /// Total RR sets generated by this engine so far (== the next global set
  /// index). Successive batch calls consume disjoint index ranges, so a
  /// whole multi-phase run is one deterministic sample stream.
  uint64_t sets_sampled() const { return next_index_; }

  /// Appends `count` fresh random RR sets to `*out`. Stops early only if
  /// `out` goes over its memory budget (checked at fixed batch
  /// boundaries) or the backend fails (see status()). Returns accounting
  /// for the appended sets. `per_set_edges` (optional) receives each
  /// appended set's edges_examined in set order — consumers that replay
  /// subranges later (the serving layer's shared prefix cache) need the
  /// per-set split the aggregate SampleBatch cannot give back.
  SampleBatch SampleInto(RRCollection* out, uint64_t count,
                         std::vector<uint64_t>* per_set_edges = nullptr);

  /// Appends fresh random RR sets to `*out` until their cumulative
  /// traversal cost (edges examined + nodes appended, Borgs et al.'s unit)
  /// reaches `cost_threshold`: sets keep being appended while the running
  /// cost is below the threshold, so the set that crosses it is kept.
  /// `max_sets` (0 = none) caps the number of appended sets as an
  /// out-of-memory guard. Deterministic in config.seed alone.
  SampleBatch SampleUntilCost(RRCollection* out, double cost_threshold,
                              uint64_t max_sets = 0);

  /// Per-index filter and visitor for VisitSamples. The visitor receives
  /// the global set index and the set's members (the span is only valid
  /// for the duration of the call). The filter runs CONCURRENTLY on the
  /// backend's workers while a chunk fills, so it must be safe to invoke
  /// from multiple threads and must not read state the visitor mutates
  /// except between chunks — the visitor itself runs sequentially on the
  /// calling thread after each chunk's fill completes, which is why a
  /// visitor may safely update state (e.g. dead-set bits) the next
  /// chunk's filter reads. (Process-shard backends evaluate the filter on
  /// the coordinator before dispatch, which satisfies the same contract.)
  using SampleFilter = ::timpp::SampleFilter;
  using SampleVisitor =
      std::function<void(uint64_t index, std::span<const NodeId> nodes)>;

  /// Streams the RR sets of global indices [first, first + count) through
  /// `visit` in index order WITHOUT retaining them — the sample-and-
  /// discard primitive behind memory-budgeted selection. Because set i is
  /// a pure function of (config.seed, i), this regenerates past indices
  /// exactly and "generates" future ones identically to a later
  /// SampleInto; next_index_ is untouched (pair with SkipTo when the
  /// visited range should count as consumed). Regeneration runs on the
  /// backend in fixed-size chunks; only one chunk of sets is ever
  /// resident. `filter` (optional) skips the traversal of indices it
  /// rejects entirely — used to avoid regenerating RR sets already known
  /// dead to a coverage pass. Returns accounting for the visited sets.
  SampleBatch VisitSamples(uint64_t first, uint64_t count,
                           const SampleFilter& filter,
                           const SampleVisitor& visit);

  /// Advances the global set index to `index` (no-op when already past
  /// it) without generating anything. Budgeted phases use this after
  /// sample-and-discard streaming so later phases consume the same index
  /// ranges as a budget-off run — the determinism contract extends across
  /// the budget setting, not just across thread counts.
  void SkipTo(uint64_t index);

 private:
  /// Fills [base, base + count) through the backend, latching errors into
  /// status_. Returns false when sampling must stop.
  bool FillOk(uint64_t base, uint64_t count, const SampleFilter* filter);

  /// Latches `st` as the engine error if none is set yet (first wins).
  void LatchError(Status st);

  const Graph& graph_;
  SamplingConfig config_;
  std::unique_ptr<SampleBackend> backend_;
  // Error latch: `failed_` is the lock-free fast path (release-stored
  // after the Status is in place, acquire-loaded by readers), the Status
  // itself lives behind `status_mu_` so concurrent status() calls never
  // race a writer mid-assignment.
  std::atomic<bool> failed_{false};
  mutable std::mutex status_mu_;
  Status first_error_;  // guarded by status_mu_
  uint64_t next_index_ = 0;
};

}  // namespace timpp

#endif  // TIMPP_ENGINE_SAMPLING_ENGINE_H_
