// PhaseCache — memoized estimation-phase results for cross-request reuse.
//
// TIM's KPT estimation/refinement (Algorithms 2–3) and IMM's LB binary
// search are deterministic functions of (graph, sampling stream, a few
// scalars): rerunning them for a second request with the same key wastes
// exactly the work they did the first time. A PhaseCache remembers their
// outputs together with the stream position where they stopped, so a
// later request restores the numbers, Seeks its SampleSource past the
// consumed prefix, and proceeds straight to node selection — bit-identical
// to having rerun the phase, because the phase itself was a pure function
// of the key.
//
// Keys deliberately include every input the phase output depends on —
// model, sampler mode, seed, hop bound, k, ℓ, ε′ — so a request that
// changes any of them (most notably sampler mode or diffusion model, which
// switch to a different RR stream entirely) misses instead of reading a
// stale entry; "invalidation" is structural, not timed. Entries record
// positions of a stream consumed from index 0, which is how every solver
// run starts (standalone engines are fresh; serving cursors start at 0),
// and callers must only consult the cache in that situation.
//
// Not thread-safe; the serving layer serializes access per GraphContext.
#ifndef TIMPP_ENGINE_PHASE_CACHE_H_
#define TIMPP_ENGINE_PHASE_CACHE_H_

#include <cstdint>
#include <map>

#include "diffusion/triggering.h"
#include "util/types.h"

namespace timpp {

/// Inputs that fully determine TIM/TIM+'s parameter-estimation output
/// (Algorithm 2, plus Algorithm 3 when use_refinement). Doubles are keyed
/// by bit pattern: the phase is a function of the exact value.
struct KptPhaseKey {
  DiffusionModel model = DiffusionModel::kIC;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  const TriggeringModel* custom_model = nullptr;
  int k = 0;
  bool use_refinement = false;
  uint64_t ell_bits = 0;        // ℓ after any adjustment (bit pattern)
  uint64_t eps_prime_bits = 0;  // resolved ε′ (0.0 bits for plain TIM)

  auto operator<=>(const KptPhaseKey&) const = default;
};

/// Everything Algorithm 2(+3) produced, plus where it left the stream.
struct KptPhaseEntry {
  double kpt_star = 0.0;
  double kpt_plus = 0.0;       // == kpt_star for plain TIM
  uint64_t theta_prime = 0;    // Algorithm 3's fresh-sample count (0: TIM)
  uint64_t rr_sets_kpt = 0;    // Algorithm 2's total RR sets
  uint64_t edges_kpt = 0;      // edges examined by Algorithm 2
  uint64_t edges_refine = 0;   // edges examined by Algorithm 3
  uint64_t end_index = 0;      // stream position after the phase(s)
};

/// Inputs that fully determine IMM's sampling-phase output (the LB binary
/// search over progressive θ_i batches).
struct LbPhaseKey {
  DiffusionModel model = DiffusionModel::kIC;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  const TriggeringModel* custom_model = nullptr;
  int k = 0;
  uint64_t epsilon_bits = 0;
  uint64_t ell_bits = 0;  // ℓ after any adjustment (bit pattern)

  auto operator<=>(const LbPhaseKey&) const = default;
};

/// IMM's sampling-phase output, plus where it left the stream.
struct LbPhaseEntry {
  double lb = 0.0;
  int sampling_iterations = 0;
  uint64_t rr_sets_sampling = 0;  // θ of the final iteration
  uint64_t end_index = 0;         // stream position after the phase
};

/// Exact-key memo of phase results. Lookups count hits/misses so serving
/// layers can report per-request cache behaviour.
class PhaseCache {
 public:
  /// Returns the entry for `key`, or nullptr on a miss. The pointer stays
  /// valid until Clear() (node-based map).
  const KptPhaseEntry* FindKpt(const KptPhaseKey& key);
  const LbPhaseEntry* FindLb(const LbPhaseKey& key);

  void StoreKpt(const KptPhaseKey& key, const KptPhaseEntry& entry);
  void StoreLb(const LbPhaseKey& key, const LbPhaseEntry& entry);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const { return kpt_.size() + lb_.size(); }
  void Clear();

 private:
  std::map<KptPhaseKey, KptPhaseEntry> kpt_;
  std::map<LbPhaseKey, LbPhaseEntry> lb_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Bit pattern of a double, for exact-value keying.
uint64_t DoubleBits(double value);

}  // namespace timpp

#endif  // TIMPP_ENGINE_PHASE_CACHE_H_
