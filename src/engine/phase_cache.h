// PhaseCache — memoized estimation-phase results for cross-request reuse.
//
// TIM's KPT estimation/refinement (Algorithms 2–3) and IMM's LB binary
// search are deterministic functions of (graph, sampling stream, a few
// scalars): rerunning them for a second request with the same key wastes
// exactly the work they did the first time. A PhaseCache remembers their
// outputs together with the stream position where they stopped, so a
// later request restores the numbers, Seeks its SampleSource past the
// consumed prefix, and proceeds straight to node selection — bit-identical
// to having rerun the phase, because the phase itself was a pure function
// of the key.
//
// Keys deliberately include every input the phase output depends on —
// model, sampler mode, seed, hop bound, k, ℓ, ε′ — so a request that
// changes any of them (most notably sampler mode or diffusion model, which
// switch to a different RR stream entirely) misses instead of reading a
// stale entry; "invalidation" is structural, not timed. Entries record
// positions of a stream consumed from index 0, which is how every solver
// run starts (standalone engines are fresh; serving cursors start at 0),
// and callers must only consult the cache in that situation.
//
// Concurrency: the cache is a sharded map (key-hashed shards, each with
// its own mutex) with PER-KEY ONCE-COMPUTATION. Acquire(key) returns a
// lease that is either a HIT (the entry is ready — restore and go) or a
// COMPUTE OBLIGATION: the caller runs the phase and Publishes the entry,
// while any concurrent request for the same key blocks on the shard's
// condition variable and wakes as a hit. Unrelated keys proceed in
// parallel (different slots, usually different shards). A lease destroyed
// without publishing (the phase failed) wakes the waiters, which retry
// from scratch — an error never poisons the key.
#ifndef TIMPP_ENGINE_PHASE_CACHE_H_
#define TIMPP_ENGINE_PHASE_CACHE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "diffusion/triggering.h"
#include "util/types.h"

namespace timpp {

/// Inputs that fully determine TIM/TIM+'s parameter-estimation output
/// (Algorithm 2, plus Algorithm 3 when use_refinement). Doubles are keyed
/// by bit pattern: the phase is a function of the exact value.
struct KptPhaseKey {
  DiffusionModel model = DiffusionModel::kIC;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  const TriggeringModel* custom_model = nullptr;
  int k = 0;
  bool use_refinement = false;
  uint64_t ell_bits = 0;        // ℓ after any adjustment (bit pattern)
  uint64_t eps_prime_bits = 0;  // resolved ε′ (0.0 bits for plain TIM)

  auto operator<=>(const KptPhaseKey&) const = default;
};

/// Everything Algorithm 2(+3) produced, plus where it left the stream.
struct KptPhaseEntry {
  double kpt_star = 0.0;
  double kpt_plus = 0.0;       // == kpt_star for plain TIM
  uint64_t theta_prime = 0;    // Algorithm 3's fresh-sample count (0: TIM)
  uint64_t rr_sets_kpt = 0;    // Algorithm 2's total RR sets
  uint64_t edges_kpt = 0;      // edges examined by Algorithm 2
  uint64_t edges_refine = 0;   // edges examined by Algorithm 3
  uint64_t end_index = 0;      // stream position after the phase(s)
};

/// Inputs that fully determine IMM's sampling-phase output (the LB binary
/// search over progressive θ_i batches).
struct LbPhaseKey {
  DiffusionModel model = DiffusionModel::kIC;
  SamplerMode sampler_mode = SamplerMode::kAuto;
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  const TriggeringModel* custom_model = nullptr;
  int k = 0;
  uint64_t epsilon_bits = 0;
  uint64_t ell_bits = 0;  // ℓ after any adjustment (bit pattern)

  auto operator<=>(const LbPhaseKey&) const = default;
};

/// IMM's sampling-phase output, plus where it left the stream.
struct LbPhaseEntry {
  double lb = 0.0;
  int sampling_iterations = 0;
  uint64_t rr_sets_sampling = 0;  // θ of the final iteration
  uint64_t end_index = 0;         // stream position after the phase
};

/// Bit pattern of a double, for exact-value keying.
uint64_t DoubleBits(double value);

/// splitmix64-style mix step for shard selection.
inline uint64_t PhaseHashMix(uint64_t h, uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL + h;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

inline uint64_t PhaseKeyHash(const KptPhaseKey& key) {
  uint64_t h = PhaseHashMix(0, static_cast<uint64_t>(key.model));
  h = PhaseHashMix(h, static_cast<uint64_t>(key.sampler_mode));
  h = PhaseHashMix(h, key.max_hops);
  h = PhaseHashMix(h, key.seed);
  h = PhaseHashMix(h, reinterpret_cast<uintptr_t>(key.custom_model));
  h = PhaseHashMix(h, static_cast<uint64_t>(key.k));
  h = PhaseHashMix(h, key.use_refinement ? 1 : 0);
  h = PhaseHashMix(h, key.ell_bits);
  return PhaseHashMix(h, key.eps_prime_bits);
}

inline uint64_t PhaseKeyHash(const LbPhaseKey& key) {
  uint64_t h = PhaseHashMix(1, static_cast<uint64_t>(key.model));
  h = PhaseHashMix(h, static_cast<uint64_t>(key.sampler_mode));
  h = PhaseHashMix(h, key.max_hops);
  h = PhaseHashMix(h, key.seed);
  h = PhaseHashMix(h, reinterpret_cast<uintptr_t>(key.custom_model));
  h = PhaseHashMix(h, static_cast<uint64_t>(key.k));
  h = PhaseHashMix(h, key.epsilon_bits);
  return PhaseHashMix(h, key.ell_bits);
}

/// Sharded once-map: each key is computed by exactly one caller while
/// concurrent callers for the same key wait, and callers for other keys
/// proceed in parallel. All state lives behind per-shard mutexes; entry
/// pointers handed out stay valid for the lifetime of the lease that
/// returned them (the lease shares ownership of the slot).
template <typename Key, typename Entry>
class PhaseOnceMap {
  enum class SlotState { kComputing, kReady, kAbandoned };

  struct Slot {
    SlotState state = SlotState::kComputing;
    Entry entry;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::map<Key, std::shared_ptr<Slot>> map;
  };

  static constexpr size_t kNumShards = 8;

 public:
  /// The outcome of an Acquire: either a hit (entry() non-null) or a
  /// compute obligation (the caller must Publish or let the lease die,
  /// which abandons the slot and wakes the waiters to retry).
  class Lease {
   public:
    Lease() = default;
    ~Lease() { Abandon(); }

    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Abandon();
        shard_ = other.shard_;
        slot_ = std::move(other.slot_);
        key_ = other.key_;
        hit_ = other.hit_;
        other.shard_ = nullptr;
        other.slot_.reset();
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// The ready entry on a hit, nullptr when this lease carries the
    /// compute obligation (or is empty). Valid while the lease lives.
    const Entry* entry() const { return hit_ ? &slot_->entry : nullptr; }

    /// Whether this lease carries the obligation to compute + Publish.
    bool must_compute() const { return slot_ != nullptr && !hit_; }

    /// Fulfills the compute obligation: stores the entry, marks the slot
    /// ready, and wakes every waiter. The lease becomes a hit.
    void Publish(const Entry& entry) {
      if (!must_compute()) return;
      std::lock_guard<std::mutex> lock(shard_->mu);
      slot_->entry = entry;
      slot_->state = SlotState::kReady;
      hit_ = true;
      shard_->cv.notify_all();
    }

   private:
    friend class PhaseOnceMap;
    Lease(Shard* shard, std::shared_ptr<Slot> slot, const Key& key, bool hit)
        : shard_(shard), slot_(std::move(slot)), key_(key), hit_(hit) {}

    /// Compute obligation dropped without a result (the phase errored
    /// out): detach the slot so the key can be recomputed, and wake the
    /// waiters so they retry instead of sleeping forever.
    void Abandon() {
      if (!must_compute()) return;
      std::lock_guard<std::mutex> lock(shard_->mu);
      slot_->state = SlotState::kAbandoned;
      auto it = shard_->map.find(key_);
      // Identity check: Clear() may have dropped this slot already and a
      // newer computation may occupy the key — never erase that one.
      if (it != shard_->map.end() && it->second == slot_) {
        shard_->map.erase(it);
      }
      shard_->cv.notify_all();
    }

    Shard* shard_ = nullptr;
    std::shared_ptr<Slot> slot_;
    Key key_{};
    bool hit_ = false;
  };

  /// Hit, or the obligation to compute `key`. Blocks while another caller
  /// is computing the same key. `hits`/`misses` are bumped by outcome
  /// (a woken waiter counts as a hit — it was served without computing).
  Lease Acquire(const Key& key, std::atomic<uint64_t>* hits,
                std::atomic<uint64_t>* misses) {
    Shard& shard = shards_[PhaseKeyHash(key) % kNumShards];
    std::unique_lock<std::mutex> lock(shard.mu);
    for (;;) {
      auto it = shard.map.find(key);
      if (it == shard.map.end()) {
        auto slot = std::make_shared<Slot>();
        shard.map.emplace(key, slot);
        misses->fetch_add(1, std::memory_order_relaxed);
        return Lease(&shard, std::move(slot), key, /*hit=*/false);
      }
      std::shared_ptr<Slot> slot = it->second;
      if (slot->state == SlotState::kReady) {
        hits->fetch_add(1, std::memory_order_relaxed);
        return Lease(&shard, std::move(slot), key, /*hit=*/true);
      }
      shard.cv.wait(lock, [&] { return slot->state != SlotState::kComputing; });
      if (slot->state == SlotState::kReady) {
        hits->fetch_add(1, std::memory_order_relaxed);
        return Lease(&shard, std::move(slot), key, /*hit=*/true);
      }
      // Abandoned: the computing request failed and detached the slot —
      // loop and race to become the new computer.
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

  /// Drops every mapping. In-flight computations keep their (now
  /// detached) slots alive through their leases and still resolve their
  /// waiters; they just no longer populate the map.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
    }
  }

 private:
  std::array<Shard, kNumShards> shards_;
};

/// Exact-key memo of phase results with per-key once-computation.
/// Thread-safe; lookups count hits/misses so serving layers can report
/// per-request cache behaviour.
class PhaseCache {
 public:
  using KptLease = PhaseOnceMap<KptPhaseKey, KptPhaseEntry>::Lease;
  using LbLease = PhaseOnceMap<LbPhaseKey, LbPhaseEntry>::Lease;

  /// A hit lease (entry() ready) or the obligation to compute the phase
  /// and Publish. Blocks while another request computes the same key.
  KptLease AcquireKpt(const KptPhaseKey& key) {
    return kpt_.Acquire(key, &hits_, &misses_);
  }
  LbLease AcquireLb(const LbPhaseKey& key) {
    return lb_.Acquire(key, &hits_, &misses_);
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const { return kpt_.size() + lb_.size(); }
  void Clear();

 private:
  PhaseOnceMap<KptPhaseKey, KptPhaseEntry> kpt_;
  PhaseOnceMap<LbPhaseKey, LbPhaseEntry> lb_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace timpp

#endif  // TIMPP_ENGINE_PHASE_CACHE_H_
