// SolveContext — externally owned state a solver run may consume instead
// of building its own.
//
// A context-free run (both members null, the default) is the classic
// standalone execution: the solver constructs a private SamplingEngine
// and recomputes every estimation phase. A serving layer populates the
// context with a shared SampleSource (a cursor over a cross-request RR
// collection, see serving/graph_context.h) and a PhaseCache, and the
// solver then consumes the shared stream from index 0 and skips phases
// the cache already holds — returning bit-identical results to the
// standalone run, with less sampling.
//
// The source's sampling configuration (model, sampler mode, seed, hop
// bound, root distribution) must match what the solver would have
// configured standalone; the serving layer derives both from the same
// request, and solvers reject a context whose graph differs from theirs.
#ifndef TIMPP_ENGINE_SOLVE_CONTEXT_H_
#define TIMPP_ENGINE_SOLVE_CONTEXT_H_

namespace timpp {

class SampleSource;
class PhaseCache;

/// Borrowed pointers; both optional and both must outlive the run.
struct SolveContext {
  /// Shared sample stream to consume (nullptr → private engine).
  SampleSource* source = nullptr;
  /// Memoized estimation-phase results (nullptr → compute fresh).
  PhaseCache* phase_cache = nullptr;
};

}  // namespace timpp

#endif  // TIMPP_ENGINE_SOLVE_CONTEXT_H_
