// SampleBackend — where RR sets physically get produced.
//
// SamplingEngine owns the global index stream (which set indices a batch
// call consumes, where early stops land, how chunks merge into the output
// collection) but delegates the actual production of a contiguous index
// range to a SampleBackend. Two implementations exist:
//
//   LocalThreadBackend   (engine/local_thread_backend.h) — the classic
//     in-process fill: a worker pool claims fixed-size index chunks off an
//     atomic counter and samples them into private shard collections.
//   ProcessShardBackend  (distributed/process_shard_backend.h) — the
//     scale-out path: the range is partitioned into contiguous shards
//     dispatched to worker subprocesses over pipes; serialized shards come
//     back and merge in shard order.
//
// Both implement the same determinism contract the engine has always had:
// RR set i is a pure function of (config.seed, i) — see SampleIndexRng —
// so a backend's output depends only on which indices it was asked for,
// never on worker count, thread count, or process boundaries. That is what
// makes `--backend=procs:N` bit-identical to `--backend=local` for every
// solver, and what lets one SharedRRCache stream serve any backend.
//
// Unlike the engine's accounting-only batch calls, backend fills can FAIL
// (a worker process dies mid-shard): Fill returns Status and the engine
// latches the first error instead of returning truncated results.
#ifndef TIMPP_ENGINE_SAMPLE_BACKEND_H_
#define TIMPP_ENGINE_SAMPLE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rrset/rr_collection.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

class Graph;
struct SamplingConfig;

/// Per-index predicate: a fill skips the traversal of indices the filter
/// rejects entirely. May be invoked concurrently (see
/// SamplingEngine::SampleFilter for the exact contract).
using SampleFilter = std::function<bool(uint64_t index)>;

/// Which backend produces samples.
enum class SampleBackendKind {
  /// In-process worker threads (the default; always available).
  kLocalThreads,
  /// Worker subprocesses coordinated over pipes (src/distributed/).
  kProcessShards,
};

inline const char* SampleBackendKindName(SampleBackendKind kind) {
  switch (kind) {
    case SampleBackendKind::kLocalThreads:
      return "local";
    case SampleBackendKind::kProcessShards:
      return "procs";
  }
  return "?";
}

/// What a process-shard coordinator does when a shard exhausts its retry
/// budget or the whole fleet becomes unusable.
enum class FallbackPolicy : uint8_t {
  /// Fail the fill with the latched shard error (the historical behavior).
  kNone,
  /// Degrade gracefully: regenerate the failed shard with an in-process
  /// LocalThreadBackend. Bit-identity is preserved by construction — RR
  /// set i is a pure function of (seed, i) regardless of who samples it.
  kLocal,
};

/// Backend selection and its process-shard knobs. Rides inside
/// SamplingConfig / SolverOptions / ServingOptions; `--backend=local` vs
/// `--backend=procs:N[:T][,fallback=local]` on the CLI. The choice never
/// changes results — only where the sampling work runs.
struct SampleBackendSpec {
  SampleBackendKind kind = SampleBackendKind::kLocalThreads;
  /// Process shards: number of worker subprocesses (0 → 1).
  unsigned num_workers = 0;
  /// Sampling threads inside each worker process (content is invariant).
  unsigned worker_threads = 1;
  /// Worker executable. Empty → $TIMPP_WORKER, else `im_worker` next to
  /// the current executable.
  std::string worker_binary;
  /// How workers obtain the graph: empty ships the coordinator's graph
  /// inline through the handshake (always correct, costs one serialized
  /// copy per worker); otherwise a graph-spec string (see
  /// distributed/graph_spec.h) each worker loads locally, verified
  /// against the coordinator via Graph::ContentHash.
  std::string graph_source;

  // ---- fault tolerance (process shards only) ----------------------------
  /// Per-shard frame I/O deadline in milliseconds; a worker that does not
  /// deliver within it is declared hung, killed, and its shard retried.
  /// 0 disables the deadline (reads block until data or EOF) — crashes
  /// are still detected instantly via EOF, only true hangs then wait
  /// forever.
  uint32_t shard_timeout_ms = 0;
  /// Retries per shard after its first failed attempt. 0 restores the
  /// fail-fast latch. Each retry respawns or reassigns the worker with
  /// capped exponential backoff.
  uint32_t max_shard_retries = 2;
  /// Base backoff before a retry; doubles per attempt, capped at
  /// `max_backoff_ms`.
  uint32_t retry_backoff_ms = 25;
  uint32_t max_backoff_ms = 1000;
  /// Consecutive failures before a worker slot is quarantined (no more
  /// respawns into it).
  uint32_t max_worker_failures = 3;
  /// What to do when retries are exhausted or the fleet is unusable.
  FallbackPolicy fallback = FallbackPolicy::kNone;
  /// Deterministic fault-injection spec shipped to workers (tests/bench
  /// only; see distributed/fault_injection.h for the grammar).
  std::string fault_spec;
};

/// Counters a fault-tolerant backend accumulates across fills; snapshot
/// via SampleBackend::stats(). All zero for healthy runs and for the
/// local backend. Solvers report per-run deltas through their metrics.
struct BackendStats {
  uint64_t shard_retries = 0;       // shard dispatches after a failure
  uint64_t worker_respawns = 0;     // replacement worker launches
  uint64_t shard_timeouts = 0;      // deadline-expired shard attempts
  uint64_t worker_crashes = 0;      // EOF/EPIPE: worker exited uncleanly
  uint64_t corrupt_frames = 0;      // truncated or validation-rejected
  uint64_t quarantined_workers = 0; // slots retired after repeat failures
  uint64_t fallback_shards = 0;     // shards regenerated locally
  uint64_t fallback_sets = 0;       // RR sets those shards contained

  bool any() const {
    return shard_retries | worker_respawns | shard_timeouts | worker_crashes |
           corrupt_frames | quarantined_workers | fallback_shards |
           fallback_sets;
  }
  BackendStats operator-(const BackendStats& other) const {
    BackendStats d;
    d.shard_retries = shard_retries - other.shard_retries;
    d.worker_respawns = worker_respawns - other.worker_respawns;
    d.shard_timeouts = shard_timeouts - other.shard_timeouts;
    d.worker_crashes = worker_crashes - other.worker_crashes;
    d.corrupt_frames = corrupt_frames - other.corrupt_frames;
    d.quarantined_workers = quarantined_workers - other.quarantined_workers;
    d.fallback_shards = fallback_shards - other.fallback_shards;
    d.fallback_sets = fallback_sets - other.fallback_sets;
    return d;
  }
};

/// Producer of RR sets for explicit global-index ranges. Not thread-safe:
/// the owning engine issues one Fill at a time (parallelism lives inside
/// the backend). Fill results stay valid until the next Fill.
class SampleBackend {
 public:
  /// One contiguous slice of a fill's output, living in a backend-owned
  /// buffer. chunks() yields them in global index order, so walking them
  /// walks the filled range exactly as a sequential loop would.
  struct Chunk {
    const RRCollection* sets = nullptr;
    /// Per-set edges_examined, aligned with *sets.
    const std::vector<uint64_t>* edges = nullptr;
    /// Per-set global indices (filtered fills only; nullptr → the chunk is
    /// index-contiguous and positions map 1:1 onto indices).
    const std::vector<uint64_t>* indices = nullptr;
    /// Set range [begin, end) within *sets belonging to this chunk.
    size_t begin = 0;
    size_t end = 0;
  };

  virtual ~SampleBackend() = default;

  /// Produces the RR sets of global indices [base, base + count), skipping
  /// indices `filter` (optional) rejects. On OK, chunks() exposes the
  /// result in index order. On error the previous fill's chunks are gone
  /// and the backend should be considered failed (the engine latches the
  /// status and stops sampling).
  virtual Status Fill(uint64_t base, uint64_t count,
                      const SampleFilter* filter) = 0;

  /// The last successful Fill's output, in global index order.
  virtual std::span<const Chunk> chunks() const = 0;

  /// Optional fast path: append sets [base, base + count) straight into
  /// `*out` without shard buffering, accumulating accounting into the
  /// given counters (and per-set edge counts into `per_set_edges` when
  /// non-null). Returns false when the backend cannot do this (parallel or
  /// remote fills); the engine then falls back to Fill + chunk merge.
  virtual bool AppendDirect(uint64_t base, uint64_t count, RRCollection* out,
                            uint64_t* edges_examined, uint64_t* traversal_cost,
                            std::vector<uint64_t>* per_set_edges) {
    (void)base, (void)count, (void)out;
    (void)edges_examined, (void)traversal_cost, (void)per_set_edges;
    return false;
  }

  /// Fault-tolerance counters accumulated so far (all zero for backends
  /// without failure handling). Safe to call concurrently with a running
  /// Fill — implementations keep the counters atomic — so serving-layer
  /// readers can snapshot while the writer samples.
  virtual BackendStats stats() const { return BackendStats(); }
};

/// RNG stream of global set index `i`: a splitmix64 hash of (seed, i)
/// seeding an xoshiro stream. THE determinism contract — every backend
/// (local threads, worker processes) derives set content from this and
/// nothing else, which is why shards merge bit-identically no matter who
/// produced them.
inline Rng SampleIndexRng(uint64_t seed, uint64_t index) {
  uint64_t state = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(state));
}

/// Builds the backend `config.backend` asks for. Never returns null; a
/// misconfigured process-shard backend reports its error on first Fill
/// (workers are spawned lazily), so engine construction stays infallible.
std::unique_ptr<SampleBackend> CreateSampleBackend(const Graph& graph,
                                                   const SamplingConfig& config);

}  // namespace timpp

#endif  // TIMPP_ENGINE_SAMPLE_BACKEND_H_
