#include "engine/solver_registry.h"

namespace timpp {

SolverRegistry& SolverRegistry::Global() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    RegisterBuiltinSolvers(r);
    return r;
  }();
  return *registry;
}

Status SolverRegistry::Register(const std::string& name, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  if (factories_.count(name) != 0) {
    return Status::InvalidArgument("solver already registered: " + name);
  }
  factories_[name] = std::move(factory);
  return Status::OK();
}

Status SolverRegistry::Create(const std::string& name, const Graph& graph,
                              std::unique_ptr<InfluenceSolver>* solver) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return Status::NotFound("no solver registered as '" + name + "'");
    }
    factory = it->second;
  }
  *solver = factory(graph);
  return Status::OK();
}

bool SolverRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(name) != 0;
}

std::vector<std::string> SolverRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;  // std::map iterates sorted
}

}  // namespace timpp
