// LocalThreadBackend — the in-process SampleBackend: a persistent worker
// pool fills private per-worker shard collections by claiming fixed-size
// index chunks off an atomic counter (dynamic load balancing for
// heavy-tailed RR-set sizes), and a chunk table restores global index
// order for the merge. This is the sampling core SamplingEngine always
// had, factored out so process shards can slot in behind the same
// interface — and so worker processes themselves can reuse it to sample
// the exact ranges the coordinator requests.
#ifndef TIMPP_ENGINE_LOCAL_THREAD_BACKEND_H_
#define TIMPP_ENGINE_LOCAL_THREAD_BACKEND_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "engine/sample_backend.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace timpp {

class LocalThreadBackend final : public SampleBackend {
 public:
  /// `graph` and `config`'s borrowed pointers must outlive the backend.
  /// `config.num_threads` fixes the pool size (1 = sequential).
  LocalThreadBackend(const Graph& graph, const SamplingConfig& config);
  ~LocalThreadBackend() override;

  Status Fill(uint64_t base, uint64_t count,
              const SampleFilter* filter) override;
  std::span<const Chunk> chunks() const override { return chunk_views_; }
  bool AppendDirect(uint64_t base, uint64_t count, RRCollection* out,
                    uint64_t* edges_examined, uint64_t* traversal_cost,
                    std::vector<uint64_t>* per_set_edges) override;

  /// Fill variant for an explicit ascending index list — what a sampling
  /// worker runs for the coordinator's filtered (kSampleList) requests.
  /// O(list length), parallel over list slices; the chunks expose the
  /// listed indices in order. Contrast Fill with a membership filter,
  /// which would walk the whole covering range.
  Status FillList(std::span<const uint64_t> indices);

 private:
  /// Per-worker state: a private sampler plus shard buffers refilled each
  /// fill. Samplers persist across fills so traversal scratch (VisitMarker,
  /// BFS queue) is allocated once per run.
  struct Shard;

  /// Samples global indices [begin, end) into shard `w`'s buffers,
  /// skipping indices rejected by `filter` (may be null).
  void SampleRange(unsigned w, uint64_t begin, uint64_t end,
                   const SampleFilter* filter);
  /// Samples the listed indices into shard `w`'s buffers (indices
  /// recorded).
  void SampleList(unsigned w, std::span<const uint64_t> indices);
  /// Clears every shard's buffers and the chunk table.
  void ResetShards();
  /// A chunk view over shard `w`'s sets [begin, end).
  Chunk MakeChunk(unsigned w, size_t begin, size_t end) const;
  /// Rebuilds chunk_views_ (size num_chunks) from the shards' claim
  /// tables, in global chunk order.
  void BuildChunkTable(uint64_t num_chunks);

  const Graph& graph_;
  uint64_t seed_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Chunk> chunk_views_;    // rebuilt by every Fill
  std::unique_ptr<ThreadPool> pool_;  // nullptr when num_threads <= 1
};

}  // namespace timpp

#endif  // TIMPP_ENGINE_LOCAL_THREAD_BACKEND_H_
