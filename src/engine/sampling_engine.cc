#include "engine/sampling_engine.h"

#include <algorithm>
#include <atomic>

namespace timpp {

namespace {

// Fixed batch granularities. These are part of the determinism contract:
// early-stop checks (memory budget, cost threshold, set cap) run at batch
// boundaries, and keeping the boundaries independent of num_threads keeps
// the stop points independent of it too.
constexpr uint64_t kSetsPerBatch = 8192;
// Cost-threshold sampling uses small batches so the overshoot past the
// threshold (sampled but discarded sets) stays negligible.
constexpr uint64_t kSetsPerCostBatch = 256;
// Sample-and-discard streaming regenerates in small chunks so the
// transient shard buffers stay a rounding error next to any realistic
// memory budget (only one chunk of sets is resident at a time).
constexpr uint64_t kSetsPerVisitBatch = 1024;
// Work-claim granularity of a parallel fill: workers pull chunks of this
// many consecutive indices off an atomic counter. Small enough that one
// giant RR set (heavy-tailed graphs) strands at most 63 neighbours on the
// same worker, large enough that the claim and per-chunk merge overheads
// stay invisible next to the traversals.
constexpr uint64_t kFillChunkSets = 64;

}  // namespace

SamplingEngine::Shard::Shard(const Graph& graph, const SamplingConfig& config)
    : sampler(graph, config.model, config.custom_model, config.max_hops,
              config.sampler_mode),
      sets(graph.num_nodes()) {
  sampler.SetRootDistribution(config.root_distribution);
  scratch.reserve(256);
}

SamplingEngine::SamplingEngine(const Graph& graph,
                               const SamplingConfig& config)
    : graph_(graph), config_(config) {
  config_.num_threads = std::max(1u, config_.num_threads);
  shards_.reserve(config_.num_threads);
  for (unsigned w = 0; w < config_.num_threads; ++w) {
    shards_.push_back(std::make_unique<Shard>(graph_, config_));
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
  }
}

SamplingEngine::~SamplingEngine() = default;

Rng SamplingEngine::IndexRng(uint64_t index) const {
  // Set i's whole traversal draws from an xoshiro stream seeded by a
  // splitmix64 hash of (seed, i): content is a pure function of the global
  // index, never of the worker that ran it.
  uint64_t state = config_.seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(state));
}

void SamplingEngine::SampleRange(unsigned w, uint64_t begin, uint64_t end,
                                 const SampleFilter* filter) {
  Shard& shard = *shards_[w];
  for (uint64_t i = begin; i < end; ++i) {
    if (filter != nullptr && !(*filter)(i)) continue;
    Rng rng = IndexRng(i);
    const RRSampleInfo info =
        shard.sampler.SampleRandomRoot(rng, &shard.scratch);
    shard.sets.Add(shard.scratch, info.width);
    shard.edges.push_back(info.edges_examined);
    // Index recording is only needed when a filter punches holes in the
    // range; unfiltered consumers reconstruct indices positionally, and
    // the hot SampleInto/SampleUntilCost paths skip the extra store.
    if (filter != nullptr) shard.indices.push_back(i);
  }
}

void SamplingEngine::FillShards(uint64_t base, uint64_t count,
                                const SampleFilter* filter) {
  for (auto& shard : shards_) {
    shard->sets.Clear();
    shard->edges.clear();
    shard->indices.clear();
    shard->chunks.clear();
  }
  chunk_refs_.clear();
  const unsigned nw = static_cast<unsigned>(shards_.size());
  if (nw == 1 || count < 2 * nw) {
    SampleRange(0, base, base + count, filter);
    chunk_refs_.push_back({0, 0, shards_[0]->sets.num_sets()});
    return;
  }
  // Dynamic split: workers claim fixed-size index chunks off an atomic
  // counter, so a worker that lands a run of heavy RR sets simply claims
  // fewer chunks instead of stalling the batch (the old contiguous split
  // load-imbalanced on heavy-tailed set sizes). Content stays
  // thread-count invariant because a chunk's sets depend only on its
  // indices, and the merge below reassembles chunks in index order.
  const uint64_t num_chunks = (count + kFillChunkSets - 1) / kFillChunkSets;
  std::atomic<uint64_t> next_chunk{0};
  pool_->ParallelRun(nw, [&](unsigned w) {
    Shard& shard = *shards_[w];
    uint64_t c;
    while ((c = next_chunk.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      const uint64_t begin = base + c * kFillChunkSets;
      const uint64_t end = std::min(base + count, begin + kFillChunkSets);
      shard.chunks.emplace_back(c, shard.sets.num_sets());
      SampleRange(w, begin, end, filter);
    }
  });
  // Chunk table: ordered by global chunk id == index order, whoever
  // produced each chunk.
  chunk_refs_.resize(num_chunks);
  for (unsigned w = 0; w < nw; ++w) {
    const Shard& shard = *shards_[w];
    for (size_t i = 0; i < shard.chunks.size(); ++i) {
      const size_t set_end = i + 1 < shard.chunks.size()
                                 ? shard.chunks[i + 1].second
                                 : shard.sets.num_sets();
      chunk_refs_[shard.chunks[i].first] = {w, shard.chunks[i].second,
                                            set_end};
    }
  }
}

SampleBatch SamplingEngine::SampleInto(RRCollection* out, uint64_t count,
                                       std::vector<uint64_t>* per_set_edges) {
  SampleBatch total;
  uint64_t remaining = count;
  while (remaining > 0) {
    if (out->OverMemoryBudget()) {
      total.hit_memory_budget = true;
      break;
    }
    const uint64_t batch = std::min(remaining, kSetsPerBatch);
    if (shards_.size() == 1) {
      // Sequential fast path: append straight into the output, no shard
      // copy. Identical output by the per-index seeding argument. Member
      // counts are unknown until sampled, so only the per-set arrays are
      // pre-sized (the parallel path also reserves the node array, from
      // its shard totals).
      out->Reserve(batch, 0);
      Shard& shard = *shards_[0];
      for (uint64_t i = next_index_; i < next_index_ + batch; ++i) {
        Rng rng = IndexRng(i);
        const RRSampleInfo info =
            shard.sampler.SampleRandomRoot(rng, &shard.scratch);
        out->Add(shard.scratch, info.width);
        total.edges_examined += info.edges_examined;
        total.traversal_cost += info.edges_examined + shard.scratch.size();
        if (per_set_edges != nullptr) {
          per_set_edges->push_back(info.edges_examined);
        }
      }
    } else {
      FillShards(next_index_, batch);
      uint64_t batch_nodes = 0;
      for (const auto& shard : shards_) batch_nodes += shard->sets.total_nodes();
      out->Reserve(batch, batch_nodes);
      uint64_t batch_edges = 0;
      for (const ChunkRef& ref : chunk_refs_) {
        const Shard& shard = *shards_[ref.worker];
        out->AppendRange(shard.sets, ref.set_begin,
                         ref.set_end - ref.set_begin);
        for (size_t j = ref.set_begin; j < ref.set_end; ++j) {
          batch_edges += shard.edges[j];
          if (per_set_edges != nullptr) {
            per_set_edges->push_back(shard.edges[j]);
          }
        }
      }
      total.edges_examined += batch_edges;
      total.traversal_cost += batch_edges + batch_nodes;
    }
    total.sets_added += batch;
    next_index_ += batch;
    remaining -= batch;
  }
  return total;
}

SampleBatch SamplingEngine::SampleUntilCost(RRCollection* out,
                                            double cost_threshold,
                                            uint64_t max_sets) {
  SampleBatch total;
  CostAdmission rule;
  rule.cost_threshold = cost_threshold;
  rule.max_sets = max_sets;
  bool stop = false;
  while (!stop) {
    if (!rule.WantsMore()) break;
    if (out->OverMemoryBudget()) {
      total.hit_memory_budget = true;
      break;
    }
    uint64_t batch = kSetsPerCostBatch;
    if (max_sets != 0) batch = std::min(batch, max_sets - rule.sets_admitted);
    FillShards(next_index_, batch);
    // Append in index order while the admission rule allows it; the set
    // that crosses the threshold is kept, the rest of the batch is
    // discarded and its indices rewound (a later batch would regenerate
    // them identically, so the stop point is batch-size independent).
    uint64_t kept = 0;
    for (const ChunkRef& ref : chunk_refs_) {
      const Shard& shard = *shards_[ref.worker];
      for (size_t j = ref.set_begin; j < ref.set_end && !stop; ++j) {
        if (!rule.WantsMore()) {
          stop = true;
          break;
        }
        const auto set = shard.sets.Set(static_cast<RRSetId>(j));
        out->Add(set, shard.sets.Width(static_cast<RRSetId>(j)));
        total.edges_examined += shard.edges[j];
        rule.Admit(shard.edges[j] + set.size());
        ++kept;
      }
      if (stop) break;
    }
    next_index_ += kept;
  }
  total.sets_added = rule.sets_admitted;
  total.traversal_cost = rule.traversal_cost;
  total.hit_set_cap = rule.hit_set_cap;
  return total;
}

SampleBatch SamplingEngine::VisitSamples(uint64_t first, uint64_t count,
                                         const SampleFilter& filter,
                                         const SampleVisitor& visit) {
  SampleBatch total;
  const SampleFilter* filter_ptr = filter ? &filter : nullptr;
  for (uint64_t done = 0; done < count;) {
    const uint64_t chunk = std::min(count - done, kSetsPerVisitBatch);
    FillShards(first + done, chunk, filter_ptr);
    // Chunk-table order == index order, so the visitor sees the filtered
    // index sequence exactly as a sequential loop would produce it.
    // Without a filter the sequence is contiguous and indices are
    // reconstructed positionally (shards record them only for filtered
    // fills).
    uint64_t running = first + done;
    for (const ChunkRef& ref : chunk_refs_) {
      const Shard& shard = *shards_[ref.worker];
      for (size_t j = ref.set_begin; j < ref.set_end; ++j) {
        const auto set = shard.sets.Set(static_cast<RRSetId>(j));
        visit(filter_ptr != nullptr ? shard.indices[j] : running++, set);
        ++total.sets_added;
        total.edges_examined += shard.edges[j];
        total.traversal_cost += shard.edges[j] + set.size();
      }
    }
    done += chunk;
  }
  return total;
}

void SamplingEngine::SkipTo(uint64_t index) {
  next_index_ = std::max(next_index_, index);
}

}  // namespace timpp
