#include "engine/sampling_engine.h"

#include <algorithm>

namespace timpp {

namespace {

// Fixed batch granularities. These are part of the determinism contract:
// early-stop checks (memory budget, cost threshold, set cap) run at batch
// boundaries, and keeping the boundaries independent of num_threads (and
// of the backend) keeps the stop points independent of them too.
constexpr uint64_t kSetsPerBatch = 8192;
// Cost-threshold sampling uses small batches so the overshoot past the
// threshold (sampled but discarded sets) stays negligible.
constexpr uint64_t kSetsPerCostBatch = 256;
// Sample-and-discard streaming regenerates in small chunks so the
// transient shard buffers stay a rounding error next to any realistic
// memory budget (only one chunk of sets is resident at a time).
constexpr uint64_t kSetsPerVisitBatch = 1024;

}  // namespace

SamplingEngine::SamplingEngine(const Graph& graph,
                               const SamplingConfig& config)
    : graph_(graph), config_(config) {
  config_.num_threads = std::max(1u, config_.num_threads);
  backend_ = CreateSampleBackend(graph_, config_);
}

SamplingEngine::~SamplingEngine() = default;

Status SamplingEngine::status() const {
  if (!failed_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(status_mu_);
  return first_error_;
}

void SamplingEngine::LatchError(Status st) {
  std::lock_guard<std::mutex> lock(status_mu_);
  if (failed_.load(std::memory_order_relaxed)) return;  // first error wins
  first_error_ = std::move(st);
  failed_.store(true, std::memory_order_release);
}

bool SamplingEngine::FillOk(uint64_t base, uint64_t count,
                            const SampleFilter* filter) {
  if (failed_.load(std::memory_order_acquire)) return false;
  Status st = backend_->Fill(base, count, filter);
  if (!st.ok()) {
    LatchError(std::move(st));
    return false;
  }
  return true;
}

SampleBatch SamplingEngine::SampleInto(RRCollection* out, uint64_t count,
                                       std::vector<uint64_t>* per_set_edges) {
  SampleBatch total;
  uint64_t remaining = count;
  while (remaining > 0 && !failed_.load(std::memory_order_acquire)) {
    if (out->OverMemoryBudget()) {
      total.hit_memory_budget = true;
      break;
    }
    const uint64_t batch = std::min(remaining, kSetsPerBatch);
    if (!backend_->AppendDirect(next_index_, batch, out,
                                &total.edges_examined, &total.traversal_cost,
                                per_set_edges)) {
      if (!FillOk(next_index_, batch, nullptr)) break;
      uint64_t batch_nodes = 0;
      for (const SampleBackend::Chunk& chunk : backend_->chunks()) {
        batch_nodes +=
            chunk.sets->Offset(chunk.end) - chunk.sets->Offset(chunk.begin);
      }
      out->Reserve(batch, batch_nodes);
      uint64_t batch_edges = 0;
      for (const SampleBackend::Chunk& chunk : backend_->chunks()) {
        out->AppendRange(*chunk.sets, chunk.begin, chunk.end - chunk.begin);
        for (size_t j = chunk.begin; j < chunk.end; ++j) {
          batch_edges += (*chunk.edges)[j];
          if (per_set_edges != nullptr) {
            per_set_edges->push_back((*chunk.edges)[j]);
          }
        }
      }
      total.edges_examined += batch_edges;
      total.traversal_cost += batch_edges + batch_nodes;
    }
    total.sets_added += batch;
    next_index_ += batch;
    remaining -= batch;
  }
  return total;
}

SampleBatch SamplingEngine::SampleUntilCost(RRCollection* out,
                                            double cost_threshold,
                                            uint64_t max_sets) {
  SampleBatch total;
  CostAdmission rule;
  rule.cost_threshold = cost_threshold;
  rule.max_sets = max_sets;
  bool stop = false;
  while (!stop) {
    if (!rule.WantsMore()) break;
    if (out->OverMemoryBudget()) {
      total.hit_memory_budget = true;
      break;
    }
    uint64_t batch = kSetsPerCostBatch;
    if (max_sets != 0) batch = std::min(batch, max_sets - rule.sets_admitted);
    if (!FillOk(next_index_, batch, nullptr)) break;
    // Append in index order while the admission rule allows it; the set
    // that crosses the threshold is kept, the rest of the batch is
    // discarded and its indices rewound (a later batch would regenerate
    // them identically, so the stop point is batch-size independent).
    uint64_t kept = 0;
    for (const SampleBackend::Chunk& chunk : backend_->chunks()) {
      for (size_t j = chunk.begin; j < chunk.end && !stop; ++j) {
        if (!rule.WantsMore()) {
          stop = true;
          break;
        }
        const auto set = chunk.sets->Set(static_cast<RRSetId>(j));
        out->Add(set, chunk.sets->Width(static_cast<RRSetId>(j)));
        total.edges_examined += (*chunk.edges)[j];
        rule.Admit((*chunk.edges)[j] + set.size());
        ++kept;
      }
      if (stop) break;
    }
    next_index_ += kept;
  }
  total.sets_added = rule.sets_admitted;
  total.traversal_cost = rule.traversal_cost;
  total.hit_set_cap = rule.hit_set_cap;
  return total;
}

SampleBatch SamplingEngine::VisitSamples(uint64_t first, uint64_t count,
                                         const SampleFilter& filter,
                                         const SampleVisitor& visit) {
  SampleBatch total;
  const SampleFilter* filter_ptr = filter ? &filter : nullptr;
  for (uint64_t done = 0; done < count;) {
    const uint64_t chunk_size = std::min(count - done, kSetsPerVisitBatch);
    if (!FillOk(first + done, chunk_size, filter_ptr)) break;
    // Chunk order == index order, so the visitor sees the filtered index
    // sequence exactly as a sequential loop would produce it. Without a
    // filter the sequence is contiguous and indices are reconstructed
    // positionally (backends record them only for filtered fills).
    uint64_t running = first + done;
    for (const SampleBackend::Chunk& chunk : backend_->chunks()) {
      for (size_t j = chunk.begin; j < chunk.end; ++j) {
        const auto set = chunk.sets->Set(static_cast<RRSetId>(j));
        visit(chunk.indices != nullptr ? (*chunk.indices)[j] : running++, set);
        ++total.sets_added;
        total.edges_examined += (*chunk.edges)[j];
        total.traversal_cost += (*chunk.edges)[j] + set.size();
      }
    }
    done += chunk_size;
  }
  return total;
}

void SamplingEngine::SkipTo(uint64_t index) {
  next_index_ = std::max(next_index_, index);
}

}  // namespace timpp
