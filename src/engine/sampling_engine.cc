#include "engine/sampling_engine.h"

#include <algorithm>

namespace timpp {

namespace {

// Fixed batch granularities. These are part of the determinism contract:
// early-stop checks (memory budget, cost threshold, set cap) run at batch
// boundaries, and keeping the boundaries independent of num_threads keeps
// the stop points independent of it too.
constexpr uint64_t kSetsPerBatch = 8192;
// Cost-threshold sampling uses small batches so the overshoot past the
// threshold (sampled but discarded sets) stays negligible.
constexpr uint64_t kSetsPerCostBatch = 256;
// Sample-and-discard streaming regenerates in small chunks so the
// transient shard buffers stay a rounding error next to any realistic
// memory budget (only one chunk of sets is resident at a time).
constexpr uint64_t kSetsPerVisitBatch = 1024;

}  // namespace

SamplingEngine::Shard::Shard(const Graph& graph, const SamplingConfig& config)
    : sampler(graph, config.model, config.custom_model, config.max_hops,
              config.sampler_mode),
      sets(graph.num_nodes()) {
  sampler.SetRootDistribution(config.root_distribution);
  scratch.reserve(256);
}

SamplingEngine::SamplingEngine(const Graph& graph,
                               const SamplingConfig& config)
    : graph_(graph), config_(config) {
  config_.num_threads = std::max(1u, config_.num_threads);
  shards_.reserve(config_.num_threads);
  for (unsigned w = 0; w < config_.num_threads; ++w) {
    shards_.push_back(std::make_unique<Shard>(graph_, config_));
  }
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads - 1);
  }
}

SamplingEngine::~SamplingEngine() = default;

Rng SamplingEngine::IndexRng(uint64_t index) const {
  // Set i's whole traversal draws from an xoshiro stream seeded by a
  // splitmix64 hash of (seed, i): content is a pure function of the global
  // index, never of the worker that ran it.
  uint64_t state = config_.seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  return Rng(SplitMix64(state));
}

void SamplingEngine::SampleRange(unsigned w, uint64_t begin, uint64_t end,
                                 const SampleFilter* filter) {
  Shard& shard = *shards_[w];
  for (uint64_t i = begin; i < end; ++i) {
    if (filter != nullptr && !(*filter)(i)) continue;
    Rng rng = IndexRng(i);
    const RRSampleInfo info =
        shard.sampler.SampleRandomRoot(rng, &shard.scratch);
    shard.sets.Add(shard.scratch, info.width);
    shard.edges.push_back(info.edges_examined);
    // Index recording is only needed when a filter punches holes in the
    // range; unfiltered consumers reconstruct indices positionally, and
    // the hot SampleInto/SampleUntilCost paths skip the extra store.
    if (filter != nullptr) shard.indices.push_back(i);
  }
}

void SamplingEngine::FillShards(uint64_t base, uint64_t count,
                                const SampleFilter* filter) {
  for (auto& shard : shards_) {
    shard->sets.Clear();
    shard->edges.clear();
    shard->indices.clear();
  }
  const unsigned nw = static_cast<unsigned>(shards_.size());
  if (nw == 1 || count < 2 * nw) {
    SampleRange(0, base, base + count, filter);
    return;
  }
  // Contiguous index split: worker w samples [base + w·q + min(w, r), …),
  // so concatenating shards 0..nw-1 reproduces index order exactly.
  const uint64_t q = count / nw;
  const uint64_t r = count % nw;
  pool_->ParallelRun(nw, [&](unsigned w) {
    const uint64_t begin = base + w * q + std::min<uint64_t>(w, r);
    const uint64_t end = begin + q + (w < r ? 1 : 0);
    SampleRange(w, begin, end, filter);
  });
}

SampleBatch SamplingEngine::SampleInto(RRCollection* out, uint64_t count) {
  SampleBatch total;
  uint64_t remaining = count;
  while (remaining > 0) {
    if (out->OverMemoryBudget()) {
      total.hit_memory_budget = true;
      break;
    }
    const uint64_t batch = std::min(remaining, kSetsPerBatch);
    if (shards_.size() == 1) {
      // Sequential fast path: append straight into the output, no shard
      // copy. Identical output by the per-index seeding argument. Member
      // counts are unknown until sampled, so only the per-set arrays are
      // pre-sized (the parallel path also reserves the node array, from
      // its shard totals).
      out->Reserve(batch, 0);
      Shard& shard = *shards_[0];
      for (uint64_t i = next_index_; i < next_index_ + batch; ++i) {
        Rng rng = IndexRng(i);
        const RRSampleInfo info =
            shard.sampler.SampleRandomRoot(rng, &shard.scratch);
        out->Add(shard.scratch, info.width);
        total.edges_examined += info.edges_examined;
        total.traversal_cost += info.edges_examined + shard.scratch.size();
      }
    } else {
      FillShards(next_index_, batch);
      uint64_t batch_nodes = 0;
      for (const auto& shard : shards_) batch_nodes += shard->sets.total_nodes();
      out->Reserve(batch, batch_nodes);
      uint64_t batch_edges = 0;
      for (const auto& shard : shards_) {
        out->AppendShard(shard->sets);
        for (uint64_t e : shard->edges) batch_edges += e;
        total.traversal_cost += shard->sets.total_nodes();
      }
      total.edges_examined += batch_edges;
      total.traversal_cost += batch_edges;
    }
    total.sets_added += batch;
    next_index_ += batch;
    remaining -= batch;
  }
  return total;
}

SampleBatch SamplingEngine::SampleUntilCost(RRCollection* out,
                                            double cost_threshold,
                                            uint64_t max_sets) {
  SampleBatch total;
  bool stop = false;
  while (!stop) {
    if (static_cast<double>(total.traversal_cost) >= cost_threshold) break;
    if (out->OverMemoryBudget()) {
      total.hit_memory_budget = true;
      break;
    }
    uint64_t batch = kSetsPerCostBatch;
    if (max_sets != 0) {
      if (total.sets_added >= max_sets) {
        total.hit_set_cap = true;
        break;
      }
      batch = std::min(batch, max_sets - total.sets_added);
    }
    FillShards(next_index_, batch);
    // Append in index order while the running cost is below the threshold;
    // the set that crosses it is kept, the rest of the batch is discarded
    // and its indices rewound (a later batch would regenerate them
    // identically, so the stop point is batch-size independent).
    uint64_t kept = 0;
    for (const auto& shard : shards_) {
      const size_t shard_sets = shard->sets.num_sets();
      for (size_t j = 0; j < shard_sets && !stop; ++j) {
        if (static_cast<double>(total.traversal_cost) >= cost_threshold) {
          stop = true;
          break;
        }
        if (max_sets != 0 && total.sets_added >= max_sets) {
          total.hit_set_cap = true;
          stop = true;
          break;
        }
        const auto set = shard->sets.Set(static_cast<RRSetId>(j));
        out->Add(set, shard->sets.Width(static_cast<RRSetId>(j)));
        total.edges_examined += shard->edges[j];
        total.traversal_cost += shard->edges[j] + set.size();
        ++total.sets_added;
        ++kept;
      }
      if (stop) break;
    }
    next_index_ += kept;
  }
  return total;
}

SampleBatch SamplingEngine::VisitSamples(uint64_t first, uint64_t count,
                                         const SampleFilter& filter,
                                         const SampleVisitor& visit) {
  SampleBatch total;
  const SampleFilter* filter_ptr = filter ? &filter : nullptr;
  for (uint64_t done = 0; done < count;) {
    const uint64_t chunk = std::min(count - done, kSetsPerVisitBatch);
    FillShards(first + done, chunk, filter_ptr);
    // Worker order == index order, so the visitor sees the filtered index
    // sequence exactly as a sequential loop would produce it. Without a
    // filter the sequence is contiguous and indices are reconstructed
    // positionally (shards record them only for filtered fills).
    uint64_t running = first + done;
    for (const auto& shard : shards_) {
      const size_t shard_sets = shard->sets.num_sets();
      for (size_t j = 0; j < shard_sets; ++j) {
        const auto set = shard->sets.Set(static_cast<RRSetId>(j));
        visit(filter_ptr != nullptr ? shard->indices[j] : running++, set);
        ++total.sets_added;
        total.edges_examined += shard->edges[j];
        total.traversal_cost += shard->edges[j] + set.size();
      }
    }
    done += chunk;
  }
  return total;
}

void SamplingEngine::SkipTo(uint64_t index) {
  next_index_ = std::max(next_index_, index);
}

}  // namespace timpp
