// InfluenceSolver — the uniform run interface over every influence
// maximization algorithm in timpp.
//
// A solver binds a graph at construction (via SolverRegistry::Create) and
// executes with one options struct shared by all algorithms: common
// parameters (k, ε, ℓ, model, threads, seed) plus a handful of
// family-specific knobs that solvers outside the family ignore. Stats come
// back as a uniform name → value list so callers (CLI, benches, serving
// layers) can report any algorithm without branching on its concrete
// result type.
#ifndef TIMPP_ENGINE_SOLVER_H_
#define TIMPP_ENGINE_SOLVER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "diffusion/triggering.h"
#include "engine/sample_backend.h"
#include "engine/solve_context.h"
#include "graph/graph.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// One options struct for every registered algorithm. Solvers read the
/// fields they understand and ignore the rest; defaults are the values the
/// paper (or the quoted original work) recommends.
struct SolverOptions {
  /// Seed-set size k ∈ [1, n].
  int k = 50;
  /// Approximation slack ε (RIS-family algorithms).
  double epsilon = 0.1;
  /// Confidence exponent: failure probability at most n^-ℓ.
  double ell = 1.0;
  /// Diffusion model; kTriggering requires custom_model.
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; must outlive the run.
  const TriggeringModel* custom_model = nullptr;
  /// Propagation-round bound (0 = unlimited) for RR-set algorithms.
  uint32_t max_hops = 0;
  /// RR-traversal strategy for RR-set algorithms: geometric skip sampling
  /// over constant-probability arc runs vs per-arc coins (SamplerMode).
  SamplerMode sampler_mode = SamplerMode::kAuto;
  /// Sampling worker threads (RR-set algorithms; results stay identical
  /// across thread counts under the SamplingEngine contract).
  unsigned num_threads = 1;
  /// Pin sampling worker threads to CPUs (util/ThreadPool affinity).
  /// Placement only — results are invariant to it.
  bool pin_threads = false;
  /// Master RNG seed for randomized algorithms.
  uint64_t seed = 0x7145ULL;
  /// Soft cap (bytes; 0 = unlimited) on resident RR-collection DataBytes
  /// for RR-set algorithms. TIM/TIM+/IMM/RIS all degrade gracefully past
  /// it (streaming sample-and-discard selection over a retained stream
  /// prefix: same seeds, bounded memory, extra sampling passes — see
  /// coverage/streaming_cover.h). Solvers without RR collections ignore
  /// it.
  size_t memory_budget_bytes = 0;
  /// Where RR-set production runs: in-process threads (default) or
  /// process shards — worker subprocesses coordinated over pipes
  /// (engine/sample_backend.h; `im_cli --backend=procs:N`). Seeds, θ, LB
  /// and all stats are bit-identical across backends for every RR-set
  /// solver; non-RR solvers ignore it.
  SampleBackendSpec sample_backend;

  // ---- family-specific knobs ----------------------------------------
  /// Monte-Carlo cascades per spread estimate (greedy/CELF family).
  uint64_t mc_samples = 10000;
  /// Multiplier on RIS's theoretical cost threshold τ.
  double ris_tau_scale = 1.0;
  /// Cap on RIS's generated RR sets (0 = none).
  uint64_t ris_max_sets = 0;
  /// Soft cap on RIS's RR-collection heap bytes (0 = none).
  size_t ris_memory_budget_bytes = 0;
  /// IRIE rank-propagation strength α.
  double irie_alpha = 0.7;
  /// SIMPATH path-pruning threshold η.
  double simpath_eta = 1e-3;
  /// PageRank damping and power iterations (pagerank heuristic).
  double pagerank_damping = 0.85;
  int pagerank_iterations = 50;
  /// DegreeDiscount's uniform IC probability p (<= 0: graph mean).
  double degree_discount_p = 0.0;
};

/// Uniform result: the seed set plus flat stats.
struct SolverResult {
  std::vector<NodeId> seeds;
  /// Wall-clock of the whole run.
  double seconds_total = 0.0;
  /// The solver's own spread estimate of `seeds` (n·F_R(S) for RR-set
  /// algorithms, the final MC estimate for greedy); 0 when the algorithm
  /// does not produce one (pure heuristics).
  double estimated_spread = 0.0;
  /// Algorithm-specific metrics by name (e.g. "theta", "kpt_star", "lb"),
  /// in emission order.
  std::vector<std::pair<std::string, double>> metrics;

  /// Convenience lookup; returns `def` when absent.
  double Metric(const std::string& name, double def = 0.0) const {
    for (const auto& [key, value] : metrics) {
      if (key == name) return value;
    }
    return def;
  }
};

/// Abstract influence maximization solver bound to one graph.
class InfluenceSolver {
 public:
  virtual ~InfluenceSolver() = default;

  /// Registry name this solver was created under ("tim+", "imm", ...).
  virtual std::string name() const = 0;

  /// Validates `options` and runs the algorithm. `*result` is only
  /// meaningful when the returned status is OK.
  virtual Status Run(const SolverOptions& options, SolverResult* result) = 0;

  /// Context-aware entry point for serving layers: `context` may carry an
  /// externally owned sample stream and memoized phase results (see
  /// engine/solve_context.h), which RR-set solvers consume for
  /// cross-request reuse with bit-identical output. The default
  /// implementation ignores the context — algorithms without RR-set
  /// phases behave identically either way.
  virtual Status RunWithContext(const SolverOptions& options,
                                const SolveContext& context,
                                SolverResult* result) {
    (void)context;
    return Run(options, result);
  }

  /// Whether RunWithContext actually exploits a SolveContext (the RR-set
  /// family). Serving layers use this to skip building shared stream
  /// state for solvers that would ignore it.
  virtual bool UsesSolveContext() const { return false; }
};

}  // namespace timpp

#endif  // TIMPP_ENGINE_SOLVER_H_
