// Registration of every built-in algorithm behind the InfluenceSolver
// interface. Each wrapper translates SolverOptions into the algorithm's
// native options struct, runs it, and flattens its native stats into the
// uniform metrics list.
#include <memory>
#include <utility>

#include "baselines/celf_greedy.h"
#include "baselines/heuristics.h"
#include "baselines/irie.h"
#include "baselines/ris.h"
#include "baselines/simpath.h"
#include "core/imm.h"
#include "core/tim.h"
#include "engine/solver_registry.h"
#include "util/timer.h"

namespace timpp {

namespace {

// Appends the run's backend fault-tolerance counters to the metrics list,
// but only when any fired: healthy runs (every local run, and distributed
// runs with no recovery activity) keep the exact metric set they had
// before fault tolerance existed, which is what backend-invariance
// comparisons (local vs procs, stat for stat) rely on.
void AppendBackendMetrics(const BackendStats& backend,
                          std::vector<std::pair<std::string, double>>* out) {
  if (!backend.any()) return;
  const auto add = [out](const char* name, uint64_t value) {
    out->emplace_back(name, static_cast<double>(value));
  };
  add("backend_shard_retries", backend.shard_retries);
  add("backend_worker_respawns", backend.worker_respawns);
  add("backend_shard_timeouts", backend.shard_timeouts);
  add("backend_worker_crashes", backend.worker_crashes);
  add("backend_corrupt_frames", backend.corrupt_frames);
  add("backend_quarantined_workers", backend.quarantined_workers);
  add("backend_fallback_shards", backend.fallback_shards);
  add("backend_fallback_sets", backend.fallback_sets);
}

// Spill-tier metrics, same emission contract as the backend counters:
// only present when the tier actually fired, so no-spill runs keep the
// exact metric set they had before the out-of-core layer existed.
void AppendSpillMetrics(uint64_t rr_sets_spilled, uint64_t sets_spill_read,
                        const RRSpillStats& io,
                        std::vector<std::pair<std::string, double>>* out) {
  if (rr_sets_spilled == 0 && sets_spill_read == 0 &&
      io.bytes_written == 0) {
    return;
  }
  out->emplace_back("rr_sets_spilled",
                    static_cast<double>(rr_sets_spilled));
  out->emplace_back("sets_spill_read",
                    static_cast<double>(sets_spill_read));
  out->emplace_back("spill_bytes_written",
                    static_cast<double>(io.bytes_written));
  // Replay-path accounting, each counter only when it fired (readahead=0
  // runs keep the pre-async metric set).
  const auto add = [out](const char* name, uint64_t value) {
    if (value != 0) out->emplace_back(name, static_cast<double>(value));
  };
  add("spill_prefetch_issued", io.prefetch_issued);
  add("spill_prefetch_hits", io.prefetch_hits);
  add("spill_prefetch_wasted", io.prefetch_wasted);
  add("spill_sync_fallback_reads", io.sync_fallback_reads);
  add("spill_hot_hits", io.hot_hits);
  add("spill_probation_hits", io.probation_hits);
}

// ------------------------------------------------------------- TIM/TIM+ --

class TimInfluenceSolver final : public InfluenceSolver {
 public:
  TimInfluenceSolver(const Graph& graph, bool use_refinement)
      : graph_(graph), use_refinement_(use_refinement) {}

  std::string name() const override { return use_refinement_ ? "tim+" : "tim"; }

  bool UsesSolveContext() const override { return true; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    return RunWithContext(options, SolveContext(), result);
  }

  Status RunWithContext(const SolverOptions& options,
                        const SolveContext& context,
                        SolverResult* result) override {
    TimOptions tim;
    tim.k = options.k;
    tim.epsilon = options.epsilon;
    tim.ell = options.ell;
    tim.model = options.model;
    tim.custom_model = options.custom_model;
    tim.use_refinement = use_refinement_;
    tim.max_hops = options.max_hops;
    tim.sampler_mode = options.sampler_mode;
    tim.num_threads = options.num_threads;
    tim.pin_threads = options.pin_threads;
    tim.seed = options.seed;
    tim.memory_budget_bytes = options.memory_budget_bytes;
    tim.spill_dir = options.spill_dir;
    tim.spill_tuning = options.spill_tuning;
    tim.sample_backend = options.sample_backend;

    // A memory budget caps this request's resident bytes — meaningless
    // against a shared collection, so budgeted requests run standalone.
    const SolveContext effective =
        options.memory_budget_bytes == 0 ? context : SolveContext();

    TimSolver solver(graph_);
    TimResult native;
    TIMPP_RETURN_NOT_OK(solver.Run(tim, effective, &native));

    result->seeds = std::move(native.seeds);
    result->seconds_total = native.stats.seconds_total;
    result->estimated_spread = native.stats.estimated_spread;
    result->metrics = {
        {"theta", static_cast<double>(native.stats.theta)},
        {"theta_prime", static_cast<double>(native.stats.theta_prime)},
        {"kpt_star", native.stats.kpt_star},
        {"kpt_plus", native.stats.kpt_plus},
        {"rr_sets_kpt", static_cast<double>(native.stats.rr_sets_kpt)},
        {"edges_examined", static_cast<double>(native.stats.edges_examined)},
        {"rr_memory_bytes",
         static_cast<double>(native.stats.rr_memory_bytes)},
        {"rr_data_bytes", static_cast<double>(native.stats.rr_data_bytes)},
        {"hit_memory_budget", native.stats.hit_memory_budget ? 1.0 : 0.0},
        {"rr_sets_retained",
         static_cast<double>(native.stats.rr_sets_retained)},
        {"regeneration_passes",
         static_cast<double>(native.stats.regeneration_passes)},
        {"seconds_node_selection", native.stats.seconds_node_selection},
        {"kpt_cache_hit", native.stats.kpt_cache_hit ? 1.0 : 0.0},
    };
    AppendSpillMetrics(native.stats.rr_sets_spilled,
                       native.stats.sets_spill_read, native.stats.spill,
                       &result->metrics);
    AppendBackendMetrics(native.stats.backend, &result->metrics);
    return Status::OK();
  }

 private:
  const Graph& graph_;
  bool use_refinement_;
};

// ------------------------------------------------------------------- IMM --

class ImmInfluenceSolver final : public InfluenceSolver {
 public:
  explicit ImmInfluenceSolver(const Graph& graph) : graph_(graph) {}

  std::string name() const override { return "imm"; }

  bool UsesSolveContext() const override { return true; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    return RunWithContext(options, SolveContext(), result);
  }

  Status RunWithContext(const SolverOptions& options,
                        const SolveContext& context,
                        SolverResult* result) override {
    ImmOptions imm;
    imm.k = options.k;
    imm.epsilon = options.epsilon;
    imm.ell = options.ell;
    imm.model = options.model;
    imm.custom_model = options.custom_model;
    imm.max_hops = options.max_hops;
    imm.sampler_mode = options.sampler_mode;
    imm.num_threads = options.num_threads;
    imm.pin_threads = options.pin_threads;
    imm.seed = options.seed;
    imm.memory_budget_bytes = options.memory_budget_bytes;
    imm.spill_dir = options.spill_dir;
    imm.spill_tuning = options.spill_tuning;
    imm.sample_backend = options.sample_backend;

    // Budgeted requests run standalone (see TimInfluenceSolver).
    const SolveContext effective =
        options.memory_budget_bytes == 0 ? context : SolveContext();

    ImmResult native;
    TIMPP_RETURN_NOT_OK(RunImm(graph_, imm, effective, &native));

    result->seeds = std::move(native.seeds);
    result->seconds_total = native.stats.seconds_total;
    result->estimated_spread = native.stats.estimated_spread;
    result->metrics = {
        {"theta", static_cast<double>(native.stats.theta)},
        {"lb", native.stats.lb},
        {"rr_sets_sampling",
         static_cast<double>(native.stats.rr_sets_sampling)},
        {"sampling_iterations",
         static_cast<double>(native.stats.sampling_iterations)},
        {"rr_memory_bytes",
         static_cast<double>(native.stats.rr_memory_bytes)},
        {"rr_data_bytes", static_cast<double>(native.stats.rr_data_bytes)},
        {"hit_memory_budget", native.stats.hit_memory_budget ? 1.0 : 0.0},
        {"rr_sets_retained",
         static_cast<double>(native.stats.rr_sets_retained)},
        {"regeneration_passes",
         static_cast<double>(native.stats.regeneration_passes)},
        {"lb_cache_hit", native.stats.lb_cache_hit ? 1.0 : 0.0},
    };
    AppendSpillMetrics(native.stats.rr_sets_spilled,
                       native.stats.sets_spill_read, native.stats.spill,
                       &result->metrics);
    AppendBackendMetrics(native.stats.backend, &result->metrics);
    return Status::OK();
  }

 private:
  const Graph& graph_;
};

// ------------------------------------------------------------------- RIS --

class RisInfluenceSolver final : public InfluenceSolver {
 public:
  explicit RisInfluenceSolver(const Graph& graph) : graph_(graph) {}

  std::string name() const override { return "ris"; }

  bool UsesSolveContext() const override { return true; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    return RunWithContext(options, SolveContext(), result);
  }

  Status RunWithContext(const SolverOptions& options,
                        const SolveContext& context,
                        SolverResult* result) override {
    RisOptions ris;
    ris.epsilon = options.epsilon;
    ris.ell = options.ell;
    ris.model = options.model;
    ris.custom_model = options.custom_model;
    ris.sampler_mode = options.sampler_mode;
    ris.tau_scale = options.ris_tau_scale;
    ris.max_rr_sets = options.ris_max_sets;
    // The RIS-specific budget knob wins when set; the generic budget
    // otherwise applies to RIS too (as its stop switch).
    ris.memory_budget_bytes = options.ris_memory_budget_bytes != 0
                                  ? options.ris_memory_budget_bytes
                                  : options.memory_budget_bytes;
    ris.num_threads = options.num_threads;
    ris.pin_threads = options.pin_threads;
    ris.seed = options.seed;
    ris.spill_dir = options.spill_dir;
    ris.spill_tuning = options.spill_tuning;
    ris.sample_backend = options.sample_backend;

    // RIS's budget contract is per-request (standalone), and RIS ignores
    // max_hops — a shared stream keyed with a hop bound would diverge
    // from the standalone run, so fall back in both cases.
    const SolveContext effective =
        (ris.memory_budget_bytes == 0 && options.max_hops == 0)
            ? context
            : SolveContext();

    RisStats stats;
    TIMPP_RETURN_NOT_OK(
        RunRis(graph_, ris, options.k, effective, &result->seeds, &stats));

    result->seconds_total = stats.seconds_total;
    result->estimated_spread =
        stats.covered_fraction * static_cast<double>(graph_.num_nodes());
    result->metrics = {
        {"tau", stats.tau},
        {"rr_sets_generated", static_cast<double>(stats.rr_sets_generated)},
        {"cost_examined", static_cast<double>(stats.cost_examined)},
        {"hit_set_cap", stats.hit_set_cap ? 1.0 : 0.0},
        {"hit_memory_budget", stats.hit_memory_budget ? 1.0 : 0.0},
        {"rr_sets_retained", static_cast<double>(stats.rr_sets_retained)},
        {"regeneration_passes",
         static_cast<double>(stats.regeneration_passes)},
    };
    AppendSpillMetrics(stats.rr_sets_spilled, stats.sets_spill_read,
                       stats.spill, &result->metrics);
    AppendBackendMetrics(stats.backend, &result->metrics);
    return Status::OK();
  }

 private:
  const Graph& graph_;
};

// ---------------------------------------------------------- greedy family --

class CelfInfluenceSolver final : public InfluenceSolver {
 public:
  CelfInfluenceSolver(const Graph& graph, GreedyVariant variant,
                      std::string name)
      : graph_(graph), variant_(variant), name_(std::move(name)) {}

  std::string name() const override { return name_; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    CelfOptions celf;
    celf.variant = variant_;
    celf.num_mc_samples = options.mc_samples;
    celf.model = options.model;
    celf.custom_model = options.custom_model;
    celf.sampler_mode = options.sampler_mode;
    celf.mc_batch = options.mc_batch;
    celf.seed = options.seed;

    CelfStats stats;
    TIMPP_RETURN_NOT_OK(
        RunCelfGreedy(graph_, celf, options.k, &result->seeds, &stats));

    result->seconds_total = stats.seconds_total;
    if (!stats.spread_after_round.empty()) {
      result->estimated_spread = stats.spread_after_round.back();
    }
    result->metrics = {
        {"spread_evaluations",
         static_cast<double>(stats.spread_evaluations)},
        {"mc_samples", static_cast<double>(celf.num_mc_samples)},
    };
    return Status::OK();
  }

 private:
  const Graph& graph_;
  GreedyVariant variant_;
  std::string name_;
};

// ------------------------------------------------------------------ IRIE --

class IrieInfluenceSolver final : public InfluenceSolver {
 public:
  explicit IrieInfluenceSolver(const Graph& graph) : graph_(graph) {}

  std::string name() const override { return "irie"; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    IrieOptions irie;
    irie.alpha = options.irie_alpha;
    irie.sampler_mode = options.sampler_mode;
    irie.mc_batch = options.mc_batch;
    irie.seed = options.seed;

    IrieStats stats;
    TIMPP_RETURN_NOT_OK(
        RunIrie(graph_, irie, options.k, &result->seeds, &stats));
    result->seconds_total = stats.seconds_total;
    result->metrics = {
        {"rank_sweeps", static_cast<double>(stats.rank_sweeps)},
    };
    return Status::OK();
  }

 private:
  const Graph& graph_;
};

// --------------------------------------------------------------- SIMPATH --

class SimpathInfluenceSolver final : public InfluenceSolver {
 public:
  explicit SimpathInfluenceSolver(const Graph& graph) : graph_(graph) {}

  std::string name() const override { return "simpath"; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    SimpathOptions simpath;
    simpath.eta = options.simpath_eta;

    SimpathStats stats;
    TIMPP_RETURN_NOT_OK(
        RunSimpath(graph_, simpath, options.k, &result->seeds, &stats));
    result->seconds_total = stats.seconds_total;
    result->metrics = {
        {"spread_evaluations",
         static_cast<double>(stats.spread_evaluations)},
        {"path_steps", static_cast<double>(stats.path_steps)},
    };
    return Status::OK();
  }

 private:
  const Graph& graph_;
};

// ------------------------------------------------------------- heuristics --

/// Adapts the stateless heuristic selectors; `run` maps (graph, options,
/// k, out-seeds) to a Status.
class HeuristicSolver final : public InfluenceSolver {
 public:
  using RunFn = Status (*)(const Graph&, const SolverOptions&,
                           std::vector<NodeId>*);

  HeuristicSolver(const Graph& graph, std::string name, RunFn run)
      : graph_(graph), name_(std::move(name)), run_(run) {}

  std::string name() const override { return name_; }

  Status Run(const SolverOptions& options, SolverResult* result) override {
    Timer timer;
    TIMPP_RETURN_NOT_OK(run_(graph_, options, &result->seeds));
    result->seconds_total = timer.ElapsedSeconds();
    return Status::OK();
  }

 private:
  const Graph& graph_;
  std::string name_;
  RunFn run_;
};

}  // namespace

void RegisterBuiltinSolvers(SolverRegistry* registry) {
  auto must = [registry](const std::string& name,
                         SolverRegistry::Factory factory) {
    Status s = registry->Register(name, std::move(factory));
    (void)s;  // duplicates impossible for the fixed built-in set
  };

  must("tim", [](const Graph& g) {
    return std::make_unique<TimInfluenceSolver>(g, /*use_refinement=*/false);
  });
  must("tim+", [](const Graph& g) {
    return std::make_unique<TimInfluenceSolver>(g, /*use_refinement=*/true);
  });
  must("imm", [](const Graph& g) {
    return std::make_unique<ImmInfluenceSolver>(g);
  });
  must("ris", [](const Graph& g) {
    return std::make_unique<RisInfluenceSolver>(g);
  });
  must("greedy", [](const Graph& g) {
    return std::make_unique<CelfInfluenceSolver>(g, GreedyVariant::kPlain,
                                                 "greedy");
  });
  must("celf", [](const Graph& g) {
    return std::make_unique<CelfInfluenceSolver>(g, GreedyVariant::kCelf,
                                                 "celf");
  });
  must("celf++", [](const Graph& g) {
    return std::make_unique<CelfInfluenceSolver>(
        g, GreedyVariant::kCelfPlusPlus, "celf++");
  });
  must("irie", [](const Graph& g) {
    return std::make_unique<IrieInfluenceSolver>(g);
  });
  must("simpath", [](const Graph& g) {
    return std::make_unique<SimpathInfluenceSolver>(g);
  });

  must("degree", [](const Graph& g) {
    return std::make_unique<HeuristicSolver>(
        g, "degree",
        +[](const Graph& graph, const SolverOptions& options,
            std::vector<NodeId>* seeds) {
          return SelectByDegree(graph, options.k, seeds);
        });
  });
  must("single-discount", [](const Graph& g) {
    return std::make_unique<HeuristicSolver>(
        g, "single-discount",
        +[](const Graph& graph, const SolverOptions& options,
            std::vector<NodeId>* seeds) {
          return SelectSingleDiscount(graph, options.k, seeds);
        });
  });
  must("degree-discount", [](const Graph& g) {
    return std::make_unique<HeuristicSolver>(
        g, "degree-discount",
        +[](const Graph& graph, const SolverOptions& options,
            std::vector<NodeId>* seeds) {
          return SelectDegreeDiscount(graph, options.k,
                                      options.degree_discount_p, seeds);
        });
  });
  must("pagerank", [](const Graph& g) {
    return std::make_unique<HeuristicSolver>(
        g, "pagerank",
        +[](const Graph& graph, const SolverOptions& options,
            std::vector<NodeId>* seeds) {
          return SelectByPageRank(graph, options.k, options.pagerank_damping,
                                  options.pagerank_iterations, seeds);
        });
  });
  must("kcore", [](const Graph& g) {
    return std::make_unique<HeuristicSolver>(
        g, "kcore",
        +[](const Graph& graph, const SolverOptions& options,
            std::vector<NodeId>* seeds) {
          return SelectByKCore(graph, options.k, seeds);
        });
  });
  must("random", [](const Graph& g) {
    return std::make_unique<HeuristicSolver>(
        g, "random",
        +[](const Graph& graph, const SolverOptions& options,
            std::vector<NodeId>* seeds) {
          return SelectRandom(graph, options.k, options.seed, seeds);
        });
  });
}

}  // namespace timpp
