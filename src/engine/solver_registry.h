// String-keyed registry of InfluenceSolver factories.
//
// The registry is how multi-algorithm surfaces (im_cli, benches, future
// serving backends) reach every algorithm in the library through one code
// path:
//
//   std::unique_ptr<InfluenceSolver> solver;
//   TIMPP_RETURN_NOT_OK(SolverRegistry::Global().Create("tim+", graph,
//                                                       &solver));
//   SolverOptions options;
//   options.k = 50;
//   SolverResult result;
//   TIMPP_RETURN_NOT_OK(solver->Run(options, &result));
//
// All built-in algorithms (TIM, TIM+, IMM, RIS, greedy/CELF/CELF++, IRIE,
// SIMPATH, and the degree/pagerank/k-core/random heuristics) register at
// Global() construction; user code may Register() additional factories at
// runtime.
#ifndef TIMPP_ENGINE_SOLVER_REGISTRY_H_
#define TIMPP_ENGINE_SOLVER_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/solver.h"

namespace timpp {

/// Thread-safe name → factory map. Use the process-wide Global() instance
/// unless a test needs an isolated registry.
class SolverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<InfluenceSolver>(const Graph&)>;

  /// The process-wide registry, with all built-in solvers registered.
  static SolverRegistry& Global();

  /// An empty registry (no built-ins).
  SolverRegistry() = default;

  /// Registers `factory` under `name`. InvalidArgument on duplicates.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the solver registered under `name`, bound to `graph`
  /// (borrowed; must outlive the solver). NotFound for unknown names.
  Status Create(const std::string& name, const Graph& graph,
                std::unique_ptr<InfluenceSolver>* solver) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// Registers every built-in algorithm (defined in builtin_solvers.cc).
/// Called once by Global(); exposed so tests can build isolated registries
/// with the full algorithm set.
void RegisterBuiltinSolvers(SolverRegistry* registry);

}  // namespace timpp

#endif  // TIMPP_ENGINE_SOLVER_REGISTRY_H_
