#include "engine/local_thread_backend.h"

#include <algorithm>
#include <atomic>

#include "engine/sampling_engine.h"

namespace timpp {

namespace {

// Work-claim granularity of a parallel fill: workers pull chunks of this
// many consecutive indices off an atomic counter. Small enough that one
// giant RR set (heavy-tailed graphs) strands at most 63 neighbours on the
// same worker, large enough that the claim and per-chunk merge overheads
// stay invisible next to the traversals.
constexpr uint64_t kFillChunkSets = 64;

}  // namespace

struct LocalThreadBackend::Shard {
  Shard(const Graph& graph, const SamplingConfig& config)
      : sampler(graph, config.model, config.custom_model, config.max_hops,
                config.sampler_mode),
        sets(graph.num_nodes()) {
    sampler.SetRootDistribution(config.root_distribution);
    scratch.reserve(256);
  }

  RRSampler sampler;
  RRCollection sets;
  std::vector<uint64_t> edges;    // per-set edges_examined
  std::vector<uint64_t> indices;  // per-set global index; filtered fills
                                  // only (contiguous fills reconstruct
                                  // indices positionally)
  // Chunks this worker claimed during the current fill, in claim order:
  // (global chunk id, first set the chunk produced into this shard).
  std::vector<std::pair<uint64_t, size_t>> chunks;
  std::vector<NodeId> scratch;
};

LocalThreadBackend::LocalThreadBackend(const Graph& graph,
                                       const SamplingConfig& config)
    : graph_(graph), seed_(config.seed) {
  const unsigned num_threads = std::max(1u, config.num_threads);
  shards_.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) {
    shards_.push_back(std::make_unique<Shard>(graph_, config));
  }
  if (num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads - 1, config.pin_threads);
  }
}

LocalThreadBackend::~LocalThreadBackend() = default;

void LocalThreadBackend::SampleRange(unsigned w, uint64_t begin, uint64_t end,
                                     const SampleFilter* filter) {
  Shard& shard = *shards_[w];
  for (uint64_t i = begin; i < end; ++i) {
    if (filter != nullptr && !(*filter)(i)) continue;
    Rng rng = SampleIndexRng(seed_, i);
    const RRSampleInfo info =
        shard.sampler.SampleRandomRoot(rng, &shard.scratch);
    shard.sets.Add(shard.scratch, info.width);
    shard.edges.push_back(info.edges_examined);
    // Index recording is only needed when a filter punches holes in the
    // range; unfiltered consumers reconstruct indices positionally, and
    // the hot contiguous paths skip the extra store.
    if (filter != nullptr) shard.indices.push_back(i);
  }
}

void LocalThreadBackend::SampleList(unsigned w,
                                    std::span<const uint64_t> indices) {
  Shard& shard = *shards_[w];
  for (uint64_t i : indices) {
    Rng rng = SampleIndexRng(seed_, i);
    const RRSampleInfo info =
        shard.sampler.SampleRandomRoot(rng, &shard.scratch);
    shard.sets.Add(shard.scratch, info.width);
    shard.edges.push_back(info.edges_examined);
    shard.indices.push_back(i);
  }
}

void LocalThreadBackend::ResetShards() {
  for (auto& shard : shards_) {
    shard->sets.Clear();
    shard->edges.clear();
    shard->indices.clear();
    shard->chunks.clear();
  }
  chunk_views_.clear();
}

SampleBackend::Chunk LocalThreadBackend::MakeChunk(unsigned w, size_t begin,
                                                   size_t end) const {
  const Shard& shard = *shards_[w];
  Chunk chunk;
  chunk.sets = &shard.sets;
  chunk.edges = &shard.edges;
  chunk.indices = shard.indices.empty() ? nullptr : &shard.indices;
  chunk.begin = begin;
  chunk.end = end;
  return chunk;
}

void LocalThreadBackend::BuildChunkTable(uint64_t num_chunks) {
  // Ordered by global chunk id == index order, whoever produced each
  // chunk.
  chunk_views_.resize(num_chunks);
  for (unsigned w = 0; w < static_cast<unsigned>(shards_.size()); ++w) {
    const Shard& shard = *shards_[w];
    for (size_t i = 0; i < shard.chunks.size(); ++i) {
      const size_t set_end = i + 1 < shard.chunks.size()
                                 ? shard.chunks[i + 1].second
                                 : shard.sets.num_sets();
      chunk_views_[shard.chunks[i].first] =
          MakeChunk(w, shard.chunks[i].second, set_end);
    }
  }
}

Status LocalThreadBackend::Fill(uint64_t base, uint64_t count,
                                const SampleFilter* filter) {
  ResetShards();
  const unsigned nw = static_cast<unsigned>(shards_.size());
  if (nw == 1 || count < 2 * nw) {
    SampleRange(0, base, base + count, filter);
    chunk_views_.push_back(MakeChunk(0, 0, shards_[0]->sets.num_sets()));
    return Status::OK();
  }
  // Dynamic split: workers claim fixed-size index chunks off an atomic
  // counter, so a worker that lands a run of heavy RR sets simply claims
  // fewer chunks instead of stalling the batch (a fixed contiguous split
  // load-imbalances on heavy-tailed set sizes). Content stays
  // thread-count invariant because a chunk's sets depend only on its
  // indices, and the merge below reassembles chunks in index order.
  const uint64_t num_chunks = (count + kFillChunkSets - 1) / kFillChunkSets;
  std::atomic<uint64_t> next_chunk{0};
  pool_->ParallelRun(nw, [&](unsigned w) {
    Shard& shard = *shards_[w];
    uint64_t c;
    while ((c = next_chunk.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      const uint64_t begin = base + c * kFillChunkSets;
      const uint64_t end = std::min(base + count, begin + kFillChunkSets);
      shard.chunks.emplace_back(c, shard.sets.num_sets());
      SampleRange(w, begin, end, filter);
    }
  });
  BuildChunkTable(num_chunks);
  return Status::OK();
}

Status LocalThreadBackend::FillList(std::span<const uint64_t> indices) {
  ResetShards();
  const unsigned nw = static_cast<unsigned>(shards_.size());
  const uint64_t count = indices.size();
  if (nw == 1 || count < 2 * nw) {
    SampleList(0, indices);
    chunk_views_.push_back(MakeChunk(0, 0, shards_[0]->sets.num_sets()));
    return Status::OK();
  }
  // Same dynamic-claim merge as Fill, over slices of the list instead of
  // index ranges: O(listed) work regardless of how sparse the listed
  // indices sit in the global stream.
  const uint64_t num_chunks = (count + kFillChunkSets - 1) / kFillChunkSets;
  std::atomic<uint64_t> next_chunk{0};
  pool_->ParallelRun(nw, [&](unsigned w) {
    Shard& shard = *shards_[w];
    uint64_t c;
    while ((c = next_chunk.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      const uint64_t begin = c * kFillChunkSets;
      const uint64_t end = std::min(count, begin + kFillChunkSets);
      shard.chunks.emplace_back(c, shard.sets.num_sets());
      SampleList(w, indices.subspan(begin, end - begin));
    }
  });
  BuildChunkTable(num_chunks);
  return Status::OK();
}

bool LocalThreadBackend::AppendDirect(uint64_t base, uint64_t count,
                                      RRCollection* out,
                                      uint64_t* edges_examined,
                                      uint64_t* traversal_cost,
                                      std::vector<uint64_t>* per_set_edges) {
  if (shards_.size() != 1) return false;
  // Sequential fast path: append straight into the output, no shard copy.
  // Identical output by the per-index seeding argument. Member counts are
  // unknown until sampled, so only the per-set arrays are pre-sized (the
  // chunked path also reserves the node array, from its shard totals).
  out->Reserve(count, 0);
  Shard& shard = *shards_[0];
  for (uint64_t i = base; i < base + count; ++i) {
    Rng rng = SampleIndexRng(seed_, i);
    const RRSampleInfo info =
        shard.sampler.SampleRandomRoot(rng, &shard.scratch);
    out->Add(shard.scratch, info.width);
    *edges_examined += info.edges_examined;
    *traversal_cost += info.edges_examined + shard.scratch.size();
    if (per_set_edges != nullptr) {
      per_set_edges->push_back(info.edges_examined);
    }
  }
  return true;
}

}  // namespace timpp
