// SampleSource — the solver-facing view of one RR-set sample stream.
//
// Every RIS-family phase consumes a prefix of the engine's global index
// stream. Standalone runs consume it straight from a private
// SamplingEngine; the serving layer instead serves it from a shared
// collection that persists across requests, because set i is a pure
// function of (seed, i) and therefore identical no matter which request
// first forced it into existence. SampleSource abstracts exactly that
// difference: a cursor over the stream plus "give me the next `count`
// sets", with accounting that reports how many of them were reused from a
// cache rather than freshly sampled. Core algorithms (TIM/TIM+/IMM/RIS
// phases) are written against this interface, so one implementation of
// Algorithm 1/2/3 serves both the standalone and the batch/serving paths
// with bit-identical output.
#ifndef TIMPP_ENGINE_SAMPLE_SOURCE_H_
#define TIMPP_ENGINE_SAMPLE_SOURCE_H_

#include <cstdint>
#include <vector>

#include "engine/sampling_engine.h"
#include "graph/graph.h"
#include "rrset/rr_collection.h"

namespace timpp {

/// A readable cursor over one engine's deterministic RR-set stream.
/// Implementations are not thread-safe; one consumer at a time (solver
/// phases are sequential, and the serving layer serializes requests per
/// graph context).
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// The engine whose global index stream this source serves. Budgeted
  /// streaming phases drive it directly (VisitSamples regeneration);
  /// VisitSamples does not move the stream cursor, so such use composes
  /// with Fetch.
  virtual SamplingEngine& engine() = 0;

  /// Graph the stream samples over.
  virtual const Graph& graph() const = 0;

  /// Next global stream index a Fetch will consume.
  virtual uint64_t position() const = 0;

  /// Advances the cursor to `index` (no-op when already past it) without
  /// reading anything — the budget paths use this to keep later phases on
  /// the same index ranges as a budget-off run.
  virtual void Seek(uint64_t index) = 0;

  /// Appends the next `count` sets of the stream to `*out` and advances
  /// the cursor by the sets actually delivered. Reused sets are
  /// byte-identical to freshly sampled ones (per-index RNG contract), and
  /// their accounting (edges_examined, traversal_cost) matches what
  /// sampling them here would have reported. May stop early only for the
  /// same reasons SamplingEngine::SampleInto does (output memory budget).
  /// `per_set_edges` (optional) receives each delivered set's
  /// edges-examined count in set order (appended, mirroring the appends to
  /// `*out`) — the spill tier records them so reloaded shards report the
  /// accounting a fresh sample of the same indices would.
  virtual SampleBatch Fetch(RRCollection* out, uint64_t count,
                            std::vector<uint64_t>* per_set_edges = nullptr) = 0;

  /// Cost-threshold variant (Borgs et al.'s stopping rule, see
  /// SamplingEngine::SampleUntilCost): appends sets while the running
  /// traversal cost is below `cost_threshold`; the crossing set is kept.
  /// `max_sets` (0 = none) caps the appended sets. Stops at the same set
  /// index as a standalone engine run would.
  virtual SampleBatch FetchUntilCost(RRCollection* out, double cost_threshold,
                                     uint64_t max_sets) = 0;
};

/// The standalone implementation: a thin adapter over a borrowed
/// SamplingEngine, preserving its behaviour exactly (cursor == the
/// engine's next_index_). Solvers running without a serving context wrap
/// their private engine in one of these.
class EngineSampleSource final : public SampleSource {
 public:
  explicit EngineSampleSource(SamplingEngine& engine) : engine_(engine) {}

  SamplingEngine& engine() override { return engine_; }
  const Graph& graph() const override { return engine_.graph(); }
  uint64_t position() const override { return engine_.sets_sampled(); }
  void Seek(uint64_t index) override { engine_.SkipTo(index); }

  SampleBatch Fetch(RRCollection* out, uint64_t count,
                    std::vector<uint64_t>* per_set_edges = nullptr) override {
    return engine_.SampleInto(out, count, per_set_edges);
  }

  SampleBatch FetchUntilCost(RRCollection* out, double cost_threshold,
                             uint64_t max_sets) override {
    return engine_.SampleUntilCost(out, cost_threshold, max_sets);
  }

 private:
  SamplingEngine& engine_;
};

}  // namespace timpp

#endif  // TIMPP_ENGINE_SAMPLE_SOURCE_H_
