#include "graph/graph_algos.h"

#include <algorithm>

namespace timpp {

std::vector<uint32_t> CoreDecomposition(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(graph.OutDegree(v) + graph.InDegree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort nodes by degree (Batagelj–Zaveršnik peeling).
  std::vector<NodeId> bucket_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 1; d <= max_degree + 1; ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);       // nodes sorted by current degree
  std::vector<NodeId> position(n);    // node -> index in `order`
  {
    std::vector<NodeId> fill(bucket_start.begin(), bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = fill[degree[v]];
      order[position[v]] = v;
      ++fill[degree[v]];
    }
  }

  std::vector<uint32_t> core = degree;
  auto lower_degree = [&](NodeId u) {
    // Move u one bucket down, keeping `order` partitioned by degree.
    const uint32_t d = core[u];
    const NodeId first_same = bucket_start[d];
    const NodeId u_pos = position[u];
    NodeId swap_node = order[first_same];
    std::swap(order[first_same], order[u_pos]);
    position[u] = first_same;
    position[swap_node] = u_pos;
    ++bucket_start[d];
    --core[u];
  };

  for (NodeId idx = 0; idx < n; ++idx) {
    const NodeId v = order[idx];
    // v is peeled with its current degree as its core number; neighbors
    // with higher current degree lose one unit.
    for (const Arc& a : graph.OutArcs(v)) {
      if (core[a.node] > core[v]) lower_degree(a.node);
    }
    for (const Arc& a : graph.InArcs(v)) {
      if (core[a.node] > core[v]) lower_degree(a.node);
    }
  }
  return core;
}

std::vector<NodeId> StronglyConnectedComponents(const Graph& graph,
                                                NodeId* num_components) {
  const NodeId n = graph.num_nodes();
  constexpr NodeId kUnvisited = kInvalidNode;

  std::vector<NodeId> index(n, kUnvisited);  // DFS discovery order
  std::vector<NodeId> lowlink(n, 0);
  std::vector<NodeId> component(n, kUnvisited);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> scc_stack;
  NodeId next_index = 0;
  NodeId next_component = 0;

  // Iterative Tarjan: each frame remembers which out-arc to resume at.
  struct Frame {
    NodeId node;
    size_t arc;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back(Frame{root, 0});
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      NodeId v = frame.node;
      if (frame.arc == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = 1;
      }
      auto arcs = graph.OutArcs(v);
      bool descended = false;
      while (frame.arc < arcs.size()) {
        NodeId w = arcs[frame.arc++].node;
        if (index[w] == kUnvisited) {
          dfs.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;

      if (lowlink[v] == index[v]) {
        // v is an SCC root: pop its component.
        NodeId w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = 0;
          component[w] = next_component;
        } while (w != v);
        ++next_component;
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        NodeId parent = dfs.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  if (num_components != nullptr) *num_components = next_component;
  return component;
}

uint64_t LargestSccSize(const Graph& graph) {
  NodeId count = 0;
  std::vector<NodeId> component = StronglyConnectedComponents(graph, &count);
  std::vector<uint64_t> sizes(count, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) ++sizes[component[v]];
  uint64_t best = 0;
  for (uint64_t s : sizes) best = std::max(best, s);
  return best;
}

}  // namespace timpp
