// Edge-probability assignment passes. §7.1 of the paper fixes two standard
// parameterizations: the weighted-cascade IC setting p(e) = 1/indeg(target),
// and the LT setting of random in-weights normalized to sum to 1 per node.
// Trivalency and uniform settings are provided for completeness (both are
// widely used in the cited prior work).
#ifndef TIMPP_GRAPH_WEIGHT_MODELS_H_
#define TIMPP_GRAPH_WEIGHT_MODELS_H_

#include <cstdint>

#include "graph/graph_builder.h"

namespace timpp {

/// Weighted cascade (the paper's IC setting): every edge e = (u, v) gets
/// p(e) = 1 / indeg(v), where indeg counts edges currently in the builder.
void AssignWeightedCascade(GraphBuilder* builder);

/// Uniform probability p on every edge.
void AssignUniform(GraphBuilder* builder, float p);

/// Trivalency model: each edge draws p(e) uniformly from {0.1, 0.01, 0.001}.
void AssignTrivalency(GraphBuilder* builder, uint64_t seed);

/// The paper's LT setting: each in-neighbor of v gets a weight drawn
/// uniformly from [0, 1], then weights into v are normalized to sum to 1.
/// Nodes with no in-edges are unaffected.
void AssignRandomLT(GraphBuilder* builder, uint64_t seed);

/// LT weights proportional to edge multiplicity: w(u, v) = c(u,v)/indeg(v),
/// the classic "uniform LT" of Kempe et al. With simple graphs this is
/// 1/indeg(v) per edge.
void AssignUniformLT(GraphBuilder* builder);

}  // namespace timpp

#endif  // TIMPP_GRAPH_WEIGHT_MODELS_H_
