// Summary statistics over graphs — powers the Table 2 bench and sanity
// checks on the synthetic dataset proxies.
#ifndef TIMPP_GRAPH_GRAPH_STATS_H_
#define TIMPP_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace timpp {

/// Degree and connectivity summary of a graph.
struct GraphStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;          // directed arc count m
  double avg_out_degree = 0.0;     // m / n
  uint64_t max_out_degree = 0;
  uint64_t max_in_degree = 0;
  uint64_t num_isolated = 0;       // nodes with no arcs at all
  uint64_t num_weak_components = 0;
  uint64_t largest_weak_component = 0;
};

/// Computes all fields of GraphStats (one BFS sweep for components).
GraphStats ComputeGraphStats(const Graph& graph);

/// Out-degree histogram: bucket[d] = #nodes with out-degree d, truncated at
/// `max_degree` (the tail is accumulated into the last bucket).
std::vector<uint64_t> OutDegreeHistogram(const Graph& graph,
                                         uint64_t max_degree);

/// Renders a row in the style of the paper's Table 2:
///   name  n  m  type  average degree
/// where `type` is "directed"/"undirected" as declared by the caller and the
/// average degree follows the paper's convention (m/n for directed graphs,
/// arc-count/n for undirected graphs whose arcs are stored both ways).
std::string FormatTable2Row(const std::string& name, const Graph& graph,
                            bool undirected);

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_STATS_H_
