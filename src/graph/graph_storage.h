// Pluggable storage backends under Graph.
//
// Graph is a reader over eleven immutable arrays (two CSR adjacency
// directions plus constant-probability run metadata). Where those arrays
// live is a storage decision, not a graph decision: the classic backend
// owns them as heap vectors (OwnedGraphStorage, what GraphBuilder
// produces), while the out-of-core backend memory-maps a serialized CSR
// image read-only and materializes only the derived run metadata
// (MmapGraphImage, see graph_io.h). A backend hands Graph one GraphView —
// a bundle of spans — at construction; every Graph accessor reads through
// that view, so the hot paths are identical across backends and samplers
// cannot tell (and must not be able to tell — ContentHash and RR streams
// are asserted bit-identical) which tier the bytes came from.
#ifndef TIMPP_GRAPH_GRAPH_STORAGE_H_
#define TIMPP_GRAPH_GRAPH_STORAGE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace timpp {

/// One directed arc endpoint as seen from an adjacency list: the other
/// endpoint plus the propagation probability p(e) of the underlying edge.
struct Arc {
  NodeId node;
  float prob;
};

/// Read-only spans over every array a Graph needs. The spans point into
/// storage owned by a GraphStorage backend and stay valid for that
/// backend's lifetime; Graph copies the view once at construction and
/// keeps the backend alive through a shared_ptr.
struct GraphView {
  NodeId num_nodes = 0;
  std::span<const EdgeIndex> out_offsets;  // size n+1
  std::span<const Arc> out_arcs;           // size m
  std::span<const EdgeIndex> in_offsets;   // size n+1
  std::span<const Arc> in_arcs;            // size m

  // Constant-probability run metadata (see Graph's class comment).
  // *_run_offsets index per-node ranges of *_run_ends / *_run_inv_log1mp,
  // exactly like the arc CSR.
  std::span<const EdgeIndex> out_run_offsets;  // size n+1
  std::span<const EdgeIndex> out_run_ends;     // size #out-runs
  std::span<const double> out_run_inv_log1mp;  // size #out-runs
  std::span<const EdgeIndex> in_run_offsets;   // size n+1
  std::span<const EdgeIndex> in_run_ends;      // size #in-runs
  std::span<const double> in_run_inv_log1mp;   // size #in-runs
};

/// Where a Graph's arrays live. Implementations are immutable after
/// construction; view() is called once per Graph construction (not per
/// access), so backends pay no virtual dispatch on the sampling hot path.
class GraphStorage {
 public:
  virtual ~GraphStorage() = default;

  /// Spans over the backing arrays; valid for this object's lifetime.
  virtual GraphView view() const = 0;

  /// Heap bytes this backend holds resident (Figure 12 accounting). For a
  /// mapped backend this counts only the materialized run metadata — the
  /// mapped adjacency is page-cache memory the kernel can drop.
  virtual size_t ResidentBytes() const = 0;

  /// Bytes served through a read-only file mapping (0 for owned storage).
  virtual size_t MappedBytes() const = 0;

  /// Stable short name for stats/logging: "resident" or "mmap".
  virtual const char* kind() const = 0;
};

/// The eleven arrays as owned vectors — the build product of GraphBuilder
/// and graph deserialization, and the payload of OwnedGraphStorage.
struct GraphArrays {
  NodeId num_nodes = 0;
  std::vector<EdgeIndex> out_offsets;
  std::vector<Arc> out_arcs;
  std::vector<EdgeIndex> in_offsets;
  std::vector<Arc> in_arcs;
  std::vector<EdgeIndex> out_run_offsets;
  std::vector<EdgeIndex> out_run_ends;
  std::vector<double> out_run_inv_log1mp;
  std::vector<EdgeIndex> in_run_offsets;
  std::vector<EdgeIndex> in_run_ends;
  std::vector<double> in_run_inv_log1mp;

  /// Computes both directions' run metadata from the adjacency arrays.
  void DeriveRuns();

  GraphView View() const;

  size_t HeapBytes() const {
    return (out_offsets.size() + in_offsets.size()) * sizeof(EdgeIndex) +
           (out_arcs.size() + in_arcs.size()) * sizeof(Arc) +
           (out_run_offsets.size() + in_run_offsets.size() +
            out_run_ends.size() + in_run_ends.size()) *
               sizeof(EdgeIndex) +
           (out_run_inv_log1mp.size() + in_run_inv_log1mp.size()) *
               sizeof(double);
  }
};

/// The classic backend: every array heap-resident, owned by this object.
class OwnedGraphStorage final : public GraphStorage {
 public:
  explicit OwnedGraphStorage(GraphArrays arrays) : a_(std::move(arrays)) {}

  GraphView view() const override { return a_.View(); }
  size_t ResidentBytes() const override { return a_.HeapBytes(); }
  size_t MappedBytes() const override { return 0; }
  const char* kind() const override { return "resident"; }

 private:
  GraphArrays a_;
};

/// Splits each node's arc list into maximal equal-probability runs (exact
/// float comparison) — the metadata geometric skip sampling walks. Shared
/// by GraphBuilder::Build, graph deserialization and the mmap image loader
/// so every backend derives identical run structure from identical
/// adjacency.
void ComputeProbabilityRuns(NodeId n, std::span<const EdgeIndex> offsets,
                            std::span<const Arc> arcs,
                            std::vector<EdgeIndex>* run_offsets,
                            std::vector<EdgeIndex>* run_ends,
                            std::vector<double>* run_inv_log1mp);

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_STORAGE_H_
