#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

namespace timpp {

void GraphBuilder::ReserveNodes(NodeId n) {
  num_nodes_ = std::max(num_nodes_, n);
}

void GraphBuilder::AddEdge(NodeId from, NodeId to, float prob) {
  edges_.push_back(RawEdge{from, to, prob});
  num_nodes_ = std::max(num_nodes_, static_cast<NodeId>(std::max(from, to) + 1));
}

void GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, float prob) {
  AddEdge(u, v, prob);
  AddEdge(v, u, prob);
}

void GraphBuilder::DeduplicateEdges() {
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const RawEdge& a, const RawEdge& b) {
                     if (a.from != b.from) return a.from < b.from;
                     return a.to < b.to;
                   });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const RawEdge& a, const RawEdge& b) {
                             return a.from == b.from && a.to == b.to;
                           }),
               edges_.end());
}

void GraphBuilder::RemoveSelfLoops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const RawEdge& e) { return e.from == e.to; }),
               edges_.end());
}

Status GraphBuilder::Build(Graph* out) const {
  for (const RawEdge& e : edges_) {
    if (!std::isfinite(e.prob) || e.prob < 0.0f || e.prob > 1.0f) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(e.from) + " -> " + std::to_string(e.to) +
          ") has probability outside [0, 1]: " + std::to_string(e.prob));
    }
  }

  const NodeId n = num_nodes_;
  const size_t m = edges_.size();

  GraphArrays a;
  a.num_nodes = n;
  a.out_offsets.assign(n + 1, 0);
  a.in_offsets.assign(n + 1, 0);
  a.out_arcs.resize(m);
  a.in_arcs.resize(m);

  // Counting sort into both CSR directions.
  for (const RawEdge& e : edges_) {
    ++a.out_offsets[e.from + 1];
    ++a.in_offsets[e.to + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    a.out_offsets[v + 1] += a.out_offsets[v];
    a.in_offsets[v + 1] += a.in_offsets[v];
  }
  std::vector<EdgeIndex> out_fill(a.out_offsets.begin(),
                                  a.out_offsets.end() - 1);
  std::vector<EdgeIndex> in_fill(a.in_offsets.begin(),
                                 a.in_offsets.end() - 1);
  for (const RawEdge& e : edges_) {
    a.out_arcs[out_fill[e.from]++] = Arc{e.to, e.prob};
    a.in_arcs[in_fill[e.to]++] = Arc{e.from, e.prob};
  }

  // Probability runs: split every node's arc list into maximal stretches
  // of equal probability (exact float comparison — only byte-identical
  // probabilities may share a geometric-skip stream). O(m), done for both
  // directions so reverse sampling and forward simulation can both skip.
  a.DeriveRuns();

  *out = Graph(std::make_shared<OwnedGraphStorage>(std::move(a)));
  return Status::OK();
}

}  // namespace timpp
