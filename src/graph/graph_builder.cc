#include "graph/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace timpp {

void GraphBuilder::ReserveNodes(NodeId n) {
  num_nodes_ = std::max(num_nodes_, n);
}

void GraphBuilder::AddEdge(NodeId from, NodeId to, float prob) {
  edges_.push_back(RawEdge{from, to, prob});
  num_nodes_ = std::max(num_nodes_, static_cast<NodeId>(std::max(from, to) + 1));
}

void GraphBuilder::AddUndirectedEdge(NodeId u, NodeId v, float prob) {
  AddEdge(u, v, prob);
  AddEdge(v, u, prob);
}

void GraphBuilder::DeduplicateEdges() {
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const RawEdge& a, const RawEdge& b) {
                     if (a.from != b.from) return a.from < b.from;
                     return a.to < b.to;
                   });
  edges_.erase(std::unique(edges_.begin(), edges_.end(),
                           [](const RawEdge& a, const RawEdge& b) {
                             return a.from == b.from && a.to == b.to;
                           }),
               edges_.end());
}

void GraphBuilder::RemoveSelfLoops() {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [](const RawEdge& e) { return e.from == e.to; }),
               edges_.end());
}

Status GraphBuilder::Build(Graph* out) const {
  for (const RawEdge& e : edges_) {
    if (!std::isfinite(e.prob) || e.prob < 0.0f || e.prob > 1.0f) {
      return Status::InvalidArgument(
          "edge (" + std::to_string(e.from) + " -> " + std::to_string(e.to) +
          ") has probability outside [0, 1]: " + std::to_string(e.prob));
    }
  }

  const NodeId n = num_nodes_;
  const size_t m = edges_.size();

  Graph g;
  g.num_nodes_ = n;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  g.out_arcs_.resize(m);
  g.in_arcs_.resize(m);

  // Counting sort into both CSR directions.
  for (const RawEdge& e : edges_) {
    ++g.out_offsets_[e.from + 1];
    ++g.in_offsets_[e.to + 1];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  std::vector<EdgeIndex> out_fill(g.out_offsets_.begin(),
                                  g.out_offsets_.end() - 1);
  std::vector<EdgeIndex> in_fill(g.in_offsets_.begin(),
                                 g.in_offsets_.end() - 1);
  for (const RawEdge& e : edges_) {
    g.out_arcs_[out_fill[e.from]++] = Arc{e.to, e.prob};
    g.in_arcs_[in_fill[e.to]++] = Arc{e.from, e.prob};
  }

  // Probability runs: split every node's arc list into maximal stretches
  // of equal probability (exact float comparison — only byte-identical
  // probabilities may share a geometric-skip stream). O(m), done for both
  // directions so reverse sampling and forward simulation can both skip.
  ComputeProbabilityRuns(n, g.out_offsets_, g.out_arcs_, &g.out_run_offsets_,
                         &g.out_run_ends_, &g.out_run_inv_log1mp_);
  ComputeProbabilityRuns(n, g.in_offsets_, g.in_arcs_, &g.in_run_offsets_,
                         &g.in_run_ends_, &g.in_run_inv_log1mp_);

  *out = std::move(g);
  return Status::OK();
}

}  // namespace timpp
