#include "graph/graph.h"

#include <bit>
#include <cmath>

namespace timpp {

void ComputeProbabilityRuns(NodeId n, const std::vector<EdgeIndex>& offsets,
                            const std::vector<Arc>& arcs,
                            std::vector<EdgeIndex>* run_offsets,
                            std::vector<EdgeIndex>* run_ends,
                            std::vector<double>* run_inv_log1mp) {
  run_offsets->assign(n + 1, 0);
  run_ends->clear();
  run_inv_log1mp->clear();
  for (NodeId v = 0; v < n; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    EdgeIndex run_begin = begin;
    for (EdgeIndex e = begin; e < end; ++e) {
      if (e + 1 == end || arcs[e + 1].prob != arcs[e].prob) {
        run_ends->push_back(e + 1 - begin);  // end local to the node
        // 1/ln(1-p): the constant geometric skip draws multiply by.
        // ±0/±inf for p >= 1 / p <= 0 — samplers branch around those
        // runs and never read the value.
        run_inv_log1mp->push_back(
            1.0 / std::log1p(-static_cast<double>(arcs[run_begin].prob)));
        run_begin = e + 1;
      }
    }
    (*run_offsets)[v + 1] = run_ends->size();
  }
}

namespace {

// splitmix64-style mixing: accumulate each word through the full avalanche
// so adjacent-array permutations (same multiset of words, different order)
// hash differently.
inline void Mix(uint64_t& h, uint64_t v) {
  uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  h = z ^ (z >> 31);
}

inline void MixArcs(uint64_t& h, const std::vector<Arc>& arcs) {
  for (const Arc& a : arcs) {
    Mix(h, (static_cast<uint64_t>(a.node) << 32) |
               std::bit_cast<uint32_t>(a.prob));
  }
}

inline void MixWords(uint64_t& h, const std::vector<EdgeIndex>& words) {
  for (EdgeIndex w : words) Mix(h, w);
}

}  // namespace

uint64_t Graph::ContentHash() const {
  uint64_t h = 0x74696d70705f6721ULL;  // "timpp_g!"
  Mix(h, num_nodes_);
  Mix(h, num_edges());
  // Both directions: the transpose is derived from the forward arcs, but
  // its arc order (and with it the per-index RNG consumption of every
  // reverse traversal) is part of what must match bit-for-bit.
  MixWords(h, out_offsets_);
  MixArcs(h, out_arcs_);
  MixWords(h, in_offsets_);
  MixArcs(h, in_arcs_);
  // Run metadata decides how SamplerMode::kAuto resolves and how skip
  // traversals split their geometric draws.
  MixWords(h, out_run_ends_);
  MixWords(h, in_run_ends_);
  return h;
}

}  // namespace timpp
