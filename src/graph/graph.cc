#include "graph/graph.h"

// Graph is header-only today; this translation unit anchors the type for
// future out-of-line additions and keeps the build list uniform.
