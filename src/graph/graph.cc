#include "graph/graph.h"

#include <bit>

namespace timpp {

namespace {

// splitmix64-style mixing: accumulate each word through the full avalanche
// so adjacent-array permutations (same multiset of words, different order)
// hash differently.
inline void Mix(uint64_t& h, uint64_t v) {
  uint64_t z = h + 0x9e3779b97f4a7c15ULL + v;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  h = z ^ (z >> 31);
}

inline void MixArcs(uint64_t& h, std::span<const Arc> arcs) {
  for (const Arc& a : arcs) {
    Mix(h, (static_cast<uint64_t>(a.node) << 32) |
               std::bit_cast<uint32_t>(a.prob));
  }
}

inline void MixWords(uint64_t& h, std::span<const EdgeIndex> words) {
  for (EdgeIndex w : words) Mix(h, w);
}

}  // namespace

uint64_t Graph::ContentHash() const {
  uint64_t h = 0x74696d70705f6721ULL;  // "timpp_g!"
  Mix(h, v_.num_nodes);
  Mix(h, num_edges());
  // Both directions: the transpose is derived from the forward arcs, but
  // its arc order (and with it the per-index RNG consumption of every
  // reverse traversal) is part of what must match bit-for-bit.
  MixWords(h, v_.out_offsets);
  MixArcs(h, v_.out_arcs);
  MixWords(h, v_.in_offsets);
  MixArcs(h, v_.in_arcs);
  // Run metadata decides how SamplerMode::kAuto resolves and how skip
  // traversals split their geometric draws.
  MixWords(h, v_.out_run_ends);
  MixWords(h, v_.in_run_ends);
  return h;
}

}  // namespace timpp
