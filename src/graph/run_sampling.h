// Geometric skip sampling over a node's constant-probability arc runs —
// the one traversal primitive shared by reverse RR-set generation
// (RRSampler::SampleICSkip, over in-arcs) and forward IC simulation
// (IcSimulator, over out-arcs). Keeping the jump arithmetic in a single
// place is what makes the two paths provably sample the same per-arc
// Bernoulli process.
#ifndef TIMPP_GRAPH_RUN_SAMPLING_H_
#define TIMPP_GRAPH_RUN_SAMPLING_H_

#include <cmath>
#include <span>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/types.h"

namespace timpp {

/// Invokes `visit(arc)` for exactly the live arcs of `arcs`, where each
/// arc is independently live with its own probability, without touching
/// the blocked ones: within a run of L Bernoulli(p) trials the distance
/// to the next success is Geometric(p), so Rng::NextSkip jumps straight
/// to each live arc — O(1 + live) per run, and exactly the same live-arc
/// distribution as one coin per arc. `run_ends` / `run_invs` are the
/// node's Graph::{In,Out}RunEnds (ends local to `arcs`) and the aligned
/// Graph::{In,Out}RunInvLog1mp spans.
template <typename Visit>
inline void SampleLiveArcsInRuns(std::span<const Arc> arcs,
                                 std::span<const EdgeIndex> run_ends,
                                 std::span<const double> run_invs, Rng& rng,
                                 Visit&& visit) {
  EdgeIndex start = 0;
  for (size_t r = 0; r < run_ends.size(); ++r) {
    const EdgeIndex end = run_ends[r];
    const float p = arcs[start].prob;
    if (p >= 1.0f) {
      // Forced run: every arc is live, no randomness to draw.
      for (EdgeIndex i = start; i < end; ++i) visit(arcs[i]);
    } else if (p > 0.0f) {
      const double inv_log1mp = run_invs[r];
      for (EdgeIndex i = start + rng.NextSkip(inv_log1mp, end - start);
           i < end; i += 1 + rng.NextSkip(inv_log1mp, end - i - 1)) {
        visit(arcs[i]);
      }
    }  // p <= 0: the whole run is blocked, jump over it.
    start = end;
  }
}

}  // namespace timpp

#endif  // TIMPP_GRAPH_RUN_SAMPLING_H_
