// Classic graph decompositions used by influence-maximization heuristics
// and by dataset diagnostics: k-core (k-shell) numbers and strongly
// connected components.
#ifndef TIMPP_GRAPH_GRAPH_ALGOS_H_
#define TIMPP_GRAPH_GRAPH_ALGOS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/types.h"

namespace timpp {

/// k-core (k-shell) decomposition over total degree (in + out, parallel
/// arcs counted). core[v] = largest k such that v belongs to a subgraph
/// where every node has total degree >= k. Kitsak et al. (Nature Physics
/// 2010) argue the k-shell index locates influential spreaders — the basis
/// of the k-core seeding heuristic. O(n + m) bucket peeling.
std::vector<uint32_t> CoreDecomposition(const Graph& graph);

/// Strongly connected components via iterative Tarjan. Returns the
/// component id of every node (ids are dense, in reverse topological
/// order of the condensation) and sets *num_components.
std::vector<NodeId> StronglyConnectedComponents(const Graph& graph,
                                                NodeId* num_components);

/// Size of the largest strongly connected component.
uint64_t LargestSccSize(const Graph& graph);

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_ALGOS_H_
