// Immutable directed graph in CSR form with per-edge propagation
// probabilities, materializing both the forward adjacency (out-arcs, used by
// forward diffusion simulation) and the transpose adjacency (in-arcs, used
// by reverse-reachable-set sampling; the paper calls the transpose G^T).
#ifndef TIMPP_GRAPH_GRAPH_H_
#define TIMPP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// One directed arc endpoint as seen from an adjacency list: the other
/// endpoint plus the propagation probability p(e) of the underlying edge.
struct Arc {
  NodeId node;
  float prob;
};

/// Minimum average constant-probability run length at which
/// SamplerMode::kAuto switches a traversal from per-arc coins to geometric
/// skips: each skip draw costs two log() evaluations, so runs must be long
/// enough to amortize them against the per-arc coin it replaces.
inline constexpr double kSkipRunLengthThreshold = 4.0;

/// Immutable weighted directed graph. Construct via GraphBuilder.
///
/// Both adjacency directions are stored because the algorithms in the paper
/// need both: forward Monte-Carlo simulation of a cascade walks out-arcs,
/// while randomized reverse BFS (RR-set generation, Definition 2) walks
/// in-arcs. Arc order within a list follows insertion order of the builder.
///
/// Alongside the arcs the builder materializes *probability runs*: each
/// node's arc list split into maximal stretches of equal probability.
/// Under the paper's §7.1 settings the in-arc lists are single runs
/// (weighted cascade: every in-arc of v has p = 1/indeg(v); uniform: one
/// global p; uniform LT likewise), which lets samplers draw geometric
/// skips per run instead of one Bernoulli coin per arc (SamplerMode::kSkip)
/// — exactly, for any graph, since the split never merges unequal
/// probabilities.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes n. Nodes are densely numbered [0, n).
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of directed edges m.
  uint64_t num_edges() const { return static_cast<uint64_t>(out_arcs_.size()); }

  /// Out-arcs of `v`: arcs (v -> a.node) with probability a.prob.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {out_arcs_.data() + out_offsets_[v],
            out_arcs_.data() + out_offsets_[v + 1]};
  }

  /// In-arcs of `v`: arcs (a.node -> v) with probability a.prob.
  std::span<const Arc> InArcs(NodeId v) const {
    return {in_arcs_.data() + in_offsets_[v],
            in_arcs_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  uint64_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of in-arc probabilities of `v`. Under the LT interpretation this is
  /// the total incoming weight; a well-formed LT graph has sums <= 1.
  double InProbSum(NodeId v) const {
    double s = 0;
    for (const Arc& a : InArcs(v)) s += a.prob;
    return s;
  }

  /// Ends (exclusive, local to InArcs(v) — i.e. values in (0, InDegree(v)])
  /// of v's constant-probability in-arc runs, in arc order. Run r spans
  /// [ends[r-1] (or 0), ends[r]) and its probability is the probability of
  /// its first arc.
  std::span<const EdgeIndex> InRunEnds(NodeId v) const {
    return {in_run_ends_.data() + in_run_offsets_[v],
            in_run_ends_.data() + in_run_offsets_[v + 1]};
  }

  /// As InRunEnds, for the out-arc direction.
  std::span<const EdgeIndex> OutRunEnds(NodeId v) const {
    return {out_run_ends_.data() + out_run_offsets_[v],
            out_run_ends_.data() + out_run_offsets_[v + 1]};
  }

  /// Per-run 1 / ln(1-p), aligned with InRunEnds(v) — the precomputed
  /// constant geometric skip draws multiply by (Rng::NextSkip), so the
  /// sampling hot loop pays no log or division per run. Meaningless
  /// (±0 / ±inf) for runs with p >= 1 or p <= 0, which samplers branch
  /// around before drawing.
  std::span<const double> InRunInvLog1mp(NodeId v) const {
    return {in_run_inv_log1mp_.data() + in_run_offsets_[v],
            in_run_inv_log1mp_.data() + in_run_offsets_[v + 1]};
  }

  /// As InRunInvLog1mp, for the out-arc direction.
  std::span<const double> OutRunInvLog1mp(NodeId v) const {
    return {out_run_inv_log1mp_.data() + out_run_offsets_[v],
            out_run_inv_log1mp_.data() + out_run_offsets_[v + 1]};
  }

  uint64_t num_in_runs() const { return in_run_ends_.size(); }
  uint64_t num_out_runs() const { return out_run_ends_.size(); }

  /// Mean arcs per in-run (m / #in-runs); 0 on an edgeless graph. 1.0
  /// means every adjacent in-arc pair differs in probability (skip
  /// sampling degenerates to per-arc); indeg-sized values mean whole
  /// lists are single runs (weighted cascade).
  double AvgInRunLength() const {
    return in_run_ends_.empty() ? 0.0
                                : static_cast<double>(in_arcs_.size()) /
                                      static_cast<double>(in_run_ends_.size());
  }

  /// Mean arcs per out-run; see AvgInRunLength.
  double AvgOutRunLength() const {
    return out_run_ends_.empty()
               ? 0.0
               : static_cast<double>(out_arcs_.size()) /
                     static_cast<double>(out_run_ends_.size());
  }

  /// Order-sensitive 64-bit digest of the full graph content: node count,
  /// both adjacency directions (arc targets AND probability bits), and the
  /// constant-probability run metadata. Two Graphs hash equal iff a
  /// sampler walking them makes identical decisions, which is exactly the
  /// identity the distributed worker handshake must verify — a worker that
  /// reloaded the "same" edge list under a different weight model, edge
  /// order, or undirected flag hashes differently and is rejected instead
  /// of silently diverging from the coordinator's RR streams. O(n + m).
  uint64_t ContentHash() const;

  /// Heap bytes held by the adjacency arrays plus the probability-run
  /// metadata (Figure 12 accounting — the run arrays are real resident
  /// memory and must be charged).
  size_t MemoryBytes() const {
    return (out_offsets_.size() + in_offsets_.size()) * sizeof(EdgeIndex) +
           (out_arcs_.size() + in_arcs_.size()) * sizeof(Arc) +
           (out_run_offsets_.size() + in_run_offsets_.size() +
            out_run_ends_.size() + in_run_ends_.size()) *
               sizeof(EdgeIndex) +
           (out_run_inv_log1mp_.size() + in_run_inv_log1mp_.size()) *
               sizeof(double);
  }

 private:
  friend class GraphBuilder;
  friend void SerializeGraph(const Graph& graph, std::string* out);
  friend Status DeserializeGraph(std::string_view bytes, Graph* graph);

  NodeId num_nodes_ = 0;
  std::vector<EdgeIndex> out_offsets_;  // size n+1
  std::vector<Arc> out_arcs_;           // size m
  std::vector<EdgeIndex> in_offsets_;   // size n+1
  std::vector<Arc> in_arcs_;            // size m

  // Constant-probability run metadata (see class comment). *_run_offsets_
  // index per-node ranges of *_run_ends_ / *_run_inv_log1mp_, exactly
  // like the arc CSR.
  std::vector<EdgeIndex> out_run_offsets_;  // size n+1
  std::vector<EdgeIndex> out_run_ends_;     // size #out-runs
  std::vector<double> out_run_inv_log1mp_;  // size #out-runs
  std::vector<EdgeIndex> in_run_offsets_;   // size n+1
  std::vector<EdgeIndex> in_run_ends_;      // size #in-runs
  std::vector<double> in_run_inv_log1mp_;   // size #in-runs
};

/// Splits each node's arc list into maximal equal-probability runs (exact
/// float comparison) — the metadata geometric skip sampling walks. Shared
/// by GraphBuilder::Build and graph deserialization so both derive
/// identical run structure from identical adjacency.
void ComputeProbabilityRuns(NodeId n, const std::vector<EdgeIndex>& offsets,
                            const std::vector<Arc>& arcs,
                            std::vector<EdgeIndex>* run_offsets,
                            std::vector<EdgeIndex>* run_ends,
                            std::vector<double>* run_inv_log1mp);

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_H_
