// Immutable directed graph in CSR form with per-edge propagation
// probabilities, materializing both the forward adjacency (out-arcs, used by
// forward diffusion simulation) and the transpose adjacency (in-arcs, used
// by reverse-reachable-set sampling; the paper calls the transpose G^T).
#ifndef TIMPP_GRAPH_GRAPH_H_
#define TIMPP_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace timpp {

/// One directed arc endpoint as seen from an adjacency list: the other
/// endpoint plus the propagation probability p(e) of the underlying edge.
struct Arc {
  NodeId node;
  float prob;
};

/// Immutable weighted directed graph. Construct via GraphBuilder.
///
/// Both adjacency directions are stored because the algorithms in the paper
/// need both: forward Monte-Carlo simulation of a cascade walks out-arcs,
/// while randomized reverse BFS (RR-set generation, Definition 2) walks
/// in-arcs. Arc order within a list follows insertion order of the builder.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes n. Nodes are densely numbered [0, n).
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of directed edges m.
  uint64_t num_edges() const { return static_cast<uint64_t>(out_arcs_.size()); }

  /// Out-arcs of `v`: arcs (v -> a.node) with probability a.prob.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {out_arcs_.data() + out_offsets_[v],
            out_arcs_.data() + out_offsets_[v + 1]};
  }

  /// In-arcs of `v`: arcs (a.node -> v) with probability a.prob.
  std::span<const Arc> InArcs(NodeId v) const {
    return {in_arcs_.data() + in_offsets_[v],
            in_arcs_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(NodeId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }

  uint64_t InDegree(NodeId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Sum of in-arc probabilities of `v`. Under the LT interpretation this is
  /// the total incoming weight; a well-formed LT graph has sums <= 1.
  double InProbSum(NodeId v) const {
    double s = 0;
    for (const Arc& a : InArcs(v)) s += a.prob;
    return s;
  }

  /// Heap bytes held by the adjacency arrays (Figure 12 accounting).
  size_t MemoryBytes() const {
    return (out_offsets_.size() + in_offsets_.size()) * sizeof(EdgeIndex) +
           (out_arcs_.size() + in_arcs_.size()) * sizeof(Arc);
  }

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  std::vector<EdgeIndex> out_offsets_;  // size n+1
  std::vector<Arc> out_arcs_;           // size m
  std::vector<EdgeIndex> in_offsets_;   // size n+1
  std::vector<Arc> in_arcs_;            // size m
};

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_H_
