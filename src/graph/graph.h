// Immutable directed graph in CSR form with per-edge propagation
// probabilities, materializing both the forward adjacency (out-arcs, used by
// forward diffusion simulation) and the transpose adjacency (in-arcs, used
// by reverse-reachable-set sampling; the paper calls the transpose G^T).
#ifndef TIMPP_GRAPH_GRAPH_H_
#define TIMPP_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "graph/graph_storage.h"
#include "util/types.h"

namespace timpp {

/// Minimum average constant-probability run length at which
/// SamplerMode::kAuto switches a traversal from per-arc coins to geometric
/// skips: each skip draw costs two log() evaluations, so runs must be long
/// enough to amortize them against the per-arc coin it replaces.
inline constexpr double kSkipRunLengthThreshold = 4.0;

/// Immutable weighted directed graph. Construct via GraphBuilder (resident
/// vectors) or graph_io's OpenGraphImage (read-only mmap of a serialized
/// CSR image); either way the arrays live in a GraphStorage backend and
/// Graph reads them through a GraphView captured at construction, so the
/// accessors below compile to the same span arithmetic for every backend.
///
/// Both adjacency directions are stored because the algorithms in the paper
/// need both: forward Monte-Carlo simulation of a cascade walks out-arcs,
/// while randomized reverse BFS (RR-set generation, Definition 2) walks
/// in-arcs. Arc order within a list follows insertion order of the builder.
///
/// Alongside the arcs the builder materializes *probability runs*: each
/// node's arc list split into maximal stretches of equal probability.
/// Under the paper's §7.1 settings the in-arc lists are single runs
/// (weighted cascade: every in-arc of v has p = 1/indeg(v); uniform: one
/// global p; uniform LT likewise), which lets samplers draw geometric
/// skips per run instead of one Bernoulli coin per arc (SamplerMode::kSkip)
/// — exactly, for any graph, since the split never merges unequal
/// probabilities.
///
/// Copies are cheap: they share the immutable storage backend.
class Graph {
 public:
  Graph() = default;

  /// Adopts a storage backend; the view is captured once here.
  explicit Graph(std::shared_ptr<const GraphStorage> storage)
      : storage_(std::move(storage)), v_(storage_->view()) {}

  /// Number of nodes n. Nodes are densely numbered [0, n).
  NodeId num_nodes() const { return v_.num_nodes; }

  /// Number of directed edges m.
  uint64_t num_edges() const {
    return static_cast<uint64_t>(v_.out_arcs.size());
  }

  /// Out-arcs of `v`: arcs (v -> a.node) with probability a.prob.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {v_.out_arcs.data() + v_.out_offsets[v],
            v_.out_arcs.data() + v_.out_offsets[v + 1]};
  }

  /// In-arcs of `v`: arcs (a.node -> v) with probability a.prob.
  std::span<const Arc> InArcs(NodeId v) const {
    return {v_.in_arcs.data() + v_.in_offsets[v],
            v_.in_arcs.data() + v_.in_offsets[v + 1]};
  }

  uint64_t OutDegree(NodeId v) const {
    return v_.out_offsets[v + 1] - v_.out_offsets[v];
  }

  uint64_t InDegree(NodeId v) const {
    return v_.in_offsets[v + 1] - v_.in_offsets[v];
  }

  /// Sum of in-arc probabilities of `v`. Under the LT interpretation this is
  /// the total incoming weight; a well-formed LT graph has sums <= 1.
  double InProbSum(NodeId v) const {
    double s = 0;
    for (const Arc& a : InArcs(v)) s += a.prob;
    return s;
  }

  /// Ends (exclusive, local to InArcs(v) — i.e. values in (0, InDegree(v)])
  /// of v's constant-probability in-arc runs, in arc order. Run r spans
  /// [ends[r-1] (or 0), ends[r]) and its probability is the probability of
  /// its first arc.
  std::span<const EdgeIndex> InRunEnds(NodeId v) const {
    return {v_.in_run_ends.data() + v_.in_run_offsets[v],
            v_.in_run_ends.data() + v_.in_run_offsets[v + 1]};
  }

  /// As InRunEnds, for the out-arc direction.
  std::span<const EdgeIndex> OutRunEnds(NodeId v) const {
    return {v_.out_run_ends.data() + v_.out_run_offsets[v],
            v_.out_run_ends.data() + v_.out_run_offsets[v + 1]};
  }

  /// Per-run 1 / ln(1-p), aligned with InRunEnds(v) — the precomputed
  /// constant geometric skip draws multiply by (Rng::NextSkip), so the
  /// sampling hot loop pays no log or division per run. Meaningless
  /// (±0 / ±inf) for runs with p >= 1 or p <= 0, which samplers branch
  /// around before drawing.
  std::span<const double> InRunInvLog1mp(NodeId v) const {
    return {v_.in_run_inv_log1mp.data() + v_.in_run_offsets[v],
            v_.in_run_inv_log1mp.data() + v_.in_run_offsets[v + 1]};
  }

  /// As InRunInvLog1mp, for the out-arc direction.
  std::span<const double> OutRunInvLog1mp(NodeId v) const {
    return {v_.out_run_inv_log1mp.data() + v_.out_run_offsets[v],
            v_.out_run_inv_log1mp.data() + v_.out_run_offsets[v + 1]};
  }

  uint64_t num_in_runs() const { return v_.in_run_ends.size(); }
  uint64_t num_out_runs() const { return v_.out_run_ends.size(); }

  /// Mean arcs per in-run (m / #in-runs); 0 on an edgeless graph. 1.0
  /// means every adjacent in-arc pair differs in probability (skip
  /// sampling degenerates to per-arc); indeg-sized values mean whole
  /// lists are single runs (weighted cascade).
  double AvgInRunLength() const {
    return v_.in_run_ends.empty()
               ? 0.0
               : static_cast<double>(v_.in_arcs.size()) /
                     static_cast<double>(v_.in_run_ends.size());
  }

  /// Mean arcs per out-run; see AvgInRunLength.
  double AvgOutRunLength() const {
    return v_.out_run_ends.empty()
               ? 0.0
               : static_cast<double>(v_.out_arcs.size()) /
                     static_cast<double>(v_.out_run_ends.size());
  }

  /// Order-sensitive 64-bit digest of the full graph content: node count,
  /// both adjacency directions (arc targets AND probability bits), and the
  /// constant-probability run metadata. Two Graphs hash equal iff a
  /// sampler walking them makes identical decisions, which is exactly the
  /// identity the distributed worker handshake must verify — a worker that
  /// reloaded the "same" edge list under a different weight model, edge
  /// order, or undirected flag hashes differently and is rejected instead
  /// of silently diverging from the coordinator's RR streams. The digest
  /// is a function of the view alone, so resident and mmap backends of the
  /// same graph hash identically. O(n + m).
  uint64_t ContentHash() const;

  /// Heap bytes the storage backend holds resident (Figure 12 accounting —
  /// the run arrays are real resident memory and must be charged). For a
  /// mapped backend this excludes the mapped adjacency; see MappedBytes.
  size_t MemoryBytes() const {
    return storage_ ? storage_->ResidentBytes() : 0;
  }

  /// Bytes served through a read-only file mapping (0 for the resident
  /// backend).
  size_t MappedBytes() const { return storage_ ? storage_->MappedBytes() : 0; }

  /// Storage backend name: "resident" or "mmap" ("none" before adoption).
  const char* storage_kind() const {
    return storage_ ? storage_->kind() : "none";
  }

  /// The raw array view (serialization reads the arrays through this).
  const GraphView& view() const { return v_; }

 private:
  std::shared_ptr<const GraphStorage> storage_;
  GraphView v_;
};

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_H_
