#include "graph/graph_storage.h"

#include <cmath>

namespace timpp {

void ComputeProbabilityRuns(NodeId n, std::span<const EdgeIndex> offsets,
                            std::span<const Arc> arcs,
                            std::vector<EdgeIndex>* run_offsets,
                            std::vector<EdgeIndex>* run_ends,
                            std::vector<double>* run_inv_log1mp) {
  run_offsets->assign(n + 1, 0);
  run_ends->clear();
  run_inv_log1mp->clear();
  for (NodeId v = 0; v < n; ++v) {
    const EdgeIndex begin = offsets[v];
    const EdgeIndex end = offsets[v + 1];
    EdgeIndex run_begin = begin;
    for (EdgeIndex e = begin; e < end; ++e) {
      if (e + 1 == end || arcs[e + 1].prob != arcs[e].prob) {
        run_ends->push_back(e + 1 - begin);  // end local to the node
        // 1/ln(1-p): the constant geometric skip draws multiply by.
        // ±0/±inf for p >= 1 / p <= 0 — samplers branch around those
        // runs and never read the value.
        run_inv_log1mp->push_back(
            1.0 / std::log1p(-static_cast<double>(arcs[run_begin].prob)));
        run_begin = e + 1;
      }
    }
    (*run_offsets)[v + 1] = run_ends->size();
  }
}

void GraphArrays::DeriveRuns() {
  ComputeProbabilityRuns(num_nodes, out_offsets, out_arcs, &out_run_offsets,
                         &out_run_ends, &out_run_inv_log1mp);
  ComputeProbabilityRuns(num_nodes, in_offsets, in_arcs, &in_run_offsets,
                         &in_run_ends, &in_run_inv_log1mp);
}

GraphView GraphArrays::View() const {
  GraphView v;
  v.num_nodes = num_nodes;
  v.out_offsets = out_offsets;
  v.out_arcs = out_arcs;
  v.in_offsets = in_offsets;
  v.in_arcs = in_arcs;
  v.out_run_offsets = out_run_offsets;
  v.out_run_ends = out_run_ends;
  v.out_run_inv_log1mp = out_run_inv_log1mp;
  v.in_run_offsets = in_run_offsets;
  v.in_run_ends = in_run_ends;
  v.in_run_inv_log1mp = in_run_inv_log1mp;
  return v;
}

}  // namespace timpp
