#include "graph/weight_models.h"

#include <vector>

#include "util/rng.h"

namespace timpp {

namespace {

// In-degree of every node given the builder's current edge list.
std::vector<uint64_t> CountInDegrees(const GraphBuilder& builder) {
  std::vector<uint64_t> indeg(builder.num_nodes(), 0);
  for (const RawEdge& e : builder.edges()) ++indeg[e.to];
  return indeg;
}

}  // namespace

void AssignWeightedCascade(GraphBuilder* builder) {
  std::vector<uint64_t> indeg = CountInDegrees(*builder);
  for (RawEdge& e : builder->edges()) {
    e.prob = indeg[e.to] > 0 ? 1.0f / static_cast<float>(indeg[e.to]) : 0.0f;
  }
}

void AssignUniform(GraphBuilder* builder, float p) {
  for (RawEdge& e : builder->edges()) e.prob = p;
}

void AssignTrivalency(GraphBuilder* builder, uint64_t seed) {
  static constexpr float kLevels[3] = {0.1f, 0.01f, 0.001f};
  Rng rng(seed);
  for (RawEdge& e : builder->edges()) {
    e.prob = kLevels[rng.NextBounded(3)];
  }
}

void AssignRandomLT(GraphBuilder* builder, uint64_t seed) {
  Rng rng(seed);
  // Draw raw weights, then normalize per target node.
  std::vector<double> sums(builder->num_nodes(), 0.0);
  for (RawEdge& e : builder->edges()) {
    e.prob = static_cast<float>(rng.NextDouble());
    sums[e.to] += e.prob;
  }
  for (RawEdge& e : builder->edges()) {
    if (sums[e.to] > 0.0) {
      e.prob = static_cast<float>(e.prob / sums[e.to]);
    }
  }
}

void AssignUniformLT(GraphBuilder* builder) {
  // Identical arithmetic to weighted cascade; kept as a named pass because
  // the semantics differ (LT weight vs IC probability).
  AssignWeightedCascade(builder);
}

}  // namespace timpp
