// Mutable edge accumulator that produces immutable CSR Graphs.
#ifndef TIMPP_GRAPH_GRAPH_BUILDER_H_
#define TIMPP_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// A raw directed edge with its propagation probability.
struct RawEdge {
  NodeId from;
  NodeId to;
  float prob;
};

/// Accumulates edges, then freezes them into a Graph.
///
/// Usage:
///   GraphBuilder b;
///   b.AddEdge(0, 1, 0.5);
///   b.AddUndirectedEdge(1, 2, 0.1);   // inserts both arcs
///   AssignWeightedCascade(&b);        // optional weight model pass
///   Graph g;
///   Status s = b.Build(&g);
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares at least `n` nodes (ids [0, n) exist even if isolated).
  void ReserveNodes(NodeId n);

  /// Pre-allocates storage for `m` edges.
  void ReserveEdges(size_t m) { edges_.reserve(m); }

  /// Adds directed edge from -> to with probability `prob`.
  void AddEdge(NodeId from, NodeId to, float prob = 1.0f);

  /// Adds both directions with the same probability.
  void AddUndirectedEdge(NodeId u, NodeId v, float prob = 1.0f);

  /// Number of nodes implied so far (max endpoint + 1, or ReserveNodes).
  NodeId num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  /// Mutable access for weight-model passes (graph/weight_models.h).
  std::vector<RawEdge>& edges() { return edges_; }
  const std::vector<RawEdge>& edges() const { return edges_; }

  /// Removes exact duplicate (from, to) pairs, keeping the first occurrence.
  /// Parallel edges are otherwise legal (the IC model treats each as an
  /// independent activation chance).
  void DeduplicateEdges();

  /// Removes self-loops (u -> u); they never affect spread (a seed is
  /// already active; a non-seed cannot activate itself).
  void RemoveSelfLoops();

  /// Freezes into `*out`. Fails with InvalidArgument if any probability is
  /// outside [0, 1] or not finite. The builder remains reusable.
  Status Build(Graph* out) const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<RawEdge> edges_;
};

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_BUILDER_H_
