#include "graph/graph_stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace timpp {

GraphStats ComputeGraphStats(const Graph& graph) {
  GraphStats stats;
  const NodeId n = graph.num_nodes();
  stats.num_nodes = n;
  stats.num_edges = graph.num_edges();
  stats.avg_out_degree =
      n > 0 ? static_cast<double>(stats.num_edges) / static_cast<double>(n)
            : 0.0;

  for (NodeId v = 0; v < n; ++v) {
    stats.max_out_degree = std::max(stats.max_out_degree, graph.OutDegree(v));
    stats.max_in_degree = std::max(stats.max_in_degree, graph.InDegree(v));
    if (graph.OutDegree(v) == 0 && graph.InDegree(v) == 0) {
      ++stats.num_isolated;
    }
  }

  // Weakly connected components via BFS over the union of both directions.
  std::vector<NodeId> component(n, kInvalidNode);
  std::vector<NodeId> queue;
  NodeId next_component = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (component[root] != kInvalidNode) continue;
    uint64_t size = 0;
    component[root] = next_component;
    queue.clear();
    queue.push_back(root);
    while (!queue.empty()) {
      NodeId v = queue.back();
      queue.pop_back();
      ++size;
      for (const Arc& a : graph.OutArcs(v)) {
        if (component[a.node] == kInvalidNode) {
          component[a.node] = next_component;
          queue.push_back(a.node);
        }
      }
      for (const Arc& a : graph.InArcs(v)) {
        if (component[a.node] == kInvalidNode) {
          component[a.node] = next_component;
          queue.push_back(a.node);
        }
      }
    }
    stats.largest_weak_component = std::max(stats.largest_weak_component, size);
    ++next_component;
  }
  stats.num_weak_components = next_component;
  return stats;
}

std::vector<uint64_t> OutDegreeHistogram(const Graph& graph,
                                         uint64_t max_degree) {
  std::vector<uint64_t> hist(max_degree + 1, 0);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    uint64_t d = std::min(graph.OutDegree(v), max_degree);
    ++hist[d];
  }
  return hist;
}

std::string FormatTable2Row(const std::string& name, const Graph& graph,
                            bool undirected) {
  // The paper's Table 2 counts an undirected dataset's edges once (arcs are
  // stored both ways internally) and reports average degree as 2m/n.
  const double n = static_cast<double>(graph.num_nodes());
  const double arcs = static_cast<double>(graph.num_edges());
  const double m = undirected ? arcs / 2.0 : arcs;
  const double avg_degree = n > 0 ? 2.0 * m / n : 0.0;

  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-12s %10u %12llu  %-10s %8.1f", name.c_str(),
                graph.num_nodes(), static_cast<unsigned long long>(m),
                undirected ? "undirected" : "directed", avg_degree);
  return std::string(buf);
}

}  // namespace timpp
