#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace timpp {

namespace {

constexpr char kMagic[4] = {'T', 'I', 'M', 'G'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status ReadEdgeList(const std::string& path, const EdgeListOptions& options,
                    GraphBuilder* builder) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blank and comment lines.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (options.comment_chars.find(line[start]) != std::string::npos) continue;

    std::istringstream ss(line);
    long long u = -1, v = -1;
    double p = options.default_prob;
    if (!(ss >> u >> v)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 'u v [p]'");
    }
    ss >> p;  // optional third column; keeps default on failure
    if (u < 0 || v < 0) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": negative node id");
    }
    const NodeId from = static_cast<NodeId>(u);
    const NodeId to = static_cast<NodeId>(v);
    const float prob = static_cast<float>(p);
    if (options.undirected) {
      builder->AddUndirectedEdge(from, to, prob);
    } else {
      builder->AddEdge(from, to, prob);
    }
  }
  return Status::OK();
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# timpp edge list: n=" << graph.num_nodes()
      << " m=" << graph.num_edges() << "\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      out << v << ' ' << a.node << ' ' << a.prob << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

namespace {

// Stream cores shared by the file and in-memory forms; `name` labels error
// messages (a path, or a transport description).
Status WriteBinaryStream(const Graph& graph, std::ostream& out,
                         const std::string& name) {
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  uint64_t n = graph.num_nodes();
  uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      uint32_t from = v;
      out.write(reinterpret_cast<const char*>(&from), sizeof(from));
      out.write(reinterpret_cast<const char*>(&a.node), sizeof(a.node));
      out.write(reinterpret_cast<const char*>(&a.prob), sizeof(a.prob));
    }
  }
  if (!out) return Status::IOError("write failure on " + name);
  return Status::OK();
}

Status ReadBinaryStream(std::istream& in, const std::string& name,
                        Graph* graph) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(name + ": bad magic");
  }
  uint32_t version = 0;
  uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) return Status::Corruption(name + ": truncated header");
  if (version != kVersion) {
    return Status::Corruption(name + ": unsupported version " +
                              std::to_string(version));
  }

  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(n));
  builder.ReserveEdges(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t from = 0, to = 0;
    float prob = 0;
    in.read(reinterpret_cast<char*>(&from), sizeof(from));
    in.read(reinterpret_cast<char*>(&to), sizeof(to));
    in.read(reinterpret_cast<char*>(&prob), sizeof(prob));
    if (!in) return Status::Corruption(name + ": truncated edge records");
    builder.AddEdge(from, to, prob);
  }
  return builder.Build(graph);
}

}  // namespace

Status WriteBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteBinaryStream(graph, out, path);
}

Status ReadBinary(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadBinaryStream(in, path, graph);
}

namespace {

// Image format of the in-memory transport. This is NOT the edge-triple
// container above: the triple walk canonicalizes through GraphBuilder,
// which preserves each direction's arc multiset but can permute IN-arc
// order (in-lists follow builder insertion order, and a CSR walk reorders
// the insertions). Reverse traversals consume in-arc order, so the
// distributed handshake needs the exact adjacency image — both CSR
// directions verbatim; run metadata re-derived (a pure function of the
// arcs, via the shared ComputeProbabilityRuns).
constexpr char kImageMagic[4] = {'T', 'I', 'M', 'I'};
constexpr uint32_t kImageVersion = 1;

template <typename T>
void AppendVector(std::string* out, const std::vector<T>& v) {
  const uint64_t count = v.size();
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  out->append(reinterpret_cast<const char*>(v.data()), count * sizeof(T));
}

template <typename T>
bool TakeVector(std::string_view* in, uint64_t max_count, std::vector<T>* v) {
  uint64_t count = 0;
  if (in->size() < sizeof(count)) return false;
  std::memcpy(&count, in->data(), sizeof(count));
  in->remove_prefix(sizeof(count));
  if (count > max_count || in->size() < count * sizeof(T)) return false;
  v->resize(count);
  std::memcpy(v->data(), in->data(), count * sizeof(T));
  in->remove_prefix(count * sizeof(T));
  return true;
}

// CSR sanity: offsets are a monotone [0..m] ramp of size n+1 and every
// arc endpoint is a valid node.
bool ValidCsr(NodeId n, uint64_t m, const std::vector<EdgeIndex>& offsets,
              const std::vector<Arc>& arcs) {
  if (offsets.size() != static_cast<size_t>(n) + 1) return false;
  if (arcs.size() != m) return false;
  if (offsets.front() != 0 || offsets.back() != m) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  for (const Arc& a : arcs) {
    if (a.node >= n) return false;
  }
  return true;
}

}  // namespace

void SerializeGraph(const Graph& graph, std::string* out) {
  out->clear();
  out->append(kImageMagic, sizeof(kImageMagic));
  const uint32_t version = kImageVersion;
  const uint64_t n = graph.num_nodes_;
  out->append(reinterpret_cast<const char*>(&version), sizeof(version));
  out->append(reinterpret_cast<const char*>(&n), sizeof(n));
  AppendVector(out, graph.out_offsets_);
  AppendVector(out, graph.out_arcs_);
  AppendVector(out, graph.in_offsets_);
  AppendVector(out, graph.in_arcs_);
}

Status DeserializeGraph(std::string_view bytes, Graph* graph) {
  const Status corrupt = Status::Corruption("inline graph: malformed image");
  if (bytes.size() < sizeof(kImageMagic) + sizeof(uint32_t) +
                         sizeof(uint64_t) ||
      std::memcmp(bytes.data(), kImageMagic, sizeof(kImageMagic)) != 0) {
    return Status::Corruption("inline graph: bad magic");
  }
  bytes.remove_prefix(sizeof(kImageMagic));
  uint32_t version = 0;
  std::memcpy(&version, bytes.data(), sizeof(version));
  bytes.remove_prefix(sizeof(version));
  if (version != kImageVersion) {
    return Status::Corruption("inline graph: unsupported version " +
                              std::to_string(version));
  }
  uint64_t n = 0;
  std::memcpy(&n, bytes.data(), sizeof(n));
  bytes.remove_prefix(sizeof(n));
  if (n > std::numeric_limits<NodeId>::max()) return corrupt;

  Graph g;
  g.num_nodes_ = static_cast<NodeId>(n);
  const uint64_t max_entries = bytes.size();  // tighter than any real bound
  if (!TakeVector(&bytes, max_entries, &g.out_offsets_) ||
      !TakeVector(&bytes, max_entries, &g.out_arcs_) ||
      !TakeVector(&bytes, max_entries, &g.in_offsets_) ||
      !TakeVector(&bytes, max_entries, &g.in_arcs_) ||
      !bytes.empty()) {
    return corrupt;
  }
  const uint64_t m = g.out_arcs_.size();
  if (!ValidCsr(g.num_nodes_, m, g.out_offsets_, g.out_arcs_) ||
      !ValidCsr(g.num_nodes_, m, g.in_offsets_, g.in_arcs_)) {
    return corrupt;
  }
  ComputeProbabilityRuns(g.num_nodes_, g.out_offsets_, g.out_arcs_,
                         &g.out_run_offsets_, &g.out_run_ends_,
                         &g.out_run_inv_log1mp_);
  ComputeProbabilityRuns(g.num_nodes_, g.in_offsets_, g.in_arcs_,
                         &g.in_run_offsets_, &g.in_run_ends_,
                         &g.in_run_inv_log1mp_);
  *graph = std::move(g);
  return Status::OK();
}

}  // namespace timpp
