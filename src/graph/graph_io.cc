#include "graph/graph_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace timpp {

namespace {

constexpr char kMagic[4] = {'T', 'I', 'M', 'G'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status ReadEdgeList(const std::string& path, const EdgeListOptions& options,
                    GraphBuilder* builder) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blank and comment lines.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (options.comment_chars.find(line[start]) != std::string::npos) continue;

    std::istringstream ss(line);
    long long u = -1, v = -1;
    double p = options.default_prob;
    if (!(ss >> u >> v)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 'u v [p]'");
    }
    ss >> p;  // optional third column; keeps default on failure
    if (u < 0 || v < 0) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": negative node id");
    }
    const NodeId from = static_cast<NodeId>(u);
    const NodeId to = static_cast<NodeId>(v);
    const float prob = static_cast<float>(p);
    if (options.undirected) {
      builder->AddUndirectedEdge(from, to, prob);
    } else {
      builder->AddEdge(from, to, prob);
    }
  }
  return Status::OK();
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# timpp edge list: n=" << graph.num_nodes()
      << " m=" << graph.num_edges() << "\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      out << v << ' ' << a.node << ' ' << a.prob << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Status WriteBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  uint64_t n = graph.num_nodes();
  uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      uint32_t from = v;
      out.write(reinterpret_cast<const char*>(&from), sizeof(from));
      out.write(reinterpret_cast<const char*>(&a.node), sizeof(a.node));
      out.write(reinterpret_cast<const char*>(&a.prob), sizeof(a.prob));
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Status ReadBinary(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(path + ": bad magic");
  }
  uint32_t version = 0;
  uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) return Status::Corruption(path + ": truncated header");
  if (version != kVersion) {
    return Status::Corruption(path + ": unsupported version " +
                              std::to_string(version));
  }

  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(n));
  builder.ReserveEdges(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t from = 0, to = 0;
    float prob = 0;
    in.read(reinterpret_cast<char*>(&from), sizeof(from));
    in.read(reinterpret_cast<char*>(&to), sizeof(to));
    in.read(reinterpret_cast<char*>(&prob), sizeof(prob));
    if (!in) return Status::Corruption(path + ": truncated edge records");
    builder.AddEdge(from, to, prob);
  }
  return builder.Build(graph);
}

}  // namespace timpp
