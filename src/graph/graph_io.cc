#include "graph/graph_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace timpp {

namespace {

constexpr char kMagic[4] = {'T', 'I', 'M', 'G'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status ReadEdgeList(const std::string& path, const EdgeListOptions& options,
                    GraphBuilder* builder) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blank and comment lines.
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    if (options.comment_chars.find(line[start]) != std::string::npos) continue;

    std::istringstream ss(line);
    long long u = -1, v = -1;
    double p = options.default_prob;
    if (!(ss >> u >> v)) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": expected 'u v [p]'");
    }
    ss >> p;  // optional third column; keeps default on failure
    if (u < 0 || v < 0) {
      return Status::Corruption(path + ":" + std::to_string(line_no) +
                                ": negative node id");
    }
    const NodeId from = static_cast<NodeId>(u);
    const NodeId to = static_cast<NodeId>(v);
    const float prob = static_cast<float>(p);
    if (options.undirected) {
      builder->AddUndirectedEdge(from, to, prob);
    } else {
      builder->AddEdge(from, to, prob);
    }
  }
  return Status::OK();
}

Status WriteEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << "# timpp edge list: n=" << graph.num_nodes()
      << " m=" << graph.num_edges() << "\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      out << v << ' ' << a.node << ' ' << a.prob << '\n';
    }
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

namespace {

// Stream cores shared by the file and in-memory forms; `name` labels error
// messages (a path, or a transport description).
Status WriteBinaryStream(const Graph& graph, std::ostream& out,
                         const std::string& name) {
  out.write(kMagic, sizeof(kMagic));
  uint32_t version = kVersion;
  uint64_t n = graph.num_nodes();
  uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));

  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      uint32_t from = v;
      out.write(reinterpret_cast<const char*>(&from), sizeof(from));
      out.write(reinterpret_cast<const char*>(&a.node), sizeof(a.node));
      out.write(reinterpret_cast<const char*>(&a.prob), sizeof(a.prob));
    }
  }
  if (!out) return Status::IOError("write failure on " + name);
  return Status::OK();
}

Status ReadBinaryStream(std::istream& in, const std::string& name,
                        Graph* graph) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(name + ": bad magic");
  }
  uint32_t version = 0;
  uint64_t n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) return Status::Corruption(name + ": truncated header");
  if (version != kVersion) {
    return Status::Corruption(name + ": unsupported version " +
                              std::to_string(version));
  }

  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(n));
  builder.ReserveEdges(m);
  for (uint64_t i = 0; i < m; ++i) {
    uint32_t from = 0, to = 0;
    float prob = 0;
    in.read(reinterpret_cast<char*>(&from), sizeof(from));
    in.read(reinterpret_cast<char*>(&to), sizeof(to));
    in.read(reinterpret_cast<char*>(&prob), sizeof(prob));
    if (!in) return Status::Corruption(name + ": truncated edge records");
    builder.AddEdge(from, to, prob);
  }
  return builder.Build(graph);
}

}  // namespace

Status WriteBinary(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  return WriteBinaryStream(graph, out, path);
}

Status ReadBinary(const std::string& path, Graph* graph) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return ReadBinaryStream(in, path, graph);
}

namespace {

// Image format of the in-memory transport. This is NOT the edge-triple
// container above: the triple walk canonicalizes through GraphBuilder,
// which preserves each direction's arc multiset but can permute IN-arc
// order (in-lists follow builder insertion order, and a CSR walk reorders
// the insertions). Reverse traversals consume in-arc order, so the
// distributed handshake needs the exact adjacency image — both CSR
// directions verbatim; run metadata re-derived (a pure function of the
// arcs, via the shared ComputeProbabilityRuns).
constexpr char kImageMagic[4] = {'T', 'I', 'M', 'I'};
constexpr uint32_t kImageVersion = 1;

template <typename T>
void AppendSpan(std::string* out, std::span<const T> v) {
  const uint64_t count = v.size();
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  out->append(reinterpret_cast<const char*>(v.data()), count * sizeof(T));
}

template <typename T>
bool TakeVector(std::string_view* in, uint64_t max_count, std::vector<T>* v) {
  uint64_t count = 0;
  if (in->size() < sizeof(count)) return false;
  std::memcpy(&count, in->data(), sizeof(count));
  in->remove_prefix(sizeof(count));
  if (count > max_count || in->size() < count * sizeof(T)) return false;
  v->resize(count);
  std::memcpy(v->data(), in->data(), count * sizeof(T));
  in->remove_prefix(count * sizeof(T));
  return true;
}

// CSR sanity: offsets are a monotone [0..m] ramp of size n+1 and every
// arc endpoint is a valid node.
bool ValidCsr(NodeId n, uint64_t m, std::span<const EdgeIndex> offsets,
              std::span<const Arc> arcs) {
  if (offsets.size() != static_cast<size_t>(n) + 1) return false;
  if (arcs.size() != m) return false;
  if (offsets.front() != 0 || offsets.back() != m) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  for (const Arc& a : arcs) {
    if (a.node >= n) return false;
  }
  return true;
}

}  // namespace

void SerializeGraph(const Graph& graph, std::string* out) {
  const GraphView& v = graph.view();
  out->clear();
  out->append(kImageMagic, sizeof(kImageMagic));
  const uint32_t version = kImageVersion;
  const uint64_t n = v.num_nodes;
  out->append(reinterpret_cast<const char*>(&version), sizeof(version));
  out->append(reinterpret_cast<const char*>(&n), sizeof(n));
  AppendSpan(out, v.out_offsets);
  AppendSpan(out, v.out_arcs);
  AppendSpan(out, v.in_offsets);
  AppendSpan(out, v.in_arcs);
}

Status DeserializeGraph(std::string_view bytes, Graph* graph) {
  const Status corrupt = Status::Corruption("inline graph: malformed image");
  if (bytes.size() < sizeof(kImageMagic) + sizeof(uint32_t) +
                         sizeof(uint64_t) ||
      std::memcmp(bytes.data(), kImageMagic, sizeof(kImageMagic)) != 0) {
    return Status::Corruption("inline graph: bad magic");
  }
  bytes.remove_prefix(sizeof(kImageMagic));
  uint32_t version = 0;
  std::memcpy(&version, bytes.data(), sizeof(version));
  bytes.remove_prefix(sizeof(version));
  if (version != kImageVersion) {
    return Status::Corruption("inline graph: unsupported version " +
                              std::to_string(version));
  }
  uint64_t n = 0;
  std::memcpy(&n, bytes.data(), sizeof(n));
  bytes.remove_prefix(sizeof(n));
  if (n > std::numeric_limits<NodeId>::max()) return corrupt;

  GraphArrays a;
  a.num_nodes = static_cast<NodeId>(n);
  const uint64_t max_entries = bytes.size();  // tighter than any real bound
  if (!TakeVector(&bytes, max_entries, &a.out_offsets) ||
      !TakeVector(&bytes, max_entries, &a.out_arcs) ||
      !TakeVector(&bytes, max_entries, &a.in_offsets) ||
      !TakeVector(&bytes, max_entries, &a.in_arcs) ||
      !bytes.empty()) {
    return corrupt;
  }
  const uint64_t m = a.out_arcs.size();
  if (!ValidCsr(a.num_nodes, m, a.out_offsets, a.out_arcs) ||
      !ValidCsr(a.num_nodes, m, a.in_offsets, a.in_arcs)) {
    return corrupt;
  }
  a.DeriveRuns();
  *graph = Graph(std::make_shared<OwnedGraphStorage>(std::move(a)));
  return Status::OK();
}

// ------------------------------------------------------ on-disk image --
//
// File layout (everything little-endian, written and read on the same
// architecture class):
//
//   offset  0: char[8]  "TIMPPIMG"
//   offset  8: u32      file format version (1)
//   offset 12: u32      reserved (0)
//   offset 16: u64      payload size in bytes
//   offset 24: u64      Graph::ContentHash of the serialized graph
//   offset 32: payload  — the exact SerializeGraph bytes (TIMI header +
//                         four [u64 count][data] sections)
//
// Every payload element (u64 counts, EdgeIndex offsets, 8-byte Arcs) is 8
// bytes and the payload starts at offset 32, so each section's data is
// 8-byte aligned relative to the (page-aligned) mapping base: the arrays
// can be read in place through reinterpret_cast spans with no copy.

namespace {

constexpr char kFileMagic[8] = {'T', 'I', 'M', 'P', 'P', 'I', 'M', 'G'};
constexpr uint32_t kFileVersion = 1;
constexpr size_t kFileHeaderBytes = 32;

struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t reserved;
  uint64_t payload_size;
  uint64_t content_hash;
};
static_assert(sizeof(FileHeader) == kFileHeaderBytes);

/// Owns the bytes behind a mapped graph image: either a read-only mmap of
/// the whole file or (when mmap is unavailable) a heap copy. The adjacency
/// spans in view() point straight into those bytes; only the derived run
/// metadata lives in owned vectors. Immutable after construction.
class MmapGraphImage final : public GraphStorage {
 public:
  MmapGraphImage(void* map_addr, size_t map_len,
                 std::vector<uint64_t> heap_copy, NodeId n,
                 std::span<const EdgeIndex> out_offsets,
                 std::span<const Arc> out_arcs,
                 std::span<const EdgeIndex> in_offsets,
                 std::span<const Arc> in_arcs)
      : map_addr_(map_addr),
        map_len_(map_len),
        heap_copy_(std::move(heap_copy)) {
    view_.num_nodes = n;
    view_.out_offsets = out_offsets;
    view_.out_arcs = out_arcs;
    view_.in_offsets = in_offsets;
    view_.in_arcs = in_arcs;
    // Run metadata is a pure function of the adjacency (the same shared
    // derivation every backend uses), materialized on the heap: it is
    // small (one entry per constant-probability run) and not part of the
    // serialized payload.
    ComputeProbabilityRuns(n, out_offsets, out_arcs, &runs_.out_run_offsets,
                           &runs_.out_run_ends, &runs_.out_run_inv_log1mp);
    ComputeProbabilityRuns(n, in_offsets, in_arcs, &runs_.in_run_offsets,
                           &runs_.in_run_ends, &runs_.in_run_inv_log1mp);
    view_.out_run_offsets = runs_.out_run_offsets;
    view_.out_run_ends = runs_.out_run_ends;
    view_.out_run_inv_log1mp = runs_.out_run_inv_log1mp;
    view_.in_run_offsets = runs_.in_run_offsets;
    view_.in_run_ends = runs_.in_run_ends;
    view_.in_run_inv_log1mp = runs_.in_run_inv_log1mp;
  }

  ~MmapGraphImage() override {
    if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
  }

  MmapGraphImage(const MmapGraphImage&) = delete;
  MmapGraphImage& operator=(const MmapGraphImage&) = delete;

  GraphView view() const override { return view_; }

  size_t ResidentBytes() const override {
    // The heap-copy fallback holds the whole image resident; the mmap path
    // charges only the derived run metadata (mapped pages are reclaimable
    // page cache, accounted under MappedBytes).
    return runs_.HeapBytes() + heap_copy_.size() * sizeof(uint64_t);
  }

  size_t MappedBytes() const override { return map_len_; }

  const char* kind() const override { return "mmap"; }

 private:
  void* map_addr_;
  size_t map_len_;
  std::vector<uint64_t> heap_copy_;  // 8-aligned fallback buffer
  GraphArrays runs_;                 // only the run fields are populated
  GraphView view_;
};

/// Advances `*p` past a [u64 count][count * T] section, pointing `*out`
/// at the data in place. Fails (without advancing past `end`) on
/// truncation or an absurd count.
template <typename T>
bool TakeSpan(const char** p, const char* end, uint64_t max_count,
              std::span<const T>* out) {
  uint64_t count = 0;
  if (static_cast<size_t>(end - *p) < sizeof(count)) return false;
  std::memcpy(&count, *p, sizeof(count));
  *p += sizeof(count);
  if (count > max_count ||
      static_cast<uint64_t>(end - *p) < count * sizeof(T)) {
    return false;
  }
  *out = {reinterpret_cast<const T*>(*p), static_cast<size_t>(count)};
  *p += count * sizeof(T);
  return true;
}

}  // namespace

Status WriteGraphImage(const Graph& graph, const std::string& path) {
  std::string payload;
  SerializeGraph(graph, &payload);

  FileHeader header;
  std::memcpy(header.magic, kFileMagic, sizeof(kFileMagic));
  header.version = kFileVersion;
  header.reserved = 0;
  header.payload_size = payload.size();
  header.content_hash = graph.ContentHash();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

Status OpenGraphImage(const std::string& path, Graph* graph) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  const size_t file_size = static_cast<size_t>(st.st_size);
  if (file_size < kFileHeaderBytes) {
    ::close(fd);
    return Status::Corruption(path + ": truncated image header");
  }

  // Map the whole file read-only; fall back to an 8-aligned heap copy when
  // mmap is unavailable (exotic filesystems). Either way `base` points at
  // the file header and stays valid for the storage object's lifetime.
  void* map_addr = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  std::vector<uint64_t> heap_copy;
  const char* base = nullptr;
  size_t map_len = 0;
  if (map_addr != MAP_FAILED) {
    base = static_cast<const char*>(map_addr);
    map_len = file_size;
  } else {
    map_addr = nullptr;
    heap_copy.resize((file_size + sizeof(uint64_t) - 1) / sizeof(uint64_t));
    size_t off = 0;
    while (off < file_size) {
      const ssize_t got =
          ::read(fd, reinterpret_cast<char*>(heap_copy.data()) + off,
                 file_size - off);
      if (got <= 0) break;
      off += static_cast<size_t>(got);
    }
    if (off != file_size) {
      ::close(fd);
      return Status::IOError("short read on " + path);
    }
    base = reinterpret_cast<const char*>(heap_copy.data());
  }
  ::close(fd);  // the mapping (or copy) outlives the descriptor

  // Single cleanup path for every validation failure below.
  const auto fail = [&](Status status) {
    if (map_addr != nullptr) ::munmap(map_addr, map_len);
    return status;
  };

  FileHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kFileMagic, sizeof(kFileMagic)) != 0) {
    return fail(Status::Corruption(path + ": bad image magic"));
  }
  if (header.version != kFileVersion) {
    return fail(Status::Corruption(path + ": unsupported image version " +
                                   std::to_string(header.version)));
  }
  if (header.payload_size != file_size - kFileHeaderBytes) {
    return fail(Status::Corruption(path + ": truncated image payload"));
  }

  // Parse the payload (the exact SerializeGraph bytes) in place.
  const char* p = base + kFileHeaderBytes;
  const char* const end = p + header.payload_size;
  if (header.payload_size < sizeof(kImageMagic) + sizeof(uint32_t) +
                                sizeof(uint64_t) ||
      std::memcmp(p, kImageMagic, sizeof(kImageMagic)) != 0) {
    return fail(Status::Corruption(path + ": malformed image payload"));
  }
  p += sizeof(kImageMagic);
  uint32_t payload_version = 0;
  std::memcpy(&payload_version, p, sizeof(payload_version));
  p += sizeof(payload_version);
  if (payload_version != kImageVersion) {
    return fail(Status::Corruption(path + ": unsupported payload version " +
                                   std::to_string(payload_version)));
  }
  uint64_t n = 0;
  std::memcpy(&n, p, sizeof(n));
  p += sizeof(n);
  if (n > std::numeric_limits<NodeId>::max()) {
    return fail(Status::Corruption(path + ": malformed image payload"));
  }

  std::span<const EdgeIndex> out_offsets, in_offsets;
  std::span<const Arc> out_arcs, in_arcs;
  const uint64_t max_entries = header.payload_size;
  if (!TakeSpan(&p, end, max_entries, &out_offsets) ||
      !TakeSpan(&p, end, max_entries, &out_arcs) ||
      !TakeSpan(&p, end, max_entries, &in_offsets) ||
      !TakeSpan(&p, end, max_entries, &in_arcs) || p != end) {
    return fail(Status::Corruption(path + ": malformed image payload"));
  }
  const uint64_t m = out_arcs.size();
  if (!ValidCsr(static_cast<NodeId>(n), m, out_offsets, out_arcs) ||
      !ValidCsr(static_cast<NodeId>(n), m, in_offsets, in_arcs)) {
    return fail(Status::Corruption(path + ": invalid CSR in image"));
  }

  // From here the storage object owns the mapping / heap copy.
  Graph candidate(std::make_shared<MmapGraphImage>(
      map_addr, map_len, std::move(heap_copy), static_cast<NodeId>(n),
      out_offsets, out_arcs, in_offsets, in_arcs));

  // The stored hash covers every byte a sampler reads (targets AND
  // probability bits, both directions, run structure); recomputing it over
  // the mapped arrays catches silent payload corruption — e.g. flipped
  // float bits — that shape validation cannot see.
  if (candidate.ContentHash() != header.content_hash) {
    return Status::Corruption(path + ": image content hash mismatch");
  }
  *graph = std::move(candidate);
  return Status::OK();
}

}  // namespace timpp
