// Graph serialization: SNAP-style text edge lists (the format of the
// datasets in Table 2) and a fast binary container.
#ifndef TIMPP_GRAPH_GRAPH_IO_H_
#define TIMPP_GRAPH_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "util/status.h"

namespace timpp {

/// Options for reading text edge lists.
struct EdgeListOptions {
  /// If true, each line "u v" is inserted as two arcs (u->v and v->u), the
  /// convention for the undirected datasets NetHEPT and DBLP.
  bool undirected = false;
  /// Default probability for lines without a third column. Weight-model
  /// passes typically overwrite this afterwards.
  float default_prob = 1.0f;
  /// Lines beginning with these characters are skipped (SNAP uses '#').
  std::string comment_chars = "#%";
};

/// Parses a whitespace-separated edge list ("u v" or "u v p" per line) into
/// `builder` (appending to existing content). Node ids must be non-negative
/// integers; ids are used as-is (no compaction).
Status ReadEdgeList(const std::string& path, const EdgeListOptions& options,
                    GraphBuilder* builder);

/// Writes "from to prob" lines.
Status WriteEdgeList(const Graph& graph, const std::string& path);

/// Binary container: magic, version, n, m, then (from, to, prob) triples.
/// Round-trips exactly (modulo arc ordering, which Build() canonicalizes).
Status WriteBinary(const Graph& graph, const std::string& path);
Status ReadBinary(const std::string& path, Graph* graph);

/// Exact in-memory image — the transport the distributed sampling
/// handshake uses to ship a coordinator's graph to worker processes.
/// Unlike the edge-triple container above (which rebuilds through
/// GraphBuilder and may permute IN-arc order, since in-lists follow
/// builder insertion order), the image preserves both CSR directions
/// verbatim: DeserializeGraph restores a ContentHash-identical Graph, so
/// reverse traversals — and with them every RR set — replay bit-exactly
/// on the worker. Run metadata is re-derived from the arcs (pure
/// function, shared ComputeProbabilityRuns).
void SerializeGraph(const Graph& graph, std::string* out);
Status DeserializeGraph(std::string_view bytes, Graph* graph);

/// On-disk CSR image: a 32-byte file header (magic "TIMPPIMG", format
/// version, payload size, Graph::ContentHash) followed by the exact
/// SerializeGraph payload. Every array element in the payload is 8 bytes
/// and the payload starts at file offset 32, so the arrays are naturally
/// aligned for mapping the file read-only and pointing a GraphStorage
/// view straight into the page cache.
Status WriteGraphImage(const Graph& graph, const std::string& path);

/// Opens a WriteGraphImage file as a Graph backed by a read-only mmap
/// (MmapGraphImage storage; falls back to a heap copy if mmap is
/// unavailable). Only the derived run metadata is materialized on the
/// heap — the adjacency stays in the mapping, and the kernel pages it in
/// on demand. Validates structure (header, section bounds, CSR shape) and
/// content (stored ContentHash recomputed over the mapped arrays); on any
/// failure returns a named Status and leaves `*graph` untouched. The
/// resulting Graph is ContentHash- and RR-stream-identical to the
/// resident Graph the image was written from.
Status OpenGraphImage(const std::string& path, Graph* graph);

}  // namespace timpp

#endif  // TIMPP_GRAPH_GRAPH_IO_H_
