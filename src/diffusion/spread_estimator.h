// Monte-Carlo estimation of the expected spread E[I(S)] (§2.2): run r
// independent cascades and average the activation counts. This is the
// estimator inside Kempe et al.'s Greedy and the measurement instrument for
// the expected-spread figures (5, 9, 11). The exact value is #P-hard.
#ifndef TIMPP_DIFFUSION_SPREAD_ESTIMATOR_H_
#define TIMPP_DIFFUSION_SPREAD_ESTIMATOR_H_

#include <cstdint>
#include <span>

#include "diffusion/triggering.h"
#include "graph/graph.h"
#include "util/types.h"

namespace timpp {

/// Configuration for SpreadEstimator.
struct SpreadEstimatorOptions {
  /// Number of Monte-Carlo cascades per estimate (the paper's r; Kempe et
  /// al. suggest 10000, the figures use 1e5, Lemma 10 gives the bound).
  uint64_t num_samples = 10000;
  /// Worker threads; each runs num_samples/num_threads cascades on its own
  /// forked RNG stream, so results are deterministic in (seed, num_threads).
  unsigned num_threads = 1;
  /// Diffusion model; kTriggering requires `custom_model`.
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; must outlive the estimator. Used when model == kTriggering.
  const TriggeringModel* custom_model = nullptr;
  /// Bound on propagation rounds (0 = unlimited) — time-critical variant.
  uint32_t max_hops = 0;
  /// Arc-decision strategy for the forward IC cascades (see SamplerMode).
  /// LT and triggering simulation never flip per-arc coins and ignore it.
  SamplerMode sampler_mode = SamplerMode::kAuto;
  /// Optional per-node weights (borrowed; size n). When set, Estimate()
  /// returns the expected *weighted* spread Σ w(v)·P[v activated] instead
  /// of the expected activation count.
  const std::vector<double>* node_weights = nullptr;
};

/// Reusable spread estimator bound to one graph.
class SpreadEstimator {
 public:
  SpreadEstimator(const Graph& graph, const SpreadEstimatorOptions& options)
      : graph_(graph), options_(options) {}

  /// Mean activated-node count over options.num_samples cascades seeded
  /// from `seeds`, using `seed` for randomness. Deterministic.
  double Estimate(std::span<const NodeId> seeds, uint64_t seed) const;

 private:
  double EstimateSingleThread(std::span<const NodeId> seeds, uint64_t seed,
                              uint64_t samples) const;

  const Graph& graph_;
  SpreadEstimatorOptions options_;
};

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_SPREAD_ESTIMATOR_H_
