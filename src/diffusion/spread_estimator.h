// Monte-Carlo estimation of the expected spread E[I(S)] (§2.2): run r
// independent cascades and average the activation counts. This is the
// estimator inside Kempe et al.'s Greedy and the measurement instrument for
// the expected-spread figures (5, 9, 11). The exact value is #P-hard.
#ifndef TIMPP_DIFFUSION_SPREAD_ESTIMATOR_H_
#define TIMPP_DIFFUSION_SPREAD_ESTIMATOR_H_

#include <cstdint>
#include <span>

#include "diffusion/triggering.h"
#include "graph/graph.h"
#include "util/types.h"

namespace timpp {

/// Configuration for SpreadEstimator.
struct SpreadEstimatorOptions {
  /// Number of Monte-Carlo cascades per estimate (the paper's r; Kempe et
  /// al. suggest 10000, the figures use 1e5, Lemma 10 gives the bound).
  uint64_t num_samples = 10000;
  /// Worker threads; each runs num_samples/num_threads cascades on its own
  /// forked RNG stream, so results are deterministic in (seed, num_threads).
  unsigned num_threads = 1;
  /// Diffusion model; kTriggering requires `custom_model`.
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; must outlive the estimator. Used when model == kTriggering.
  const TriggeringModel* custom_model = nullptr;
  /// Bound on propagation rounds (0 = unlimited) — time-critical variant.
  uint32_t max_hops = 0;
  /// Arc-decision strategy for the forward IC cascades (see SamplerMode).
  /// LT and triggering simulation never flip per-arc coins and ignore it.
  SamplerMode sampler_mode = SamplerMode::kAuto;
  /// Cascade batching: kBitmap64[Shared] runs ⌊r/64⌋ batches of 64 IC
  /// cascades per traversal through BatchedIcSimulator (plus a scalar
  /// tail for r mod 64) instead of r scalar traversals — near-64×
  /// traversal amortization at an identical estimator distribution
  /// (kBitmap64) or identical mean with correlated lanes
  /// (kBitmap64Shared; see LaneLiveness). IC-model estimates only; LT
  /// and triggering estimation ignore it. Estimates stay deterministic
  /// in (seed, num_threads) for every mode, but the three modes consume
  /// randomness differently, so their values differ within MC noise.
  McBatchMode mc_batch = McBatchMode::kScalar;
  /// Optional per-node weights (borrowed; size n). When set, Estimate()
  /// returns the expected *weighted* spread Σ w(v)·P[v activated] instead
  /// of the expected activation count.
  const std::vector<double>* node_weights = nullptr;
};

/// Reusable spread estimator bound to one graph.
class SpreadEstimator {
 public:
  SpreadEstimator(const Graph& graph, const SpreadEstimatorOptions& options)
      : graph_(graph), options_(options) {}

  /// Mean activated-node count over options.num_samples cascades seeded
  /// from `seeds`, using `seed` for randomness. Deterministic.
  double Estimate(std::span<const NodeId> seeds, uint64_t seed) const;

 private:
  double EstimateSingleThread(std::span<const NodeId> seeds, uint64_t seed,
                              uint64_t samples) const;

  const Graph& graph_;
  SpreadEstimatorOptions options_;
};

/// Configuration for VerifySpread; the defaults are the quality-check
/// sweet spot (10^4 cascades, batched, single-threaded determinism).
struct VerifySpreadOptions {
  uint64_t num_samples = 10000;
  unsigned num_threads = 1;
  DiffusionModel model = DiffusionModel::kIC;
  /// Borrowed; required when model == kTriggering.
  const TriggeringModel* custom_model = nullptr;
  uint32_t max_hops = 0;
  /// Batch mode of the IC cascades — bitmap64 by default, which is the
  /// point: quality checks should not pay the scalar path.
  McBatchMode mc_batch = McBatchMode::kBitmap64;
  uint64_t seed = 0x5eedc4e1ULL;
  /// Optional per-node weights (borrowed; size n) — weighted spread.
  const std::vector<double>* node_weights = nullptr;
};

/// Scores a seed set's expected spread with the batched estimator — the
/// fast spread-verification instrument for tests and benches (Tier-1
/// quality checks measure seed-set quality in MC spread; QuickIM-style
/// evaluation at scale needs this to not be the bottleneck). Equivalent
/// to SpreadEstimator::Estimate with mc_batch = bitmap64: unbiased, and
/// deterministic in (options.seed, options.num_threads).
double VerifySpread(const Graph& graph, std::span<const NodeId> seeds,
                    const VerifySpreadOptions& options = {});

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_SPREAD_ESTIMATOR_H_
