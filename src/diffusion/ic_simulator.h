// Forward Monte-Carlo simulation of one cascade under the independent
// cascade model (§2.1 of the paper).
#ifndef TIMPP_DIFFUSION_IC_SIMULATOR_H_
#define TIMPP_DIFFUSION_IC_SIMULATOR_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/types.h"
#include "util/visit_marker.h"

namespace timpp {

/// Runs IC cascades on a fixed graph. Holds reusable scratch (a visit marker
/// and a BFS queue) so repeated simulations do not allocate. Not thread-safe;
/// create one simulator per thread.
class IcSimulator {
 public:
  /// `mode` picks the arc-decision strategy: kAuto resolves to geometric
  /// skip sampling when the graph's out-arc constant-probability runs are
  /// long enough to amortize it (uniform / trivalency-grouped graphs;
  /// weighted-cascade out-lists mix per-target probabilities and resolve
  /// to per-arc). Both modes simulate the exact IC cascade distribution.
  explicit IcSimulator(const Graph& graph,
                       SamplerMode mode = SamplerMode::kAuto)
      : graph_(graph),
        use_skip_(mode == SamplerMode::kSkip ||
                  (mode == SamplerMode::kAuto &&
                   graph.AvgOutRunLength() >= kSkipRunLengthThreshold)),
        visited_(graph.num_nodes()) {
    queue_.reserve(256);
  }

  /// True when the traversal resolved to geometric skip sampling.
  bool skip_mode() const { return use_skip_; }

  /// Simulates one cascade from `seeds`; returns the number of activated
  /// nodes (including the seeds themselves). Duplicate seeds are counted
  /// once. Equivalent to sampling a live-edge graph g (each edge kept with
  /// p(e)) and counting nodes reachable from the seed set.
  ///
  /// `max_hops` bounds the number of propagation rounds (0 = unlimited):
  /// the time-critical variant where the cascade is cut off after a
  /// deadline (Chen et al., AAAI'12 — cited as [4] by the paper).
  uint64_t Simulate(std::span<const NodeId> seeds, Rng& rng,
                    uint32_t max_hops = 0);

  /// As Simulate(), but also appends every activated node to `*activated`
  /// (cleared first). Used by baselines that need per-node activation data.
  uint64_t SimulateCollect(std::span<const NodeId> seeds, Rng& rng,
                           std::vector<NodeId>* activated,
                           uint32_t max_hops = 0);

 private:
  const Graph& graph_;
  bool use_skip_;
  VisitMarker visited_;
  std::vector<NodeId> queue_;
};

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_IC_SIMULATOR_H_
