// Forward Monte-Carlo simulation of one cascade under the linear threshold
// model, plus a generic simulator for arbitrary triggering models (§4.2).
#ifndef TIMPP_DIFFUSION_LT_SIMULATOR_H_
#define TIMPP_DIFFUSION_LT_SIMULATOR_H_

#include <span>
#include <vector>

#include "diffusion/triggering.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/types.h"
#include "util/visit_marker.h"

namespace timpp {

/// Runs LT cascades using the threshold formulation: node v draws a uniform
/// threshold on first contact and activates once the total weight of its
/// active in-neighbors reaches it. Kempe et al. prove this is equivalent in
/// distribution to the triggering-set formulation (each node picks at most
/// one in-neighbor). Not thread-safe; one simulator per thread.
class LtSimulator {
 public:
  explicit LtSimulator(const Graph& graph)
      : graph_(graph),
        active_(graph.num_nodes()),
        touched_(graph.num_nodes()),
        threshold_(graph.num_nodes(), 0.0),
        weight_in_(graph.num_nodes(), 0.0) {
    queue_.reserve(256);
  }

  /// Simulates one cascade from `seeds`; returns #activated nodes.
  /// `max_hops` bounds propagation rounds (0 = unlimited) for the
  /// time-critical variant.
  uint64_t Simulate(std::span<const NodeId> seeds, Rng& rng,
                    uint32_t max_hops = 0);

 private:
  const Graph& graph_;
  VisitMarker active_;
  VisitMarker touched_;  // has a threshold been drawn this cascade?
  std::vector<double> threshold_;
  std::vector<double> weight_in_;  // active in-weight accumulated so far
  std::vector<NodeId> queue_;
};

/// Forward simulation under an arbitrary triggering model. Each node's
/// triggering set is sampled lazily on first contact and cached for the
/// rest of the cascade (the static live-edge equivalence makes the sampling
/// time immaterial). Not thread-safe.
class TriggeringSimulator {
 public:
  TriggeringSimulator(const Graph& graph, const TriggeringModel& model)
      : graph_(graph),
        model_(model),
        active_(graph.num_nodes()),
        sampled_(graph.num_nodes()),
        trigger_sets_(graph.num_nodes()) {
    queue_.reserve(256);
  }

  /// Simulates one cascade from `seeds`; returns #activated nodes.
  /// `max_hops` bounds propagation rounds (0 = unlimited).
  uint64_t Simulate(std::span<const NodeId> seeds, Rng& rng,
                    uint32_t max_hops = 0);

  /// As Simulate(), but also appends every activated node to `*activated`
  /// (cleared first; may be null).
  uint64_t SimulateCollect(std::span<const NodeId> seeds, Rng& rng,
                           std::vector<NodeId>* activated,
                           uint32_t max_hops = 0);

 private:
  /// Triggering set of `v`, sampling it if this cascade has not yet.
  const std::vector<NodeId>& TriggerSet(NodeId v, Rng& rng);

  const Graph& graph_;
  const TriggeringModel& model_;
  VisitMarker active_;
  VisitMarker sampled_;
  std::vector<std::vector<NodeId>> trigger_sets_;
  std::vector<NodeId> queue_;
};

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_LT_SIMULATOR_H_
