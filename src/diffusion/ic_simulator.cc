#include "diffusion/ic_simulator.h"

namespace timpp {

uint64_t IcSimulator::Simulate(std::span<const NodeId> seeds, Rng& rng,
                               uint32_t max_hops) {
  return SimulateCollect(seeds, rng, nullptr, max_hops);
}

uint64_t IcSimulator::SimulateCollect(std::span<const NodeId> seeds, Rng& rng,
                                      std::vector<NodeId>* activated,
                                      uint32_t max_hops) {
  visited_.NewEpoch();
  queue_.clear();
  if (activated != nullptr) activated->clear();

  uint64_t count = 0;
  for (NodeId s : seeds) {
    if (visited_.VisitIfNew(s)) {
      queue_.push_back(s);
      ++count;
      if (activated != nullptr) activated->push_back(s);
    }
  }

  // BFS over live out-arcs; each arc flips its own coin exactly once, which
  // matches the "activated node gets one chance per outgoing edge" process.
  // Hop bounding tracks the index where the current BFS level ends.
  size_t level_end = queue_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < queue_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = queue_.size();
    }
    if (max_hops != 0 && hops >= max_hops) break;
    NodeId u = queue_[head];
    for (const Arc& a : graph_.OutArcs(u)) {
      if (visited_.Visited(a.node)) continue;
      if (rng.NextBernoulli(a.prob)) {
        visited_.Visit(a.node);
        queue_.push_back(a.node);
        ++count;
        if (activated != nullptr) activated->push_back(a.node);
      }
    }
  }
  return count;
}

}  // namespace timpp
