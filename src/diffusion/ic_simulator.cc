#include "diffusion/ic_simulator.h"

#include "graph/run_sampling.h"

namespace timpp {

uint64_t IcSimulator::Simulate(std::span<const NodeId> seeds, Rng& rng,
                               uint32_t max_hops) {
  return SimulateCollect(seeds, rng, nullptr, max_hops);
}

uint64_t IcSimulator::SimulateCollect(std::span<const NodeId> seeds, Rng& rng,
                                      std::vector<NodeId>* activated,
                                      uint32_t max_hops) {
  visited_.NewEpoch();
  queue_.clear();
  if (activated != nullptr) activated->clear();

  uint64_t count = 0;
  for (NodeId s : seeds) {
    if (visited_.VisitIfNew(s)) {
      queue_.push_back(s);
      ++count;
      if (activated != nullptr) activated->push_back(s);
    }
  }

  // BFS over live out-arcs; each arc flips its own coin exactly once, which
  // matches the "activated node gets one chance per outgoing edge" process.
  // Hop bounding tracks the index where the current BFS level ends. In
  // skip mode the live arcs of each constant-probability run are reached
  // by geometric jumps instead of per-arc coins — the same live-arc
  // distribution at O(1 + live) cost per run.
  size_t level_end = queue_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < queue_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = queue_.size();
    }
    if (max_hops != 0 && hops >= max_hops) break;
    NodeId u = queue_[head];
    const auto arcs = graph_.OutArcs(u);
    const auto try_activate = [&](NodeId w) {
      if (visited_.VisitIfNew(w)) {
        queue_.push_back(w);
        ++count;
        if (activated != nullptr) activated->push_back(w);
      }
    };
    if (use_skip_) {
      SampleLiveArcsInRuns(arcs, graph_.OutRunEnds(u),
                           graph_.OutRunInvLog1mp(u), rng,
                           [&](const Arc& a) { try_activate(a.node); });
    } else {
      for (const Arc& a : arcs) {
        if (visited_.Visited(a.node)) continue;
        if (rng.NextBernoulli(a.prob)) try_activate(a.node);
      }
    }
  }
  return count;
}

}  // namespace timpp
