#include "diffusion/triggering.h"

namespace timpp {

const char* DiffusionModelName(DiffusionModel model) {
  switch (model) {
    case DiffusionModel::kIC:
      return "IC";
    case DiffusionModel::kLT:
      return "LT";
    case DiffusionModel::kTriggering:
      return "triggering";
  }
  return "unknown";
}

void IcTriggeringModel::SampleTriggeringSet(const Graph& graph, NodeId v,
                                            Rng& rng,
                                            std::vector<NodeId>* out) const {
  for (const Arc& a : graph.InArcs(v)) {
    if (rng.NextBernoulli(a.prob)) out->push_back(a.node);
  }
}

void LtTriggeringModel::SampleTriggeringSet(const Graph& graph, NodeId v,
                                            Rng& rng,
                                            std::vector<NodeId>* out) const {
  // One uniform draw selects either an in-neighbor (with probability equal
  // to its weight) or nothing (with the leftover probability). This is the
  // paper's §7.2 observation: LT consumes one random number per node.
  double r = rng.NextDouble();
  for (const Arc& a : graph.InArcs(v)) {
    if (r < a.prob) {
      out->push_back(a.node);
      return;
    }
    r -= a.prob;
  }
}

}  // namespace timpp
