#include "diffusion/spread_estimator.h"

#include <thread>
#include <vector>

#include "diffusion/ic_simulator.h"
#include "diffusion/lt_simulator.h"
#include "util/rng.h"

namespace timpp {

double SpreadEstimator::EstimateSingleThread(std::span<const NodeId> seeds,
                                             uint64_t seed,
                                             uint64_t samples) const {
  Rng rng(seed);
  if (samples == 0) return 0.0;

  // Weighted spread: collect activations and sum their weights. Only the
  // IC path has a collecting simulator; LT/triggering cascade sets are
  // recovered by re-running the level loop with weights accumulated inline
  // would duplicate code, so weighted estimation routes through the
  // triggering adapters for LT (distribution-identical, Lemma 9).
  if (options_.node_weights != nullptr) {
    const std::vector<double>& w = *options_.node_weights;
    double total_weight = 0.0;
    IcSimulator ic(graph_, options_.sampler_mode);
    LtTriggeringModel lt_model;
    const TriggeringModel* model = options_.model == DiffusionModel::kLT
                                       ? &lt_model
                                       : options_.custom_model;
    TriggeringSimulator trig(graph_, model != nullptr
                                         ? *model
                                         : static_cast<const TriggeringModel&>(
                                               lt_model));
    std::vector<NodeId> activated;
    for (uint64_t i = 0; i < samples; ++i) {
      activated.clear();
      if (options_.model == DiffusionModel::kIC) {
        ic.SimulateCollect(seeds, rng, &activated, options_.max_hops);
      } else {
        trig.SimulateCollect(seeds, rng, &activated, options_.max_hops);
      }
      for (NodeId v : activated) total_weight += w[v];
    }
    return total_weight / static_cast<double>(samples);
  }

  uint64_t total = 0;
  switch (options_.model) {
    case DiffusionModel::kIC: {
      IcSimulator sim(graph_, options_.sampler_mode);
      for (uint64_t i = 0; i < samples; ++i) {
        total += sim.Simulate(seeds, rng, options_.max_hops);
      }
      break;
    }
    case DiffusionModel::kLT: {
      LtSimulator sim(graph_);
      for (uint64_t i = 0; i < samples; ++i) {
        total += sim.Simulate(seeds, rng, options_.max_hops);
      }
      break;
    }
    case DiffusionModel::kTriggering: {
      TriggeringSimulator sim(graph_, *options_.custom_model);
      for (uint64_t i = 0; i < samples; ++i) {
        total += sim.Simulate(seeds, rng, options_.max_hops);
      }
      break;
    }
  }
  return static_cast<double>(total) / static_cast<double>(samples);
}

double SpreadEstimator::Estimate(std::span<const NodeId> seeds,
                                 uint64_t seed) const {
  const uint64_t samples = options_.num_samples;
  const unsigned threads = std::max(1u, options_.num_threads);
  if (threads == 1 || samples < 2 * threads) {
    return EstimateSingleThread(seeds, seed, samples);
  }

  // Split the sample budget; fork one deterministic RNG stream per worker.
  Rng master(seed);
  std::vector<uint64_t> worker_seeds(threads);
  for (auto& s : worker_seeds) s = master.Next();

  std::vector<double> partial(threads, 0.0);
  std::vector<uint64_t> counts(threads, samples / threads);
  counts[0] += samples % threads;

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      partial[t] =
          EstimateSingleThread(seeds, worker_seeds[t], counts[t]) *
          static_cast<double>(counts[t]);
    });
  }
  for (auto& w : workers) w.join();

  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(samples);
}

}  // namespace timpp
