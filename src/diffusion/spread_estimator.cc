#include "diffusion/spread_estimator.h"

#include <thread>
#include <vector>

#include "diffusion/batched_simulator.h"
#include "diffusion/ic_simulator.h"
#include "diffusion/lt_simulator.h"
#include "util/rng.h"

namespace timpp {

namespace {

/// Whether this estimate runs through the bitmap-parallel engine: only
/// IC-model cascades have a batched simulator; LT/triggering always run
/// scalar regardless of the knob.
bool UseBitmapBatches(const SpreadEstimatorOptions& options) {
  return options.mc_batch != McBatchMode::kScalar &&
         options.model == DiffusionModel::kIC;
}

}  // namespace

double SpreadEstimator::EstimateSingleThread(std::span<const NodeId> seeds,
                                             uint64_t seed,
                                             uint64_t samples) const {
  Rng rng(seed);
  if (samples == 0) return 0.0;
  constexpr uint64_t kLanes = BatchedIcSimulator::kMaxLanes;

  // Weighted spread: collect activations and sum their weights, through
  // the one simulator the model actually needs. IC has native collecting
  // simulators (scalar and batched); LT/triggering cascade sets are
  // recovered through the triggering adapters (distribution-identical for
  // LT by Lemma 9) rather than duplicating the threshold level loop.
  if (options_.node_weights != nullptr) {
    const std::vector<double>& w = *options_.node_weights;
    double total_weight = 0.0;
    std::vector<NodeId> activated;
    if (options_.model == DiffusionModel::kIC) {
      uint64_t remaining = samples;
      if (UseBitmapBatches(options_) && remaining >= kLanes) {
        BatchedIcSimulator batched(graph_,
                                   LivenessOfBatchMode(options_.mc_batch));
        for (; remaining >= kLanes; remaining -= kLanes) {
          total_weight += batched.SimulateBatchWeighted(
              seeds, rng, w, BatchedIcSimulator::kMaxLanes,
              options_.max_hops);
        }
      }
      if (remaining > 0) {
        IcSimulator ic(graph_, options_.sampler_mode);
        for (uint64_t i = 0; i < remaining; ++i) {
          ic.SimulateCollect(seeds, rng, &activated, options_.max_hops);
          for (NodeId v : activated) total_weight += w[v];
        }
      }
    } else {
      LtTriggeringModel lt_model;
      const TriggeringModel* model = options_.model == DiffusionModel::kLT
                                         ? &lt_model
                                         : options_.custom_model;
      TriggeringSimulator trig(graph_,
                               model != nullptr
                                   ? *model
                                   : static_cast<const TriggeringModel&>(
                                         lt_model));
      for (uint64_t i = 0; i < samples; ++i) {
        trig.SimulateCollect(seeds, rng, &activated, options_.max_hops);
        for (NodeId v : activated) total_weight += w[v];
      }
    }
    return total_weight / static_cast<double>(samples);
  }

  uint64_t total = 0;
  switch (options_.model) {
    case DiffusionModel::kIC: {
      uint64_t remaining = samples;
      if (UseBitmapBatches(options_) && remaining >= kLanes) {
        // ⌊r/64⌋ bitmap batches; the r mod 64 tail below stays scalar so
        // a partial batch never changes the per-cascade cost model.
        BatchedIcSimulator batched(graph_,
                                   LivenessOfBatchMode(options_.mc_batch));
        for (; remaining >= kLanes; remaining -= kLanes) {
          total += batched.SimulateBatch(
              seeds, rng, BatchedIcSimulator::kMaxLanes, options_.max_hops);
        }
      }
      if (remaining > 0) {
        IcSimulator sim(graph_, options_.sampler_mode);
        for (uint64_t i = 0; i < remaining; ++i) {
          total += sim.Simulate(seeds, rng, options_.max_hops);
        }
      }
      break;
    }
    case DiffusionModel::kLT: {
      LtSimulator sim(graph_);
      for (uint64_t i = 0; i < samples; ++i) {
        total += sim.Simulate(seeds, rng, options_.max_hops);
      }
      break;
    }
    case DiffusionModel::kTriggering: {
      TriggeringSimulator sim(graph_, *options_.custom_model);
      for (uint64_t i = 0; i < samples; ++i) {
        total += sim.Simulate(seeds, rng, options_.max_hops);
      }
      break;
    }
  }
  return static_cast<double>(total) / static_cast<double>(samples);
}

double SpreadEstimator::Estimate(std::span<const NodeId> seeds,
                                 uint64_t seed) const {
  const uint64_t samples = options_.num_samples;
  const unsigned threads = std::max(1u, options_.num_threads);
  if (threads == 1 || samples < 2 * threads) {
    return EstimateSingleThread(seeds, seed, samples);
  }

  // Split the sample budget; fork one deterministic RNG stream per worker.
  Rng master(seed);
  std::vector<uint64_t> worker_seeds(threads);
  for (auto& s : worker_seeds) s = master.Next();

  std::vector<double> partial(threads, 0.0);
  std::vector<uint64_t> counts(threads, samples / threads);
  counts[0] += samples % threads;

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      partial[t] =
          EstimateSingleThread(seeds, worker_seeds[t], counts[t]) *
          static_cast<double>(counts[t]);
    });
  }
  for (auto& w : workers) w.join();

  double total = 0.0;
  for (double p : partial) total += p;
  return total / static_cast<double>(samples);
}

double VerifySpread(const Graph& graph, std::span<const NodeId> seeds,
                    const VerifySpreadOptions& options) {
  SpreadEstimatorOptions est;
  est.num_samples = options.num_samples;
  est.num_threads = options.num_threads;
  est.model = options.model;
  est.custom_model = options.custom_model;
  est.max_hops = options.max_hops;
  est.mc_batch = options.mc_batch;
  est.node_weights = options.node_weights;
  return SpreadEstimator(graph, est).Estimate(seeds, options.seed);
}

}  // namespace timpp
