// The triggering model (Kempe et al.; §4.2 of the paper) and its two
// prominent specializations, IC and LT.
//
// A triggering model assigns each node v a distribution T(v) over subsets of
// v's in-neighbors. A cascade from seed set S activates v at time i+1 iff
// some node of v's sampled triggering set is active at time i. The IC model
// is the triggering model where each in-neighbor joins independently with
// its edge probability; the LT model is the one where the triggering set is
// a single in-neighbor (chosen with probability equal to its edge weight) or
// empty.
#ifndef TIMPP_DIFFUSION_TRIGGERING_H_
#define TIMPP_DIFFUSION_TRIGGERING_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/types.h"

namespace timpp {

/// Which built-in diffusion model to use. kTriggering selects a
/// caller-provided TriggeringModel implementation.
enum class DiffusionModel {
  kIC,
  kLT,
  kTriggering,
};

/// Name suitable for logs and bench output ("IC", "LT", "triggering").
const char* DiffusionModelName(DiffusionModel model);

/// User-extensible triggering distribution. Implementations must be
/// deterministic in (graph, v, rng state) and thread-compatible (callers
/// never share one Rng across threads).
class TriggeringModel {
 public:
  virtual ~TriggeringModel() = default;

  /// Samples a triggering set for `v`: appends the chosen in-neighbors of
  /// `v` to `*out` (which the caller has cleared). Every appended node must
  /// be an in-neighbor of `v` in `graph`.
  virtual void SampleTriggeringSet(const Graph& graph, NodeId v, Rng& rng,
                                   std::vector<NodeId>* out) const = 0;

  /// Human-readable name for diagnostics.
  virtual const char* name() const = 0;
};

/// IC as a triggering model: each in-neighbor u joins independently with the
/// probability of the edge (u, v). Reference semantics for tests; the IC
/// hot paths in the samplers/simulators are specialized and bypass this.
class IcTriggeringModel : public TriggeringModel {
 public:
  void SampleTriggeringSet(const Graph& graph, NodeId v, Rng& rng,
                           std::vector<NodeId>* out) const override;
  const char* name() const override { return "IC-as-triggering"; }
};

/// LT as a triggering model: at most one in-neighbor, picked with
/// probability equal to its in-edge weight (weights must sum to <= 1).
class LtTriggeringModel : public TriggeringModel {
 public:
  void SampleTriggeringSet(const Graph& graph, NodeId v, Rng& rng,
                           std::vector<NodeId>* out) const override;
  const char* name() const override { return "LT-as-triggering"; }
};

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_TRIGGERING_H_
