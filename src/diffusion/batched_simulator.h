// 64-lane bitmap-parallel forward Monte-Carlo under the independent
// cascade model: every vertex carries a uint64_t lane bitmap (bit i =
// "activated in cascade i") and one frontier traversal advances up to 64
// independent cascades by OR-ing activation bits along live arcs. One
// graph walk is amortized across the whole batch — the estimator inside
// Kempe-style Greedy/CELF runs thousands of cascades per seed set and
// pays the traversal once per 64 of them.
#ifndef TIMPP_DIFFUSION_BATCHED_SIMULATOR_H_
#define TIMPP_DIFFUSION_BATCHED_SIMULATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"
#include "util/types.h"

namespace timpp {

/// How the lanes of one batch decide whether an examined arc is live.
enum class LaneLiveness {
  /// 64 independent Bernoulli(p) coins per examined arc — the lanes are
  /// exactly 64 independent scalar cascades (the unbiased default). The
  /// coins of only the PENDING lanes are drawn, and for sparse p not one
  /// by one: a run's (arc × pending-lane) trials form one i.i.d.
  /// Bernoulli(p) sequence, so geometric-skip jumps — using the
  /// 1/ln(1-p) the graph's constant-probability run metadata already
  /// stores — reach the live trials in an expected 1 + p·trials log
  /// draws per run. Coin-friendly p (>= ~1/8) flips one uniform per
  /// pending lane instead, where jumps stop paying for themselves, and
  /// nodes whose pending mask degenerated to few lanes (the common case
  /// once cascades diverge) are sampled per lane with the scalar skip
  /// idiom — visited state touched only at live landings, so the
  /// diverged tail of a batch costs what scalar cascades cost.
  kIndependent,
  /// One Bernoulli(p) draw per examined arc, shared by every lane whose
  /// cascade examines the arc at that moment. Each lane's marginal is
  /// still Bernoulli(p) — the batch mean is unbiased — but lanes that
  /// activated a node at the same hop share edge outcomes, so they are
  /// positively correlated and the batch mean has higher variance than
  /// 64 independent cascades. Trade-off: per examined arc this pays the
  /// cost of ONE scalar coin instead of a lane-mask draw, so it wins
  /// when draws dominate and extra batches are cheap.
  kSharedDraw,
};

/// One activation event of a batched run: `node` became active in the
/// cascades of `lanes` (at least one bit set). The per-lane activation
/// list of lane i is exactly {e.node : e.lanes >> i & 1} — the batched
/// equivalent of IcSimulator::SimulateCollect's readout.
struct LaneActivation {
  NodeId node;
  uint64_t lanes;
};

/// Runs up to 64 IC cascades per traversal on a fixed graph. Holds
/// reusable scratch (per-vertex lane bitmaps with epoch stamping and two
/// frontier queues) so repeated batches do not allocate. Not thread-safe;
/// create one simulator per thread.
///
/// Per-lane distribution: with kIndependent liveness every lane is
/// distributed exactly as one IcSimulator cascade (each (arc, lane) pair
/// draws its own coin the moment that lane's cascade examines the arc);
/// with kSharedDraw the per-lane marginals are unchanged but lanes are
/// correlated (see LaneLiveness). Determinism: results are a pure
/// function of (graph, seeds, rng state, num_lanes, max_hops).
class BatchedIcSimulator {
 public:
  /// Lanes per batch — the width of the per-vertex bitmap.
  static constexpr int kMaxLanes = 64;

  explicit BatchedIcSimulator(const Graph& graph,
                              LaneLiveness liveness = LaneLiveness::kIndependent)
      : graph_(graph), liveness_(liveness), state_(graph.num_nodes()) {
    queue_a_.reserve(256);
    queue_b_.reserve(256);
  }

  LaneLiveness liveness() const { return liveness_; }

  /// Simulates `num_lanes` (clamped to [1, 64]) cascades from `seeds` in
  /// one traversal; returns the total activation count summed over lanes
  /// (each lane counting its seeds once, exactly as IcSimulator). The
  /// mean spread estimate of the batch is the return value / num_lanes.
  /// `max_hops` bounds propagation rounds per lane (0 = unlimited).
  uint64_t SimulateBatch(std::span<const NodeId> seeds, Rng& rng,
                         int num_lanes = kMaxLanes, uint32_t max_hops = 0);

  /// As SimulateBatch(), but also appends every activation event to
  /// `*activated` (cleared first). A node appears once per hop at which
  /// some lane first activated it, so it can appear in several events —
  /// with pairwise-disjoint masks whose union is its final lane bitmap.
  uint64_t SimulateBatchCollect(std::span<const NodeId> seeds, Rng& rng,
                                std::vector<LaneActivation>* activated,
                                int num_lanes = kMaxLanes,
                                uint32_t max_hops = 0);

  /// Weighted spread: returns Σ_lanes Σ_{v activated in lane} weights[v],
  /// accumulated as popcount(lane-mask)·weights[v] per activation event.
  /// `weights` must have size >= num_nodes. The batch's mean weighted
  /// spread is the return value / num_lanes.
  double SimulateBatchWeighted(std::span<const NodeId> seeds, Rng& rng,
                               std::span<const double> weights,
                               int num_lanes = kMaxLanes,
                               uint32_t max_hops = 0);

 private:
  /// All per-vertex scratch in one 32-byte record so one activation
  /// touches one cache line, not three arrays: `bits` is the lane bitmap,
  /// valid when `stamp` matches the current epoch (the VisitMarker trick
  /// carrying a 64-bit payload — a new batch starts in O(1) instead of
  /// O(n)); `pending[par]` holds frontier bits awaiting propagation, one
  /// word per BFS level parity (entries are zeroed as they are consumed,
  /// so between runs both words are zero and need no epoch).
  struct NodeState {
    uint64_t bits = 0;
    uint64_t pending[2] = {0, 0};
    uint32_t stamp = 0;
  };

  template <typename OnActivate>
  uint64_t Run(std::span<const NodeId> seeds, Rng& rng, int num_lanes,
               uint32_t max_hops, OnActivate&& on_activate);

  /// Lane bits of v's current batch (0 if v untouched this epoch).
  uint64_t VisitedBits(NodeId v) const {
    const NodeState& st = state_[v];
    return st.stamp == epoch_ ? st.bits : 0;
  }

  const Graph& graph_;
  LaneLiveness liveness_;
  std::vector<NodeState> state_;
  std::vector<NodeId> queue_a_, queue_b_;
  uint32_t epoch_ = 0;
};

/// Maps the estimator-level batching knob onto the simulator's liveness
/// mode (kScalar has no batched equivalent and maps to the default).
inline LaneLiveness LivenessOfBatchMode(McBatchMode mode) {
  return mode == McBatchMode::kBitmap64Shared ? LaneLiveness::kSharedDraw
                                              : LaneLiveness::kIndependent;
}

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_BATCHED_SIMULATOR_H_
