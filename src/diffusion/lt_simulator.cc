#include "diffusion/lt_simulator.h"

#include <algorithm>

namespace timpp {

uint64_t LtSimulator::Simulate(std::span<const NodeId> seeds, Rng& rng,
                               uint32_t max_hops) {
  active_.NewEpoch();
  touched_.NewEpoch();
  queue_.clear();

  uint64_t count = 0;
  for (NodeId s : seeds) {
    if (active_.VisitIfNew(s)) {
      queue_.push_back(s);
      ++count;
    }
  }

  // FIFO order keeps the queue level-ordered, so a node's queue position
  // is its activation round; hop bounding cuts after `max_hops` rounds.
  size_t level_end = queue_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < queue_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = queue_.size();
    }
    if (max_hops != 0 && hops >= max_hops) break;
    NodeId u = queue_[head];
    for (const Arc& a : graph_.OutArcs(u)) {
      NodeId v = a.node;
      if (active_.Visited(v)) continue;
      if (touched_.VisitIfNew(v)) {
        threshold_[v] = rng.NextDouble();
        weight_in_[v] = 0.0;
      }
      weight_in_[v] += a.prob;
      if (weight_in_[v] >= threshold_[v]) {
        active_.Visit(v);
        queue_.push_back(v);
        ++count;
      }
    }
  }
  return count;
}

const std::vector<NodeId>& TriggeringSimulator::TriggerSet(NodeId v, Rng& rng) {
  if (sampled_.VisitIfNew(v)) {
    trigger_sets_[v].clear();
    model_.SampleTriggeringSet(graph_, v, rng, &trigger_sets_[v]);
  }
  return trigger_sets_[v];
}

uint64_t TriggeringSimulator::Simulate(std::span<const NodeId> seeds,
                                       Rng& rng, uint32_t max_hops) {
  return SimulateCollect(seeds, rng, nullptr, max_hops);
}

uint64_t TriggeringSimulator::SimulateCollect(std::span<const NodeId> seeds,
                                              Rng& rng,
                                              std::vector<NodeId>* activated,
                                              uint32_t max_hops) {
  active_.NewEpoch();
  sampled_.NewEpoch();
  queue_.clear();

  uint64_t count = 0;
  for (NodeId s : seeds) {
    if (active_.VisitIfNew(s)) {
      queue_.push_back(s);
      ++count;
    }
  }

  size_t level_end = queue_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < queue_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = queue_.size();
    }
    if (max_hops != 0 && hops >= max_hops) break;
    NodeId u = queue_[head];
    for (const Arc& a : graph_.OutArcs(u)) {
      NodeId v = a.node;
      if (active_.Visited(v)) continue;
      const std::vector<NodeId>& trig = TriggerSet(v, rng);
      if (std::find(trig.begin(), trig.end(), u) != trig.end()) {
        active_.Visit(v);
        queue_.push_back(v);
        ++count;
      }
    }
  }
  if (activated != nullptr) {
    activated->assign(queue_.begin(), queue_.begin() + count);
  }
  return count;
}

}  // namespace timpp
