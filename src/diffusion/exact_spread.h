// Exact expected-spread computation by exhaustive world enumeration.
//
// Computing E[I(S)] is #P-hard in general (Chen et al.), so these oracles
// are exponential by design and guarded by hard size limits. They exist to
// verify the probabilistic machinery (Lemma 2, Corollary 1, the
// (1-1/e-ε) guarantee) on tiny graphs in the test suite.
#ifndef TIMPP_DIFFUSION_EXACT_SPREAD_H_
#define TIMPP_DIFFUSION_EXACT_SPREAD_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Exact E[I(S)] under IC by enumerating all 2^m live-edge worlds.
/// Fails with InvalidArgument if the graph has more than 24 edges.
Status ExactSpreadIC(const Graph& graph, std::span<const NodeId> seeds,
                     double* spread);

/// Exact E[I(S)] under LT by enumerating each node's triggering choice
/// (one of its in-neighbors, with the edge weight as probability, or none).
/// Fails with InvalidArgument if the product of (indeg+1) over all nodes
/// exceeds ~16M worlds.
Status ExactSpreadLT(const Graph& graph, std::span<const NodeId> seeds,
                     double* spread);

/// Exhaustive influence maximization: finds the size-k seed set with maximum
/// exact spread (the paper's OPT) under IC. Exponential in both the edge
/// count and C(n, k); intended for graphs with <= 12 nodes / 24 edges.
Status BruteForceOptimalIC(const Graph& graph, int k,
                           std::vector<NodeId>* best_seeds, double* best_spread);

/// Same under LT.
Status BruteForceOptimalLT(const Graph& graph, int k,
                           std::vector<NodeId>* best_seeds, double* best_spread);

}  // namespace timpp

#endif  // TIMPP_DIFFUSION_EXACT_SPREAD_H_
