#include "diffusion/batched_simulator.h"

#include <bit>
#include <cmath>

#include "graph/run_sampling.h"

namespace timpp {

namespace {

/// Above this probability sparse arcs flip one coin per pending lane
/// instead of geometric-skip jumps: a log draw costs several uniform
/// draws, and expected jumps (1 + p·trials) approach the trial count as p
/// grows, so skips stop paying for themselves around p ~ 1/8.
constexpr float kCoinProbability = 0.125f;

/// "No clamp" limit for NextSkip when jumping across a run's flattened
/// trial sequence — the skip is bounded by ln(2^-53)/ln(1-p) anyway, far
/// below 2^64 for any p the graph can store.
constexpr uint64_t kUnbounded = ~0ULL;

/// With at most this many pending lanes (and sparse p) a run is sampled
/// once per lane with the scalar geometric-skip idiom instead of per arc:
/// past the first hops most frontier nodes carry very few lanes, and the
/// per-arc path's visited-bitmap load for every arc — dead or alive — is
/// exactly the memory traffic that makes it lose to the scalar simulator
/// on large graphs. Skipping per lane touches visited state only at live
/// landings, like the scalar sampler.
constexpr int kPerLaneSkipLanes = 4;

/// Writes p ∈ (0, 1) as m·2^-k with m odd — the float's finite binary
/// expansion, whose length k drives the bitwise-exact mask draw below.
void DecomposeProb(float p, uint32_t* m, int* k) {
  int exp;
  const float frac = std::frexp(p, &exp);  // p = frac·2^exp, frac ∈ [0.5, 1)
  const uint32_t mant = static_cast<uint32_t>(std::ldexp(frac, 24));
  const int tz = std::countr_zero(mant);
  *m = mant >> tz;
  *k = 24 - tz - exp;
}

/// 64 exact Bernoulli(m·2^-k) coins in at most k raw RNG words: process
/// the expansion bits b_k..b_1 (LSB of m upward), OR-ing a fresh random
/// word for a 1-bit and AND-ing for a 0-bit. Induction gives P(lane bit
/// set) = 0.b1…bk exactly, and lanes stay independent because the combine
/// is bitwise. For p = 1/2 this is ONE word for 64 coins; small
/// probabilities (k can exceed 33 for WC 1/indeg on high-in-degree hubs)
/// stay cheap because an all-zero accumulator short-circuits the AND tail.
uint64_t DrawBitwiseMask(Rng& rng, uint32_t m, int k) {
  uint64_t acc = 0;
  for (int i = 0; i < k; ++i) {
    // m < 2^24, so expansion bits past the mantissa are literal zeros
    // (always AND steps) and must be read as such: indexing them through
    // the 32-bit shift is UB once i reaches 32, which is reachable — any
    // p below ~0.002 decomposes with k >= 33.
    const bool bit = i < 24 && ((m >> i) & 1) != 0;
    if (acc == 0 && !bit) {
      // AND step on an all-zero accumulator: the step is a no-op, and if
      // no 1-bit remains at or above i the result is 0 regardless of the
      // remaining words. Skipping draws whose values cannot reach the
      // output keeps the joint distribution exact and caps the cost for
      // tiny p (a subnormal would otherwise burn ~150 words per arc).
      if (i >= 24 || (m >> i) == 0) return 0;
      continue;
    }
    const uint64_t r = rng.Next();
    acc = bit ? (acc | r) : (acc & r);
  }
  return acc;
}

}  // namespace

template <typename OnActivate>
uint64_t BatchedIcSimulator::Run(std::span<const NodeId> seeds, Rng& rng,
                                 int num_lanes, uint32_t max_hops,
                                 OnActivate&& on_activate) {
  if (num_lanes < 1) num_lanes = 1;
  if (num_lanes > kMaxLanes) num_lanes = kMaxLanes;
  const uint64_t full_mask =
      num_lanes >= kMaxLanes ? ~0ULL : (1ULL << num_lanes) - 1;

  if (++epoch_ == 0) {
    // Stamp wrap (every 2^32 batches): pay one O(n) reset.
    for (NodeState& st : state_) st.stamp = 0;
    epoch_ = 1;
  }
  queue_a_.clear();
  queue_b_.clear();

  uint64_t activations = 0;
  // Marks v active in the lanes of `add` (disjoint from its visited bits
  // by construction) and stages them for propagation at level parity
  // `par` — all on v's one NodeState cache line.
  const auto activate = [&](NodeId v, uint64_t add, std::vector<NodeId>& queue,
                            int par) {
    NodeState& st = state_[v];
    if (st.stamp != epoch_) {
      st.stamp = epoch_;
      st.bits = add;
    } else {
      st.bits |= add;
    }
    if (st.pending[par] == 0) queue.push_back(v);
    st.pending[par] |= add;
    activations += static_cast<uint64_t>(std::popcount(add));
    on_activate(v, add);
  };

  for (NodeId s : seeds) {
    const uint64_t add = full_mask & ~VisitedBits(s);
    if (add != 0) activate(s, add, queue_a_, 0);
  }

  // Level-synchronous frontier expansion: `cur` holds the nodes whose
  // pending bits were first set `hops` hops from the seeds, `next`
  // collects the following level (pending words alternate by level
  // parity so same-level re-activations of a not-yet-processed node stay
  // in the next level — hop counts per lane match the scalar BFS
  // exactly). Each consumed pending word is zeroed, keeping both
  // parities all-zero across runs.
  std::vector<NodeId>* cur = &queue_a_;
  std::vector<NodeId>* next = &queue_b_;
  int par = 0;
  uint32_t hops = 0;
  while (!cur->empty()) {
    if (max_hops != 0 && hops >= max_hops) {
      // Deadline reached: the staged frontier never fires. Zero its
      // pending bits so the scratch invariant holds for the next batch.
      for (NodeId v : *cur) state_[v].pending[par] = 0;
      break;
    }
    ++hops;
    const int next_par = 1 - par;
    for (NodeId u : *cur) {
      NodeState& ust = state_[u];
      const uint64_t mask = ust.pending[par];
      ust.pending[par] = 0;
      const auto arcs = graph_.OutArcs(u);
      const auto run_ends = graph_.OutRunEnds(u);
      const auto run_invs = graph_.OutRunInvLog1mp(u);
      if (liveness_ == LaneLiveness::kSharedDraw) {
        // One draw per arc shared across the lanes of `mask`: the batch
        // traversal costs what ONE scalar skip-mode cascade costs.
        SampleLiveArcsInRuns(arcs, run_ends, run_invs, rng,
                             [&](const Arc& a) {
                               const uint64_t add =
                                   mask & ~VisitedBits(a.node);
                               if (add != 0) {
                                 activate(a.node, add, *next, next_par);
                               }
                             });
      } else {
        // Independent lanes: walk the runs in lockstep with the arcs.
        // Each (arc, pending lane) pair is one i.i.d. Bernoulli(p) trial
        // — only lanes that newly activated u and have not yet activated
        // w examine the arc; coins for other lanes are never relevant,
        // so they are never drawn.
        const int mask_pc = std::popcount(mask);
        EdgeIndex start = 0;
        for (size_t r = 0; r < run_ends.size(); ++r) {
          const EdgeIndex end = run_ends[r];
          const float p = arcs[start].prob;
          if (p >= 1.0f) {
            for (EdgeIndex i = start; i < end; ++i) {
              const NodeId w = arcs[i].node;
              const uint64_t pend = mask & ~VisitedBits(w);
              if (pend != 0) activate(w, pend, *next, next_par);
            }
          } else if (p > 0.0f && p < kCoinProbability &&
                     mask_pc <= kPerLaneSkipLanes) {
            // Few pending lanes at sparse p: run the scalar skip sampler
            // once per lane over the run's arcs. Visited bitmaps are
            // loaded only at live landings — scalar memory traffic —
            // instead of one pend lookup per arc; coins for arcs whose
            // target the lane already activated are drawn and ignored,
            // exactly as the scalar simulator does, so each lane's
            // cascade distribution is unchanged.
            const double inv_log1mp = run_invs[r];
            for (uint64_t lanes = mask; lanes != 0; lanes &= lanes - 1) {
              const uint64_t lane = lanes & -lanes;
              for (EdgeIndex i =
                       start + rng.NextSkip(inv_log1mp, end - start);
                   i < end; i += 1 + rng.NextSkip(inv_log1mp, end - i - 1)) {
                const NodeId w = arcs[i].node;
                const uint64_t add = lane & ~VisitedBits(w);
                if (add != 0) activate(w, add, *next, next_par);
              }
            }
          } else if (p > 0.0f) {
            // Three exact samplers, dispatched per arc on the pending-
            // lane count pc (all draw each (arc, lane) coin Bernoulli(p),
            // so the per-lane cascade distribution is unchanged):
            //  - dense pend: bitwise-exact mask, k raw words for 64 coins
            //    (k = the float's expansion length; 1 word for p = 1/2);
            //  - sparse pend, coin-friendly p: one uniform per lane;
            //  - sparse pend, sparse p: geometric skips over the run's
            //    flattened (arc × pending-lane) trial sequence — the
            //    scalar skip sampler lifted to the lane dimension,
            //    reusing the run's precomputed 1/ln(1-p). One jump
            //    covers the dead trials of many arcs at once, so a
            //    mostly-dead run costs O(1) log draws total.
            // Mixing samplers across arcs is exact: arcs' coins are
            // independent, and the geometric stream is memoryless, so
            // dense arcs simply contribute no slots to it.
            uint32_t expansion_m;
            int expansion_k;
            DecomposeProb(p, &expansion_m, &expansion_k);
            const double inv_log1mp = run_invs[r];
            const bool use_coins = p >= kCoinProbability;
            uint64_t jump =
                use_coins ? 0 : rng.NextSkip(inv_log1mp, kUnbounded);
            for (EdgeIndex i = start; i < end; ++i) {
              const NodeId w = arcs[i].node;
              const uint64_t pend = mask & ~VisitedBits(w);
              uint64_t slots = static_cast<uint64_t>(std::popcount(pend));
              if (slots == 0) continue;
              // Bitwise wins once its k words undercut one ~1.5-word
              // uniform (or one multi-word log) draw per pending lane.
              if (expansion_k <= static_cast<int>(slots + (slots >> 1))) {
                const uint64_t add =
                    pend & DrawBitwiseMask(rng, expansion_m, expansion_k);
                if (add != 0) activate(w, add, *next, next_par);
                continue;
              }
              if (use_coins) {
                uint64_t add = 0;
                for (uint64_t bits = pend; bits != 0; bits &= bits - 1) {
                  if (rng.NextDouble() < p) add |= bits & -bits;
                }
                if (add != 0) activate(w, add, *next, next_par);
                continue;
              }
              if (jump >= slots) {
                jump -= slots;
                continue;
              }
              // The jump landed inside this arc's pending slots: select
              // the jump-th pending lane (ascending bit order), then keep
              // jumping within the arc until the remaining slots run out.
              uint64_t add = 0;
              uint64_t bits = pend;
              while (jump < slots) {
                for (uint64_t j = 0; j < jump; ++j) bits &= bits - 1;
                add |= bits & -bits;
                bits &= bits - 1;
                slots -= jump + 1;
                jump = rng.NextSkip(inv_log1mp, kUnbounded);
              }
              jump -= slots;
              activate(w, add, *next, next_par);
            }
            // Any leftover jump is discarded at the run boundary —
            // memorylessness makes the restart exact, and the next run's
            // p (hence inv_log1mp) differs anyway.
          }
          start = end;
        }
      }
    }
    cur->clear();
    std::swap(cur, next);
    par = next_par;
  }
  return activations;
}

uint64_t BatchedIcSimulator::SimulateBatch(std::span<const NodeId> seeds,
                                           Rng& rng, int num_lanes,
                                           uint32_t max_hops) {
  return Run(seeds, rng, num_lanes, max_hops, [](NodeId, uint64_t) {});
}

uint64_t BatchedIcSimulator::SimulateBatchCollect(
    std::span<const NodeId> seeds, Rng& rng,
    std::vector<LaneActivation>* activated, int num_lanes,
    uint32_t max_hops) {
  activated->clear();
  return Run(seeds, rng, num_lanes, max_hops, [&](NodeId v, uint64_t add) {
    activated->push_back(LaneActivation{v, add});
  });
}

double BatchedIcSimulator::SimulateBatchWeighted(
    std::span<const NodeId> seeds, Rng& rng, std::span<const double> weights,
    int num_lanes, uint32_t max_hops) {
  double total = 0.0;
  Run(seeds, rng, num_lanes, max_hops, [&](NodeId v, uint64_t add) {
    total += static_cast<double>(std::popcount(add)) * weights[v];
  });
  return total;
}

}  // namespace timpp
