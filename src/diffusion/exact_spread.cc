#include "diffusion/exact_spread.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace timpp {

namespace {

constexpr uint64_t kMaxIcEdges = 20;          // 2^20 worlds ~ 1M
constexpr double kMaxLtWorlds = 1u << 24;     // ~16M

struct FlatEdge {
  NodeId from;
  NodeId to;
  double prob;
};

std::vector<FlatEdge> CollectEdges(const Graph& graph) {
  std::vector<FlatEdge> edges;
  edges.reserve(graph.num_edges());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Arc& a : graph.OutArcs(v)) {
      edges.push_back(FlatEdge{v, a.node, a.prob});
    }
  }
  return edges;
}

// Number of nodes reachable from `seeds` using only edges whose bit is set
// in `mask`.
uint64_t ReachableUnderMask(const Graph& graph,
                            const std::vector<FlatEdge>& edges, uint64_t mask,
                            std::span<const NodeId> seeds) {
  const NodeId n = graph.num_nodes();
  std::vector<char> active(n, 0);
  std::vector<NodeId> queue;
  for (NodeId s : seeds) {
    if (!active[s]) {
      active[s] = 1;
      queue.push_back(s);
    }
  }
  // Adjacency of the live world, built per call (graphs here are tiny).
  std::vector<std::vector<NodeId>> adj(n);
  for (size_t i = 0; i < edges.size(); ++i) {
    if (mask & (1ULL << i)) adj[edges[i].from].push_back(edges[i].to);
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    for (NodeId t : adj[queue[head]]) {
      if (!active[t]) {
        active[t] = 1;
        queue.push_back(t);
      }
    }
  }
  return queue.size();
}

// Enumerates all k-subsets of [0, n), invoking fn(subset). Returns false if
// fn ever returns false (to allow early abort on error).
template <typename Fn>
bool ForEachSubset(NodeId n, int k, Fn&& fn) {
  std::vector<NodeId> subset(k);
  for (int i = 0; i < k; ++i) subset[i] = static_cast<NodeId>(i);
  while (true) {
    if (!fn(subset)) return false;
    // Advance to the next combination in lexicographic order.
    int i = k - 1;
    while (i >= 0 && subset[i] == n - static_cast<NodeId>(k - i)) --i;
    if (i < 0) return true;
    ++subset[i];
    for (int j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
  }
}

}  // namespace

Status ExactSpreadIC(const Graph& graph, std::span<const NodeId> seeds,
                     double* spread) {
  const std::vector<FlatEdge> edges = CollectEdges(graph);
  if (edges.size() > kMaxIcEdges) {
    return Status::InvalidArgument(
        "ExactSpreadIC supports at most " + std::to_string(kMaxIcEdges) +
        " edges, got " + std::to_string(edges.size()));
  }
  const uint64_t worlds = 1ULL << edges.size();
  double total = 0.0;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double p = 1.0;
    for (size_t i = 0; i < edges.size(); ++i) {
      p *= (mask & (1ULL << i)) ? edges[i].prob : 1.0 - edges[i].prob;
    }
    if (p == 0.0) continue;
    total += p * static_cast<double>(
                     ReachableUnderMask(graph, edges, mask, seeds));
  }
  *spread = total;
  return Status::OK();
}

Status ExactSpreadLT(const Graph& graph, std::span<const NodeId> seeds,
                     double* spread) {
  const NodeId n = graph.num_nodes();
  double world_count = 1.0;
  for (NodeId v = 0; v < n; ++v) {
    world_count *= static_cast<double>(graph.InDegree(v) + 1);
    if (world_count > kMaxLtWorlds) {
      return Status::InvalidArgument("ExactSpreadLT world count too large");
    }
  }

  // Odometer over per-node choices: choice[v] in [0, indeg(v)] where
  // indeg(v) means "no in-neighbor chosen" and j < indeg(v) selects the
  // j-th in-arc (with probability equal to that arc's weight).
  std::vector<uint32_t> choice(n, 0);
  std::vector<char> active(n);
  std::vector<NodeId> queue;

  double total = 0.0;
  while (true) {
    // Probability of this world.
    double p = 1.0;
    for (NodeId v = 0; v < n; ++v) {
      auto arcs = graph.InArcs(v);
      if (choice[v] < arcs.size()) {
        p *= arcs[choice[v]].prob;
      } else {
        double sum = 0.0;
        for (const Arc& a : arcs) sum += a.prob;
        p *= std::max(0.0, 1.0 - sum);
      }
    }
    if (p > 0.0) {
      // Live world: arc (chosen in-neighbor -> v). Fixpoint activation.
      std::fill(active.begin(), active.end(), 0);
      queue.clear();
      for (NodeId s : seeds) {
        if (!active[s]) {
          active[s] = 1;
          queue.push_back(s);
        }
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (NodeId v = 0; v < n; ++v) {
          if (active[v]) continue;
          auto arcs = graph.InArcs(v);
          if (choice[v] < arcs.size() && active[arcs[choice[v]].node]) {
            active[v] = 1;
            queue.push_back(v);
            changed = true;
          }
        }
      }
      total += p * static_cast<double>(queue.size());
    }

    // Advance the odometer.
    NodeId v = 0;
    while (v < n) {
      if (choice[v] < graph.InDegree(v)) {
        ++choice[v];
        break;
      }
      choice[v] = 0;
      ++v;
    }
    if (v == n) break;
  }
  *spread = total;
  return Status::OK();
}

namespace {

template <typename SpreadFn>
Status BruteForceOptimal(const Graph& graph, int k, SpreadFn&& spread_fn,
                         std::vector<NodeId>* best_seeds,
                         double* best_spread) {
  const NodeId n = graph.num_nodes();
  if (k <= 0 || static_cast<NodeId>(k) > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (n > 14) {
    return Status::InvalidArgument("brute force supports at most 14 nodes");
  }
  double best = -1.0;
  std::vector<NodeId> best_set;
  Status inner_status = Status::OK();
  ForEachSubset(n, k, [&](const std::vector<NodeId>& subset) {
    double s = 0.0;
    inner_status = spread_fn(subset, &s);
    if (!inner_status.ok()) return false;
    if (s > best) {
      best = s;
      best_set = subset;
    }
    return true;
  });
  TIMPP_RETURN_NOT_OK(inner_status);
  *best_seeds = std::move(best_set);
  *best_spread = best;
  return Status::OK();
}

}  // namespace

Status BruteForceOptimalIC(const Graph& graph, int k,
                           std::vector<NodeId>* best_seeds,
                           double* best_spread) {
  return BruteForceOptimal(
      graph, k,
      [&graph](std::span<const NodeId> seeds, double* out) {
        return ExactSpreadIC(graph, seeds, out);
      },
      best_seeds, best_spread);
}

Status BruteForceOptimalLT(const Graph& graph, int k,
                           std::vector<NodeId>* best_seeds,
                           double* best_spread) {
  return BruteForceOptimal(
      graph, k,
      [&graph](std::span<const NodeId> seeds, double* out) {
        return ExactSpreadLT(graph, seeds, out);
      },
      best_seeds, best_spread);
}

}  // namespace timpp
