// Compact binary wire format for RR-set shards — how worker processes ship
// sampled ranges back to the distributed coordinator.
//
// A shard is a contiguous run of RR sets from one engine's global index
// stream, together with each set's width w(R) and edges-examined count, so
// the receiving side can merge it with RRCollection::AppendRange and report
// the same accounting (edges_examined, traversal_cost, TotalWidth) a local
// fill of the same indices would have produced. The format is versioned and
// self-validating: a truncated buffer, an inconsistent total, or a node id
// outside the graph fails with a clear Status instead of poisoning the
// collection.
//
// Layout (all integers native-endian; shards travel between processes on
// one host, never across architectures):
//   u32 magic 'RRSH' | u16 version | u16 flags(0)
//   u64 num_sets | u64 total_nodes | u64 total_edges
//   u64 node_count[num_sets]
//   u64 width[num_sets]
//   u64 edges_examined[num_sets]
//   u32 node[total_nodes]          (set members, back to back, set order)
#ifndef TIMPP_RRSET_RR_SERIALIZATION_H_
#define TIMPP_RRSET_RR_SERIALIZATION_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rrset/rr_collection.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Header totals of a decoded shard (edge accounting without walking it).
struct RRShardInfo {
  uint64_t num_sets = 0;
  uint64_t total_nodes = 0;
  uint64_t total_edges = 0;
};

/// Serializes sets [first, first + count) of `sets` (clamped to
/// sets.num_sets()) with their aligned per-set `edges` counts, appending to
/// `*out`. `edges` must hold one entry per set of `sets`.
void SerializeRRShard(const RRCollection& sets, std::span<const uint64_t> edges,
                      size_t first, size_t count, std::string* out);

/// Whole-collection convenience.
inline void SerializeRRShard(const RRCollection& sets,
                             std::span<const uint64_t> edges,
                             std::string* out) {
  SerializeRRShard(sets, edges, 0, sets.num_sets(), out);
}

/// Decodes a shard produced by SerializeRRShard, appending its sets to
/// `*sets` (via the same per-set widths) and its per-set edge counts to
/// `*edges`. Every node id is validated against `num_graph_nodes`, and the
/// buffer must be exactly one well-formed shard. On error nothing is
/// appended. `info` (optional) receives the header totals.
Status DeserializeRRShard(std::string_view bytes, NodeId num_graph_nodes,
                          RRCollection* sets, std::vector<uint64_t>* edges,
                          RRShardInfo* info = nullptr);

}  // namespace timpp

#endif  // TIMPP_RRSET_RR_SERIALIZATION_H_
