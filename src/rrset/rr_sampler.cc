#include "rrset/rr_sampler.h"

#include <algorithm>

#include "graph/run_sampling.h"

namespace timpp {

RRSampleInfo RRSampler::SampleRandomRoot(Rng& rng, std::vector<NodeId>* out) {
  const NodeId root =
      root_dist_ != nullptr && !root_dist_->empty()
          ? static_cast<NodeId>(root_dist_->Sample(rng))
          : rng.NextNode(graph_.num_nodes());
  return SampleForRoot(root, rng, out);
}

RRSampleInfo RRSampler::SampleForRoot(NodeId root, Rng& rng,
                                      std::vector<NodeId>* out) {
  switch (model_) {
    case DiffusionModel::kIC:
      return SampleIC(root, rng, out);
    case DiffusionModel::kLT:
      return SampleLT(root, rng, out);
    case DiffusionModel::kTriggering:
      return SampleTriggering(root, rng, out);
  }
  return RRSampleInfo{};
}

RRSampleInfo RRSampler::SampleIC(NodeId root, Rng& rng,
                                 std::vector<NodeId>* out) {
  if (use_skip_) return SampleICSkip(root, rng, out);
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Reverse BFS: one independent coin per examined in-arc, exactly the
  // "remove each edge with probability 1-p(e), take nodes that reach root"
  // process of Definition 1 (deferred edge decisions). FIFO order keeps
  // the queue level-ordered for the optional depth bound.
  size_t level_end = set_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < set_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = set_.size();
    }
    if (max_hops_ != 0 && hops >= max_hops_) break;
    NodeId v = set_[head];
    for (const Arc& a : graph_.InArcs(v)) {
      ++info.edges_examined;
      if (visited_.Visited(a.node)) continue;
      if (rng.NextBernoulli(a.prob)) {
        visited_.Visit(a.node);
        set_.push_back(a.node);
        info.width += graph_.InDegree(a.node);
      }
    }
  }
  *out = set_;
  return info;
}

RRSampleInfo RRSampler::SampleICSkip(NodeId root, Rng& rng,
                                     std::vector<NodeId>* out) {
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Same reverse BFS as SampleIC, but per constant-probability run the
  // indices of the kept arcs are drawn as geometric gaps instead of one
  // coin per arc: within a run of L Bernoulli(p) trials, the distance to
  // the next success is Geometric(p), so jumping by NextSkip lands on
  // exactly the kept arcs with the per-arc distribution. Already-visited
  // targets are skipped over for free (their coins need never be looked
  // at — the outcomes are independent and unused).
  size_t level_end = set_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < set_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = set_.size();
    }
    if (max_hops_ != 0 && hops >= max_hops_) break;
    NodeId v = set_[head];
    const auto arcs = graph_.InArcs(v);
    info.edges_examined += arcs.size();  // decided arcs; see RRSampleInfo
    SampleLiveArcsInRuns(arcs, graph_.InRunEnds(v), graph_.InRunInvLog1mp(v),
                         rng, [&](const Arc& a) {
      if (visited_.VisitIfNew(a.node)) {
        set_.push_back(a.node);
        info.width += graph_.InDegree(a.node);
      }
    });
  }
  *out = set_;
  return info;
}

RRSampleInfo RRSampler::SampleLT(NodeId root, Rng& rng,
                                 std::vector<NodeId>* out) {
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Reverse random walk: each visited node draws ONE uniform number and
  // uses it to select at most one in-neighbor (weights sum to <= 1). The
  // walk stops when the leftover mass is drawn, when a node has no
  // in-arcs, or when it closes a cycle onto an already-visited node.
  //
  // Skip mode resolves the same categorical draw by runs: a run of L arcs
  // with weight p holds mass L·p, and within a hit run the picked index is
  // floor(r/p) — O(runs) instead of O(indeg), with an identical outcome
  // distribution. edges_examined charges only the arcs up to and including
  // the pick (the linear scan stops there; charging the whole list would
  // overstate the §7.2 LT cost), or the whole list when the leftover mass
  // is drawn.
  NodeId v = root;
  uint32_t steps = 0;
  while (max_hops_ == 0 || steps++ < max_hops_) {
    auto arcs = graph_.InArcs(v);
    if (arcs.empty()) break;
    double r = rng.NextDouble();
    NodeId picked = kInvalidNode;
    uint64_t scanned = arcs.size();
    if (use_skip_) {
      EdgeIndex start = 0;
      for (const EdgeIndex end : graph_.InRunEnds(v)) {
        const double p = arcs[start].prob;
        const double run_mass = p * static_cast<double>(end - start);
        if (p > 0.0 && r < run_mass) {
          const EdgeIndex offset = std::min<EdgeIndex>(
              end - start - 1, static_cast<EdgeIndex>(r / p));
          picked = arcs[start + offset].node;
          scanned = start + offset + 1;
          break;
        }
        r -= run_mass;
        start = end;
      }
    } else {
      for (size_t i = 0; i < arcs.size(); ++i) {
        if (r < arcs[i].prob) {
          picked = arcs[i].node;
          scanned = i + 1;
          break;
        }
        r -= arcs[i].prob;
      }
    }
    info.edges_examined += scanned;
    if (picked == kInvalidNode) break;       // "no in-neighbor" outcome
    if (!visited_.VisitIfNew(picked)) break;  // cycle closed
    set_.push_back(picked);
    info.width += graph_.InDegree(picked);
    v = picked;
  }
  *out = set_;
  return info;
}

RRSampleInfo RRSampler::SampleTriggering(NodeId root, Rng& rng,
                                         std::vector<NodeId>* out) {
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Reverse BFS over the triggering graph distribution G (§4.2): each
  // dequeued node samples its triggering set once; every member has a live
  // arc into the node, so in reverse we traverse to every unvisited member.
  size_t level_end = set_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < set_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = set_.size();
    }
    if (max_hops_ != 0 && hops >= max_hops_) break;
    NodeId v = set_[head];
    info.edges_examined += graph_.InDegree(v);
    trigger_scratch_.clear();
    custom_model_->SampleTriggeringSet(graph_, v, rng, &trigger_scratch_);
    for (NodeId u : trigger_scratch_) {
      if (visited_.VisitIfNew(u)) {
        set_.push_back(u);
        info.width += graph_.InDegree(u);
      }
    }
  }
  *out = set_;
  return info;
}

}  // namespace timpp
