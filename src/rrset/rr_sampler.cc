#include "rrset/rr_sampler.h"

#include <algorithm>

#include "graph/run_sampling.h"
#include "rrset/lt_pick.h"

namespace timpp {

RRSampleInfo RRSampler::SampleRandomRoot(Rng& rng, std::vector<NodeId>* out) {
  const NodeId root =
      root_dist_ != nullptr && !root_dist_->empty()
          ? static_cast<NodeId>(root_dist_->Sample(rng))
          : rng.NextNode(graph_.num_nodes());
  return SampleForRoot(root, rng, out);
}

RRSampleInfo RRSampler::SampleForRoot(NodeId root, Rng& rng,
                                      std::vector<NodeId>* out) {
  switch (model_) {
    case DiffusionModel::kIC:
      return SampleIC(root, rng, out);
    case DiffusionModel::kLT:
      return SampleLT(root, rng, out);
    case DiffusionModel::kTriggering:
      return SampleTriggering(root, rng, out);
  }
  return RRSampleInfo{};
}

RRSampleInfo RRSampler::SampleIC(NodeId root, Rng& rng,
                                 std::vector<NodeId>* out) {
  if (use_skip_) return SampleICSkip(root, rng, out);
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Reverse BFS: one independent coin per examined in-arc, exactly the
  // "remove each edge with probability 1-p(e), take nodes that reach root"
  // process of Definition 1 (deferred edge decisions). FIFO order keeps
  // the queue level-ordered for the optional depth bound.
  size_t level_end = set_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < set_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = set_.size();
    }
    if (max_hops_ != 0 && hops >= max_hops_) break;
    NodeId v = set_[head];
    for (const Arc& a : graph_.InArcs(v)) {
      ++info.edges_examined;
      if (visited_.Visited(a.node)) continue;
      if (rng.NextBernoulli(a.prob)) {
        visited_.Visit(a.node);
        set_.push_back(a.node);
        info.width += graph_.InDegree(a.node);
      }
    }
  }
  *out = set_;
  return info;
}

RRSampleInfo RRSampler::SampleICSkip(NodeId root, Rng& rng,
                                     std::vector<NodeId>* out) {
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Same reverse BFS as SampleIC, but per constant-probability run the
  // indices of the kept arcs are drawn as geometric gaps instead of one
  // coin per arc: within a run of L Bernoulli(p) trials, the distance to
  // the next success is Geometric(p), so jumping by NextSkip lands on
  // exactly the kept arcs with the per-arc distribution. Already-visited
  // targets are skipped over for free (their coins need never be looked
  // at — the outcomes are independent and unused).
  size_t level_end = set_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < set_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = set_.size();
    }
    if (max_hops_ != 0 && hops >= max_hops_) break;
    NodeId v = set_[head];
    const auto arcs = graph_.InArcs(v);
    info.edges_examined += arcs.size();  // decided arcs; see RRSampleInfo
    SampleLiveArcsInRuns(arcs, graph_.InRunEnds(v), graph_.InRunInvLog1mp(v),
                         rng, [&](const Arc& a) {
      if (visited_.VisitIfNew(a.node)) {
        set_.push_back(a.node);
        info.width += graph_.InDegree(a.node);
      }
    });
  }
  *out = set_;
  return info;
}

RRSampleInfo RRSampler::SampleLT(NodeId root, Rng& rng,
                                 std::vector<NodeId>* out) {
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Reverse random walk: each visited node draws ONE uniform number and
  // uses it to select at most one in-neighbor (weights sum to <= 1). The
  // walk stops when the leftover mass is drawn, when a node has no
  // in-arcs, or when it closes a cycle onto an already-visited node.
  //
  // Skip mode resolves the same categorical draw by runs — O(runs)
  // instead of O(indeg) — and both resolutions share the canonical
  // run-granular arithmetic of lt_pick.h, so the same draw maps to the
  // same arc in both modes even at rounding margins (the pick-equivalence
  // contract). edges_examined charges only the arcs up to and including
  // the pick (the linear scan stops there; charging the whole list would
  // overstate the §7.2 LT cost), or the whole list when the leftover mass
  // is drawn.
  NodeId v = root;
  uint32_t steps = 0;
  while (max_hops_ == 0 || steps++ < max_hops_) {
    auto arcs = graph_.InArcs(v);
    if (arcs.empty()) break;
    const double r = rng.NextDouble();
    const LtPick pick = use_skip_
                            ? PickLtArcByRuns(arcs, graph_.InRunEnds(v), r)
                            : PickLtArcPerArc(arcs, r);
    const NodeId picked =
        pick.index == LtPick::kNoArc ? kInvalidNode : arcs[pick.index].node;
    info.edges_examined += pick.scanned;
    if (picked == kInvalidNode) break;       // "no in-neighbor" outcome
    if (!visited_.VisitIfNew(picked)) break;  // cycle closed
    set_.push_back(picked);
    info.width += graph_.InDegree(picked);
    v = picked;
  }
  *out = set_;
  return info;
}

RRSampleInfo RRSampler::SampleTriggering(NodeId root, Rng& rng,
                                         std::vector<NodeId>* out) {
  RRSampleInfo info;
  info.root = root;

  visited_.NewEpoch();
  set_.clear();
  visited_.Visit(root);
  set_.push_back(root);
  info.width += graph_.InDegree(root);

  // Reverse BFS over the triggering graph distribution G (§4.2): each
  // dequeued node samples its triggering set once; every member has a live
  // arc into the node, so in reverse we traverse to every unvisited member.
  size_t level_end = set_.size();
  uint32_t hops = 0;
  for (size_t head = 0; head < set_.size(); ++head) {
    if (head == level_end) {
      ++hops;
      level_end = set_.size();
    }
    if (max_hops_ != 0 && hops >= max_hops_) break;
    NodeId v = set_[head];
    info.edges_examined += graph_.InDegree(v);
    trigger_scratch_.clear();
    custom_model_->SampleTriggeringSet(graph_, v, rng, &trigger_scratch_);
    for (NodeId u : trigger_scratch_) {
      if (visited_.VisitIfNew(u)) {
        set_.push_back(u);
        info.width += graph_.InDegree(u);
      }
    }
  }
  *out = set_;
  return info;
}

}  // namespace timpp
