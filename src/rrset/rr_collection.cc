#include "rrset/rr_collection.h"

#include <algorithm>

namespace timpp {

RRSetId RRCollection::Add(std::span<const NodeId> nodes, uint64_t width) {
  nodes_.insert(nodes_.end(), nodes.begin(), nodes.end());
  offsets_.push_back(nodes_.size());
  widths_.push_back(width);
  total_width_ += width;
  index_built_ = false;
  return static_cast<RRSetId>(num_sets() - 1);
}

void RRCollection::AppendShard(const RRCollection& shard) {
  const size_t base = nodes_.size();
  nodes_.insert(nodes_.end(), shard.nodes_.begin(), shard.nodes_.end());
  offsets_.reserve(offsets_.size() + shard.num_sets());
  for (size_t i = 1; i < shard.offsets_.size(); ++i) {
    offsets_.push_back(base + shard.offsets_[i]);
  }
  widths_.insert(widths_.end(), shard.widths_.begin(), shard.widths_.end());
  total_width_ += shard.total_width_;
  index_built_ = false;
}

void RRCollection::AppendRange(const RRCollection& src, size_t first,
                               size_t count) {
  first = std::min(first, src.num_sets());
  count = std::min(count, src.num_sets() - first);
  if (count == 0) return;
  const size_t base = nodes_.size();
  const EdgeIndex src_base = src.offsets_[first];
  nodes_.insert(nodes_.end(), src.nodes_.begin() + src.offsets_[first],
                src.nodes_.begin() + src.offsets_[first + count]);
  offsets_.reserve(offsets_.size() + count);
  for (size_t i = first + 1; i <= first + count; ++i) {
    offsets_.push_back(base + (src.offsets_[i] - src_base));
  }
  widths_.insert(widths_.end(), src.widths_.begin() + first,
                 src.widths_.begin() + first + count);
  for (size_t i = first; i < first + count; ++i) {
    total_width_ += src.widths_[i];
  }
  index_built_ = false;
}

void RRCollection::Reserve(size_t sets, size_t nodes) {
  offsets_.reserve(offsets_.size() + sets);
  widths_.reserve(widths_.size() + sets);
  nodes_.reserve(nodes_.size() + nodes);
}

void RRCollection::BuildIndex() {
  index_offsets_.assign(num_nodes_ + 1, 0);
  index_sets_.resize(nodes_.size());

  for (NodeId v : nodes_) ++index_offsets_[v + 1];
  for (NodeId v = 0; v < num_nodes_; ++v) {
    index_offsets_[v + 1] += index_offsets_[v];
  }
  std::vector<EdgeIndex> fill(index_offsets_.begin(), index_offsets_.end() - 1);
  const size_t sets = num_sets();
  for (size_t id = 0; id < sets; ++id) {
    for (NodeId v : Set(static_cast<RRSetId>(id))) {
      index_sets_[fill[v]++] = static_cast<RRSetId>(id);
    }
  }
  index_built_ = true;
}

double RRCollection::CoveredFraction(std::span<const NodeId> seeds) const {
  if (num_sets() == 0) return 0.0;
  // Count distinct covered sets by merging the per-seed id lists through a
  // scratch bitmap sized by set count.
  std::vector<char> covered(num_sets(), 0);
  size_t count = 0;
  for (NodeId s : seeds) {
    for (RRSetId id : SetsContaining(s)) {
      if (!covered[id]) {
        covered[id] = 1;
        ++count;
      }
    }
  }
  return static_cast<double>(count) / static_cast<double>(num_sets());
}

size_t RRCollection::MemoryBytes() const {
  return offsets_.capacity() * sizeof(EdgeIndex) +
         nodes_.capacity() * sizeof(NodeId) +
         widths_.capacity() * sizeof(uint64_t) +
         index_offsets_.capacity() * sizeof(EdgeIndex) +
         index_sets_.capacity() * sizeof(RRSetId);
}

size_t RRCollection::DataBytes() const {
  return offsets_.size() * sizeof(EdgeIndex) +
         nodes_.size() * sizeof(NodeId) +
         widths_.size() * sizeof(uint64_t) +
         index_offsets_.size() * sizeof(EdgeIndex) +
         index_sets_.size() * sizeof(RRSetId);
}

void RRCollection::DropIndex() {
  index_built_ = false;
  index_offsets_.clear();
  index_sets_.clear();
}

void RRCollection::TruncateTo(size_t num_sets) {
  if (num_sets >= this->num_sets()) return;
  for (size_t id = num_sets; id < widths_.size(); ++id) {
    total_width_ -= widths_[id];
  }
  offsets_.resize(num_sets + 1);
  nodes_.resize(offsets_[num_sets]);
  widths_.resize(num_sets);
  index_built_ = false;
  index_offsets_.clear();
  index_sets_.clear();
}

void RRCollection::Clear() {
  offsets_.assign(1, 0);
  nodes_.clear();
  widths_.clear();
  total_width_ = 0;
  index_built_ = false;
  index_offsets_.clear();
  index_sets_.clear();
}

}  // namespace timpp
