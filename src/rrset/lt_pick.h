// The LT reverse-walk categorical pick: map one uniform draw r ∈ [0, 1)
// to at most one in-arc, where arc j wins the slice of mass equal to its
// weight (Σ weights <= 1; the leftover slice means "no in-neighbor").
//
// RRSampler::SampleLT resolves this pick in two modes — a per-arc scan and
// a run-jump (SamplerMode::kSkip) — that are contractually *pick-
// equivalent*: the same r must select the same arc in both modes, or the
// modes' RR-set distributions silently diverge at rounding margins (they
// share one Rng draw per walk step, so any disagreement is a bitwise
// divergence, not just noise). Floating-point accumulation makes this
// non-trivial: subtracting L copies of an arc weight one at a time rounds
// L times, while subtracting the run mass p·L rounds once, and the two
// residuals differ by enough ulps to flip picks near slice boundaries.
//
// Both pickers below therefore use the *same* canonical arithmetic, at
// different granularities:
//   - mass leaves r one run at a time: r -= p·L(double) per non-hit run of
//     L equal-probability arcs (runs are the graph's maximal equal-prob
//     stretches, so detecting them by float equality matches
//     Graph::InRunEnds exactly);
//   - a run is hit iff r < p·L, and within it the winner is the smallest
//     offset j with r < p·(j+1).
// The per-arc picker finds j by scanning forward (O(scanned) arcs); the
// run picker jumps there with a floor division corrected by at most a few
// ulp steps to the identical comparison (O(runs)). Every comparison and
// every subtraction is performed on the same values in the same order, so
// the pickers agree bit-for-bit on any input — the property
// lt_pick_equivalence tests sweep adversarially.
#ifndef TIMPP_RRSET_LT_PICK_H_
#define TIMPP_RRSET_LT_PICK_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "graph/graph.h"
#include "util/types.h"

namespace timpp {

/// Outcome of one LT categorical pick over an in-arc list.
struct LtPick {
  /// Index (into the arc list) of the selected arc; kNoArc when the draw
  /// landed in the leftover mass (the walk stops).
  EdgeIndex index = kNoArc;
  /// Arcs whose weight the resolution consumed: the scan prefix up to and
  /// including the pick, or the whole list when nothing was picked. This
  /// is the §7.2 LT cost unit (edges_examined) and is mode-independent.
  uint64_t scanned = 0;

  static constexpr EdgeIndex kNoArc = ~EdgeIndex{0};
};

/// Smallest offset j ∈ [0, len) with r < p·(j+1), located by floor
/// division plus an ulp-level correction to exactly that comparison.
/// Requires p > 0 and r < p·len (the run was hit), which guarantees such a
/// j exists; p·j is monotone in j, so the corrected j is unique.
inline EdgeIndex LtRunOffset(double r, double p, EdgeIndex len) {
  EdgeIndex j = std::min<EdgeIndex>(len - 1, static_cast<EdgeIndex>(r / p));
  while (j > 0 && r < p * static_cast<double>(j)) --j;
  while (r >= p * static_cast<double>(j + 1)) ++j;
  return j;
}

/// Run-jump resolution (SamplerMode::kSkip): O(runs up to the hit run).
/// `run_ends` is the node's Graph::InRunEnds span (exclusive ends local to
/// `arcs`, maximal equal-probability stretches).
inline LtPick PickLtArcByRuns(std::span<const Arc> arcs,
                              std::span<const EdgeIndex> run_ends, double r) {
  LtPick pick;
  pick.scanned = arcs.size();
  EdgeIndex start = 0;
  for (const EdgeIndex end : run_ends) {
    const double p = arcs[start].prob;
    const double run_mass = p * static_cast<double>(end - start);
    if (p > 0.0 && r < run_mass) {
      const EdgeIndex j = LtRunOffset(r, p, end - start);
      pick.index = start + j;
      pick.scanned = start + j + 1;
      return pick;
    }
    if (p > 0.0) r -= run_mass;
    start = end;
  }
  return pick;
}

/// Per-arc resolution: scans arcs in order, comparing r against the
/// cumulative mass p·(j+1) inside the current run and subtracting a full
/// run's mass in one operation at each run boundary — the identical
/// arithmetic as PickLtArcByRuns, one arc at a time. O(scanned) arcs, no
/// run metadata needed (boundaries are re-detected by float equality,
/// which matches the builder's maximal-run split).
inline LtPick PickLtArcPerArc(std::span<const Arc> arcs, double r) {
  LtPick pick;
  pick.scanned = arcs.size();
  const size_t deg = arcs.size();
  size_t i = 0;
  while (i < deg) {
    const float p = arcs[i].prob;
    const size_t run_start = i;
    if (p > 0.0f) {
      const double pd = p;
      do {
        if (r < pd * static_cast<double>(i - run_start + 1)) {
          pick.index = static_cast<EdgeIndex>(i);
          pick.scanned = i + 1;
          return pick;
        }
        ++i;
      } while (i < deg && arcs[i].prob == p);
      r -= pd * static_cast<double>(i - run_start);
    } else {
      do {
        ++i;
      } while (i < deg && arcs[i].prob == p);
    }
  }
  return pick;
}

}  // namespace timpp

#endif  // TIMPP_RRSET_LT_PICK_H_
