// Random reverse-reachable (RR) set generation (Definitions 1-2 of the
// paper) via randomized reverse BFS on the transpose graph.
//
// Under IC, each in-arc of a dequeued node is kept with its probability —
// either one coin per examined edge (SamplerMode::kPerArc) or, when the
// in-arc list decomposes into constant-probability runs (weighted cascade,
// uniform, uniform-LT graphs: single runs), a geometric jump straight to
// the next kept arc (SamplerMode::kSkip), which costs O(1 + kept) per node
// instead of O(indeg). Under LT, each dequeued node picks at most one
// in-neighbor with probability equal to the in-edge weight (one random
// draw per node) — the §7.2 cost asymmetry the paper measures; skip mode
// resolves the pick by scanning runs (O(runs)) instead of arcs. A generic
// path accepts any TriggeringModel (§4.2).
//
// Both modes sample the exact RR-set distribution of Definition 1. Under
// IC they consume the RNG stream differently, so individual sets differ
// bit-wise between modes (except where every decision is forced, e.g.
// p = 1 arcs) while all statistics agree. Under LT both modes consume one
// draw per walk step and resolve it with lt_pick.h's pick-equivalent
// arithmetic, so LT RR sets are bit-identical across modes.
#ifndef TIMPP_RRSET_RR_SAMPLER_H_
#define TIMPP_RRSET_RR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "diffusion/triggering.h"
#include "graph/graph.h"
#include "util/alias_table.h"
#include "util/rng.h"
#include "util/types.h"
#include "util/visit_marker.h"

namespace timpp {

/// Byproduct measurements of one RR-set sample.
struct RRSampleInfo {
  /// Number of edges whose live/blocked outcome the traversal decided (the
  /// cost unit of Borgs et al.'s threshold τ and of the paper's O(θ·EPT)
  /// analysis). Mode-independent by design: skip mode decides a whole run
  /// in O(1 + kept) RNG draws but still charges every arc it jumped over,
  /// so τ-thresholds and EPT statistics mean the same thing in both modes.
  uint64_t edges_examined = 0;
  /// Width w(R) of the sampled set: the number of edges in G pointing to
  /// nodes of R, i.e. Σ_{v∈R} indeg(v) (Equation 1). κ(R) in Algorithm 2 is
  /// computed from this.
  uint64_t width = 0;
  /// Root node the set was generated for.
  NodeId root = kInvalidNode;
};

/// Samples RR sets on a fixed graph under a fixed model. Holds reusable
/// traversal scratch; not thread-safe — create one sampler per thread.
class RRSampler {
 public:
  /// `custom_model` is borrowed and only consulted when
  /// model == DiffusionModel::kTriggering. `max_hops` bounds the reverse
  /// traversal depth (0 = unlimited): a depth-d RR set contains exactly the
  /// nodes that would activate the root within d rounds, the time-critical
  /// influence variant (Chen et al., AAAI'12, the paper's [4]). `mode`
  /// picks the traversal strategy; kAuto resolves to skip sampling when
  /// the graph's in-arc runs are long enough to amortize the geometric
  /// draws (Graph::AvgInRunLength() >= kSkipRunLengthThreshold).
  RRSampler(const Graph& graph, DiffusionModel model,
            const TriggeringModel* custom_model = nullptr,
            uint32_t max_hops = 0, SamplerMode mode = SamplerMode::kAuto)
      : graph_(graph),
        model_(model),
        custom_model_(custom_model),
        max_hops_(max_hops),
        use_skip_(mode == SamplerMode::kSkip ||
                  (mode == SamplerMode::kAuto &&
                   graph.AvgInRunLength() >= kSkipRunLengthThreshold)),
        visited_(graph.num_nodes()) {
    set_.reserve(256);
    trigger_scratch_.reserve(16);
  }

  DiffusionModel model() const { return model_; }
  const Graph& graph() const { return graph_; }
  const TriggeringModel* custom_model() const { return custom_model_; }
  uint32_t max_hops() const { return max_hops_; }
  /// True when the traversal resolved to geometric skip sampling.
  bool skip_mode() const { return use_skip_; }

  /// Installs a non-uniform root distribution (borrowed; must outlive the
  /// sampler). Used by node-weighted influence maximization: sampling the
  /// root ∝ w(v) makes W·F_R(S) an unbiased estimator of the weighted
  /// spread Σ_v w(v)·P[S activates v]. nullptr restores uniform roots.
  void SetRootDistribution(const AliasTable* roots) { root_dist_ = roots; }

  /// Samples an RR set for a root chosen uniformly at random (Definition 2)
  /// or from the installed root distribution. The set (which always
  /// contains the root) is appended to `*out`, which is cleared first.
  /// Returns measurement info.
  RRSampleInfo SampleRandomRoot(Rng& rng, std::vector<NodeId>* out);

  /// Samples an RR set for the given root (Definition 1 with a fresh random
  /// live-edge world).
  RRSampleInfo SampleForRoot(NodeId root, Rng& rng, std::vector<NodeId>* out);

 private:
  RRSampleInfo SampleIC(NodeId root, Rng& rng, std::vector<NodeId>* out);
  RRSampleInfo SampleLT(NodeId root, Rng& rng, std::vector<NodeId>* out);
  RRSampleInfo SampleTriggering(NodeId root, Rng& rng,
                                std::vector<NodeId>* out);
  /// Geometric-jump variant of the IC reverse BFS (SamplerMode::kSkip).
  RRSampleInfo SampleICSkip(NodeId root, Rng& rng, std::vector<NodeId>* out);

  const Graph& graph_;
  DiffusionModel model_;
  const TriggeringModel* custom_model_;
  uint32_t max_hops_;
  bool use_skip_;
  const AliasTable* root_dist_ = nullptr;
  VisitMarker visited_;
  std::vector<NodeId> set_;  // doubles as the BFS queue
  std::vector<NodeId> trigger_scratch_;
};

}  // namespace timpp

#endif  // TIMPP_RRSET_RR_SAMPLER_H_
