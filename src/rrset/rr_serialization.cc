#include "rrset/rr_serialization.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace timpp {

namespace {

constexpr uint32_t kMagic = 0x48535252u;  // "RRSH" little-endian
constexpr uint16_t kVersion = 1;

// Guard against a corrupt header describing more data than any real shard
// could hold (the engine's batches are a few thousand sets): 1 Gi entries
// would already be a >4 GiB payload.
constexpr uint64_t kMaxReasonableEntries = uint64_t{1} << 30;

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked cursor over the input buffer.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  bool Read(T* value) {
    if (bytes_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  /// Borrows `count` items of type T from the buffer without copying.
  template <typename T>
  bool ReadArray(uint64_t count, const T** out) {
    if (count > (bytes_.size() - pos_) / sizeof(T)) return false;
    *out = reinterpret_cast<const T*>(bytes_.data() + pos_);
    pos_ += count * sizeof(T);
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace

void SerializeRRShard(const RRCollection& sets, std::span<const uint64_t> edges,
                      size_t first, size_t count, std::string* out) {
  first = std::min(first, sets.num_sets());
  count = std::min(count, sets.num_sets() - first);

  uint64_t total_nodes = 0;
  uint64_t total_edges = 0;
  for (size_t i = first; i < first + count; ++i) {
    total_nodes += sets.Set(static_cast<RRSetId>(i)).size();
    total_edges += edges[i];
  }

  out->reserve(out->size() + 8 + 3 * 8 + count * 24 + total_nodes * 4);
  AppendRaw(out, kMagic);
  AppendRaw(out, kVersion);
  AppendRaw(out, uint16_t{0});  // flags
  AppendRaw(out, static_cast<uint64_t>(count));
  AppendRaw(out, total_nodes);
  AppendRaw(out, total_edges);
  for (size_t i = first; i < first + count; ++i) {
    AppendRaw(out, static_cast<uint64_t>(
                       sets.Set(static_cast<RRSetId>(i)).size()));
  }
  for (size_t i = first; i < first + count; ++i) {
    AppendRaw(out, sets.Width(static_cast<RRSetId>(i)));
  }
  for (size_t i = first; i < first + count; ++i) AppendRaw(out, edges[i]);
  for (size_t i = first; i < first + count; ++i) {
    const auto set = sets.Set(static_cast<RRSetId>(i));
    out->append(reinterpret_cast<const char*>(set.data()),
                set.size() * sizeof(NodeId));
  }
}

Status DeserializeRRShard(std::string_view bytes, NodeId num_graph_nodes,
                          RRCollection* sets, std::vector<uint64_t>* edges,
                          RRShardInfo* info) {
  Reader reader(bytes);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t flags = 0;
  if (!reader.Read(&magic) || !reader.Read(&version) || !reader.Read(&flags)) {
    return Status::Corruption("RR shard: truncated header");
  }
  if (magic != kMagic) return Status::Corruption("RR shard: bad magic");
  if (version != kVersion) {
    return Status::Corruption("RR shard: unsupported version " +
                              std::to_string(version));
  }

  RRShardInfo header;
  if (!reader.Read(&header.num_sets) || !reader.Read(&header.total_nodes) ||
      !reader.Read(&header.total_edges)) {
    return Status::Corruption("RR shard: truncated header totals");
  }
  if (header.num_sets > kMaxReasonableEntries ||
      header.total_nodes > kMaxReasonableEntries) {
    return Status::Corruption("RR shard: implausible header totals");
  }

  const uint64_t* node_counts = nullptr;
  const uint64_t* widths = nullptr;
  const uint64_t* set_edges = nullptr;
  const NodeId* nodes = nullptr;
  if (!reader.ReadArray(header.num_sets, &node_counts) ||
      !reader.ReadArray(header.num_sets, &widths) ||
      !reader.ReadArray(header.num_sets, &set_edges) ||
      !reader.ReadArray(header.total_nodes, &nodes)) {
    return Status::Corruption("RR shard: truncated body");
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("RR shard: trailing bytes after body");
  }

  // Validate everything before touching the output: a failed shard must
  // not leave a half-appended collection behind.
  uint64_t declared_nodes = 0;
  uint64_t declared_edges = 0;
  for (uint64_t i = 0; i < header.num_sets; ++i) {
    declared_nodes += node_counts[i];
    declared_edges += set_edges[i];
  }
  if (declared_nodes != header.total_nodes) {
    return Status::Corruption("RR shard: per-set node counts disagree with "
                              "total_nodes");
  }
  if (declared_edges != header.total_edges) {
    return Status::Corruption("RR shard: per-set edge counts disagree with "
                              "total_edges");
  }
  for (uint64_t i = 0; i < header.total_nodes; ++i) {
    if (nodes[i] >= num_graph_nodes) {
      return Status::Corruption("RR shard: node id " +
                                std::to_string(nodes[i]) +
                                " out of range (n=" +
                                std::to_string(num_graph_nodes) + ")");
    }
  }

  sets->Reserve(header.num_sets, header.total_nodes);
  edges->reserve(edges->size() + header.num_sets);
  uint64_t offset = 0;
  for (uint64_t i = 0; i < header.num_sets; ++i) {
    sets->Add({nodes + offset, nodes + offset + node_counts[i]}, widths[i]);
    edges->push_back(set_edges[i]);
    offset += node_counts[i];
  }
  if (info != nullptr) *info = header;
  return Status::OK();
}

}  // namespace timpp
