// Storage for a batch of RR sets (the paper's R) with the inverted index
// needed by the greedy max-coverage step and exact memory accounting for
// the Figure 12 experiment.
#ifndef TIMPP_RRSET_RR_COLLECTION_H_
#define TIMPP_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace timpp {

/// Flat, append-only container of RR sets.
///
/// Sets are stored back-to-back in one node array with an offset array
/// (CSR layout). After all sets are added, BuildIndex() materializes the
/// inverted node -> set-ids index used by coverage computations. Adding
/// after BuildIndex() invalidates the index (checked in debug builds via
/// index_built()).
class RRCollection {
 public:
  explicit RRCollection(NodeId num_nodes) : num_nodes_(num_nodes) {
    offsets_.push_back(0);
  }

  /// Appends one RR set; returns its id. `width` is w(R) from Equation 1.
  RRSetId Add(std::span<const NodeId> nodes, uint64_t width);

  /// Number of stored sets (the paper's θ once sampling finishes).
  size_t num_sets() const { return offsets_.size() - 1; }

  /// Total nodes across all sets.
  size_t total_nodes() const { return nodes_.size(); }

  /// Number of nodes the host graph has (index width).
  NodeId num_graph_nodes() const { return num_nodes_; }

  /// Nodes of set `id`.
  std::span<const NodeId> Set(RRSetId id) const {
    return {nodes_.data() + offsets_[id], nodes_.data() + offsets_[id + 1]};
  }

  /// Width w(R) of set `id`.
  uint64_t Width(RRSetId id) const { return widths_[id]; }

  /// Sum of widths over all sets.
  uint64_t TotalWidth() const { return total_width_; }

  /// Builds (or rebuilds) the inverted index. O(total_nodes).
  void BuildIndex();
  bool index_built() const { return index_built_; }

  /// Ids of the sets containing node `v`. Requires BuildIndex().
  std::span<const RRSetId> SetsContaining(NodeId v) const {
    return {index_sets_.data() + index_offsets_[v],
            index_sets_.data() + index_offsets_[v + 1]};
  }

  /// Number of sets containing `v` (the initial greedy coverage count).
  uint64_t CoverageCount(NodeId v) const {
    return index_offsets_[v + 1] - index_offsets_[v];
  }

  /// Fraction of sets that contain at least one node of `seeds` — the
  /// paper's F_R(S). O(Σ |sets containing seeds|) via the index.
  double CoveredFraction(std::span<const NodeId> seeds) const;

  /// Heap bytes of set storage plus index (Figure 12's memory metric).
  size_t MemoryBytes() const;

  /// Releases everything.
  void Clear();

 private:
  NodeId num_nodes_;
  std::vector<EdgeIndex> offsets_;   // per-set start into nodes_
  std::vector<NodeId> nodes_;        // concatenated set members
  std::vector<uint64_t> widths_;     // per-set w(R)
  uint64_t total_width_ = 0;

  bool index_built_ = false;
  std::vector<EdgeIndex> index_offsets_;  // per-node start into index_sets_
  std::vector<RRSetId> index_sets_;
};

}  // namespace timpp

#endif  // TIMPP_RRSET_RR_COLLECTION_H_
