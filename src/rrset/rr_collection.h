// Storage for a batch of RR sets (the paper's R) with the inverted index
// needed by the greedy max-coverage step and exact memory accounting for
// the Figure 12 experiment.
#ifndef TIMPP_RRSET_RR_COLLECTION_H_
#define TIMPP_RRSET_RR_COLLECTION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.h"

namespace timpp {

/// Flat, append-only container of RR sets.
///
/// Sets are stored back-to-back in one node array with an offset array
/// (CSR layout). After all sets are added, BuildIndex() materializes the
/// inverted node -> set-ids index used by coverage computations. Adding
/// after BuildIndex() invalidates the index (checked in debug builds via
/// index_built()).
class RRCollection {
 public:
  explicit RRCollection(NodeId num_nodes) : num_nodes_(num_nodes) {
    offsets_.push_back(0);
  }

  /// Appends one RR set; returns its id. `width` is w(R) from Equation 1.
  RRSetId Add(std::span<const NodeId> nodes, uint64_t width);

  /// Bulk-appends every set of `shard` in shard order — the merge half of
  /// the sampling engine's shard-append protocol: worker threads fill
  /// private shard collections concurrently, then the engine appends the
  /// shards in worker order, which (with index-seeded sampling) yields a
  /// collection identical to a sequential run. One memmove per array
  /// instead of per-set Add calls. Invalidates the index.
  void AppendShard(const RRCollection& shard);

  /// Bulk-appends sets [first, first + count) of `src` in order — the
  /// range-copy primitive behind the engine's chunk-ordered shard merge
  /// and the serving layer's shared-prefix reuse (a request's slice of a
  /// shared collection is byte-identical to sampling it fresh). Ranges
  /// past src.num_sets() are clamped. Invalidates the index.
  void AppendRange(const RRCollection& src, size_t first, size_t count);

  /// Pre-sizes the backing arrays (offsets/widths for `sets` more sets,
  /// nodes for `nodes` more members).
  void Reserve(size_t sets, size_t nodes);

  /// Number of stored sets (the paper's θ once sampling finishes).
  size_t num_sets() const { return offsets_.size() - 1; }

  /// Total nodes across all sets.
  size_t total_nodes() const { return nodes_.size(); }

  /// Number of nodes the host graph has (index width).
  NodeId num_graph_nodes() const { return num_nodes_; }

  /// Nodes of set `id`.
  std::span<const NodeId> Set(RRSetId id) const {
    return {nodes_.data() + offsets_[id], nodes_.data() + offsets_[id + 1]};
  }

  /// Width w(R) of set `id`.
  uint64_t Width(RRSetId id) const { return widths_[id]; }

  /// Start offset of set `id` into the flat node array; `id` may equal
  /// num_sets() (the end offset), so a range's node count is
  /// Offset(b) - Offset(a).
  EdgeIndex Offset(size_t id) const { return offsets_[id]; }

  /// Sum of widths over all sets.
  uint64_t TotalWidth() const { return total_width_; }

  /// Builds (or rebuilds) the inverted index. O(total_nodes).
  void BuildIndex();
  bool index_built() const { return index_built_; }

  /// Releases the inverted index (sets untouched). Budgeted phases that
  /// alternate indexed greedy solves with further sampling call this
  /// before any DataBytes-vs-budget comparison: a stale index would
  /// otherwise be double-charged (once as resident bytes, once as the
  /// rebuild estimate) and latch the budget spuriously.
  void DropIndex();

  /// Ids of the sets containing node `v`. Requires BuildIndex().
  std::span<const RRSetId> SetsContaining(NodeId v) const {
    return {index_sets_.data() + index_offsets_[v],
            index_sets_.data() + index_offsets_[v + 1]};
  }

  /// Number of sets containing `v` (the initial greedy coverage count).
  uint64_t CoverageCount(NodeId v) const {
    return index_offsets_[v + 1] - index_offsets_[v];
  }

  /// Fraction of sets that contain at least one node of `seeds` — the
  /// paper's F_R(S). O(Σ |sets containing seeds|) via the index.
  double CoveredFraction(std::span<const NodeId> seeds) const;

  /// Heap bytes of set storage plus index (Figure 12's memory metric).
  /// Capacity-based: counts what the allocator holds, including growth
  /// slack.
  size_t MemoryBytes() const;

  /// Heap bytes actually filled with data (capacities excluded). This is
  /// the basis of OverMemoryBudget: unlike MemoryBytes it is a pure
  /// function of the stored sets, never of the allocation pattern, so
  /// budget stops land at the same set regardless of how the collection
  /// was filled (per-set Add vs bulk AppendShard; sequential vs parallel
  /// engine paths).
  size_t DataBytes() const;

  /// Memory-budget hook: a soft cap on DataBytes() consulted by producers
  /// that can stop early. The sampling engine checks it at its fixed,
  /// thread-count-independent batch boundaries, so the cap may be
  /// overshot by up to one batch. 0 (the default) means unlimited. The
  /// collection itself never rejects an Add — enforcement is the
  /// producer's job, which keeps append hot paths branch-free.
  void set_memory_budget(size_t bytes) { memory_budget_ = bytes; }
  size_t memory_budget() const { return memory_budget_; }
  bool OverMemoryBudget() const {
    return memory_budget_ != 0 && DataBytes() > memory_budget_;
  }

  /// Drops every set with id >= `num_sets`, keeping the prefix. Used by
  /// budgeted selection to fall back to the largest under-budget prefix
  /// after the sampling engine's batch-granular budget stop overshoots;
  /// the dropped sets are recoverable exactly via per-index regeneration.
  /// Invalidates the index. Capacity is not released (DataBytes shrinks,
  /// MemoryBytes does not).
  void TruncateTo(size_t num_sets);

  /// Releases everything (budget excepted).
  void Clear();

 private:
  NodeId num_nodes_;
  size_t memory_budget_ = 0;
  std::vector<EdgeIndex> offsets_;   // per-set start into nodes_
  std::vector<NodeId> nodes_;        // concatenated set members
  std::vector<uint64_t> widths_;     // per-set w(R)
  uint64_t total_width_ = 0;

  bool index_built_ = false;
  std::vector<EdgeIndex> index_offsets_;  // per-node start into index_sets_
  std::vector<RRSetId> index_sets_;
};

}  // namespace timpp

#endif  // TIMPP_RRSET_RR_COLLECTION_H_
