#include "rrset/rr_spill.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "rrset/rr_serialization.h"

namespace timpp {

namespace {

/// Distinguishes stores within one process; combined with the pid it makes
/// the chunk subdirectory unique across concurrent runs sharing a parent
/// spill directory.
std::atomic<uint64_t> g_store_counter{0};

/// Hard ceiling on readahead depth: bounds in-flight buffer memory at
/// 16 × chunk bytes and stays under the async reader's queue depth.
constexpr size_t kMaxReadahead = 16;

}  // namespace

RRSpillStore::RRSpillStore(NodeId num_graph_nodes, RRSpillOptions options)
    : num_graph_nodes_(num_graph_nodes), options_(std::move(options)) {}

RRSpillStore::~RRSpillStore() {
  // Prefetched buffers that were never consumed are plain waste; count
  // them (for tests poking stats_ post-mortem) and let the reader's own
  // destructor drain the in-flight reads before the files go away.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [ci, ticket] : inflight_) {
      reader_->Cancel(ticket);
      stats_.prefetch_wasted += 1;
    }
    inflight_.clear();
  }
  reader_.reset();
  // Chunk files are scratch: delete the whole per-store subdirectory.
  // Errors are swallowed — a leaked temp dir must not fail a solve that
  // already returned its (correct) seeds.
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

Status RRSpillStore::EnsureDirLocked() {
  if (!dir_.empty()) return Status::OK();
  if (options_.dir.empty()) {
    return Status::InvalidArgument("rr spill: no spill directory configured");
  }
  const uint64_t id = g_store_counter.fetch_add(1, std::memory_order_relaxed);
  const std::filesystem::path sub =
      std::filesystem::path(options_.dir) /
      ("rrspill-" + std::to_string(::getpid()) + "-" + std::to_string(id));
  std::error_code ec;
  std::filesystem::create_directories(sub, ec);
  if (ec) {
    return Status::IOError("rr spill: cannot create " + sub.string() + ": " +
                           ec.message());
  }
  dir_ = sub.string();
  return Status::OK();
}

Status RRSpillStore::SpillRange(const RRCollection& src,
                                std::span<const uint64_t> per_set_edges,
                                size_t local_first, size_t count,
                                uint64_t global_first) {
  if (count == 0) return Status::OK();
  if (local_first + count > src.num_sets()) {
    return Status::InvalidArgument("rr spill: range past source collection");
  }
  if (!per_set_edges.empty() && per_set_edges.size() < local_first + count) {
    return Status::InvalidArgument(
        "rr spill: per-set edges shorter than spill range");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!chunks_.empty() &&
      global_first < chunks_.back().first + chunks_.back().count) {
    return Status::InvalidArgument(
        "rr spill: ranges must be appended in increasing index order");
  }
  TIMPP_RETURN_NOT_OK(EnsureDirLocked());

  // SerializeRRShard indexes `edges` by absolute local set id; synthesize
  // zeros when the caller has no per-set split (selection never reads
  // edge counts back).
  std::vector<uint64_t> zero_edges;
  std::span<const uint64_t> edges = per_set_edges;
  if (edges.empty()) {
    zero_edges.assign(local_first + count, 0);
    edges = zero_edges;
  }

  const uint64_t per_chunk = std::max<uint64_t>(1, options_.sets_per_chunk);
  std::string buffer;
  for (size_t done = 0; done < count;) {
    const size_t chunk_count =
        static_cast<size_t>(std::min<uint64_t>(per_chunk, count - done));
    Chunk chunk;
    chunk.first = global_first + done;
    chunk.count = chunk_count;
    chunk.path =
        (std::filesystem::path(dir_) /
         ("chunk-" + std::to_string(chunk.first) + "-" +
          std::to_string(chunk_count) + ".rrsh"))
            .string();

    buffer.clear();
    SerializeRRShard(src, edges, local_first + done, chunk_count, &buffer);
    chunk.bytes = buffer.size();

    std::ofstream out(chunk.path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("rr spill: cannot open " + chunk.path +
                             " for writing");
    }
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    out.flush();
    if (!out) return Status::IOError("rr spill: write failure on " + chunk.path);

    stats_.chunks_written += 1;
    stats_.sets_written += chunk_count;
    stats_.bytes_written += chunk.bytes;
    chunks_.push_back(std::move(chunk));
    done += chunk_count;
  }
  return Status::OK();
}

size_t RRSpillStore::FindChunkLocked(uint64_t index) const {
  // First chunk with end > index, then check it actually starts at/before.
  size_t lo = 0, hi = chunks_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (chunks_[mid].first + chunks_[mid].count <= index) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < chunks_.size() && chunks_[lo].first <= index) return lo;
  return chunks_.size();
}

bool RRSpillStore::Covers(uint64_t first, uint64_t count) const {
  return CoveredEnd(first, count) == first + count;
}

uint64_t RRSpillStore::CoveredEnd(uint64_t first, uint64_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pos = first;
  const uint64_t end = first + limit;
  size_t ci = FindChunkLocked(pos);
  while (pos < end && ci < chunks_.size() && chunks_[ci].first <= pos) {
    pos = std::min(end, chunks_[ci].first + chunks_[ci].count);
    ++ci;
  }
  return pos;
}

uint64_t RRSpillStore::end_index() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.empty() ? 0 : chunks_.back().first + chunks_.back().count;
}

size_t RRSpillStore::PinnedCapacity() const {
  return std::max<size_t>(1, options_.max_pinned_chunks);
}

size_t RRSpillStore::HotCapacity() const {
  const size_t cap = PinnedCapacity();
  if (cap <= 1) return 0;  // a single slot is all probation
  const double fraction =
      std::clamp(options_.tuning.hot_fraction, 0.0, 1.0);
  const size_t hot =
      static_cast<size_t>(fraction * static_cast<double>(cap) + 0.5);
  // Probation keeps at least one slot so fresh loads always have a home
  // that a second touch can promote from.
  return std::min(hot, cap - 1);
}

bool RRSpillStore::IsPinnedLocked(size_t chunk_index) const {
  for (const Pinned& p : hot_) {
    if (p.chunk_index == chunk_index) return true;
  }
  for (const Pinned& p : probation_) {
    if (p.chunk_index == chunk_index) return true;
  }
  return false;
}

const RRSpillStore::Pinned* RRSpillStore::TouchLocked(size_t chunk_index) {
  for (auto it = hot_.begin(); it != hot_.end(); ++it) {
    if (it->chunk_index == chunk_index) {
      hot_.splice(hot_.begin(), hot_, it);  // hot MRU
      stats_.chunk_hits += 1;
      stats_.hot_hits += 1;
      return &hot_.front();
    }
  }
  for (auto it = probation_.begin(); it != probation_.end(); ++it) {
    if (it->chunk_index != chunk_index) continue;
    stats_.chunk_hits += 1;
    stats_.probation_hits += 1;
    const size_t hot_cap = HotCapacity();
    if (hot_cap == 0) {
      probation_.splice(probation_.begin(), probation_, it);
      return &probation_.front();
    }
    // Promote: a re-touched chunk moves to the hot section, shielding it
    // from the churn of a sequential scan's first-touch stream.
    hot_.splice(hot_.begin(), probation_, it);
    while (hot_.size() > hot_cap) {
      // Demote the hot LRU rather than dropping it: it outranks any
      // never-re-touched probation entry.
      probation_.splice(probation_.begin(), hot_, std::prev(hot_.end()));
    }
    return &hot_.front();
  }
  return nullptr;
}

const RRSpillStore::Pinned* RRSpillStore::InsertPinnedLocked(
    Pinned&& loaded) {
  probation_.push_front(std::move(loaded));
  const size_t cap = PinnedCapacity();
  while (hot_.size() + probation_.size() > cap) {
    // Probation (never re-touched) drains first; the hot section is only
    // tapped when probation is down to the entry just inserted.
    if (probation_.size() > 1) {
      probation_.pop_back();
    } else if (!hot_.empty()) {
      hot_.pop_back();
    } else {
      break;
    }
  }
  return &probation_.front();
}

Status RRSpillStore::ReadChunkBytesSync(const Chunk& chunk,
                                        std::string* bytes) const {
  std::ifstream in(chunk.path, std::ios::binary);
  if (!in) return Status::IOError("rr spill: cannot open " + chunk.path);
  bytes->resize(static_cast<size_t>(chunk.bytes));
  in.read(bytes->data(), static_cast<std::streamsize>(bytes->size()));
  if (static_cast<uint64_t>(in.gcount()) != chunk.bytes) {
    return Status::IOError("rr spill: short read on " + chunk.path);
  }
  return Status::OK();
}

void RRSpillStore::PrefetchAheadLocked(size_t ci, uint64_t end) {
  const size_t depth =
      std::min(options_.tuning.readahead_chunks, kMaxReadahead);
  if (depth == 0 || ci >= chunks_.size()) return;
  uint64_t next_first = chunks_[ci].first + chunks_[ci].count;
  for (size_t cj = ci + 1;
       cj < chunks_.size() && cj <= ci + depth && inflight_.size() < depth;
       ++cj) {
    if (chunks_[cj].first != next_first || next_first >= end) break;
    next_first += chunks_[cj].count;
    if (IsPinnedLocked(cj) || inflight_.count(cj) != 0) continue;
    if (reader_ == nullptr) {
      AsyncIoOptions io;
      io.backend = options_.tuning.io_backend;
      io.queue_depth = static_cast<unsigned>(depth * 2);
      reader_ = options_.reader_factory ? options_.reader_factory(io)
                                        : AsyncFileReader::Create(io);
      if (reader_ == nullptr) return;  // factory refused; stay synchronous
    }
    const AsyncFileReader::Ticket ticket =
        reader_->Submit(chunks_[cj].path, 0, chunks_[cj].bytes);
    if (ticket == AsyncFileReader::kInvalidTicket) continue;
    stats_.prefetch_issued += 1;
    inflight_.emplace(cj, ticket);
  }
}

Status RRSpillStore::LoadChunkLocked(size_t chunk_index, const Pinned** out) {
  if (const Pinned* hit = TouchLocked(chunk_index)) {
    *out = hit;
    return Status::OK();
  }

  const Chunk& chunk = chunks_[chunk_index];
  std::string bytes;
  bool have_bytes = false;
  const auto it = inflight_.find(chunk_index);
  if (it != inflight_.end()) {
    const Status waited = reader_->Wait(it->second, &bytes);
    inflight_.erase(it);
    if (waited.ok()) {
      stats_.prefetch_hits += 1;
      have_bytes = true;
    } else {
      // Degrade, never fail: a broken prefetch read costs one synchronous
      // re-read and nothing else — decode below sees identical bytes.
      stats_.prefetch_wasted += 1;
      stats_.sync_fallback_reads += 1;
    }
  }
  if (!have_bytes) {
    TIMPP_RETURN_NOT_OK(ReadChunkBytesSync(chunk, &bytes));
  }

  Pinned loaded{chunk_index, RRCollection(num_graph_nodes_), {}};
  TIMPP_RETURN_NOT_OK(DeserializeRRShard(bytes, num_graph_nodes_,
                                         &loaded.sets, &loaded.edges));
  if (loaded.sets.num_sets() != chunk.count) {
    return Status::Corruption("rr spill: chunk " + chunk.path +
                              " holds a different set count than written");
  }
  stats_.chunk_loads += 1;
  *out = InsertPinnedLocked(std::move(loaded));
  return Status::OK();
}

Status RRSpillStore::VisitRange(uint64_t first, uint64_t count,
                                const Filter& filter, const Visitor& visit,
                                uint64_t* stopped_at, uint64_t* sets_visited) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pos = first;
  const uint64_t end = first + count;
  uint64_t visited = 0;
  Status status = Status::OK();
  while (pos < end) {
    const size_t ci = FindChunkLocked(pos);
    if (ci >= chunks_.size() || chunks_[ci].first > pos) break;  // gap
    // Issue the readahead before the demand load: the successors' reads
    // proceed while this chunk is read (first miss) and decoded/visited.
    PrefetchAheadLocked(ci, end);
    const Pinned* pinned = nullptr;
    status = LoadChunkLocked(ci, &pinned);
    if (!status.ok()) break;  // caller regenerates from *stopped_at
    const Chunk& chunk = chunks_[ci];
    const uint64_t stop = std::min(end, chunk.first + chunk.count);
    for (uint64_t index = pos; index < stop; ++index) {
      if (filter && !filter(index)) continue;
      visit(index,
            pinned->sets.Set(static_cast<RRSetId>(index - chunk.first)));
      ++visited;
    }
    pos = stop;
  }
  stats_.sets_read += visited;
  *stopped_at = pos;
  if (sets_visited != nullptr) *sets_visited = visited;
  return status;
}

Status RRSpillStore::ReadRange(uint64_t first, uint64_t count,
                               RRCollection* out,
                               std::vector<uint64_t>* edges) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate coverage up front: on any failure nothing is appended.
  {
    uint64_t pos = first;
    const uint64_t end = first + count;
    size_t ci = FindChunkLocked(pos);
    while (pos < end && ci < chunks_.size() && chunks_[ci].first <= pos) {
      pos = std::min(end, chunks_[ci].first + chunks_[ci].count);
      ++ci;
    }
    if (pos != end) {
      return Status::NotFound("rr spill: range [" + std::to_string(first) +
                              ", " + std::to_string(first + count) +
                              ") not fully spilled");
    }
  }

  // Stage into locals so a mid-range I/O failure appends nothing.
  RRCollection staged(num_graph_nodes_);
  std::vector<uint64_t> staged_edges;
  uint64_t pos = first;
  const uint64_t end = first + count;
  while (pos < end) {
    const size_t ci = FindChunkLocked(pos);
    PrefetchAheadLocked(ci, end);
    const Pinned* pinned = nullptr;
    TIMPP_RETURN_NOT_OK(LoadChunkLocked(ci, &pinned));
    const Chunk& chunk = chunks_[ci];
    const uint64_t stop = std::min(end, chunk.first + chunk.count);
    for (uint64_t index = pos; index < stop; ++index) {
      const size_t local = static_cast<size_t>(index - chunk.first);
      staged.Add(pinned->sets.Set(static_cast<RRSetId>(local)),
                 pinned->sets.Width(static_cast<RRSetId>(local)));
      staged_edges.push_back(pinned->edges[local]);
    }
    stats_.sets_read += stop - pos;
    pos = stop;
  }
  out->AppendShard(staged);
  if (edges != nullptr) {
    edges->insert(edges->end(), staged_edges.begin(), staged_edges.end());
  }
  return Status::OK();
}

RRSpillStats RRSpillStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string RRSpillStore::directory() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dir_;
}

std::string RRSpillStore::io_backend_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reader_ == nullptr ? "none" : reader_->backend_name();
}

}  // namespace timpp
