// Disk spill tier for RR-set stream prefixes.
//
// Budgeted selection keeps only a prefix of the θ sampled RR sets
// resident; the suffix used to be *regenerated* from the per-index RNG on
// every greedy round (O(passes × sampling cost)). RRSpillStore instead
// writes evicted index ranges as sequential rr_serialization shard files
// ("chunks") and streams them back through a small pinned-chunk cache —
// sequential disk reads replace repeated graph traversals, and the
// replayed sets are byte-identical to the sampled originals (the shard
// format round-trips members, widths and per-set edge counts exactly, so
// seeds/θ/LB match the regeneration path bit for bit).
//
// One store holds one engine's global index space: chunks are appended in
// increasing index order (gaps allowed — IMM spills its sampling phase and
// its selection phase into the same store even when the phases are
// separated by discarded ranges) and never overlap. Readers address sets
// by global index; ranges the store does not cover simply fall back to
// engine regeneration at the caller (VisitRange reports how far it got).
//
// Replay is compute/IO overlapped: while a visitor drains one chunk, the
// store issues asynchronous reads (util/async_io.h — io_uring when the
// kernel allows, a pread thread pool otherwise) for the next
// `tuning.readahead_chunks` chunks in traversal order. Prefetch only moves
// *when* bytes are read, never *what* is decoded: a prefetched buffer that
// fails its read is discarded and the chunk is re-read synchronously, so
// every failure class degrades to the pre-async behavior with identical
// results.
//
// The pinned cache is a sectioned LRU (SLRU): a first touch lands a chunk
// in the *probation* section, a re-touch promotes it to the *hot* section,
// and eviction drains probation first — so one sequential replay pass
// (all first touches) can only churn probation and can never flush a
// re-touched hot chunk. `hot_fraction` splits the `max_pinned_chunks`
// capacity between the sections.
//
// Thread-safe: a single mutex serializes spills, loads and visits. The
// store is the budget path's slow tier — correctness and bounded memory
// (at most `max_pinned_chunks` chunks resident) matter more than reader
// concurrency here; the async reader only ever holds raw undecoded
// buffers, never pinned chunks.
//
// Files live in a per-store unique subdirectory of `options.dir` and are
// deleted by the destructor.
#ifndef TIMPP_RRSET_RR_SPILL_H_
#define TIMPP_RRSET_RR_SPILL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "rrset/rr_collection.h"
#include "util/async_io.h"
#include "util/status.h"
#include "util/types.h"

namespace timpp {

/// Replay-path tuning: prefetch depth, section split, IO backend. Plumbed
/// from SolverOptions/ServingOptions so the CLI can steer it; the defaults
/// are right for sequential greedy replay.
struct RRSpillTuning {
  /// Chunks to read ahead of the replay cursor (0 disables prefetch and
  /// restores fully synchronous reads). Clamped to <= 16.
  size_t readahead_chunks = 2;
  /// Fraction of max_pinned_chunks reserved for the hot section (clamped
  /// so probation always keeps at least one slot when capacity > 1).
  double hot_fraction = 0.5;
  /// Async read backend; kAuto probes io_uring and falls back to threads.
  AsyncIoBackend io_backend = AsyncIoBackend::kAuto;
};

struct RRSpillOptions {
  /// Parent directory for this store's chunk files (created if missing).
  std::string dir;
  /// Sets per chunk file. Chunk size bounds both the spill write batches
  /// and the resident footprint of a pinned chunk.
  uint64_t sets_per_chunk = 4096;
  /// Loaded chunks kept resident (SLRU across both sections). 2 covers
  /// the common pattern of a visit range straddling one chunk boundary.
  size_t max_pinned_chunks = 2;
  RRSpillTuning tuning;
  /// Test seam: builds the async reader (defaults to
  /// AsyncFileReader::Create). Fault-injection tests substitute slow or
  /// failing readers to prove the synchronous degradation path.
  std::function<std::unique_ptr<AsyncFileReader>(const AsyncIoOptions&)>
      reader_factory;
};

/// Counters for spill accounting (monotone; snapshot via stats()).
struct RRSpillStats {
  uint64_t chunks_written = 0;
  uint64_t sets_written = 0;
  uint64_t bytes_written = 0;
  /// Chunk-file loads (cache misses) and cache hits; hits split below.
  uint64_t chunk_loads = 0;
  uint64_t chunk_hits = 0;
  /// Sets streamed back to visitors/readers.
  uint64_t sets_read = 0;
  /// Prefetch accounting. issued = async reads submitted; hits = demand
  /// loads served from a completed prefetch; wasted = prefetched buffers
  /// discarded unconsumed (store teardown) or failed; sync_fallback_reads
  /// = demand loads that fell back to a synchronous read after a prefetch
  /// error. hits + wasted <= issued (the rest is still in flight).
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
  uint64_t sync_fallback_reads = 0;
  /// SLRU section split of chunk_hits: hot_hits + probation_hits ==
  /// chunk_hits.
  uint64_t hot_hits = 0;
  uint64_t probation_hits = 0;
};

class RRSpillStore {
 public:
  using Filter = std::function<bool(uint64_t index)>;
  using Visitor =
      std::function<void(uint64_t index, std::span<const NodeId> nodes)>;

  /// `num_graph_nodes` validates reloaded shard node ids (same check the
  /// distributed merge applies).
  RRSpillStore(NodeId num_graph_nodes, RRSpillOptions options);
  ~RRSpillStore();

  RRSpillStore(const RRSpillStore&) = delete;
  RRSpillStore& operator=(const RRSpillStore&) = delete;

  /// Spills sets [local_first, local_first + count) of `src` — which hold
  /// the RR sets of global indices [global_first, global_first + count) —
  /// as one or more chunk files. `per_set_edges`, when non-empty, is
  /// indexed by local set id (rr_serialization's convention) and must
  /// cover the range; when empty, zero edge counts are recorded (readers
  /// that only need members and widths — selection — are unaffected).
  /// `global_first` must be >= the store's current end_index(): chunks
  /// are append-only in index space, gaps allowed.
  Status SpillRange(const RRCollection& src,
                    std::span<const uint64_t> per_set_edges,
                    size_t local_first, size_t count, uint64_t global_first);

  /// Whether every index of [first, first + count) is in some chunk.
  bool Covers(uint64_t first, uint64_t count) const;

  /// Largest e <= first + limit with [first, e) fully chunk-covered
  /// (== first when the store has nothing at `first`).
  uint64_t CoveredEnd(uint64_t first, uint64_t limit) const;

  /// Exclusive end of the highest chunk (0 when nothing spilled).
  uint64_t end_index() const;

  /// Streams the stored sets of [first, first + count) through `visit` in
  /// index order, skipping indices `filter` rejects (filter may be null).
  /// Advances `*stopped_at` to the end of the covered-and-visited prefix:
  /// first + count when fully covered, the first uncovered index on a
  /// coverage gap, or the failed chunk's start on an I/O/corruption error
  /// (in which case the error Status is returned and the caller
  /// regenerates from `*stopped_at`). `sets_visited` (optional) counts
  /// sets actually delivered to `visit`. Reads ahead of the cursor per
  /// `tuning.readahead_chunks`.
  Status VisitRange(uint64_t first, uint64_t count, const Filter& filter,
                    const Visitor& visit, uint64_t* stopped_at,
                    uint64_t* sets_visited = nullptr);

  /// Appends the stored sets of [first, first + count) to `*out` (and
  /// their edge counts to `*edges`, if non-null) in index order. Fails
  /// with NotFound if the range is not fully covered; on any failure
  /// nothing is appended. Serving uses this to preload an evicted shared
  /// prefix back into cache chunks. Reads ahead like VisitRange.
  Status ReadRange(uint64_t first, uint64_t count, RRCollection* out,
                   std::vector<uint64_t>* edges);

  RRSpillStats stats() const;

  /// The per-store chunk directory (empty until the first spill).
  std::string directory() const;

  /// The async backend actually serving prefetch ("uring" | "threads"),
  /// or "none" before the first prefetch was issued.
  std::string io_backend_name() const;

 private:
  struct Chunk {
    uint64_t first = 0;
    uint64_t count = 0;
    std::string path;
    uint64_t bytes = 0;
  };
  struct Pinned {
    size_t chunk_index;
    RRCollection sets;
    std::vector<uint64_t> edges;
  };

  /// Creates the unique chunk subdirectory on first use.
  Status EnsureDirLocked();

  /// Returns the manifest position of the chunk containing `index`, or
  /// chunks_.size() when uncovered.
  size_t FindChunkLocked(uint64_t index) const;

  /// Loads (or cache-hits) chunk `chunk_index`; on success `*out` points
  /// at the pinned entry (valid until the next load under this mutex).
  /// Consumes a matching in-flight prefetch when one completed cleanly;
  /// a failed prefetch falls back to a synchronous read.
  Status LoadChunkLocked(size_t chunk_index, const Pinned** out);

  /// SLRU lookup: splices a hot hit to the hot MRU position, promotes a
  /// probation hit into hot (demoting the hot LRU when over the hot cap).
  /// Null on miss. Counts hit stats.
  const Pinned* TouchLocked(size_t chunk_index);

  /// Inserts a freshly loaded chunk at the probation MRU position and
  /// evicts (probation LRU first) down to capacity.
  const Pinned* InsertPinnedLocked(Pinned&& loaded);

  /// Whether either section pins `chunk_index`.
  bool IsPinnedLocked(size_t chunk_index) const;

  /// Issues async reads for the chunks after manifest position `ci` that
  /// the traversal towards `end` will need next (contiguous in index
  /// space, not pinned, not already in flight), up to the readahead depth.
  void PrefetchAheadLocked(size_t ci, uint64_t end);

  /// Reads chunk bytes synchronously (the pre-async path, and the
  /// degradation for every prefetch failure).
  Status ReadChunkBytesSync(const Chunk& chunk, std::string* bytes) const;

  /// Total pinned capacity and the hot section's share of it.
  size_t PinnedCapacity() const;
  size_t HotCapacity() const;

  const NodeId num_graph_nodes_;
  const RRSpillOptions options_;

  mutable std::mutex mu_;
  std::string dir_;             // unique subdir; empty until first spill
  std::vector<Chunk> chunks_;   // sorted by first, non-overlapping
  std::list<Pinned> hot_;        // front = most recently used
  std::list<Pinned> probation_;  // front = most recently used
  /// Outstanding prefetch tickets by manifest chunk position.
  std::map<size_t, AsyncFileReader::Ticket> inflight_;
  std::unique_ptr<AsyncFileReader> reader_;  // created on first prefetch
  RRSpillStats stats_;
};

}  // namespace timpp

#endif  // TIMPP_RRSET_RR_SPILL_H_
