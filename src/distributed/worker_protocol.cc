#include "distributed/worker_protocol.h"

#include <errno.h>
#include <unistd.h>

#include <cstring>

#include "util/subprocess.h"

namespace timpp {
namespace wire {

namespace {

// Refuse to allocate for absurd payload lengths (a corrupt or
// adversarially garbled stream); the largest legitimate payload is one
// serialized shard of a few thousand RR sets.
constexpr uint64_t kMaxPayload = uint64_t{1} << 31;

struct FrameHeader {
  uint32_t type = 0;
  uint32_t reserved = 0;
  uint64_t payload_size = 0;
};
static_assert(sizeof(FrameHeader) == 16);

template <typename T>
void AppendRaw(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool TakeRaw(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

void EncodeHello(const Hello& hello, std::string* out) {
  AppendRaw(out, hello.protocol_version);
  AppendRaw(out, hello.model);
  AppendRaw(out, hello.sampler_mode);
  AppendRaw(out, static_cast<uint8_t>(hello.graph_transport));
  AppendRaw(out, uint8_t{0});  // pad
  AppendRaw(out, hello.max_hops);
  AppendRaw(out, hello.seed);
  AppendRaw(out, hello.worker_threads);
  AppendRaw(out, uint32_t{0});  // pad
  AppendRaw(out, hello.graph_hash);
  AppendRaw(out, hello.worker_slot);
  AppendRaw(out, hello.spawn_attempt);
  AppendRaw(out, static_cast<uint64_t>(hello.fault_spec.size()));
  out->append(hello.fault_spec);
  AppendRaw(out, static_cast<uint64_t>(hello.graph_payload.size()));
  out->append(hello.graph_payload);
}

Status DecodeHello(std::string_view payload, Hello* hello) {
  uint8_t transport = 0;
  uint8_t pad8 = 0;
  uint32_t pad32 = 0;
  uint64_t fault_size = 0;
  uint64_t graph_size = 0;
  if (!TakeRaw(&payload, &hello->protocol_version) ||
      !TakeRaw(&payload, &hello->model) ||
      !TakeRaw(&payload, &hello->sampler_mode) ||
      !TakeRaw(&payload, &transport) || !TakeRaw(&payload, &pad8) ||
      !TakeRaw(&payload, &hello->max_hops) ||
      !TakeRaw(&payload, &hello->seed) ||
      !TakeRaw(&payload, &hello->worker_threads) ||
      !TakeRaw(&payload, &pad32) || !TakeRaw(&payload, &hello->graph_hash) ||
      !TakeRaw(&payload, &hello->worker_slot) ||
      !TakeRaw(&payload, &hello->spawn_attempt) ||
      !TakeRaw(&payload, &fault_size)) {
    return Status::Corruption("hello: truncated");
  }
  if (transport > static_cast<uint8_t>(GraphTransport::kSpec)) {
    return Status::Corruption("hello: unknown graph transport");
  }
  hello->graph_transport = static_cast<GraphTransport>(transport);
  if (payload.size() < fault_size) {
    return Status::Corruption("hello: fault spec size mismatch");
  }
  hello->fault_spec.assign(payload.data(), fault_size);
  payload.remove_prefix(fault_size);
  if (!TakeRaw(&payload, &graph_size)) {
    return Status::Corruption("hello: truncated");
  }
  if (payload.size() != graph_size) {
    return Status::Corruption("hello: graph payload size mismatch");
  }
  hello->graph_payload.assign(payload.data(), payload.size());
  return Status::OK();
}

void EncodeSampleRange(uint64_t first, uint64_t count, uint32_t attempt,
                       std::string* out) {
  AppendRaw(out, first);
  AppendRaw(out, count);
  AppendRaw(out, attempt);
}

Status DecodeSampleRange(std::string_view payload, uint64_t* first,
                         uint64_t* count, uint32_t* attempt) {
  if (!TakeRaw(&payload, first) || !TakeRaw(&payload, count) ||
      !TakeRaw(&payload, attempt) || !payload.empty()) {
    return Status::Corruption("sample-range: malformed payload");
  }
  return Status::OK();
}

void EncodeSampleList(const std::vector<uint64_t>& indices, uint32_t attempt,
                      std::string* out) {
  AppendRaw(out, attempt);
  AppendRaw(out, static_cast<uint64_t>(indices.size()));
  out->append(reinterpret_cast<const char*>(indices.data()),
              indices.size() * sizeof(uint64_t));
}

Status DecodeSampleList(std::string_view payload,
                        std::vector<uint64_t>* indices, uint32_t* attempt) {
  uint64_t n = 0;
  // Divide, don't multiply: n * sizeof(uint64_t) could wrap for a corrupt
  // count and slip a bogus size past the check.
  if (!TakeRaw(&payload, attempt) || !TakeRaw(&payload, &n) ||
      n != payload.size() / sizeof(uint64_t) ||
      payload.size() % sizeof(uint64_t) != 0) {
    return Status::Corruption("sample-list: malformed payload");
  }
  indices->resize(n);
  std::memcpy(indices->data(), payload.data(), payload.size());
  return Status::OK();
}

Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  const Deadline& deadline) {
  FrameHeader header;
  header.type = type;
  header.payload_size = payload.size();
  TIMPP_RETURN_NOT_OK(WriteWithDeadline(fd, &header, sizeof(header), deadline));
  if (!payload.empty()) {
    TIMPP_RETURN_NOT_OK(
        WriteWithDeadline(fd, payload.data(), payload.size(), deadline));
  }
  return Status::OK();
}

Status WriteFrameTruncated(int fd, FrameType type, std::string_view payload,
                           size_t send_bytes) {
  FrameHeader header;
  header.type = type;
  header.payload_size = payload.size();
  TIMPP_RETURN_NOT_OK(WriteAllFd(fd, &header, sizeof(header)));
  const size_t n = send_bytes < payload.size() ? send_bytes : payload.size();
  if (n > 0) {
    TIMPP_RETURN_NOT_OK(WriteAllFd(fd, payload.data(), n));
  }
  return Status::OK();
}

Status ReadFrame(int fd, uint32_t* type, std::string* payload,
                 const Deadline& deadline) {
  FrameHeader header;
  {
    const Status header_status =
        ReadWithDeadline(fd, &header, sizeof(header), deadline);
    if (!header_status.ok()) {
      // EOF before any header byte is a clean end-of-stream: the worker
      // loop's shutdown signal, and — on the coordinator side — a worker
      // that exited between frames. ReadWithDeadline reports it as
      // Unavailable; keep the historical NotFound spelling so callers can
      // tell "stream ended" from "worker gone mid-frame" (DataLoss).
      if (header_status.IsUnavailable()) {
        return Status::NotFound("end of stream");
      }
      return header_status;
    }
  }
  if (header.payload_size > kMaxPayload) {
    return Status::Corruption("frame payload implausibly large");
  }
  *type = header.type;
  payload->resize(header.payload_size);
  if (header.payload_size > 0) {
    const Status body_status =
        ReadWithDeadline(fd, payload->data(), header.payload_size, deadline);
    if (!body_status.ok()) {
      // EOF between header and payload is still mid-frame: truncation.
      if (body_status.IsUnavailable()) {
        return Status::DataLoss("pipe closed after frame header (payload " +
                                std::to_string(header.payload_size) +
                                " bytes missing)");
      }
      return body_status;
    }
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace timpp
