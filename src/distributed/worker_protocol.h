// The coordinator ⇄ worker wire protocol of process-sharded RR sampling.
//
// Transport: length-prefixed frames over the worker's stdin/stdout pipes.
// Every frame is a fixed 16-byte header (type, reserved, payload size)
// followed by the payload. Integers are native-endian — workers run on the
// same host as their coordinator (process sharding, not yet cross-machine;
// the versioned header leaves room to add an endianness tag when sockets
// replace pipes).
//
// Session shape:
//   coordinator → kHello        (config + graph identity/transport)
//   worker      → kHelloAck     (its Graph::ContentHash)   | kError
//   repeat:
//     coordinator → kSampleRange | kSampleList
//     worker      → kShard      (rrset/rr_serialization)   | kError
//   coordinator → kShutdown (or just closes stdin; EOF means the same)
//
// The handshake carries the coordinator's Graph::ContentHash; a worker
// whose reconstructed graph hashes differently replies kError and exits —
// mismatched graphs would otherwise produce silently diverging RR streams,
// the one failure mode a determinism-contract system must never have.
#ifndef TIMPP_DISTRIBUTED_WORKER_PROTOCOL_H_
#define TIMPP_DISTRIBUTED_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/subprocess.h"
#include "util/types.h"

namespace timpp {
namespace wire {

/// Bump on any incompatible change to frames or payload layouts.
/// v2: Hello carries worker slot/spawn attempt and a fault-injection
/// spec; sample requests carry the shard's retry attempt (both feed the
/// deterministic fault-injection harness, distributed/fault_injection.h).
constexpr uint32_t kProtocolVersion = 2;

enum FrameType : uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kSampleRange = 3,
  kSampleList = 4,
  kShard = 5,
  kError = 6,
  kShutdown = 7,
};

/// How the Hello payload tells the worker to obtain the graph.
enum class GraphTransport : uint8_t {
  /// Payload bytes are the serialized graph itself (graph_io
  /// SerializeGraph) — always correct, used for programmatic graphs.
  kInline = 0,
  /// Payload is a graph-spec string (distributed/graph_spec.h) the worker
  /// loads from local storage — used by the CLI to avoid shipping large
  /// edge lists through the pipe.
  kSpec = 1,
};

/// Decoded kHello payload: everything a worker needs to reproduce the
/// coordinator's sample stream bit-exactly.
struct Hello {
  uint32_t protocol_version = kProtocolVersion;
  uint8_t model = 0;         // DiffusionModel (kTriggering never ships)
  uint8_t sampler_mode = 0;  // SamplerMode
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  uint32_t worker_threads = 1;
  /// Coordinator's Graph::ContentHash — the identity the worker verifies.
  uint64_t graph_hash = 0;
  /// Which supervisor slot this worker fills and how many times the slot
  /// has spawned (1 = first launch). Fault-injection rules key on these;
  /// the protocol itself never branches on them.
  uint32_t worker_slot = 0;
  uint32_t spawn_attempt = 1;
  /// Deterministic fault-injection spec (distributed/fault_injection.h
  /// grammar); empty in production. Shipped in the handshake so tests
  /// need no environment plumbing across exec.
  std::string fault_spec;
  GraphTransport graph_transport = GraphTransport::kInline;
  std::string graph_payload;
};

void EncodeHello(const Hello& hello, std::string* out);
Status DecodeHello(std::string_view payload, Hello* hello);

/// kSampleRange payload: the contiguous shard [first, first + count).
/// `attempt` is 0 for the first dispatch and increments per supervisor
/// retry — sampling ignores it (shard i is a pure function of (seed, i)),
/// fault-injection rules consume it so an injected fault stops firing
/// after its budgeted repetitions.
void EncodeSampleRange(uint64_t first, uint64_t count, uint32_t attempt,
                       std::string* out);
Status DecodeSampleRange(std::string_view payload, uint64_t* first,
                         uint64_t* count, uint32_t* attempt);

/// kSampleList payload: explicit ascending global indices (a filtered
/// fill's accepted indices — the coordinator evaluates the filter, the
/// worker traverses only the listed sets). `attempt` as in sample-range.
void EncodeSampleList(const std::vector<uint64_t>& indices, uint32_t attempt,
                      std::string* out);
Status DecodeSampleList(std::string_view payload,
                        std::vector<uint64_t>* indices, uint32_t* attempt);

/// Writes one frame to `fd`, honoring `deadline` (DeadlineExceeded when
/// the peer stops draining the pipe in time).
Status WriteFrame(int fd, FrameType type, std::string_view payload,
                  const Deadline& deadline = Deadline::Infinite());

/// Reads one frame from `fd` into (*type, *payload). EOF before a header
/// byte is reported as NotFound (clean end-of-stream — how a worker
/// detects coordinator shutdown, and a supervisor a worker that exited
/// between frames); EOF mid-frame is DataLoss (truncated stream); a
/// deadline expiring first is DeadlineExceeded.
Status ReadFrame(int fd, uint32_t* type, std::string* payload,
                 const Deadline& deadline = Deadline::Infinite());

/// Fault-injection support only: writes a frame header advertising the
/// full `payload.size()` but sends just `send_bytes` of the payload — the
/// reader sees a mid-frame truncation. Lives here so the header layout
/// stays in one file.
Status WriteFrameTruncated(int fd, FrameType type, std::string_view payload,
                           size_t send_bytes);

}  // namespace wire
}  // namespace timpp

#endif  // TIMPP_DISTRIBUTED_WORKER_PROTOCOL_H_
