// The coordinator ⇄ worker wire protocol of process-sharded RR sampling.
//
// Transport: length-prefixed frames over the worker's stdin/stdout pipes.
// Every frame is a fixed 16-byte header (type, reserved, payload size)
// followed by the payload. Integers are native-endian — workers run on the
// same host as their coordinator (process sharding, not yet cross-machine;
// the versioned header leaves room to add an endianness tag when sockets
// replace pipes).
//
// Session shape:
//   coordinator → kHello        (config + graph identity/transport)
//   worker      → kHelloAck     (its Graph::ContentHash)   | kError
//   repeat:
//     coordinator → kSampleRange | kSampleList
//     worker      → kShard      (rrset/rr_serialization)   | kError
//   coordinator → kShutdown (or just closes stdin; EOF means the same)
//
// The handshake carries the coordinator's Graph::ContentHash; a worker
// whose reconstructed graph hashes differently replies kError and exits —
// mismatched graphs would otherwise produce silently diverging RR streams,
// the one failure mode a determinism-contract system must never have.
#ifndef TIMPP_DISTRIBUTED_WORKER_PROTOCOL_H_
#define TIMPP_DISTRIBUTED_WORKER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace timpp {
namespace wire {

/// Bump on any incompatible change to frames or payload layouts.
constexpr uint32_t kProtocolVersion = 1;

enum FrameType : uint32_t {
  kHello = 1,
  kHelloAck = 2,
  kSampleRange = 3,
  kSampleList = 4,
  kShard = 5,
  kError = 6,
  kShutdown = 7,
};

/// How the Hello payload tells the worker to obtain the graph.
enum class GraphTransport : uint8_t {
  /// Payload bytes are the serialized graph itself (graph_io
  /// SerializeGraph) — always correct, used for programmatic graphs.
  kInline = 0,
  /// Payload is a graph-spec string (distributed/graph_spec.h) the worker
  /// loads from local storage — used by the CLI to avoid shipping large
  /// edge lists through the pipe.
  kSpec = 1,
};

/// Decoded kHello payload: everything a worker needs to reproduce the
/// coordinator's sample stream bit-exactly.
struct Hello {
  uint32_t protocol_version = kProtocolVersion;
  uint8_t model = 0;         // DiffusionModel (kTriggering never ships)
  uint8_t sampler_mode = 0;  // SamplerMode
  uint32_t max_hops = 0;
  uint64_t seed = 0;
  uint32_t worker_threads = 1;
  /// Coordinator's Graph::ContentHash — the identity the worker verifies.
  uint64_t graph_hash = 0;
  GraphTransport graph_transport = GraphTransport::kInline;
  std::string graph_payload;
};

void EncodeHello(const Hello& hello, std::string* out);
Status DecodeHello(std::string_view payload, Hello* hello);

/// kSampleRange payload: the contiguous shard [first, first + count).
void EncodeSampleRange(uint64_t first, uint64_t count, std::string* out);
Status DecodeSampleRange(std::string_view payload, uint64_t* first,
                         uint64_t* count);

/// kSampleList payload: explicit ascending global indices (a filtered
/// fill's accepted indices — the coordinator evaluates the filter, the
/// worker traverses only the listed sets).
void EncodeSampleList(const std::vector<uint64_t>& indices, std::string* out);
Status DecodeSampleList(std::string_view payload,
                        std::vector<uint64_t>* indices);

/// Writes one frame to `fd`.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from `fd` into (*type, *payload). EOF before a header
/// byte is reported as NotFound (clean end-of-stream — how a worker
/// detects coordinator shutdown); EOF mid-frame is IOError.
Status ReadFrame(int fd, uint32_t* type, std::string* payload);

}  // namespace wire
}  // namespace timpp

#endif  // TIMPP_DISTRIBUTED_WORKER_PROTOCOL_H_
